/**
 * @file
 * Ablations of the FA3C microarchitectural design choices DESIGN.md
 * calls out, beyond the paper's own Figure 10 variants:
 *
 *  - double buffering (the two-level buffer hierarchy's overlap of
 *    compute and DRAM traffic, Sections 4.4.3 / 4.5),
 *  - the number of RMSProp RUs (Section 4.2.3: four saturate the
 *    16-word DRAM interface),
 *  - the number of DRAM channels (Section 4.1: global and local
 *    parameters in different channels),
 *  - the number of TLUs per CU (Section 4.4.3: two overlap fill and
 *    drain).
 *
 * Each row reports the platform IPS at n = 16 with one knob changed.
 *
 * A second phase drives the datapath model directly and prints the
 * per-CU stall attribution (busy / operand starvation / DRAM
 * bandwidth / weight-sync barrier / idle) from the platform's perf
 * counters; the categories tile total sim time exactly once the
 * queue drains.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "fa3c/accelerator.hh"
#include "fa3c/tlu.hh"
#include "harness/experiments.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/table.hh"

using namespace fa3c;
using namespace fa3c::harness;

namespace {

const nn::NetConfig netCfg = nn::NetConfig::atari(4);

double
ipsOf(const core::Fa3cConfig &cfg)
{
    return measurePlatform(PlatformId::Fa3c, 16, netCfg, 5, 3.0, &cfg)
        .ips;
}

void
BM_AblationPoint(benchmark::State &state)
{
    core::Fa3cConfig cfg = core::Fa3cConfig::vcu1525();
    cfg.doubleBuffering = state.range(0) != 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(ipsOf(cfg));
}
BENCHMARK(BM_AblationPoint)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

/**
 * Drive the board with a burst of work and print where every CU's
 * cycles went. The single-channel configuration is deliberately
 * contended so the DRAM-bandwidth category is visibly nonzero.
 */
void
stallAttribution(bench::JsonReport &report)
{
    bench::banner("Stall attribution",
                  "Per-CU cycle breakdown on a single-channel "
                  "(DRAM-contended) VCU1525 configuration");

    core::Fa3cConfig cfg = core::Fa3cConfig::vcu1525();
    cfg.dram.channels = 1;

    sim::EventQueue queue;
    core::Fa3cPlatform board(queue, cfg, netCfg, 5);
    int outstanding = 0;
    auto done = [&outstanding] { --outstanding; };
    constexpr int kRounds = 64;
    for (int i = 0; i < kRounds; ++i) {
        board.submitInference(done);
        board.submitTraining(done);
        ++outstanding;
        ++outstanding;
        if (i % 16 == 15) {
            board.submitParamSync(done);
            ++outstanding;
        }
    }
    queue.run();
    FA3C_ASSERT(outstanding == 0, "stall-attribution drain");

    const auto snap = board.perfSnapshot();
    sim::TextTable table({"CU", "busy", "operand", "dram bw",
                          "weight sync", "idle", "total",
                          "residual"});
    for (const auto &[bank_name, counters] : snap) {
        if (bank_name.rfind("cu", 0) != 0)
            continue;
        auto get = [&counters](const char *key) -> std::uint64_t {
            auto it = counters.find(key);
            return it == counters.end() ? 0 : it->second;
        };
        const std::uint64_t busy = get("busy_ticks");
        const std::uint64_t operand = get("stall_operand_ticks");
        const std::uint64_t dram = get("stall_dram_bw_ticks");
        const std::uint64_t sync = get("stall_weight_sync_ticks");
        const std::uint64_t idle = get("idle_ticks");
        const std::uint64_t total = get("total_ticks");
        const std::uint64_t accounted =
            busy + operand + dram + sync + idle;
        const std::int64_t residual =
            static_cast<std::int64_t>(total) -
            static_cast<std::int64_t>(accounted);
        table.addRow({bank_name, sim::TextTable::num(busy),
                      sim::TextTable::num(operand),
                      sim::TextTable::num(dram),
                      sim::TextTable::num(sync),
                      sim::TextTable::num(idle),
                      sim::TextTable::num(total),
                      std::to_string(residual)});
        report.addRow()
            .set("kind", "stall_attribution")
            .set("cu", bank_name)
            .set("busy_ticks", busy)
            .set("stall_operand_ticks", operand)
            .set("stall_dram_bw_ticks", dram)
            .set("stall_weight_sync_ticks", sync)
            .set("idle_ticks", idle)
            .set("total_ticks", total);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("(residual = total - sum(categories); 0 once the "
                "event queue has drained)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::runMicrobenchmarks(argc, argv);
    bench::banner("Ablations",
                  "Microarchitecture ablations at n = 16 (VCU1525 "
                  "configuration; IPS, relative to baseline)");

    const core::Fa3cConfig base = core::Fa3cConfig::vcu1525();
    const double base_ips = ipsOf(base);

    bench::JsonReport report("ablation_microarch");
    report.field("base_ips", base_ips);

    sim::TextTable table({"Configuration", "IPS", "Relative"});
    auto add = [&](const std::string &name,
                   const core::Fa3cConfig &cfg) {
        const double ips = ipsOf(cfg);
        table.addRow({name, sim::TextTable::num(ips, 0),
                      sim::TextTable::num(ips / base_ips, 2)});
        report.addRow()
            .set("kind", "ablation")
            .set("config", name)
            .set("ips", ips)
            .set("relative", ips / base_ips);
    };
    table.addRow({"FA3C baseline (2 pairs x 64 PEs, 4 RUs, 4 ch)",
                  sim::TextTable::num(base_ips, 0), "1.00"});

    core::Fa3cConfig no_db = base;
    no_db.doubleBuffering = false;
    add("no double buffering (serial DRAM -> compute)", no_db);

    for (int rus : {1, 2, 8}) {
        core::Fa3cConfig cfg = base;
        cfg.rmspropUnits = rus;
        add("RMSProp RUs = " + std::to_string(rus), cfg);
    }

    for (int channels : {1, 2}) {
        core::Fa3cConfig cfg = base;
        cfg.dram.channels = channels;
        add("DRAM channels = " + std::to_string(channels), cfg);
    }

    std::printf("%s\n", table.render().c_str());

    // TLU count affects the parameter-load pipeline, which the task
    // model keeps hidden behind the DRAM stream when 2 TLUs overlap
    // fill and drain; with a single TLU the transpose rate halves and
    // would poke out for the FC layers.
    const nn::ConvSpec fc3 = core::asConv(nn::FcSpec{2592, 256});
    std::printf("TLU pipeline for FC3: 1 TLU = %s cycles, 2 TLUs = %s "
                "cycles vs %s DRAM beats (2 TLUs keep the transpose "
                "fully hidden; 1 TLU would double the exposed "
                "parameter-load time of BW phases).\n",
                sim::TextTable::num(core::tluLoadCycles(fc3, 1)).c_str(),
                sim::TextTable::num(core::tluLoadCycles(fc3, 2)).c_str(),
                sim::TextTable::num(core::paddedParamWords(fc3) /
                                    core::dramBurstWords)
                    .c_str());

    stallAttribution(report);
    return 0;
}
