/**
 * @file
 * Distributed parameter-server training: throughput scaling and
 * learning-curve parity.
 *
 * Leg 1 — scaling: one in-process PsServer plus 1/2/4/8 WorkerRunner
 * instances (each a real dist-protocol client over loopback TCP, one
 * A3C agent each) train Pong for a fixed step budget; steps/sec is
 * budget / wall time. On a multi-core host two workers should land
 * well above one (the CI gate wants >= 1.6x); a 1-core host records
 * the number without gating it.
 *
 * Leg 2 — parity: the same step budget trained (a) by the classic
 * in-process A3cTrainer and (b) through the PS with one 2-agent
 * worker, then both final policies are evaluated on Pong with the
 * same seeds. The two runs consume identical step counts through the
 * same RMSProp semantics, so the final scores must sit within the
 * run-to-run noise band.
 *
 * Leg 3 — telemetry: the bench enables the metrics registry, serves
 * its own /metrics on an ephemeral TelemetryServer, and runs a
 * TelemetryAggregator against it — the same scrape + re-aggregate
 * path the fleet launcher uses — then records the fleet-level
 * staleness and push-RTT rollups into the report. This keeps the
 * aggregator's HTTP + histogram-summation path exercised on every
 * bench run, not just in CI smoke.
 *
 * Knobs: FA3C_DIST_BENCH_STEPS (default 4000 env steps per config),
 * FA3C_DIST_BENCH_MAX_WORKERS (default 8).
 *
 * Writes $FA3C_JSON_DIR/BENCH_dist.json.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "dist/ps_server.hh"
#include "dist/worker_runner.hh"
#include "env/environment.hh"
#include "env/session.hh"
#include "nn/a3c_network.hh"
#include "obs/aggregator.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "rl/a3c.hh"
#include "rl/evaluate.hh"

using namespace fa3c;

namespace {

using Clock = std::chrono::steady_clock;

constexpr env::GameId kGame = env::GameId::Pong;

std::unique_ptr<env::AtariSession>
makeSession(const nn::NetConfig &nc, std::uint64_t seed)
{
    env::SessionConfig scfg;
    scfg.frameStack = nc.inChannels;
    scfg.obsHeight = nc.inHeight;
    scfg.obsWidth = nc.inWidth;
    return std::make_unique<env::AtariSession>(
        env::makeEnvironment(kGame, seed), scfg, seed + 2);
}

struct DistRun
{
    double elapsedSec = 0.0;
    double stepsPerSec = 0.0;
    std::uint64_t version = 0;
    nn::ParamSet theta;
};

/** Train @p steps env steps through a PS with @p workers workers. */
DistRun
runDist(const nn::A3cNetwork &net, int workers, int agents_per_worker,
        std::uint64_t steps, std::uint64_t seed)
{
    dist::PsServerConfig ps_cfg;
    ps_cfg.totalSteps = steps;
    ps_cfg.initialLr = 1e-3f;
    ps_cfg.seed = seed;
    dist::PsServer ps(net, ps_cfg);
    if (!ps.start()) {
        std::fprintf(stderr, "dist bench: ps failed to start\n");
        std::exit(1);
    }

    std::vector<std::unique_ptr<dist::WorkerRunner>> runners;
    for (int w = 0; w < workers; ++w) {
        dist::WorkerConfig cfg;
        cfg.port = ps.port();
        cfg.name = "bench-w" + std::to_string(w);
        cfg.game = "pong";
        cfg.a3c.numAgents = agents_per_worker;
        cfg.a3c.backend = rl::BackendKind::FastCpu;
        cfg.a3c.seed = seed + 100u * static_cast<unsigned>(w + 1);
        runners.push_back(
            std::make_unique<dist::WorkerRunner>(net, cfg));
    }

    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(runners.size());
    for (auto &r : runners)
        threads.emplace_back([&r] { (void)r->run(); });
    ps.waitDone(-1);
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();
    for (auto &t : threads)
        t.join();

    DistRun out;
    out.elapsedSec = elapsed;
    out.stepsPerSec =
        elapsed > 0.0 ? static_cast<double>(ps.params().steps()) /
                            elapsed
                      : 0.0;
    out.version = ps.params().version();
    out.theta = net.makeParams();
    std::vector<float> flat;
    ps.params().snapshot(flat);
    std::copy(flat.begin(), flat.end(), out.theta.flat().begin());
    ps.stop();
    return out;
}

double
evalScore(const nn::A3cNetwork &net, const nn::ParamSet &theta)
{
    auto backend = rl::makeDnnBackend(rl::BackendKind::FastCpu, net);
    auto session = makeSession(net.config(), 991);
    rl::EvalConfig cfg;
    cfg.episodes = 5;
    cfg.seed = 1234;
    const rl::EvalResult r =
        rl::evaluatePolicy(*backend, theta, *session, cfg);
    return r.scores.mean();
}

} // namespace

int
main(int, char **)
{
    bench::banner("distributed training",
                  "Parameter-server A3C: worker scaling and parity "
                  "with the in-process trainer");

    // Leg 3 plumbing comes first so the scaling runs below feed the
    // dist_* instruments the aggregator will scrape back out.
    obs::metrics().setEnabled(true);
    obs::TelemetryServer telemetry_server(0);

    const std::uint64_t steps =
        bench::envKnob("FA3C_DIST_BENCH_STEPS", 4000);
    const std::uint64_t max_workers =
        bench::envKnob("FA3C_DIST_BENCH_MAX_WORKERS", 8);
    const std::uint64_t seed = 7;

    const int actions =
        env::makeEnvironment(kGame, 0)->numActions();
    const nn::A3cNetwork net(nn::NetConfig::tiny(actions));

    bench::JsonReport report("dist");
    report.field("steps",
                 static_cast<std::uint64_t>(steps));
    report.field("agents_per_worker", 1);

    std::printf("Scaling (%llu steps per config, 1 agent/worker, "
                "fast backend):\n",
                static_cast<unsigned long long>(steps));
    std::printf("%-10s %-12s %-12s %s\n", "workers", "steps/sec",
                "elapsed s", "scaling vs 1");
    double base_sps = 0.0;
    double scaling_x2 = 0.0;
    for (int workers = 1;
         workers <= static_cast<int>(max_workers); workers *= 2) {
        const DistRun run = runDist(net, workers, 1, steps, seed);
        if (workers == 1)
            base_sps = run.stepsPerSec;
        const double scaling =
            base_sps > 0.0 ? run.stepsPerSec / base_sps : 0.0;
        if (workers == 2)
            scaling_x2 = scaling;
        std::printf("%-10d %-12.0f %-12.2f %.2fx\n", workers,
                    run.stepsPerSec, run.elapsedSec, scaling);
        report.addRow()
            .set("workers", workers)
            .set("steps_per_sec", run.stepsPerSec)
            .set("elapsed_sec", run.elapsedSec)
            .set("scaling_vs_1", scaling)
            .set("final_version",
                 static_cast<std::uint64_t>(run.version));
    }
    report.field("dist_scaling_x2", scaling_x2);

    // --- parity with the single-process trainer ------------------
    std::printf("\nLearning-curve parity at %llu total steps:\n",
                static_cast<unsigned long long>(steps));
    rl::A3cConfig single_cfg;
    single_cfg.numAgents = 2;
    single_cfg.totalSteps = steps;
    single_cfg.initialLr = 1e-3f;
    single_cfg.lrAnnealSteps = 0;
    single_cfg.seed = seed;
    single_cfg.backend = rl::BackendKind::FastCpu;
    const nn::NetConfig nc = net.config();
    rl::A3cTrainer trainer(
        net, single_cfg, {}, [&nc](int agent_id) {
            return makeSession(
                nc, 11 + static_cast<std::uint64_t>(agent_id));
        });
    trainer.run();
    nn::ParamSet single_theta = net.makeParams();
    trainer.globalParams().snapshot(single_theta);

    const DistRun dist_run = runDist(net, 1, 2, steps, seed);

    const double single_score = evalScore(net, single_theta);
    const double dist_score = evalScore(net, dist_run.theta);
    const double gap =
        single_score > dist_score ? single_score - dist_score
                                  : dist_score - single_score;
    std::printf("  single-process eval : %.2f\n", single_score);
    std::printf("  dist (1 worker)     : %.2f\n", dist_score);
    std::printf("  gap                 : %.2f (noise band: 5.0)\n",
                gap);
    report.field("parity_single_score", single_score);
    report.field("parity_dist_score", dist_score);
    report.field("parity_gap", gap);

    // --- fleet telemetry aggregation -----------------------------
    // Scrape this process's own /metrics over real HTTP and roll it
    // up exactly as the launcher does for a worker fleet; a second
    // in-process "target" at the same port proves the per-process
    // labelling + fleet summation path with >= 2 parts.
    std::printf("\nTelemetry aggregation:\n");
    double fleet_staleness_count = 0.0;
    double fleet_staleness_mean = 0.0;
    double fleet_push_rtt_mean = 0.0;
    int scraped = 0;
    if (telemetry_server.ok()) {
        obs::AggregatorConfig acfg;
        acfg.targets.push_back(obs::ScrapeTarget{
            "bench-a", "127.0.0.1", telemetry_server.port()});
        acfg.targets.push_back(obs::ScrapeTarget{
            "bench-b", "127.0.0.1", telemetry_server.port()});
        obs::TelemetryAggregator agg(acfg);
        scraped = agg.scrapeOnce();
        const auto families =
            obs::parseExposition(agg.renderText());
        for (const auto &family : families) {
            if (family.name != "fa3c_dist_staleness" &&
                family.name != "fa3c_dist_push_rtt_us")
                continue;
            const bool is_staleness =
                family.name == "fa3c_dist_staleness";
            double sum = 0.0;
            double count = 0.0;
            for (const auto &sample : family.samples) {
                if (sample.label("process") != "fleet")
                    continue;
                if (sample.name == family.name + "_sum")
                    sum = sample.value;
                else if (sample.name == family.name + "_count")
                    count = sample.value;
            }
            const double mean = count > 0.0 ? sum / count : 0.0;
            if (is_staleness) {
                fleet_staleness_count = count;
                fleet_staleness_mean = mean;
            } else {
                fleet_push_rtt_mean = mean;
            }
        }
        std::printf("  endpoints scraped   : %d/2\n", scraped);
        std::printf("  fleet staleness     : n=%.0f mean=%.2f\n",
                    fleet_staleness_count, fleet_staleness_mean);
        std::printf("  fleet push RTT      : mean=%.0f us\n",
                    fleet_push_rtt_mean);
    } else {
        std::printf("  telemetry server unavailable; skipped\n");
    }
    report.field("aggregator_endpoints_scraped", scraped);
    report.field("fleet_staleness_count", fleet_staleness_count);
    report.field("fleet_staleness_mean", fleet_staleness_mean);
    report.field("fleet_push_rtt_us_mean", fleet_push_rtt_mean);

    return 0;
}
