/**
 * @file
 * Regenerates Figure 10: relative performance of the FA3C platform
 * configurations (FA3C, FA3C-Alt1, FA3C-Alt2, FA3C-SingleCU) on the
 * Stratix V single-CU-pair platform, normalized to FA3C at n = 16.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "harness/experiments.hh"
#include "harness/paper_data.hh"
#include "sim/table.hh"

using namespace fa3c;
using namespace fa3c::harness;

namespace {

const nn::NetConfig netCfg = nn::NetConfig::atari(4);

core::Fa3cConfig
variantConfig(core::Variant v)
{
    core::Fa3cConfig cfg = core::Fa3cConfig::stratixV();
    cfg.variant = v;
    return cfg;
}

void
BM_MeasureVariant(benchmark::State &state)
{
    const core::Fa3cConfig cfg = variantConfig(
        static_cast<core::Variant>(state.range(0)));
    for (auto _ : state) {
        const PlatformPoint p = measurePlatform(PlatformId::Fa3c, 16,
                                                netCfg, 5, 0.5, &cfg);
        benchmark::DoNotOptimize(p.ips);
    }
}
BENCHMARK(BM_MeasureVariant)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    bench::runMicrobenchmarks(argc, argv);
    bench::banner("Figure 10", "Performance of different FA3C "
                               "configurations (Stratix V, one CU "
                               "pair, normalized to FA3C @ n=16)");

    const double sim_seconds = static_cast<double>(
                                   bench::envKnob("FA3C_FIG10_SIM_MS",
                                                  3000)) /
                               1000.0;
    const int agent_counts[] = {1, 2, 4, 8, 16};
    const core::Variant variants[] = {
        core::Variant::Standard, core::Variant::Alt1,
        core::Variant::Alt2, core::Variant::SingleCU};

    // Baseline: FA3C standard at n = 16.
    const core::Fa3cConfig base_cfg =
        variantConfig(core::Variant::Standard);
    const double base_ips =
        measurePlatform(PlatformId::Fa3c, 16, netCfg, 5, sim_seconds,
                        &base_cfg)
            .ips;

    bench::JsonReport report("fig10_configs");
    report.field("base_ips_n16", base_ips);
    sim::TextTable table({"Configuration", "n=1", "n=2", "n=4", "n=8",
                          "n=16"});
    double alt1_16 = 0;
    double single_4 = 0, standard_4 = 0;
    for (core::Variant v : variants) {
        const core::Fa3cConfig cfg = variantConfig(v);
        std::vector<std::string> row = {core::variantName(v)};
        for (int n : agent_counts) {
            const double ips =
                measurePlatform(PlatformId::Fa3c, n, netCfg, 5,
                                sim_seconds, &cfg)
                    .ips;
            row.push_back(sim::TextTable::num(ips / base_ips, 2));
            report.addRow()
                .set("variant", core::variantName(v))
                .set("agents", n)
                .set("ips", ips)
                .set("relative_ips", ips / base_ips);
            if (v == core::Variant::Alt1 && n == 16)
                alt1_16 = ips;
            if (v == core::Variant::SingleCU && n == 4)
                single_4 = ips;
            if (v == core::Variant::Standard && n == 4)
                standard_4 = ips;
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("FA3C-Alt1 @ n=16: %.1f%% below FA3C (paper: 33%% "
                "lower).\n",
                100.0 * (1.0 - alt1_16 / base_ips));
    std::printf("Dual-CU vs SingleCU @ n=4: %+.1f%% (paper: the dual "
                "CU design wins for n >= 4).\n",
                100.0 * (standard_4 / single_4 - 1.0));
    return 0;
}
