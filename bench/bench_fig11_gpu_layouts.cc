/**
 * @file
 * Regenerates Figure 11: GPU computation time of the fully-connected
 * layers' inference and training tasks under three parameter-layout
 * strategies (FW for both, BW for both, best-per-task plus an
 * explicit transform kernel), and the Section 5.5 observation that
 * the transform offsets the matched-layout gain on a GPU while FA3C's
 * TLU hides it.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "fa3c/task_model.hh"
#include "fa3c/tlu.hh"
#include "gpu/layout_experiment.hh"
#include "harness/paper_data.hh"
#include "sim/table.hh"

using namespace fa3c;
using namespace fa3c::gpu;

namespace {

const nn::NetConfig netCfg = nn::NetConfig::atari(4);

void
BM_LayoutExperiment(benchmark::State &state)
{
    for (auto _ : state) {
        auto rows = layoutExperiment(netCfg, 5);
        benchmark::DoNotOptimize(rows.data());
    }
}
BENCHMARK(BM_LayoutExperiment)->Unit(benchmark::kMicrosecond);

void
BM_TluTransposeFc3(benchmark::State &state)
{
    // The functional cost of transposing FC3's full parameter block
    // through the TLU — the operation the GPU pays a kernel for.
    const nn::ConvSpec fc3 = core::asConv(nn::FcSpec{2592, 256});
    sim::Rng rng(3);
    std::vector<float> w(fc3.weightCount());
    for (float &v : w)
        v = rng.uniformF();
    const core::ParamMatrix fw = core::buildFwLayout(fc3, w);
    const std::vector<float> packed = core::packPatches(fw);
    for (auto _ : state) {
        core::ParamMatrix bw = core::loadBwViaTlu(fc3, packed);
        benchmark::DoNotOptimize(bw.data().data());
    }
}
BENCHMARK(BM_TluTransposeFc3)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    bench::runMicrobenchmarks(argc, argv);
    bench::banner("Figure 11", "GPU computation time (FC layers only) "
                               "under different parameter layouts");

    const auto rows = layoutExperiment(netCfg, 5);
    bench::JsonReport report("fig11_gpu_layouts");
    sim::TextTable table({"Configuration", "Inference (us)",
                          "Training (us)", "Transform (us)",
                          "Total (us)"});
    for (const auto &row : rows) {
        report.addRow()
            .set("config", row.config)
            .set("inference_us", row.inferenceSec * 1e6)
            .set("training_us", row.trainingSec * 1e6)
            .set("transform_us", row.transformSec * 1e6)
            .set("total_us", row.totalSec() * 1e6);
        table.addRow({row.config,
                      sim::TextTable::num(row.inferenceSec * 1e6, 1),
                      sim::TextTable::num(row.trainingSec * 1e6, 1),
                      row.transformSec > 0
                          ? sim::TextTable::num(row.transformSec * 1e6,
                                                1)
                          : std::string("-"),
                      sim::TextTable::num(row.totalSec() * 1e6, 1)});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Paper: inference under the BW layout is 41.7%% "
                "slower; measured: %.1f%%.\n",
                100.0 * (rows[1].inferenceSec / rows[0].inferenceSec -
                         1.0));
    std::printf("Best-per-task compute is fastest, but the transform "
                "kernel costs %.1f us per update — the work FA3C's "
                "TLU does for free inside the parameter load "
                "(Section 5.5).\n",
                rows[2].transformSec * 1e6);

    // FA3C side of the same story: the TLU's cycles are hidden
    // behind the DRAM burst stream.
    const nn::ConvSpec fc3 = core::asConv(nn::FcSpec{2592, 256});
    const std::uint64_t tlu_cycles = core::tluLoadCycles(fc3, 2);
    const std::uint64_t dram_beats =
        core::paddedParamWords(fc3) / core::dramBurstWords;
    report.field("tlu_transpose_cycles_fc3", tlu_cycles);
    report.field("dram_burst_beats_fc3", dram_beats);
    std::printf("FA3C TLU: %s cycles to transpose FC3 vs %s DRAM "
                "burst beats for the same load -> fully overlapped.\n",
                sim::TextTable::num(tlu_cycles).c_str(),
                sim::TextTable::num(dram_beats).c_str());
    return 0;
}
