/**
 * @file
 * Regenerates Figure 12: Atari game training results. For each of the
 * six games, A3C is actually trained end to end on the synthetic
 * environment — once with the reference DNN math (standing in for the
 * GPU implementation) and once through the FA3C functional datapath —
 * and the moving-average score curves are printed.
 *
 * Scaled down per DESIGN.md: the tiny network (4x21x21 input) and a
 * reduced step budget replace the paper's 100 M steps; the claim
 * being reproduced is that FA3C trains the A3C DNN correctly and its
 * curve tracks the GPU implementation's. FA3C_FIG12_STEPS and
 * FA3C_FIG12_AGENTS scale the run.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "harness/experiments.hh"
#include "sim/table.hh"

using namespace fa3c;
using namespace fa3c::harness;

namespace {

TrainingRunConfig
runConfig(env::GameId game, TrainingBackend backend,
          std::uint64_t steps, int agents)
{
    TrainingRunConfig cfg;
    cfg.game = game;
    cfg.net = nn::NetConfig::tiny(
        static_cast<int>(env::makeEnvironment(game, 0)->numActions()));
    cfg.backend = backend;
    cfg.scoreWindow = 40;
    cfg.a3c.numAgents = agents;
    cfg.a3c.totalSteps = steps;
    cfg.a3c.initialLr = 1e-3f;
    cfg.a3c.lrAnnealSteps = 0;
    cfg.a3c.seed = 11;
    return cfg;
}

void
BM_TrainingSteps(benchmark::State &state)
{
    // Cost of 400 real training steps (reference backend, Pong).
    for (auto _ : state) {
        TrainingRunConfig cfg = runConfig(
            env::GameId::Pong, TrainingBackend::Reference, 400, 2);
        const TrainingRunResult r = runTraining(cfg);
        benchmark::DoNotOptimize(r.steps);
    }
}
BENCHMARK(BM_TrainingSteps)->Unit(benchmark::kMillisecond);

/** Print a curve as ~8 sampled (step, score) points. */
std::string
curveString(const std::vector<CurvePoint> &curve)
{
    if (curve.empty())
        return "(no episodes)";
    std::string out;
    const std::size_t points = 8;
    for (std::size_t i = 0; i < points; ++i) {
        const std::size_t idx =
            std::min(curve.size() - 1,
                     i * (curve.size() - 1) / (points - 1));
        out += sim::TextTable::num(curve[idx].score, 1);
        if (i + 1 < points)
            out += " ";
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::runMicrobenchmarks(argc, argv);
    bench::banner("Figure 12",
                  "Atari game training results on the FA3C datapath "
                  "and the reference (GPU-equivalent) implementation");

    const std::uint64_t steps = bench::envKnob("FA3C_FIG12_STEPS",
                                               20000);
    const int agents = static_cast<int>(
        bench::envKnob("FA3C_FIG12_AGENTS", 4));
    std::printf("Run: %llu steps, %d agents per platform and game "
                "(paper: 100 M steps, 16 agents; see EXPERIMENTS.md "
                "for the scaling rationale).\n\n",
                static_cast<unsigned long long>(steps), agents);

    std::FILE *csv = bench::openCsv("fig12_training_curves.csv");
    if (csv)
        std::fprintf(csv, "game,platform,step,score\n");
    bench::JsonReport report("fig12_training");

    sim::TextTable table({"Game", "Platform", "Episodes",
                          "First avg score", "Final avg score",
                          "Curve (sampled)"});
    int improved = 0;
    int tracked = 0;
    for (env::GameId game : env::allGames) {
        double final_scores[2] = {0, 0};
        int i = 0;
        for (TrainingBackend backend : {TrainingBackend::Fa3c,
                                        TrainingBackend::Reference}) {
            const TrainingRunConfig cfg =
                runConfig(game, backend, steps, agents);
            const TrainingRunResult r = runTraining(cfg);
            final_scores[i++] = r.finalScore;
            if (csv) {
                for (const auto &point : r.curve)
                    std::fprintf(
                        csv, "%s,%s,%llu,%.3f\n", env::gameName(game),
                        backend == TrainingBackend::Fa3c ? "FA3C"
                                                         : "A3C-GPU",
                        static_cast<unsigned long long>(point.step),
                        point.score);
            }
            if (r.finalScore > r.firstScore)
                ++improved;
            report.addRow()
                .set("game", env::gameName(game))
                .set("platform",
                     backend == TrainingBackend::Fa3c ? "FA3C"
                                                      : "A3C-GPU")
                .set("episodes",
                     static_cast<std::uint64_t>(r.episodes))
                .set("first_score", r.firstScore)
                .set("final_score", r.finalScore);
            table.addRow(
                {env::gameName(game),
                 backend == TrainingBackend::Fa3c
                     ? "FA3C (datapath model)"
                     : "A3C-GPU (reference math)",
                 std::to_string(r.episodes),
                 sim::TextTable::num(r.firstScore, 1),
                 sim::TextTable::num(r.finalScore, 1),
                 curveString(r.curve)});
        }
        // "Similar training trends": the two final scores should be
        // in the same ballpark (same algorithm, same math).
        const double hi =
            std::max(std::abs(final_scores[0]),
                     std::abs(final_scores[1]));
        if (hi == 0.0 ||
            std::abs(final_scores[0] - final_scores[1]) <=
                0.75 * hi + 2.0)
            ++tracked;
    }
    if (csv)
        std::fclose(csv);
    std::printf("%s\n", table.render().c_str());

    // The wall-clock half of the paper's Figure 12 claim: at the
    // paper's operating point (16 agents) the same number of steps
    // finishes earlier on FA3C because of its higher IPS.
    const double fa3c_ips =
        measurePlatform(PlatformId::Fa3c, 16, nn::NetConfig::atari(4),
                        5, 1.0)
            .ips;
    const double cudnn_ips =
        measurePlatform(PlatformId::A3cCudnn, 16,
                        nn::NetConfig::atari(4), 5, 1.0)
            .ips;
    std::printf("Wall-clock for these %llu steps at the simulated "
                "full-size-network rates (16 agents, the paper's "
                "setting): FA3C %.1f s vs A3C-cuDNN %.1f s -> FA3C "
                "reaches the same score %.2fx sooner (the paper's "
                "Figure 12 observation).\n",
                static_cast<unsigned long long>(steps),
                static_cast<double>(steps) / fa3c_ips,
                static_cast<double>(steps) / cudnn_ips,
                fa3c_ips / cudnn_ips);
    report.field("fa3c_ips_n16", fa3c_ips);
    report.field("cudnn_ips_n16", cudnn_ips);
    report.field("wallclock_speedup", fa3c_ips / cudnn_ips);
    report.field("improved_runs", improved);
    report.field("tracked_games", tracked);
    std::printf("Runs with improving moving-average score: %d / 12\n",
                improved);
    std::printf("Games where the FA3C curve tracks the reference "
                "curve: %d / 6\n", tracked);
    std::printf("Paper: \"the FA3C platform has similar training "
                "trends to those of the GPU-based implementation\"; "
                "per-step math is identical up to fp32 reassociation "
                "(see the equivalence tests), so divergence comes only "
                "from RL stochasticity.\n");
    return 0;
}
