/**
 * @file
 * Regenerates Figure 8: IPS (inferences per second across all agents)
 * versus the number of agents for the five platforms — FA3C on the
 * simulated VCU1525 and the four GPU/CPU baselines — plus the Table 5
 * platform summary as a header.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "harness/experiments.hh"
#include "harness/paper_data.hh"
#include "sim/table.hh"

using namespace fa3c;
using namespace fa3c::harness;

namespace {

const nn::NetConfig netCfg = nn::NetConfig::atari(4);

void
BM_MeasureFa3cSixteenAgents(benchmark::State &state)
{
    for (auto _ : state) {
        const PlatformPoint p =
            measurePlatform(PlatformId::Fa3c, 16, netCfg, 5, 1.0);
        benchmark::DoNotOptimize(p.ips);
    }
}
BENCHMARK(BM_MeasureFa3cSixteenAgents)->Unit(benchmark::kMillisecond);

void
printTable5()
{
    std::printf("Table 5 — evaluation platforms (simulated):\n");
    sim::TextTable t({"", "FPGA", "GPU"});
    t.addRow({"Model", "Xilinx VCU1525 (UltraScale+ VU9P)",
              "NVIDIA Tesla P100"});
    t.addRow({"Core clock speed", "180 MHz", "1328 MHz"});
    t.addRow({"External DRAM interface", "DDR4", "HBM2"});
    t.addRow({"Peak DRAM bandwidth", "143 GB/s", "732 GB/s"});
    t.addRow({"Host interface", "PCI Express 3.0 x16",
              "PCI Express 3.0 x16"});
    t.addRow({"Host CPU", "2x Xeon E5-2630 2.20 GHz", "(same host)"});
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bench::runMicrobenchmarks(argc, argv);
    bench::banner("Figure 8",
                  "Performance of A3C Deep RL platforms (IPS vs #agents)");
    printTable5();

    const double sim_seconds = static_cast<double>(
                                   bench::envKnob("FA3C_FIG8_SIM_MS",
                                                  3000)) /
                               1000.0;
    const int agent_counts[] = {1, 2, 4, 8, 16, 32};

    std::FILE *csv = bench::openCsv("fig8_performance.csv");
    if (csv)
        std::fprintf(csv, "platform,agents,ips,utilization\n");
    bench::JsonReport report("fig8_performance");

    sim::TextTable table({"Platform", "n=1", "n=2", "n=4", "n=8",
                          "n=16", "n=32"});
    double fa3c_16 = 0, cudnn_16 = 0;
    for (PlatformId platform : allPlatforms) {
        std::vector<std::string> row = {platformIdName(platform)};
        for (int n : agent_counts) {
            const PlatformPoint p =
                measurePlatform(platform, n, netCfg, 5, sim_seconds);
            row.push_back(sim::TextTable::num(p.ips, 0));
            if (csv)
                std::fprintf(csv, "%s,%d,%.1f,%.4f\n",
                             platformIdName(platform), n, p.ips,
                             p.utilization);
            report.addRow()
                .set("platform", platformIdName(platform))
                .set("agents", n)
                .set("ips", p.ips)
                .set("utilization", p.utilization)
                .set("latency_p50_sec", p.latencyP50Sec)
                .set("latency_p95_sec", p.latencyP95Sec);
            if (n == 16 && platform == PlatformId::Fa3c)
                fa3c_16 = p.ips;
            if (n == 16 && platform == PlatformId::A3cCudnn)
                cudnn_16 = p.ips;
        }
        table.addRow(std::move(row));
    }
    if (csv)
        std::fclose(csv);
    std::printf("%s\n", table.render().c_str());

    std::printf("Measured FA3C @ n=16: %.0f IPS (paper: > %.0f)\n",
                fa3c_16, harness::paper::fa3cPeakIps);
    std::printf("Measured FA3C / A3C-cuDNN speedup @ n=16: %.1f%% "
                "(paper: +27.9%%)\n\n",
                100.0 * (fa3c_16 / cudnn_16 - 1.0));
    report.field("fa3c_ips_n16", fa3c_16);
    report.field("cudnn_ips_n16", cudnn_16);
    report.field("speedup_pct_n16",
                 100.0 * (fa3c_16 / cudnn_16 - 1.0));

    // Routine latency at n=16 — the per-agent view behind the
    // Section 3 argument that A3C needs low-latency small batches.
    std::printf("Agent routine latency @ n=16 (sync + 6 inferences + "
                "training):\n");
    sim::TextTable lat({"Platform", "mean (ms)", "p50 (ms)",
                        "p95 (ms)"});
    for (PlatformId platform : allPlatforms) {
        const PlatformPoint p =
            measurePlatform(platform, 16, netCfg, 5, sim_seconds);
        lat.addRow({platformIdName(platform),
                    sim::TextTable::num(p.latencyMeanSec * 1e3, 2),
                    sim::TextTable::num(p.latencyP50Sec * 1e3, 2),
                    sim::TextTable::num(p.latencyP95Sec * 1e3, 2)});
    }
    std::printf("%s", lat.render().c_str());
    return 0;
}
