/**
 * @file
 * Regenerates Figure 9: (a) incremental power consumption of each
 * platform during A3C training normalized to A3C-cuDNN, and (b)
 * energy efficiency in inferences per Watt, also normalized. The
 * power model combines each platform's measured utilization from the
 * Figure 8 simulation with its incremental-power coefficients.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "harness/experiments.hh"
#include "harness/paper_data.hh"
#include "power/power_model.hh"
#include "sim/table.hh"

using namespace fa3c;
using namespace fa3c::harness;

namespace {

const nn::NetConfig netCfg = nn::NetConfig::atari(4);

power::PlatformPower
powerFor(PlatformId id)
{
    switch (id) {
      case PlatformId::Fa3c: return power::PlatformPower::fa3c();
      case PlatformId::A3cCudnn:
        return power::PlatformPower::a3cCudnn();
      case PlatformId::A3cTfGpu:
        return power::PlatformPower::a3cTfGpu();
      case PlatformId::Ga3cTf: return power::PlatformPower::ga3cTf();
      case PlatformId::A3cTfCpu:
        return power::PlatformPower::a3cTfCpu();
    }
    return power::PlatformPower::fa3c();
}

void
BM_PowerEvaluation(benchmark::State &state)
{
    for (auto _ : state) {
        const PlatformPoint p =
            measurePlatform(PlatformId::Fa3c, 16, netCfg, 5, 0.5);
        const double watts =
            power::PlatformPower::fa3c().watts(p.utilization);
        benchmark::DoNotOptimize(watts);
    }
}
BENCHMARK(BM_PowerEvaluation)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    bench::runMicrobenchmarks(argc, argv);
    bench::banner("Figure 9",
                  "Power efficiency of A3C Deep RL platforms (n = 16)");

    struct Row
    {
        PlatformId id;
        double ips;
        double watts;
        double ipw;
    };
    std::vector<Row> rows;
    for (PlatformId id : allPlatforms) {
        const PlatformPoint p = measurePlatform(id, 16, netCfg, 5, 3.0);
        const double watts = powerFor(id).watts(p.utilization);
        rows.push_back(
            {id, p.ips, watts, power::inferencesPerWatt(p.ips, watts)});
    }
    const Row *cudnn = nullptr;
    const Row *fa3c = nullptr;
    for (const auto &r : rows) {
        if (r.id == PlatformId::A3cCudnn)
            cudnn = &r;
        if (r.id == PlatformId::Fa3c)
            fa3c = &r;
    }

    bench::JsonReport report("fig9_energy");
    sim::TextTable table({"Platform", "IPS", "Incremental Watts",
                          "Power vs A3C-cuDNN", "IPS/Watt",
                          "Efficiency vs A3C-cuDNN"});
    for (const auto &r : rows) {
        table.addRow({platformIdName(r.id),
                      sim::TextTable::num(r.ips, 0),
                      sim::TextTable::num(r.watts, 1),
                      sim::TextTable::num(r.watts / cudnn->watts, 2),
                      sim::TextTable::num(r.ipw, 1),
                      sim::TextTable::num(r.ipw / cudnn->ipw, 2)});
        report.addRow()
            .set("platform", platformIdName(r.id))
            .set("ips", r.ips)
            .set("watts", r.watts)
            .set("ips_per_watt", r.ipw)
            .set("efficiency_vs_cudnn", r.ipw / cudnn->ipw);
    }
    std::printf("%s\n", table.render().c_str());
    report.field("fa3c_watts", fa3c->watts);
    report.field("fa3c_power_reduction_pct",
                 100.0 * (1.0 - fa3c->watts / cudnn->watts));
    report.field("fa3c_ips_per_watt", fa3c->ipw);

    std::printf("Paper: FA3C ~18 W (a 30.0%% reduction vs A3C-cuDNN), "
                ">142 IPS/W, 1.62x efficiency.\n");
    std::printf("Measured: FA3C %.1f W (%.1f%% reduction), %.1f IPS/W, "
                "%.2fx efficiency.\n",
                fa3c->watts,
                100.0 * (1.0 - fa3c->watts / cudnn->watts), fa3c->ipw,
                fa3c->ipw / cudnn->ipw);
    std::printf("(EXPERIMENTS.md discusses why the paper's own 27.9%% "
                "speedup, 30%% power cut, and 1.62x efficiency are not "
                "mutually consistent; our model reproduces the first "
                "two and lands near 1.8x on the third.)\n");
    return 0;
}
