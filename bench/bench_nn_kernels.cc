/**
 * @file
 * Golden-vs-fast kernel comparison: times every layer of the A3C
 * network (Table 1 geometry) through the golden loops in nn/layers.cc
 * and the blocked im2col/GEMM kernels in nn/kernels/, for all three
 * computation types (FW, BW, GC), then the end-to-end forward and
 * backward passes through ReferenceBackend vs FastCpuBackend, and the
 * batched multi-agent forward path.
 *
 * Writes $FA3C_JSON_DIR/BENCH_nn_kernels.json with one row per
 * (layer, op) pair plus header fields fw_speedup_e2e /
 * bw_speedup_e2e / batch16_fw_speedup / small_layer_speedup /
 * int8_speedup / fp16_speedup; CI gates on fw_speedup_e2e >= 2,
 * small_layer_speedup >= 1 (the narrow-FC dot path must beat the
 * panel GEMM it replaced) and int8_speedup >= 1.5 (quantized batched
 * forward on the wide serving net vs fp32 FastCpuBackend).
 *
 * Knobs: FA3C_NN_KERNELS_REPS (per-layer timing iterations, default
 * 30) and FA3C_NN_KERNELS_E2E_REPS (end-to-end iterations, default
 * 60) shrink the run for smoke tests.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <limits>
#include <vector>

#include "bench_util.hh"
#include "nn/a3c_network.hh"
#include "obs/profile.hh"
#include "nn/kernels/conv.hh"
#include "nn/kernels/fc.hh"
#include "nn/kernels/gemm.hh"
#include "nn/kernels/im2col.hh"
#include "nn/layers.hh"
#include "nn/kernels/dispatch.hh"
#include "rl/backend.hh"
#include "rl/fast_cpu_backend.hh"
#include "rl/quant_backend.hh"
#include "sim/rng.hh"
#include "sim/table.hh"
#include "tensor/tensor.hh"

using namespace fa3c;

namespace {

void
randomize(std::span<float> s, sim::Rng &rng)
{
    for (float &v : s)
        v = -1.0f + 2.0f * rng.uniformF();
}

constexpr std::uint64_t kTimeBatches = 5;

/** Per-iteration mean (ms) of one timed batch of @p iters calls. */
template <typename F>
double
timeBatchMs(F &&fn, std::uint64_t iters)
{
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < iters; ++r)
        fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count() /
           static_cast<double>(iters);
}

/**
 * Milliseconds per iteration: one warm-up call, then the best
 * (lowest) per-iteration mean over five equal batches of the reps.
 * The minimum is the estimator least sensitive to scheduler
 * interference on shared hosts — stalls only ever add time, so the
 * fastest batch is the closest observation of the true cost.
 */
template <typename F>
double
timeMs(F &&fn, std::uint64_t reps)
{
    fn();
    const std::uint64_t per =
        std::max<std::uint64_t>(1, reps / kTimeBatches);
    double best_ms = std::numeric_limits<double>::infinity();
    for (std::uint64_t batch = 0; batch < kTimeBatches; ++batch)
        best_ms = std::min(best_ms, timeBatchMs(fn, per));
    return best_ms;
}

/**
 * Best-batch timing of several alternatives with their batches
 * interleaved (A B C A B C ... instead of AAA BBB CCC). Every
 * speedup ratio the caller forms divides numbers observed under the
 * same transient machine conditions — background load or a frequency
 * step hits all alternatives alike instead of whichever phase it
 * landed on, which is what keeps the gated ratios stable on shared
 * hosts.
 */
std::vector<double>
timeManyMs(std::uint64_t reps,
           const std::vector<std::function<void()>> &fns)
{
    const std::uint64_t per =
        std::max<std::uint64_t>(1, reps / kTimeBatches);
    for (const auto &fn : fns)
        fn(); // warm-up
    std::vector<double> best(
        fns.size(), std::numeric_limits<double>::infinity());
    for (std::uint64_t batch = 0; batch < kTimeBatches; ++batch)
        for (std::size_t i = 0; i < fns.size(); ++i)
            best[i] = std::min(best[i], timeBatchMs(fns[i], per));
    return best;
}

double
gflops(std::size_t macs, double ms)
{
    return 2.0 * static_cast<double>(macs) / (ms * 1e-3) / 1e9;
}

/** An empty function whose only cost is its profiling scope. */
__attribute__((noinline)) void
profCalibrationSite()
{
    FA3C_PROF_SCOPE("bench.prof_calib");
    asm volatile("");
}

/**
 * Nanoseconds per call of the scope-only function with profiling
 * @p enabled. The scope mechanics dominate the loop body, so unlike
 * an end-to-end diff this resolves the per-scope cost directly.
 * Minimum of several rounds to shed scheduler noise.
 */
double
profCalibrate(bool enabled)
{
    const bool was = obs::profilingEnabled();
    obs::setProfilingEnabled(enabled);
    constexpr int kCalls = 200000;
    double best = 1e30;
    for (int round = 0; round < 5; ++round) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kCalls; ++i)
            profCalibrationSite();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double, std::nano>(t1 - t0)
                          .count() /
                      kCalls);
    }
    obs::setProfilingEnabled(was);
    return best;
}

struct OpResult
{
    const char *layer;
    const char *op;
    std::size_t macs;
    double goldenMs;
    double fastMs;
};

std::vector<OpResult>
benchConvLayer(const char *name, const nn::ConvSpec &spec,
               std::uint64_t reps, sim::Rng &rng)
{
    tensor::Tensor in(tensor::Shape(
        {spec.inChannels, spec.inHeight, spec.inWidth}));
    in.fillUniform(rng, -1.0f, 1.0f);
    std::vector<float> w(spec.weightCount()), b(spec.biasCount());
    randomize(w, rng);
    randomize(b, rng);
    std::vector<float> wT(spec.weightCount());
    nn::kernels::transpose(
        w.data(), spec.outChannels,
        static_cast<int>(nn::kernels::patchSize(spec)), wT.data());

    tensor::Tensor out(tensor::Shape(
        {spec.outChannels, spec.outHeight(), spec.outWidth()}));
    tensor::Tensor g_out(out.shape());
    g_out.fillUniform(rng, -1.0f, 1.0f);
    tensor::Tensor g_in(in.shape());
    std::vector<float> gw(spec.weightCount()), gb(spec.biasCount());
    std::vector<float> scratch(nn::kernels::colSize(spec));

    std::vector<OpResult> results;
    results.push_back(
        {name, "fw", spec.fwMacs(),
         timeMs([&] { nn::convForward(spec, in, w, b, out); }, reps),
         timeMs(
             [&] {
                 nn::kernels::convForwardFast(spec, in.data().data(), w,
                                              b, out.data().data(),
                                              scratch);
             },
             reps)});
    results.push_back(
        {name, "bw", spec.fwMacs(),
         timeMs([&] { nn::convBackward(spec, g_out, w, g_in); }, reps),
         timeMs(
             [&] {
                 nn::kernels::convBackwardFast(spec,
                                               g_out.data().data(), wT,
                                               g_in.data().data(),
                                               scratch);
             },
             reps)});
    // Both gradient paths accumulate, so the timed body zeroes first
    // (the same cost on each side).
    results.push_back(
        {name, "gc", spec.fwMacs(),
         timeMs(
             [&] {
                 std::fill(gw.begin(), gw.end(), 0.0f);
                 std::fill(gb.begin(), gb.end(), 0.0f);
                 nn::convGradient(spec, in, g_out, gw, gb);
             },
             reps),
         timeMs(
             [&] {
                 std::fill(gw.begin(), gw.end(), 0.0f);
                 std::fill(gb.begin(), gb.end(), 0.0f);
                 nn::kernels::convGradientFast(spec, in.data().data(),
                                               g_out.data().data(), gw,
                                               gb, scratch);
             },
             reps)});
    benchmark::DoNotOptimize(out.data().data());
    benchmark::DoNotOptimize(g_in.data().data());
    benchmark::DoNotOptimize(gw.data());
    return results;
}

std::vector<OpResult>
benchFcLayer(const char *name, const nn::FcSpec &spec,
             std::uint64_t reps, sim::Rng &rng)
{
    tensor::Tensor in(tensor::Shape({spec.inFeatures}));
    in.fillUniform(rng, -1.0f, 1.0f);
    std::vector<float> w(spec.weightCount()), b(spec.biasCount());
    randomize(w, rng);
    randomize(b, rng);
    std::vector<float> wT(spec.weightCount());
    nn::kernels::transpose(w.data(), spec.outFeatures, spec.inFeatures,
                           wT.data());

    tensor::Tensor out(tensor::Shape({spec.outFeatures}));
    tensor::Tensor g_out(out.shape());
    g_out.fillUniform(rng, -1.0f, 1.0f);
    tensor::Tensor g_in(in.shape());
    std::vector<float> gw(spec.weightCount()), gb(spec.biasCount());

    std::vector<OpResult> results;
    results.push_back(
        {name, "fw", spec.fwMacs(),
         timeMs([&] { nn::fcForward(spec, in, w, b, out); }, reps),
         timeMs(
             [&] {
                 nn::kernels::fcForwardFast(spec, in.data().data(), wT,
                                            b, out.data().data());
             },
             reps)});
    results.push_back(
        {name, "bw", spec.fwMacs(),
         timeMs([&] { nn::fcBackward(spec, g_out, w, g_in); }, reps),
         timeMs(
             [&] {
                 nn::kernels::fcBackwardFast(spec, g_out.data().data(),
                                             w, g_in.data().data());
             },
             reps)});
    results.push_back(
        {name, "gc", spec.fwMacs(),
         timeMs(
             [&] {
                 std::fill(gw.begin(), gw.end(), 0.0f);
                 std::fill(gb.begin(), gb.end(), 0.0f);
                 nn::fcGradient(spec, in, g_out, gw, gb);
             },
             reps),
         timeMs(
             [&] {
                 std::fill(gw.begin(), gw.end(), 0.0f);
                 std::fill(gb.begin(), gb.end(), 0.0f);
                 nn::kernels::fcGradientFast(spec, in.data().data(),
                                             g_out.data().data(), gw,
                                             gb);
             },
             reps)});
    benchmark::DoNotOptimize(out.data().data());
    benchmark::DoNotOptimize(g_in.data().data());
    benchmark::DoNotOptimize(gw.data());
    return results;
}

} // namespace

int
main(int, char **)
{
    bench::banner("nn kernels",
                  "Golden layer loops vs the blocked im2col/GEMM "
                  "kernel library (A3C network, Table 1 geometry)");

    const std::uint64_t reps =
        bench::envKnob("FA3C_NN_KERNELS_REPS", 30);
    const std::uint64_t e2e_reps =
        bench::envKnob("FA3C_NN_KERNELS_E2E_REPS", 60);

    const nn::NetConfig cfg = nn::NetConfig::atari(4);
    const nn::A3cNetwork net(cfg);
    sim::Rng rng(31);

    // --- Per-layer, per-op timings -------------------------------
    std::vector<OpResult> results;
    for (const auto &r : benchConvLayer("conv1", net.conv1(), reps, rng))
        results.push_back(r);
    for (const auto &r : benchConvLayer("conv2", net.conv2(), reps, rng))
        results.push_back(r);
    for (const auto &r : benchFcLayer("fc3", net.fc3(), reps, rng))
        results.push_back(r);
    for (const auto &r : benchFcLayer("fc4", net.fc4(), reps, rng))
        results.push_back(r);

    bench::JsonReport report("nn_kernels");
    sim::TextTable table({"Layer", "Op", "Golden ms", "Fast ms",
                          "Golden GFLOP/s", "Fast GFLOP/s", "Speedup"});
    for (const auto &r : results) {
        const double speedup = r.goldenMs / r.fastMs;
        table.addRow({r.layer, r.op, sim::TextTable::num(r.goldenMs, 3),
                      sim::TextTable::num(r.fastMs, 3),
                      sim::TextTable::num(gflops(r.macs, r.goldenMs)),
                      sim::TextTable::num(gflops(r.macs, r.fastMs)),
                      sim::TextTable::num(speedup) + "x"});
        report.addRow()
            .set("layer", r.layer)
            .set("op", r.op)
            .set("macs", static_cast<std::uint64_t>(r.macs))
            .set("golden_ms", r.goldenMs)
            .set("fast_ms", r.fastMs)
            .set("golden_gflops", gflops(r.macs, r.goldenMs))
            .set("fast_gflops", gflops(r.macs, r.fastMs))
            .set("speedup", speedup);
    }
    std::printf("%s\n", table.render().c_str());

    // --- End-to-end network passes through the backends ----------
    nn::ParamSet params = net.makeParams();
    net.initParams(params, rng);
    tensor::Tensor obs(tensor::Shape(
        {cfg.inChannels, cfg.inHeight, cfg.inWidth}));
    obs.fillUniform(rng, 0.0f, 1.0f);

    rl::ReferenceBackend golden(net);
    rl::FastCpuBackend fast(net);
    golden.onParamSync(params);
    fast.onParamSync(params);

    auto act_golden = net.makeActivations();
    auto act_fast = net.makeActivations();
    const auto fw_ms = timeManyMs(
        e2e_reps,
        {[&] { golden.forward(params, obs, act_golden); },
         [&] { fast.forward(params, obs, act_fast); }});
    const double fw_golden_ms = fw_ms[0];
    const double fw_fast_ms = fw_ms[1];
    const double fw_speedup = fw_golden_ms / fw_fast_ms;

    tensor::Tensor g_out(tensor::Shape({net.outSize()}));
    g_out.fillUniform(rng, -1.0f, 1.0f);
    nn::ParamSet grads = net.makeParams();
    const auto bw_ms = timeManyMs(
        e2e_reps,
        {[&] {
             grads.zero();
             golden.backward(params, act_golden, g_out, grads);
         },
         [&] {
             grads.zero();
             fast.backward(params, act_fast, g_out, grads);
         }});
    const double bw_golden_ms = bw_ms[0];
    const double bw_fast_ms = bw_ms[1];
    const double bw_speedup = bw_golden_ms / bw_fast_ms;

    // --- Batched multi-agent forward (the PAAC / GA3C path) ------
    const int batch = 16;
    std::vector<tensor::Tensor> batch_obs_store;
    std::vector<nn::A3cNetwork::Activations> batch_acts_store;
    std::vector<const tensor::Tensor *> batch_obs;
    std::vector<nn::A3cNetwork::Activations *> batch_acts;
    for (int i = 0; i < batch; ++i) {
        batch_obs_store.emplace_back(obs.shape());
        batch_obs_store.back().fillUniform(rng, 0.0f, 1.0f);
        batch_acts_store.push_back(net.makeActivations());
    }
    for (int i = 0; i < batch; ++i) {
        batch_obs.push_back(&batch_obs_store[static_cast<std::size_t>(i)]);
        batch_acts.push_back(
            &batch_acts_store[static_cast<std::size_t>(i)]);
    }
    const auto batch_ms = timeManyMs(
        e2e_reps,
        {[&] {
             for (int i = 0; i < batch; ++i)
                 fast.forward(params,
                              *batch_obs[static_cast<std::size_t>(i)],
                              *batch_acts[static_cast<std::size_t>(i)]);
         },
         [&] { fast.forwardBatch(params, batch_obs, batch_acts); }});
    const double batch_loop_ms = batch_ms[0];
    const double batch_gemm_ms = batch_ms[1];
    const double batch_speedup = batch_loop_ms / batch_gemm_ms;

    // --- Small-FC fast path (the old fc4 regression) -------------
    // Batch-16 fc4 through the canonical-row dot kernel vs the panel
    // GEMM it replaced: the 5-wide head pads to a 32-column strip
    // under the panel layout, wasting 6x the weight bandwidth, which
    // made the fast path slower than golden. Gate: >= 1.0x.
    const nn::FcSpec &f4 = net.fc4();
    double small_speedup;
    double small_dot_ms;
    double small_panel_ms;
    {
        std::vector<float> small_in(
            static_cast<std::size_t>(batch) *
            static_cast<std::size_t>(f4.inFeatures));
        std::vector<float> small_out(
            static_cast<std::size_t>(batch) *
            static_cast<std::size_t>(f4.outFeatures));
        randomize(small_in, rng);
        std::vector<float> w4T(f4.weightCount());
        nn::kernels::transpose(params.view("fc4.w").data(),
                               f4.outFeatures, f4.inFeatures,
                               w4T.data());
        std::vector<float> panels4(nn::kernels::gemmPanelSize(
            f4.outFeatures, f4.inFeatures));
        nn::kernels::gemmPackPanels(f4.outFeatures, f4.inFeatures,
                                    w4T.data(), f4.outFeatures,
                                    panels4.data());
        const auto small_ms = timeManyMs(
            e2e_reps,
            {[&] {
                 nn::kernels::fcForwardSmallBatch(
                     f4, batch, small_in.data(), params.view("fc4.w"),
                     params.view("fc4.b"), small_out.data());
             },
             [&] {
                 nn::kernels::fcForwardFastBatchPanels(
                     f4, batch, small_in.data(), panels4,
                     params.view("fc4.b"), small_out.data());
             }});
        small_dot_ms = small_ms[0];
        small_panel_ms = small_ms[1];
        benchmark::DoNotOptimize(small_out.data());
        small_speedup = small_panel_ms / small_dot_ms;
    }

    // --- Quantized backends on the wide serving net ---------------
    // The paper-geometry FC3 (2592x256) is too narrow to expose the
    // weight-bandwidth win; the serving configuration (fcSize 1024)
    // is where int8 pays. Batch-16 forward, fp32 FastCpuBackend as
    // the baseline for both quantized modes.
    nn::NetConfig wcfg = nn::NetConfig::atari(cfg.numActions);
    wcfg.fcSize = 1024;
    const nn::A3cNetwork wnet(wcfg);
    nn::ParamSet wparams = wnet.makeParams();
    wnet.initParams(wparams, rng);

    rl::FastCpuBackend wfast(wnet);
    rl::QuantCpuBackend wq8(wnet, nn::QuantMode::Int8);
    rl::QuantCpuBackend wf16(wnet, nn::QuantMode::Fp16);
    wfast.onParamSync(wparams);
    wq8.onParamSync(wparams);
    wf16.onParamSync(wparams);

    std::vector<tensor::Tensor> wobs_store;
    std::vector<nn::A3cNetwork::Activations> wacts_store;
    std::vector<const tensor::Tensor *> wobs;
    std::vector<nn::A3cNetwork::Activations *> wacts;
    for (int i = 0; i < batch; ++i) {
        wobs_store.emplace_back(obs.shape());
        wobs_store.back().fillUniform(rng, 0.0f, 1.0f);
        wacts_store.push_back(wnet.makeActivations());
    }
    for (int i = 0; i < batch; ++i) {
        wobs.push_back(&wobs_store[static_cast<std::size_t>(i)]);
        wacts.push_back(&wacts_store[static_cast<std::size_t>(i)]);
    }
    const std::uint64_t wide_reps = std::max<std::uint64_t>(
        5, e2e_reps / 4);
    const auto wide_ms = timeManyMs(
        wide_reps,
        {[&] { wfast.forwardBatch(wparams, wobs, wacts); },
         [&] { wq8.forwardBatch(wparams, wobs, wacts); },
         [&] { wf16.forwardBatch(wparams, wobs, wacts); }});
    const double wide_fp32_ms = wide_ms[0];
    const double wide_int8_ms = wide_ms[1];
    const double wide_fp16_ms = wide_ms[2];
    const double int8_speedup = wide_fp32_ms / wide_int8_ms;
    const double fp16_speedup = wide_fp32_ms / wide_fp16_ms;

    sim::TextTable e2e({"End-to-end pass", "Golden ms", "Fast ms",
                        "Speedup"});
    e2e.addRow({"forward (1 agent)", sim::TextTable::num(fw_golden_ms, 3),
                sim::TextTable::num(fw_fast_ms, 3),
                sim::TextTable::num(fw_speedup) + "x"});
    e2e.addRow({"backward + gradient", sim::TextTable::num(bw_golden_ms, 3),
                sim::TextTable::num(bw_fast_ms, 3),
                sim::TextTable::num(bw_speedup) + "x"});
    e2e.addRow({"forward x16 loop vs batched",
                sim::TextTable::num(batch_loop_ms, 3),
                sim::TextTable::num(batch_gemm_ms, 3),
                sim::TextTable::num(batch_speedup) + "x"});
    e2e.addRow({"fc4 x16: panel GEMM vs dot path",
                sim::TextTable::num(small_panel_ms, 3),
                sim::TextTable::num(small_dot_ms, 3),
                sim::TextTable::num(small_speedup) + "x"});
    e2e.addRow({"wide net x16: fp32 vs int8",
                sim::TextTable::num(wide_fp32_ms, 3),
                sim::TextTable::num(wide_int8_ms, 3),
                sim::TextTable::num(int8_speedup) + "x"});
    e2e.addRow({"wide net x16: fp32 vs fp16",
                sim::TextTable::num(wide_fp32_ms, 3),
                sim::TextTable::num(wide_fp16_ms, 3),
                sim::TextTable::num(fp16_speedup) + "x"});
    std::printf("%s\n", e2e.render().c_str());
    std::printf("Kernel ISA: %s\n", nn::kernels::isaName());
    std::printf("CI gate: fw_speedup_e2e = %.2fx (must be >= 2.0)\n",
                fw_speedup);
    std::printf("CI gate: small_layer_speedup = %.2fx (must be >= "
                "1.0)\n",
                small_speedup);
    std::printf("CI gate: int8_speedup = %.2fx (must be >= 1.5)\n",
                int8_speedup);

    // --- ProfScope overhead A/B ----------------------------------
    // The kernels and backend carry FA3C_PROF_SCOPE markers. The true
    // per-scope cost (~100 ns enabled, a relaxed load disabled) is
    // far below the run-to-run jitter of a ~0.3 ms forward on a
    // shared machine, so a naive e2e off/on diff mostly measures
    // noise. Two measurements instead:
    //
    //  1. Calibrate the per-scope cost with an A/B on an instrumented
    //     empty function, where the scope mechanics dominate the loop
    //     and are resolvable to the nanosecond.
    //  2. Count the scopes one forward actually crosses (from the
    //     profiler's own counts), then express
    //     scopes/fw x cost/scope as a percentage of the forward.
    //
    // The interleaved e2e diff is still printed as a sanity check
    // that nothing pathological (cache blowup, false sharing) makes
    // the composed estimate a lie; it is noise-bounded, not gated.
    const bool prof_was_enabled = obs::profilingEnabled();
    const double scope_on_ns =
        profCalibrate(true) - profCalibrate(false);
    const double scope_off_ns =
        profCalibrate(false) - profCalibrate(false);

    obs::setProfilingEnabled(true);
    obs::profReset();
    const int count_reps = 50;
    for (int i = 0; i < count_reps; ++i)
        fast.forward(params, obs, act_fast);
    std::uint64_t scope_hits = 0;
    for (const auto &[label, stats] : obs::profSnapshot())
        scope_hits += stats.count;
    const double scopes_per_fw =
        static_cast<double>(scope_hits) / count_reps;

    obs::profReset();
    const std::uint64_t ab_reps = std::max<std::uint64_t>(10, e2e_reps / 3);
    double fw_prof_off_ms = 1e30;
    double fw_prof_on_ms = 1e30;
    for (int round = 0; round < 7; ++round) {
        obs::setProfilingEnabled(false);
        fw_prof_off_ms = std::min(
            fw_prof_off_ms,
            timeMs([&] { fast.forward(params, obs, act_fast); },
                   ab_reps));
        obs::setProfilingEnabled(true);
        fw_prof_on_ms = std::min(
            fw_prof_on_ms,
            timeMs([&] { fast.forward(params, obs, act_fast); },
                   ab_reps));
    }
    obs::setProfilingEnabled(prof_was_enabled);

    const double fw_ns = fw_prof_off_ms * 1e6;
    const double prof_overhead_pct =
        scopes_per_fw * scope_on_ns / fw_ns * 100.0;
    const double prof_disabled_pct =
        scopes_per_fw * std::max(scope_off_ns, 0.0) / fw_ns * 100.0;
    const double e2e_diff_pct =
        (fw_prof_on_ms - fw_prof_off_ms) / fw_prof_off_ms * 100.0;
    std::printf("ProfScope cost: %.1f ns/scope enabled, %.1f "
                "scopes/forward\n",
                scope_on_ns, scopes_per_fw);
    std::printf("ProfScope overhead on forward e2e: %.4f%% enabled "
                "(gate < 1%%), %.4f%% disabled; interleaved e2e diff "
                "%+.2f%% (noise check)\n\n",
                prof_overhead_pct, prof_disabled_pct, e2e_diff_pct);
    report.field("prof_overhead_pct", prof_overhead_pct);
    report.field("prof_disabled_overhead_pct", prof_disabled_pct);
    report.field("prof_scope_ns", scope_on_ns);
    report.field("prof_scopes_per_fw", scopes_per_fw);
    report.field("prof_e2e_diff_pct", e2e_diff_pct);

    report.field("fw_speedup_e2e", fw_speedup);
    report.field("bw_speedup_e2e", bw_speedup);
    report.field("batch16_fw_speedup", batch_speedup);
    report.field("small_layer_speedup", small_speedup);
    report.field("int8_speedup", int8_speedup);
    report.field("fp16_speedup", fp16_speedup);
    report.field("kernel_isa", nn::kernels::isaName());
    report.field("reps", reps);
    report.field("e2e_reps", e2e_reps);
    report.addRow()
        .set("layer", "net")
        .set("op", "fw_e2e")
        .set("golden_ms", fw_golden_ms)
        .set("fast_ms", fw_fast_ms)
        .set("speedup", fw_speedup);
    report.addRow()
        .set("layer", "net")
        .set("op", "bw_e2e")
        .set("golden_ms", bw_golden_ms)
        .set("fast_ms", bw_fast_ms)
        .set("speedup", bw_speedup);
    report.addRow()
        .set("layer", "net")
        .set("op", "fw_batch16")
        .set("golden_ms", batch_loop_ms)
        .set("fast_ms", batch_gemm_ms)
        .set("speedup", batch_speedup);
    report.addRow()
        .set("layer", "fc4")
        .set("op", "fw_batch16_small")
        .set("golden_ms", small_panel_ms)
        .set("fast_ms", small_dot_ms)
        .set("speedup", small_speedup);
    report.addRow()
        .set("layer", "net_wide")
        .set("op", "fw_batch16_int8")
        .set("golden_ms", wide_fp32_ms)
        .set("fast_ms", wide_int8_ms)
        .set("speedup", int8_speedup);
    report.addRow()
        .set("layer", "net_wide")
        .set("op", "fw_batch16_fp16")
        .set("golden_ms", wide_fp32_ms)
        .set("fast_ms", wide_fp16_ms)
        .set("speedup", fp16_speedup);
    return 0;
}
