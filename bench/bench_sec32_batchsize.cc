/**
 * @file
 * Regenerates the Section 3.2 batch-size observation: raising t_max
 * (the A3C rollout length / training batch size) to improve device
 * utilization hurts training quality — the paper reports Breakout
 * needing ~35 M steps to reach 200 points with t_max = 5 but over
 * 70 M with t_max = 32.
 *
 * We run real A3C training on the synthetic Breakout with both
 * settings for a fixed step budget (deterministic round-robin
 * scheduling, three seeds) and compare the scores reached — the
 * fixed-budget dual of the paper's steps-to-score measurement, which
 * has far lower variance at this scale. The structural driver is also
 * reported: t_max = 32 applies 6.4x fewer global updates per step.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "harness/experiments.hh"
#include "harness/paper_data.hh"
#include "sim/table.hh"

using namespace fa3c;
using namespace fa3c::harness;

namespace {

TrainingRunConfig
breakoutConfig(int t_max, std::uint64_t seed, std::uint64_t steps)
{
    TrainingRunConfig cfg;
    cfg.game = env::GameId::Breakout;
    cfg.net = nn::NetConfig::tiny(4);
    cfg.scoreWindow = 40;
    cfg.a3c.numAgents = 4;
    cfg.a3c.tMax = t_max;
    cfg.a3c.initialLr = 1e-3f;
    cfg.a3c.lrAnnealSteps = 0;
    cfg.a3c.seed = seed;
    cfg.a3c.totalSteps = steps;
    cfg.a3c.async = false; // deterministic, reproducible numbers
    return cfg;
}

void
BM_RolloutCost(benchmark::State &state)
{
    // Wall-clock cost of 600 training steps at the given t_max:
    // larger batches amortize the parameter sync but change the
    // algorithm.
    const int t_max = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const TrainingRunResult r =
            runTraining(breakoutConfig(t_max, 3, 600));
        benchmark::DoNotOptimize(r.steps);
    }
}
BENCHMARK(BM_RolloutCost)->Arg(5)->Arg(32)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    bench::runMicrobenchmarks(argc, argv);
    bench::banner("Section 3.2",
                  "Batch-size limitation: Breakout score after a "
                  "fixed step budget, t_max = 5 vs t_max = 32");

    const std::uint64_t steps = bench::envKnob("FA3C_SEC32_STEPS",
                                               25000);
    std::printf("Fixed budget: %llu steps, 4 agents, deterministic "
                "scheduling, three seeds. Paper's experiment: score "
                "200 on real Breakout in ~35 M steps (t_max=5) vs "
                ">70 M (t_max=32).\n\n",
                static_cast<unsigned long long>(steps));

    bench::JsonReport report("sec32_batchsize");
    sim::TextTable table({"Seed", "t_max=5 final score",
                          "t_max=32 final score", "Winner"});
    double sum5 = 0, sum32 = 0;
    int wins5 = 0;
    for (std::uint64_t seed : {3ull, 17ull, 29ull}) {
        const TrainingRunResult r5 =
            runTraining(breakoutConfig(5, seed, steps));
        const TrainingRunResult r32 =
            runTraining(breakoutConfig(32, seed, steps));
        sum5 += r5.finalScore;
        sum32 += r32.finalScore;
        wins5 += r5.finalScore > r32.finalScore;
        report.addRow()
            .set("seed", seed)
            .set("score_tmax5", r5.finalScore)
            .set("score_tmax32", r32.finalScore);
        table.addRow({std::to_string(seed),
                      sim::TextTable::num(r5.finalScore, 2),
                      sim::TextTable::num(r32.finalScore, 2),
                      r5.finalScore > r32.finalScore ? "t_max=5"
                                                     : "t_max=32"});
    }
    table.addRow({"mean", sim::TextTable::num(sum5 / 3, 2),
                  sim::TextTable::num(sum32 / 3, 2),
                  sum5 > sum32 ? "t_max=5" : "t_max=32"});
    std::printf("%s\n", table.render().c_str());
    report.field("mean_score_tmax5", sum5 / 3);
    report.field("mean_score_tmax32", sum32 / 3);
    report.field("wins_tmax5", wins5);

    std::printf("Mean score: t_max=5 -> %.2f vs t_max=32 -> %.2f "
                "(t_max=5 ahead in %d/3 seeds). The paper's direction "
                "— larger batches learn less per step — holds on "
                "average; per-seed variance is large at this scale "
                "(our budget is three orders of magnitude below the "
                "paper's 35 M steps; see EXPERIMENTS.md).\n\n",
                sum5 / 3, sum32 / 3, wins5);
    std::printf("Structural driver: per environment step, t_max=32 "
                "applies %.1fx fewer global parameter updates than "
                "t_max=5 — the utilization-vs-quality trade FA3C "
                "avoids by being efficient at t_max=5.\n",
                32.0 / 5.0);
    return 0;
}
