/**
 * @file
 * Regenerates the Section 3.4 kernel-launch measurement: on the GPU,
 * launch overhead accounts for more than 38% of the overall kernel
 * execution time of the A3C kernels; on the FPGA the task-start
 * overhead is below 0.02%.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "fa3c/task_model.hh"
#include "gpu/gpu_model.hh"
#include "harness/paper_data.hh"
#include "sim/table.hh"

using namespace fa3c;
using namespace fa3c::gpu;

namespace {

const nn::NetConfig netCfg = nn::NetConfig::atari(4);

void
BM_LaunchShareModel(benchmark::State &state)
{
    const core::HwNetwork net = core::HwNetwork::fromConfig(netCfg);
    const PlatformSpec spec = PlatformSpec::a3cCudnn();
    for (auto _ : state) {
        const double share = kernelLaunchShare(net, spec, 5);
        benchmark::DoNotOptimize(share);
    }
}
BENCHMARK(BM_LaunchShareModel)->Unit(benchmark::kNanosecond);

} // namespace

int
main(int argc, char **argv)
{
    bench::runMicrobenchmarks(argc, argv);
    bench::banner("Section 3.4", "Kernel launch overhead in A3C");

    const core::HwNetwork net = core::HwNetwork::fromConfig(netCfg);
    const PlatformSpec cudnn = PlatformSpec::a3cCudnn();

    // GPU side: per-task breakdown.
    const GpuTaskTime inf = inferenceTaskTime(net, cudnn, 1);
    const GpuTaskTime train = trainingTaskTime(net, cudnn, 5);
    sim::TextTable table({"Task", "Kernels", "Launch (us)",
                          "Compute (us)", "Launch share"});
    auto add = [&](const char *name, const GpuTaskTime &t) {
        table.addRow(
            {name, std::to_string(t.kernels),
             sim::TextTable::num(t.launchSec * 1e6, 1),
             sim::TextTable::num(t.computeSec * 1e6, 1),
             sim::TextTable::num(100.0 * t.launchSec /
                                     (t.launchSec + t.computeSec),
                                 1) +
                 "%"});
    };
    add("GPU inference (batch 1)", inf);
    add("GPU training (batch 5)", train);
    std::printf("%s\n", table.render().c_str());

    const double gpu_share = kernelLaunchShare(net, cudnn, 5);
    std::printf("GPU launch share over one agent routine: %.1f%% "
                "(paper: more than 38%%).\n\n",
                100.0 * gpu_share);

    // FPGA side: the launch analogue is the CU reading one task
    // descriptor (~16 cycles) per submitted task; the per-phase
    // pipeline-fill cycles are part of the computation itself and
    // never re-cross the host boundary.
    const core::Fa3cConfig cfg = core::Fa3cConfig::vcu1525();
    const core::TaskModel fpga_inf = core::inferenceTask(net, cfg);
    const core::TaskModel fpga_train = core::trainingTask(net, cfg, 5);
    const double dispatch_cycles = 16.0 * (6.0 + 1.0 + 1.0); // tasks
    const double total_cycles =
        6.0 * static_cast<double>(fpga_inf.totalComputeCycles()) +
        static_cast<double>(fpga_train.totalComputeCycles());
    const double fpga_share = dispatch_cycles / total_cycles;
    std::printf("FPGA task-dispatch share over one agent routine: "
                "%.4f%% (paper: less than 0.02%%).\n",
                100.0 * fpga_share);
    std::printf("GPU : FPGA overhead ratio: %.0fx\n",
                gpu_share / fpga_share);

    bench::JsonReport report("sec34_kernel_launch");
    report.field("gpu_launch_share", gpu_share);
    report.field("fpga_dispatch_share", fpga_share);
    report.field("overhead_ratio", gpu_share / fpga_share);
    report.addRow()
        .set("task", "gpu_inference_b1")
        .set("kernels", static_cast<std::uint64_t>(inf.kernels))
        .set("launch_us", inf.launchSec * 1e6)
        .set("compute_us", inf.computeSec * 1e6);
    report.addRow()
        .set("task", "gpu_training_b5")
        .set("kernels", static_cast<std::uint64_t>(train.kernels))
        .set("launch_us", train.launchSec * 1e6)
        .set("compute_us", train.computeSec * 1e6);
    return 0;
}
