/**
 * @file
 * Load generator for the policy-serving subsystem (src/serve/):
 *
 *   1. Closed-loop saturation: N blocking clients hammer the server
 *      and we compare dynamic batching (max batch 16 + linger)
 *      against single-request-per-forward dispatch (max batch 1) —
 *      the batching win the paper's dedicated-inference-unit design
 *      banks on.
 *   2. Open-loop sweep: Poisson-paced arrivals at fractions of the
 *      measured peak, reporting p50/p95/p99 latency and the
 *      reject/timeout rate as the offered load crosses capacity (the
 *      admission controller's job).
 *   3. Hot-swap under load: a publisher thread swaps model versions
 *      mid-stream; served requests must not fail or slow down
 *      catastrophically.
 *
 *   4. Trace-sampling overhead: closed-loop throughput with span
 *      sampling off vs FA3C_TRACE_SAMPLE=0.01, quantifying what 1%
 *      request tracing costs (target: < 2% IPS delta). The two arms
 *      run interleaved (A B A B ...) with best-of-N per arm so
 *      machine-state drift cannot sign-flip the comparison.
 *
 *   5. Replica fleet: N PolicyServers behind the ReplicaRouter —
 *      closed-loop aggregate scaling vs one replica, an open-loop
 *      sweep past saturation where fleet-wide shedding must hold
 *      served IPS flat (>= 0.9x peak at 1.2x offered), and a
 *      coordinated hot-swap under load with zero failed requests.
 *
 * Wall-clock per measurement phase is FA3C_SERVE_MS (default 800 ms;
 * CI smoke uses a smaller value). Results land in
 * $FA3C_JSON_DIR/BENCH_serve.json. With FA3C_TELEMETRY_PORT set the
 * whole run is scrapable: each live PolicyServer exports slo_burn /
 * serve_model_version itself, and a bench-lifetime collector keeps
 * bench_phase plus the last phase's values visible between phases so
 * a CI curl never races an idle gap.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "obs/prometheus.hh"
#include "obs/span.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "serve/router.hh"
#include "serve/server.hh"
#include "sim/perf_counters.hh"
#include "sim/stats.hh"
#include "sim/table.hh"

using namespace fa3c;
using namespace std::chrono_literals;

namespace {

using Clock = serve::Clock;

// Scrape-visible bench state. While a PolicyServer is live it exports
// slo_burn / serve_model_version itself; between phases the bench
// collector re-publishes the last phase's values under the same names
// (guarded by g_serverLive so the exposition never carries duplicate
// samples).
std::atomic<int> g_benchPhase{0};
std::atomic<bool> g_serverLive{false};
std::atomic<double> g_lastSloBurn{0.0};
std::atomic<double> g_lastModelVersion{0.0};

/** Declared before the PolicyServer so the flag flips false only
 * after the server (and its collector) is gone. */
struct ServerLiveGuard
{
    ServerLiveGuard() { g_serverLive.store(true); }
    ~ServerLiveGuard() { g_serverLive.store(false); }
};

struct LoadResult
{
    double ips = 0.0;        ///< served Ok responses per second
    double offeredIps = 0.0; ///< submissions per second
    double p50 = 0.0, p95 = 0.0, p99 = 0.0; ///< total latency, us
    double meanBatch = 0.0;
    double inferUsPerReq = 0.0; ///< forwardBatch time / batch size
    double sloBurn = 0.0; ///< rolling-window burn at phase end
    std::uint64_t ok = 0;
    std::uint64_t rejected = 0;
    std::uint64_t timedOut = 0;

    double
    rejectRate() const
    {
        const double total =
            static_cast<double>(ok + rejected + timedOut);
        return total > 0.0
                   ? static_cast<double>(rejected + timedOut) / total
                   : 0.0;
    }
};

tensor::Tensor
makeObservation(const nn::NetConfig &cfg, unsigned salt)
{
    tensor::Tensor obs(tensor::Shape(
        {cfg.inChannels, cfg.inHeight, cfg.inWidth}));
    for (std::size_t i = 0; i < obs.numel(); ++i)
        obs.data()[i] =
            static_cast<float>((i * 31 + salt) % 101) / 101.0f;
    return obs;
}

serve::ServeConfig
serveConfig(int max_batch, std::chrono::microseconds linger,
            int workers)
{
    serve::ServeConfig cfg;
    cfg.queue.maxDepth = 1024;
    cfg.batch.maxBatch = max_batch;
    cfg.batch.linger = linger;
    cfg.workers = workers;
    cfg.backend = rl::BackendKind::FastCpu;
    return cfg;
}

/** Closed loop: @p clients blocking callers for @p duration. */
LoadResult
runClosedLoop(const nn::A3cNetwork &net, const nn::ParamSet &params,
              const serve::ServeConfig &cfg, int clients,
              std::chrono::milliseconds duration,
              std::chrono::milliseconds publish_every = 0ms)
{
    ServerLiveGuard live_guard;
    serve::PolicyServer server(net, cfg);
    server.publish(params);
    server.start();

    // Warm up the workers (thread creation, first parameter staging).
    const tensor::Tensor warm = makeObservation(net.config(), 0);
    (void)server.submitAndWait(warm);

    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> failed{0};
    const auto t_end = Clock::now() + duration;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            const tensor::Tensor obs = makeObservation(
                net.config(), static_cast<unsigned>(c) + 1);
            while (Clock::now() < t_end) {
                const serve::Response r = server.submitAndWait(obs);
                if (r.status == serve::Status::Ok)
                    ok.fetch_add(1, std::memory_order_relaxed);
                else
                    failed.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    std::uint64_t publishes = 0;
    if (publish_every.count() > 0) {
        nn::ParamSet next = net.makeParams();
        next.copyFrom(params);
        while (Clock::now() < t_end) {
            std::this_thread::sleep_for(publish_every);
            server.publish(next);
            ++publishes;
        }
    }
    for (auto &t : threads)
        t.join();
    server.stop();
    const obs::SloMonitor::Snapshot slo = server.slo().snapshot();
    g_lastSloBurn.store(slo.burn);
    g_lastModelVersion.store(
        static_cast<double>(server.modelVersion()));

    const sim::StatGroup stats = server.statsSnapshot();
    const auto &total = stats.distributions().at("total_us");
    LoadResult r;
    r.sloBurn = slo.burn;
    const double secs =
        std::chrono::duration<double>(duration).count();
    r.ok = ok.load();
    r.rejected = failed.load();
    r.timedOut = stats.counterValue("timed_out");
    r.ips = static_cast<double>(r.ok) / secs;
    r.offeredIps = static_cast<double>(r.ok + r.rejected) / secs;
    r.p50 = total.percentile(50);
    r.p95 = total.percentile(95);
    r.p99 = total.percentile(99);
    r.meanBatch = stats.distributions().at("batch_size").mean();
    if (r.meanBatch > 0.0)
        r.inferUsPerReq =
            stats.distributions().at("infer_us").mean() / r.meanBatch;
    if (publish_every.count() > 0)
        std::printf("  (hot-swap: %llu publishes mid-load, %llu param "
                    "stages)\n",
                    static_cast<unsigned long long>(publishes),
                    static_cast<unsigned long long>(
                        stats.counterValue("param_stages")));
    return r;
}

/**
 * Open loop: one dispatcher paces submissions at @p rate_ips with a
 * deadline budget, so overload shows up as rejections/timeouts
 * instead of unbounded queueing.
 */
LoadResult
runOpenLoop(const nn::A3cNetwork &net, const nn::ParamSet &params,
            const serve::ServeConfig &cfg, double rate_ips,
            std::chrono::milliseconds duration)
{
    ServerLiveGuard live_guard;
    serve::PolicyServer server(net, cfg);
    server.publish(params);
    server.start();
    const tensor::Tensor warm = makeObservation(net.config(), 0);
    (void)server.submitAndWait(warm);

    const auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / rate_ips));
    const auto deadline_budget = 50ms;
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(static_cast<std::size_t>(
        rate_ips * std::chrono::duration<double>(duration).count() *
        1.2));

    const tensor::Tensor obs = makeObservation(net.config(), 7);
    const auto t_start = Clock::now();
    const auto t_end = t_start + duration;
    auto next = t_start;
    std::uint64_t submitted = 0;
    while (next < t_end) {
        std::this_thread::sleep_until(next);
        futures.push_back(server.submit(obs, deadline_budget));
        ++submitted;
        next += interval;
    }

    LoadResult r;
    sim::Distribution latency;
    for (auto &fut : futures) {
        const serve::Response resp = fut.get();
        if (resp.status == serve::Status::Ok) {
            ++r.ok;
            latency.sample(resp.totalUs);
        } else if (resp.status == serve::Status::TimedOut) {
            ++r.timedOut;
        } else {
            ++r.rejected;
        }
    }
    server.stop();
    const obs::SloMonitor::Snapshot slo = server.slo().snapshot();
    r.sloBurn = slo.burn;
    g_lastSloBurn.store(slo.burn);
    g_lastModelVersion.store(
        static_cast<double>(server.modelVersion()));

    const double secs =
        std::chrono::duration<double>(duration).count();
    r.ips = static_cast<double>(r.ok) / secs;
    r.offeredIps = static_cast<double>(submitted) / secs;
    r.p50 = latency.percentile(50);
    r.p95 = latency.percentile(95);
    r.p99 = latency.percentile(99);
    return r;
}

/** One fleet measurement: router-level signals on top of the load. */
struct FleetResult
{
    LoadResult load;
    double shedRate = 0.0;
    std::uint64_t sheds = 0;
    /** 1 when every replica (and its responses) reported the fleet's
     * published version after the run; 0 on any divergence. */
    std::uint64_t versionLockstep = 1;
};

/** Closed loop through the router; optional concurrent publisher. */
FleetResult
runFleetClosedLoop(const nn::A3cNetwork &net,
                   const nn::ParamSet &params,
                   const serve::FleetConfig &fleet, int clients,
                   std::chrono::milliseconds duration,
                   std::chrono::milliseconds publish_every = 0ms)
{
    ServerLiveGuard live_guard;
    serve::ReplicaRouter router(net, fleet);
    router.publish(params);
    router.start();
    const tensor::Tensor warm = makeObservation(net.config(), 0);
    (void)router.submitAndWait(warm);

    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> failed{0};
    const auto t_end = Clock::now() + duration;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            const tensor::Tensor obs = makeObservation(
                net.config(), static_cast<unsigned>(c) + 1);
            // Nonzero session: under ConsistentHash each client pins
            // to one replica; LeastLoaded ignores it.
            const auto session = static_cast<std::uint64_t>(c) + 1;
            while (Clock::now() < t_end) {
                const serve::Response r =
                    router.submitAndWait(obs, 0us, session);
                if (r.status == serve::Status::Ok)
                    ok.fetch_add(1, std::memory_order_relaxed);
                else
                    failed.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    std::uint64_t publishes = 0;
    if (publish_every.count() > 0) {
        nn::ParamSet next = net.makeParams();
        next.copyFrom(params);
        while (Clock::now() < t_end) {
            std::this_thread::sleep_for(publish_every);
            router.publish(next);
            ++publishes;
        }
    }
    for (auto &t : threads)
        t.join();

    FleetResult r;
    // Coordinated hot-swap verification, before stop(): every replica
    // must answer with the fleet-wide version — no straggler serving
    // a stale snapshot, no serve gap.
    const std::uint64_t fleet_version = router.modelVersion();
    for (int i = 0; i < router.replicas(); ++i) {
        if (router.replica(i).modelVersion() != fleet_version)
            r.versionLockstep = 0;
        const serve::Response probe =
            router.replica(i).submitAndWait(warm);
        if (probe.status != serve::Status::Ok ||
            probe.modelVersion != fleet_version)
            r.versionLockstep = 0;
    }
    router.stop();

    const double secs =
        std::chrono::duration<double>(duration).count();
    r.load.ok = ok.load();
    r.load.rejected = failed.load();
    r.load.ips = static_cast<double>(r.load.ok) / secs;
    r.load.offeredIps =
        static_cast<double>(r.load.ok + r.load.rejected) / secs;
    r.shedRate = router.shedRate();
    r.sheds = router.sheds();
    g_lastModelVersion.store(static_cast<double>(fleet_version));
    if (publish_every.count() > 0)
        std::printf("  (fleet hot-swap: %llu barrier publishes "
                    "mid-load, version lockstep %s)\n",
                    static_cast<unsigned long long>(publishes),
                    r.versionLockstep ? "ok" : "BROKEN");
    return r;
}

/** Open loop through the router (paced rate, deadline budget). */
FleetResult
runFleetOpenLoop(const nn::A3cNetwork &net, const nn::ParamSet &params,
                 const serve::FleetConfig &fleet, double rate_ips,
                 std::chrono::milliseconds duration)
{
    ServerLiveGuard live_guard;
    serve::ReplicaRouter router(net, fleet);
    router.publish(params);
    router.start();
    const tensor::Tensor warm = makeObservation(net.config(), 0);
    (void)router.submitAndWait(warm);

    const auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / rate_ips));
    const auto deadline_budget = 50ms;
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(static_cast<std::size_t>(
        rate_ips * std::chrono::duration<double>(duration).count() *
        1.2));

    const tensor::Tensor obs = makeObservation(net.config(), 7);
    const auto t_start = Clock::now();
    const auto t_end = t_start + duration;
    auto next = t_start;
    std::uint64_t submitted = 0;
    while (next < t_end) {
        std::this_thread::sleep_until(next);
        futures.push_back(router.submit(obs, deadline_budget));
        ++submitted;
        next += interval;
    }

    FleetResult r;
    sim::Distribution latency;
    for (auto &fut : futures) {
        const serve::Response resp = fut.get();
        if (resp.status == serve::Status::Ok) {
            ++r.load.ok;
            latency.sample(resp.totalUs);
        } else if (resp.status == serve::Status::TimedOut) {
            ++r.load.timedOut;
        } else {
            ++r.load.rejected;
        }
    }
    r.shedRate = router.shedRate();
    r.sheds = router.sheds();
    router.stop();

    const double secs =
        std::chrono::duration<double>(duration).count();
    r.load.ips = static_cast<double>(r.load.ok) / secs;
    r.load.offeredIps = static_cast<double>(submitted) / secs;
    r.load.p50 = latency.percentile(50);
    r.load.p95 = latency.percentile(95);
    r.load.p99 = latency.percentile(99);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::runMicrobenchmarks(argc, argv);
    bench::banner("serve load",
                  "Dynamic-batching inference server: closed-loop "
                  "saturation, open-loop latency sweep, hot-swap "
                  "under load");

    const auto phase_ms = std::chrono::milliseconds(
        bench::envKnob("FA3C_SERVE_MS", 800));
    const int clients = static_cast<int>(
        bench::envKnob("FA3C_SERVE_CLIENTS", 16));
    const int max_batch = static_cast<int>(
        bench::envKnob("FA3C_SERVE_MAX_BATCH", 16));

    // FA3C_SERVE_NET picks the served network. The headline is "wide"
    // (Atari geometry, 1024-unit FC head): batching amortizes weight-
    // matrix reads, so its win scales with how much of a request is
    // spent streaming FC weights that miss L2. The paper's 256-unit
    // Atari head is conv-dominated on this CPU (conv weights stay
    // cached, so conv cost is batch-invariant) and tops out around
    // 1.5x; a serving-sized head makes the mechanism visible.
    const char *net_env = std::getenv("FA3C_SERVE_NET");
    const std::string net_name = net_env ? net_env : "wide";
    nn::NetConfig net_cfg = nn::NetConfig::atari(4);
    if (net_name == "tiny") {
        net_cfg = nn::NetConfig::tiny(4);
    } else if (net_name == "wide") {
        net_cfg.fcSize = 1024;
    } else if (net_name != "atari") {
        std::fprintf(stderr,
                     "FA3C_SERVE_NET=%s is not tiny|atari|wide\n",
                     net_name.c_str());
        return 1;
    }
    const nn::A3cNetwork net(net_cfg);
    nn::ParamSet params = net.makeParams();
    sim::Rng rng(5);
    net.initParams(params, rng);
    const double params_mb =
        static_cast<double>(net.paramCount()) * sizeof(float) /
        (1024.0 * 1024.0);

    std::printf("Phase length %lld ms, %d closed-loop clients, fast "
                "CPU backend, 1 worker (batching effects are per "
                "worker).\n",
                static_cast<long long>(phase_ms.count()), clients);
    std::printf("Serving net \"%s\": fc width %d, %.1f MB of "
                "parameters.\n\n",
                net_name.c_str(), net_cfg.fcSize, params_mb);

    // Bench-lifetime telemetry attachment: bench_phase is always
    // scrapable, and slo_burn / serve_model_version stay exported in
    // the gaps between phases when no PolicyServer is live.
    obs::TelemetryRegistration telemetry_reg(
        obs::telemetry(),
        [](obs::PromWriter &w) {
            w.gauge("bench_phase",
                    static_cast<double>(g_benchPhase.load()),
                    "bench_serve_load phase in flight (1=closed "
                    "batched, 2=closed single, 3=open sweep, "
                    "4=hot-swap, 5=trace overhead, 6=fleet)");
            if (!g_serverLive.load()) {
                w.gauge("slo_burn", g_lastSloBurn.load(),
                        "rolling-window deadline-miss budget burn "
                        "(last finished phase)");
                w.gauge("serve_model_version",
                        g_lastModelVersion.load(),
                        "model version served in the last phase");
            }
        },
        "bench.serve",
        [](std::string &detail) {
            detail =
                "phase=" + std::to_string(g_benchPhase.load());
            return true;
        });

    bench::JsonReport report("serve");
    report.field("phase_ms",
                 static_cast<std::uint64_t>(phase_ms.count()));
    report.field("clients", clients);
    report.field("max_batch", max_batch);
    report.field("net", net_name);
    report.field("fc_size", net_cfg.fcSize);
    report.field("params_mb", params_mb);

    // --- 1. closed-loop: batched vs single-request dispatch --------
    std::printf("Closed-loop saturation (%d clients):\n", clients);
    g_benchPhase.store(1);
    const LoadResult batched = runClosedLoop(
        net, params, serveConfig(max_batch, 2000us, 1), clients,
        phase_ms);
    g_benchPhase.store(2);
    const LoadResult single = runClosedLoop(
        net, params, serveConfig(1, 0us, 1), clients, phase_ms);
    const double speedup =
        single.ips > 0.0 ? batched.ips / single.ips : 0.0;

    sim::TextTable closed({"Dispatch", "IPS", "mean batch",
                           "infer us/req", "p50 us", "p95 us",
                           "p99 us"});
    closed.addRow({"max_batch=" + std::to_string(max_batch) +
                       " linger=2ms",
                   sim::TextTable::num(batched.ips, 0),
                   sim::TextTable::num(batched.meanBatch, 1),
                   sim::TextTable::num(batched.inferUsPerReq, 1),
                   sim::TextTable::num(batched.p50, 0),
                   sim::TextTable::num(batched.p95, 0),
                   sim::TextTable::num(batched.p99, 0)});
    closed.addRow({"single-request",
                   sim::TextTable::num(single.ips, 0),
                   sim::TextTable::num(single.meanBatch, 1),
                   sim::TextTable::num(single.inferUsPerReq, 1),
                   sim::TextTable::num(single.p50, 0),
                   sim::TextTable::num(single.p95, 0),
                   sim::TextTable::num(single.p99, 0)});
    std::printf("%s\n", closed.render().c_str());
    std::printf("Batching speedup: %.2fx (throughput at saturation, "
                "same hardware, same model).\n\n",
                speedup);
    report.field("peak_ips", batched.ips);
    report.field("peak_offered_ips", batched.offeredIps);
    report.field("single_ips", single.ips);
    report.field("batch_speedup", speedup);
    report.field("peak_mean_batch", batched.meanBatch);
    // Closed-loop clients set no deadline, so any nonzero burn here
    // means the SLO accounting itself is broken; CI gates on 0.
    report.field("slo_burn", batched.sloBurn);

    // --- 2. open-loop latency/reject sweep --------------------------
    g_benchPhase.store(3);
    std::printf("Open-loop sweep (Poisson-ish pacing, 50 ms deadline "
                "budget, rates relative to the measured peak):\n");
    sim::TextTable sweep({"Offered/peak", "Offered IPS", "Served IPS",
                          "p50 us", "p95 us", "p99 us", "Reject %"});
    for (const double frac : {0.5, 0.8, 1.0, 1.2}) {
        const double rate = frac * batched.ips;
        if (rate < 1.0)
            continue;
        const LoadResult r =
            runOpenLoop(net, params, serveConfig(max_batch, 2000us, 1),
                        rate, phase_ms);
        sweep.addRow({sim::TextTable::num(frac, 1),
                      sim::TextTable::num(r.offeredIps, 0),
                      sim::TextTable::num(r.ips, 0),
                      sim::TextTable::num(r.p50, 0),
                      sim::TextTable::num(r.p95, 0),
                      sim::TextTable::num(r.p99, 0),
                      sim::TextTable::num(100.0 * r.rejectRate(), 1)});
        report.addRow()
            .set("offered_over_peak", frac)
            .set("offered_ips", r.offeredIps)
            .set("served_ips", r.ips)
            .set("p50_us", r.p50)
            .set("p95_us", r.p95)
            .set("p99_us", r.p99)
            .set("reject_rate", r.rejectRate())
            .set("slo_burn", r.sloBurn);
    }
    std::printf("%s\n", sweep.render().c_str());
    std::printf("Below capacity the deadline budget is met and "
                "nothing is rejected; past capacity the admission "
                "controller sheds load instead of letting latency "
                "diverge.\n\n");

    // --- 3. hot-swap under load -------------------------------------
    g_benchPhase.store(4);
    std::printf("Hot-swap under closed-loop load (publish every "
                "5 ms):\n");
    const LoadResult swapped = runClosedLoop(
        net, params, serveConfig(max_batch, 2000us, 1), clients,
        phase_ms, 5ms);
    std::printf("  %.0f IPS while swapping (%.1f%% of the no-swap "
                "peak), %llu failed requests.\n",
                swapped.ips,
                batched.ips > 0.0 ? 100.0 * swapped.ips / batched.ips
                                  : 0.0,
                static_cast<unsigned long long>(swapped.rejected));
    report.field("hotswap_ips", swapped.ips);
    report.field("hotswap_failed",
                 static_cast<std::uint64_t>(swapped.rejected));

    // --- 4. trace-sampling overhead ---------------------------------
    g_benchPhase.store(5);
    const bool trace_enabled = obs::trace() != nullptr;
    const double restore_rate = obs::spanSampleRate();
    const double sample_rate = 0.01;
    std::printf("\nTrace-sampling overhead (closed loop, %d clients, "
                "tracing %s):\n",
                clients, trace_enabled ? "on" : "off");
    // Interleaved best-of-N, like bench_nn_kernels' timeManyMs: the
    // two arms alternate A B A B and each takes its best round, so a
    // monotonic machine-state drift (cache/thermal/page warmth)
    // lands on both arms instead of crediting whichever ran second.
    // The old sequential A-then-B version reported *negative*
    // overhead for exactly that reason.
    const int trace_rounds = 3;
    const auto trace_slice = phase_ms / 2;
    double best_unsampled = 0.0;
    double best_sampled = 0.0;
    for (int round = 0; round < trace_rounds; ++round) {
        obs::setSpanSampleRate(0.0);
        const LoadResult off = runClosedLoop(
            net, params, serveConfig(max_batch, 2000us, 1), clients,
            trace_slice);
        obs::setSpanSampleRate(sample_rate);
        const LoadResult on = runClosedLoop(
            net, params, serveConfig(max_batch, 2000us, 1), clients,
            trace_slice);
        best_unsampled = std::max(best_unsampled, off.ips);
        best_sampled = std::max(best_sampled, on.ips);
    }
    obs::setSpanSampleRate(restore_rate);
    const double overhead_pct =
        best_unsampled > 0.0
            ? 100.0 * (best_unsampled - best_sampled) / best_unsampled
            : 0.0;
    std::printf("  %.0f IPS unsampled vs %.0f IPS at %.0f%% sampling "
                "(best of %d interleaved rounds): %.2f%% overhead "
                "(target < 2%%).\n",
                best_unsampled, best_sampled, 100.0 * sample_rate,
                trace_rounds, overhead_pct);
    report.field("trace_enabled",
                 static_cast<std::uint64_t>(trace_enabled ? 1 : 0));
    report.field("trace_sample_rate", sample_rate);
    report.field("trace_rounds", trace_rounds);
    report.field("trace_ips_unsampled", best_unsampled);
    report.field("trace_ips_sampled", best_sampled);
    report.field("trace_overhead_pct", overhead_pct);
    if (trace_enabled && overhead_pct > 2.0)
        std::printf("WARNING: tracing overhead %.2f%% exceeds the 2%% "
                    "target at %.0f%% sampling.\n",
                    overhead_pct, 100.0 * sample_rate);

    // --- 5. multi-replica fleet -------------------------------------
    g_benchPhase.store(6);
    const int fleet_replicas = static_cast<int>(
        bench::envKnob("FA3C_SERVE_REPLICAS", 2));
    serve::FleetConfig fleet;
    fleet.replicas = fleet_replicas;
    fleet.policy = serve::RoutePolicy::LeastLoaded;
    fleet.replica = serveConfig(max_batch, 2000us, 1);
    // A queue the deadline budget can actually drain: with ~50 ms
    // budgets, shedding at a couple hundred queued requests keeps
    // admitted work feasible instead of letting the backlog turn
    // into timeouts (the post-saturation collapse the single-server
    // sweep above shows).
    fleet.replica.queue.maxDepth = 256;
    fleet.shed.depthFraction = 0.25;
    std::printf("\nReplica fleet (%d replicas, %s routing, shed at "
                "%.0f%% aggregate depth):\n",
                fleet_replicas, serve::routePolicyName(fleet.policy),
                100.0 * fleet.shed.depthFraction);

    serve::FleetConfig one = fleet;
    one.replicas = 1;
    const FleetResult fleet_single =
        runFleetClosedLoop(net, params, one, clients, phase_ms);
    const FleetResult fleet_multi =
        runFleetClosedLoop(net, params, fleet, clients, phase_ms);
    const double fleet_scaling =
        fleet_single.load.ips > 0.0
            ? fleet_multi.load.ips / fleet_single.load.ips
            : 0.0;
    std::printf("  closed loop: %.0f IPS x1 -> %.0f IPS x%d "
                "(scaling %.2fx; compute-bound on few-core hosts).\n",
                fleet_single.load.ips, fleet_multi.load.ips,
                fleet_replicas, fleet_scaling);
    report.field("fleet_replicas", fleet_replicas);
    report.field("fleet_single_ips", fleet_single.load.ips);
    report.field("fleet_aggregate_ips", fleet_multi.load.ips);
    report.field("fleet_scaling", fleet_scaling);

    // Post-saturation flatness: offered load past the fleet's peak
    // must shed at the router, not collapse served throughput.
    std::printf("  open-loop sweep through the router (50 ms "
                "deadline, rates relative to the fleet peak):\n");
    sim::TextTable fleet_sweep({"Offered/peak", "Offered IPS",
                                "Served IPS", "p99 us", "Shed %",
                                "Reject %"});
    double fleet_peak_served = 0.0;
    double fleet_served_over = 0.0;
    for (const double frac : {0.8, 1.0, 1.2}) {
        const double rate = frac * fleet_multi.load.ips;
        if (rate < 1.0)
            continue;
        const FleetResult r =
            runFleetOpenLoop(net, params, fleet, rate, phase_ms);
        fleet_peak_served = std::max(fleet_peak_served, r.load.ips);
        if (frac == 1.2)
            fleet_served_over = r.load.ips;
        fleet_sweep.addRow(
            {sim::TextTable::num(frac, 1),
             sim::TextTable::num(r.load.offeredIps, 0),
             sim::TextTable::num(r.load.ips, 0),
             sim::TextTable::num(r.load.p99, 0),
             sim::TextTable::num(100.0 * r.shedRate, 1),
             sim::TextTable::num(100.0 * r.load.rejectRate(), 1)});
        report.addRow()
            .set("fleet_offered_over_peak", frac)
            .set("fleet_offered_ips", r.load.offeredIps)
            .set("fleet_served_ips", r.load.ips)
            .set("fleet_p99_us", r.load.p99)
            .set("fleet_shed_rate", r.shedRate)
            .set("fleet_reject_rate", r.load.rejectRate());
    }
    std::printf("%s", fleet_sweep.render().c_str());
    const double fleet_flatness =
        fleet_peak_served > 0.0 ? fleet_served_over / fleet_peak_served
                                : 0.0;
    std::printf("  served at 1.2x offered = %.2fx of peak served "
                "(flatness target >= 0.9).\n",
                fleet_flatness);
    report.field("fleet_peak_served_ips", fleet_peak_served);
    report.field("fleet_served_at_over_ips", fleet_served_over);
    report.field("fleet_flatness", fleet_flatness);
    if (fleet_flatness < 0.9)
        std::printf("WARNING: fleet served-IPS flatness %.2f is "
                    "below the 0.9 bar — shedding is not holding "
                    "throughput past saturation.\n",
                    fleet_flatness);

    // Coordinated hot-swap across the fleet under load: barrier
    // publishes every 5 ms, zero failed requests, every replica on
    // the published version afterwards.
    std::printf("  coordinated hot-swap under closed-loop load "
                "(barrier publish every 5 ms):\n");
    const FleetResult fleet_swap = runFleetClosedLoop(
        net, params, fleet, clients, phase_ms, 5ms);
    std::printf("  %.0f IPS while swapping (%.1f%% of fleet peak), "
                "%llu failed requests.\n",
                fleet_swap.load.ips,
                fleet_multi.load.ips > 0.0
                    ? 100.0 * fleet_swap.load.ips /
                          fleet_multi.load.ips
                    : 0.0,
                static_cast<unsigned long long>(
                    fleet_swap.load.rejected));
    report.field("fleet_hotswap_ips", fleet_swap.load.ips);
    report.field("fleet_hotswap_failed", fleet_swap.load.rejected);
    report.field("fleet_version_lockstep", fleet_swap.versionLockstep);
    if (fleet_swap.load.rejected != 0 || !fleet_swap.versionLockstep)
        std::printf("WARNING: coordinated hot-swap was not clean "
                    "(%llu failures, lockstep %llu).\n",
                    static_cast<unsigned long long>(
                        fleet_swap.load.rejected),
                    static_cast<unsigned long long>(
                        fleet_swap.versionLockstep));

    // Fleet trace overhead: the same interleaved best-of-N A/B as
    // the single-server arm above, but through the router, where a
    // sampled request now carries its context across the wire and
    // spans fire at the client, router, replica, and backend. The
    // propagation machinery must stay under the same 2% bar at 1%
    // sampling — it runs on every request (17 header bytes + a
    // branch), not just on sampled ones.
    std::printf("  fleet trace overhead (%d replicas, closed loop, "
                "%.0f%% sampling):\n",
                fleet_replicas, 100.0 * sample_rate);
    double fleet_best_unsampled = 0.0;
    double fleet_best_sampled = 0.0;
    for (int round = 0; round < trace_rounds; ++round) {
        obs::setSpanSampleRate(0.0);
        const FleetResult off = runFleetClosedLoop(
            net, params, fleet, clients, trace_slice);
        obs::setSpanSampleRate(sample_rate);
        const FleetResult on = runFleetClosedLoop(
            net, params, fleet, clients, trace_slice);
        fleet_best_unsampled =
            std::max(fleet_best_unsampled, off.load.ips);
        fleet_best_sampled =
            std::max(fleet_best_sampled, on.load.ips);
    }
    obs::setSpanSampleRate(restore_rate);
    const double fleet_trace_overhead_pct =
        fleet_best_unsampled > 0.0
            ? 100.0 * (fleet_best_unsampled - fleet_best_sampled) /
                  fleet_best_unsampled
            : 0.0;
    std::printf("  %.0f IPS unsampled vs %.0f IPS sampled (best of "
                "%d interleaved rounds): %.2f%% overhead (target "
                "< 2%%).\n",
                fleet_best_unsampled, fleet_best_sampled,
                trace_rounds, fleet_trace_overhead_pct);
    report.field("fleet_trace_ips_unsampled", fleet_best_unsampled);
    report.field("fleet_trace_ips_sampled", fleet_best_sampled);
    report.field("fleet_trace_overhead_pct",
                 fleet_trace_overhead_pct);
    if (trace_enabled && fleet_trace_overhead_pct > 2.0)
        std::printf("WARNING: fleet tracing overhead %.2f%% exceeds "
                    "the 2%% target at %.0f%% sampling.\n",
                    fleet_trace_overhead_pct, 100.0 * sample_rate);

    if (speedup < 2.0)
        std::printf("\nWARNING: batching speedup %.2fx is below the "
                    "2x acceptance bar.\n",
                    speedup);

    // --- perf-counter snapshot artifact ---------------------------
    // The serve layer counts admissions, formed/underfilled batches,
    // empty batch slots and the admission-queue high-water mark into
    // the global perf file; dump it next to the bench JSON so a
    // regression in batch formation is diagnosable from CI artifacts.
    {
        const auto snap = sim::perf().snapshot();
        const auto serve_it = snap.find("serve");
        if (serve_it != snap.end()) {
            auto get = [&](const char *key) -> std::uint64_t {
                const auto it = serve_it->second.find(key);
                return it == serve_it->second.end() ? 0 : it->second;
            };
            std::printf("\nServe perf counters: %llu admitted, %llu "
                        "batches (%llu underfilled, %llu empty "
                        "slots), queue depth HWM %llu.\n",
                        static_cast<unsigned long long>(
                            get("admitted")),
                        static_cast<unsigned long long>(
                            get("batches")),
                        static_cast<unsigned long long>(
                            get("underfilled_batches")),
                        static_cast<unsigned long long>(
                            get("empty_batch_slots")),
                        static_cast<unsigned long long>(
                            get("queue_depth_hwm")));
            report.field("perf_admitted", get("admitted"));
            report.field("perf_batches", get("batches"));
            report.field("perf_underfilled_batches",
                         get("underfilled_batches"));
            report.field("perf_empty_batch_slots",
                         get("empty_batch_slots"));
            report.field("perf_queue_depth_hwm",
                         get("queue_depth_hwm"));
        }
        if (const char *dir = std::getenv("FA3C_JSON_DIR")) {
            const std::string path =
                std::string(dir) + "/PERF_serve.json";
            if (sim::perf().writeJson(path))
                std::printf("(writing %s)\n", path.c_str());
        }
    }
    return 0;
}
