/**
 * @file
 * Regenerates Table 1: the DNN layers used in A3C for Atari 2600
 * games (parameter counts and output feature counts), and
 * micro-benchmarks the reference forward/backward passes of that
 * network.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "nn/a3c_network.hh"
#include "sim/table.hh"

using namespace fa3c;

namespace {

const nn::NetConfig netCfg = nn::NetConfig::atari(4);

void
BM_NetworkForward(benchmark::State &state)
{
    nn::A3cNetwork net(netCfg);
    sim::Rng rng(1);
    nn::ParamSet params = net.makeParams();
    net.initParams(params, rng);
    tensor::Tensor obs(tensor::Shape(
        {netCfg.inChannels, netCfg.inHeight, netCfg.inWidth}));
    obs.fillUniform(rng, 0.0f, 1.0f);
    auto act = net.makeActivations();
    for (auto _ : state) {
        net.forward(params, obs, act);
        benchmark::DoNotOptimize(act.out.data().data());
    }
}
BENCHMARK(BM_NetworkForward)->Unit(benchmark::kMillisecond);

void
BM_NetworkBackward(benchmark::State &state)
{
    nn::A3cNetwork net(netCfg);
    sim::Rng rng(2);
    nn::ParamSet params = net.makeParams();
    net.initParams(params, rng);
    tensor::Tensor obs(tensor::Shape(
        {netCfg.inChannels, netCfg.inHeight, netCfg.inWidth}));
    obs.fillUniform(rng, 0.0f, 1.0f);
    auto act = net.makeActivations();
    net.forward(params, obs, act);
    tensor::Tensor g_out(tensor::Shape({net.outSize()}));
    g_out.fillUniform(rng, -1.0f, 1.0f);
    nn::ParamSet grads = net.makeParams();
    for (auto _ : state) {
        grads.zero();
        net.backward(params, act, g_out, grads);
        benchmark::DoNotOptimize(grads.flat().data());
    }
}
BENCHMARK(BM_NetworkBackward)->Unit(benchmark::kMillisecond);

std::string
roughCount(std::size_t n)
{
    if (n == 0)
        return "-";
    if (n >= 1000)
        return std::to_string((n + 500) / 1000) + "K";
    return std::to_string(n);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::runMicrobenchmarks(argc, argv);
    bench::banner("Table 1",
                  "DNN layers used in A3C for Atari 2600 games");

    nn::A3cNetwork net(netCfg);
    sim::TextTable table({"#", "Layer type", "# of parameters",
                          "# of output features", "(exact params)"});
    int idx = 0;
    for (const auto &row : net.layerTable()) {
        table.addRow({std::to_string(idx++), row.name,
                      roughCount(row.paramCount),
                      roughCount(row.outputCount),
                      row.paramCount
                          ? sim::TextTable::num(
                                static_cast<std::uint64_t>(
                                    row.paramCount))
                          : "-"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper reference: Conv1 4K / 6K, Conv2 8K / 3K, "
                "FC3 664K / 256, FC4 8K / 32, input 28K.\n");
    std::printf("Total trainable parameters (exact): %s (%.0f KB)\n",
                sim::TextTable::num(
                    static_cast<std::uint64_t>(net.paramCount()))
                    .c_str(),
                static_cast<double>(net.paramCount()) * 4.0 / 1024.0);
    return 0;
}
