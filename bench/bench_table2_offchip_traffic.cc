/**
 * @file
 * Regenerates Table 2: the off-chip data traffic of one A3C training
 * routine (parameter sync + 6 inference tasks + one batch-5 training
 * task), both as the paper itemizes it and with the feature-map
 * traffic the paper's table omits. Cross-checks the analytic rows
 * against the event-driven platform's DRAM byte counters.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "fa3c/accelerator.hh"
#include "fa3c/task_model.hh"
#include "harness/paper_data.hh"
#include "sim/table.hh"

using namespace fa3c;
using namespace fa3c::core;

namespace {

const nn::NetConfig netCfg = nn::NetConfig::atari(4);

void
BM_TrafficTable(benchmark::State &state)
{
    const HwNetwork net = HwNetwork::fromConfig(netCfg);
    for (auto _ : state) {
        auto rows = routineTrafficTable(net, Fa3cConfig::vcu1525(), 5);
        benchmark::DoNotOptimize(rows.data());
    }
}
BENCHMARK(BM_TrafficTable)->Unit(benchmark::kMicrosecond);

void
BM_SimulatedRoutineDram(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue queue;
        Fa3cPlatform board(queue, Fa3cConfig::vcu1525(), netCfg, 5);
        board.submitParamSync({});
        for (int i = 0; i < 6; ++i)
            board.submitInference({});
        board.submitTraining({});
        queue.run();
        benchmark::DoNotOptimize(board.dramBytes());
    }
}
BENCHMARK(BM_SimulatedRoutineDram)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    bench::runMicrobenchmarks(argc, argv);
    bench::banner("Table 2", "Off-chip data traffic in A3C training "
                             "(KB per agent routine, t_max = 5)");

    const HwNetwork net = HwNetwork::fromConfig(netCfg);
    const Fa3cConfig cfg = Fa3cConfig::vcu1525();
    const auto rows = routineTrafficTable(net, cfg, 5);

    bench::JsonReport report("table2_offchip_traffic");
    sim::TextTable table({"Task type", "Data type", "Load", "Store",
                          "In paper's table"});
    double load_kb = 0, store_kb = 0;
    double paper_load_kb = 0, paper_store_kb = 0;
    auto kb = [](std::uint64_t bytes, int count) {
        return static_cast<double>(bytes) * count / 1024.0;
    };
    for (const auto &row : rows) {
        const double l = kb(row.loadBytes, row.count);
        const double s = kb(row.storeBytes, row.count);
        load_kb += l;
        store_kb += s;
        if (row.inPaperTable) {
            paper_load_kb += l;
            paper_store_kb += s;
        }
        auto cell = [&](std::uint64_t bytes) {
            if (bytes == 0)
                return std::string("-");
            return sim::TextTable::num(
                       static_cast<double>(bytes) / 1024.0, 0) +
                   "KB x " + std::to_string(row.count);
        };
        table.addRow({row.task, row.data, cell(row.loadBytes),
                      cell(row.storeBytes),
                      row.inPaperTable ? "yes" : "no (omitted)"});
        report.addRow()
            .set("task", row.task)
            .set("data", row.data)
            .set("load_kb", l)
            .set("store_kb", s)
            .set("in_paper_table", row.inPaperTable ? 1 : 0);
    }
    table.addRow({"Total (paper-visible rows)", "",
                  sim::TextTable::num(paper_load_kb, 0) + "KB",
                  sim::TextTable::num(paper_store_kb, 0) + "KB", ""});
    table.addRow({"Total (full accounting)", "",
                  sim::TextTable::num(load_kb, 0) + "KB",
                  sim::TextTable::num(store_kb, 0) + "KB", ""});
    std::printf("%s\n", table.render().c_str());

    std::printf("Paper Table 2: theta = %.0f KB, input = %.0f KB, "
                "printed totals %.0f KB load / %.0f KB store.\n",
                harness::paper::table2ParamSetKb,
                harness::paper::table2InputKb,
                harness::paper::table2TotalLoadKb,
                harness::paper::table2TotalStoreKb);
    std::printf("Note: the paper's printed load total equals its rows "
                "minus one parameter set (the training task's local "
                "theta stays cached); our rows report both sums. The "
                "parameter set here is %.0f KB because Table 2's "
                "2,592 KB counts only FC3's weights.\n\n",
                static_cast<double>(net.paramWords()) * 4.0 / 1024.0);

    // Cross-check against the event-driven platform.
    sim::EventQueue queue;
    Fa3cPlatform board(queue, cfg, netCfg, 5);
    board.submitParamSync({});
    for (int i = 0; i < 6; ++i)
        board.submitInference({});
    board.submitTraining({});
    queue.run();
    const double simulated_kb =
        static_cast<double>(board.dramBytes()) / 1024.0;
    std::printf("Event-driven platform DRAM traffic for the same "
                "routine: %.0f KB (analytic rows: %.0f KB) — "
                "delta %.2f%%\n",
                simulated_kb, load_kb + store_kb,
                100.0 * (simulated_kb - load_kb - store_kb) /
                    (load_kb + store_kb));
    report.field("analytic_load_kb", load_kb);
    report.field("analytic_store_kb", store_kb);
    report.field("simulated_kb", simulated_kb);
    return 0;
}
