/**
 * @file
 * Regenerates Table 3: the sizes (widths) and counts of the line
 * buffers that front each PE port in every computation stage,
 * instantiated for each layer of the A3C network on a 64-PE CU, with
 * the derived parallelism factors (M_FW, M_GC, M_w, M_BW).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "fa3c/layouts.hh"
#include "fa3c/task_model.hh"
#include "fa3c/timing.hh"
#include "sim/table.hh"

using namespace fa3c;
using namespace fa3c::core;

namespace {

constexpr int nPe = 64;

void
BM_LineBufferPlan(benchmark::State &state)
{
    const HwNetwork net =
        HwNetwork::fromConfig(nn::NetConfig::atari(4));
    for (auto _ : state)
        for (const auto &layer : net.layers)
            benchmark::DoNotOptimize(lineBufferPlan(layer, nPe));
}
BENCHMARK(BM_LineBufferPlan)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    bench::runMicrobenchmarks(argc, argv);
    bench::banner("Table 3",
                  "Sizes of line buffers per PE port and stage "
                  "(N_PE = 64), instantiated for each A3C layer");

    const HwNetwork net =
        HwNetwork::fromConfig(nn::NetConfig::atari(4));

    // The symbolic table, as the paper prints it.
    std::printf("Symbolic (paper's Table 3): FW input C_in x1, "
                "parameters min(N_PE, O) x0, output N_PE x1; GC input "
                "C_in xK, gradients C_out xM_GC (M_GC = floor(N_PE / "
                "K^2)), output N_PE x1; BW parameters min(N_PE, O) "
                "x0, gradients C_out xM_BW (M_BW = floor(N_PE / (M_w "
                "* C_in)), M_w = floor(O / K^2)).\n\n");

    for (std::size_t l = 0; l < net.layers.size(); ++l) {
        const auto &spec = net.layers[l];
        std::printf("Layer %s (I=%d O=%d K=%d S=%d, %dx%d out):\n",
                    net.names[l].c_str(), spec.inChannels,
                    spec.outChannels, spec.kernel, spec.stride,
                    spec.outHeight(), spec.outWidth());
        sim::TextTable table({"Stage", "PE port", "On-chip buffer",
                              "Width", "# line buffers"});
        for (const auto &row : lineBufferPlan(spec, nPe)) {
            table.addRow({stageName(row.stage), row.port,
                          row.onChipBuffer,
                          std::to_string(row.width),
                          std::to_string(row.count)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    // Register budget: line buffers are registers; the BCU row of
    // Table 4 (111.0K registers over 256 PEs) must be able to hold
    // the largest per-CU plan.
    int max_regs = 0;
    for (const auto &layer : net.layers) {
        int regs = 0;
        for (const auto &row : lineBufferPlan(layer, nPe))
            regs += row.width * std::max(row.count, 1) * 32;
        max_regs = std::max(max_regs, regs);
    }
    std::printf("Largest per-layer line-buffer register demand: "
                "%s flip-flops per CU vs Table 4's 111.0K register "
                "budget for the BCU across 4 CUs (%s per CU) — the "
                "plan fits with room for double buffering.\n",
                sim::TextTable::num(
                    static_cast<std::uint64_t>(max_regs))
                    .c_str(),
                sim::TextTable::num(std::uint64_t{111000 / 4}).c_str());
    return 0;
}
