/**
 * @file
 * Regenerates Table 4: the FPGA resource-usage breakdown of FA3C on
 * the Xilinx VCU1525 (UltraScale+ VU9P), and sweeps the resource
 * model across PE counts to find the largest configuration that
 * still fits the device (a design-space exploration the model
 * enables).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "fa3c/resource_model.hh"
#include "sim/table.hh"

using namespace fa3c;
using namespace fa3c::core;

namespace {

void
BM_ResourceBreakdown(benchmark::State &state)
{
    const ResourceModel model(Fa3cConfig::vcu1525());
    for (auto _ : state) {
        auto rows = model.breakdown();
        benchmark::DoNotOptimize(rows.data());
    }
}
BENCHMARK(BM_ResourceBreakdown)->Unit(benchmark::kMicrosecond);

std::string
fmtK(double v)
{
    if (v >= 1000.0)
        return sim::TextTable::num(v / 1000.0, 1) + "K";
    return sim::TextTable::num(v, 0);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::runMicrobenchmarks(argc, argv);
    bench::banner("Table 4", "FPGA resource usage breakdown on Xilinx "
                             "VCU1525 UltraScale+ VU9P");

    const ResourceModel model(Fa3cConfig::vcu1525());
    const DeviceCapacity dev = DeviceCapacity::vu9p();

    sim::TextTable table({"Component", "Logic utilization",
                          "Registers", "On-chip memory blocks",
                          "DSP blocks"});
    for (const auto &row : model.breakdown()) {
        table.addRow({row.component, fmtK(row.logicLuts),
                      fmtK(row.registers),
                      sim::TextTable::num(row.memoryBlocks, 0),
                      sim::TextTable::num(row.dspBlocks, 0)});
    }
    const ResourceUsage total = model.total();
    table.addRow({"Total", fmtK(total.logicLuts), fmtK(total.registers),
                  sim::TextTable::num(total.memoryBlocks, 0),
                  sim::TextTable::num(total.dspBlocks, 0)});
    table.addRow(
        {"Utilization of " + dev.name,
         sim::TextTable::num(100.0 * total.logicLuts / dev.logicLuts,
                             1) +
             "%",
         sim::TextTable::num(100.0 * total.registers / dev.registers,
                             1) +
             "%",
         sim::TextTable::num(
             100.0 * total.memoryBlocks / dev.memoryBlocks, 1) +
             "%",
         sim::TextTable::num(100.0 * total.dspBlocks / dev.dspBlocks,
                             1) +
             "%"});
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper Table 4 totals: 677.3K (57.3%%) / 875.7K "
                "(37.0%%) / 1267 (40.6%%) / 2348 (34.3%%).\n\n");

    // Design-space sweep: how far do PEs scale on this device?
    std::printf("Design-space sweep (2 CU pairs, PEs per CU):\n");
    sim::TextTable sweep({"PEs/CU", "LUT %", "Reg %", "Mem %", "DSP %",
                          "Fits VU9P"});
    for (int pes : {32, 64, 96, 128, 192, 256}) {
        Fa3cConfig cfg = Fa3cConfig::vcu1525();
        cfg.pesPerCu = pes;
        const ResourceModel m(cfg);
        const ResourceUsage t = m.total();
        sweep.addRow(
            {std::to_string(pes),
             sim::TextTable::num(100.0 * t.logicLuts / dev.logicLuts,
                                 1),
             sim::TextTable::num(100.0 * t.registers / dev.registers,
                                 1),
             sim::TextTable::num(
                 100.0 * t.memoryBlocks / dev.memoryBlocks, 1),
             sim::TextTable::num(100.0 * t.dspBlocks / dev.dspBlocks,
                                 1),
             m.fits(dev) ? "yes" : "no"});
    }
    std::printf("%s\n", sweep.render().c_str());
    return 0;
}
