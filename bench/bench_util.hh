/** @file Shared helpers for the reproduction benchmark binaries. */

#ifndef FA3C_BENCH_BENCH_UTIL_HH
#define FA3C_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/host_info.hh"
#include "obs/json.hh"

namespace fa3c::bench {

/** Print a banner naming the paper artifact being regenerated. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("FA3C reproduction — %s\n", artifact.c_str());
    std::printf("%s\n", description.c_str());
    std::printf("==================================================="
                "===========\n\n");
}

/** Integer knob overridable from the environment (scaling runs). */
inline std::uint64_t
envKnob(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value)
        return fallback;
    return std::strtoull(value, nullptr, 10);
}

/**
 * Run the registered google-benchmark micro-benchmarks, then return
 * so the caller can print the reproduction tables last.
 */
inline void
runMicrobenchmarks(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
}

/**
 * Open a CSV file under $FA3C_CSV_DIR for plot-ready data series.
 *
 * @return An open FILE*, or nullptr when the variable is unset (the
 *         caller skips CSV output). The caller closes it.
 */
inline std::FILE *
openCsv(const std::string &name)
{
    const char *dir = std::getenv("FA3C_CSV_DIR");
    if (!dir)
        return nullptr;
    const std::string path = std::string(dir) + "/" + name;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f)
        std::printf("(writing %s)\n", path.c_str());
    return f;
}

/**
 * Machine-readable benchmark results.
 *
 * Collects top-level scalar fields plus one row per measured
 * configuration, and writes $FA3C_JSON_DIR/BENCH_<name>.json at
 * destruction (schema "fa3c.bench.v1"). All calls are no-ops when
 * FA3C_JSON_DIR is unset, so benches can populate a report
 * unconditionally.
 */
class JsonReport
{
  public:
    /** One result row; set() chains. */
    class Row
    {
      public:
        Row &
        set(const std::string &key, double v)
        {
            kv_.emplace_back(key, obs::jsonNumber(v));
            return *this;
        }
        Row &
        set(const std::string &key, std::uint64_t v)
        {
            kv_.emplace_back(key, std::to_string(v));
            return *this;
        }
        Row &
        set(const std::string &key, int v)
        {
            kv_.emplace_back(key, std::to_string(v));
            return *this;
        }
        Row &
        set(const std::string &key, const std::string &v)
        {
            std::string quoted = "\"";
            quoted += obs::jsonEscape(v);
            quoted += '"';
            kv_.emplace_back(key, std::move(quoted));
            return *this;
        }
        Row &
        set(const std::string &key, const char *v)
        {
            return set(key, std::string(v));
        }

      private:
        friend class JsonReport;
        std::vector<std::pair<std::string, std::string>> kv_;
    };

    explicit JsonReport(std::string name) : name_(std::move(name))
    {
        if (const char *dir = std::getenv("FA3C_JSON_DIR"))
            path_ = std::string(dir) + "/BENCH_" + name_ + ".json";
        // Host provenance in every report: bench_trend keys rolling
        // baselines on "host" so unlike machines never gate each
        // other. The host_* fields are informational (parseBenchJson
        // drops them from the metric set).
        const obs::HostInfo &host = obs::hostInfo();
        field("host", host.fingerprint);
        field("host_cpu", host.cpuModel);
        field("host_logical_cores", host.logicalCores);
        field("host_kernel_threads", host.kernelThreads);
    }

    ~JsonReport() { write(); }

    JsonReport(const JsonReport &) = delete;
    JsonReport &operator=(const JsonReport &) = delete;

    bool enabled() const { return !path_.empty(); }

    /** Top-level summary scalar (e.g. "fa3c_ips_n16"). */
    template <typename T>
    void
    field(const std::string &key, T v)
    {
        header_.set(key, v);
    }

    /** Append a result row, one per measured configuration. */
    Row &addRow()
    {
        rows_.emplace_back();
        return rows_.back();
    }

    /** Write the file now (also done by the destructor). */
    void
    write()
    {
        if (!enabled() || written_)
            return;
        std::ofstream out(path_);
        if (!out)
            return;
        written_ = true;
        out << "{\"schema\":\"fa3c.bench.v1\",\"bench\":\""
            << obs::jsonEscape(name_) << "\"";
        for (const auto &[k, v] : header_.kv_)
            out << ",\"" << obs::jsonEscape(k) << "\":" << v;
        out << ",\"rows\":[";
        bool first_row = true;
        for (const auto &row : rows_) {
            out << (first_row ? "{" : ",{");
            first_row = false;
            bool first = true;
            for (const auto &[k, v] : row.kv_) {
                out << (first ? "\"" : ",\"") << obs::jsonEscape(k)
                    << "\":" << v;
                first = false;
            }
            out << "}";
        }
        out << "]}\n";
        std::printf("(writing %s)\n", path_.c_str());
    }

  private:
    std::string name_;
    std::string path_;
    Row header_;
    std::vector<Row> rows_;
    bool written_ = false;
};

} // namespace fa3c::bench

#endif // FA3C_BENCH_BENCH_UTIL_HH
