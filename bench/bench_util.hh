/** @file Shared helpers for the reproduction benchmark binaries. */

#ifndef FA3C_BENCH_BENCH_UTIL_HH
#define FA3C_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace fa3c::bench {

/** Print a banner naming the paper artifact being regenerated. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("FA3C reproduction — %s\n", artifact.c_str());
    std::printf("%s\n", description.c_str());
    std::printf("==================================================="
                "===========\n\n");
}

/** Integer knob overridable from the environment (scaling runs). */
inline std::uint64_t
envKnob(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value)
        return fallback;
    return std::strtoull(value, nullptr, 10);
}

/**
 * Run the registered google-benchmark micro-benchmarks, then return
 * so the caller can print the reproduction tables last.
 */
inline void
runMicrobenchmarks(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
}

/**
 * Open a CSV file under $FA3C_CSV_DIR for plot-ready data series.
 *
 * @return An open FILE*, or nullptr when the variable is unset (the
 *         caller skips CSV output). The caller closes it.
 */
inline std::FILE *
openCsv(const std::string &name)
{
    const char *dir = std::getenv("FA3C_CSV_DIR");
    if (!dir)
        return nullptr;
    const std::string path = std::string(dir) + "/" + name;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f)
        std::printf("(writing %s)\n", path.c_str());
    return f;
}

} // namespace fa3c::bench

#endif // FA3C_BENCH_BENCH_UTIL_HH
