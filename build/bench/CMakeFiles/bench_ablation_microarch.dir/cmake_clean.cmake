file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_microarch.dir/bench_ablation_microarch.cc.o"
  "CMakeFiles/bench_ablation_microarch.dir/bench_ablation_microarch.cc.o.d"
  "bench_ablation_microarch"
  "bench_ablation_microarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
