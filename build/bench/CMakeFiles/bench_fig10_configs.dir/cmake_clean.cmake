file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_configs.dir/bench_fig10_configs.cc.o"
  "CMakeFiles/bench_fig10_configs.dir/bench_fig10_configs.cc.o.d"
  "bench_fig10_configs"
  "bench_fig10_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
