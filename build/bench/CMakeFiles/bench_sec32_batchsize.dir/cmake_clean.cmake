file(REMOVE_RECURSE
  "CMakeFiles/bench_sec32_batchsize.dir/bench_sec32_batchsize.cc.o"
  "CMakeFiles/bench_sec32_batchsize.dir/bench_sec32_batchsize.cc.o.d"
  "bench_sec32_batchsize"
  "bench_sec32_batchsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec32_batchsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
