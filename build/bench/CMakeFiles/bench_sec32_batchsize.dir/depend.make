# Empty dependencies file for bench_sec32_batchsize.
# This may be replaced when dependencies are built.
