file(REMOVE_RECURSE
  "CMakeFiles/bench_sec34_kernel_launch.dir/bench_sec34_kernel_launch.cc.o"
  "CMakeFiles/bench_sec34_kernel_launch.dir/bench_sec34_kernel_launch.cc.o.d"
  "bench_sec34_kernel_launch"
  "bench_sec34_kernel_launch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec34_kernel_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
