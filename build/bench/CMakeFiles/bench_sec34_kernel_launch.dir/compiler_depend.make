# Empty compiler generated dependencies file for bench_sec34_kernel_launch.
# This may be replaced when dependencies are built.
