file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_dnn_layers.dir/bench_table1_dnn_layers.cc.o"
  "CMakeFiles/bench_table1_dnn_layers.dir/bench_table1_dnn_layers.cc.o.d"
  "bench_table1_dnn_layers"
  "bench_table1_dnn_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_dnn_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
