file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_offchip_traffic.dir/bench_table2_offchip_traffic.cc.o"
  "CMakeFiles/bench_table2_offchip_traffic.dir/bench_table2_offchip_traffic.cc.o.d"
  "bench_table2_offchip_traffic"
  "bench_table2_offchip_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_offchip_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
