# Empty compiler generated dependencies file for bench_table2_offchip_traffic.
# This may be replaced when dependencies are built.
