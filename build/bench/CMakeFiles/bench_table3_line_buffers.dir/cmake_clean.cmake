file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_line_buffers.dir/bench_table3_line_buffers.cc.o"
  "CMakeFiles/bench_table3_line_buffers.dir/bench_table3_line_buffers.cc.o.d"
  "bench_table3_line_buffers"
  "bench_table3_line_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_line_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
