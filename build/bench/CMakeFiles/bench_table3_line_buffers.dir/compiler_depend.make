# Empty compiler generated dependencies file for bench_table3_line_buffers.
# This may be replaced when dependencies are built.
