file(REMOVE_RECURSE
  "CMakeFiles/atari_training.dir/atari_training.cpp.o"
  "CMakeFiles/atari_training.dir/atari_training.cpp.o.d"
  "atari_training"
  "atari_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atari_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
