# Empty compiler generated dependencies file for atari_training.
# This may be replaced when dependencies are built.
