file(REMOVE_RECURSE
  "CMakeFiles/platform_trace.dir/platform_trace.cpp.o"
  "CMakeFiles/platform_trace.dir/platform_trace.cpp.o.d"
  "platform_trace"
  "platform_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
