# Empty compiler generated dependencies file for platform_trace.
# This may be replaced when dependencies are built.
