
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/env/ascii.cc" "src/env/CMakeFiles/fa3c_env.dir/ascii.cc.o" "gcc" "src/env/CMakeFiles/fa3c_env.dir/ascii.cc.o.d"
  "/root/repo/src/env/environment.cc" "src/env/CMakeFiles/fa3c_env.dir/environment.cc.o" "gcc" "src/env/CMakeFiles/fa3c_env.dir/environment.cc.o.d"
  "/root/repo/src/env/frame.cc" "src/env/CMakeFiles/fa3c_env.dir/frame.cc.o" "gcc" "src/env/CMakeFiles/fa3c_env.dir/frame.cc.o.d"
  "/root/repo/src/env/game_beam_rider.cc" "src/env/CMakeFiles/fa3c_env.dir/game_beam_rider.cc.o" "gcc" "src/env/CMakeFiles/fa3c_env.dir/game_beam_rider.cc.o.d"
  "/root/repo/src/env/game_breakout.cc" "src/env/CMakeFiles/fa3c_env.dir/game_breakout.cc.o" "gcc" "src/env/CMakeFiles/fa3c_env.dir/game_breakout.cc.o.d"
  "/root/repo/src/env/game_pong.cc" "src/env/CMakeFiles/fa3c_env.dir/game_pong.cc.o" "gcc" "src/env/CMakeFiles/fa3c_env.dir/game_pong.cc.o.d"
  "/root/repo/src/env/game_qbert.cc" "src/env/CMakeFiles/fa3c_env.dir/game_qbert.cc.o" "gcc" "src/env/CMakeFiles/fa3c_env.dir/game_qbert.cc.o.d"
  "/root/repo/src/env/game_seaquest.cc" "src/env/CMakeFiles/fa3c_env.dir/game_seaquest.cc.o" "gcc" "src/env/CMakeFiles/fa3c_env.dir/game_seaquest.cc.o.d"
  "/root/repo/src/env/game_space_invaders.cc" "src/env/CMakeFiles/fa3c_env.dir/game_space_invaders.cc.o" "gcc" "src/env/CMakeFiles/fa3c_env.dir/game_space_invaders.cc.o.d"
  "/root/repo/src/env/session.cc" "src/env/CMakeFiles/fa3c_env.dir/session.cc.o" "gcc" "src/env/CMakeFiles/fa3c_env.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fa3c_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fa3c_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
