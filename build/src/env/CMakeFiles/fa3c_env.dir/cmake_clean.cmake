file(REMOVE_RECURSE
  "CMakeFiles/fa3c_env.dir/ascii.cc.o"
  "CMakeFiles/fa3c_env.dir/ascii.cc.o.d"
  "CMakeFiles/fa3c_env.dir/environment.cc.o"
  "CMakeFiles/fa3c_env.dir/environment.cc.o.d"
  "CMakeFiles/fa3c_env.dir/frame.cc.o"
  "CMakeFiles/fa3c_env.dir/frame.cc.o.d"
  "CMakeFiles/fa3c_env.dir/game_beam_rider.cc.o"
  "CMakeFiles/fa3c_env.dir/game_beam_rider.cc.o.d"
  "CMakeFiles/fa3c_env.dir/game_breakout.cc.o"
  "CMakeFiles/fa3c_env.dir/game_breakout.cc.o.d"
  "CMakeFiles/fa3c_env.dir/game_pong.cc.o"
  "CMakeFiles/fa3c_env.dir/game_pong.cc.o.d"
  "CMakeFiles/fa3c_env.dir/game_qbert.cc.o"
  "CMakeFiles/fa3c_env.dir/game_qbert.cc.o.d"
  "CMakeFiles/fa3c_env.dir/game_seaquest.cc.o"
  "CMakeFiles/fa3c_env.dir/game_seaquest.cc.o.d"
  "CMakeFiles/fa3c_env.dir/game_space_invaders.cc.o"
  "CMakeFiles/fa3c_env.dir/game_space_invaders.cc.o.d"
  "CMakeFiles/fa3c_env.dir/session.cc.o"
  "CMakeFiles/fa3c_env.dir/session.cc.o.d"
  "libfa3c_env.a"
  "libfa3c_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa3c_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
