file(REMOVE_RECURSE
  "libfa3c_env.a"
)
