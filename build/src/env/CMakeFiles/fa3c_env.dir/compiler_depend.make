# Empty compiler generated dependencies file for fa3c_env.
# This may be replaced when dependencies are built.
