
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fa3c/accelerator.cc" "src/fa3c/CMakeFiles/fa3c_core.dir/accelerator.cc.o" "gcc" "src/fa3c/CMakeFiles/fa3c_core.dir/accelerator.cc.o.d"
  "/root/repo/src/fa3c/buffers.cc" "src/fa3c/CMakeFiles/fa3c_core.dir/buffers.cc.o" "gcc" "src/fa3c/CMakeFiles/fa3c_core.dir/buffers.cc.o.d"
  "/root/repo/src/fa3c/config.cc" "src/fa3c/CMakeFiles/fa3c_core.dir/config.cc.o" "gcc" "src/fa3c/CMakeFiles/fa3c_core.dir/config.cc.o.d"
  "/root/repo/src/fa3c/datapath_backend.cc" "src/fa3c/CMakeFiles/fa3c_core.dir/datapath_backend.cc.o" "gcc" "src/fa3c/CMakeFiles/fa3c_core.dir/datapath_backend.cc.o.d"
  "/root/repo/src/fa3c/dram_model.cc" "src/fa3c/CMakeFiles/fa3c_core.dir/dram_model.cc.o" "gcc" "src/fa3c/CMakeFiles/fa3c_core.dir/dram_model.cc.o.d"
  "/root/repo/src/fa3c/layouts.cc" "src/fa3c/CMakeFiles/fa3c_core.dir/layouts.cc.o" "gcc" "src/fa3c/CMakeFiles/fa3c_core.dir/layouts.cc.o.d"
  "/root/repo/src/fa3c/pe_array.cc" "src/fa3c/CMakeFiles/fa3c_core.dir/pe_array.cc.o" "gcc" "src/fa3c/CMakeFiles/fa3c_core.dir/pe_array.cc.o.d"
  "/root/repo/src/fa3c/resource_model.cc" "src/fa3c/CMakeFiles/fa3c_core.dir/resource_model.cc.o" "gcc" "src/fa3c/CMakeFiles/fa3c_core.dir/resource_model.cc.o.d"
  "/root/repo/src/fa3c/rmsprop_module.cc" "src/fa3c/CMakeFiles/fa3c_core.dir/rmsprop_module.cc.o" "gcc" "src/fa3c/CMakeFiles/fa3c_core.dir/rmsprop_module.cc.o.d"
  "/root/repo/src/fa3c/task_model.cc" "src/fa3c/CMakeFiles/fa3c_core.dir/task_model.cc.o" "gcc" "src/fa3c/CMakeFiles/fa3c_core.dir/task_model.cc.o.d"
  "/root/repo/src/fa3c/timing.cc" "src/fa3c/CMakeFiles/fa3c_core.dir/timing.cc.o" "gcc" "src/fa3c/CMakeFiles/fa3c_core.dir/timing.cc.o.d"
  "/root/repo/src/fa3c/tlu.cc" "src/fa3c/CMakeFiles/fa3c_core.dir/tlu.cc.o" "gcc" "src/fa3c/CMakeFiles/fa3c_core.dir/tlu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rl/CMakeFiles/fa3c_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fa3c_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fa3c_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fa3c_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/fa3c_env.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
