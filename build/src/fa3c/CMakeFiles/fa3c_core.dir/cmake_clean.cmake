file(REMOVE_RECURSE
  "CMakeFiles/fa3c_core.dir/accelerator.cc.o"
  "CMakeFiles/fa3c_core.dir/accelerator.cc.o.d"
  "CMakeFiles/fa3c_core.dir/buffers.cc.o"
  "CMakeFiles/fa3c_core.dir/buffers.cc.o.d"
  "CMakeFiles/fa3c_core.dir/config.cc.o"
  "CMakeFiles/fa3c_core.dir/config.cc.o.d"
  "CMakeFiles/fa3c_core.dir/datapath_backend.cc.o"
  "CMakeFiles/fa3c_core.dir/datapath_backend.cc.o.d"
  "CMakeFiles/fa3c_core.dir/dram_model.cc.o"
  "CMakeFiles/fa3c_core.dir/dram_model.cc.o.d"
  "CMakeFiles/fa3c_core.dir/layouts.cc.o"
  "CMakeFiles/fa3c_core.dir/layouts.cc.o.d"
  "CMakeFiles/fa3c_core.dir/pe_array.cc.o"
  "CMakeFiles/fa3c_core.dir/pe_array.cc.o.d"
  "CMakeFiles/fa3c_core.dir/resource_model.cc.o"
  "CMakeFiles/fa3c_core.dir/resource_model.cc.o.d"
  "CMakeFiles/fa3c_core.dir/rmsprop_module.cc.o"
  "CMakeFiles/fa3c_core.dir/rmsprop_module.cc.o.d"
  "CMakeFiles/fa3c_core.dir/task_model.cc.o"
  "CMakeFiles/fa3c_core.dir/task_model.cc.o.d"
  "CMakeFiles/fa3c_core.dir/timing.cc.o"
  "CMakeFiles/fa3c_core.dir/timing.cc.o.d"
  "CMakeFiles/fa3c_core.dir/tlu.cc.o"
  "CMakeFiles/fa3c_core.dir/tlu.cc.o.d"
  "libfa3c_core.a"
  "libfa3c_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa3c_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
