file(REMOVE_RECURSE
  "libfa3c_core.a"
)
