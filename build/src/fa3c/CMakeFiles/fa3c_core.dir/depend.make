# Empty dependencies file for fa3c_core.
# This may be replaced when dependencies are built.
