# CMake generated Testfile for 
# Source directory: /root/repo/src/fa3c
# Build directory: /root/repo/build/src/fa3c
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
