file(REMOVE_RECURSE
  "CMakeFiles/fa3c_gpu.dir/gpu_model.cc.o"
  "CMakeFiles/fa3c_gpu.dir/gpu_model.cc.o.d"
  "CMakeFiles/fa3c_gpu.dir/layout_experiment.cc.o"
  "CMakeFiles/fa3c_gpu.dir/layout_experiment.cc.o.d"
  "libfa3c_gpu.a"
  "libfa3c_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa3c_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
