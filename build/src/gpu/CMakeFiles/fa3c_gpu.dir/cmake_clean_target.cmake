file(REMOVE_RECURSE
  "libfa3c_gpu.a"
)
