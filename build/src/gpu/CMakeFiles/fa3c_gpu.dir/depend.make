# Empty dependencies file for fa3c_gpu.
# This may be replaced when dependencies are built.
