file(REMOVE_RECURSE
  "CMakeFiles/fa3c_harness.dir/agent_driver.cc.o"
  "CMakeFiles/fa3c_harness.dir/agent_driver.cc.o.d"
  "CMakeFiles/fa3c_harness.dir/experiments.cc.o"
  "CMakeFiles/fa3c_harness.dir/experiments.cc.o.d"
  "libfa3c_harness.a"
  "libfa3c_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa3c_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
