file(REMOVE_RECURSE
  "libfa3c_harness.a"
)
