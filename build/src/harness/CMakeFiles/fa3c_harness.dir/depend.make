# Empty dependencies file for fa3c_harness.
# This may be replaced when dependencies are built.
