
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/a3c_network.cc" "src/nn/CMakeFiles/fa3c_nn.dir/a3c_network.cc.o" "gcc" "src/nn/CMakeFiles/fa3c_nn.dir/a3c_network.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/fa3c_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/fa3c_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/params.cc" "src/nn/CMakeFiles/fa3c_nn.dir/params.cc.o" "gcc" "src/nn/CMakeFiles/fa3c_nn.dir/params.cc.o.d"
  "/root/repo/src/nn/rmsprop.cc" "src/nn/CMakeFiles/fa3c_nn.dir/rmsprop.cc.o" "gcc" "src/nn/CMakeFiles/fa3c_nn.dir/rmsprop.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/fa3c_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/fa3c_nn.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fa3c_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fa3c_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
