file(REMOVE_RECURSE
  "CMakeFiles/fa3c_nn.dir/a3c_network.cc.o"
  "CMakeFiles/fa3c_nn.dir/a3c_network.cc.o.d"
  "CMakeFiles/fa3c_nn.dir/layers.cc.o"
  "CMakeFiles/fa3c_nn.dir/layers.cc.o.d"
  "CMakeFiles/fa3c_nn.dir/params.cc.o"
  "CMakeFiles/fa3c_nn.dir/params.cc.o.d"
  "CMakeFiles/fa3c_nn.dir/rmsprop.cc.o"
  "CMakeFiles/fa3c_nn.dir/rmsprop.cc.o.d"
  "CMakeFiles/fa3c_nn.dir/serialize.cc.o"
  "CMakeFiles/fa3c_nn.dir/serialize.cc.o.d"
  "libfa3c_nn.a"
  "libfa3c_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa3c_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
