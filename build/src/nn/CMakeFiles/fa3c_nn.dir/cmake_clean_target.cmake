file(REMOVE_RECURSE
  "libfa3c_nn.a"
)
