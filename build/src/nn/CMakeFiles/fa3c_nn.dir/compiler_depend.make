# Empty compiler generated dependencies file for fa3c_nn.
# This may be replaced when dependencies are built.
