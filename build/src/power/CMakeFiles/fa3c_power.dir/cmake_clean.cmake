file(REMOVE_RECURSE
  "CMakeFiles/fa3c_power.dir/power_model.cc.o"
  "CMakeFiles/fa3c_power.dir/power_model.cc.o.d"
  "libfa3c_power.a"
  "libfa3c_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa3c_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
