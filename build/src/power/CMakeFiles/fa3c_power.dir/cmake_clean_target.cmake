file(REMOVE_RECURSE
  "libfa3c_power.a"
)
