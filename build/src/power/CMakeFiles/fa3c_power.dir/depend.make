# Empty dependencies file for fa3c_power.
# This may be replaced when dependencies are built.
