
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/a3c.cc" "src/rl/CMakeFiles/fa3c_rl.dir/a3c.cc.o" "gcc" "src/rl/CMakeFiles/fa3c_rl.dir/a3c.cc.o.d"
  "/root/repo/src/rl/evaluate.cc" "src/rl/CMakeFiles/fa3c_rl.dir/evaluate.cc.o" "gcc" "src/rl/CMakeFiles/fa3c_rl.dir/evaluate.cc.o.d"
  "/root/repo/src/rl/ga3c.cc" "src/rl/CMakeFiles/fa3c_rl.dir/ga3c.cc.o" "gcc" "src/rl/CMakeFiles/fa3c_rl.dir/ga3c.cc.o.d"
  "/root/repo/src/rl/global_params.cc" "src/rl/CMakeFiles/fa3c_rl.dir/global_params.cc.o" "gcc" "src/rl/CMakeFiles/fa3c_rl.dir/global_params.cc.o.d"
  "/root/repo/src/rl/paac.cc" "src/rl/CMakeFiles/fa3c_rl.dir/paac.cc.o" "gcc" "src/rl/CMakeFiles/fa3c_rl.dir/paac.cc.o.d"
  "/root/repo/src/rl/score_log.cc" "src/rl/CMakeFiles/fa3c_rl.dir/score_log.cc.o" "gcc" "src/rl/CMakeFiles/fa3c_rl.dir/score_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/fa3c_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/fa3c_env.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fa3c_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fa3c_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
