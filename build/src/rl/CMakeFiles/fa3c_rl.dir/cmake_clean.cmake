file(REMOVE_RECURSE
  "CMakeFiles/fa3c_rl.dir/a3c.cc.o"
  "CMakeFiles/fa3c_rl.dir/a3c.cc.o.d"
  "CMakeFiles/fa3c_rl.dir/evaluate.cc.o"
  "CMakeFiles/fa3c_rl.dir/evaluate.cc.o.d"
  "CMakeFiles/fa3c_rl.dir/ga3c.cc.o"
  "CMakeFiles/fa3c_rl.dir/ga3c.cc.o.d"
  "CMakeFiles/fa3c_rl.dir/global_params.cc.o"
  "CMakeFiles/fa3c_rl.dir/global_params.cc.o.d"
  "CMakeFiles/fa3c_rl.dir/paac.cc.o"
  "CMakeFiles/fa3c_rl.dir/paac.cc.o.d"
  "CMakeFiles/fa3c_rl.dir/score_log.cc.o"
  "CMakeFiles/fa3c_rl.dir/score_log.cc.o.d"
  "libfa3c_rl.a"
  "libfa3c_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa3c_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
