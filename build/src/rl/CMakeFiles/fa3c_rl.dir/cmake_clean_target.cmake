file(REMOVE_RECURSE
  "libfa3c_rl.a"
)
