# Empty compiler generated dependencies file for fa3c_rl.
# This may be replaced when dependencies are built.
