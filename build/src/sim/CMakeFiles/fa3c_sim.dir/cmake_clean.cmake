file(REMOVE_RECURSE
  "CMakeFiles/fa3c_sim.dir/event_queue.cc.o"
  "CMakeFiles/fa3c_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/fa3c_sim.dir/logging.cc.o"
  "CMakeFiles/fa3c_sim.dir/logging.cc.o.d"
  "CMakeFiles/fa3c_sim.dir/rng.cc.o"
  "CMakeFiles/fa3c_sim.dir/rng.cc.o.d"
  "CMakeFiles/fa3c_sim.dir/stats.cc.o"
  "CMakeFiles/fa3c_sim.dir/stats.cc.o.d"
  "CMakeFiles/fa3c_sim.dir/table.cc.o"
  "CMakeFiles/fa3c_sim.dir/table.cc.o.d"
  "libfa3c_sim.a"
  "libfa3c_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa3c_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
