file(REMOVE_RECURSE
  "libfa3c_sim.a"
)
