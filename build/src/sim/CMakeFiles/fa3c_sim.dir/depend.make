# Empty dependencies file for fa3c_sim.
# This may be replaced when dependencies are built.
