file(REMOVE_RECURSE
  "CMakeFiles/fa3c_tensor.dir/tensor.cc.o"
  "CMakeFiles/fa3c_tensor.dir/tensor.cc.o.d"
  "libfa3c_tensor.a"
  "libfa3c_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa3c_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
