file(REMOVE_RECURSE
  "libfa3c_tensor.a"
)
