# Empty compiler generated dependencies file for fa3c_tensor.
# This may be replaced when dependencies are built.
