file(REMOVE_RECURSE
  "CMakeFiles/test_env_ascii.dir/test_env_ascii.cc.o"
  "CMakeFiles/test_env_ascii.dir/test_env_ascii.cc.o.d"
  "test_env_ascii"
  "test_env_ascii.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_env_ascii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
