# Empty dependencies file for test_env_ascii.
# This may be replaced when dependencies are built.
