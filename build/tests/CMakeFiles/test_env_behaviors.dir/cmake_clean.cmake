file(REMOVE_RECURSE
  "CMakeFiles/test_env_behaviors.dir/test_env_behaviors.cc.o"
  "CMakeFiles/test_env_behaviors.dir/test_env_behaviors.cc.o.d"
  "test_env_behaviors"
  "test_env_behaviors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_env_behaviors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
