# Empty dependencies file for test_env_behaviors.
# This may be replaced when dependencies are built.
