
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_env_games.cc" "tests/CMakeFiles/test_env_games.dir/test_env_games.cc.o" "gcc" "tests/CMakeFiles/test_env_games.dir/test_env_games.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/fa3c_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/fa3c/CMakeFiles/fa3c_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/fa3c_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/fa3c_power.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/fa3c_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/fa3c_env.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fa3c_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fa3c_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fa3c_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
