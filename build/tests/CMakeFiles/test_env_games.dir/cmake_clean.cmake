file(REMOVE_RECURSE
  "CMakeFiles/test_env_games.dir/test_env_games.cc.o"
  "CMakeFiles/test_env_games.dir/test_env_games.cc.o.d"
  "test_env_games"
  "test_env_games.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_env_games.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
