# Empty dependencies file for test_env_games.
# This may be replaced when dependencies are built.
