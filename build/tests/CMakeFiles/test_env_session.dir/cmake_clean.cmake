file(REMOVE_RECURSE
  "CMakeFiles/test_env_session.dir/test_env_session.cc.o"
  "CMakeFiles/test_env_session.dir/test_env_session.cc.o.d"
  "test_env_session"
  "test_env_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_env_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
