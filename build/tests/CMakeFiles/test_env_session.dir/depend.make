# Empty dependencies file for test_env_session.
# This may be replaced when dependencies are built.
