file(REMOVE_RECURSE
  "CMakeFiles/test_fa3c_accelerator.dir/test_fa3c_accelerator.cc.o"
  "CMakeFiles/test_fa3c_accelerator.dir/test_fa3c_accelerator.cc.o.d"
  "test_fa3c_accelerator"
  "test_fa3c_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fa3c_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
