# Empty dependencies file for test_fa3c_accelerator.
# This may be replaced when dependencies are built.
