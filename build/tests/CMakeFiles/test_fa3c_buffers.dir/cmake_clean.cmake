file(REMOVE_RECURSE
  "CMakeFiles/test_fa3c_buffers.dir/test_fa3c_buffers.cc.o"
  "CMakeFiles/test_fa3c_buffers.dir/test_fa3c_buffers.cc.o.d"
  "test_fa3c_buffers"
  "test_fa3c_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fa3c_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
