# Empty dependencies file for test_fa3c_buffers.
# This may be replaced when dependencies are built.
