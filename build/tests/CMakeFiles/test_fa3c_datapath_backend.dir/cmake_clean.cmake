file(REMOVE_RECURSE
  "CMakeFiles/test_fa3c_datapath_backend.dir/test_fa3c_datapath_backend.cc.o"
  "CMakeFiles/test_fa3c_datapath_backend.dir/test_fa3c_datapath_backend.cc.o.d"
  "test_fa3c_datapath_backend"
  "test_fa3c_datapath_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fa3c_datapath_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
