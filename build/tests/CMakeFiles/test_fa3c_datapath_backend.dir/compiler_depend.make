# Empty compiler generated dependencies file for test_fa3c_datapath_backend.
# This may be replaced when dependencies are built.
