file(REMOVE_RECURSE
  "CMakeFiles/test_fa3c_dram.dir/test_fa3c_dram.cc.o"
  "CMakeFiles/test_fa3c_dram.dir/test_fa3c_dram.cc.o.d"
  "test_fa3c_dram"
  "test_fa3c_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fa3c_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
