# Empty dependencies file for test_fa3c_dram.
# This may be replaced when dependencies are built.
