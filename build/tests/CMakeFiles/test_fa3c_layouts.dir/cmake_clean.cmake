file(REMOVE_RECURSE
  "CMakeFiles/test_fa3c_layouts.dir/test_fa3c_layouts.cc.o"
  "CMakeFiles/test_fa3c_layouts.dir/test_fa3c_layouts.cc.o.d"
  "test_fa3c_layouts"
  "test_fa3c_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fa3c_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
