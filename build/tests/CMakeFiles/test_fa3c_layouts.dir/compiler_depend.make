# Empty compiler generated dependencies file for test_fa3c_layouts.
# This may be replaced when dependencies are built.
