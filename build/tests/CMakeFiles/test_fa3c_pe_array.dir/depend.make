# Empty dependencies file for test_fa3c_pe_array.
# This may be replaced when dependencies are built.
