file(REMOVE_RECURSE
  "CMakeFiles/test_fa3c_resource_model.dir/test_fa3c_resource_model.cc.o"
  "CMakeFiles/test_fa3c_resource_model.dir/test_fa3c_resource_model.cc.o.d"
  "test_fa3c_resource_model"
  "test_fa3c_resource_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fa3c_resource_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
