# Empty dependencies file for test_fa3c_resource_model.
# This may be replaced when dependencies are built.
