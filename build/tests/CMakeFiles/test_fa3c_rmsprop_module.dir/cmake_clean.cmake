file(REMOVE_RECURSE
  "CMakeFiles/test_fa3c_rmsprop_module.dir/test_fa3c_rmsprop_module.cc.o"
  "CMakeFiles/test_fa3c_rmsprop_module.dir/test_fa3c_rmsprop_module.cc.o.d"
  "test_fa3c_rmsprop_module"
  "test_fa3c_rmsprop_module.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fa3c_rmsprop_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
