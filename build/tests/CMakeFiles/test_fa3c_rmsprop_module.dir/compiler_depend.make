# Empty compiler generated dependencies file for test_fa3c_rmsprop_module.
# This may be replaced when dependencies are built.
