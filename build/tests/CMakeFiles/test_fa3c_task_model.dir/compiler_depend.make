# Empty compiler generated dependencies file for test_fa3c_task_model.
# This may be replaced when dependencies are built.
