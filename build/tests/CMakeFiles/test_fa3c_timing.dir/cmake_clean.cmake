file(REMOVE_RECURSE
  "CMakeFiles/test_fa3c_timing.dir/test_fa3c_timing.cc.o"
  "CMakeFiles/test_fa3c_timing.dir/test_fa3c_timing.cc.o.d"
  "test_fa3c_timing"
  "test_fa3c_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fa3c_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
