# Empty dependencies file for test_fa3c_timing.
# This may be replaced when dependencies are built.
