file(REMOVE_RECURSE
  "CMakeFiles/test_fa3c_tlu.dir/test_fa3c_tlu.cc.o"
  "CMakeFiles/test_fa3c_tlu.dir/test_fa3c_tlu.cc.o.d"
  "test_fa3c_tlu"
  "test_fa3c_tlu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fa3c_tlu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
