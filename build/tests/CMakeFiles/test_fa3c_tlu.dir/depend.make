# Empty dependencies file for test_fa3c_tlu.
# This may be replaced when dependencies are built.
