file(REMOVE_RECURSE
  "CMakeFiles/test_harness_driver.dir/test_harness_driver.cc.o"
  "CMakeFiles/test_harness_driver.dir/test_harness_driver.cc.o.d"
  "test_harness_driver"
  "test_harness_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harness_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
