# Empty compiler generated dependencies file for test_harness_driver.
# This may be replaced when dependencies are built.
