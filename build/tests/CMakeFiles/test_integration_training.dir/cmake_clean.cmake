file(REMOVE_RECURSE
  "CMakeFiles/test_integration_training.dir/test_integration_training.cc.o"
  "CMakeFiles/test_integration_training.dir/test_integration_training.cc.o.d"
  "test_integration_training"
  "test_integration_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
