# Empty compiler generated dependencies file for test_integration_training.
# This may be replaced when dependencies are built.
