file(REMOVE_RECURSE
  "CMakeFiles/test_nn_rmsprop.dir/test_nn_rmsprop.cc.o"
  "CMakeFiles/test_nn_rmsprop.dir/test_nn_rmsprop.cc.o.d"
  "test_nn_rmsprop"
  "test_nn_rmsprop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_rmsprop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
