# Empty compiler generated dependencies file for test_nn_rmsprop.
# This may be replaced when dependencies are built.
