file(REMOVE_RECURSE
  "CMakeFiles/test_rl_a3c.dir/test_rl_a3c.cc.o"
  "CMakeFiles/test_rl_a3c.dir/test_rl_a3c.cc.o.d"
  "test_rl_a3c"
  "test_rl_a3c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl_a3c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
