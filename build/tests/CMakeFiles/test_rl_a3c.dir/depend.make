# Empty dependencies file for test_rl_a3c.
# This may be replaced when dependencies are built.
