file(REMOVE_RECURSE
  "CMakeFiles/test_rl_evaluate.dir/test_rl_evaluate.cc.o"
  "CMakeFiles/test_rl_evaluate.dir/test_rl_evaluate.cc.o.d"
  "test_rl_evaluate"
  "test_rl_evaluate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl_evaluate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
