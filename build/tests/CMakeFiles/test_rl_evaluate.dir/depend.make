# Empty dependencies file for test_rl_evaluate.
# This may be replaced when dependencies are built.
