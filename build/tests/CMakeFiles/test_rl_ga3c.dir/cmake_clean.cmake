file(REMOVE_RECURSE
  "CMakeFiles/test_rl_ga3c.dir/test_rl_ga3c.cc.o"
  "CMakeFiles/test_rl_ga3c.dir/test_rl_ga3c.cc.o.d"
  "test_rl_ga3c"
  "test_rl_ga3c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl_ga3c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
