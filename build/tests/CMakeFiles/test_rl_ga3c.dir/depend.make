# Empty dependencies file for test_rl_ga3c.
# This may be replaced when dependencies are built.
