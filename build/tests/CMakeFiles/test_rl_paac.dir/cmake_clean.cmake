file(REMOVE_RECURSE
  "CMakeFiles/test_rl_paac.dir/test_rl_paac.cc.o"
  "CMakeFiles/test_rl_paac.dir/test_rl_paac.cc.o.d"
  "test_rl_paac"
  "test_rl_paac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl_paac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
