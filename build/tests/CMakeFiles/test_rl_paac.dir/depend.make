# Empty dependencies file for test_rl_paac.
# This may be replaced when dependencies are built.
