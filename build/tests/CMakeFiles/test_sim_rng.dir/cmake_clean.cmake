file(REMOVE_RECURSE
  "CMakeFiles/test_sim_rng.dir/test_sim_rng.cc.o"
  "CMakeFiles/test_sim_rng.dir/test_sim_rng.cc.o.d"
  "test_sim_rng"
  "test_sim_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
