file(REMOVE_RECURSE
  "CMakeFiles/test_sim_table.dir/test_sim_table.cc.o"
  "CMakeFiles/test_sim_table.dir/test_sim_table.cc.o.d"
  "test_sim_table"
  "test_sim_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
