/**
 * @file
 * Compare the three actor-critic variants the paper discusses — A3C
 * (asynchronous, local parameter snapshots), PAAC (synchronous, one
 * update per lock-step batch), and GA3C (single global model with
 * predictor policy lag) — by actually training each on the same
 * synthetic game and printing the learning curves.
 *
 *     ./algorithm_comparison [game] [steps]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "env/environment.hh"
#include "env/session.hh"
#include "nn/a3c_network.hh"
#include "rl/a3c.hh"
#include "rl/ga3c.hh"
#include "rl/paac.hh"
#include "sim/table.hh"

using namespace fa3c;

namespace {

rl::A3cTrainer::SessionFactory
sessions(env::GameId game, const nn::NetConfig &net_cfg,
         std::uint64_t seed)
{
    return [game, net_cfg, seed](int agent_id) {
        env::SessionConfig cfg;
        cfg.frameStack = net_cfg.inChannels;
        cfg.obsHeight = net_cfg.inHeight;
        cfg.obsWidth = net_cfg.inWidth;
        return std::make_unique<env::AtariSession>(
            env::makeEnvironment(game,
                                 seed + static_cast<std::uint64_t>(
                                            agent_id)),
            cfg, seed * 13 + static_cast<std::uint64_t>(agent_id));
    };
}

std::string
curveOf(const rl::ScoreLog &log)
{
    const auto series = log.movingAverage(30, 1);
    if (series.empty())
        return "(no episodes)";
    std::string out;
    for (std::size_t i = 0; i < 6; ++i) {
        const std::size_t idx =
            std::min(series.size() - 1,
                     i * (series.size() - 1) / 5);
        out += sim::TextTable::num(series[idx].second, 1);
        if (i < 5)
            out += " ";
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string game_name = argc > 1 ? argv[1] : "qbert";
    const std::uint64_t steps =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 12000;
    const env::GameId game = env::gameFromName(game_name);
    const int actions = env::makeEnvironment(game, 0)->numActions();
    const nn::NetConfig net_cfg = nn::NetConfig::tiny(actions);
    const nn::A3cNetwork net(net_cfg);

    auto backends = [&net](int) {
        return std::make_unique<rl::ReferenceBackend>(net);
    };

    std::printf("Training %s for %llu steps with A3C, PAAC, and "
                "GA3C (4 agents/envs each)...\n\n",
                game_name.c_str(),
                static_cast<unsigned long long>(steps));

    sim::TextTable table({"Algorithm", "Episodes", "Final avg score",
                          "Curve (sampled)", "Notes"});

    {
        rl::A3cConfig cfg;
        cfg.numAgents = 4;
        cfg.totalSteps = steps;
        cfg.initialLr = 1e-3f;
        cfg.lrAnnealSteps = 0;
        cfg.seed = 3;
        rl::A3cTrainer trainer(net, cfg, backends,
                               sessions(game, net_cfg, 100));
        trainer.run();
        table.addRow({"A3C", std::to_string(trainer.scores().size()),
                      sim::TextTable::num(
                          trainer.scores().recentMean(30), 1),
                      curveOf(trainer.scores()),
                      "async, local snapshots"});
    }
    {
        rl::PaacConfig cfg;
        cfg.numEnvs = 4;
        cfg.totalSteps = steps;
        cfg.initialLr = 1e-3f;
        cfg.lrAnnealSteps = 0;
        cfg.seed = 3;
        rl::PaacTrainer trainer(net, cfg, backends,
                                sessions(game, net_cfg, 100));
        trainer.run();
        table.addRow({"PAAC", std::to_string(trainer.scores().size()),
                      sim::TextTable::num(
                          trainer.scores().recentMean(30), 1),
                      curveOf(trainer.scores()),
                      std::to_string(trainer.updatesApplied()) +
                          " synchronized updates"});
    }
    {
        rl::Ga3cConfig cfg;
        cfg.numEnvs = 4;
        cfg.trainingBatch = 2;
        cfg.predictorRefreshUpdates = 4; // visible policy lag
        cfg.totalSteps = steps;
        cfg.initialLr = 1e-3f;
        cfg.lrAnnealSteps = 0;
        cfg.seed = 3;
        rl::Ga3cTrainer trainer(net, cfg, backends,
                                sessions(game, net_cfg, 100));
        trainer.run();
        table.addRow(
            {"GA3C", std::to_string(trainer.scores().size()),
             sim::TextTable::num(trainer.scores().recentMean(30), 1),
             curveOf(trainer.scores()),
             "policy lag " +
                 sim::TextTable::num(trainer.currentPolicyLag(), 4)});
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("The paper (Section 6) argues GA3C's stale predictor "
                "can slow or destabilize learning while A3C's local "
                "snapshots keep inference and training coupled — at "
                "these short horizons all three usually learn, but "
                "GA3C pays a visible lag.\n");
    return 0;
}
