/**
 * @file
 * Train any of the six games through the FA3C functional datapath
 * model — the same layouts, TLU transposition, and PE dataflow as the
 * hardware — and report both the learning curve and the accumulated
 * datapath cycle counters.
 *
 *     ./atari_training [game] [steps] [options]
 *
 * Games: beam_rider breakout pong qbert seaquest space_invaders.
 *
 * Options:
 *     --backend <name>       datapath (default), reference, fast,
 *                            int8, or fp16; the non-datapath names run
 *                            on the CPU layer libraries (no cycle
 *                            counters); int8/fp16 use quantized
 *                            inference with fp32 training
 *     --checkpoint <path>    write crash-safe checkpoints to <path>
 *     --checkpoint-every <n> checkpoint every n env steps
 *     --resume               restore <path> before training (missing
 *                            file starts fresh; corrupt file aborts)
 *     --workers <n>          A3C agent threads, 1..256 (default 4)
 *     --dist <mode>          off (default) trains in-process; async /
 *                            sync print the equivalent multi-process
 *                            dist_training invocation and exit
 *
 * With --checkpoint set, SIGINT/SIGTERM/SIGUSR1 also trigger a
 * checkpoint at the next routine boundary.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "env/ascii.hh"
#include "env/environment.hh"
#include "env/session.hh"
#include "fa3c/datapath_backend.hh"
#include "nn/a3c_network.hh"
#include "rl/a3c.hh"
#include "rl/checkpoint.hh"

using namespace fa3c;

int
main(int argc, char **argv)
{
    std::string game_name = "breakout";
    std::uint64_t steps = 10000;
    std::string checkpoint_path;
    std::string backend_name = "datapath";
    std::uint64_t checkpoint_every = 0;
    bool resume = false;
    int workers = 4;
    std::string dist_mode = "off";

    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--backend" && i + 1 < argc) {
            backend_name = argv[++i];
            if (backend_name != "datapath" &&
                !rl::tryBackendKindFromName(backend_name)) {
                std::fprintf(stderr,
                             "unknown backend: %s (want "
                             "datapath|reference|fast|int8|fp16)\n",
                             backend_name.c_str());
                return 2;
            }
        } else if (arg == "--checkpoint" && i + 1 < argc) {
            checkpoint_path = argv[++i];
        } else if (arg == "--checkpoint-every" && i + 1 < argc) {
            checkpoint_every = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--workers" && i + 1 < argc) {
            char *end = nullptr;
            const long n = std::strtol(argv[++i], &end, 10);
            if (end == nullptr || *end != '\0' || n < 1 || n > 256) {
                std::fprintf(stderr,
                             "bad --workers value: %s (want an "
                             "integer in 1..256)\n",
                             argv[i]);
                return 2;
            }
            workers = static_cast<int>(n);
        } else if (arg == "--dist" && i + 1 < argc) {
            dist_mode = argv[++i];
            if (dist_mode != "off" && dist_mode != "async" &&
                dist_mode != "sync") {
                std::fprintf(stderr,
                             "unknown --dist mode: %s (want "
                             "off|async|sync)\n",
                             dist_mode.c_str());
                return 2;
            }
        } else if (positional == 0) {
            game_name = arg;
            ++positional;
        } else if (positional == 1) {
            steps = std::strtoull(arg.c_str(), nullptr, 10);
            ++positional;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            return 2;
        }
    }
    const auto maybe_game = env::tryGameFromName(game_name);
    if (!maybe_game) {
        std::fprintf(stderr, "unknown game: %s (valid: %s)\n",
                     game_name.c_str(),
                     env::gameNameList().c_str());
        return 2;
    }
    const env::GameId game = *maybe_game;

    if (dist_mode != "off") {
        // Multi-process training lives in the dist_training example;
        // hand the user the equivalent invocation instead of silently
        // training in-process.
        std::printf("distributed training runs as separate "
                    "processes; use:\n"
                    "  dist_training --role launch --game %s --steps "
                    "%llu --workers 2 --agents %d%s\n",
                    game_name.c_str(),
                    static_cast<unsigned long long>(steps), workers,
                    dist_mode == "sync" ? " --sync" : "");
        return 0;
    }

    const int actions =
        env::makeEnvironment(game, 0)->numActions();
    const nn::NetConfig net_cfg = nn::NetConfig::tiny(actions);
    const nn::A3cNetwork net(net_cfg);

    rl::A3cConfig cfg;
    cfg.numAgents = workers;
    cfg.totalSteps = steps;
    cfg.initialLr = 1e-3f;
    cfg.lrAnnealSteps = 0;
    cfg.seed = 7;
    cfg.checkpointPath = checkpoint_path;
    cfg.checkpointEverySteps = checkpoint_every;
    if (!checkpoint_path.empty())
        rl::installCheckpointSignalHandler();

    // Keep pointers to the datapath backends so we can read their
    // cycle counters after training; the CPU backends ("reference",
    // "fast") have no cycle model and go through the trainer's
    // built-in factory instead.
    std::vector<core::DatapathBackend *> backends;
    rl::A3cTrainer::BackendFactory backend_factory;
    if (backend_name == "datapath") {
        backend_factory =
            [&](int) -> std::unique_ptr<rl::DnnBackend> {
            auto backend = std::make_unique<core::DatapathBackend>(net);
            backends.push_back(backend.get());
            return backend;
        };
    } else {
        cfg.backend = rl::backendKindFromName(backend_name);
    }
    auto session_factory = [&](int agent_id) {
        env::SessionConfig session_cfg;
        session_cfg.frameStack = net_cfg.inChannels;
        session_cfg.obsHeight = net_cfg.inHeight;
        session_cfg.obsWidth = net_cfg.inWidth;
        return std::make_unique<env::AtariSession>(
            env::makeEnvironment(game,
                                 11 + static_cast<std::uint64_t>(
                                          agent_id)),
            session_cfg, 13 + static_cast<std::uint64_t>(agent_id));
    };

    std::printf("Training %s for %llu steps on the %s backend "
                "(%d agents, %d actions)...\n",
                game_name.c_str(),
                static_cast<unsigned long long>(steps),
                backend_name.c_str(), cfg.numAgents, actions);
    rl::A3cTrainer trainer(net, cfg, backend_factory, session_factory);
    if (resume && !checkpoint_path.empty() &&
        std::ifstream(checkpoint_path).good()) {
        if (!trainer.resumeFromFile()) {
            std::fprintf(stderr,
                         "cannot resume: %s is corrupt or mismatched\n",
                         checkpoint_path.c_str());
            return 1;
        }
        std::printf("Resumed from %s at step %llu.\n",
                    checkpoint_path.c_str(),
                    static_cast<unsigned long long>(
                        trainer.globalParams().globalSteps()));
    }
    trainer.run();

    const auto curve = trainer.scores().movingAverage(25, 15);
    std::printf("\n%-12s %s\n", "step", "avg score (last 25 episodes)");
    for (const auto &[step, score] : curve)
        std::printf("%-12llu %.2f\n",
                    static_cast<unsigned long long>(step), score);

    if (!backends.empty()) {
        std::uint64_t fw = 0, bw = 0, gc = 0;
        for (const auto *backend : backends) {
            fw += backend->cycleStats().counterValue("cycles.fw");
            bw += backend->cycleStats().counterValue("cycles.bw");
            gc += backend->cycleStats().counterValue("cycles.gc");
        }
        std::printf("\nDatapath cycle counters (all agents, 64-PE CU "
                    "model):\n");
        std::printf("  forward propagation : %llu cycles\n",
                    static_cast<unsigned long long>(fw));
        std::printf("  backward propagation: %llu cycles\n",
                    static_cast<unsigned long long>(bw));
        std::printf("  gradient computation: %llu cycles\n",
                    static_cast<unsigned long long>(gc));
        std::printf("  at 180 MHz that is %.2f s of CU time\n",
                    static_cast<double>(fw + bw + gc) / 180e6);
    }

    // A peek at what the network was looking at.
    auto viewer = env::makeEnvironment(game, 99);
    env::Frame frame;
    for (int i = 0; i < 120; ++i)
        (void)viewer->step(0);
    viewer->render(frame);
    std::printf("\nThe %s screen (ASCII view):\n%s", game_name.c_str(),
                env::toAscii(frame, 2).c_str());
    return 0;
}
