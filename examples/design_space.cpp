/**
 * @file
 * Design-space exploration the paper gestures at ("when FPGA resource
 * allows, increasing the number of CU-pairs also increases
 * parallelism"): sweep CU pairs and PEs per CU, check each candidate
 * against the VU9P resource budget, and simulate its throughput at 16
 * agents. Prints the feasible frontier.
 *
 *     ./design_space [agents]
 */

#include <cstdio>
#include <cstdlib>

#include "fa3c/resource_model.hh"
#include "harness/experiments.hh"
#include "sim/table.hh"

using namespace fa3c;
using namespace fa3c::harness;

int
main(int argc, char **argv)
{
    const int agents = argc > 1 ? std::atoi(argv[1]) : 16;
    const nn::NetConfig net = nn::NetConfig::atari(4);
    const core::DeviceCapacity device = core::DeviceCapacity::vu9p();

    std::printf("FA3C design space on the VU9P, %d agents:\n\n",
                agents);
    sim::TextTable table({"CU pairs", "PEs/CU", "Total PEs", "LUT %",
                          "DSP %", "Fits", "IPS", "IPS/PE"});
    double best_ips = 0;
    int best_pairs = 0, best_pes = 0;
    for (int pairs : {1, 2, 3, 4}) {
        for (int pes : {32, 64, 128}) {
            core::Fa3cConfig cfg = core::Fa3cConfig::vcu1525();
            cfg.cuPairs = pairs;
            cfg.pesPerCu = pes;
            const core::ResourceModel model(cfg);
            const auto total = model.total();
            const bool fits = model.fits(device);
            double ips = 0;
            if (fits) {
                ips = measurePlatform(PlatformId::Fa3c, agents, net, 5,
                                      2.0, &cfg)
                          .ips;
                if (ips > best_ips) {
                    best_ips = ips;
                    best_pairs = pairs;
                    best_pes = pes;
                }
            }
            table.addRow(
                {std::to_string(pairs), std::to_string(pes),
                 std::to_string(cfg.totalPes()),
                 sim::TextTable::num(
                     100.0 * total.logicLuts / device.logicLuts, 1),
                 sim::TextTable::num(
                     100.0 * total.dspBlocks / device.dspBlocks, 1),
                 fits ? "yes" : "no",
                 fits ? sim::TextTable::num(ips, 0) : std::string("-"),
                 fits ? sim::TextTable::num(ips / cfg.totalPes(), 1)
                      : std::string("-")});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Best feasible configuration at n=%d: %d CU pairs x "
                "%d PEs -> %.0f IPS.\n",
                agents, best_pairs, best_pes, best_ips);
    std::printf("The paper's build (2 pairs x 64 PEs) balances DSP "
                "use against the off-chip bandwidth the extra PEs "
                "would starve without.\n");
    return 0;
}
