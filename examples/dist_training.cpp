/**
 * @file
 * Elastic multi-process parameter-server training.
 *
 *     ./dist_training --role ps     [options]   # parameter server
 *     ./dist_training --role worker [options]   # one worker process
 *     ./dist_training --role launch [options]   # ps + forked workers
 *     ./dist_training --role stats  [options]   # query a running ps
 *
 * Options (role-relevant subset):
 *     --game <name>          beam_rider|breakout|pong|qbert|seaquest|
 *                            space_invaders (default pong)
 *     --host <addr>          PS address (worker/stats; default
 *                            127.0.0.1)
 *     --port <n>             PS port (ps: bind, 0 = ephemeral;
 *                            worker/stats: target)
 *     --port-file <path>     ps/launch: write the bound port here
 *     --steps <n>            total env steps (ps/launch; default 20000)
 *     --workers <n>          forked worker processes (launch; default 2)
 *     --agents <n>           A3C agents per worker (default 2)
 *     --backend <name>       worker DNN backend: reference|fast|int8|
 *                            fp16|datapath (default fast)
 *     --name <s>             worker name (default worker)
 *     --sync                 staleness bound 0 (serialized updates)
 *     --staleness <n>        explicit staleness bound (default
 *                            unbounded — classic async A3C)
 *     --lease-ttl-ms <n>     worker lease TTL (default 2000)
 *     --shards <n>           parameter shards on the PS (default 8)
 *     --checkpoint <path>    durable PS state (ps/launch)
 *     --checkpoint-every <n> PS checkpoint period in env steps
 *     --seed <n>             init / rollout seed (default 7)
 *     --lr <f>               learning rate on the PS (default 1e-3)
 *     --max-routines <n>     worker: stop after n routines (default 0
 *                            = until the PS says stop)
 *     --timeout-sec <n>      ps/launch: give up waiting after n sec
 *     --kill-first <hit>     launch: arm FA3C_FAULT_KILL_AGENT=<hit>
 *                            in the first worker; when it dies with
 *                            exit 42 a replacement is forked — the
 *                            elastic-rejoin demo the CI smoke greps
 *     --telemetry-base <p>   launch: serve /metrics on port p and
 *                            give worker i port p+1+i; the launcher
 *                            runs a TelemetryAggregator over the
 *                            workers, so its /metrics carries the
 *                            fleet-level fa3c_dist_* series
 *     --scrape <p1,p2,...>   stats: scrape those /metrics ports once
 *                            and print the fleet exposition
 *
 * Forked workers inherit FA3C_TRACE / FA3C_METRICS_JSON; the
 * launcher rewrites both to carry a %p pid token when they lack one,
 * so every process writes its own file instead of all children
 * clobbering the parent's (trace_merge then joins the trace files).
 *
 * The PS and every worker derive the network from --game, so the
 * layout CRC in the Hello only matches when both sides agree.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dist/ps_client.hh"
#include "dist/ps_server.hh"
#include "dist/worker_runner.hh"
#include "env/environment.hh"
#include "fa3c/datapath_backend.hh"
#include "nn/a3c_network.hh"
#include "obs/aggregator.hh"
#include "obs/telemetry.hh"
#include "rl/a3c.hh"
#include "sim/fault.hh"

using namespace fa3c;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --role ps|worker|launch|stats [options]\n"
                 "       (see the file comment for the option list)\n",
                 argv0);
    return 2;
}

struct Options
{
    std::string role;
    std::string game = "pong";
    std::string host = "127.0.0.1";
    int port = 0;
    std::string portFile;
    std::uint64_t steps = 20000;
    int workers = 2;
    int agents = 2;
    std::string backend = "fast";
    std::string name = "worker";
    std::uint64_t staleness =
        std::numeric_limits<std::uint64_t>::max();
    std::uint32_t leaseTtlMs = 2000;
    int shards = 8;
    std::string checkpoint;
    std::uint64_t checkpointEvery = 0;
    std::uint64_t seed = 7;
    float lr = 1e-3f;
    std::uint64_t maxRoutines = 0;
    long timeoutSec = 0;
    std::uint64_t killFirst = 0;
    int telemetryBase = 0;
    std::string scrapePorts;
};

/**
 * Ensure an inherited per-process export path carries a %p pid
 * token, so every forked worker writes its own file instead of the
 * whole fleet clobbering one path. Inserted before the extension:
 * "run/trace.json" becomes "run/trace.%p.json".
 */
void
ensurePidToken(const char *env_name)
{
    const char *raw = std::getenv(env_name);
    if (!raw || !*raw)
        return;
    std::string path = raw;
    if (path.find("%p") != std::string::npos)
        return;
    const auto slash = path.find_last_of('/');
    const auto dot = path.find_last_of('.');
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash))
        path.insert(dot, ".%p");
    else
        path += ".%p";
    ::setenv(env_name, path.c_str(), 1);
}

/** Shared network derivation: both sides must agree on the layout. */
nn::A3cNetwork
makeNetwork(env::GameId game)
{
    const int actions = env::makeEnvironment(game, 0)->numActions();
    return nn::A3cNetwork(nn::NetConfig::tiny(actions));
}

rl::A3cConfig
workerA3cConfig(const Options &opt)
{
    rl::A3cConfig cfg;
    cfg.numAgents = opt.agents;
    cfg.seed = opt.seed;
    cfg.initialLr = opt.lr; // informational; the PS applies updates
    cfg.lrAnnealSteps = 0;
    if (opt.backend != "datapath")
        cfg.backend = rl::backendKindFromName(opt.backend);
    return cfg;
}

int
runPs(const Options &opt, env::GameId game)
{
    const nn::A3cNetwork net = makeNetwork(game);
    dist::PsServerConfig cfg;
    cfg.port = opt.port;
    cfg.leaseTtlMs = opt.leaseTtlMs;
    cfg.maxStaleness = opt.staleness;
    cfg.totalSteps = opt.steps;
    cfg.checkpointPath = opt.checkpoint;
    cfg.checkpointEverySteps = opt.checkpointEvery;
    cfg.numShards = opt.shards;
    cfg.initialLr = opt.lr;
    cfg.seed = opt.seed;
    dist::PsServer ps(net, cfg);
    if (!ps.start())
        return 1;
    std::printf("dist: ps ready on port %d\n", ps.port());
    std::fflush(stdout);
    if (!opt.portFile.empty()) {
        if (std::FILE *f = std::fopen(opt.portFile.c_str(), "w")) {
            std::fprintf(f, "%d\n", ps.port());
            std::fclose(f);
        }
    }
    const bool done = ps.waitDone(
        opt.timeoutSec > 0 ? opt.timeoutSec * 1000 : -1);
    ps.stop();
    const auto stats = ps.stats();
    std::printf("dist: ps finished — version %llu, steps %llu, "
                "joined %llu, reaped %llu, pushes %llu (%llu "
                "rejected)\n",
                static_cast<unsigned long long>(stats.version),
                static_cast<unsigned long long>(stats.steps),
                static_cast<unsigned long long>(stats.joined),
                static_cast<unsigned long long>(stats.reaped),
                static_cast<unsigned long long>(stats.pushes),
                static_cast<unsigned long long>(stats.pushRejects));
    if (!done) {
        std::fprintf(stderr, "dist: ps timed out before totalSteps\n");
        return 3;
    }
    return 0;
}

int
runWorker(const Options &opt, env::GameId game)
{
    if (opt.port <= 0) {
        std::fprintf(stderr, "worker needs --port\n");
        return 2;
    }
    const nn::A3cNetwork net = makeNetwork(game);
    dist::WorkerConfig cfg;
    cfg.host = opt.host;
    cfg.port = opt.port;
    cfg.name = opt.name;
    cfg.game = opt.game;
    cfg.a3c = workerA3cConfig(opt);
    cfg.maxRoutines = opt.maxRoutines;
    rl::A3cTrainer::BackendFactory backend_factory;
    if (opt.backend == "datapath")
        backend_factory = [&net](int) -> std::unique_ptr<rl::DnnBackend> {
            return std::make_unique<core::DatapathBackend>(net);
        };
    dist::WorkerRunner worker(net, cfg, backend_factory);
    if (!worker.run())
        return 1;
    std::printf("dist: worker '%s' done after %llu routines, %zu "
                "episodes\n",
                opt.name.c_str(),
                static_cast<unsigned long long>(worker.routines()),
                worker.scores().records().size());
    return 0;
}

int
runStats(const Options &opt)
{
    if (!opt.scrapePorts.empty()) {
        // One-shot fleet scrape: hit each /metrics port, print the
        // aggregated exposition (what a Prometheus scrape of the
        // launcher would see, but usable ad hoc from the CLI).
        obs::AggregatorConfig acfg;
        std::istringstream ports(opt.scrapePorts);
        std::string token;
        int index = 0;
        while (std::getline(ports, token, ',')) {
            if (token.empty())
                continue;
            acfg.targets.push_back(obs::ScrapeTarget{
                "p" + std::to_string(index++), opt.host,
                std::atoi(token.c_str())});
        }
        if (acfg.targets.empty()) {
            std::fprintf(stderr, "stats: --scrape needs ports\n");
            return 2;
        }
        obs::TelemetryAggregator agg(acfg);
        const int reached = agg.scrapeOnce();
        std::fputs(agg.renderText().c_str(), stdout);
        std::fprintf(stderr, "stats: scraped %d/%zu endpoints\n",
                     reached, acfg.targets.size());
        return reached > 0 ? 0 : 1;
    }
    if (opt.port <= 0) {
        std::fprintf(stderr, "stats needs --port\n");
        return 2;
    }
    dist::PsClient client;
    dist::wire::StatsReply s;
    if (!client.connect(opt.host, opt.port) || !client.stats(s)) {
        std::fprintf(stderr, "stats: cannot reach %s:%d\n",
                     opt.host.c_str(), opt.port);
        return 1;
    }
    std::printf("version=%llu steps=%llu/%llu active=%u joined=%llu "
                "reaped=%llu pushes=%llu rejects=%llu\n",
                static_cast<unsigned long long>(s.version),
                static_cast<unsigned long long>(s.steps),
                static_cast<unsigned long long>(s.totalSteps),
                s.activeLeases,
                static_cast<unsigned long long>(s.joined),
                static_cast<unsigned long long>(s.reaped),
                static_cast<unsigned long long>(s.pushes),
                static_cast<unsigned long long>(s.pushRejects));
    return 0;
}

/** Fork + exec one worker child against the in-process PS. */
pid_t
spawnWorker(const char *argv0, const Options &opt, int ps_port,
            int index, std::uint64_t kill_at, int telemetry_port)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    if (kill_at > 0) {
        const std::string v = std::to_string(kill_at);
        ::setenv("FA3C_FAULT_KILL_AGENT", v.c_str(), 1);
    }
    // Per-process export paths: without a pid token every child
    // would truncate the same trace/metrics file.
    ensurePidToken("FA3C_TRACE");
    ensurePidToken("FA3C_METRICS_JSON");
    if (telemetry_port > 0) {
        const std::string v = std::to_string(telemetry_port);
        ::setenv("FA3C_TELEMETRY_PORT", v.c_str(), 1);
    } else {
        // An inherited fixed port would make every child race for
        // the same bind; drop it rather than fight.
        ::unsetenv("FA3C_TELEMETRY_PORT");
    }
    std::string wname = "w";
    wname += std::to_string(index);
    std::vector<std::string> args = {
        argv0,           "--role",        "worker",
        "--host",        "127.0.0.1",     "--port",
        std::to_string(ps_port),          "--game",
        opt.game,        "--agents",      std::to_string(opt.agents),
        "--backend",     opt.backend,     "--name",
        wname,           "--seed",
        std::to_string(opt.seed + 100u * static_cast<unsigned>(index)),
    };
    std::vector<char *> argvc;
    argvc.reserve(args.size() + 1);
    for (auto &a : args)
        argvc.push_back(a.data());
    argvc.push_back(nullptr);
    ::execv(argv0, argvc.data());
    std::perror("execv");
    ::_Exit(127);
}

int
runLaunch(const char *argv0, const Options &opt, env::GameId game)
{
    // The PS latches the process-global telemetry endpoint when it
    // starts, so the launcher's port must be in the environment
    // before then — not when the aggregator is built below.
    if (opt.telemetryBase > 0) {
        const std::string v = std::to_string(opt.telemetryBase);
        ::setenv("FA3C_TELEMETRY_PORT", v.c_str(), 1);
    }
    const nn::A3cNetwork net = makeNetwork(game);
    dist::PsServerConfig cfg;
    cfg.port = opt.port;
    cfg.leaseTtlMs = opt.leaseTtlMs;
    cfg.maxStaleness = opt.staleness;
    cfg.totalSteps = opt.steps;
    cfg.checkpointPath = opt.checkpoint;
    cfg.checkpointEverySteps = opt.checkpointEvery;
    cfg.numShards = opt.shards;
    cfg.initialLr = opt.lr;
    cfg.seed = opt.seed;
    dist::PsServer ps(net, cfg);
    if (!ps.start())
        return 1;
    std::printf("dist: ps ready on port %d\n", ps.port());
    std::fflush(stdout);
    if (!opt.portFile.empty()) {
        if (std::FILE *f = std::fopen(opt.portFile.c_str(), "w")) {
            std::fprintf(f, "%d\n", ps.port());
            std::fclose(f);
        }
    }

    // With --telemetry-base the launcher serves its own /metrics
    // (PS-side dist_* families) and aggregates the workers' — one
    // curl against the base port sees the whole fleet.
    const auto workerTelemetryPort = [&opt](int index) {
        return opt.telemetryBase > 0 ? opt.telemetryBase + 1 + index
                                     : 0;
    };
    std::unique_ptr<obs::TelemetryAggregator> aggregator;
    if (opt.telemetryBase > 0) {
        obs::AggregatorConfig acfg;
        // Short smoke runs finish in a couple of seconds; scrape
        // fast enough that even those get a live fleet view.
        acfg.scrapeIntervalMs = 250;
        for (int i = 0; i < opt.workers; ++i)
            acfg.targets.push_back(
                obs::ScrapeTarget{"w" + std::to_string(i),
                                  "127.0.0.1",
                                  workerTelemetryPort(i)});
        aggregator =
            std::make_unique<obs::TelemetryAggregator>(acfg);
        aggregator->attach(obs::telemetry());
        aggregator->start();
    }

    std::vector<pid_t> children;
    int next_index = 0;
    for (int i = 0; i < opt.workers; ++i, ++next_index)
        children.push_back(spawnWorker(
            argv0, opt, ps.port(), next_index,
            i == 0 ? opt.killFirst : 0,
            workerTelemetryPort(next_index)));

    // Supervise: while training runs, reap crashed workers (simulated
    // by FA3C_FAULT_KILL_AGENT — exit 42) and fork replacements; the
    // PS reaps their leases and the replacements resume from the
    // current version. This is the elastic path end to end.
    long waited_ms = 0;
    const long timeout_ms =
        opt.timeoutSec > 0 ? opt.timeoutSec * 1000 : -1;
    bool timed_out = false;
    while (!ps.done()) {
        if (ps.waitDone(100))
            break;
        waited_ms += 100;
        if (timeout_ms > 0 && waited_ms >= timeout_ms) {
            timed_out = true;
            break;
        }
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, WNOHANG);
        if (pid > 0) {
            for (auto &c : children)
                if (c == pid)
                    c = -1;
            if (WIFEXITED(status) &&
                WEXITSTATUS(status) == fault::kKillExitCode) {
                std::printf("dist: worker %d crashed (exit %d); "
                            "forking replacement\n",
                            static_cast<int>(pid),
                            fault::kKillExitCode);
                std::fflush(stdout);
                if (aggregator)
                    aggregator->addTarget(obs::ScrapeTarget{
                        "w" + std::to_string(next_index),
                        "127.0.0.1",
                        workerTelemetryPort(next_index)});
                children.push_back(spawnWorker(
                    argv0, opt, ps.port(), next_index, 0,
                    workerTelemetryPort(next_index)));
                ++next_index;
            }
        }
    }

    // Workers see stop=1 on their next ack and exit on their own.
    // Grab one last scrape while they are still up so even a run
    // shorter than the scrape interval ends with a fleet snapshot.
    if (aggregator)
        (void)aggregator->scrapeOnce();
    for (pid_t pid : children) {
        if (pid < 0)
            continue;
        int status = 0;
        (void)::waitpid(pid, &status, 0);
    }
    if (aggregator) {
        aggregator->stop();
        std::printf("dist: aggregator reached %d/%zu worker "
                    "endpoints over %llu scrapes\n",
                    aggregator->reachableTargets(),
                    static_cast<std::size_t>(opt.workers),
                    static_cast<unsigned long long>(
                        aggregator->scrapes()));
    }
    ps.stop();
    const auto stats = ps.stats();
    std::printf("dist: launch finished — version %llu, steps %llu, "
                "joined %llu, reaped %llu, pushes %llu (%llu "
                "rejected)\n",
                static_cast<unsigned long long>(stats.version),
                static_cast<unsigned long long>(stats.steps),
                static_cast<unsigned long long>(stats.joined),
                static_cast<unsigned long long>(stats.reaped),
                static_cast<unsigned long long>(stats.pushes),
                static_cast<unsigned long long>(stats.pushRejects));
    if (timed_out) {
        std::fprintf(stderr,
                     "dist: launch timed out before totalSteps\n");
        return 3;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--role" && has_value) {
            opt.role = argv[++i];
        } else if (arg == "--game" && has_value) {
            opt.game = argv[++i];
        } else if (arg == "--host" && has_value) {
            opt.host = argv[++i];
        } else if (arg == "--port" && has_value) {
            opt.port = std::atoi(argv[++i]);
        } else if (arg == "--port-file" && has_value) {
            opt.portFile = argv[++i];
        } else if (arg == "--steps" && has_value) {
            opt.steps = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--workers" && has_value) {
            opt.workers = std::atoi(argv[++i]);
        } else if (arg == "--agents" && has_value) {
            opt.agents = std::atoi(argv[++i]);
        } else if (arg == "--backend" && has_value) {
            opt.backend = argv[++i];
            if (opt.backend != "datapath" &&
                !rl::tryBackendKindFromName(opt.backend)) {
                std::fprintf(stderr,
                             "unknown backend: %s (want datapath|"
                             "reference|fast|int8|fp16)\n",
                             opt.backend.c_str());
                return 2;
            }
        } else if (arg == "--name" && has_value) {
            opt.name = argv[++i];
        } else if (arg == "--sync") {
            opt.staleness = 0;
        } else if (arg == "--staleness" && has_value) {
            opt.staleness = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--lease-ttl-ms" && has_value) {
            opt.leaseTtlMs = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--shards" && has_value) {
            opt.shards = std::atoi(argv[++i]);
        } else if (arg == "--checkpoint" && has_value) {
            opt.checkpoint = argv[++i];
        } else if (arg == "--checkpoint-every" && has_value) {
            opt.checkpointEvery =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--seed" && has_value) {
            opt.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--lr" && has_value) {
            opt.lr = std::strtof(argv[++i], nullptr);
        } else if (arg == "--max-routines" && has_value) {
            opt.maxRoutines = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--timeout-sec" && has_value) {
            opt.timeoutSec = std::atol(argv[++i]);
        } else if (arg == "--kill-first" && has_value) {
            opt.killFirst = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--telemetry-base" && has_value) {
            opt.telemetryBase = std::atoi(argv[++i]);
        } else if (arg == "--scrape" && has_value) {
            opt.scrapePorts = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            return usage(argv[0]);
        }
    }

    if (opt.role != "ps" && opt.role != "worker" &&
        opt.role != "launch" && opt.role != "stats") {
        std::fprintf(stderr, "unknown role: '%s'\n",
                     opt.role.c_str());
        return usage(argv[0]);
    }
    const auto maybe_game = env::tryGameFromName(opt.game);
    if (!maybe_game) {
        std::fprintf(stderr, "unknown game: %s (valid: %s)\n",
                     opt.game.c_str(), env::gameNameList().c_str());
        return 2;
    }
    const env::GameId game = *maybe_game;

    if (opt.role == "ps")
        return runPs(opt, game);
    if (opt.role == "worker")
        return runWorker(opt, game);
    if (opt.role == "stats")
        return runStats(opt);
    return runLaunch(argv[0], opt, game);
}
