/**
 * @file
 * Elastic multi-process parameter-server training.
 *
 *     ./dist_training --role ps     [options]   # parameter server
 *     ./dist_training --role worker [options]   # one worker process
 *     ./dist_training --role launch [options]   # ps + forked workers
 *     ./dist_training --role stats  [options]   # query a running ps
 *
 * Options (role-relevant subset):
 *     --game <name>          beam_rider|breakout|pong|qbert|seaquest|
 *                            space_invaders (default pong)
 *     --host <addr>          PS address (worker/stats; default
 *                            127.0.0.1)
 *     --port <n>             PS port (ps: bind, 0 = ephemeral;
 *                            worker/stats: target)
 *     --port-file <path>     ps/launch: write the bound port here
 *     --steps <n>            total env steps (ps/launch; default 20000)
 *     --workers <n>          forked worker processes (launch; default 2)
 *     --agents <n>           A3C agents per worker (default 2)
 *     --backend <name>       worker DNN backend: reference|fast|int8|
 *                            fp16|datapath (default fast)
 *     --name <s>             worker name (default worker)
 *     --sync                 staleness bound 0 (serialized updates)
 *     --staleness <n>        explicit staleness bound (default
 *                            unbounded — classic async A3C)
 *     --lease-ttl-ms <n>     worker lease TTL (default 2000)
 *     --shards <n>           parameter shards on the PS (default 8)
 *     --checkpoint <path>    durable PS state (ps/launch)
 *     --checkpoint-every <n> PS checkpoint period in env steps
 *     --seed <n>             init / rollout seed (default 7)
 *     --lr <f>               learning rate on the PS (default 1e-3)
 *     --max-routines <n>     worker: stop after n routines (default 0
 *                            = until the PS says stop)
 *     --timeout-sec <n>      ps/launch: give up waiting after n sec
 *     --kill-first <hit>     launch: arm FA3C_FAULT_KILL_AGENT=<hit>
 *                            in the first worker; when it dies with
 *                            exit 42 a replacement is forked — the
 *                            elastic-rejoin demo the CI smoke greps
 *
 * The PS and every worker derive the network from --game, so the
 * layout CRC in the Hello only matches when both sides agree.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "dist/ps_client.hh"
#include "dist/ps_server.hh"
#include "dist/worker_runner.hh"
#include "env/environment.hh"
#include "fa3c/datapath_backend.hh"
#include "nn/a3c_network.hh"
#include "rl/a3c.hh"
#include "sim/fault.hh"

using namespace fa3c;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --role ps|worker|launch|stats [options]\n"
                 "       (see the file comment for the option list)\n",
                 argv0);
    return 2;
}

struct Options
{
    std::string role;
    std::string game = "pong";
    std::string host = "127.0.0.1";
    int port = 0;
    std::string portFile;
    std::uint64_t steps = 20000;
    int workers = 2;
    int agents = 2;
    std::string backend = "fast";
    std::string name = "worker";
    std::uint64_t staleness =
        std::numeric_limits<std::uint64_t>::max();
    std::uint32_t leaseTtlMs = 2000;
    int shards = 8;
    std::string checkpoint;
    std::uint64_t checkpointEvery = 0;
    std::uint64_t seed = 7;
    float lr = 1e-3f;
    std::uint64_t maxRoutines = 0;
    long timeoutSec = 0;
    std::uint64_t killFirst = 0;
};

/** Shared network derivation: both sides must agree on the layout. */
nn::A3cNetwork
makeNetwork(env::GameId game)
{
    const int actions = env::makeEnvironment(game, 0)->numActions();
    return nn::A3cNetwork(nn::NetConfig::tiny(actions));
}

rl::A3cConfig
workerA3cConfig(const Options &opt)
{
    rl::A3cConfig cfg;
    cfg.numAgents = opt.agents;
    cfg.seed = opt.seed;
    cfg.initialLr = opt.lr; // informational; the PS applies updates
    cfg.lrAnnealSteps = 0;
    if (opt.backend != "datapath")
        cfg.backend = rl::backendKindFromName(opt.backend);
    return cfg;
}

int
runPs(const Options &opt, env::GameId game)
{
    const nn::A3cNetwork net = makeNetwork(game);
    dist::PsServerConfig cfg;
    cfg.port = opt.port;
    cfg.leaseTtlMs = opt.leaseTtlMs;
    cfg.maxStaleness = opt.staleness;
    cfg.totalSteps = opt.steps;
    cfg.checkpointPath = opt.checkpoint;
    cfg.checkpointEverySteps = opt.checkpointEvery;
    cfg.numShards = opt.shards;
    cfg.initialLr = opt.lr;
    cfg.seed = opt.seed;
    dist::PsServer ps(net, cfg);
    if (!ps.start())
        return 1;
    std::printf("dist: ps ready on port %d\n", ps.port());
    std::fflush(stdout);
    if (!opt.portFile.empty()) {
        if (std::FILE *f = std::fopen(opt.portFile.c_str(), "w")) {
            std::fprintf(f, "%d\n", ps.port());
            std::fclose(f);
        }
    }
    const bool done = ps.waitDone(
        opt.timeoutSec > 0 ? opt.timeoutSec * 1000 : -1);
    ps.stop();
    const auto stats = ps.stats();
    std::printf("dist: ps finished — version %llu, steps %llu, "
                "joined %llu, reaped %llu, pushes %llu (%llu "
                "rejected)\n",
                static_cast<unsigned long long>(stats.version),
                static_cast<unsigned long long>(stats.steps),
                static_cast<unsigned long long>(stats.joined),
                static_cast<unsigned long long>(stats.reaped),
                static_cast<unsigned long long>(stats.pushes),
                static_cast<unsigned long long>(stats.pushRejects));
    if (!done) {
        std::fprintf(stderr, "dist: ps timed out before totalSteps\n");
        return 3;
    }
    return 0;
}

int
runWorker(const Options &opt, env::GameId game)
{
    if (opt.port <= 0) {
        std::fprintf(stderr, "worker needs --port\n");
        return 2;
    }
    const nn::A3cNetwork net = makeNetwork(game);
    dist::WorkerConfig cfg;
    cfg.host = opt.host;
    cfg.port = opt.port;
    cfg.name = opt.name;
    cfg.game = opt.game;
    cfg.a3c = workerA3cConfig(opt);
    cfg.maxRoutines = opt.maxRoutines;
    rl::A3cTrainer::BackendFactory backend_factory;
    if (opt.backend == "datapath")
        backend_factory = [&net](int) -> std::unique_ptr<rl::DnnBackend> {
            return std::make_unique<core::DatapathBackend>(net);
        };
    dist::WorkerRunner worker(net, cfg, backend_factory);
    if (!worker.run())
        return 1;
    std::printf("dist: worker '%s' done after %llu routines, %zu "
                "episodes\n",
                opt.name.c_str(),
                static_cast<unsigned long long>(worker.routines()),
                worker.scores().records().size());
    return 0;
}

int
runStats(const Options &opt)
{
    if (opt.port <= 0) {
        std::fprintf(stderr, "stats needs --port\n");
        return 2;
    }
    dist::PsClient client;
    dist::wire::StatsReply s;
    if (!client.connect(opt.host, opt.port) || !client.stats(s)) {
        std::fprintf(stderr, "stats: cannot reach %s:%d\n",
                     opt.host.c_str(), opt.port);
        return 1;
    }
    std::printf("version=%llu steps=%llu/%llu active=%u joined=%llu "
                "reaped=%llu pushes=%llu rejects=%llu\n",
                static_cast<unsigned long long>(s.version),
                static_cast<unsigned long long>(s.steps),
                static_cast<unsigned long long>(s.totalSteps),
                s.activeLeases,
                static_cast<unsigned long long>(s.joined),
                static_cast<unsigned long long>(s.reaped),
                static_cast<unsigned long long>(s.pushes),
                static_cast<unsigned long long>(s.pushRejects));
    return 0;
}

/** Fork + exec one worker child against the in-process PS. */
pid_t
spawnWorker(const char *argv0, const Options &opt, int ps_port,
            int index, std::uint64_t kill_at)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    if (kill_at > 0) {
        const std::string v = std::to_string(kill_at);
        ::setenv("FA3C_FAULT_KILL_AGENT", v.c_str(), 1);
    }
    std::string wname = "w";
    wname += std::to_string(index);
    std::vector<std::string> args = {
        argv0,           "--role",        "worker",
        "--host",        "127.0.0.1",     "--port",
        std::to_string(ps_port),          "--game",
        opt.game,        "--agents",      std::to_string(opt.agents),
        "--backend",     opt.backend,     "--name",
        wname,           "--seed",
        std::to_string(opt.seed + 100u * static_cast<unsigned>(index)),
    };
    std::vector<char *> argvc;
    argvc.reserve(args.size() + 1);
    for (auto &a : args)
        argvc.push_back(a.data());
    argvc.push_back(nullptr);
    ::execv(argv0, argvc.data());
    std::perror("execv");
    ::_Exit(127);
}

int
runLaunch(const char *argv0, const Options &opt, env::GameId game)
{
    const nn::A3cNetwork net = makeNetwork(game);
    dist::PsServerConfig cfg;
    cfg.port = opt.port;
    cfg.leaseTtlMs = opt.leaseTtlMs;
    cfg.maxStaleness = opt.staleness;
    cfg.totalSteps = opt.steps;
    cfg.checkpointPath = opt.checkpoint;
    cfg.checkpointEverySteps = opt.checkpointEvery;
    cfg.numShards = opt.shards;
    cfg.initialLr = opt.lr;
    cfg.seed = opt.seed;
    dist::PsServer ps(net, cfg);
    if (!ps.start())
        return 1;
    std::printf("dist: ps ready on port %d\n", ps.port());
    std::fflush(stdout);
    if (!opt.portFile.empty()) {
        if (std::FILE *f = std::fopen(opt.portFile.c_str(), "w")) {
            std::fprintf(f, "%d\n", ps.port());
            std::fclose(f);
        }
    }

    std::vector<pid_t> children;
    int next_index = 0;
    for (int i = 0; i < opt.workers; ++i, ++next_index)
        children.push_back(spawnWorker(argv0, opt, ps.port(),
                                       next_index,
                                       i == 0 ? opt.killFirst : 0));

    // Supervise: while training runs, reap crashed workers (simulated
    // by FA3C_FAULT_KILL_AGENT — exit 42) and fork replacements; the
    // PS reaps their leases and the replacements resume from the
    // current version. This is the elastic path end to end.
    long waited_ms = 0;
    const long timeout_ms =
        opt.timeoutSec > 0 ? opt.timeoutSec * 1000 : -1;
    bool timed_out = false;
    while (!ps.done()) {
        if (ps.waitDone(100))
            break;
        waited_ms += 100;
        if (timeout_ms > 0 && waited_ms >= timeout_ms) {
            timed_out = true;
            break;
        }
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, WNOHANG);
        if (pid > 0) {
            for (auto &c : children)
                if (c == pid)
                    c = -1;
            if (WIFEXITED(status) &&
                WEXITSTATUS(status) == fault::kKillExitCode) {
                std::printf("dist: worker %d crashed (exit %d); "
                            "forking replacement\n",
                            static_cast<int>(pid),
                            fault::kKillExitCode);
                std::fflush(stdout);
                children.push_back(spawnWorker(
                    argv0, opt, ps.port(), next_index++, 0));
            }
        }
    }

    // Workers see stop=1 on their next ack and exit on their own.
    for (pid_t pid : children) {
        if (pid < 0)
            continue;
        int status = 0;
        (void)::waitpid(pid, &status, 0);
    }
    ps.stop();
    const auto stats = ps.stats();
    std::printf("dist: launch finished — version %llu, steps %llu, "
                "joined %llu, reaped %llu, pushes %llu (%llu "
                "rejected)\n",
                static_cast<unsigned long long>(stats.version),
                static_cast<unsigned long long>(stats.steps),
                static_cast<unsigned long long>(stats.joined),
                static_cast<unsigned long long>(stats.reaped),
                static_cast<unsigned long long>(stats.pushes),
                static_cast<unsigned long long>(stats.pushRejects));
    if (timed_out) {
        std::fprintf(stderr,
                     "dist: launch timed out before totalSteps\n");
        return 3;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--role" && has_value) {
            opt.role = argv[++i];
        } else if (arg == "--game" && has_value) {
            opt.game = argv[++i];
        } else if (arg == "--host" && has_value) {
            opt.host = argv[++i];
        } else if (arg == "--port" && has_value) {
            opt.port = std::atoi(argv[++i]);
        } else if (arg == "--port-file" && has_value) {
            opt.portFile = argv[++i];
        } else if (arg == "--steps" && has_value) {
            opt.steps = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--workers" && has_value) {
            opt.workers = std::atoi(argv[++i]);
        } else if (arg == "--agents" && has_value) {
            opt.agents = std::atoi(argv[++i]);
        } else if (arg == "--backend" && has_value) {
            opt.backend = argv[++i];
            if (opt.backend != "datapath" &&
                !rl::tryBackendKindFromName(opt.backend)) {
                std::fprintf(stderr,
                             "unknown backend: %s (want datapath|"
                             "reference|fast|int8|fp16)\n",
                             opt.backend.c_str());
                return 2;
            }
        } else if (arg == "--name" && has_value) {
            opt.name = argv[++i];
        } else if (arg == "--sync") {
            opt.staleness = 0;
        } else if (arg == "--staleness" && has_value) {
            opt.staleness = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--lease-ttl-ms" && has_value) {
            opt.leaseTtlMs = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--shards" && has_value) {
            opt.shards = std::atoi(argv[++i]);
        } else if (arg == "--checkpoint" && has_value) {
            opt.checkpoint = argv[++i];
        } else if (arg == "--checkpoint-every" && has_value) {
            opt.checkpointEvery =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--seed" && has_value) {
            opt.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--lr" && has_value) {
            opt.lr = std::strtof(argv[++i], nullptr);
        } else if (arg == "--max-routines" && has_value) {
            opt.maxRoutines = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--timeout-sec" && has_value) {
            opt.timeoutSec = std::atol(argv[++i]);
        } else if (arg == "--kill-first" && has_value) {
            opt.killFirst = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            return usage(argv[0]);
        }
    }

    if (opt.role != "ps" && opt.role != "worker" &&
        opt.role != "launch" && opt.role != "stats") {
        std::fprintf(stderr, "unknown role: '%s'\n",
                     opt.role.c_str());
        return usage(argv[0]);
    }
    const auto maybe_game = env::tryGameFromName(opt.game);
    if (!maybe_game) {
        std::fprintf(stderr, "unknown game: %s (valid: %s)\n",
                     opt.game.c_str(), env::gameNameList().c_str());
        return 2;
    }
    const env::GameId game = *maybe_game;

    if (opt.role == "ps")
        return runPs(opt, game);
    if (opt.role == "worker")
        return runWorker(opt, game);
    if (opt.role == "stats")
        return runStats(opt);
    return runLaunch(argv[0], opt, game);
}
