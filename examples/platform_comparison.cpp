/**
 * @file
 * Compare the simulated Deep-RL platforms — FA3C and the four GPU/CPU
 * baselines — at a chosen agent count: throughput, device
 * utilization, incremental power, and energy efficiency.
 *
 *     ./platform_comparison [agents]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiments.hh"
#include "power/power_model.hh"
#include "sim/table.hh"

using namespace fa3c;
using namespace fa3c::harness;

namespace {

power::PlatformPower
powerFor(PlatformId id)
{
    switch (id) {
      case PlatformId::Fa3c: return power::PlatformPower::fa3c();
      case PlatformId::A3cCudnn:
        return power::PlatformPower::a3cCudnn();
      case PlatformId::A3cTfGpu:
        return power::PlatformPower::a3cTfGpu();
      case PlatformId::Ga3cTf: return power::PlatformPower::ga3cTf();
      case PlatformId::A3cTfCpu:
        return power::PlatformPower::a3cTfCpu();
    }
    return power::PlatformPower::fa3c();
}

} // namespace

int
main(int argc, char **argv)
{
    const int agents = argc > 1 ? std::atoi(argv[1]) : 16;
    const nn::NetConfig net = nn::NetConfig::atari(4);

    std::printf("Simulating the A3C routine (t_max = 5) with %d "
                "agents on every platform...\n\n",
                agents);
    sim::TextTable table({"Platform", "IPS", "Routines/s",
                          "Device util", "Watts", "IPS/Watt"});
    for (PlatformId id : allPlatforms) {
        const PlatformPoint p = measurePlatform(id, agents, net, 5,
                                                3.0);
        const double watts = powerFor(id).watts(p.utilization);
        table.addRow({platformIdName(id),
                      sim::TextTable::num(p.ips, 0),
                      sim::TextTable::num(p.routinesPerSec, 1),
                      sim::TextTable::num(p.utilization, 2),
                      sim::TextTable::num(watts, 1),
                      sim::TextTable::num(
                          power::inferencesPerWatt(p.ips, watts), 1)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("IPS counts the regular inference steps; each batch "
                "of 5 also triggers a bootstrap inference and a "
                "training task (Section 5.2 of the paper).\n");
    return 0;
}
