/**
 * @file
 * Inspect the FA3C platform's task timeline: run a few simulated
 * agents, record which CU executed what and when, and print a gantt
 * view plus per-CU statistics. Shows the dual-CU pipeline at work —
 * inference CUs interleaving short FW tasks while the training CUs
 * chew through multi-millisecond training tasks.
 *
 *     ./platform_trace [agents] [milliseconds]
 */

#include <cstdio>
#include <cstdlib>
#include <map>

#include "fa3c/accelerator.hh"
#include "harness/agent_driver.hh"
#include "sim/table.hh"

using namespace fa3c;

int
main(int argc, char **argv)
{
    const int agents = argc > 1 ? std::atoi(argv[1]) : 4;
    const double millis = argc > 2 ? std::atof(argv[2]) : 30.0;

    sim::EventQueue queue;
    core::Fa3cPlatform board(queue, core::Fa3cConfig::vcu1525(),
                             nn::NetConfig::atari(4), 5);
    board.enableTrace(4096);

    harness::PlatformOps ops;
    ops.submitInference = [&board](std::function<void()> done) {
        board.submitInference(std::move(done));
    };
    ops.submitTraining = [&board](std::function<void()> done) {
        board.submitTraining(std::move(done));
    };
    ops.submitParamSync = [&board](std::function<void()> done) {
        board.submitParamSync(std::move(done));
    };
    ops.hostToDevice = [&board](double bytes,
                                std::function<void()> done) {
        board.hostToDevice(bytes, std::move(done));
    };
    ops.deviceToHost = [&board](double bytes,
                                std::function<void()> done) {
        board.deviceToHost(bytes, std::move(done));
    };

    harness::HostModel host;
    const auto result = harness::measureIps(queue, ops, host, agents, 5,
                                            millis / 1000.0, 0.0);

    std::printf("Simulated %.1f ms with %d agents: %.0f IPS, "
                "inference CUs %.0f%% busy, training CUs %.0f%% "
                "busy.\n\n",
                millis, agents, result.ips,
                100.0 * board.inferenceCuUtilization(),
                100.0 * board.trainingCuUtilization());

    // Timeline of the first handful of tasks per CU.
    std::printf("First tasks per CU (start -> end, in us):\n");
    std::map<int, int> shown;
    for (const auto &entry : board.trace()) {
        if (shown[entry.cuId]++ >= 8)
            continue;
        std::printf("  CU%-2d %-10s %9.1f -> %9.1f  (%6.1f us)\n",
                    entry.cuId, entry.kind,
                    static_cast<double>(entry.start) / 1e6,
                    static_cast<double>(entry.end) / 1e6,
                    static_cast<double>(entry.end - entry.start) /
                        1e6);
    }

    // Per-kind service-time summary.
    std::map<std::string, sim::Distribution> stats;
    for (const auto &entry : board.trace())
        stats[entry.kind].sample(
            static_cast<double>(entry.end - entry.start) / 1e6);
    std::printf("\nTask service times over the whole run:\n");
    sim::TextTable table(
        {"Task", "Count", "Mean (us)", "Min (us)", "Max (us)"});
    for (const auto &[kind, dist] : stats) {
        table.addRow({kind, std::to_string(dist.count()),
                      sim::TextTable::num(dist.mean(), 1),
                      sim::TextTable::num(dist.min(), 1),
                      sim::TextTable::num(dist.max(), 1)});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
