/**
 * @file
 * Quickstart: train A3C on the synthetic Pong environment with the
 * reference DNN backend and watch the score improve.
 *
 *     ./quickstart [steps]
 *
 * This is the smallest end-to-end use of the library: build a
 * network, wire up environments and backends, run the trainer, and
 * read the score log.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "env/environment.hh"
#include "env/session.hh"
#include "nn/a3c_network.hh"
#include "rl/a3c.hh"
#include "rl/evaluate.hh"

using namespace fa3c;

int
main(int argc, char **argv)
{
    const std::uint64_t steps =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30000;

    // 1. The network: the paper's Table 1 topology, scaled down to a
    //    4x21x21 input so the example runs in seconds.
    const nn::NetConfig net_cfg = nn::NetConfig::tiny(3); // 3 actions
    const nn::A3cNetwork net(net_cfg);
    std::printf("Network: %zu parameters\n", net.paramCount());

    // 2. Hyper-parameters (defaults follow the paper).
    rl::A3cConfig cfg;
    cfg.numAgents = 4;
    cfg.totalSteps = steps;
    cfg.initialLr = 1e-3f;
    cfg.lrAnnealSteps = 0;
    cfg.seed = 42;

    // 3. Per-agent backends (the DNN executor) and environments.
    auto backend_factory = [&net](int) {
        return std::make_unique<rl::ReferenceBackend>(net);
    };
    auto session_factory = [&net_cfg](int agent_id) {
        env::SessionConfig session_cfg;
        session_cfg.frameStack = net_cfg.inChannels;
        session_cfg.obsHeight = net_cfg.inHeight;
        session_cfg.obsWidth = net_cfg.inWidth;
        return std::make_unique<env::AtariSession>(
            env::makeEnvironment(env::GameId::Pong,
                                 100 + static_cast<std::uint64_t>(
                                           agent_id)),
            session_cfg, 200 + static_cast<std::uint64_t>(agent_id));
    };

    // 4. Train.
    rl::A3cTrainer trainer(net, cfg, backend_factory, session_factory);
    std::printf("Training Pong for %llu steps with %d agents...\n",
                static_cast<unsigned long long>(steps), cfg.numAgents);
    trainer.run();

    // 5. Read the results.
    const auto curve = trainer.scores().movingAverage(30, 20);
    std::printf("\n%-12s %s\n", "step", "avg score (last 30 episodes)");
    for (const auto &[step, score] : curve)
        std::printf("%-12llu %+.2f\n",
                    static_cast<unsigned long long>(step), score);
    std::printf("\nEpisodes played: %zu, final average score: %+.2f\n",
                trainer.scores().size(),
                trainer.scores().recentMean(30));
    std::printf("(Pong scores run -5..+5; random play averages about "
                "-4.)\n");

    // 6. Evaluate the trained policy greedily, without learning.
    rl::ReferenceBackend eval_backend(net);
    auto eval_session = session_factory(999);
    nn::ParamSet trained = net.makeParams();
    trained.copyFrom(trainer.globalParams().theta());
    rl::EvalConfig eval_cfg;
    eval_cfg.episodes = 5;
    eval_cfg.greedy = true;
    const rl::EvalResult eval = rl::evaluatePolicy(
        eval_backend, trained, *eval_session, eval_cfg);
    std::printf("Greedy evaluation over %llu episodes: mean %+.2f "
                "(min %+.1f, max %+.1f)\n",
                static_cast<unsigned long long>(eval.scores.count()),
                eval.scores.mean(), eval.scores.min(),
                eval.scores.max());
    return 0;
}
