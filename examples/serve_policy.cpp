/**
 * @file
 * Serve a policy for one game over TCP: a fleet of PolicyServer
 * replicas with dynamic batching behind the replica router
 * (serve/router.hh), fronted by either the epoll event loop
 * (serve/event_loop.hh) or the thread-per-connection listener
 * (serve/tcp.hh). The wire protocol is the same either way.
 *
 *     ./serve_policy [game] [options]
 *
 * Games: beam_rider breakout pong qbert seaquest space_invaders.
 *
 * Options:
 *     --port <n>        TCP port (default 0 = ephemeral, printed)
 *     --workers <n>     inference worker threads per replica
 *                       (default 1)
 *     --max-batch <n>   dynamic batch size cap (default 16)
 *     --linger-us <n>   batch linger window in microseconds (default
 *                       2000)
 *     --backend <name>  reference, fast, int8, or fp16 (default fast)
 *     --replicas <n>    PolicyServer replicas behind the router
 *                       (default 1)
 *     --policy <name>   least-loaded or hash (consistent hash by
 *                       connection; default least-loaded)
 *     --shed <f>        shed when fleet queue depth exceeds this
 *                       fraction of total capacity (default 0.75;
 *                       >= 1 disables router-level shedding)
 *     --frontend <name> epoll or threads (default epoll; threads
 *                       requires --replicas 1)
 *     --checkpoint <p>  serve the trained theta from a training
 *                       checkpoint instead of random initialization
 *     --demo            drive the server with an in-process TCP client
 *                       playing one short episode, print the actions,
 *                       and exit (smoke test / CI mode)
 *
 * Without --demo the server runs until SIGINT/SIGTERM. Set
 * FA3C_METRICS_JSON to export serve.* latency histograms, and
 * FA3C_TELEMETRY_PORT to scrape /metrics, /healthz, and /readyz live
 * (with FA3C_TRACE + FA3C_TRACE_SAMPLE for per-request spans; the
 * router_* gauges report fleet depth, shed rate, and per-replica
 * versions).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "env/environment.hh"
#include "env/session.hh"
#include "nn/a3c_network.hh"
#include "obs/telemetry.hh"
#include "rl/checkpoint.hh"
#include "serve/event_loop.hh"
#include "serve/router.hh"
#include "serve/tcp.hh"

using namespace fa3c;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

/** Play one short episode through the wire protocol. */
int
runDemo(std::uint16_t port, env::GameId game,
        const nn::NetConfig &net_cfg)
{
    serve::TcpClient client;
    if (!client.connect("127.0.0.1", port)) {
        std::fprintf(stderr, "demo: cannot connect to 127.0.0.1:%u\n",
                     port);
        return 1;
    }
    env::SessionConfig session_cfg;
    session_cfg.frameStack = net_cfg.inChannels;
    session_cfg.obsHeight = net_cfg.inHeight;
    session_cfg.obsWidth = net_cfg.inWidth;
    session_cfg.maxEpisodeFrames = 600;
    env::AtariSession session(env::makeEnvironment(game, 42),
                              session_cfg, 43);

    std::printf("\n%-6s %-7s %-10s %-10s %s\n", "step", "action",
                "value", "latency", "batch");
    double total_us = 0.0;
    int steps = 0;
    for (; steps < 80 && !g_stop; ++steps) {
        serve::Response r;
        if (!client.request(session.observation(), 0, r)) {
            std::fprintf(stderr, "demo: transport error at step %d\n",
                         steps);
            return 1;
        }
        if (r.status != serve::Status::Ok) {
            std::fprintf(stderr, "demo: request failed: %s\n",
                         serve::statusName(r.status));
            return 1;
        }
        total_us += r.totalUs;
        if (steps % 10 == 0)
            std::printf("%-6d %-7d %-10.4f %7.0f us %d\n", steps,
                        r.action, r.value, r.totalUs, r.batchSize);
        const auto step = session.act(r.action);
        if (step.episodeEnd)
            break;
    }
    std::printf("\nDemo: %d steps over TCP, mean latency %.0f us, "
                "episode score %.1f.\n",
                steps, steps ? total_us / steps : 0.0,
                session.lastEpisodeScore() != 0.0
                    ? session.lastEpisodeScore()
                    : session.episodeScore());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string game_name = "breakout";
    std::string backend_name = "fast";
    std::string policy_name = "least-loaded";
    std::string frontend = "epoll";
    std::string checkpoint_path;
    long port = 0;
    int workers = 1;
    int max_batch = 16;
    long linger_us = 2000;
    int replicas = 1;
    double shed_fraction = 0.75;
    bool demo = false;

    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port" && i + 1 < argc) {
            port = std::strtol(argv[++i], nullptr, 10);
        } else if (arg == "--workers" && i + 1 < argc) {
            workers = static_cast<int>(
                std::strtol(argv[++i], nullptr, 10));
        } else if (arg == "--max-batch" && i + 1 < argc) {
            max_batch = static_cast<int>(
                std::strtol(argv[++i], nullptr, 10));
        } else if (arg == "--linger-us" && i + 1 < argc) {
            linger_us = std::strtol(argv[++i], nullptr, 10);
        } else if (arg == "--backend" && i + 1 < argc) {
            backend_name = argv[++i];
        } else if (arg == "--replicas" && i + 1 < argc) {
            replicas = static_cast<int>(
                std::strtol(argv[++i], nullptr, 10));
        } else if (arg == "--policy" && i + 1 < argc) {
            policy_name = argv[++i];
        } else if (arg == "--shed" && i + 1 < argc) {
            shed_fraction = std::strtod(argv[++i], nullptr);
        } else if (arg == "--frontend" && i + 1 < argc) {
            frontend = argv[++i];
        } else if (arg == "--checkpoint" && i + 1 < argc) {
            checkpoint_path = argv[++i];
        } else if (arg == "--demo") {
            demo = true;
        } else if (positional == 0) {
            game_name = arg;
            ++positional;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            return 2;
        }
    }

    const auto maybe_game = env::tryGameFromName(game_name);
    if (!maybe_game) {
        std::fprintf(stderr, "unknown game: %s (valid: %s)\n",
                     game_name.c_str(),
                     env::gameNameList().c_str());
        return 2;
    }
    const env::GameId game = *maybe_game;
    const auto maybe_backend = rl::tryBackendKindFromName(backend_name);
    if (!maybe_backend) {
        std::fprintf(stderr,
                     "unknown backend: %s (want "
                     "reference|fast|int8|fp16)\n",
                     backend_name.c_str());
        return 2;
    }
    const auto maybe_policy =
        serve::tryRoutePolicyFromName(policy_name);
    if (!maybe_policy) {
        std::fprintf(stderr,
                     "unknown policy: %s (want least-loaded|hash)\n",
                     policy_name.c_str());
        return 2;
    }
    if (port < 0 || port > 65535) {
        std::fprintf(stderr, "invalid port %ld\n", port);
        return 2;
    }
    if (workers < 1 || max_batch < 1 || linger_us < 0 ||
        replicas < 1 || shed_fraction <= 0.0) {
        std::fprintf(stderr,
                     "invalid worker/batch/linger/fleet settings\n");
        return 2;
    }
    if (frontend != "epoll" && frontend != "threads") {
        std::fprintf(stderr, "unknown frontend: %s (want "
                             "epoll|threads)\n",
                     frontend.c_str());
        return 2;
    }
    if (frontend == "threads" && replicas != 1) {
        std::fprintf(stderr, "--frontend threads serves a single "
                             "replica; use --frontend epoll for a "
                             "fleet\n");
        return 2;
    }

    const int actions = env::makeEnvironment(game, 0)->numActions();
    const nn::NetConfig net_cfg = nn::NetConfig::tiny(actions);
    const nn::A3cNetwork net(net_cfg);

    nn::ParamSet params = net.makeParams();
    if (!checkpoint_path.empty()) {
        rl::TrainingCheckpoint ckpt;
        ckpt.theta = net.makeParams();
        ckpt.rmspropG = net.makeParams();
        if (!rl::loadCheckpointFromFile(ckpt, checkpoint_path)) {
            std::fprintf(stderr,
                         "cannot load checkpoint %s (corrupt, missing, "
                         "or wrong network)\n",
                         checkpoint_path.c_str());
            return 1;
        }
        params.copyFrom(ckpt.theta);
        std::printf("Serving theta from %s (step %llu).\n",
                    checkpoint_path.c_str(),
                    static_cast<unsigned long long>(ckpt.globalSteps));
    } else {
        sim::Rng rng(7);
        net.initParams(params, rng);
        std::printf("Serving randomly initialized parameters "
                    "(pass --checkpoint for a trained policy).\n");
    }

    serve::FleetConfig fleet;
    fleet.replicas = replicas;
    fleet.policy = *maybe_policy;
    fleet.shed.depthFraction = shed_fraction;
    fleet.replica.batch.maxBatch = max_batch;
    fleet.replica.batch.linger =
        std::chrono::microseconds(linger_us);
    fleet.replica.workers = workers;
    fleet.replica.backend = *maybe_backend;
    serve::ReplicaRouter router(net, fleet);
    router.publish(params);
    router.start();

    // Either front speaks the same wire format; epoll multiplexes all
    // connections on one thread and is the only front that can route
    // into a fleet.
    serve::TcpServer *tcp = nullptr;
    serve::EventLoopServer *loop = nullptr;
    serve::TcpConfig tcp_cfg;
    serve::EventLoopConfig loop_cfg;
    std::uint16_t bound_port = 0;
    if (frontend == "threads") {
        tcp_cfg.port = static_cast<std::uint16_t>(port);
        tcp = new serve::TcpServer(router.replica(0), tcp_cfg);
        if (!tcp->start()) {
            std::fprintf(stderr, "cannot listen on port %ld\n", port);
            return 1;
        }
        bound_port = tcp->port();
    } else {
        loop_cfg.port = static_cast<std::uint16_t>(port);
        loop = new serve::EventLoopServer(router, loop_cfg);
        if (!loop->start()) {
            std::fprintf(stderr, "cannot listen on port %ld\n", port);
            return 1;
        }
        bound_port = loop->port();
    }
    std::printf("Serving %s on 127.0.0.1:%u (%s backend, %d replica%s"
                " x %d worker%s, %s routing, max batch %d, linger %ld "
                "us, %s frontend).\n",
                game_name.c_str(), bound_port, backend_name.c_str(),
                replicas, replicas == 1 ? "" : "s", workers,
                workers == 1 ? "" : "s",
                serve::routePolicyName(*maybe_policy), max_batch,
                linger_us, frontend.c_str());
    if (const obs::TelemetryServer *telemetry = obs::telemetry())
        std::printf("Telemetry on http://127.0.0.1:%d (/metrics "
                    "/healthz /readyz).\n",
                    telemetry->port());

    int rc = 0;
    if (demo) {
        rc = runDemo(bound_port, game, net_cfg);
    } else {
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        while (!g_stop)
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        std::printf("\nShutting down.\n");
    }

    if (tcp) {
        tcp->stop();
        delete tcp;
    }
    if (loop) {
        loop->stop();
        delete loop;
    }
    router.stop();
    if (router.sheds() > 0)
        std::printf("Router shed %llu of %llu requests (%.1f%%).\n",
                    static_cast<unsigned long long>(router.sheds()),
                    static_cast<unsigned long long>(router.routed() +
                                                    router.sheds()),
                    100.0 * router.shedRate());
    for (int r = 0; r < router.replicas(); ++r) {
        if (router.replicas() > 1)
            std::printf("--- replica %d ---\n", r);
        const sim::StatGroup stats =
            router.replica(r).statsSnapshot();
        std::printf("%s", stats.report("serve").c_str());
    }
    return rc;
}
