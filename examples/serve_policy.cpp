/**
 * @file
 * Serve a policy for one game over TCP: a PolicyServer with dynamic
 * batching fronted by the length-prefixed wire protocol (serve/tcp.hh).
 *
 *     ./serve_policy [game] [options]
 *
 * Games: beam_rider breakout pong qbert seaquest space_invaders.
 *
 * Options:
 *     --port <n>        TCP port (default 0 = ephemeral, printed)
 *     --workers <n>     inference worker threads (default 1)
 *     --max-batch <n>   dynamic batch size cap (default 16)
 *     --linger-us <n>   batch linger window in microseconds (default
 *                       2000)
 *     --backend <name>  reference, fast, int8, or fp16 (default fast)
 *     --checkpoint <p>  serve the trained theta from a training
 *                       checkpoint instead of random initialization
 *     --demo            drive the server with an in-process TCP client
 *                       playing one short episode, print the actions,
 *                       and exit (smoke test / CI mode)
 *
 * Without --demo the server runs until SIGINT/SIGTERM. Set
 * FA3C_METRICS_JSON to export serve.* latency histograms, and
 * FA3C_TELEMETRY_PORT to scrape /metrics, /healthz, and /readyz live
 * (with FA3C_TRACE + FA3C_TRACE_SAMPLE for per-request spans).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "env/environment.hh"
#include "env/session.hh"
#include "nn/a3c_network.hh"
#include "obs/telemetry.hh"
#include "rl/checkpoint.hh"
#include "serve/server.hh"
#include "serve/tcp.hh"

using namespace fa3c;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

/** Play one short episode through the wire protocol. */
int
runDemo(serve::TcpServer &tcp, env::GameId game,
        const nn::NetConfig &net_cfg)
{
    serve::TcpClient client;
    if (!client.connect("127.0.0.1", tcp.port())) {
        std::fprintf(stderr, "demo: cannot connect to 127.0.0.1:%u\n",
                     tcp.port());
        return 1;
    }
    env::SessionConfig session_cfg;
    session_cfg.frameStack = net_cfg.inChannels;
    session_cfg.obsHeight = net_cfg.inHeight;
    session_cfg.obsWidth = net_cfg.inWidth;
    session_cfg.maxEpisodeFrames = 600;
    env::AtariSession session(env::makeEnvironment(game, 42),
                              session_cfg, 43);

    std::printf("\n%-6s %-7s %-10s %-10s %s\n", "step", "action",
                "value", "latency", "batch");
    double total_us = 0.0;
    int steps = 0;
    for (; steps < 80 && !g_stop; ++steps) {
        serve::Response r;
        if (!client.request(session.observation(), 0, r)) {
            std::fprintf(stderr, "demo: transport error at step %d\n",
                         steps);
            return 1;
        }
        if (r.status != serve::Status::Ok) {
            std::fprintf(stderr, "demo: request failed: %s\n",
                         serve::statusName(r.status));
            return 1;
        }
        total_us += r.totalUs;
        if (steps % 10 == 0)
            std::printf("%-6d %-7d %-10.4f %7.0f us %d\n", steps,
                        r.action, r.value, r.totalUs, r.batchSize);
        const auto step = session.act(r.action);
        if (step.episodeEnd)
            break;
    }
    std::printf("\nDemo: %d steps over TCP, mean latency %.0f us, "
                "episode score %.1f.\n",
                steps, steps ? total_us / steps : 0.0,
                session.lastEpisodeScore() != 0.0
                    ? session.lastEpisodeScore()
                    : session.episodeScore());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string game_name = "breakout";
    std::string backend_name = "fast";
    std::string checkpoint_path;
    long port = 0;
    int workers = 1;
    int max_batch = 16;
    long linger_us = 2000;
    bool demo = false;

    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port" && i + 1 < argc) {
            port = std::strtol(argv[++i], nullptr, 10);
        } else if (arg == "--workers" && i + 1 < argc) {
            workers = static_cast<int>(
                std::strtol(argv[++i], nullptr, 10));
        } else if (arg == "--max-batch" && i + 1 < argc) {
            max_batch = static_cast<int>(
                std::strtol(argv[++i], nullptr, 10));
        } else if (arg == "--linger-us" && i + 1 < argc) {
            linger_us = std::strtol(argv[++i], nullptr, 10);
        } else if (arg == "--backend" && i + 1 < argc) {
            backend_name = argv[++i];
        } else if (arg == "--checkpoint" && i + 1 < argc) {
            checkpoint_path = argv[++i];
        } else if (arg == "--demo") {
            demo = true;
        } else if (positional == 0) {
            game_name = arg;
            ++positional;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            return 2;
        }
    }

    const auto maybe_game = env::tryGameFromName(game_name);
    if (!maybe_game) {
        std::fprintf(stderr, "unknown game: %s (valid: %s)\n",
                     game_name.c_str(),
                     env::gameNameList().c_str());
        return 2;
    }
    const env::GameId game = *maybe_game;
    const auto maybe_backend = rl::tryBackendKindFromName(backend_name);
    if (!maybe_backend) {
        std::fprintf(stderr,
                     "unknown backend: %s (want "
                     "reference|fast|int8|fp16)\n",
                     backend_name.c_str());
        return 2;
    }
    if (port < 0 || port > 65535) {
        std::fprintf(stderr, "invalid port %ld\n", port);
        return 2;
    }
    if (workers < 1 || max_batch < 1 || linger_us < 0) {
        std::fprintf(stderr, "invalid worker/batch/linger settings\n");
        return 2;
    }

    const int actions = env::makeEnvironment(game, 0)->numActions();
    const nn::NetConfig net_cfg = nn::NetConfig::tiny(actions);
    const nn::A3cNetwork net(net_cfg);

    nn::ParamSet params = net.makeParams();
    if (!checkpoint_path.empty()) {
        rl::TrainingCheckpoint ckpt;
        ckpt.theta = net.makeParams();
        ckpt.rmspropG = net.makeParams();
        if (!rl::loadCheckpointFromFile(ckpt, checkpoint_path)) {
            std::fprintf(stderr,
                         "cannot load checkpoint %s (corrupt, missing, "
                         "or wrong network)\n",
                         checkpoint_path.c_str());
            return 1;
        }
        params.copyFrom(ckpt.theta);
        std::printf("Serving theta from %s (step %llu).\n",
                    checkpoint_path.c_str(),
                    static_cast<unsigned long long>(ckpt.globalSteps));
    } else {
        sim::Rng rng(7);
        net.initParams(params, rng);
        std::printf("Serving randomly initialized parameters "
                    "(pass --checkpoint for a trained policy).\n");
    }

    serve::ServeConfig cfg;
    cfg.batch.maxBatch = max_batch;
    cfg.batch.linger = std::chrono::microseconds(linger_us);
    cfg.workers = workers;
    cfg.backend = *maybe_backend;
    serve::PolicyServer server(net, cfg);
    server.publish(std::move(params));
    server.start();

    serve::TcpConfig tcp_cfg;
    tcp_cfg.port = static_cast<std::uint16_t>(port);
    serve::TcpServer tcp(server, tcp_cfg);
    if (!tcp.start()) {
        std::fprintf(stderr, "cannot listen on port %ld\n", port);
        return 1;
    }
    std::printf("Serving %s on 127.0.0.1:%u (%s backend, %d worker%s, "
                "max batch %d, linger %ld us).\n",
                game_name.c_str(), tcp.port(), backend_name.c_str(),
                workers, workers == 1 ? "" : "s", max_batch, linger_us);
    if (const obs::TelemetryServer *telemetry = obs::telemetry())
        std::printf("Telemetry on http://127.0.0.1:%d (/metrics "
                    "/healthz /readyz).\n",
                    telemetry->port());

    int rc = 0;
    if (demo) {
        rc = runDemo(tcp, game, net_cfg);
    } else {
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        while (!g_stop)
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        std::printf("\nShutting down.\n");
    }

    tcp.stop();
    server.stop();
    const sim::StatGroup stats = server.statsSnapshot();
    std::printf("%s", stats.report("serve").c_str());
    return rc;
}
