#include "dist/lease.hh"

namespace fa3c::dist {

LeaseTable::LeaseTable(std::chrono::milliseconds ttl, NowFn now)
    : ttl_(ttl), now_(std::move(now))
{
    if (!now_)
        now_ = [] { return Clock::now(); };
}

std::uint64_t
LeaseTable::join(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t id = nextId_++;
    Lease &lease = leases_[id];
    lease.id = id;
    lease.name = name;
    lease.expiry = now_() + ttl_;
    ++joined_;
    return id;
}

bool
LeaseTable::renew(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = leases_.find(id);
    if (it == leases_.end())
        return false;
    it->second.expiry = now_() + ttl_;
    return true;
}

bool
LeaseTable::leave(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return leases_.erase(id) > 0;
}

std::vector<LeaseTable::Lease>
LeaseTable::reapExpired()
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Clock::time_point now = now_();
    std::vector<Lease> reaped;
    for (auto it = leases_.begin(); it != leases_.end();) {
        if (it->second.expiry <= now) {
            reaped.push_back(it->second);
            it = leases_.erase(it);
            ++reaped_;
        } else {
            ++it;
        }
    }
    return reaped;
}

bool
LeaseTable::reap(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (leases_.erase(id) == 0)
        return false;
    ++reaped_;
    return true;
}

std::size_t
LeaseTable::active() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return leases_.size();
}

std::uint64_t
LeaseTable::joined() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return joined_;
}

std::uint64_t
LeaseTable::reaped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reaped_;
}

} // namespace fa3c::dist
