/**
 * @file
 * Worker lease tracking for the elastic parameter server.
 *
 * Membership is lease-based: a worker's Hello grants a lease, every
 * Push or Heartbeat renews it, and a worker that stops talking —
 * crashed, partitioned, or FA3C_FAULT_*-killed — is reaped once its
 * lease expires (or immediately when its control connection drops).
 * Joining is always cheap: a replacement worker gets a fresh lease
 * and resumes from the PS's current version, so the fleet can grow
 * and shrink mid-run without coordination.
 *
 * The table uses an injectable monotonic clock so expiry tests do not
 * need to sleep.
 */

#ifndef FA3C_DIST_LEASE_HH
#define FA3C_DIST_LEASE_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace fa3c::dist {

/** Thread-safe lease registry keyed by worker id. */
class LeaseTable
{
  public:
    using Clock = std::chrono::steady_clock;
    /** Override the time source (tests). */
    using NowFn = std::function<Clock::time_point()>;

    /** One active worker membership. */
    struct Lease
    {
        std::uint64_t id = 0;
        std::string name;
        Clock::time_point expiry{};
    };

    explicit LeaseTable(std::chrono::milliseconds ttl,
                        NowFn now = {});

    /** Grant a fresh lease. @return the new worker id (never 0). */
    std::uint64_t join(const std::string &name);

    /** Extend @p id's lease by one TTL. @return false when the lease
     * does not exist (expired and reaped, or never granted). */
    bool renew(std::uint64_t id);

    /** Voluntarily release @p id (a worker's Bye). */
    bool leave(std::uint64_t id);

    /** Remove every expired lease. @return the reaped leases. */
    std::vector<Lease> reapExpired();

    /** Remove @p id regardless of expiry (its connection died).
     * @return true when a lease was actually dropped. */
    bool reap(std::uint64_t id);

    std::size_t active() const;
    std::uint64_t joined() const;  ///< lifetime joins
    std::uint64_t reaped() const;  ///< lifetime reaps (not Byes)
    std::chrono::milliseconds ttl() const { return ttl_; }

  private:
    std::chrono::milliseconds ttl_;
    NowFn now_;
    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, Lease> leases_;
    std::uint64_t nextId_ = 1;
    std::uint64_t joined_ = 0;
    std::uint64_t reaped_ = 0;
};

} // namespace fa3c::dist

#endif // FA3C_DIST_LEASE_HH
