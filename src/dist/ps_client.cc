#include "dist/ps_client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/frame.hh"
#include "sim/logging.hh"

namespace fa3c::dist {

PsClient::~PsClient()
{
    close();
}

void
PsClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
PsClient::connect(const std::string &host, int port)
{
    close();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        FA3C_WARN("dist: bad ps address '", host, "'");
        ::close(fd);
        return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return false;
    }
    net::setNoDelay(fd);
    fd_ = fd;
    return true;
}

bool
PsClient::request(wire::Type type, const std::string &payload,
                  wire::Type want, std::string &reply)
{
    if (fd_ < 0)
        return false;
    if (!net::sendFrame(fd_, wire::kMagic,
                        static_cast<std::uint32_t>(type),
                        payload.data(), payload.size())) {
        close();
        return false;
    }
    std::uint32_t got = 0;
    if (!net::recvFrame(fd_, wire::kMagic, wire::kMaxPayloadBytes,
                        got, reply) ||
        got != static_cast<std::uint32_t>(want)) {
        close();
        return false;
    }
    return true;
}

bool
PsClient::hello(const wire::Hello &msg, wire::Welcome &out)
{
    std::string payload, reply;
    wire::encodeHello(payload, msg);
    if (!request(wire::Type::Hello, payload, wire::Type::Welcome,
                 reply) ||
        !wire::decodeWelcome(out, reply)) {
        close();
        return false;
    }
    if (out.workerId == 0) {
        close(); // rejected; the server is closing too
        return false;
    }
    return true;
}

bool
PsClient::pull(wire::Params &out, std::size_t expect_count,
               const wire::TraceCtx &trace)
{
    std::string payload, reply;
    wire::Pull msg;
    msg.trace = trace;
    wire::encodePull(payload, msg);
    if (!request(wire::Type::Pull, payload, wire::Type::Params,
                 reply) ||
        !wire::decodeParams(out, reply, expect_count)) {
        close();
        return false;
    }
    return true;
}

bool
PsClient::push(const wire::Push &msg, wire::PushAck &out,
               std::size_t expect_count)
{
    std::string payload, reply;
    wire::encodePush(payload, msg);
    if (!request(wire::Type::Push, payload, wire::Type::PushAck,
                 reply) ||
        !wire::decodePushAck(out, reply, expect_count)) {
        close();
        return false;
    }
    return true;
}

bool
PsClient::heartbeat(std::uint64_t worker_id, wire::HeartbeatAck &out)
{
    wire::Heartbeat hb;
    hb.workerId = worker_id;
    std::string payload, reply;
    wire::encodeHeartbeat(payload, hb);
    if (!request(wire::Type::Heartbeat, payload,
                 wire::Type::HeartbeatAck, reply) ||
        !wire::decodeHeartbeatAck(out, reply)) {
        close();
        return false;
    }
    return true;
}

bool
PsClient::stats(wire::StatsReply &out)
{
    std::string reply;
    if (!request(wire::Type::Stats, std::string(),
                 wire::Type::StatsReply, reply) ||
        !wire::decodeStatsReply(out, reply)) {
        close();
        return false;
    }
    return true;
}

void
PsClient::bye(std::uint64_t worker_id)
{
    if (fd_ < 0)
        return;
    // Bye reuses the Heartbeat payload shape ({workerId}); there is
    // no reply — the server releases the lease and we just close.
    wire::Heartbeat msg;
    msg.workerId = worker_id;
    std::string payload;
    wire::encodeHeartbeat(payload, msg);
    (void)net::sendFrame(fd_, wire::kMagic,
                         static_cast<std::uint32_t>(wire::Type::Bye),
                         payload.data(), payload.size());
    close();
}

} // namespace fa3c::dist
