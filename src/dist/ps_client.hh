/**
 * @file
 * Blocking client side of the dist wire protocol: one TCP connection
 * to a PsServer, one request/reply RPC at a time. WorkerRunner keeps
 * two of these — a push/pull connection owned by the training loop
 * and a heartbeat connection owned by the lease-renewal thread — and
 * tests / the CLI `verify` role use one directly.
 *
 * Every RPC returns false on transport or protocol failure and leaves
 * the connection in a dead state; the caller reconnects and re-Hellos
 * (the elastic-rejoin path) rather than trying to resynchronize a
 * half-spoken conversation.
 */

#ifndef FA3C_DIST_PS_CLIENT_HH
#define FA3C_DIST_PS_CLIENT_HH

#include <cstdint>
#include <string>

#include "dist/wire.hh"

namespace fa3c::dist {

/** One blocking dist-protocol connection. */
class PsClient
{
  public:
    PsClient() = default;
    ~PsClient();

    PsClient(const PsClient &) = delete;
    PsClient &operator=(const PsClient &) = delete;

    /** Connect to @p host:@p port. Any previous connection closes. */
    bool connect(const std::string &host, int port);

    bool connected() const { return fd_ >= 0; }

    void close();

    /** Introduce this worker; false on rejection (Welcome.workerId ==
     * 0) as well as on transport failure. */
    bool hello(const wire::Hello &msg, wire::Welcome &out);

    /** Fetch the full parameter image. @p trace rides on the frame
     * so the PS can parent its ps.pull span under the caller. */
    bool pull(wire::Params &out, std::size_t expect_count,
              const wire::TraceCtx &trace = {});

    /** Push gradients; @p expect_count validates the ack's theta. */
    bool push(const wire::Push &msg, wire::PushAck &out,
              std::size_t expect_count);

    bool heartbeat(std::uint64_t worker_id, wire::HeartbeatAck &out);

    bool stats(wire::StatsReply &out);

    /** Release the lease; fire-and-forget, then closes. */
    void bye(std::uint64_t worker_id);

  private:
    int fd_ = -1;

    /** Send one frame and receive one @p want-typed reply. */
    bool request(wire::Type type, const std::string &payload,
                 wire::Type want, std::string &reply);
};

} // namespace fa3c::dist

#endif // FA3C_DIST_PS_CLIENT_HH
