#include "dist/ps_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>

#include "net/frame.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/prometheus.hh"
#include "rl/checkpoint.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace fa3c::dist {

namespace {

using Clock = std::chrono::steady_clock;

/** Algorithm tag of the PS's durable checkpoint image. */
constexpr const char *kPsAlgorithm = "dist-ps";

bool
sendMsg(int fd, wire::Type type, const std::string &payload)
{
    return net::sendFrame(fd, wire::kMagic,
                          static_cast<std::uint32_t>(type),
                          payload.data(), payload.size());
}

} // namespace

PsServer::PsServer(const nn::A3cNetwork &net,
                   const PsServerConfig &cfg)
    : net_(net), cfg_(cfg),
      params_(net, cfg.rmsprop, cfg.initialLr, cfg.annealSteps,
              cfg.numShards),
      leases_(std::chrono::milliseconds(
          cfg.leaseTtlMs > 0 ? cfg.leaseTtlMs : 1)),
      layoutCrc_(wire::layoutCrc(params_.layout()))
{
}

PsServer::~PsServer()
{
    stop();
}

bool
PsServer::restoreOrInitialize()
{
    if (!cfg_.checkpointPath.empty() &&
        std::filesystem::exists(cfg_.checkpointPath)) {
        rl::TrainingCheckpoint ckpt;
        ckpt.theta = net_.makeParams();
        ckpt.rmspropG = net_.makeParams();
        if (!rl::loadCheckpointFromFile(ckpt, cfg_.checkpointPath)) {
            FA3C_WARN("dist: ps checkpoint '", cfg_.checkpointPath,
                      "' failed to load; refusing to start");
            return false;
        }
        if (ckpt.algorithm != kPsAlgorithm) {
            FA3C_WARN("dist: ps checkpoint '", cfg_.checkpointPath,
                      "' was written by '", ckpt.algorithm,
                      "', not '", kPsAlgorithm,
                      "'; refusing to start");
            return false;
        }
        params_.restore(ckpt.theta, ckpt.rmspropG, ckpt.globalSteps,
                        ckpt.updates);
        lastCheckpointSteps_ = ckpt.globalSteps;
        FA3C_INFORM("dist: ps resumed from '", cfg_.checkpointPath,
                    "' at version ", ckpt.updates, ", step ",
                    ckpt.globalSteps);
    } else {
        sim::Rng rng(cfg_.seed);
        params_.initialize(rng);
    }
    return true;
}

bool
PsServer::start()
{
    if (listenFd_ >= 0)
        return true;
    if (!restoreOrInitialize())
        return false;

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        FA3C_WARN("dist: socket() failed: ", std::strerror(errno));
        return false;
    }
    int one = 1;
    (void)::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
    if (::inet_pton(AF_INET, cfg_.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        FA3C_WARN("dist: bad bind address '", cfg_.bindAddress, "'");
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, cfg_.backlog) != 0) {
        FA3C_WARN("dist: bind/listen on ", cfg_.bindAddress, ":",
                  cfg_.port, " failed: ", std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) == 0)
        port_ = ntohs(bound.sin_port);

    telemetry_ = obs::TelemetryRegistration(
        obs::telemetry(),
        [this](obs::PromWriter &w) {
            w.gauge("fa3c_dist_ps_version",
                    static_cast<double>(params_.version()),
                    "PS parameter version (accepted pushes)");
            w.gauge("fa3c_dist_ps_steps",
                    static_cast<double>(params_.steps()),
                    "Global env steps consumed");
            w.gauge("fa3c_dist_active_leases",
                    static_cast<double>(leases_.active()),
                    "Workers holding a live lease");
            w.counter("fa3c_dist_pushes_total",
                      pushes_.load(std::memory_order_relaxed),
                      "Accepted gradient pushes");
            w.counter("fa3c_dist_push_rejects_total",
                      pushRejects_.load(std::memory_order_relaxed),
                      "Rejected gradient pushes");
            w.counter("fa3c_dist_lease_reaps_total", leases_.reaped(),
                      "Leases reaped (timeout or dead connection)");
        },
        "dist-ps", [](std::string &detail) {
            detail = "parameter server listening";
            return true;
        });

    acceptThread_ = std::thread([this] { acceptMain(); });
    housekeeper_ = std::thread([this] { housekeeperMain(); });
    FA3C_INFORM("dist: ps listening on ", cfg_.bindAddress, ":",
                port_, " (", params_.paramCount(), " params, ",
                params_.numShards(), " shards, lease ttl ",
                cfg_.leaseTtlMs, " ms)");
    return true;
}

void
PsServer::stop()
{
    if (stopping_.exchange(true))
        return;
    {
        std::lock_guard<std::mutex> lock(doneMutex_);
        doneCv_.notify_all();
    }
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
        threads.swap(connThreads_);
    }
    for (auto &t : threads)
        if (t.joinable())
            t.join();
    if (housekeeper_.joinable())
        housekeeper_.join();
    // All appliers are gone; this image is the run's final word.
    if (!cfg_.checkpointPath.empty() &&
        !finalCheckpointWritten_.exchange(true))
        writeCheckpoint();
    telemetry_.reset();
}

bool
PsServer::waitDone(long timeout_ms)
{
    std::unique_lock<std::mutex> lock(doneMutex_);
    const auto pred = [this] {
        return done_.load(std::memory_order_acquire) ||
               stopping_.load(std::memory_order_acquire);
    };
    if (timeout_ms < 0)
        doneCv_.wait(lock, pred);
    else
        doneCv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                         pred);
    return done_.load(std::memory_order_acquire);
}

wire::StatsReply
PsServer::stats() const
{
    wire::StatsReply s;
    s.version = params_.version();
    s.steps = params_.steps();
    s.totalSteps = cfg_.totalSteps;
    s.activeLeases = static_cast<std::uint32_t>(leases_.active());
    s.joined = leases_.joined();
    s.reaped = leases_.reaped();
    s.pushes = pushes_.load(std::memory_order_relaxed);
    s.pushRejects = pushRejects_.load(std::memory_order_relaxed);
    return s;
}

void
PsServer::markDone()
{
    if (done_.exchange(true, std::memory_order_acq_rel))
        return;
    FA3C_INFORM("dist: reached totalSteps=", cfg_.totalSteps,
                " at version ", params_.version(),
                "; telling workers to stop");
    std::lock_guard<std::mutex> lock(doneMutex_);
    doneCv_.notify_all();
}

bool
PsServer::writeCheckpoint()
{
    if (cfg_.checkpointPath.empty())
        return true;
    rl::TrainingCheckpoint ckpt;
    ckpt.algorithm = kPsAlgorithm;
    ckpt.theta = net_.makeParams();
    ckpt.rmspropG = net_.makeParams();
    std::uint64_t version = 0;
    params_.checkpoint(ckpt.theta, ckpt.rmspropG, ckpt.globalSteps,
                       version);
    ckpt.updates = version;
    if (!rl::saveCheckpointToFile(ckpt, cfg_.checkpointPath)) {
        FA3C_WARN("dist: ps checkpoint write to '",
                  cfg_.checkpointPath, "' failed");
        return false;
    }
    lastCheckpointSteps_ = ckpt.globalSteps;
    FA3C_INFORM("dist: ps checkpoint at version ", version, ", step ",
                ckpt.globalSteps, " -> ", cfg_.checkpointPath);
    return true;
}

void
PsServer::acceptMain()
{
    const int listen_fd = listenFd_;
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listener shut down (stop) or fatal error
        }
        if (stopping_.load(std::memory_order_relaxed)) {
            ::close(fd);
            return;
        }
        net::setNoDelay(fd);
        std::lock_guard<std::mutex> lock(connMutex_);
        connFds_.push_back(fd);
        connThreads_.emplace_back([this, fd] { connectionMain(fd); });
    }
}

void
PsServer::handleHello(int fd, const std::string &payload,
                      std::uint64_t &owned_lease, bool &proto_ok)
{
    wire::Hello hello;
    if (!wire::decodeHello(hello, payload)) {
        proto_ok = false;
        return;
    }
    wire::Welcome welcome;
    welcome.leaseTtlMs = cfg_.leaseTtlMs;
    welcome.version = params_.version();
    welcome.steps = params_.steps();
    welcome.totalSteps = cfg_.totalSteps;
    welcome.maxStaleness = cfg_.maxStaleness;
    // Wall-clock stamp for the worker's handshake clock-offset
    // estimate (trace_merge aligns per-process traces with it).
    welcome.serverUnixUs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    if (hello.paramCount == params_.paramCount() &&
        hello.layoutCrc == layoutCrc_) {
        // A re-Hello on the same connection replaces any lease it
        // still holds (a worker resyncing after it was reaped).
        if (owned_lease != 0)
            leases_.leave(owned_lease);
        welcome.workerId = leases_.join(hello.workerName);
        owned_lease = welcome.workerId;
        obs::metrics().count("dist", "lease_joins");
        FA3C_INFORM("dist: worker '", hello.workerName,
                    "' joined as #", welcome.workerId, " at version ",
                    welcome.version);
    } else {
        FA3C_WARN("dist: rejecting worker '", hello.workerName,
                  "': layout mismatch (count ", hello.paramCount,
                  " vs ", params_.paramCount(), ", crc ",
                  hello.layoutCrc, " vs ", layoutCrc_, ")");
    }
    std::string out;
    wire::encodeWelcome(out, welcome);
    proto_ok = sendMsg(fd, wire::Type::Welcome, out) &&
               welcome.workerId != 0;
}

void
PsServer::handlePull(int fd, const std::string &payload,
                     bool &proto_ok)
{
    wire::Pull pull;
    if (!wire::decodePull(pull, payload)) {
        proto_ok = false;
        return;
    }
    const auto span = obs::remoteChildSpan(
        pull.trace.traceId, pull.trace.spanId, pull.trace.sampled != 0);
    const auto t0 = Clock::now();
    wire::Params reply;
    reply.version = params_.version();
    params_.snapshot(reply.theta);
    reply.steps = params_.steps();
    reply.stop = done() ? 1 : 0;
    obs::metrics().count("dist", "pulls");
    if (span.sampled) {
        const std::array<obs::TraceArg, 1> args{
            {{"version", static_cast<double>(reply.version)}}};
        obs::emitSpan(span, "dist.ps", "ps.pull", t0, Clock::now(),
                      args);
    }
    std::string out;
    wire::encodeParams(out, reply);
    proto_ok = sendMsg(fd, wire::Type::Params, out);
}

void
PsServer::handlePush(int fd, const std::string &payload,
                     bool &proto_ok)
{
    wire::Push push;
    if (!wire::decodePush(push, payload, params_.paramCount())) {
        proto_ok = false;
        return;
    }
    auto &m = obs::metrics();
    const bool known = leases_.renew(push.workerId);
    const std::uint64_t version = params_.version();
    const std::uint64_t staleness =
        version > push.baseVersion ? version - push.baseVersion : 0;
    const bool stopped = done();
    const bool accept = known && !stopped &&
                        staleness <= cfg_.maxStaleness &&
                        push.grads.size() == params_.paramCount();

    wire::PushAck ack;
    ack.accepted = accept ? 1 : 0;
    // An unknown lease gets the sentinel staleness so the worker can
    // tell "re-Hello" apart from "too stale, just resync".
    ack.staleness =
        known ? staleness : std::numeric_limits<std::uint64_t>::max();
    // The worker's push span context rides on the frame: the RMSProp
    // apply below is emitted as its child, so one trace_id covers
    // worker rollout -> wire -> PS apply across processes.
    const auto span = obs::remoteChildSpan(
        push.trace.traceId, push.trace.spanId, push.trace.sampled != 0);
    if (accept) {
        const auto t0 = Clock::now();
        ack.version = params_.apply(push.grads, push.steps);
        const auto t1 = Clock::now();
        if (span.sampled) {
            const std::array<obs::TraceArg, 2> args{
                {{"staleness", static_cast<double>(staleness)},
                 {"steps", static_cast<double>(push.steps)}}};
            obs::emitSpan(span, "dist.ps", "ps.apply", t0, t1, args);
        }
        if (m.enabled()) {
            m.count("dist", "pushes");
            m.sample("dist", "push_staleness",
                     static_cast<double>(staleness));
            m.sample("dist", "apply_us",
                     std::chrono::duration<double, std::micro>(t1 - t0)
                         .count());
            double sumsq = 0.0;
            for (float g : push.grads)
                sumsq += static_cast<double>(g) *
                         static_cast<double>(g);
            m.sample("dist", "grad_norm", std::sqrt(sumsq));
        }
        pushes_.fetch_add(1, std::memory_order_relaxed);
        if (cfg_.totalSteps > 0 &&
            params_.steps() >= cfg_.totalSteps)
            markDone();
    } else {
        ack.version = version;
        pushRejects_.fetch_add(1, std::memory_order_relaxed);
        m.count("dist", "push_rejects");
    }
    ack.steps = params_.steps();
    ack.stop = done() ? 1 : 0;
    if (push.wantParams)
        params_.snapshot(ack.theta);
    std::string out;
    wire::encodePushAck(out, ack);
    proto_ok = sendMsg(fd, wire::Type::PushAck, out);
}

void
PsServer::handleHeartbeat(int fd, const std::string &payload,
                          bool &proto_ok)
{
    wire::Heartbeat hb;
    if (!wire::decodeHeartbeat(hb, payload)) {
        proto_ok = false;
        return;
    }
    wire::HeartbeatAck ack;
    ack.known = leases_.renew(hb.workerId) ? 1 : 0;
    ack.stop = done() ? 1 : 0;
    std::string out;
    wire::encodeHeartbeatAck(out, ack);
    proto_ok = sendMsg(fd, wire::Type::HeartbeatAck, out);
}

void
PsServer::handleStats(int fd, bool &proto_ok)
{
    std::string out;
    wire::encodeStatsReply(out, stats());
    proto_ok = sendMsg(fd, wire::Type::StatsReply, out);
}

void
PsServer::connectionMain(int fd)
{
    // The lease granted to a Hello on THIS connection; if the
    // connection dies while the lease is live, the worker is gone and
    // the lease is reaped immediately rather than after the TTL.
    // Heartbeat-only connections never own a lease, so losing one
    // cannot reap a worker whose push connection is still healthy.
    std::uint64_t owned_lease = 0;

    std::uint32_t type = 0;
    std::string payload;
    bool proto_ok = true;
    while (proto_ok && !stopping_.load(std::memory_order_relaxed)) {
        if (!net::recvFrame(fd, wire::kMagic, wire::kMaxPayloadBytes,
                            type, payload))
            break;
        switch (static_cast<wire::Type>(type)) {
        case wire::Type::Hello:
            handleHello(fd, payload, owned_lease, proto_ok);
            break;
        case wire::Type::Pull:
            handlePull(fd, payload, proto_ok);
            break;
        case wire::Type::Push:
            handlePush(fd, payload, proto_ok);
            break;
        case wire::Type::Heartbeat:
            handleHeartbeat(fd, payload, proto_ok);
            break;
        case wire::Type::Stats:
            handleStats(fd, proto_ok);
            break;
        case wire::Type::Bye: {
            // Bye carries the same {workerId} payload as Heartbeat.
            wire::Heartbeat bye;
            if (wire::decodeHeartbeat(bye, payload) &&
                leases_.leave(bye.workerId)) {
                FA3C_INFORM("dist: worker #", bye.workerId,
                            " left cleanly");
                if (owned_lease == bye.workerId)
                    owned_lease = 0;
            }
            proto_ok = false; // the peer is about to close anyway
            break;
        }
        default:
            FA3C_WARN("dist: unexpected message type ", type,
                      "; closing connection");
            proto_ok = false;
            break;
        }
    }

    if (owned_lease != 0 && leases_.reap(owned_lease)) {
        obs::metrics().count("dist", "lease_reaps");
        FA3C_WARN("dist: reaped lease #", owned_lease,
                  " (connection closed)");
    }
    ::close(fd);
    std::lock_guard<std::mutex> lock(connMutex_);
    for (auto it = connFds_.begin(); it != connFds_.end(); ++it) {
        if (*it == fd) {
            connFds_.erase(it);
            break;
        }
    }
}

void
PsServer::housekeeperMain()
{
    const auto interval = std::min<std::chrono::milliseconds>(
        std::max<std::chrono::milliseconds>(
            std::chrono::milliseconds(cfg_.leaseTtlMs / 4),
            std::chrono::milliseconds(10)),
        std::chrono::milliseconds(250));
    std::unique_lock<std::mutex> lock(doneMutex_);
    while (!stopping_.load(std::memory_order_relaxed)) {
        doneCv_.wait_for(lock, interval, [this] {
            return stopping_.load(std::memory_order_relaxed);
        });
        if (stopping_.load(std::memory_order_relaxed))
            break;
        lock.unlock();

        for (const LeaseTable::Lease &l : leases_.reapExpired()) {
            obs::metrics().count("dist", "lease_reaps");
            FA3C_WARN("dist: reaped lease #", l.id, " ('", l.name,
                      "') — heartbeat timeout");
        }
        if (cfg_.checkpointEverySteps > 0 &&
            !cfg_.checkpointPath.empty()) {
            const std::uint64_t steps = params_.steps();
            if (steps - lastCheckpointSteps_ >=
                cfg_.checkpointEverySteps)
                writeCheckpoint();
        }
        obs::metrics().tick();

        lock.lock();
    }
}

} // namespace fa3c::dist
