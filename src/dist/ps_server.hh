/**
 * @file
 * The parameter-server process core.
 *
 * A PsServer owns the sharded global state (dist::ShardedParams), the
 * worker lease table (dist::LeaseTable), and a TCP endpoint speaking
 * dist::wire. Each accepted connection gets its own handler thread
 * (the serve::TcpServer model): a worker Hellos once — the PS
 * validates its parameter layout against the server's network, grants
 * a lease, and from then on every Push renews the lease, runs the
 * staleness check, and applies the gradients through shared RMSProp.
 * A housekeeping thread reaps expired leases (a worker killed by
 * FA3C_FAULT_KILL_AGENT stops renewing and is dropped within one TTL;
 * a clean connection close reaps immediately) and writes periodic
 * checkpoints of the PS state through rl::checkpoint, so a PS restart
 * resumes from the last durable {theta, g, steps, version} image.
 *
 * Training ends when the global step counter crosses
 * PsServerConfig::totalSteps: every subsequent ack carries stop=1, so
 * workers drain and exit, and waitDone() unblocks the launcher.
 */

#ifndef FA3C_DIST_PS_SERVER_HH
#define FA3C_DIST_PS_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/lease.hh"
#include "dist/sharded_params.hh"
#include "dist/wire.hh"
#include "nn/a3c_network.hh"
#include "nn/rmsprop.hh"
#include "obs/telemetry.hh"

namespace fa3c::dist {

struct PsServerConfig
{
    std::string bindAddress = "127.0.0.1";
    int port = 0; ///< 0 = ephemeral, resolved by port()
    int backlog = 32;

    /** Worker lease TTL; a silent worker is reaped after this long. */
    std::uint32_t leaseTtlMs = 2000;

    /**
     * Maximum accepted (version - baseVersion) on a Push. The default
     * accepts everything (pure async A3C); 0 serializes workers
     * against the current version ("synchronous" mode).
     */
    std::uint64_t maxStaleness =
        std::numeric_limits<std::uint64_t>::max();

    /** Stop once this many env steps are consumed (0 = unbounded). */
    std::uint64_t totalSteps = 0;

    /** Durable PS state ("" disables checkpointing). */
    std::string checkpointPath;
    /** Steps between periodic checkpoints (0 = only final). */
    std::uint64_t checkpointEverySteps = 0;

    // Optimizer state (must match the workers' A3cConfig).
    nn::RmspropConfig rmsprop;
    float initialLr = 7e-4f;
    std::uint64_t annealSteps = 0;

    int numShards = 8;
    std::uint64_t seed = 1; ///< theta init when no checkpoint loads
};

/** Parameter-server endpoint: sharded params + leases + TCP. */
class PsServer
{
  public:
    PsServer(const nn::A3cNetwork &net, const PsServerConfig &cfg);
    ~PsServer();

    PsServer(const PsServer &) = delete;
    PsServer &operator=(const PsServer &) = delete;

    /**
     * Restore (or initialize) the global state, bind, and start the
     * accept + housekeeping threads. @return false when the socket
     * could not be bound or an existing checkpoint failed to load.
     */
    bool start();

    /** Stop serving, join every thread, write the final checkpoint. */
    void stop();

    /** The bound port (resolved when configured with 0). */
    int port() const { return port_; }

    /** True once totalSteps has been reached. */
    bool
    done() const
    {
        return done_.load(std::memory_order_acquire);
    }

    /** Block until done() or @p timeout_ms elapses (<0 = forever).
     * @return done(). */
    bool waitDone(long timeout_ms = -1);

    /** Counters for tests and the CLI (same data as a Stats RPC). */
    wire::StatsReply stats() const;

    ShardedParams &params() { return params_; }
    LeaseTable &leases() { return leases_; }

  private:
    const nn::A3cNetwork &net_;
    PsServerConfig cfg_;
    ShardedParams params_;
    LeaseTable leases_;
    std::uint32_t layoutCrc_ = 0;

    int listenFd_ = -1;
    int port_ = 0;
    std::thread acceptThread_;
    std::thread housekeeper_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> done_{false};

    std::mutex connMutex_;
    std::vector<int> connFds_;
    std::vector<std::thread> connThreads_;

    std::mutex doneMutex_;
    std::condition_variable doneCv_;

    std::atomic<std::uint64_t> pushes_{0};
    std::atomic<std::uint64_t> pushRejects_{0};
    std::uint64_t lastCheckpointSteps_ = 0; ///< housekeeper only
    std::atomic<bool> finalCheckpointWritten_{false};

    obs::TelemetryRegistration telemetry_;

    void acceptMain();
    void connectionMain(int fd);
    void housekeeperMain();
    void markDone();
    bool writeCheckpoint();
    bool restoreOrInitialize();

    void handleHello(int fd, const std::string &payload,
                     std::uint64_t &owned_lease, bool &proto_ok);
    void handlePull(int fd, const std::string &payload,
                    bool &proto_ok);
    void handlePush(int fd, const std::string &payload,
                    bool &proto_ok);
    void handleHeartbeat(int fd, const std::string &payload,
                         bool &proto_ok);
    void handleStats(int fd, bool &proto_ok);
};

} // namespace fa3c::dist

#endif // FA3C_DIST_PS_SERVER_HH
