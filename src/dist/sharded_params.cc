#include "dist/sharded_params.hh"

#include <algorithm>

namespace fa3c::dist {

ShardedParams::ShardedParams(const nn::A3cNetwork &net,
                             const nn::RmspropConfig &rmsprop,
                             float initial_lr,
                             std::uint64_t anneal_steps,
                             int num_shards)
    : net_(net), rmsprop_(rmsprop), initialLr_(initial_lr),
      annealSteps_(anneal_steps), theta_(net.makeParams()),
      rmspropG_(net.makeParams())
{
    const std::size_t total = theta_.size();
    const std::size_t shards = std::clamp<std::size_t>(
        num_shards > 0 ? static_cast<std::size_t>(num_shards) : 1, 1,
        std::max<std::size_t>(total, 1));
    const std::size_t chunk = (total + shards - 1) / shards;
    for (std::size_t s = 0; s < shards; ++s) {
        shards_.emplace_back();
        Shard &shard = shards_.back();
        shard.begin = std::min(s * chunk, total);
        shard.end = std::min(shard.begin + chunk, total);
    }
}

void
ShardedParams::initialize(sim::Rng &rng)
{
    std::unique_lock<std::shared_mutex> epoch(epochMutex_);
    for (const Shard &s : shards_)
        s.mutex.lock();
    net_.initParams(theta_, rng);
    rmspropG_.zero();
    for (auto it = shards_.rbegin(); it != shards_.rend(); ++it)
        it->mutex.unlock();
}

float
ShardedParams::currentLearningRate() const
{
    if (annealSteps_ == 0)
        return initialLr_;
    const std::uint64_t steps = steps_.load(std::memory_order_relaxed);
    if (steps >= annealSteps_)
        return 0.0f;
    const double frac = 1.0 - static_cast<double>(steps) /
                                  static_cast<double>(annealSteps_);
    return static_cast<float>(initialLr_ * frac);
}

void
ShardedParams::snapshot(std::vector<float> &out) const
{
    out.resize(theta_.size());
    const std::span<const float> flat = theta_.flat();
    for (const Shard &s : shards_) {
        std::lock_guard<std::mutex> lock(s.mutex);
        std::copy(flat.begin() + static_cast<std::ptrdiff_t>(s.begin),
                  flat.begin() + static_cast<std::ptrdiff_t>(s.end),
                  out.begin() + static_cast<std::ptrdiff_t>(s.begin));
    }
}

std::uint64_t
ShardedParams::apply(std::span<const float> grads,
                     std::uint64_t steps_consumed)
{
    // Shared: concurrent applies proceed in parallel (disjoint shards
    // never contend), but a checkpoint/restore excludes all of them.
    std::shared_lock<std::shared_mutex> epoch(epochMutex_);
    const float lr = currentLearningRate();
    if (lr > 0.0f) {
        const std::span<float> theta = theta_.flat();
        const std::span<float> g = rmspropG_.flat();
        for (const Shard &s : shards_) {
            if (s.begin == s.end)
                continue;
            std::lock_guard<std::mutex> lock(s.mutex);
            const std::size_t n = s.end - s.begin;
            nn::rmspropApply(theta.subspan(s.begin, n),
                             g.subspan(s.begin, n),
                             grads.subspan(s.begin, n), lr, rmsprop_);
        }
    }
    steps_.fetch_add(steps_consumed, std::memory_order_relaxed);
    return version_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

void
ShardedParams::checkpoint(nn::ParamSet &theta_out, nn::ParamSet &g_out,
                          std::uint64_t &steps_out,
                          std::uint64_t &version_out) const
{
    std::unique_lock<std::shared_mutex> epoch(epochMutex_);
    for (const Shard &s : shards_)
        s.mutex.lock();
    theta_out.copyFrom(theta_);
    g_out.copyFrom(rmspropG_);
    steps_out = steps_.load(std::memory_order_relaxed);
    version_out = version_.load(std::memory_order_relaxed);
    for (auto it = shards_.rbegin(); it != shards_.rend(); ++it)
        it->mutex.unlock();
}

void
ShardedParams::restore(const nn::ParamSet &theta,
                       const nn::ParamSet &g, std::uint64_t steps,
                       std::uint64_t version)
{
    std::unique_lock<std::shared_mutex> epoch(epochMutex_);
    for (const Shard &s : shards_)
        s.mutex.lock();
    theta_.copyFrom(theta);
    rmspropG_.copyFrom(g);
    steps_.store(steps, std::memory_order_relaxed);
    version_.store(version, std::memory_order_release);
    for (auto it = shards_.rbegin(); it != shards_.rend(); ++it)
        it->mutex.unlock();
}

} // namespace fa3c::dist
