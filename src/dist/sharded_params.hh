/**
 * @file
 * The parameter server's sharded global state: theta plus the shared
 * RMSProp statistics g, split into S contiguous shards with one lock
 * each, so gradient pushes arriving on different connection threads
 * update disjoint shards concurrently instead of serializing on one
 * mutex the way the in-process rl::GlobalParams does.
 *
 * Semantics match rl::GlobalParams / fa3c::RmspropModule exactly:
 * per-word g' = rho*g + (1-rho)*d^2, theta' = theta - eta*d/sqrt(g'+
 * eps), with the learning rate linearly annealed over the global step
 * counter. A whole push is applied shard-by-shard under the shard
 * locks and the version counter is bumped once at the end; a
 * concurrent snapshot may therefore mix two adjacent versions across
 * shards — the usual parameter-server relaxation, bounded by the
 * staleness knob at the protocol layer. checkpoint()/restore() take
 * the epoch lock exclusively (pushes hold it shared for the length of
 * one apply), so the durable image can never contain half of an
 * in-flight push: it is a consistent {theta, g, steps, version}
 * quadruple just like the single-process trainers'.
 */

#ifndef FA3C_DIST_SHARDED_PARAMS_HH
#define FA3C_DIST_SHARDED_PARAMS_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "nn/a3c_network.hh"
#include "nn/params.hh"
#include "nn/rmsprop.hh"
#include "sim/rng.hh"

namespace fa3c::dist {

/** Sharded theta + RMSProp g + step/version counters. */
class ShardedParams
{
  public:
    /**
     * @param net          Network defining the parameter layout.
     * @param rmsprop      Constant rho / epsilon.
     * @param initial_lr   eta at step 0.
     * @param anneal_steps Linear decay horizon (0 disables).
     * @param num_shards   Lock granularity (clamped to [1, size]).
     */
    ShardedParams(const nn::A3cNetwork &net,
                  const nn::RmspropConfig &rmsprop, float initial_lr,
                  std::uint64_t anneal_steps, int num_shards);

    /** Initialize theta from @p rng (fan-in uniform), zero g. */
    void initialize(sim::Rng &rng);

    std::size_t paramCount() const { return theta_.size(); }
    const nn::ParamSet &layout() const { return theta_; }
    int numShards() const { return static_cast<int>(shards_.size()); }

    /** Updates applied so far (bumped once per accepted push). */
    std::uint64_t
    version() const
    {
        return version_.load(std::memory_order_acquire);
    }

    /** Environment steps consumed so far. */
    std::uint64_t
    steps() const
    {
        return steps_.load(std::memory_order_relaxed);
    }

    /** The learning rate the next update will use. */
    float currentLearningRate() const;

    /** Copy the current theta into @p out (resized to paramCount).
     * Shards are copied under their own locks; across shards the
     * image may span two adjacent versions (see file comment). */
    void snapshot(std::vector<float> &out) const;

    /**
     * Apply one gradient set through shared RMSProp and advance the
     * step counter by @p steps_consumed.
     *
     * @return The version produced by this update.
     */
    std::uint64_t apply(std::span<const float> grads,
                        std::uint64_t steps_consumed);

    /** Consistent {theta, g, steps, version} image under all shard
     * locks. The ParamSet outputs must have the network's layout. */
    void checkpoint(nn::ParamSet &theta_out, nn::ParamSet &g_out,
                    std::uint64_t &steps_out,
                    std::uint64_t &version_out) const;

    /** Restore a triple captured by checkpoint(), adopting @p version
     * as the update counter (checkpoints store it as `updates`). */
    void restore(const nn::ParamSet &theta, const nn::ParamSet &g,
                 std::uint64_t steps, std::uint64_t version);

  private:
    struct Shard
    {
        std::size_t begin = 0;
        std::size_t end = 0;
        mutable std::mutex mutex;
    };

    const nn::A3cNetwork &net_;
    nn::RmspropConfig rmsprop_;
    float initialLr_;
    std::uint64_t annealSteps_;
    /** Held shared across one whole apply(), exclusively by
     * checkpoint()/restore()/initialize(): per-shard locks alone
     * would let a consistent-image reader overtake an in-flight
     * apply shard by shard and capture half a push. */
    mutable std::shared_mutex epochMutex_;
    nn::ParamSet theta_;
    nn::ParamSet rmspropG_;
    std::deque<Shard> shards_; ///< deque: Shard is not movable
    std::atomic<std::uint64_t> version_{0};
    std::atomic<std::uint64_t> steps_{0};
};

} // namespace fa3c::dist

#endif // FA3C_DIST_SHARDED_PARAMS_HH
