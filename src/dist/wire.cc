#include "dist/wire.hh"

#include "sim/serial.hh"

namespace fa3c::dist::wire {

namespace {

void
writeFloats(sim::ByteWriter &w, const std::vector<float> &v)
{
    w.write(static_cast<std::uint32_t>(v.size()));
    if (!v.empty())
        w.writeRaw(v.data(), v.size() * sizeof(float));
}

/** Read a float run; the count must be exactly 0 or @p expect. */
bool
readFloats(sim::ByteReader &r, std::vector<float> &v,
           std::size_t expect)
{
    std::uint32_t count = 0;
    if (!r.read(count))
        return false;
    if (count != 0 && count != expect)
        return false;
    if (static_cast<std::size_t>(count) * sizeof(float) >
        r.remaining())
        return false;
    v.resize(count);
    return count == 0 ||
           r.readRaw(v.data(), count * sizeof(float));
}

/** Decode must consume the whole payload: trailing bytes mean a
 * mismatched or corrupt frame. */
bool
finish(const sim::ByteReader &r)
{
    return r.ok() && r.remaining() == 0;
}

void
writeTraceCtx(sim::ByteWriter &w, const TraceCtx &t)
{
    w.write(t.traceId);
    w.write(t.spanId);
    w.write(t.sampled);
}

/** Optional trailing trace context: a payload that ends where the
 * pre-trace format did decodes to a zeroed context, so old senders
 * stay compatible with new receivers. */
bool
readTraceCtxTail(sim::ByteReader &r, TraceCtx &t)
{
    if (r.ok() && r.remaining() == 0) {
        t = TraceCtx{};
        return true;
    }
    return r.read(t.traceId) && r.read(t.spanId) && r.read(t.sampled);
}

/** Optional trailing u64 (handshake wall-clock stamps). */
bool
readU64Tail(sim::ByteReader &r, std::uint64_t &v)
{
    if (r.ok() && r.remaining() == 0) {
        v = 0;
        return true;
    }
    return r.read(v);
}

} // namespace

std::uint32_t
layoutCrc(const nn::ParamSet &params)
{
    sim::ByteWriter w;
    for (const auto &seg : params.segments()) {
        w.writeBlob(seg.name);
        w.write(static_cast<std::uint64_t>(seg.offset));
        w.write(static_cast<std::uint64_t>(seg.count));
    }
    return sim::crc32(w.bytes().data(), w.size());
}

void
encodeHello(std::string &out, const Hello &m)
{
    sim::ByteWriter w;
    w.writeBlob(m.workerName);
    w.write(m.paramCount);
    w.write(m.layoutCrc);
    w.write(m.clientUnixUs);
    out = w.bytes();
}

bool
decodeHello(Hello &m, std::string_view payload)
{
    sim::ByteReader r(payload);
    return r.readBlob(m.workerName) && r.read(m.paramCount) &&
           r.read(m.layoutCrc) && readU64Tail(r, m.clientUnixUs) &&
           finish(r);
}

void
encodeWelcome(std::string &out, const Welcome &m)
{
    sim::ByteWriter w;
    w.write(m.workerId);
    w.write(m.leaseTtlMs);
    w.write(m.version);
    w.write(m.steps);
    w.write(m.totalSteps);
    w.write(m.maxStaleness);
    w.write(m.serverUnixUs);
    out = w.bytes();
}

bool
decodeWelcome(Welcome &m, std::string_view payload)
{
    sim::ByteReader r(payload);
    return r.read(m.workerId) && r.read(m.leaseTtlMs) &&
           r.read(m.version) && r.read(m.steps) &&
           r.read(m.totalSteps) && r.read(m.maxStaleness) &&
           readU64Tail(r, m.serverUnixUs) && finish(r);
}

void
encodePull(std::string &out, const Pull &m)
{
    sim::ByteWriter w;
    writeTraceCtx(w, m.trace);
    out = w.bytes();
}

bool
decodePull(Pull &m, std::string_view payload)
{
    // An empty payload is the pre-trace Pull; decode to a zero ctx.
    sim::ByteReader r(payload);
    return readTraceCtxTail(r, m.trace) && finish(r);
}

void
encodeParams(std::string &out, const Params &m)
{
    sim::ByteWriter w;
    w.write(m.version);
    w.write(m.steps);
    w.write(m.stop);
    writeFloats(w, m.theta);
    out = w.bytes();
}

bool
decodeParams(Params &m, std::string_view payload,
             std::size_t expect_count)
{
    sim::ByteReader r(payload);
    return r.read(m.version) && r.read(m.steps) && r.read(m.stop) &&
           readFloats(r, m.theta, expect_count) && finish(r);
}

void
encodePush(std::string &out, const Push &m)
{
    sim::ByteWriter w;
    w.write(m.workerId);
    w.write(m.baseVersion);
    w.write(m.steps);
    w.write(m.wantParams);
    writeFloats(w, m.grads);
    writeTraceCtx(w, m.trace);
    out = w.bytes();
}

bool
decodePush(Push &m, std::string_view payload, std::size_t expect_count)
{
    sim::ByteReader r(payload);
    return r.read(m.workerId) && r.read(m.baseVersion) &&
           r.read(m.steps) && r.read(m.wantParams) &&
           readFloats(r, m.grads, expect_count) &&
           readTraceCtxTail(r, m.trace) && finish(r);
}

void
encodePushAck(std::string &out, const PushAck &m)
{
    sim::ByteWriter w;
    w.write(m.accepted);
    w.write(m.stop);
    w.write(m.version);
    w.write(m.steps);
    w.write(m.staleness);
    writeFloats(w, m.theta);
    out = w.bytes();
}

bool
decodePushAck(PushAck &m, std::string_view payload,
              std::size_t expect_count)
{
    sim::ByteReader r(payload);
    return r.read(m.accepted) && r.read(m.stop) &&
           r.read(m.version) && r.read(m.steps) &&
           r.read(m.staleness) &&
           readFloats(r, m.theta, expect_count) && finish(r);
}

void
encodeHeartbeat(std::string &out, const Heartbeat &m)
{
    sim::ByteWriter w;
    w.write(m.workerId);
    out = w.bytes();
}

bool
decodeHeartbeat(Heartbeat &m, std::string_view payload)
{
    sim::ByteReader r(payload);
    return r.read(m.workerId) && finish(r);
}

void
encodeHeartbeatAck(std::string &out, const HeartbeatAck &m)
{
    sim::ByteWriter w;
    w.write(m.known);
    w.write(m.stop);
    out = w.bytes();
}

bool
decodeHeartbeatAck(HeartbeatAck &m, std::string_view payload)
{
    sim::ByteReader r(payload);
    return r.read(m.known) && r.read(m.stop) && finish(r);
}

void
encodeStatsReply(std::string &out, const StatsReply &m)
{
    sim::ByteWriter w;
    w.write(m.version);
    w.write(m.steps);
    w.write(m.totalSteps);
    w.write(m.activeLeases);
    w.write(m.joined);
    w.write(m.reaped);
    w.write(m.pushes);
    w.write(m.pushRejects);
    out = w.bytes();
}

bool
decodeStatsReply(StatsReply &m, std::string_view payload)
{
    sim::ByteReader r(payload);
    return r.read(m.version) && r.read(m.steps) &&
           r.read(m.totalSteps) && r.read(m.activeLeases) &&
           r.read(m.joined) && r.read(m.reaped) && r.read(m.pushes) &&
           r.read(m.pushRejects) && finish(r);
}

} // namespace fa3c::dist::wire
