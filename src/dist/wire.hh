/**
 * @file
 * The distributed-training wire protocol: messages between a
 * parameter-server process (dist::PsServer) and its worker processes
 * (dist::PsClient / dist::WorkerRunner), carried as net::frame
 * messages (u32 magic, u32 type, u32 length, payload) over TCP.
 *
 * Message flow:
 *
 *     worker                         parameter server
 *       | -- Hello {layout crc} ------> |  validate, grant lease
 *       | <- Welcome {id, ttl, ver} --- |
 *       | -- Pull --------------------> |
 *       | <- Params {ver, theta} ------ |
 *       |   ... rollout + gradients ...
 *       | -- Push {base ver, grads} --> |  staleness check, RMSProp
 *       | <- PushAck {ver, theta} ----- |  (theta when wantParams)
 *       | -- Heartbeat {id} ----------> |  renew lease
 *       | <- HeartbeatAck {stop} ------ |
 *       | -- Bye {id} ----------------> |  release lease
 *
 * Payloads are serialized with sim::ByteWriter/ByteReader, so a
 * truncated or corrupt payload fails to decode instead of reading
 * garbage. Parameter/gradient vectors travel as raw f32 runs with an
 * element-count prefix validated against the receiver's layout.
 *
 * Trace propagation: Pull and Push carry an optional trailing
 * TraceCtx {trace_id, span_id, sampled} so one trace spans
 * worker -> PS -> RMSProp apply. Hello/Welcome exchange wall-clock
 * timestamps (unix µs) for the handshake clock-offset estimate that
 * tools/trace_merge uses to align per-process trace files. All four
 * extensions decode tolerantly: a payload that ends where the old
 * format did yields zeroed fields, so pre-trace peers interoperate
 * in both directions.
 */

#ifndef FA3C_DIST_WIRE_HH
#define FA3C_DIST_WIRE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "nn/params.hh"

namespace fa3c::dist::wire {

/** Protocol magic in every dist frame header. */
inline constexpr std::uint32_t kMagic = 0xFA3CD157;

/** Frames claiming a larger payload are a protocol error. */
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;

/** Message types (the `type` word of the net::FrameHeader). */
enum class Type : std::uint32_t
{
    Hello = 1,
    Welcome,
    Pull,
    Params,
    Push,
    PushAck,
    Heartbeat,
    HeartbeatAck,
    Stats,
    StatsReply,
    Bye,
};

/** Span context carried on Pull/Push frames (0 = no context). */
struct TraceCtx
{
    std::uint64_t traceId = 0;
    std::uint64_t spanId = 0;
    std::uint8_t sampled = 0;
};

/** Worker introduction; the PS validates the parameter layout. */
struct Hello
{
    std::string workerName;
    std::uint64_t paramCount = 0;
    std::uint32_t layoutCrc = 0;
    std::uint64_t clientUnixUs = 0; ///< sender wall clock (0 = old peer)
};

/** Lease grant. workerId == 0 means the hello was rejected (layout
 * mismatch) and the connection is about to close. */
struct Welcome
{
    std::uint64_t workerId = 0;
    std::uint32_t leaseTtlMs = 0;
    std::uint64_t version = 0;
    std::uint64_t steps = 0;
    std::uint64_t totalSteps = 0;
    std::uint64_t maxStaleness = 0;
    std::uint64_t serverUnixUs = 0; ///< PS wall clock (0 = old peer)
};

/** Parameter fetch; carries only the caller's trace context. */
struct Pull
{
    TraceCtx trace;
};

/** Full parameter image at one version. */
struct Params
{
    std::uint64_t version = 0;
    std::uint64_t steps = 0;
    std::uint8_t stop = 0; ///< PS reached totalSteps; finish up
    std::vector<float> theta;
};

/** One training task's summed gradients. */
struct Push
{
    std::uint64_t workerId = 0;
    std::uint64_t baseVersion = 0; ///< version the rollout ran on
    std::uint64_t steps = 0;       ///< env steps consumed
    std::uint8_t wantParams = 0;   ///< piggyback fresh theta on the ack
    std::vector<float> grads;
    TraceCtx trace; ///< optional trailing trace context
};

/** Outcome of a Push. On rejection (staleness bound exceeded or
 * unknown lease) the gradients were discarded; theta still rides
 * along when wantParams was set, so the worker resyncs in the same
 * round trip. */
struct PushAck
{
    std::uint8_t accepted = 0;
    std::uint8_t stop = 0;
    std::uint64_t version = 0;
    std::uint64_t steps = 0;
    std::uint64_t staleness = 0; ///< version - baseVersion at arrival
    std::vector<float> theta;    ///< empty unless wantParams
};

struct Heartbeat
{
    std::uint64_t workerId = 0;
};

/** known == 0 tells the worker its lease was reaped (it should
 * re-Hello); stop mirrors Params::stop. */
struct HeartbeatAck
{
    std::uint8_t known = 0;
    std::uint8_t stop = 0;
};

/** PS counters for tests, benches, and the CLI. */
struct StatsReply
{
    std::uint64_t version = 0;
    std::uint64_t steps = 0;
    std::uint64_t totalSteps = 0;
    std::uint32_t activeLeases = 0;
    std::uint64_t joined = 0;
    std::uint64_t reaped = 0;
    std::uint64_t pushes = 0;
    std::uint64_t pushRejects = 0;
};

/** Layout fingerprint a Hello carries: CRC32 over the segment table
 * (names, offsets, counts), so mismatched networks are refused at
 * join time instead of corrupting the PS state. */
std::uint32_t layoutCrc(const nn::ParamSet &params);

void encodeHello(std::string &out, const Hello &m);
bool decodeHello(Hello &m, std::string_view payload);

void encodeWelcome(std::string &out, const Welcome &m);
bool decodeWelcome(Welcome &m, std::string_view payload);

void encodePull(std::string &out, const Pull &m);
bool decodePull(Pull &m, std::string_view payload);

void encodeParams(std::string &out, const Params &m);
bool decodeParams(Params &m, std::string_view payload,
                  std::size_t expect_count);

void encodePush(std::string &out, const Push &m);
bool decodePush(Push &m, std::string_view payload,
                std::size_t expect_count);

void encodePushAck(std::string &out, const PushAck &m);
bool decodePushAck(PushAck &m, std::string_view payload,
                   std::size_t expect_count);

void encodeHeartbeat(std::string &out, const Heartbeat &m);
bool decodeHeartbeat(Heartbeat &m, std::string_view payload);

void encodeHeartbeatAck(std::string &out, const HeartbeatAck &m);
bool decodeHeartbeatAck(HeartbeatAck &m, std::string_view payload);

void encodeStatsReply(std::string &out, const StatsReply &m);
bool decodeStatsReply(StatsReply &m, std::string_view payload);

} // namespace fa3c::dist::wire

#endif // FA3C_DIST_WIRE_HH
