#include "dist/worker_runner.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "env/environment.hh"
#include "env/session.hh"
#include "obs/metrics.hh"
#include "obs/prometheus.hh"
#include "obs/span.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

namespace fa3c::dist {

namespace {

using Clock = std::chrono::steady_clock;

void
sleepMs(std::uint32_t ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::uint64_t
nowUnixUs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

wire::TraceCtx
toWire(const obs::SpanContext &ctx)
{
    wire::TraceCtx t;
    t.traceId = ctx.trace;
    t.spanId = ctx.span;
    t.sampled = ctx.sampled ? 1 : 0;
    return t;
}

} // namespace

// ---------------------------------------------------------------------
// RemoteParams

RemoteParams::RemoteParams(const nn::A3cNetwork &net, std::string host,
                           int port, std::string worker_name)
    : net_(net), host_(std::move(host)), port_(port),
      name_(std::move(worker_name)), cache_(net.makeParams())
{
}

bool
RemoteParams::joinLocked()
{
    wire::Hello hello;
    hello.workerName = name_;
    hello.paramCount = cache_.size();
    hello.layoutCrc = wire::layoutCrc(cache_);
    hello.clientUnixUs = nowUnixUs();
    wire::Welcome welcome;
    const std::uint64_t t_send = hello.clientUnixUs;
    if (!client_.hello(hello, welcome))
        return false;
    const std::uint64_t t_recv = nowUnixUs();
    if (welcome.serverUnixUs != 0) {
        // Cristian-style offset estimate: the PS stamped its Welcome
        // somewhere inside [t_send, t_recv]; assume the midpoint.
        // Positive offset = this host's clock runs ahead of the PS.
        const double mid =
            (static_cast<double>(t_send) +
             static_cast<double>(t_recv)) /
            2.0;
        const double offset =
            mid - static_cast<double>(welcome.serverUnixUs);
        obs::metrics().sample("dist", "clock_offset_us", offset);
        if (auto *tw = obs::trace()) {
            tw->setClockOffsetUs(offset);
            tw->setProcessLabel(name_);
        }
    }
    const auto pull_span = obs::rootSpan();
    const auto pull_t0 = Clock::now();
    wire::Params params;
    if (!client_.pull(params, cache_.size(), toWire(pull_span)) ||
        params.theta.size() != cache_.size())
        return false;
    if (pull_span.sampled) {
        const std::array<obs::TraceArg, 1> args{
            {{"version", static_cast<double>(params.version)}}};
        obs::emitSpan(pull_span, "dist.worker", "worker.pull",
                      pull_t0, Clock::now(), args);
    }
    std::copy(params.theta.begin(), params.theta.end(),
              cache_.flat().begin());
    cacheVersion_ = params.version;
    leaseTtlMs_ = welcome.leaseTtlMs;
    workerId_.store(welcome.workerId, std::memory_order_release);
    lastSteps_.store(params.steps, std::memory_order_relaxed);
    if (params.stop)
        stop_.store(true, std::memory_order_release);
    joined_ = true;
    return true;
}

bool
RemoteParams::join()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (joined_)
        return true;
    if (!client_.connected() && !client_.connect(host_, port_))
        return false;
    return joinLocked();
}

bool
RemoteParams::rejoinLocked()
{
    joined_ = false;
    std::uint32_t backoff_ms = 50;
    while (!stop_.load(std::memory_order_acquire)) {
        client_.close();
        if (client_.connect(host_, port_) && joinLocked()) {
            FA3C_INFORM("dist: worker '", name_, "' rejoined as #",
                        workerId_.load(std::memory_order_relaxed),
                        " at version ", cacheVersion_);
            return true;
        }
        sleepMs(backoff_ms);
        backoff_ms = std::min<std::uint32_t>(backoff_ms * 2, 1000);
    }
    return false;
}

void
RemoteParams::snapshot(nn::ParamSet &local)
{
    std::lock_guard<std::mutex> lock(mutex_);
    local.copyFrom(cache_);
}

void
RemoteParams::applyGradients(const nn::ParamSet &grads,
                             std::uint64_t steps_consumed)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_.load(std::memory_order_acquire))
        return;

    wire::Push push;
    // The gradients were computed against the cached theta; the base
    // version is pinned here and survives rejoins, so the PS always
    // sees honest staleness accounting.
    push.baseVersion = cacheVersion_;
    push.steps = steps_consumed;
    push.wantParams = 1;
    const std::span<const float> flat = grads.flat();
    push.grads.assign(flat.begin(), flat.end());

    auto &m = obs::metrics();
    // One root span per logical push: the PS parents its ps.apply
    // under it, so the trace crosses the process boundary. Retries
    // reuse the context — they are the same logical operation.
    const auto push_span = obs::rootSpan();
    push.trace = toWire(push_span);
    for (;;) {
        if (stop_.load(std::memory_order_acquire))
            return;
        if (!joined_ && !rejoinLocked())
            return;
        push.workerId = workerId_.load(std::memory_order_relaxed);
        wire::PushAck ack;
        const auto t0 = Clock::now();
        if (!client_.push(push, ack, cache_.size())) {
            joined_ = false; // transport died; rejoin and retry
            continue;
        }
        const auto t1 = Clock::now();
        if (push_span.sampled) {
            const std::array<obs::TraceArg, 2> args{
                {{"accepted", static_cast<double>(ack.accepted)},
                 {"steps",
                  static_cast<double>(steps_consumed)}}};
            obs::emitSpan(push_span, "dist.worker", "worker.push",
                          t0, t1, args);
        }
        if (m.enabled()) {
            m.count("dist", "worker_pushes");
            m.count("dist", "worker_steps", steps_consumed);
            m.sample("dist", "push_rtt_us",
                     std::chrono::duration<double, std::micro>(t1 -
                                                               t0)
                         .count());
            if (ack.staleness !=
                std::numeric_limits<std::uint64_t>::max())
                m.sample("dist", "staleness",
                         static_cast<double>(ack.staleness));
        }
        if (ack.accepted == 0 &&
            ack.staleness ==
                std::numeric_limits<std::uint64_t>::max()) {
            // Lease reaped (we were presumed dead). Re-Hello on the
            // same connection and push the same gradients again.
            FA3C_WARN("dist: worker '", name_,
                      "' lease lost; re-joining");
            if (!joinLocked())
                joined_ = false;
            continue;
        }
        if (ack.accepted == 0)
            staleRejects_.fetch_add(1, std::memory_order_relaxed);
        if (!ack.theta.empty()) {
            // Parameter-delta norm per round trip: how far the fleet
            // moved theta since this worker's last sync (its own
            // update plus any interleaved peers') — a cheap
            // divergence signal for the aggregator's health view.
            if (m.enabled()) {
                const std::span<const float> old = cache_.flat();
                double sumsq = 0.0;
                for (std::size_t i = 0; i < old.size(); ++i) {
                    const double d =
                        static_cast<double>(ack.theta[i]) -
                        static_cast<double>(old[i]);
                    sumsq += d * d;
                }
                m.sample("dist", "update_norm", std::sqrt(sumsq));
            }
            std::copy(ack.theta.begin(), ack.theta.end(),
                      cache_.flat().begin());
            cacheVersion_ = ack.version;
        }
        lastSteps_.store(ack.steps, std::memory_order_relaxed);
        if (ack.stop)
            stop_.store(true, std::memory_order_release);
        return;
    }
}

std::uint64_t
RemoteParams::globalSteps() const
{
    return lastSteps_.load(std::memory_order_relaxed);
}

void
RemoteParams::abort()
{
    stop_.store(true, std::memory_order_release);
}

std::uint64_t
RemoteParams::version() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cacheVersion_;
}

std::uint32_t
RemoteParams::leaseTtlMs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return leaseTtlMs_;
}

void
RemoteParams::leave()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (joined_) {
        client_.bye(workerId_.load(std::memory_order_relaxed));
        joined_ = false;
    }
}

// ---------------------------------------------------------------------
// WorkerRunner

WorkerRunner::WorkerRunner(
    const nn::A3cNetwork &net, const WorkerConfig &cfg,
    rl::A3cTrainer::BackendFactory backend_factory,
    rl::A3cTrainer::SessionFactory session_factory)
    : net_(net), cfg_(cfg),
      remote_(net, cfg.host, cfg.port, cfg.name),
      backendFactory_(std::move(backend_factory)),
      sessionFactory_(std::move(session_factory))
{
    if (!backendFactory_)
        backendFactory_ = [this](int) {
            return rl::makeDnnBackend(cfg_.a3c.backend, net_);
        };
}

WorkerRunner::~WorkerRunner()
{
    requestStop();
}

void
WorkerRunner::requestStop()
{
    stopRequested_.store(true, std::memory_order_release);
    remote_.abort();
}

void
WorkerRunner::heartbeatMain()
{
    PsClient hb;
    const std::uint32_t ttl = remote_.leaseTtlMs();
    const std::uint32_t period =
        cfg_.heartbeatMs > 0
            ? cfg_.heartbeatMs
            : std::max<std::uint32_t>(ttl > 0 ? ttl / 3 : 200, 20);
    while (!stopRequested_.load(std::memory_order_acquire) &&
           !remote_.stopped()) {
        const std::uint64_t id = remote_.workerId();
        if (id != 0) {
            if (!hb.connected())
                (void)hb.connect(cfg_.host, cfg_.port);
            wire::HeartbeatAck ack;
            if (hb.connected() && hb.heartbeat(id, ack) && ack.stop)
                remote_.abort();
        }
        sleepMs(period);
    }
}

bool
WorkerRunner::run()
{
    // The PS may still be starting; keep knocking.
    int attempts = 0;
    while (!remote_.join()) {
        if (stopRequested_.load(std::memory_order_acquire) ||
            ++attempts >= cfg_.joinAttempts) {
            FA3C_WARN("dist: worker '", cfg_.name,
                      "' failed to join ", cfg_.host, ":", cfg_.port,
                      " after ", attempts, " attempts");
            return false;
        }
        sleepMs(250);
    }
    FA3C_INFORM("dist: worker '", cfg_.name, "' joined as #",
                remote_.workerId(), " (", cfg_.a3c.numAgents,
                " agents)");

    // Per-worker identity gauges for the fleet aggregator (the dist
    // histogram/counter families ride along via writeRegistry).
    telemetry_ = obs::TelemetryRegistration(
        obs::telemetry(),
        [this](obs::PromWriter &w) {
            w.gauge("fa3c_dist_worker_id",
                    static_cast<double>(remote_.workerId()),
                    "lease id granted by the parameter server");
            w.counter("fa3c_dist_worker_routines_total", routines(),
                      "training routines completed by this worker");
            w.counter("fa3c_dist_worker_stale_rejects_total",
                      remote_.staleRejects(),
                      "pushes the PS rejected for staleness");
        },
        "dist-worker",
        [this](std::string &detail) {
            detail = "worker=" + cfg_.name +
                     " id=" + std::to_string(remote_.workerId());
            return remote_.workerId() != 0;
        });

    rl::A3cTrainer::SessionFactory session_factory = sessionFactory_;
    if (!session_factory) {
        const auto maybe_game = env::tryGameFromName(cfg_.game);
        if (!maybe_game) {
            FA3C_WARN("dist: unknown game '", cfg_.game, "'");
            return false;
        }
        const env::GameId game = *maybe_game;
        session_factory = [this,
                           game](int agent_id)
            -> std::unique_ptr<env::AtariSession> {
            const nn::NetConfig &nc = net_.config();
            env::SessionConfig scfg;
            scfg.frameStack = nc.inChannels;
            scfg.obsHeight = nc.inHeight;
            scfg.obsWidth = nc.inWidth;
            const std::uint64_t base =
                cfg_.a3c.seed * 1000003ull +
                static_cast<std::uint64_t>(agent_id);
            return std::make_unique<env::AtariSession>(
                env::makeEnvironment(game, base + 11), scfg,
                base + 13);
        };
    }

    std::vector<std::unique_ptr<rl::A3cAgent>> agents;
    agents.reserve(static_cast<std::size_t>(cfg_.a3c.numAgents));
    for (int i = 0; i < cfg_.a3c.numAgents; ++i)
        agents.push_back(std::make_unique<rl::A3cAgent>(
            i, cfg_.a3c, backendFactory_(i), session_factory(i),
            remote_, scores_, diagnostics_));

    std::thread heartbeat([this] { heartbeatMain(); });

    auto should_stop = [this] {
        if (stopRequested_.load(std::memory_order_acquire) ||
            remote_.stopped())
            return true;
        return cfg_.maxRoutines > 0 &&
               routines_.load(std::memory_order_relaxed) >=
                   cfg_.maxRoutines;
    };

    std::vector<std::thread> threads;
    threads.reserve(agents.size());
    for (auto &agent : agents)
        threads.emplace_back([this, &agent, &should_stop] {
            while (!should_stop()) {
                agent->runRoutine();
                routines_.fetch_add(1, std::memory_order_relaxed);
            }
        });
    for (auto &t : threads)
        t.join();

    remote_.abort(); // wake the heartbeat loop promptly
    heartbeat.join();
    telemetry_.reset();
    remote_.leave();
    return true;
}

} // namespace fa3c::dist
