#include "dist/worker_runner.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "env/environment.hh"
#include "env/session.hh"
#include "obs/metrics.hh"
#include "sim/logging.hh"

namespace fa3c::dist {

namespace {

using Clock = std::chrono::steady_clock;

void
sleepMs(std::uint32_t ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

} // namespace

// ---------------------------------------------------------------------
// RemoteParams

RemoteParams::RemoteParams(const nn::A3cNetwork &net, std::string host,
                           int port, std::string worker_name)
    : net_(net), host_(std::move(host)), port_(port),
      name_(std::move(worker_name)), cache_(net.makeParams())
{
}

bool
RemoteParams::joinLocked()
{
    wire::Hello hello;
    hello.workerName = name_;
    hello.paramCount = cache_.size();
    hello.layoutCrc = wire::layoutCrc(cache_);
    wire::Welcome welcome;
    if (!client_.hello(hello, welcome))
        return false;
    wire::Params params;
    if (!client_.pull(params, cache_.size()) ||
        params.theta.size() != cache_.size())
        return false;
    std::copy(params.theta.begin(), params.theta.end(),
              cache_.flat().begin());
    cacheVersion_ = params.version;
    leaseTtlMs_ = welcome.leaseTtlMs;
    workerId_.store(welcome.workerId, std::memory_order_release);
    lastSteps_.store(params.steps, std::memory_order_relaxed);
    if (params.stop)
        stop_.store(true, std::memory_order_release);
    joined_ = true;
    return true;
}

bool
RemoteParams::join()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (joined_)
        return true;
    if (!client_.connected() && !client_.connect(host_, port_))
        return false;
    return joinLocked();
}

bool
RemoteParams::rejoinLocked()
{
    joined_ = false;
    std::uint32_t backoff_ms = 50;
    while (!stop_.load(std::memory_order_acquire)) {
        client_.close();
        if (client_.connect(host_, port_) && joinLocked()) {
            FA3C_INFORM("dist: worker '", name_, "' rejoined as #",
                        workerId_.load(std::memory_order_relaxed),
                        " at version ", cacheVersion_);
            return true;
        }
        sleepMs(backoff_ms);
        backoff_ms = std::min<std::uint32_t>(backoff_ms * 2, 1000);
    }
    return false;
}

void
RemoteParams::snapshot(nn::ParamSet &local)
{
    std::lock_guard<std::mutex> lock(mutex_);
    local.copyFrom(cache_);
}

void
RemoteParams::applyGradients(const nn::ParamSet &grads,
                             std::uint64_t steps_consumed)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_.load(std::memory_order_acquire))
        return;

    wire::Push push;
    // The gradients were computed against the cached theta; the base
    // version is pinned here and survives rejoins, so the PS always
    // sees honest staleness accounting.
    push.baseVersion = cacheVersion_;
    push.steps = steps_consumed;
    push.wantParams = 1;
    const std::span<const float> flat = grads.flat();
    push.grads.assign(flat.begin(), flat.end());

    auto &m = obs::metrics();
    for (;;) {
        if (stop_.load(std::memory_order_acquire))
            return;
        if (!joined_ && !rejoinLocked())
            return;
        push.workerId = workerId_.load(std::memory_order_relaxed);
        wire::PushAck ack;
        const auto t0 = Clock::now();
        if (!client_.push(push, ack, cache_.size())) {
            joined_ = false; // transport died; rejoin and retry
            continue;
        }
        if (m.enabled()) {
            m.count("dist", "worker_pushes");
            m.sample("dist", "push_rtt_us",
                     std::chrono::duration<double, std::micro>(
                         Clock::now() - t0)
                         .count());
        }
        if (ack.accepted == 0 &&
            ack.staleness ==
                std::numeric_limits<std::uint64_t>::max()) {
            // Lease reaped (we were presumed dead). Re-Hello on the
            // same connection and push the same gradients again.
            FA3C_WARN("dist: worker '", name_,
                      "' lease lost; re-joining");
            if (!joinLocked())
                joined_ = false;
            continue;
        }
        if (ack.accepted == 0)
            staleRejects_.fetch_add(1, std::memory_order_relaxed);
        if (!ack.theta.empty()) {
            std::copy(ack.theta.begin(), ack.theta.end(),
                      cache_.flat().begin());
            cacheVersion_ = ack.version;
        }
        lastSteps_.store(ack.steps, std::memory_order_relaxed);
        if (ack.stop)
            stop_.store(true, std::memory_order_release);
        return;
    }
}

std::uint64_t
RemoteParams::globalSteps() const
{
    return lastSteps_.load(std::memory_order_relaxed);
}

void
RemoteParams::abort()
{
    stop_.store(true, std::memory_order_release);
}

std::uint64_t
RemoteParams::version() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cacheVersion_;
}

std::uint32_t
RemoteParams::leaseTtlMs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return leaseTtlMs_;
}

void
RemoteParams::leave()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (joined_) {
        client_.bye(workerId_.load(std::memory_order_relaxed));
        joined_ = false;
    }
}

// ---------------------------------------------------------------------
// WorkerRunner

WorkerRunner::WorkerRunner(
    const nn::A3cNetwork &net, const WorkerConfig &cfg,
    rl::A3cTrainer::BackendFactory backend_factory,
    rl::A3cTrainer::SessionFactory session_factory)
    : net_(net), cfg_(cfg),
      remote_(net, cfg.host, cfg.port, cfg.name),
      backendFactory_(std::move(backend_factory)),
      sessionFactory_(std::move(session_factory))
{
    if (!backendFactory_)
        backendFactory_ = [this](int) {
            return rl::makeDnnBackend(cfg_.a3c.backend, net_);
        };
}

WorkerRunner::~WorkerRunner()
{
    requestStop();
}

void
WorkerRunner::requestStop()
{
    stopRequested_.store(true, std::memory_order_release);
    remote_.abort();
}

void
WorkerRunner::heartbeatMain()
{
    PsClient hb;
    const std::uint32_t ttl = remote_.leaseTtlMs();
    const std::uint32_t period =
        cfg_.heartbeatMs > 0
            ? cfg_.heartbeatMs
            : std::max<std::uint32_t>(ttl > 0 ? ttl / 3 : 200, 20);
    while (!stopRequested_.load(std::memory_order_acquire) &&
           !remote_.stopped()) {
        const std::uint64_t id = remote_.workerId();
        if (id != 0) {
            if (!hb.connected())
                (void)hb.connect(cfg_.host, cfg_.port);
            wire::HeartbeatAck ack;
            if (hb.connected() && hb.heartbeat(id, ack) && ack.stop)
                remote_.abort();
        }
        sleepMs(period);
    }
}

bool
WorkerRunner::run()
{
    // The PS may still be starting; keep knocking.
    int attempts = 0;
    while (!remote_.join()) {
        if (stopRequested_.load(std::memory_order_acquire) ||
            ++attempts >= cfg_.joinAttempts) {
            FA3C_WARN("dist: worker '", cfg_.name,
                      "' failed to join ", cfg_.host, ":", cfg_.port,
                      " after ", attempts, " attempts");
            return false;
        }
        sleepMs(250);
    }
    FA3C_INFORM("dist: worker '", cfg_.name, "' joined as #",
                remote_.workerId(), " (", cfg_.a3c.numAgents,
                " agents)");

    rl::A3cTrainer::SessionFactory session_factory = sessionFactory_;
    if (!session_factory) {
        const auto maybe_game = env::tryGameFromName(cfg_.game);
        if (!maybe_game) {
            FA3C_WARN("dist: unknown game '", cfg_.game, "'");
            return false;
        }
        const env::GameId game = *maybe_game;
        session_factory = [this,
                           game](int agent_id)
            -> std::unique_ptr<env::AtariSession> {
            const nn::NetConfig &nc = net_.config();
            env::SessionConfig scfg;
            scfg.frameStack = nc.inChannels;
            scfg.obsHeight = nc.inHeight;
            scfg.obsWidth = nc.inWidth;
            const std::uint64_t base =
                cfg_.a3c.seed * 1000003ull +
                static_cast<std::uint64_t>(agent_id);
            return std::make_unique<env::AtariSession>(
                env::makeEnvironment(game, base + 11), scfg,
                base + 13);
        };
    }

    std::vector<std::unique_ptr<rl::A3cAgent>> agents;
    agents.reserve(static_cast<std::size_t>(cfg_.a3c.numAgents));
    for (int i = 0; i < cfg_.a3c.numAgents; ++i)
        agents.push_back(std::make_unique<rl::A3cAgent>(
            i, cfg_.a3c, backendFactory_(i), session_factory(i),
            remote_, scores_, diagnostics_));

    std::thread heartbeat([this] { heartbeatMain(); });

    auto should_stop = [this] {
        if (stopRequested_.load(std::memory_order_acquire) ||
            remote_.stopped())
            return true;
        return cfg_.maxRoutines > 0 &&
               routines_.load(std::memory_order_relaxed) >=
                   cfg_.maxRoutines;
    };

    std::vector<std::thread> threads;
    threads.reserve(agents.size());
    for (auto &agent : agents)
        threads.emplace_back([this, &agent, &should_stop] {
            while (!should_stop()) {
                agent->runRoutine();
                routines_.fetch_add(1, std::memory_order_relaxed);
            }
        });
    for (auto &t : threads)
        t.join();

    remote_.abort(); // wake the heartbeat loop promptly
    heartbeat.join();
    remote_.leave();
    return true;
}

} // namespace fa3c::dist
