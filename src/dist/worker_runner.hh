/**
 * @file
 * The worker side of distributed A3C.
 *
 * RemoteParams is a rl::ParamService backed by a PsClient instead of
 * the in-process rl::GlobalParams: snapshot() serves the locally
 * cached theta, and applyGradients() pushes the gradients to the PS
 * with wantParams set, so the fresh theta rides back on the ack and
 * the next parameter-sync task sees it — one round trip per routine,
 * exactly the cadence of the paper's in-process global update. The
 * unmodified rl::A3cAgent runs against it; the agent cannot tell a
 * remote parameter plane from a local one.
 *
 * A WorkerRunner owns the whole worker process body: it joins the PS
 * (retrying while the PS is still coming up), builds numAgents A3C
 * agents over the cached parameter plane, runs them on one thread
 * each, and keeps the lease alive from a dedicated heartbeat
 * connection. Transport failures and lease reaps are handled by
 * reconnect + re-Hello with backoff — the elastic-rejoin path — so a
 * worker can outlive a PS restart and a replacement worker can join a
 * running fleet cold.
 */

#ifndef FA3C_DIST_WORKER_RUNNER_HH
#define FA3C_DIST_WORKER_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/ps_client.hh"
#include "dist/wire.hh"
#include "nn/a3c_network.hh"
#include "nn/params.hh"
#include "obs/telemetry.hh"
#include "rl/a3c.hh"
#include "rl/param_service.hh"
#include "rl/score_log.hh"

namespace fa3c::dist {

/** rl::ParamService proxy for a remote parameter server. */
class RemoteParams : public rl::ParamService
{
  public:
    RemoteParams(const nn::A3cNetwork &net, std::string host,
                 int port, std::string worker_name);

    /**
     * Connect, Hello, and Pull the initial theta. @return false when
     * the PS is unreachable or rejects the layout; call again to
     * retry (WorkerRunner does, with backoff).
     */
    bool join();

    /** Serve the cached theta (the last ack's image). */
    void snapshot(nn::ParamSet &local) override;

    /**
     * Push @p grads to the PS and refresh the cache from the ack.
     * Handles reconnect + re-Hello internally; gradients are dropped
     * (never silently re-applied) when the transport fails mid-push.
     */
    void applyGradients(const nn::ParamSet &grads,
                        std::uint64_t steps_consumed) override;

    /** Global steps as of the last ack (lr annealing, progress). */
    std::uint64_t globalSteps() const override;

    /** True once the PS said stop (or abort() was called). */
    bool
    stopped() const
    {
        return stop_.load(std::memory_order_acquire);
    }

    /** Make every blocked retry loop give up (local shutdown). */
    void abort();

    /** Release the lease with a Bye and close (clean worker exit). */
    void leave();

    /** Current lease id (0 while unjoined); heartbeats quote it. */
    std::uint64_t
    workerId() const
    {
        return workerId_.load(std::memory_order_acquire);
    }

    /** Version of the cached theta (tests, staleness probes). */
    std::uint64_t version() const;

    /** Lease TTL granted by the Welcome (drives heartbeat cadence). */
    std::uint32_t leaseTtlMs() const;

    /** Pushes the PS rejected for staleness (local counter). */
    std::uint64_t
    staleRejects() const
    {
        return staleRejects_.load(std::memory_order_relaxed);
    }

  private:
    const nn::A3cNetwork &net_;
    std::string host_;
    int port_;
    std::string name_;

    // client_ + cache; every RPC on the push connection holds this.
    mutable std::mutex mutex_;
    PsClient client_;
    bool joined_ = false;
    nn::ParamSet cache_;
    std::uint64_t cacheVersion_ = 0;
    std::uint32_t leaseTtlMs_ = 0;

    std::atomic<std::uint64_t> workerId_{0};
    std::atomic<std::uint64_t> lastSteps_{0};
    std::atomic<std::uint64_t> staleRejects_{0};
    std::atomic<bool> stop_{false};

    /** Hello + initial Pull on an open connection (mutex_ held). */
    bool joinLocked();
    /** Reconnect + re-Hello with backoff (mutex_ held). */
    bool rejoinLocked();
};

/** One worker process: agents + heartbeat over a RemoteParams. */
struct WorkerConfig
{
    std::string host = "127.0.0.1";
    int port = 0;
    std::string name = "worker";

    /** Rollout hyper-parameters. totalSteps/checkpointPath are
     * ignored — run length and durability belong to the PS. */
    rl::A3cConfig a3c;

    std::string game = "pong";

    /** Give up joining after this many attempts (250 ms apart). */
    int joinAttempts = 40;

    /** Heartbeat period; 0 derives ttl/3 from the Welcome. */
    std::uint32_t heartbeatMs = 0;

    /** Stop after this many routines across all agents (0 = run
     * until the PS says stop). Tests and benches bound runs here. */
    std::uint64_t maxRoutines = 0;
};

class WorkerRunner
{
  public:
    /**
     * @param backend_factory Per-agent DNN executor; {} builds
     *                        cfg.a3c.backend via makeDnnBackend.
     * @param session_factory Per-agent environment; {} builds
     *                        cfg.game Atari sessions seeded per agent.
     */
    WorkerRunner(const nn::A3cNetwork &net, const WorkerConfig &cfg,
                 rl::A3cTrainer::BackendFactory backend_factory = {},
                 rl::A3cTrainer::SessionFactory session_factory = {});
    ~WorkerRunner();

    WorkerRunner(const WorkerRunner &) = delete;
    WorkerRunner &operator=(const WorkerRunner &) = delete;

    /**
     * Join the PS and train until it says stop (or maxRoutines).
     * Blocking; @return false when the worker never managed to join.
     */
    bool run();

    /** Ask a concurrent run() to wind down. */
    void requestStop();

    const rl::ScoreLog &scores() const { return scores_; }
    std::uint64_t
    routines() const
    {
        return routines_.load(std::memory_order_relaxed);
    }
    RemoteParams &remote() { return remote_; }

  private:
    const nn::A3cNetwork &net_;
    WorkerConfig cfg_;
    RemoteParams remote_;
    rl::ScoreLog scores_;
    rl::TrainingDiagnostics diagnostics_;
    rl::A3cTrainer::BackendFactory backendFactory_;
    rl::A3cTrainer::SessionFactory sessionFactory_;
    std::atomic<std::uint64_t> routines_{0};
    std::atomic<bool> stopRequested_{false};
    obs::TelemetryRegistration telemetry_;

    void heartbeatMain();
};

} // namespace fa3c::dist

#endif // FA3C_DIST_WORKER_RUNNER_HH
