#include "env/ascii.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fa3c::env {

std::string
toAscii(const Frame &frame, int pool)
{
    FA3C_ASSERT(pool > 0 && Frame::width % pool == 0 &&
                    Frame::height % std::min(Frame::height, 2 * pool) ==
                        0,
                "toAscii pool must divide the frame");
    static constexpr char ramp[] = {' ', '.', ':', '+', '*', '#', '@'};
    constexpr int levels = static_cast<int>(sizeof(ramp)) - 1;

    // Terminal cells are ~2x taller than wide: pool twice as much
    // vertically so the aspect ratio survives.
    const int pool_y = std::min(Frame::height, 2 * pool);
    const int pool_x = pool;
    const int rows = Frame::height / pool_y;
    const int cols = Frame::width / pool_x;

    std::string out;
    out.reserve(static_cast<std::size_t>(rows * (cols + 1)));
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            float acc = 0.0f;
            for (int dy = 0; dy < pool_y; ++dy)
                for (int dx = 0; dx < pool_x; ++dx)
                    acc += frame.at(r * pool_y + dy, c * pool_x + dx);
            const float mean = acc / static_cast<float>(pool_y * pool_x);
            const int level = std::clamp(
                static_cast<int>(mean * levels), 0, levels);
            out.push_back(ramp[level]);
        }
        out.push_back('\n');
    }
    return out;
}

} // namespace fa3c::env
