/**
 * @file
 * ASCII rendering of game frames: a human-readable view of what the
 * DNN sees, for debugging environments and inspecting trained
 * policies from a terminal.
 */

#ifndef FA3C_ENV_ASCII_HH
#define FA3C_ENV_ASCII_HH

#include <string>

#include "env/frame.hh"

namespace fa3c::env {

/**
 * Render @p frame as text.
 *
 * Pixels are average-pooled by @p pool in both axes (pool=2 turns the
 * 84x84 frame into 42 columns x 21 rows using half-height cells) and
 * mapped onto a ramp of shade characters.
 *
 * @param pool Pooling factor; must divide 84.
 */
std::string toAscii(const Frame &frame, int pool = 2);

} // namespace fa3c::env

#endif // FA3C_ENV_ASCII_HH
