#include "env/environment.hh"

#include "env/games.hh"
#include "sim/logging.hh"

namespace fa3c::env {

const char *
gameName(GameId game)
{
    switch (game) {
      case GameId::BeamRider: return "beam_rider";
      case GameId::Breakout: return "breakout";
      case GameId::Pong: return "pong";
      case GameId::Qbert: return "qbert";
      case GameId::Seaquest: return "seaquest";
      case GameId::SpaceInvaders: return "space_invaders";
    }
    FA3C_PANIC("bad GameId ", static_cast<int>(game));
}

GameId
gameFromName(const std::string &name)
{
    if (const auto id = tryGameFromName(name))
        return *id;
    FA3C_PANIC("unknown game '", name, "'");
}

std::optional<GameId>
tryGameFromName(const std::string &name)
{
    for (GameId id : allGames)
        if (name == gameName(id))
            return id;
    return std::nullopt;
}

std::string
gameNameList(const std::string &sep)
{
    std::string out;
    for (GameId id : allGames) {
        if (!out.empty())
            out += sep;
        out += gameName(id);
    }
    return out;
}

std::unique_ptr<Environment>
makeEnvironment(GameId game, std::uint64_t seed)
{
    switch (game) {
      case GameId::BeamRider: return makeBeamRider(seed);
      case GameId::Breakout: return makeBreakout(seed);
      case GameId::Pong: return makePong(seed);
      case GameId::Qbert: return makeQbert(seed);
      case GameId::Seaquest: return makeSeaquest(seed);
      case GameId::SpaceInvaders: return makeSpaceInvaders(seed);
    }
    FA3C_PANIC("bad GameId ", static_cast<int>(game));
}

} // namespace fa3c::env
