/**
 * @file
 * The environment interface the A3C agents interact with, mirroring
 * the Arcade Learning Environment's agent-facing API (reset / act /
 * screen / game-over), plus the factory for the six synthetic games
 * standing in for the paper's six Atari 2600 titles.
 */

#ifndef FA3C_ENV_ENVIRONMENT_HH
#define FA3C_ENV_ENVIRONMENT_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "env/frame.hh"
#include "sim/rng.hh"
#include "sim/serial.hh"

namespace fa3c::env {

/** Result of advancing the environment by one raw frame. */
struct StepResult
{
    float reward = 0.0f;    ///< raw (unclipped) reward for this frame
    bool terminal = false;  ///< episode ended on this frame
};

/**
 * A playable game with pixel observations.
 *
 * Implementations are deterministic given the Rng passed at creation;
 * reset() draws fresh initial conditions from that stream, which is
 * how per-agent seeds are realized (paper: "each game instance is
 * assigned with a different random seed").
 */
class Environment
{
  public:
    virtual ~Environment() = default;

    /** Size of the (minimal) discrete action set. */
    virtual int numActions() const = 0;

    /** Start a new episode. */
    virtual void reset() = 0;

    /** Advance one frame with @p action. @pre 0 <= action < numActions. */
    virtual StepResult step(int action) = 0;

    /** Render the current screen. */
    virtual void render(Frame &frame) const = 0;

    /** Game name, e.g. "breakout". */
    virtual const char *name() const = 0;

    /**
     * Visit the complete mutable game state — including the private
     * random stream — with @p ar: checkpoint save appends it, restore
     * reads it back, so a restored instance continues bit-identically.
     *
     * @return false when restoring from truncated or corrupt bytes;
     *         the instance may then be partially updated and must be
     *         reset() before further use.
     */
    virtual bool archiveState(sim::StateArchive &ar) = 0;
};

/** The six games of the paper's evaluation. */
enum class GameId
{
    BeamRider,
    Breakout,
    Pong,
    Qbert,
    Seaquest,
    SpaceInvaders,
};

/** All six game ids, in the paper's order. */
inline constexpr GameId allGames[] = {
    GameId::BeamRider, GameId::Breakout,   GameId::Pong,
    GameId::Qbert,     GameId::Seaquest,   GameId::SpaceInvaders,
};

/** Human-readable name of @p game. */
const char *gameName(GameId game);

/** Parse a game name; throws via FA3C_PANIC on unknown names. */
GameId gameFromName(const std::string &name);

/**
 * Parse a game name; std::nullopt on unknown names. CLI front-ends
 * use this to reject a typo with a listing of valid names instead of
 * panicking deep inside Session construction.
 */
std::optional<GameId> tryGameFromName(const std::string &name);

/** All valid game names joined with @p sep (CLI error messages). */
std::string gameNameList(const std::string &sep = ", ");

/**
 * Create a game instance.
 *
 * @param game Which game.
 * @param seed Seed for the instance's private random stream.
 */
std::unique_ptr<Environment> makeEnvironment(GameId game,
                                             std::uint64_t seed);

} // namespace fa3c::env

#endif // FA3C_ENV_ENVIRONMENT_HH
