#include "env/frame.hh"

#include <algorithm>

namespace fa3c::env {

void
Frame::clear(float v)
{
    std::fill(pixels_.begin(), pixels_.end(), v);
}

void
Frame::fillRect(int y, int x, int h, int w, float intensity)
{
    const int y0 = std::max(0, y);
    const int x0 = std::max(0, x);
    const int y1 = std::min(height, y + h);
    const int x1 = std::min(width, x + w);
    for (int yy = y0; yy < y1; ++yy)
        for (int xx = x0; xx < x1; ++xx)
            at(yy, xx) = intensity;
}

void
Frame::hLine(int y, int x0, int x1, float intensity)
{
    if (y < 0 || y >= height)
        return;
    const int lo = std::max(0, std::min(x0, x1));
    const int hi = std::min(width - 1, std::max(x0, x1));
    for (int x = lo; x <= hi; ++x)
        at(y, x) = intensity;
}

float
Frame::meanIntensity() const
{
    float sum = 0.0f;
    for (float p : pixels_)
        sum += p;
    return sum / static_cast<float>(pixels_.size());
}

} // namespace fa3c::env
