/**
 * @file
 * The game screen: an 84x84 grayscale frame plus rasterization
 * helpers the synthetic games draw with.
 *
 * The Arcade Learning Environment emits 210x160 RGB frames that the
 * A3C preprocessing pipeline converts to 84x84 grayscale; our
 * synthetic games render natively at the post-processing resolution,
 * which exercises the identical DNN input path.
 */

#ifndef FA3C_ENV_FRAME_HH
#define FA3C_ENV_FRAME_HH

#include <vector>

namespace fa3c::env {

/** A fixed-size grayscale frame with intensities in [0, 1]. */
class Frame
{
  public:
    static constexpr int height = 84;
    static constexpr int width = 84;

    Frame() : pixels_(static_cast<std::size_t>(height * width), 0.0f) {}

    /** Pixel access (row, column). Out-of-range access is clipped out
     * by the raster helpers; direct access must be in range. */
    float &at(int y, int x)
    {
        return pixels_[static_cast<std::size_t>(y) * width +
                       static_cast<std::size_t>(x)];
    }

    float at(int y, int x) const
    {
        return pixels_[static_cast<std::size_t>(y) * width +
                       static_cast<std::size_t>(x)];
    }

    /** Set every pixel to @p v (default: black). */
    void clear(float v = 0.0f);

    /**
     * Fill the axis-aligned rectangle with top-left corner (y, x),
     * size h x w. Parts outside the frame are clipped.
     */
    void fillRect(int y, int x, int h, int w, float intensity);

    /** Draw a 1-pixel-wide horizontal line (clipped). */
    void hLine(int y, int x0, int x1, float intensity);

    /** Flat pixel storage, row-major. */
    const std::vector<float> &pixels() const { return pixels_; }

    /** Mutable flat pixel storage (checkpoint restore). */
    std::vector<float> &pixels() { return pixels_; }

    /** Mean intensity (useful for tests). */
    float meanIntensity() const;

  private:
    std::vector<float> pixels_;
};

} // namespace fa3c::env

#endif // FA3C_ENV_FRAME_HH
