/**
 * @file
 * Beam Rider: the ship slides between five beams at the bottom of the
 * screen; enemy saucers ride the beams downward and must be shot
 * before they reach the ship's row. 44 points per saucer (the Atari
 * white-saucer value); a sector is 15 saucers, with a bonus and a
 * speed-up on completion.
 */

#include <algorithm>
#include <memory>
#include <vector>

#include "env/environment.hh"
#include "env/games.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace fa3c::env {

namespace {

class BeamRider : public Environment
{
  public:
    explicit BeamRider(std::uint64_t seed) : rng_(seed) { reset(); }

    int numActions() const override { return 4; } // noop, left, right, fire

    void
    reset() override
    {
        lives_ = 3;
        sector_ = 0;
        playerLane_ = numLanes_ / 2;
        moveCooldown_ = 0;
        enemies_.clear();
        torpedoes_.clear();
        startSector();
    }

    StepResult
    step(int action) override
    {
        FA3C_ASSERT(action >= 0 && action < numActions(),
                    "beam_rider action ", action);
        StepResult res;

        if (moveCooldown_ > 0)
            --moveCooldown_;
        if (action == 1 && moveCooldown_ == 0 && playerLane_ > 0) {
            --playerLane_;
            moveCooldown_ = laneChangeCooldown_;
        } else if (action == 2 && moveCooldown_ == 0 &&
                   playerLane_ < numLanes_ - 1) {
            ++playerLane_;
            moveCooldown_ = laneChangeCooldown_;
        } else if (action == 3 && torpedoes_.size() < 2) {
            torpedoes_.push_back(
                Torpedo{playerLane_, playerY_ - torpedoH_});
        }

        spawnEnemies();
        res.reward += advance();

        // A saucer reaching the ship's row costs a life.
        for (const auto &e : enemies_) {
            if (e.y + enemyH_ >= playerY_ && e.lane == playerLane_) {
                --lives_;
                enemies_.clear();
                if (lives_ <= 0)
                    res.terminal = true;
                break;
            }
        }
        std::erase_if(enemies_, [](const Enemy &e) {
            return e.y + enemyH_ >= playerY_;
        });

        if (enemiesKilledInSector_ >= sectorSize_) {
            res.reward += sectorBonus_;
            ++sector_;
            startSector();
        }
        return res;
    }

    void
    render(Frame &frame) const override
    {
        frame.clear();
        // The five beams.
        for (int lane = 0; lane < numLanes_; ++lane) {
            const int x = laneX(lane);
            for (int y = beamTop_; y < playerY_; y += 3)
                frame.fillRect(y, x + enemyW_ / 2, 1, 1, 0.3f);
        }
        for (const auto &e : enemies_)
            frame.fillRect(e.y, laneX(e.lane), enemyH_, enemyW_, 0.9f);
        for (const auto &t : torpedoes_)
            frame.fillRect(t.y, laneX(t.lane) + enemyW_ / 2, torpedoH_,
                           1, 1.0f);
        frame.fillRect(playerY_, laneX(playerLane_) - 1, playerH_,
                       enemyW_ + 2, 1.0f);
    }

    const char *name() const override { return "beam_rider"; }

    bool
    archiveState(sim::StateArchive &ar) override
    {
        return ar.fields(rng_, lives_, sector_, playerLane_,
                         moveCooldown_, enemiesKilledInSector_,
                         spawnCooldown_, enemies_, torpedoes_);
    }

  private:
    static constexpr int numLanes_ = 5;
    static constexpr int beamTop_ = 8;
    static constexpr int playerY_ = 76;
    static constexpr int playerH_ = 4;
    static constexpr int enemyW_ = 6;
    static constexpr int enemyH_ = 4;
    static constexpr int torpedoH_ = 3;
    static constexpr int laneChangeCooldown_ = 3;
    static constexpr int sectorSize_ = 15;
    static constexpr float enemyScore_ = 44.0f;
    static constexpr float sectorBonus_ = 100.0f;

    struct Enemy
    {
        int lane;
        int y;
        int speed;
    };

    struct Torpedo
    {
        int lane;
        int y;
    };

    sim::Rng rng_;
    int lives_ = 3;
    int sector_ = 0;
    int playerLane_ = 2;
    int moveCooldown_ = 0;
    int enemiesKilledInSector_ = 0;
    int spawnCooldown_ = 0;
    std::vector<Enemy> enemies_;
    std::vector<Torpedo> torpedoes_;

    static int
    laneX(int lane)
    {
        // Lanes evenly spaced across the frame.
        return 8 + lane * ((Frame::width - 16 - enemyW_) /
                           (numLanes_ - 1));
    }

    void
    startSector()
    {
        enemiesKilledInSector_ = 0;
        spawnCooldown_ = 10;
        torpedoes_.clear();
    }

    void
    spawnEnemies()
    {
        if (--spawnCooldown_ > 0)
            return;
        spawnCooldown_ =
            std::max(6, 16 - 2 * sector_) +
            static_cast<int>(rng_.uniformInt(8));
        const int lane =
            static_cast<int>(rng_.uniformInt(numLanes_));
        const int speed = 1 + static_cast<int>(rng_.uniformInt(
                                  static_cast<std::uint32_t>(
                                      std::min(2 + sector_, 3))));
        enemies_.push_back(Enemy{lane, beamTop_, speed});
    }

    /** Move torpedoes and enemies; resolve hits. @return reward. */
    float
    advance()
    {
        float reward = 0.0f;
        for (auto &t : torpedoes_)
            t.y -= 4;
        for (auto &e : enemies_)
            e.y += e.speed;

        for (auto &t : torpedoes_) {
            for (auto &e : enemies_) {
                if (e.lane == t.lane && t.y < e.y + enemyH_ &&
                    t.y + torpedoH_ > e.y) {
                    e.y = Frame::height + 100; // mark destroyed
                    t.y = -100;                // consume torpedo
                    reward += enemyScore_;
                    ++enemiesKilledInSector_;
                    break;
                }
            }
        }
        std::erase_if(torpedoes_,
                      [](const Torpedo &t) { return t.y < beamTop_; });
        std::erase_if(enemies_, [](const Enemy &e) {
            return e.y > Frame::height;
        });
        return reward;
    }
};

} // namespace

std::unique_ptr<Environment>
makeBeamRider(std::uint64_t seed)
{
    return std::make_unique<BeamRider>(seed);
}

} // namespace fa3c::env
