/**
 * @file
 * Breakout: a paddle, a ball, and six rows of bricks. Brick rows score
 * 7/7/4/4/1/1 from the top, as in the Atari original. The agent has
 * three lives; "fire" serves the ball from the paddle.
 */

#include <algorithm>
#include <array>
#include <memory>

#include "env/environment.hh"
#include "env/games.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace fa3c::env {

namespace {

class Breakout : public Environment
{
  public:
    explicit Breakout(std::uint64_t seed) : rng_(seed) { reset(); }

    int numActions() const override { return 4; } // noop, fire, left, right

    void
    reset() override
    {
        bricks_.fill(true);
        bricksLeft_ = numBricks_;
        lives_ = 3;
        paddleX_ = Frame::width / 2 - paddleW_ / 2;
        ballInPlay_ = false;
    }

    StepResult
    step(int action) override
    {
        FA3C_ASSERT(action >= 0 && action < numActions(),
                    "breakout action ", action);
        StepResult res;

        if (action == 2)
            paddleX_ -= paddleSpeed_;
        else if (action == 3)
            paddleX_ += paddleSpeed_;
        paddleX_ = std::clamp(paddleX_, 0, Frame::width - paddleW_);

        if (!ballInPlay_) {
            if (action == 1)
                serve();
            return res;
        }

        ballX_ += ballVx_;
        ballY_ += ballVy_;

        // Side and top walls.
        if (ballX_ <= 0) {
            ballX_ = 0;
            ballVx_ = -ballVx_;
        }
        if (ballX_ + ballSize_ >= Frame::width) {
            ballX_ = Frame::width - ballSize_;
            ballVx_ = -ballVx_;
        }
        if (ballY_ <= ceilingY_) {
            ballY_ = ceilingY_;
            ballVy_ = -ballVy_;
        }

        // Brick collisions (at most one brick per frame).
        res.reward += hitBricks();

        // Paddle.
        if (ballVy_ > 0 && ballY_ + ballSize_ >= paddleY_ &&
            ballY_ + ballSize_ <= paddleY_ + paddleH_ + ballSpeed_ &&
            ballX_ + ballSize_ > paddleX_ &&
            ballX_ < paddleX_ + paddleW_) {
            ballY_ = paddleY_ - ballSize_;
            ballVy_ = -ballVy_;
            const int rel = ballX_ + ballSize_ / 2 -
                            (paddleX_ + paddleW_ / 2);
            ballVx_ = std::clamp(rel / 2, -2, 2);
            if (ballVx_ == 0)
                ballVx_ = rng_.chance(0.5) ? 1 : -1;
        }

        // Bottom: lose a life.
        if (ballY_ > Frame::height) {
            --lives_;
            ballInPlay_ = false;
            if (lives_ <= 0)
                res.terminal = true;
        }

        // Cleared the wall: new wall, keep playing (Atari behaviour).
        if (bricksLeft_ == 0) {
            bricks_.fill(true);
            bricksLeft_ = numBricks_;
        }
        return res;
    }

    void
    render(Frame &frame) const override
    {
        frame.clear();
        frame.hLine(ceilingY_ - 1, 0, Frame::width - 1, 0.5f);
        for (int r = 0; r < brickRows_; ++r) {
            const float shade = 0.5f + 0.08f * static_cast<float>(r);
            for (int c = 0; c < brickCols_; ++c) {
                if (!bricks_[static_cast<std::size_t>(r * brickCols_ + c)])
                    continue;
                frame.fillRect(brickTop_ + r * brickH_, c * brickW_,
                               brickH_ - 1, brickW_ - 1, shade);
            }
        }
        frame.fillRect(paddleY_, paddleX_, paddleH_, paddleW_, 1.0f);
        if (ballInPlay_)
            frame.fillRect(ballY_, ballX_, ballSize_, ballSize_, 1.0f);
        else
            frame.fillRect(paddleY_ - ballSize_, paddleX_ + paddleW_ / 2,
                           ballSize_, ballSize_, 1.0f);
    }

    const char *name() const override { return "breakout"; }

    bool
    archiveState(sim::StateArchive &ar) override
    {
        return ar.fields(rng_, bricks_, bricksLeft_, lives_, paddleX_,
                         ballInPlay_, ballX_, ballY_, ballVx_,
                         ballVy_);
    }

  private:
    static constexpr int brickRows_ = 6;
    static constexpr int brickCols_ = 12;
    static constexpr int numBricks_ = brickRows_ * brickCols_;
    static constexpr int brickW_ = 7;
    static constexpr int brickH_ = 3;
    static constexpr int brickTop_ = 14;
    static constexpr int ceilingY_ = 6;
    static constexpr int paddleY_ = 79;
    static constexpr int paddleW_ = 12;
    static constexpr int paddleH_ = 2;
    static constexpr int paddleSpeed_ = 3;
    static constexpr int ballSize_ = 2;
    static constexpr int ballSpeed_ = 2;
    // Row scores from the top, as in Atari Breakout.
    static constexpr std::array<int, brickRows_> rowScore_ = {7, 7, 4,
                                                              4, 1, 1};

    sim::Rng rng_;
    std::array<bool, static_cast<std::size_t>(numBricks_)> bricks_{};
    int bricksLeft_ = numBricks_;
    int lives_ = 3;
    int paddleX_ = 0;
    bool ballInPlay_ = false;
    int ballX_ = 0;
    int ballY_ = 0;
    int ballVx_ = 1;
    int ballVy_ = -ballSpeed_;

    void
    serve()
    {
        ballInPlay_ = true;
        ballX_ = paddleX_ + paddleW_ / 2;
        ballY_ = paddleY_ - ballSize_;
        ballVx_ = rng_.chance(0.5) ? 1 : -1;
        ballVy_ = -ballSpeed_;
    }

    /** Detect and remove at most one brick under the ball. */
    float
    hitBricks()
    {
        if (ballY_ < brickTop_ || ballY_ >= brickTop_ + brickRows_ * brickH_)
            return 0.0f;
        const int r = (ballY_ - brickTop_) / brickH_;
        const int c = std::clamp(ballX_ / brickW_, 0, brickCols_ - 1);
        auto &alive = bricks_[static_cast<std::size_t>(r * brickCols_ + c)];
        if (!alive)
            return 0.0f;
        alive = false;
        --bricksLeft_;
        ballVy_ = -ballVy_;
        return static_cast<float>(rowScore_[static_cast<std::size_t>(r)]);
    }
};

} // namespace

std::unique_ptr<Environment>
makeBreakout(std::uint64_t seed)
{
    return std::make_unique<Breakout>(seed);
}

} // namespace fa3c::env
