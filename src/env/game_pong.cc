/**
 * @file
 * Pong: two paddles and a ball. The agent controls the right paddle;
 * a tracking opponent with capped speed controls the left one.
 * Reward +1 when the opponent misses, -1 when the agent misses.
 * An episode is a match to 5 points (ALE plays to 21; shortened so
 * episodes finish quickly, which only rescales the score axis).
 */

#include <algorithm>
#include <memory>

#include "env/environment.hh"
#include "env/games.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace fa3c::env {

namespace {

class Pong : public Environment
{
  public:
    explicit Pong(std::uint64_t seed) : rng_(seed) { reset(); }

    int numActions() const override { return 3; } // noop, up, down

    void
    reset() override
    {
        playerScore_ = 0;
        opponentScore_ = 0;
        playerY_ = opponentY_ = fieldCenter_ - paddleH_ / 2;
        serve();
    }

    StepResult
    step(int action) override
    {
        FA3C_ASSERT(action >= 0 && action < numActions(),
                    "pong action ", action);
        StepResult res;

        // Agent paddle.
        if (action == 1)
            playerY_ -= paddleSpeed_;
        else if (action == 2)
            playerY_ += paddleSpeed_;
        playerY_ = std::clamp(playerY_, fieldTop_,
                              fieldBottom_ - paddleH_);

        // Opponent tracks the ball with capped speed (beatable).
        const int target = ballY_ - paddleH_ / 2;
        if (opponentY_ < target)
            opponentY_ += opponentSpeed_;
        else if (opponentY_ > target)
            opponentY_ -= opponentSpeed_;
        opponentY_ = std::clamp(opponentY_, fieldTop_,
                                fieldBottom_ - paddleH_);

        // Ball motion with wall bounces.
        ballX_ += ballVx_;
        ballY_ += ballVy_;
        if (ballY_ <= fieldTop_) {
            ballY_ = fieldTop_;
            ballVy_ = -ballVy_;
        }
        if (ballY_ + ballSize_ >= fieldBottom_) {
            ballY_ = fieldBottom_ - ballSize_;
            ballVy_ = -ballVy_;
        }

        // Paddle collisions.
        if (ballVx_ > 0 && ballX_ + ballSize_ >= playerX_ &&
            ballX_ + ballSize_ <= playerX_ + paddleW_ + ballSpeed_ &&
            overlaps(playerY_)) {
            ballX_ = playerX_ - ballSize_;
            ballVx_ = -ballVx_;
            ballVy_ = deflect(playerY_);
        }
        if (ballVx_ < 0 && ballX_ <= opponentX_ + paddleW_ &&
            ballX_ >= opponentX_ - ballSpeed_ && overlaps(opponentY_)) {
            ballX_ = opponentX_ + paddleW_;
            ballVx_ = -ballVx_;
            ballVy_ = deflect(opponentY_);
        }

        // Scoring.
        if (ballX_ > Frame::width) {
            ++opponentScore_;
            res.reward = -1.0f;
            serve();
        } else if (ballX_ + ballSize_ < 0) {
            ++playerScore_;
            res.reward = 1.0f;
            serve();
        }

        if (playerScore_ >= matchPoint_ || opponentScore_ >= matchPoint_)
            res.terminal = true;
        return res;
    }

    void
    render(Frame &frame) const override
    {
        frame.clear();
        frame.hLine(fieldTop_ - 1, 0, Frame::width - 1, 0.5f);
        frame.hLine(fieldBottom_, 0, Frame::width - 1, 0.5f);
        frame.fillRect(opponentY_, opponentX_, paddleH_, paddleW_, 0.7f);
        frame.fillRect(playerY_, playerX_, paddleH_, paddleW_, 1.0f);
        frame.fillRect(ballY_, ballX_, ballSize_, ballSize_, 1.0f);
    }

    const char *name() const override { return "pong"; }

    bool
    archiveState(sim::StateArchive &ar) override
    {
        return ar.fields(rng_, playerY_, opponentY_, ballX_, ballY_,
                         ballVx_, ballVy_, playerScore_,
                         opponentScore_);
    }

  private:
    static constexpr int fieldTop_ = 8;
    static constexpr int fieldBottom_ = 80;
    static constexpr int fieldCenter_ = (fieldTop_ + fieldBottom_) / 2;
    static constexpr int paddleH_ = 12;
    static constexpr int paddleW_ = 2;
    static constexpr int playerX_ = 78;
    static constexpr int opponentX_ = 4;
    static constexpr int paddleSpeed_ = 2;
    static constexpr int opponentSpeed_ = 1;
    static constexpr int ballSize_ = 2;
    static constexpr int ballSpeed_ = 2;
    static constexpr int matchPoint_ = 5;

    sim::Rng rng_;
    int playerY_ = 0;
    int opponentY_ = 0;
    int ballX_ = 0;
    int ballY_ = 0;
    int ballVx_ = ballSpeed_;
    int ballVy_ = 1;
    int playerScore_ = 0;
    int opponentScore_ = 0;

    bool
    overlaps(int paddle_y) const
    {
        return ballY_ + ballSize_ > paddle_y &&
               ballY_ < paddle_y + paddleH_;
    }

    /** Vertical deflection depending on where the ball hit the paddle. */
    int
    deflect(int paddle_y)
    {
        const int rel = ballY_ + ballSize_ / 2 - (paddle_y + paddleH_ / 2);
        if (rel < -2)
            return -2;
        if (rel > 2)
            return 2;
        return rel == 0 ? (rng_.chance(0.5) ? 1 : -1) : rel;
    }

    void
    serve()
    {
        ballX_ = Frame::width / 2;
        ballY_ = fieldTop_ + 2 +
                 static_cast<int>(rng_.uniformInt(
                     static_cast<std::uint32_t>(fieldBottom_ - fieldTop_ -
                                                ballSize_ - 4)));
        ballVx_ = rng_.chance(0.5) ? ballSpeed_ : -ballSpeed_;
        ballVy_ = rng_.chance(0.5) ? 1 : -1;
    }
};

} // namespace

std::unique_ptr<Environment>
makePong(std::uint64_t seed)
{
    return std::make_unique<Pong>(seed);
}

} // namespace fa3c::env
