/**
 * @file
 * Q*bert: hop around a 6-row pyramid of cubes, coloring each cube you
 * land on (+25 per newly colored cube, +100 round bonus when all 21
 * are colored). A chaser ball hops down from the top; touching it, or
 * hopping off the pyramid, costs a life.
 */

#include <algorithm>
#include <array>
#include <memory>

#include "env/environment.hh"
#include "env/games.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace fa3c::env {

namespace {

class Qbert : public Environment
{
  public:
    explicit Qbert(std::uint64_t seed) : rng_(seed) { reset(); }

    // noop, up-left, up-right, down-left, down-right.
    int numActions() const override { return 5; }

    void
    reset() override
    {
        lives_ = 3;
        round_ = 0;
        startRound();
    }

    StepResult
    step(int action) override
    {
        FA3C_ASSERT(action >= 0 && action < numActions(),
                    "qbert action ", action);
        StepResult res;

        if (hopCooldown_ > 0)
            --hopCooldown_;

        if (action != 0 && hopCooldown_ == 0) {
            hopCooldown_ = hopPeriod_;
            int r = playerRow_, c = playerCol_;
            switch (action) {
              case 1: --r; --c; break; // up-left
              case 2: --r; break;      // up-right
              case 3: ++r; break;      // down-left
              case 4: ++r; ++c; break; // down-right
              default: break;
            }
            if (!onPyramid(r, c)) {
                res.reward += loseLife(res);
            } else {
                playerRow_ = r;
                playerCol_ = c;
                if (!colored_[cellIndex(r, c)]) {
                    colored_[cellIndex(r, c)] = true;
                    ++coloredCount_;
                    res.reward += 25.0f;
                }
                if (coloredCount_ == numCells_) {
                    res.reward += 100.0f;
                    ++round_;
                    startRound();
                    return res;
                }
            }
        }

        stepChaser();
        if (chaserActive_ && chaserRow_ == playerRow_ &&
            chaserCol_ == playerCol_)
            res.reward += loseLife(res);
        if (lives_ <= 0)
            res.terminal = true;
        return res;
    }

    void
    render(Frame &frame) const override
    {
        frame.clear();
        for (int r = 0; r < rows_; ++r) {
            for (int c = 0; c <= r; ++c) {
                const float shade =
                    colored_[cellIndex(r, c)] ? 0.9f : 0.35f;
                frame.fillRect(cellY(r), cellX(r, c), cellH_ - 2,
                               cellW_ - 2, shade);
            }
        }
        frame.fillRect(cellY(playerRow_) - 4, cellX(playerRow_,
                       playerCol_) + 2, 5, 5, 1.0f);
        if (chaserActive_)
            frame.fillRect(cellY(chaserRow_) - 4,
                           cellX(chaserRow_, chaserCol_) + 2, 4, 4,
                           0.6f);
    }

    const char *name() const override { return "qbert"; }

    bool
    archiveState(sim::StateArchive &ar) override
    {
        return ar.fields(rng_, colored_, coloredCount_, lives_, round_,
                         playerRow_, playerCol_, hopCooldown_,
                         chaserActive_, chaserRow_, chaserCol_,
                         chaserCooldown_, chaserPeriod_);
    }

  private:
    static constexpr int rows_ = 6;
    static constexpr int numCells_ = rows_ * (rows_ + 1) / 2; // 21
    static constexpr int cellW_ = 11;
    static constexpr int cellH_ = 11;
    static constexpr int hopPeriod_ = 4;

    sim::Rng rng_;
    std::array<bool, static_cast<std::size_t>(numCells_)> colored_{};
    int coloredCount_ = 0;
    int lives_ = 3;
    int round_ = 0;
    int playerRow_ = 0;
    int playerCol_ = 0;
    int hopCooldown_ = 0;
    bool chaserActive_ = false;
    int chaserRow_ = 0;
    int chaserCol_ = 0;
    int chaserCooldown_ = 0;
    int chaserPeriod_ = 8;

    static bool
    onPyramid(int r, int c)
    {
        return r >= 0 && r < rows_ && c >= 0 && c <= r;
    }

    static std::size_t
    cellIndex(int r, int c)
    {
        return static_cast<std::size_t>(r * (r + 1) / 2 + c);
    }

    static int
    cellY(int r)
    {
        return 10 + r * cellH_;
    }

    static int
    cellX(int r, int c)
    {
        return Frame::width / 2 - (r + 1) * cellW_ / 2 + c * cellW_;
    }

    void
    startRound()
    {
        colored_.fill(false);
        coloredCount_ = 0;
        playerRow_ = 0;
        playerCol_ = 0;
        colored_[cellIndex(0, 0)] = true;
        coloredCount_ = 1;
        hopCooldown_ = 0;
        chaserActive_ = false;
        chaserCooldown_ = 20 + static_cast<int>(rng_.uniformInt(20));
        chaserPeriod_ = std::max(4, 8 - round_);
    }

    /** Penalty path shared by falling off and being caught. */
    float
    loseLife(StepResult &res)
    {
        // The chaser's spawn timer keeps running across deaths.
        --lives_;
        chaserActive_ = false;
        playerRow_ = 0;
        playerCol_ = 0;
        if (lives_ <= 0)
            res.terminal = true;
        return 0.0f; // Q*bert has no negative scores; death just ends runs
    }

    void
    stepChaser()
    {
        if (!chaserActive_) {
            if (--chaserCooldown_ <= 0) {
                // Spawns one row below the apex, on a random cell.
                chaserActive_ = true;
                chaserRow_ = 1;
                chaserCol_ = static_cast<int>(rng_.uniformInt(2));
                chaserCooldown_ = chaserPeriod_;
            }
            return;
        }
        if (--chaserCooldown_ > 0)
            return;
        chaserCooldown_ = chaserPeriod_;
        // Hop down-left or down-right, biased toward the player.
        int dc = rng_.chance(0.5) ? 0 : 1;
        if (chaserRow_ + 1 == playerRow_) {
            if (playerCol_ == chaserCol_)
                dc = 0;
            else if (playerCol_ == chaserCol_ + 1)
                dc = 1;
        }
        ++chaserRow_;
        chaserCol_ += dc;
        if (!onPyramid(chaserRow_, chaserCol_)) {
            chaserActive_ = false;
            chaserCooldown_ = 20 + static_cast<int>(rng_.uniformInt(20));
        }
    }
};

} // namespace

std::unique_ptr<Environment>
makeQbert(std::uint64_t seed)
{
    return std::make_unique<Qbert>(seed);
}

} // namespace fa3c::env
