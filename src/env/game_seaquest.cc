/**
 * @file
 * Seaquest: pilot a submarine, torpedo the sharks streaming in from
 * both sides (+20 each), and surface before the oxygen runs out.
 * Colliding with a shark or suffocating costs a life (of three).
 */

#include <algorithm>
#include <memory>
#include <vector>

#include "env/environment.hh"
#include "env/games.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace fa3c::env {

namespace {

class Seaquest : public Environment
{
  public:
    explicit Seaquest(std::uint64_t seed) : rng_(seed) { reset(); }

    // noop, up, down, left, right, fire.
    int numActions() const override { return 6; }

    void
    reset() override
    {
        lives_ = 3;
        respawn();
        sharks_.clear();
        torpedoes_.clear();
        spawnCooldown_ = 10;
    }

    StepResult
    step(int action) override
    {
        FA3C_ASSERT(action >= 0 && action < numActions(),
                    "seaquest action ", action);
        StepResult res;

        switch (action) {
          case 1: subY_ -= subSpeed_; break;
          case 2: subY_ += subSpeed_; break;
          case 3:
            subX_ -= subSpeed_;
            facing_ = -1;
            break;
          case 4:
            subX_ += subSpeed_;
            facing_ = 1;
            break;
          case 5:
            if (torpedoes_.size() < 2)
                torpedoes_.push_back(Torpedo{
                    facing_ > 0 ? subX_ + subW_ : subX_ - 3,
                    subY_ + subH_ / 2, facing_});
            break;
          default:
            break;
        }
        subX_ = std::clamp(subX_, 2, Frame::width - subW_ - 2);
        subY_ = std::clamp(subY_, surfaceY_, seabedY_ - subH_);

        // Oxygen: refills at the surface, depletes underwater.
        if (subY_ <= surfaceY_ + 2) {
            oxygen_ = std::min(oxygen_ + 20, maxOxygen_);
        } else if (--oxygen_ <= 0) {
            if (loseLife())
                res.terminal = true;
            return res;
        }

        spawnSharks();
        res.reward += advance();

        // Shark collision.
        for (const auto &s : sharks_) {
            if (s.x < subX_ + subW_ && s.x + sharkW_ > subX_ &&
                s.y < subY_ + subH_ && s.y + sharkH_ > subY_) {
                if (loseLife())
                    res.terminal = true;
                return res;
            }
        }
        return res;
    }

    void
    render(Frame &frame) const override
    {
        frame.clear();
        frame.hLine(surfaceY_ - 1, 0, Frame::width - 1, 0.5f);
        frame.hLine(seabedY_, 0, Frame::width - 1, 0.4f);
        // Oxygen gauge along the bottom.
        const int gauge =
            (Frame::width - 4) * oxygen_ / maxOxygen_;
        frame.fillRect(Frame::height - 3, 2, 2, gauge, 0.8f);
        for (const auto &s : sharks_)
            frame.fillRect(s.y, s.x, sharkH_, sharkW_, 0.7f);
        for (const auto &t : torpedoes_)
            frame.fillRect(t.y, t.x, 1, 3, 1.0f);
        frame.fillRect(subY_, subX_, subH_, subW_, 1.0f);
    }

    const char *name() const override { return "seaquest"; }

    bool
    archiveState(sim::StateArchive &ar) override
    {
        return ar.fields(rng_, lives_, subX_, subY_, facing_, oxygen_,
                         spawnCooldown_, sharks_, torpedoes_);
    }

  private:
    static constexpr int surfaceY_ = 14;
    static constexpr int seabedY_ = 76;
    static constexpr int subW_ = 7;
    static constexpr int subH_ = 4;
    static constexpr int subSpeed_ = 2;
    static constexpr int sharkW_ = 6;
    static constexpr int sharkH_ = 3;
    static constexpr int maxOxygen_ = 600;
    static constexpr float sharkScore_ = 20.0f;

    struct Shark
    {
        int x;
        int y;
        int vx;
    };

    struct Torpedo
    {
        int x;
        int y;
        int vx;
    };

    sim::Rng rng_;
    int lives_ = 3;
    int subX_ = 0;
    int subY_ = 0;
    int facing_ = 1;
    int oxygen_ = maxOxygen_;
    int spawnCooldown_ = 0;
    std::vector<Shark> sharks_;
    std::vector<Torpedo> torpedoes_;

    void
    respawn()
    {
        subX_ = Frame::width / 2 - subW_ / 2;
        subY_ = surfaceY_ + 10;
        facing_ = 1;
        oxygen_ = maxOxygen_;
    }

    /** @return true when the game is over. */
    bool
    loseLife()
    {
        --lives_;
        sharks_.clear();
        torpedoes_.clear();
        respawn();
        return lives_ <= 0;
    }

    void
    spawnSharks()
    {
        if (--spawnCooldown_ > 0)
            return;
        spawnCooldown_ = 12 + static_cast<int>(rng_.uniformInt(16));
        const bool from_left = rng_.chance(0.5);
        const int depth =
            surfaceY_ + 6 +
            static_cast<int>(rng_.uniformInt(static_cast<std::uint32_t>(
                seabedY_ - surfaceY_ - 12)));
        const int speed = 1 + static_cast<int>(rng_.uniformInt(2));
        sharks_.push_back(Shark{from_left ? -sharkW_ : Frame::width,
                                depth, from_left ? speed : -speed});
    }

    float
    advance()
    {
        float reward = 0.0f;
        for (auto &s : sharks_)
            s.x += s.vx;
        for (auto &t : torpedoes_)
            t.x += 4 * t.vx;

        for (auto &t : torpedoes_) {
            for (auto &s : sharks_) {
                if (t.x < s.x + sharkW_ && t.x + 3 > s.x &&
                    t.y >= s.y && t.y < s.y + sharkH_) {
                    s.x = -1000; // destroyed
                    t.x = -2000; // consumed
                    reward += sharkScore_;
                    break;
                }
            }
        }
        std::erase_if(sharks_, [](const Shark &s) {
            return s.x < -sharkW_ - 1 || s.x > Frame::width + 1;
        });
        std::erase_if(torpedoes_, [](const Torpedo &t) {
            return t.x < 0 || t.x > Frame::width;
        });
        return reward;
    }
};

} // namespace

std::unique_ptr<Environment>
makeSeaquest(std::uint64_t seed)
{
    return std::make_unique<Seaquest>(seed);
}

} // namespace fa3c::env
