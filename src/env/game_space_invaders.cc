/**
 * @file
 * Space Invaders: a 4x6 grid of aliens marches across the screen and
 * descends at the edges; the cannon fires one shot at a time; aliens
 * drop bombs. Higher rows score more (10/15/20/30 from the bottom).
 */

#include <algorithm>
#include <array>
#include <memory>
#include <vector>

#include "env/environment.hh"
#include "env/games.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace fa3c::env {

namespace {

class SpaceInvaders : public Environment
{
  public:
    explicit SpaceInvaders(std::uint64_t seed) : rng_(seed) { reset(); }

    // noop, fire, right, left, rightfire, leftfire (ALE minimal set).
    int numActions() const override { return 6; }

    void
    reset() override
    {
        lives_ = 3;
        wave_ = 0;
        playerX_ = Frame::width / 2 - playerW_ / 2;
        shotActive_ = false;
        bombs_.clear();
        newWave();
    }

    StepResult
    step(int action) override
    {
        FA3C_ASSERT(action >= 0 && action < numActions(),
                    "space_invaders action ", action);
        StepResult res;

        const bool fire = action == 1 || action == 4 || action == 5;
        if (action == 2 || action == 4)
            playerX_ += playerSpeed_;
        else if (action == 3 || action == 5)
            playerX_ -= playerSpeed_;
        playerX_ = std::clamp(playerX_, 2, Frame::width - playerW_ - 2);

        if (fire && !shotActive_) {
            shotActive_ = true;
            shotX_ = playerX_ + playerW_ / 2;
            shotY_ = playerY_ - 1;
        }

        marchAliens();
        res.reward += moveShot();
        if (moveBombsAndCollide()) {
            --lives_;
            bombs_.clear();
            if (lives_ <= 0)
                res.terminal = true;
        }

        // Aliens reaching the cannon row ends the game.
        if (lowestAlienY() + alienH_ >= playerY_)
            res.terminal = true;

        if (aliensLeft_ == 0) {
            ++wave_;
            newWave();
        }
        return res;
    }

    void
    render(Frame &frame) const override
    {
        frame.clear();
        frame.hLine(Frame::height - 2, 0, Frame::width - 1, 0.4f);
        for (int r = 0; r < rows_; ++r) {
            for (int c = 0; c < cols_; ++c) {
                if (!alive_[static_cast<std::size_t>(r * cols_ + c)])
                    continue;
                frame.fillRect(alienOriginY_ + r * cellH_,
                               alienOriginX_ + c * cellW_, alienH_,
                               alienW_, 0.8f);
            }
        }
        frame.fillRect(playerY_, playerX_, playerH_, playerW_, 1.0f);
        if (shotActive_)
            frame.fillRect(shotY_, shotX_, 3, 1, 1.0f);
        for (const auto &b : bombs_)
            frame.fillRect(b.y, b.x, 3, 1, 0.9f);
    }

    const char *name() const override { return "space_invaders"; }

    bool
    archiveState(sim::StateArchive &ar) override
    {
        return ar.fields(rng_, alive_, aliensLeft_, alienOriginX_,
                         alienOriginY_, marchDir_, marchCounter_,
                         marchPeriod_, wave_, lives_, playerX_,
                         shotActive_, shotX_, shotY_, bombs_);
    }

  private:
    static constexpr int rows_ = 4;
    static constexpr int cols_ = 6;
    static constexpr int alienW_ = 6;
    static constexpr int alienH_ = 4;
    static constexpr int cellW_ = 10;
    static constexpr int cellH_ = 8;
    static constexpr int playerW_ = 6;
    static constexpr int playerH_ = 3;
    static constexpr int playerY_ = 78;
    static constexpr int playerSpeed_ = 2;
    // Scores by row from the top, echoing the Atari values.
    static constexpr std::array<int, rows_> rowScore_ = {30, 20, 15, 10};

    struct Bomb
    {
        int x;
        int y;
    };

    sim::Rng rng_;
    std::array<bool, static_cast<std::size_t>(rows_ * cols_)> alive_{};
    int aliensLeft_ = 0;
    int alienOriginX_ = 0;
    int alienOriginY_ = 0;
    int marchDir_ = 1;
    int marchCounter_ = 0;
    int marchPeriod_ = 8;
    int wave_ = 0;
    int lives_ = 3;
    int playerX_ = 0;
    bool shotActive_ = false;
    int shotX_ = 0;
    int shotY_ = 0;
    std::vector<Bomb> bombs_;

    void
    newWave()
    {
        alive_.fill(true);
        aliensLeft_ = rows_ * cols_;
        alienOriginX_ = 8;
        alienOriginY_ = 10;
        marchDir_ = 1;
        marchCounter_ = 0;
        marchPeriod_ = std::max(3, 8 - wave_);
        shotActive_ = false;
    }

    void
    marchAliens()
    {
        if (++marchCounter_ < marchPeriod_)
            return;
        marchCounter_ = 0;
        const int span = alienSpanWidth();
        if (marchDir_ > 0 &&
            alienOriginX_ + span + 2 >= Frame::width - 2) {
            marchDir_ = -1;
            alienOriginY_ += 3;
        } else if (marchDir_ < 0 && alienOriginX_ <= 2) {
            marchDir_ = 1;
            alienOriginY_ += 3;
        } else {
            alienOriginX_ += 2 * marchDir_;
        }
        // Surviving aliens occasionally drop bombs.
        if (rng_.chance(0.25) && aliensLeft_ > 0) {
            const int shooter = pickBottomAlien();
            if (shooter >= 0) {
                const int r = shooter / cols_;
                const int c = shooter % cols_;
                bombs_.push_back(
                    Bomb{alienOriginX_ + c * cellW_ + alienW_ / 2,
                         alienOriginY_ + r * cellH_ + alienH_});
            }
        }
    }

    /** Width from the leftmost to the rightmost living column. */
    int
    alienSpanWidth() const
    {
        int min_c = cols_, max_c = -1;
        for (int r = 0; r < rows_; ++r)
            for (int c = 0; c < cols_; ++c)
                if (alive_[static_cast<std::size_t>(r * cols_ + c)]) {
                    min_c = std::min(min_c, c);
                    max_c = std::max(max_c, c);
                }
        if (max_c < 0)
            return 0;
        return max_c * cellW_ + alienW_;
    }

    /** Random living alien that has no living alien below it. */
    int
    pickBottomAlien()
    {
        std::array<int, static_cast<std::size_t>(cols_)> bottom{};
        bottom.fill(-1);
        for (int c = 0; c < cols_; ++c)
            for (int r = rows_ - 1; r >= 0; --r)
                if (alive_[static_cast<std::size_t>(r * cols_ + c)]) {
                    bottom[static_cast<std::size_t>(c)] = r * cols_ + c;
                    break;
                }
        std::array<int, static_cast<std::size_t>(cols_)> cand{};
        int n = 0;
        for (int c = 0; c < cols_; ++c)
            if (bottom[static_cast<std::size_t>(c)] >= 0)
                cand[static_cast<std::size_t>(n++)] =
                    bottom[static_cast<std::size_t>(c)];
        if (n == 0)
            return -1;
        return cand[rng_.uniformInt(static_cast<std::uint32_t>(n))];
    }

    float
    moveShot()
    {
        if (!shotActive_)
            return 0.0f;
        shotY_ -= 4;
        if (shotY_ < 0) {
            shotActive_ = false;
            return 0.0f;
        }
        for (int r = rows_ - 1; r >= 0; --r) {
            for (int c = 0; c < cols_; ++c) {
                if (!alive_[static_cast<std::size_t>(r * cols_ + c)])
                    continue;
                const int ax = alienOriginX_ + c * cellW_;
                const int ay = alienOriginY_ + r * cellH_;
                if (shotX_ >= ax && shotX_ < ax + alienW_ &&
                    shotY_ < ay + alienH_ && shotY_ + 3 > ay) {
                    alive_[static_cast<std::size_t>(r * cols_ + c)] =
                        false;
                    --aliensLeft_;
                    shotActive_ = false;
                    return static_cast<float>(
                        rowScore_[static_cast<std::size_t>(r)]);
                }
            }
        }
        return 0.0f;
    }

    /** @return true when a bomb hit the player. */
    bool
    moveBombsAndCollide()
    {
        bool hit = false;
        for (auto &b : bombs_) {
            b.y += 3;
            if (b.y + 3 > playerY_ && b.y < playerY_ + playerH_ &&
                b.x >= playerX_ && b.x < playerX_ + playerW_)
                hit = true;
        }
        std::erase_if(bombs_,
                      [](const Bomb &b) { return b.y >= Frame::height; });
        return hit;
    }

    int
    lowestAlienY() const
    {
        for (int r = rows_ - 1; r >= 0; --r)
            for (int c = 0; c < cols_; ++c)
                if (alive_[static_cast<std::size_t>(r * cols_ + c)])
                    return alienOriginY_ + r * cellH_;
        return 0;
    }
};

} // namespace

std::unique_ptr<Environment>
makeSpaceInvaders(std::uint64_t seed)
{
    return std::make_unique<SpaceInvaders>(seed);
}

} // namespace fa3c::env
