/**
 * @file
 * Factories for the six synthetic games standing in for the paper's
 * six Atari 2600 titles. Each game is a small, fully-deterministic
 * (per seed) arcade game rendered to the 84x84 grayscale frame.
 *
 * The games are intentionally simple enough for A3C to learn within
 * tens of thousands of steps, so the end-to-end training experiments
 * (Figure 12) run for real in CI time, while exercising the exact
 * state/action/reward interface of the Arcade Learning Environment.
 */

#ifndef FA3C_ENV_GAMES_HH
#define FA3C_ENV_GAMES_HH

#include <cstdint>
#include <memory>

#include "env/environment.hh"

namespace fa3c::env {

std::unique_ptr<Environment> makePong(std::uint64_t seed);
std::unique_ptr<Environment> makeBreakout(std::uint64_t seed);
std::unique_ptr<Environment> makeSpaceInvaders(std::uint64_t seed);
std::unique_ptr<Environment> makeBeamRider(std::uint64_t seed);
std::unique_ptr<Environment> makeQbert(std::uint64_t seed);
std::unique_ptr<Environment> makeSeaquest(std::uint64_t seed);

} // namespace fa3c::env

#endif // FA3C_ENV_GAMES_HH
