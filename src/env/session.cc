#include "env/session.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fa3c::env {

AtariSession::AtariSession(std::unique_ptr<Environment> environment,
                           const SessionConfig &cfg, std::uint64_t seed)
    : env_(std::move(environment)), cfg_(cfg), rng_(seed),
      obs_(tensor::Shape(
          {cfg.frameStack, cfg.obsHeight, cfg.obsWidth}))
{
    FA3C_ASSERT(cfg_.frameSkip >= 1 && cfg_.frameStack >= 1,
                "bad session config");
    FA3C_ASSERT(Frame::height % cfg_.obsHeight == 0 &&
                    Frame::width % cfg_.obsWidth == 0,
                "observation size must divide the 84x84 frame");
    beginEpisode();
}

void
AtariSession::beginEpisode()
{
    env_->reset();
    episodeScore_ = 0.0;
    episodeFrames_ = 0;
    obs_.zero();
    prevFrame_.clear();
    // Random no-op start: decorrelates initial states across agents.
    const int noops = cfg_.maxNoopStart > 0
                          ? static_cast<int>(rng_.uniformInt(
                                static_cast<std::uint32_t>(
                                    cfg_.maxNoopStart + 1)))
                          : 0;
    for (int i = 0; i < noops; ++i) {
        StepResult r = env_->step(0);
        episodeScore_ += r.reward;
        if (r.terminal)
            env_->reset();
    }
    pushObservation();
}

void
AtariSession::pushObservation()
{
    prevFrame_ = frame_;
    env_->render(frame_);

    // Shift the stack: channel c <- channel c+1.
    const int hw = cfg_.obsHeight * cfg_.obsWidth;
    auto data = obs_.data();
    for (int c = 0; c + 1 < cfg_.frameStack; ++c) {
        std::copy(data.begin() + (c + 1) * hw,
                  data.begin() + (c + 2) * hw, data.begin() + c * hw);
    }

    // Newest channel: max of the last two frames (ALE flicker
    // handling), average-pooled down to the observation size.
    const int pool_y = Frame::height / cfg_.obsHeight;
    const int pool_x = Frame::width / cfg_.obsWidth;
    const float inv = 1.0f / static_cast<float>(pool_y * pool_x);
    for (int y = 0; y < cfg_.obsHeight; ++y) {
        for (int x = 0; x < cfg_.obsWidth; ++x) {
            float acc = 0.0f;
            for (int dy = 0; dy < pool_y; ++dy) {
                for (int dx = 0; dx < pool_x; ++dx) {
                    const int yy = y * pool_y + dy;
                    const int xx = x * pool_x + dx;
                    acc += std::max(frame_.at(yy, xx),
                                    prevFrame_.at(yy, xx));
                }
            }
            obs_.at(cfg_.frameStack - 1, y, x) = acc * inv;
        }
    }
}

bool
AtariSession::archiveState(sim::StateArchive &ar)
{
    if (!env_->archiveState(ar) || !ar(rng_))
        return false;
    // The observation stack and the last two rendered frames carry
    // across act() calls (frame_ becomes prevFrame_ on the next
    // render), so both are part of the recoverable state.
    if (!ar.span(obs_.data()) ||
        !ar.span(std::span<float>(frame_.pixels())) ||
        !ar.span(std::span<float>(prevFrame_.pixels())))
        return false;
    return ar.fields(episodeScore_, lastEpisodeScore_,
                     episodesCompleted_, episodeFrames_);
}

AtariSession::Step
AtariSession::act(int action)
{
    Step result;
    bool terminal = false;
    for (int i = 0; i < cfg_.frameSkip && !terminal; ++i) {
        StepResult r = env_->step(action);
        result.rawReward += r.reward;
        terminal = r.terminal;
        ++episodeFrames_;
    }
    episodeScore_ += result.rawReward;
    result.clippedReward =
        cfg_.clipRewards
            ? std::clamp(result.rawReward, -1.0f, 1.0f)
            : result.rawReward;

    if (terminal || episodeFrames_ >= cfg_.maxEpisodeFrames) {
        lastEpisodeScore_ = episodeScore_;
        ++episodesCompleted_;
        result.episodeEnd = true;
        beginEpisode();
    } else {
        pushObservation();
    }
    return result;
}

} // namespace fa3c::env
