/**
 * @file
 * The agent-side preprocessing pipeline wrapped around a game,
 * matching the standard Atari/A3C frontend: action repeat (frame
 * skip), max over the last two frames, optional downsampling to the
 * network input size, a four-frame observation stack, reward
 * clipping, and random no-op starts.
 */

#ifndef FA3C_ENV_SESSION_HH
#define FA3C_ENV_SESSION_HH

#include <cstdint>
#include <memory>

#include "env/environment.hh"
#include "sim/rng.hh"
#include "sim/serial.hh"
#include "tensor/tensor.hh"

namespace fa3c::env {

/** Frontend knobs; the defaults match the A3C Atari setup. */
struct SessionConfig
{
    int frameSkip = 4;        ///< action repeat
    int frameStack = 4;       ///< observation channels
    int obsHeight = 84;       ///< network input rows
    int obsWidth = 84;        ///< network input cols
    bool clipRewards = true;  ///< clip per-step reward to [-1, 1]
    int maxNoopStart = 30;    ///< random no-ops at episode start
    int maxEpisodeFrames = 20000; ///< hard episode cutoff
};

/**
 * A running game plus its preprocessing state.
 *
 * The observation() tensor has shape [frameStack, obsHeight, obsWidth]
 * and is updated in place by act(); agents copy it into the DNN input.
 */
class AtariSession
{
  public:
    /**
     * @param environment The game (ownership transferred).
     * @param cfg         Frontend configuration.
     * @param seed        Seed for no-op starts.
     */
    AtariSession(std::unique_ptr<Environment> environment,
                 const SessionConfig &cfg, std::uint64_t seed);

    /** Result of one agent-visible step (= frameSkip raw frames). */
    struct Step
    {
        float clippedReward = 0.0f; ///< training reward
        float rawReward = 0.0f;     ///< unclipped score delta
        bool episodeEnd = false;    ///< a new episode was started
    };

    /** Number of discrete actions. */
    int numActions() const { return env_->numActions(); }

    /** The game. */
    const Environment &environment() const { return *env_; }

    /** Current stacked observation [stack, H, W]. */
    const tensor::Tensor &observation() const { return obs_; }

    /**
     * Apply @p action for frameSkip frames.
     *
     * When the episode ends the session records the episode score and
     * immediately starts a new episode (with random no-ops), so the
     * observation is always valid.
     */
    Step act(int action);

    /** Raw score accumulated in the episode in progress. */
    double episodeScore() const { return episodeScore_; }

    /** Score of the most recently finished episode. */
    double lastEpisodeScore() const { return lastEpisodeScore_; }

    /** Number of finished episodes. */
    std::uint64_t episodesCompleted() const { return episodesCompleted_; }

    /**
     * Visit the full session state — the wrapped game, the no-op-start
     * random stream, the observation stack, the flicker-max frames,
     * and the episode counters — so a restored session continues
     * bit-identically from the checkpoint.
     *
     * @return false when restoring from corrupt bytes or a checkpoint
     *         taken with a different observation geometry.
     */
    bool archiveState(sim::StateArchive &ar);

  private:
    std::unique_ptr<Environment> env_;
    SessionConfig cfg_;
    sim::Rng rng_;
    tensor::Tensor obs_;       ///< [stack, H, W]
    Frame frame_;              ///< scratch render target
    Frame prevFrame_;          ///< for two-frame max
    double episodeScore_ = 0.0;
    double lastEpisodeScore_ = 0.0;
    std::uint64_t episodesCompleted_ = 0;
    int episodeFrames_ = 0;

    void beginEpisode();
    /** Render, max with the previous frame, downsample, push a channel. */
    void pushObservation();
};

} // namespace fa3c::env

#endif // FA3C_ENV_SESSION_HH
