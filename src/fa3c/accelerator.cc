#include "fa3c/accelerator.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace fa3c::core {

Fa3cPlatform::Fa3cPlatform(sim::EventQueue &queue, const Fa3cConfig &cfg,
                           const nn::NetConfig &net_cfg, int t_max)
    : queue_(queue), cfg_(cfg), hwNet_(HwNetwork::fromConfig(net_cfg)),
      inferenceTask_(inferenceTask(hwNet_, cfg_)),
      trainingTask_(trainingTask(hwNet_, cfg_, t_max)),
      syncTask_(paramSyncTask(hwNet_, cfg_)),
      portBytesPerSec_(static_cast<double>(dramBurstWords) *
                       sizeof(float) * cfg_.clockHz)
{
    const double per_channel = cfg_.dram.peakBytesPerSec *
                               cfg_.dram.efficiency /
                               cfg_.dram.channels;
    for (int c = 0; c < cfg_.dram.channels; ++c) {
        const std::string name = "dram.ch" + std::to_string(c);
        channels_.push_back(std::make_unique<DramChannel>(
            queue_, per_channel, cfg_.dram.accessLatencySec, stats_,
            name));
        channels_.back()->setPerfBank(&perf_.bank(name));
    }
    pcie_ = std::make_unique<DramChannel>(queue_, cfg_.pcie.bytesPerSec,
                                          cfg_.pcie.latencySec, stats_,
                                          "pcie");
    pcie_->setPerfBank(&perf_.bank("pcie"));

    const int cu_count = cfg_.cuCount();
    for (int i = 0; i < cu_count; ++i) {
        Cu cu;
        cu.id = i;
        if (cfg_.variant == Variant::SingleCU) {
            cu.servesInference = true;
            cu.servesTraining = true;
        } else {
            // Even CUs serve inference, odd CUs training: one pair
            // per two CUs, matching the paper's CU-pair design.
            cu.servesInference = (i % 2 == 0);
            cu.servesTraining = !cu.servesInference;
        }
        cu.channel = channels_[static_cast<std::size_t>(
                                   i % cfg_.dram.channels)]
                         .get();
        if (cu.servesInference && cu.servesTraining)
            cu.track = "CU " + std::to_string(i);
        else if (cu.servesInference)
            cu.track = "CU-infer " + std::to_string(i);
        else
            cu.track = "CU-train " + std::to_string(i);
        cu.perf = &perf_.bank("cu" + std::to_string(i));
        cus_.push_back(cu);
    }

    auto phase_dists = [this](const TaskModel &task) {
        std::vector<sim::Distribution *> dists;
        dists.reserve(task.phases.size());
        for (const auto &phase : task.phases)
            dists.push_back(&stats_.distribution(
                "phase." + task.name + "." + phase.label + ".cycles"));
        return dists;
    };
    inferPhaseDists_ = phase_dists(inferenceTask_);
    trainPhaseDists_ = phase_dists(trainingTask_);
    syncPhaseDists_ = phase_dists(syncTask_);
    inferTaskDist_ = &stats_.distribution("task.inference.cycles");
    trainTaskDist_ = &stats_.distribution("task.training.cycles");
    syncTaskDist_ = &stats_.distribution("task.param-sync.cycles");
}

const std::vector<sim::Distribution *> &
Fa3cPlatform::phaseDists(const TaskModel &task) const
{
    if (&task == &inferenceTask_)
        return inferPhaseDists_;
    if (&task == &trainingTask_)
        return trainPhaseDists_;
    return syncPhaseDists_;
}

sim::Distribution *
Fa3cPlatform::taskDist(const TaskModel &task) const
{
    if (&task == &inferenceTask_)
        return inferTaskDist_;
    if (&task == &trainingTask_)
        return trainTaskDist_;
    return syncTaskDist_;
}

double
Fa3cPlatform::ticksToCycles(sim::Tick ticks) const
{
    const double seconds = static_cast<double>(ticks) /
                           static_cast<double>(sim::ticksPerSecond);
    return seconds / cfg_.secondsPerCycle();
}

void
Fa3cPlatform::finishPhase(const Cu &cu, const TaskModel &task,
                          std::size_t phase_idx, sim::Tick start)
{
    const sim::Tick end = queue_.now();
    phaseDists(task)[phase_idx]->sample(ticksToCycles(end - start));
    if (obs::TraceWriter *tw = obs::trace())
        tw->completeEvent(cu.track, task.phases[phase_idx].label, start,
                          end);
}

void
Fa3cPlatform::finishTask(const Cu &cu, const TaskModel &task)
{
    const sim::Tick end = queue_.now();
    taskDist(task)->sample(ticksToCycles(end - cu.busySince));
    cu.perf->add(&task == &inferenceTask_  ? "tasks_inference"
                 : &task == &trainingTask_ ? "tasks_training"
                                           : "tasks_sync");
    if (obs::TraceWriter *tw = obs::trace())
        tw->completeEvent(cu.track, task.name, cu.busySince, end);
}

void
Fa3cPlatform::submitInference(std::function<void()> done)
{
    inferenceQueue_.push_back(
        Queued{&inferenceTask_, true, std::move(done)});
    stats_.counter("tasks.inference").inc();
    dispatch();
}

void
Fa3cPlatform::submitTraining(std::function<void()> done)
{
    trainingQueue_.push_back(
        Queued{&trainingTask_, false, std::move(done)});
    stats_.counter("tasks.training").inc();
    dispatch();
}

void
Fa3cPlatform::submitParamSync(std::function<void()> done)
{
    // The sync is a short streaming copy; it jumps ahead of queued
    // multi-millisecond training tasks so an agent's whole routine is
    // not serialized behind other agents' updates.
    trainingQueue_.push_front(
        Queued{&syncTask_, false, std::move(done)});
    stats_.counter("tasks.sync").inc();
    dispatch();
}

void
Fa3cPlatform::hostToDevice(double bytes, std::function<void()> done)
{
    pcie_->request(bytes, 0.0, std::move(done));
}

void
Fa3cPlatform::deviceToHost(double bytes, std::function<void()> done)
{
    pcie_->request(bytes, 0.0, std::move(done));
}

void
Fa3cPlatform::dispatch()
{
    for (auto &cu : cus_) {
        if (cu.busy)
            continue;
        Queued task;
        bool found = false;
        if (cu.servesInference && !inferenceQueue_.empty()) {
            task = std::move(inferenceQueue_.front());
            inferenceQueue_.pop_front();
            found = true;
        } else if (cu.servesTraining && !trainingQueue_.empty()) {
            task = std::move(trainingQueue_.front());
            trainingQueue_.pop_front();
            found = true;
        }
        if (!found)
            continue;
        execute(cu, *task.task, std::move(task.done));
    }
}

void
Fa3cPlatform::enableTrace(std::size_t max_entries)
{
    traceLimit_ = max_entries;
    trace_.clear();
    trace_.reserve(max_entries);
}

void
Fa3cPlatform::recordTrace(const Cu &cu, const TaskModel &task,
                          sim::Tick start)
{
    if (trace_.size() < traceLimit_) {
        trace_.push_back(TaskTraceEntry{task.name.c_str(), cu.id,
                                        start, queue_.now()});
    }
}

void
Fa3cPlatform::execute(Cu &cu, const TaskModel &task,
                      std::function<void()> done)
{
    cu.busy = true;
    cu.busySince = queue_.now();
    runPhase(cu, task, 0, std::move(done));
}

void
Fa3cPlatform::runPhase(Cu &cu, const TaskModel &task,
                       std::size_t phase_idx, std::function<void()> done)
{
    if (phase_idx >= task.phases.size()) {
        finishTask(cu, task);
        cu.busy = false;
        cu.busyTicks += queue_.now() - cu.busySince;
        recordTrace(cu, task, cu.busySince);
        if (done)
            done();
        dispatch();
        return;
    }
    const Phase &phase = task.phases[phase_idx];
    const sim::Tick phase_start = queue_.now();
    const double compute_sec =
        static_cast<double>(phase.computeCycles) * cfg_.secondsPerCycle();
    const sim::Tick compute_ticks = static_cast<sim::Tick>(
        compute_sec * static_cast<double>(sim::ticksPerSecond));
    const double bytes =
        static_cast<double>(phase.dramWords()) * sizeof(float);

    if (!cfg_.doubleBuffering) {
        // Ablation: wait for the DRAM traffic, then compute.
        auto finish = [this, &cu, &task, phase_idx, phase_start,
                       compute_ticks](TransferTiming timing,
                                      bool has_timing,
                                      std::function<void()> done) {
            queue_.scheduleIn(
                compute_ticks,
                [this, &cu, &task, phase_idx, phase_start,
                 compute_ticks, timing, has_timing,
                 done = std::move(done)]() mutable {
                    accountPhase(cu, task, phase_start, compute_ticks,
                                 false, has_timing ? &timing : nullptr);
                    finishPhase(cu, task, phase_idx, phase_start);
                    runPhase(cu, task, phase_idx + 1, std::move(done));
                });
        };
        if (bytes > 0) {
            cu.channel->requestTracked(
                bytes, portBytesPerSec_,
                [finish, done = std::move(done)](
                    const TransferTiming &t) mutable {
                    finish(t, true, std::move(done));
                });
        } else {
            finish(TransferTiming{}, false, std::move(done));
        }
        return;
    }

    // Double buffering: the phase finishes when both its compute and
    // its DRAM traffic have completed. The shared state carries the
    // transfer's lifecycle timestamps to the attribution step.
    struct PhaseState
    {
        int remaining = 2;
        bool hasTiming = false;
        TransferTiming timing;
    };
    auto state = std::make_shared<PhaseState>();
    auto advance = [this, &cu, &task, phase_idx, phase_start,
                    compute_ticks, done = std::move(done),
                    state]() mutable {
        if (--state->remaining == 0) {
            accountPhase(cu, task, phase_start, compute_ticks, true,
                         state->hasTiming ? &state->timing : nullptr);
            finishPhase(cu, task, phase_idx, phase_start);
            runPhase(cu, task, phase_idx + 1, std::move(done));
        }
    };

    queue_.scheduleIn(compute_ticks, advance);
    if (bytes > 0) {
        cu.channel->requestTracked(
            bytes, portBytesPerSec_,
            [state, advance](const TransferTiming &t) mutable {
                state->timing = t;
                state->hasTiming = true;
                advance();
            });
    } else {
        advance();
    }
}

void
Fa3cPlatform::accountPhase(Cu &cu, const TaskModel &task,
                           sim::Tick phase_start,
                           sim::Tick compute_ticks, bool overlapped,
                           const TransferTiming *timing)
{
    sim::PerfBank &bank = *cu.perf;
    const sim::Tick end = queue_.now();
    const sim::Tick elapsed = end - phase_start;

    // A parameter sync holds the CU at the weight-sync barrier for
    // its whole duration; none of it is useful compute.
    if (&task == &syncTask_) {
        bank.add("stall_weight_sync_ticks", elapsed);
        return;
    }
    if (!timing) {
        // Pure compute phase: elapsed == compute_ticks.
        bank.add("busy_ticks", elapsed);
        return;
    }
    if (!overlapped) {
        // Serial DRAM-then-compute: the queue wait is bandwidth
        // contention, the service time is operand starvation, and
        // the compute tail is busy. The three regions tile
        // [phase_start, end] exactly (queuedAt == phase_start).
        bank.add("busy_ticks", compute_ticks);
        bank.add("stall_dram_bw_ticks", timing->queueWait());
        bank.add("stall_operand_ticks", timing->serviceTicks());
        return;
    }
    // Double buffered: compute covers [phase_start, compute_end];
    // only transfer time exposed beyond that is a stall, split by
    // interval overlap with the queue-wait and service windows.
    const sim::Tick compute_end = phase_start + compute_ticks;
    if (timing->completedAt <= compute_end) {
        bank.add("busy_ticks", elapsed);
        return;
    }
    bank.add("busy_ticks", compute_ticks);
    const sim::Tick bw_stall = timing->startedAt > compute_end
                                   ? timing->startedAt - compute_end
                                   : 0;
    bank.add("stall_dram_bw_ticks", bw_stall);
    bank.add("stall_operand_ticks",
             timing->completedAt -
                 std::max(timing->startedAt, compute_end));
}

sim::PerfCounterFile::Snapshot
Fa3cPlatform::perfSnapshot() const
{
    sim::PerfCounterFile::Snapshot snap = perf_.snapshot();
    const std::uint64_t now = queue_.now();
    for (const auto &cu : cus_) {
        auto &bank = snap["cu" + std::to_string(cu.id)];
        std::uint64_t accounted = 0;
        for (const char *cause :
             {"busy_ticks", "stall_operand_ticks",
              "stall_dram_bw_ticks", "stall_weight_sync_ticks"})
            accounted += bank[cause]; // creates absent causes as 0
        bank["total_ticks"] = now;
        bank["idle_ticks"] = now >= accounted ? now - accounted : 0;
    }
    return snap;
}

double
Fa3cPlatform::utilization(bool inference) const
{
    const sim::Tick now = queue_.now();
    if (now == 0)
        return 0.0;
    sim::Tick busy = 0;
    int count = 0;
    for (const auto &cu : cus_) {
        const bool matches = inference ? cu.servesInference
                                       : cu.servesTraining;
        if (!matches)
            continue;
        busy += cu.busyTicks + (cu.busy ? now - cu.busySince : 0);
        ++count;
    }
    if (count == 0)
        return 0.0;
    return static_cast<double>(busy) /
           (static_cast<double>(now) * count);
}

double
Fa3cPlatform::inferenceCuUtilization() const
{
    return utilization(true);
}

double
Fa3cPlatform::trainingCuUtilization() const
{
    return utilization(false);
}

std::uint64_t
Fa3cPlatform::dramBytes() const
{
    std::uint64_t sum = 0;
    for (const auto &ch : channels_)
        sum += ch->bytesTransferred();
    return sum;
}

} // namespace fa3c::core
