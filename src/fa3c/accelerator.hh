/**
 * @file
 * The event-driven FA3C platform simulator: CU pairs (one inference
 * CU and one training CU each, or unified CUs for the SingleCU
 * variant), DRAM channels, and the PCI-E DMA engine. Agents submit
 * tasks; completion callbacks fire in simulated time, so throughput,
 * queueing, and bandwidth contention all emerge from the event queue.
 */

#ifndef FA3C_FA3C_ACCELERATOR_HH
#define FA3C_FA3C_ACCELERATOR_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "fa3c/config.hh"
#include "fa3c/dram_model.hh"
#include "fa3c/task_model.hh"
#include "nn/a3c_network.hh"
#include "sim/event_queue.hh"
#include "sim/perf_counters.hh"
#include "sim/stats.hh"

namespace fa3c::core {

/** One executed task, for timeline inspection. */
struct TaskTraceEntry
{
    const char *kind; ///< "inference", "training", "param-sync"
    int cuId;
    sim::Tick start;
    sim::Tick end;
};

/** The simulated FA3C board. */
class Fa3cPlatform
{
  public:
    /**
     * @param queue   The shared event queue.
     * @param cfg     Platform configuration (variant, CU pairs, ...).
     * @param net_cfg The network the CUs execute.
     * @param t_max   Training batch size.
     */
    Fa3cPlatform(sim::EventQueue &queue, const Fa3cConfig &cfg,
                 const nn::NetConfig &net_cfg, int t_max);

    /** Queue one inference task; @p done fires on completion. */
    void submitInference(std::function<void()> done);

    /** Queue one training task (BW + GC + RMSProp). */
    void submitTraining(std::function<void()> done);

    /** Queue one parameter-sync task. */
    void submitParamSync(std::function<void()> done);

    /** DMA @p bytes host-to-device over PCI-E. */
    void hostToDevice(double bytes, std::function<void()> done);

    /** DMA @p bytes device-to-host over PCI-E. */
    void deviceToHost(double bytes, std::function<void()> done);

    const Fa3cConfig &config() const { return cfg_; }
    const HwNetwork &network() const { return hwNet_; }
    sim::StatGroup &stats() { return stats_; }

    /**
     * The platform's private perf-counter file. Each CU owns a bank
     * ("cu0", "cu1", ...) whose cycle accounting is exact: every
     * completed phase's elapsed ticks are attributed to exactly one
     * of busy_ticks (compute), stall_operand_ticks (own transfer
     * service time exposed beyond compute), stall_dram_bw_ticks
     * (channel queue wait exposed beyond compute), or
     * stall_weight_sync_ticks (parameter-sync barrier), so the four
     * categories plus derived idle always sum to elapsed sim time.
     * DRAM channels and the PCIe engine bank their own traffic
     * ("dram.ch0", ..., "pcie").
     */
    sim::PerfCounterFile &perf() { return perf_; }

    /**
     * Point-in-time copy of perf() with derived counters added to
     * every CU bank: total_ticks (sim time so far) and idle_ticks
     * (total minus all attributed categories, clamped at zero).
     * Attribution happens at phase completion, so the categories sum
     * to total exactly whenever no task is in flight; mid-task the
     * current phase's ticks show up as idle until it completes.
     */
    sim::PerfCounterFile::Snapshot perfSnapshot() const;

    /** Mean busy fraction of the inference CUs over the run so far. */
    double inferenceCuUtilization() const;

    /** Mean busy fraction of the training CUs over the run so far. */
    double trainingCuUtilization() const;

    /** Total DRAM bytes moved so far. */
    std::uint64_t dramBytes() const;

    /** Record the next @p max_entries executed tasks. */
    void enableTrace(std::size_t max_entries = 4096);

    /** The recorded timeline (empty unless enableTrace was called). */
    const std::vector<TaskTraceEntry> &trace() const { return trace_; }

  private:
    struct Cu
    {
        int id;
        bool servesInference;
        bool servesTraining;
        DramChannel *channel;
        std::string track; ///< trace track name ("CU-infer 0", ...)
        bool busy = false;
        sim::Tick busyTicks = 0;
        sim::Tick busySince = 0;
        sim::PerfBank *perf = nullptr;
    };

    struct Queued
    {
        const TaskModel *task;
        bool isInference;
        std::function<void()> done;
    };

    sim::EventQueue &queue_;
    Fa3cConfig cfg_;
    HwNetwork hwNet_;
    sim::StatGroup stats_;
    sim::PerfCounterFile perf_;
    std::vector<std::unique_ptr<DramChannel>> channels_;
    std::unique_ptr<DramChannel> pcie_;
    std::vector<Cu> cus_;
    TaskModel inferenceTask_;
    TaskModel trainingTask_;
    TaskModel syncTask_;
    std::deque<Queued> inferenceQueue_;
    std::deque<Queued> trainingQueue_;
    double portBytesPerSec_;
    std::vector<TaskTraceEntry> trace_;
    std::size_t traceLimit_ = 0;

    // Per-phase and per-task elapsed-cycle distributions, pointing
    // into stats_ (std::map nodes are stable).
    std::vector<sim::Distribution *> inferPhaseDists_;
    std::vector<sim::Distribution *> trainPhaseDists_;
    std::vector<sim::Distribution *> syncPhaseDists_;
    sim::Distribution *inferTaskDist_ = nullptr;
    sim::Distribution *trainTaskDist_ = nullptr;
    sim::Distribution *syncTaskDist_ = nullptr;

    void dispatch();
    void execute(Cu &cu, const TaskModel &task,
                 std::function<void()> done);
    void runPhase(Cu &cu, const TaskModel &task, std::size_t phase_idx,
                  std::function<void()> done);
    void accountPhase(Cu &cu, const TaskModel &task,
                      sim::Tick phase_start, sim::Tick compute_ticks,
                      bool overlapped, const TransferTiming *timing);
    void recordTrace(const Cu &cu, const TaskModel &task,
                     sim::Tick start);
    void finishPhase(const Cu &cu, const TaskModel &task,
                     std::size_t phase_idx, sim::Tick start);
    void finishTask(const Cu &cu, const TaskModel &task);
    const std::vector<sim::Distribution *> &
    phaseDists(const TaskModel &task) const;
    sim::Distribution *taskDist(const TaskModel &task) const;
    double ticksToCycles(sim::Tick ticks) const;
    double utilization(bool inference) const;
};

} // namespace fa3c::core

#endif // FA3C_FA3C_ACCELERATOR_HH
