#include "fa3c/buffers.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/perf_counters.hh"

namespace fa3c::core {

OnChipBuffer::OnChipBuffer(int rows)
    : rows_(rows),
      data_(static_cast<std::size_t>(rows) * rowWords(), 0.0f)
{
    FA3C_ASSERT(rows > 0, "OnChipBuffer needs at least one row");
    // Track the largest buffer ever allocated: the occupancy
    // high-water mark a real BRAM budget would have to cover.
    sim::perf().bank("line_buffer").maxOf(
        "onchip_rows_hwm", static_cast<std::uint64_t>(rows));
}

std::span<float>
OnChipBuffer::row(int r)
{
    FA3C_ASSERT(r >= 0 && r < rows_, "OnChipBuffer row ", r, " of ",
                rows_);
    return std::span<float>(data_).subspan(
        static_cast<std::size_t>(r) * rowWords(), rowWords());
}

std::span<const float>
OnChipBuffer::row(int r) const
{
    FA3C_ASSERT(r >= 0 && r < rows_, "OnChipBuffer row ", r, " of ",
                rows_);
    return std::span<const float>(data_).subspan(
        static_cast<std::size_t>(r) * rowWords(), rowWords());
}

int
OnChipBuffer::loadBurst(int first_row, std::span<const float> words)
{
    FA3C_ASSERT(words.size() % rowWords() == 0,
                "burst must be a whole number of 16-word beats");
    const int beat_rows = static_cast<int>(words.size()) / rowWords();
    FA3C_ASSERT(first_row >= 0 && first_row + beat_rows <= rows_,
                "burst overflows the buffer");
    std::copy(words.begin(), words.end(),
              data_.begin() +
                  static_cast<std::size_t>(first_row) * rowWords());
    {
        static auto &bursts =
            sim::perf().bank("line_buffer").counter("bursts");
        static auto &beats =
            sim::perf().bank("line_buffer").counter("burst_beats");
        bursts.fetch_add(1, std::memory_order_relaxed);
        beats.fetch_add(static_cast<std::uint64_t>(beat_rows),
                        std::memory_order_relaxed);
    }
    return beat_rows;
}

LineBuffer::LineBuffer(int width)
    : width_(width), regs_(static_cast<std::size_t>(width), 0.0f)
{
    FA3C_ASSERT(width > 0, "LineBuffer needs at least one register");
}

float
LineBuffer::at(int i) const
{
    FA3C_ASSERT(i >= 0 && i < width_, "LineBuffer index ", i, " of ",
                width_);
    return regs_[static_cast<std::size_t>(i)];
}

void
LineBuffer::set(int i, float v)
{
    FA3C_ASSERT(i >= 0 && i < width_, "LineBuffer index ", i, " of ",
                width_);
    regs_[static_cast<std::size_t>(i)] = v;
}

void
LineBuffer::shiftLeft(float fill)
{
    std::copy(regs_.begin() + 1, regs_.end(), regs_.begin());
    regs_.back() = fill;
}

void
LineBuffer::stitch(const OnChipBuffer &buffer, std::span<const int> rows)
{
    static auto &stitches =
        sim::perf().bank("line_buffer").counter("stitches");
    stitches.fetch_add(1, std::memory_order_relaxed);
    int reg = 0;
    for (int r : rows) {
        auto src = buffer.row(r);
        for (int w = 0; w < OnChipBuffer::rowWords() && reg < width_;
             ++w)
            regs_[static_cast<std::size_t>(reg++)] =
                src[static_cast<std::size_t>(w)];
        if (reg >= width_)
            break;
    }
    while (reg < width_)
        regs_[static_cast<std::size_t>(reg++)] = 0.0f;
}

void
LineBuffer::scatter(OnChipBuffer &buffer, std::span<const int> rows) const
{
    static auto &scatters =
        sim::perf().bank("line_buffer").counter("scatters");
    scatters.fetch_add(1, std::memory_order_relaxed);
    int reg = 0;
    for (int r : rows) {
        auto dst = buffer.row(r);
        for (int w = 0; w < OnChipBuffer::rowWords() && reg < width_;
             ++w)
            dst[static_cast<std::size_t>(w)] =
                regs_[static_cast<std::size_t>(reg++)];
        if (reg >= width_)
            break;
    }
}

} // namespace fa3c::core
