/**
 * @file
 * The two-level buffer hierarchy (Section 4.5): on-chip buffers made
 * of 16-word BRAM rows, and line buffers made of registers that the
 * Buffer Control Unit (BCU) fills through *shifting*, *stitching*,
 * and *scattering* operations so the PEs never stall on operands.
 */

#ifndef FA3C_FA3C_BUFFERS_HH
#define FA3C_FA3C_BUFFERS_HH

#include <cstdint>
#include <span>
#include <vector>

#include "fa3c/config.hh"

namespace fa3c::core {

/**
 * An on-chip buffer: @p rows one-dimensional word arrays, each
 * dramBurstWords (16) wide, matching one DRAM burst beat.
 */
class OnChipBuffer
{
  public:
    /** Allocate @p rows zero-filled rows. */
    explicit OnChipBuffer(int rows);

    int rows() const { return rows_; }

    /** Row width in words (always the burst width). */
    static constexpr int rowWords() { return dramBurstWords; }

    /** Mutable view of row @p r. */
    std::span<float> row(int r);

    /** Const view of row @p r. */
    std::span<const float> row(int r) const;

    /**
     * Fill rows [first_row, ...) from a flat word stream (a DRAM
     * burst). @p words must be a multiple of the row width.
     *
     * @return Number of rows written.
     */
    int loadBurst(int first_row, std::span<const float> words);

  private:
    int rows_;
    std::vector<float> data_;
};

/**
 * A line buffer: a one-dimensional register array feeding PEs.
 *
 * The BCU operations mirror Section 4.5: shifting for regular
 * horizontal access, stitching to compose one logical feature-map row
 * from several 16-word buffer rows, and scattering to distribute PE
 * outputs back to multiple buffer rows.
 */
class LineBuffer
{
  public:
    /** Allocate a zero-filled line buffer of @p width registers. */
    explicit LineBuffer(int width);

    int width() const { return width_; }

    float at(int i) const;
    void set(int i, float v);

    /** All registers as a span. */
    std::span<const float> values() const { return regs_; }

    /**
     * Shifting: move every register one position left (index 0 drops
     * out), filling the rightmost register with @p fill.
     */
    void shiftLeft(float fill = 0.0f);

    /**
     * Stitching: fill the line buffer by concatenating the given
     * on-chip buffer rows (16 words each). Trailing registers beyond
     * the stitched words are zeroed.
     */
    void stitch(const OnChipBuffer &buffer, std::span<const int> rows);

    /**
     * Scattering: write the line buffer contents into the given
     * on-chip buffer rows, 16 words per row.
     */
    void scatter(OnChipBuffer &buffer, std::span<const int> rows) const;

  private:
    int width_;
    std::vector<float> regs_;
};

} // namespace fa3c::core

#endif // FA3C_FA3C_BUFFERS_HH
