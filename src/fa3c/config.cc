#include "fa3c/config.hh"

#include "sim/logging.hh"

namespace fa3c::core {

const char *
variantName(Variant v)
{
    switch (v) {
      case Variant::Standard: return "FA3C";
      case Variant::Alt1: return "FA3C-Alt1";
      case Variant::Alt2: return "FA3C-Alt2";
      case Variant::SingleCU: return "FA3C-SingleCU";
    }
    FA3C_PANIC("bad Variant ", static_cast<int>(v));
}

Fa3cConfig
Fa3cConfig::vcu1525()
{
    Fa3cConfig cfg;
    cfg.cuPairs = 2;
    cfg.pesPerCu = 64;
    cfg.dram.channels = 4;
    cfg.dram.peakBytesPerSec = 143e9;
    return cfg;
}

Fa3cConfig
Fa3cConfig::stratixV()
{
    Fa3cConfig cfg;
    cfg.cuPairs = 1;
    cfg.pesPerCu = 64;
    cfg.dram.channels = 2;
    // Stratix V board: two DDR3-1600 channels.
    cfg.dram.peakBytesPerSec = 25.6e9;
    cfg.clockHz = 150e6;
    return cfg;
}

} // namespace fa3c::core
