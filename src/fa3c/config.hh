/**
 * @file
 * Configuration of the FA3C platform model: compute-unit geometry,
 * platform variants (Section 5.4), and the off-chip interfaces.
 */

#ifndef FA3C_FA3C_CONFIG_HH
#define FA3C_FA3C_CONFIG_HH

#include <cstdint>

namespace fa3c::core {

/** Width of the off-chip DRAM interface and of on-chip buffer rows,
 * in 32-bit words (512 bits per burst beat). */
constexpr int dramBurstWords = 16;

/** Patch edge for the DRAM parameter layout (Figure 7c): parameters
 * are stored as 16x16-word patches the TLU can transpose. */
constexpr int patchWords = 16;

/** The design-space variants compared in Figure 10. */
enum class Variant
{
    Standard, ///< FW + BW layouts via the TLU; dual CUs per pair
    Alt1,     ///< all computation types use the FW parameter layout
    Alt2,     ///< both layouts materialized in DRAM at update time
    SingleCU, ///< one CU with 2*N_PE PEs handles inference + training
};

/** Human-readable variant name. */
const char *variantName(Variant v);

/** Off-chip DRAM model parameters. */
struct DramConfig
{
    int channels = 4;              ///< VCU1525 has four DDR4 channels
    double peakBytesPerSec = 143e9; ///< Table 5: 143 GB/s aggregate
    double efficiency = 0.80;      ///< sustained fraction of peak
    double accessLatencySec = 120e-9; ///< fixed per-request latency
};

/** PCI-E DMA model parameters (Gen3 x16). */
struct PcieConfig
{
    double bytesPerSec = 12e9;     ///< effective DMA bandwidth
    double latencySec = 1.5e-6;    ///< per-transfer round-trip latency
};

/** The FA3C platform configuration. */
struct Fa3cConfig
{
    Variant variant = Variant::Standard;
    double clockHz = 180e6;  ///< Table 5: 180 MHz fabric clock
    int cuPairs = 2;         ///< VCU1525 build: two CU pairs
    int pesPerCu = 64;       ///< 64 PEs per CU
    int rmspropUnits = 4;    ///< RUs; 4 saturate a 16-word interface
    int tluCount = 2;        ///< TLUs per CU (double buffering)
    /** Overlap each phase's compute with its DRAM traffic (the
     * two-level buffer hierarchy's double buffering). Disabling it
     * serializes the two — the ablation of Section 4.4.3's design. */
    bool doubleBuffering = true;
    DramConfig dram;
    PcieConfig pcie;

    /** The VCU1525 (VU9P) configuration of Section 5. */
    static Fa3cConfig vcu1525();

    /**
     * The Stratix V configuration used for the Figure 10 comparison:
     * a single CU pair on a smaller device with one DRAM channel.
     */
    static Fa3cConfig stratixV();

    /** Total PEs across all CUs. */
    int
    totalPes() const
    {
        return cuPairs * 2 * pesPerCu;
    }

    /** PEs available in one CU (2x for the SingleCU variant). */
    int
    cuPes() const
    {
        return variant == Variant::SingleCU ? 2 * pesPerCu : pesPerCu;
    }

    /** Number of independently schedulable CUs. */
    int
    cuCount() const
    {
        return variant == Variant::SingleCU ? cuPairs : 2 * cuPairs;
    }

    /** Seconds per fabric clock cycle. */
    double secondsPerCycle() const { return 1.0 / clockHz; }
};

} // namespace fa3c::core

#endif // FA3C_FA3C_CONFIG_HH
