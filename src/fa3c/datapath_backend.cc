#include "fa3c/datapath_backend.hh"

#include <algorithm>

#include "fa3c/tlu.hh"
#include "nn/layers.hh"
#include "sim/logging.hh"

namespace fa3c::core {

namespace {

/** Copy a flat span into a [N, 1, 1] staging tensor. */
void
toColumn(std::span<const float> src, Tensor &dst)
{
    FA3C_ASSERT(dst.numel() == src.size(), "toColumn size");
    std::copy(src.begin(), src.end(), dst.data().begin());
}

} // namespace

DatapathBackend::DatapathBackend(const nn::A3cNetwork &net,
                                 const Fa3cConfig &cfg)
    : net_(net), cfg_(cfg), pes_(cfg.cuPes())
{
    auto make_layer = [](const nn::ConvSpec &spec, std::string w,
                         std::string b) {
        const int kk = spec.kernel * spec.kernel;
        Layer layer;
        layer.spec = spec;
        layer.wName = std::move(w);
        layer.bName = std::move(b);
        layer.fw = ParamMatrix(spec.inChannels * kk, spec.outChannels);
        layer.bw = ParamMatrix(spec.outChannels * kk, spec.inChannels);
        layer.gradScratch =
            ParamMatrix(spec.inChannels * kk, spec.outChannels);
        layer.weightScratch.assign(spec.weightCount(), 0.0f);
        layer.biasScratch.assign(spec.biasCount(), 0.0f);
        return layer;
    };
    layers_.push_back(make_layer(net.conv1(), "conv1.w", "conv1.b"));
    layers_.push_back(make_layer(net.conv2(), "conv2.w", "conv2.b"));
    layers_.push_back(make_layer(asConv(net.fc3()), "fc3.w", "fc3.b"));
    layers_.push_back(make_layer(asConv(net.fc4()), "fc4.w", "fc4.b"));

    fc3In_ = Tensor(tensor::Shape({net.fc3().inFeatures, 1, 1}));
    fc3Out_ = Tensor(tensor::Shape({net.fc3().outFeatures, 1, 1}));
    fc4In_ = Tensor(tensor::Shape({net.fc4().inFeatures, 1, 1}));
    fc4Out_ = Tensor(tensor::Shape({net.fc4().outFeatures, 1, 1}));
    gFc4In_ = Tensor(fc4In_.shape());
    gFc3In_ = Tensor(fc3In_.shape());
    gFc3Out_ = Tensor(fc3Out_.shape());
}

void
DatapathBackend::rebuildLayouts(const nn::ParamSet &params)
{
    for (auto &layer : layers_) {
        layer.fw = buildFwLayout(layer.spec, params.view(layer.wName));
        if (cfg_.variant != Variant::Alt1) {
            // The BW image is produced the way the hardware does it:
            // pack the FW matrix into DRAM patches, stream them
            // through the TLU transposer.
            const std::vector<float> packed = packPatches(layer.fw);
            layer.bw = loadBwViaTlu(layer.spec, packed);
        }
    }
    layoutsValid_ = true;
}

void
DatapathBackend::onParamSync(const nn::ParamSet &params)
{
    rebuildLayouts(params);
}

void
DatapathBackend::forward(const nn::ParamSet &params,
                         const tensor::Tensor &obs,
                         nn::A3cNetwork::Activations &act)
{
    if (!layoutsValid_)
        rebuildLayouts(params);

    act.input = obs;
    auto &conv1 = layers_[0];
    auto &conv2 = layers_[1];
    auto &fc3 = layers_[2];
    auto &fc4 = layers_[3];

    StageModel m = pes_.convForward(conv1.spec, act.input, conv1.fw,
                                    params.view(conv1.bName),
                                    act.conv1Pre);
    stats_.counter("cycles.fw").inc(m.cycles);
    nn::reluForward(act.conv1Pre, act.conv1Act);

    m = pes_.convForward(conv2.spec, act.conv1Act, conv2.fw,
                         params.view(conv2.bName), act.conv2Pre);
    stats_.counter("cycles.fw").inc(m.cycles);
    nn::reluForward(act.conv2Pre, act.conv2Act);
    std::copy(act.conv2Act.data().begin(), act.conv2Act.data().end(),
              act.conv2Flat.data().begin());

    toColumn(act.conv2Flat.data(), fc3In_);
    m = pes_.convForward(fc3.spec, fc3In_, fc3.fw,
                         params.view(fc3.bName), fc3Out_);
    stats_.counter("cycles.fw").inc(m.cycles);
    std::copy(fc3Out_.data().begin(), fc3Out_.data().end(),
              act.fc3Pre.data().begin());
    nn::reluForward(act.fc3Pre, act.fc3Act);

    toColumn(act.fc3Act.data(), fc4In_);
    m = pes_.convForward(fc4.spec, fc4In_, fc4.fw,
                         params.view(fc4.bName), fc4Out_);
    stats_.counter("cycles.fw").inc(m.cycles);
    std::copy(fc4Out_.data().begin(), fc4Out_.data().end(),
              act.out.data().begin());
}

StageModel
DatapathBackend::backwardLayer(const Layer &layer, const Tensor &g_out,
                               Tensor &g_in) const
{
    if (cfg_.variant == Variant::Alt1)
        return pes_.convBackwardFwLayout(layer.spec, g_out, layer.fw,
                                         g_in);
    return pes_.convBackward(layer.spec, g_out, layer.bw, g_in);
}

void
DatapathBackend::accumulateGrads(Layer &layer, nn::ParamSet &grads)
{
    fwLayoutToWeights(layer.spec, layer.gradScratch,
                      layer.weightScratch);
    auto g_w = grads.view(layer.wName);
    for (std::size_t i = 0; i < g_w.size(); ++i)
        g_w[i] += layer.weightScratch[i];
    auto g_b = grads.view(layer.bName);
    for (std::size_t i = 0; i < g_b.size(); ++i)
        g_b[i] += layer.biasScratch[i];
}

void
DatapathBackend::backward(const nn::ParamSet &params,
                          const nn::A3cNetwork::Activations &act,
                          const tensor::Tensor &g_out,
                          nn::ParamSet &grads)
{
    if (!layoutsValid_)
        rebuildLayouts(params);

    auto &conv1 = layers_[0];
    auto &conv2 = layers_[1];
    auto &fc3 = layers_[2];
    auto &fc4 = layers_[3];

    auto run_gc = [this](Layer &layer, const Tensor &in,
                         const Tensor &gout, nn::ParamSet &out_grads) {
        std::fill(layer.gradScratch.data().begin(),
                  layer.gradScratch.data().end(), 0.0f);
        std::fill(layer.biasScratch.begin(), layer.biasScratch.end(),
                  0.0f);
        const StageModel m =
            pes_.convGradient(layer.spec, in, gout, layer.gradScratch,
                              layer.biasScratch);
        stats_.counter("cycles.gc").inc(m.cycles);
        accumulateGrads(layer, out_grads);
    };

    // FC4: GC then BW (Section 4.3 order, last layer first).
    toColumn(act.fc3Act.data(), fc4In_);
    Tensor g_fc4_out(fc4Out_.shape());
    toColumn(g_out.data(), g_fc4_out);
    run_gc(fc4, fc4In_, g_fc4_out, grads);
    StageModel m = backwardLayer(fc4, g_fc4_out, gFc4In_);
    stats_.counter("cycles.bw").inc(m.cycles);

    // ReLU before FC4.
    Tensor g_fc3_act(tensor::Shape({net_.fc3().outFeatures}));
    std::copy(gFc4In_.data().begin(), gFc4In_.data().end(),
              g_fc3_act.data().begin());
    Tensor g_fc3_pre(g_fc3_act.shape());
    nn::reluBackward(act.fc3Pre, g_fc3_act, g_fc3_pre);

    // FC3.
    toColumn(act.conv2Flat.data(), fc3In_);
    toColumn(g_fc3_pre.data(), gFc3Out_);
    run_gc(fc3, fc3In_, gFc3Out_, grads);
    m = backwardLayer(fc3, gFc3Out_, gFc3In_);
    stats_.counter("cycles.bw").inc(m.cycles);

    // ReLU before FC3, reshaped onto the conv2 feature map.
    Tensor g_conv2_act(act.conv2Pre.shape());
    std::copy(gFc3In_.data().begin(), gFc3In_.data().end(),
              g_conv2_act.data().begin());
    Tensor g_conv2_pre(act.conv2Pre.shape());
    nn::reluBackward(act.conv2Pre, g_conv2_act, g_conv2_pre);

    // Conv2.
    run_gc(conv2, act.conv1Act, g_conv2_pre, grads);
    Tensor g_conv1_act(act.conv1Pre.shape());
    m = backwardLayer(conv2, g_conv2_pre, g_conv1_act);
    stats_.counter("cycles.bw").inc(m.cycles);

    // ReLU before Conv2.
    Tensor g_conv1_pre(act.conv1Pre.shape());
    nn::reluBackward(act.conv1Pre, g_conv1_act, g_conv1_pre);

    // Conv1: GC only; no BW into the game screen.
    run_gc(conv1, act.input, g_conv1_pre, grads);
}

} // namespace fa3c::core
