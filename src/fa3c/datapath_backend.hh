/**
 * @file
 * The FA3C functional backend: an rl::DnnBackend whose layer math
 * runs through the accelerator's datapath model — FW/BW parameter
 * layouts, the TLU transpose path, and the PE-array dataflow — so an
 * A3C agent trained on it exercises the exact computation structure
 * of the hardware. Results match the reference backend up to
 * floating-point reassociation (verified by the equivalence tests).
 */

#ifndef FA3C_FA3C_DATAPATH_BACKEND_HH
#define FA3C_FA3C_DATAPATH_BACKEND_HH

#include <string>
#include <vector>

#include "fa3c/config.hh"
#include "fa3c/pe_array.hh"
#include "rl/backend.hh"
#include "sim/stats.hh"

namespace fa3c::core {

/** rl::DnnBackend running on the FA3C datapath model. */
class DatapathBackend : public rl::DnnBackend
{
  public:
    /**
     * @param net Network geometry (must outlive the backend).
     * @param cfg Platform variant (Alt1 switches the BW dataflow).
     */
    explicit DatapathBackend(const nn::A3cNetwork &net,
                             const Fa3cConfig &cfg = Fa3cConfig::vcu1525());

    const nn::A3cNetwork &network() const override { return net_; }

    /** Rebuild the staged FW/BW layout images (the DRAM copy). */
    void onParamSync(const nn::ParamSet &params) override;

    void forward(const nn::ParamSet &params, const tensor::Tensor &obs,
                 nn::A3cNetwork::Activations &act) override;

    void backward(const nn::ParamSet &params,
                  const nn::A3cNetwork::Activations &act,
                  const tensor::Tensor &g_out,
                  nn::ParamSet &grads) override;

    /** Accumulated datapath cycle counters ("cycles.fw", ...). */
    const sim::StatGroup &cycleStats() const { return stats_; }

  private:
    struct Layer
    {
        nn::ConvSpec spec;
        std::string wName;
        std::string bName;
        ParamMatrix fw;
        ParamMatrix bw;
        ParamMatrix gradScratch;      ///< FW-layout gradient buffer
        std::vector<float> weightScratch;
        std::vector<float> biasScratch;
    };

    const nn::A3cNetwork &net_;
    Fa3cConfig cfg_;
    PeArray pes_;
    sim::StatGroup stats_;
    std::vector<Layer> layers_;
    bool layoutsValid_ = false;

    // Rank-3 staging tensors for the FC layers' degenerate-conv form.
    Tensor fc3In_, fc3Out_, fc4In_, fc4Out_;
    Tensor gFc4In_, gFc3In_, gFc3Out_, gConv2Act_, gConv2Pre_;
    Tensor gConv1Act_, gConv1Pre_;

    void rebuildLayouts(const nn::ParamSet &params);
    void accumulateGrads(Layer &layer, nn::ParamSet &grads);
    StageModel backwardLayer(const Layer &layer, const Tensor &g_out,
                             Tensor &g_in) const;
};

} // namespace fa3c::core

#endif // FA3C_FA3C_DATAPATH_BACKEND_HH
