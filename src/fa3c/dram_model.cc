#include "fa3c/dram_model.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fa3c::core {

DramChannel::DramChannel(sim::EventQueue &queue, double bytes_per_sec,
                         double access_latency_s, sim::StatGroup &stats,
                         std::string name)
    : queue_(queue), bytesPerSec_(bytes_per_sec),
      latencySec_(access_latency_s), stats_(stats), name_(std::move(name))
{
    FA3C_ASSERT(bytes_per_sec > 0, "DramChannel bandwidth");
}

void
DramChannel::request(double bytes, double port_bytes_per_sec,
                     std::function<void()> done)
{
    FA3C_ASSERT(bytes >= 0, "negative transfer");
    pending_.push_back(
        Request{bytes, port_bytes_per_sec, std::move(done)});
    stats_.counter(name_ + ".requests").inc();
    if (!busy_)
        startNext();
}

void
DramChannel::startNext()
{
    if (pending_.empty()) {
        busy_ = false;
        return;
    }
    busy_ = true;
    Request req = std::move(pending_.front());
    pending_.pop_front();

    double bw = bytesPerSec_;
    if (req.portBw > 0)
        bw = std::min(bw, req.portBw);
    const double seconds = latencySec_ + req.bytes / bw;
    const sim::Tick duration = static_cast<sim::Tick>(
        seconds * static_cast<double>(sim::ticksPerSecond));
    busyTicks_ += duration;
    bytesDone_ += static_cast<std::uint64_t>(req.bytes);
    stats_.counter(name_ + ".bytes")
        .inc(static_cast<std::uint64_t>(req.bytes));

    queue_.scheduleIn(duration, [this, done = std::move(req.done)]() {
        if (done)
            done();
        startNext();
    });
}

} // namespace fa3c::core
