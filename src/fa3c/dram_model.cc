#include "fa3c/dram_model.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace fa3c::core {

namespace {

/** Human-readable trace track for a channel stat prefix. */
std::string
trackFor(const std::string &name)
{
    if (name == "pcie")
        return "PCIe";
    constexpr const char prefix[] = "dram.ch";
    if (name.rfind(prefix, 0) == 0)
        return "DRAM ch" + name.substr(sizeof(prefix) - 1);
    return "DRAM " + name;
}

} // namespace

DramChannel::DramChannel(sim::EventQueue &queue, double bytes_per_sec,
                         double access_latency_s, sim::StatGroup &stats,
                         std::string name)
    : queue_(queue), bytesPerSec_(bytes_per_sec),
      latencySec_(access_latency_s), stats_(stats), name_(std::move(name)),
      track_(trackFor(name_)),
      reqCounter_(&stats_.counter(name_ + ".requests")),
      bytesCounter_(&stats_.counter(name_ + ".bytes")),
      rowActCounter_(&stats_.counter(name_ + ".row_activations")),
      reqBytesDist_(&stats_.distribution(name_ + ".request_bytes")),
      queueDepthDist_(&stats_.distribution(name_ + ".queue_depth"))
{
    FA3C_ASSERT(bytes_per_sec > 0, "DramChannel bandwidth");
}

void
DramChannel::request(double bytes, double port_bytes_per_sec,
                     std::function<void()> done)
{
    requestTracked(bytes, port_bytes_per_sec,
                   [done = std::move(done)](const TransferTiming &) {
                       if (done)
                           done();
                   });
}

void
DramChannel::requestTracked(
    double bytes, double port_bytes_per_sec,
    std::function<void(const TransferTiming &)> done)
{
    FA3C_ASSERT(bytes >= 0, "negative transfer");
    pending_.push_back(Request{bytes, port_bytes_per_sec,
                               std::move(done), queue_.now()});
    reqCounter_->inc();
    queueDepthDist_->sample(static_cast<double>(pending_.size()));
    if (perf_) {
        perf_->add("requests");
        perf_->maxOf("queue_depth_hwm", pending_.size());
    }
    if (!busy_)
        startNext();
}

void
DramChannel::startNext()
{
    if (pending_.empty()) {
        busy_ = false;
        return;
    }
    busy_ = true;
    Request req = std::move(pending_.front());
    pending_.pop_front();

    double bw = bytesPerSec_;
    if (req.portBw > 0)
        bw = std::min(bw, req.portBw);
    const double seconds = latencySec_ + req.bytes / bw;
    const sim::Tick duration = static_cast<sim::Tick>(
        seconds * static_cast<double>(sim::ticksPerSecond));
    const sim::Tick start = queue_.now();
    const auto byte_count = static_cast<std::uint64_t>(req.bytes);
    // Every request opens at least one row; streaming a long burst
    // re-activates one row per row-buffer's worth of data.
    const std::uint64_t rows = 1 + byte_count / rowBufferBytes;
    busyTicks_ += duration;
    bytesDone_ += byte_count;
    rowActivations_ += rows;
    bytesCounter_->inc(byte_count);
    rowActCounter_->inc(rows);
    reqBytesDist_->sample(req.bytes);
    if (perf_) {
        perf_->add("bytes", byte_count);
        perf_->add("busy_ticks", duration);
        perf_->add("queue_wait_ticks", start - req.queuedAt);
        perf_->add("row_activations", rows);
    }

    const TransferTiming timing{req.queuedAt, start, start + duration};
    queue_.scheduleIn(duration, [this, start, byte_count, timing,
                                 done = std::move(req.done)]() {
        if (obs::TraceWriter *tw = obs::trace()) {
            const obs::TraceArg args[] = {
                {"bytes", static_cast<double>(byte_count)}};
            tw->completeEvent(track_, "xfer", start, queue_.now(), args);
            tw->counterEvent(track_ + " bytes", queue_.now(),
                             static_cast<double>(bytesDone_));
        }
        if (done)
            done(timing);
        startNext();
    });
}

} // namespace fa3c::core
