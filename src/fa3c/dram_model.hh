/**
 * @file
 * Event-driven off-chip DRAM channel model.
 *
 * A channel serves transfer requests FIFO; each request takes a fixed
 * access latency plus bytes / effective-bandwidth, where the
 * effective bandwidth is capped both by the channel and by the
 * requesting CU's 512-bit port. Contention between the CUs sharing a
 * channel emerges from the queueing.
 */

#ifndef FA3C_FA3C_DRAM_MODEL_HH
#define FA3C_FA3C_DRAM_MODEL_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/event_queue.hh"
#include "sim/perf_counters.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace fa3c::core {

/**
 * Lifecycle timestamps of one completed transfer. Requesters use the
 * queued->started gap (time lost to other requesters ahead in the
 * FIFO — bandwidth contention) separately from started->completed
 * (the transfer's own service time — operand latency) to attribute
 * stall cycles by cause.
 */
struct TransferTiming
{
    sim::Tick queuedAt = 0;
    sim::Tick startedAt = 0;
    sim::Tick completedAt = 0;

    sim::Tick queueWait() const { return startedAt - queuedAt; }
    sim::Tick serviceTicks() const { return completedAt - startedAt; }
};

/** One DRAM channel with FIFO service. */
class DramChannel
{
  public:
    /**
     * @param queue            The platform event queue.
     * @param bytes_per_sec    Effective channel bandwidth.
     * @param access_latency_s Fixed per-request latency.
     * @param name             Stat prefix.
     */
    DramChannel(sim::EventQueue &queue, double bytes_per_sec,
                double access_latency_s, sim::StatGroup &stats,
                std::string name);

    /**
     * Request a transfer.
     *
     * @param bytes          Transfer size.
     * @param port_bytes_per_sec Cap from the requester's port (0 = no
     *                       cap).
     * @param done           Invoked when the transfer completes.
     */
    void request(double bytes, double port_bytes_per_sec,
                 std::function<void()> done);

    /** As request(), but @p done receives the transfer's lifecycle
     * timestamps for stall attribution. */
    void
    requestTracked(double bytes, double port_bytes_per_sec,
                   std::function<void(const TransferTiming &)> done);

    /**
     * Attach a perf-counter bank; the channel then counts requests,
     * bytes, busy/queue-wait ticks, and the queue-depth high-water
     * mark into it. @p bank must outlive the channel (or be detached
     * with nullptr).
     */
    void setPerfBank(sim::PerfBank *bank) { perf_ = bank; }

    /** Total bytes transferred so far. */
    std::uint64_t bytesTransferred() const { return bytesDone_; }

    /** Busy time accumulated, in ticks. */
    sim::Tick busyTicks() const { return busyTicks_; }

    /** Estimated DRAM row activations so far (2 KB row buffer). */
    std::uint64_t rowActivations() const { return rowActivations_; }

    /** Bytes a row buffer serves before the next activation. */
    static constexpr std::uint64_t rowBufferBytes = 2048;

  private:
    struct Request
    {
        double bytes;
        double portBw;
        std::function<void(const TransferTiming &)> done;
        sim::Tick queuedAt;
    };

    sim::EventQueue &queue_;
    double bytesPerSec_;
    double latencySec_;
    sim::StatGroup &stats_;
    std::string name_;
    std::string track_; ///< trace track ("DRAM ch0", "PCIe", ...)
    bool busy_ = false;
    std::deque<Request> pending_;
    std::uint64_t bytesDone_ = 0;
    std::uint64_t rowActivations_ = 0;
    sim::Tick busyTicks_ = 0;
    sim::PerfBank *perf_ = nullptr;
    // Cached stat handles (map nodes are stable).
    sim::Counter *reqCounter_;
    sim::Counter *bytesCounter_;
    sim::Counter *rowActCounter_;
    sim::Distribution *reqBytesDist_;
    sim::Distribution *queueDepthDist_;

    void startNext();
};

} // namespace fa3c::core

#endif // FA3C_FA3C_DRAM_MODEL_HH
