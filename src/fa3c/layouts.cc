#include "fa3c/layouts.hh"

#include "sim/logging.hh"

namespace fa3c::core {

ParamMatrix::ParamMatrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) *
                static_cast<std::size_t>(cols),
            0.0f)
{
    FA3C_ASSERT(rows > 0 && cols > 0, "empty ParamMatrix");
}

float &
ParamMatrix::at(int r, int c)
{
    FA3C_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                "ParamMatrix index (", r, ",", c, ") out of ", rows_,
                "x", cols_);
    return data_[static_cast<std::size_t>(r) *
                     static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
}

float
ParamMatrix::at(int r, int c) const
{
    return const_cast<ParamMatrix &>(*this).at(r, c);
}

nn::ConvSpec
asConv(const nn::FcSpec &fc)
{
    return nn::ConvSpec{fc.inFeatures, 1, 1, fc.outFeatures, 1, 1};
}

namespace {

/** Index into the reference [O][I][K][K] weight order. */
std::size_t
refIdx(const nn::ConvSpec &s, int o, int i, int kr, int kc)
{
    return ((static_cast<std::size_t>(o) *
                 static_cast<std::size_t>(s.inChannels) +
             static_cast<std::size_t>(i)) *
                static_cast<std::size_t>(s.kernel) +
            static_cast<std::size_t>(kr)) *
               static_cast<std::size_t>(s.kernel) +
           static_cast<std::size_t>(kc);
}

} // namespace

ParamMatrix
buildFwLayout(const nn::ConvSpec &spec, std::span<const float> w)
{
    FA3C_ASSERT(w.size() == spec.weightCount(), "buildFwLayout size");
    const int kk = spec.kernel * spec.kernel;
    ParamMatrix fw(spec.inChannels * kk, spec.outChannels);
    for (int i = 0; i < spec.inChannels; ++i)
        for (int kr = 0; kr < spec.kernel; ++kr)
            for (int kc = 0; kc < spec.kernel; ++kc)
                for (int o = 0; o < spec.outChannels; ++o)
                    fw.at(i * kk + kr * spec.kernel + kc, o) =
                        w[refIdx(spec, o, i, kr, kc)];
    return fw;
}

ParamMatrix
buildBwLayout(const nn::ConvSpec &spec, std::span<const float> w)
{
    FA3C_ASSERT(w.size() == spec.weightCount(), "buildBwLayout size");
    const int kk = spec.kernel * spec.kernel;
    ParamMatrix bw(spec.outChannels * kk, spec.inChannels);
    for (int o = 0; o < spec.outChannels; ++o)
        for (int kr = 0; kr < spec.kernel; ++kr)
            for (int kc = 0; kc < spec.kernel; ++kc)
                for (int i = 0; i < spec.inChannels; ++i)
                    bw.at(o * kk + kr * spec.kernel + kc, i) =
                        w[refIdx(spec, o, i, kr, kc)];
    return bw;
}

void
fwLayoutToWeights(const nn::ConvSpec &spec, const ParamMatrix &fw,
                  std::span<float> w)
{
    FA3C_ASSERT(w.size() == spec.weightCount(), "fwLayoutToWeights size");
    const int kk = spec.kernel * spec.kernel;
    FA3C_ASSERT(fw.rows() == spec.inChannels * kk &&
                    fw.cols() == spec.outChannels,
                "fwLayoutToWeights shape");
    for (int i = 0; i < spec.inChannels; ++i)
        for (int kr = 0; kr < spec.kernel; ++kr)
            for (int kc = 0; kc < spec.kernel; ++kc)
                for (int o = 0; o < spec.outChannels; ++o)
                    w[refIdx(spec, o, i, kr, kc)] =
                        fw.at(i * kk + kr * spec.kernel + kc, o);
}

int
paddedRows(const nn::ConvSpec &spec)
{
    const int rows = spec.inChannels * spec.kernel * spec.kernel;
    return (rows + patchWords - 1) / patchWords * patchWords;
}

int
paddedCols(const nn::ConvSpec &spec)
{
    return (spec.outChannels + patchWords - 1) / patchWords * patchWords;
}

std::vector<float>
packPatches(const ParamMatrix &fw)
{
    const int prow = (fw.rows() + patchWords - 1) / patchWords;
    const int pcol = (fw.cols() + patchWords - 1) / patchWords;
    std::vector<float> packed(static_cast<std::size_t>(prow) *
                                  static_cast<std::size_t>(pcol) *
                                  patchWords * patchWords,
                              0.0f);
    std::size_t out = 0;
    for (int pr = 0; pr < prow; ++pr) {
        for (int pc = 0; pc < pcol; ++pc) {
            for (int r = 0; r < patchWords; ++r) {
                for (int c = 0; c < patchWords; ++c) {
                    const int rr = pr * patchWords + r;
                    const int cc = pc * patchWords + c;
                    packed[out++] =
                        (rr < fw.rows() && cc < fw.cols())
                            ? fw.at(rr, cc)
                            : 0.0f;
                }
            }
        }
    }
    return packed;
}

ParamMatrix
unpackFw(std::span<const float> packed, int rows, int cols)
{
    const int prow = (rows + patchWords - 1) / patchWords;
    const int pcol = (cols + patchWords - 1) / patchWords;
    FA3C_ASSERT(packed.size() ==
                    static_cast<std::size_t>(prow) *
                        static_cast<std::size_t>(pcol) * patchWords *
                        patchWords,
                "unpackFw packed size");
    ParamMatrix fw(rows, cols);
    std::size_t in = 0;
    for (int pr = 0; pr < prow; ++pr) {
        for (int pc = 0; pc < pcol; ++pc) {
            for (int r = 0; r < patchWords; ++r) {
                for (int c = 0; c < patchWords; ++c) {
                    const int rr = pr * patchWords + r;
                    const int cc = pc * patchWords + c;
                    const float v = packed[in++];
                    if (rr < rows && cc < cols)
                        fw.at(rr, cc) = v;
                }
            }
        }
    }
    return fw;
}

} // namespace fa3c::core
