/**
 * @file
 * DNN parameter layouts (Figure 7 of the paper).
 *
 * FA3C keeps a single copy of each layer's parameters in off-chip
 * DRAM, packed as 16x16-word patches of the *FW parameter layout*
 * matrix. The FW layout matrix has one row per element of the
 * I*K*K accumulation sequence and one column per output channel, so
 * forward propagation streams rows in order. Backward propagation
 * wants the transposed view (the *BW parameter layout*); the TLU
 * produces it on the fly by transposing each 16x16 patch during the
 * load (Section 4.4).
 *
 * A fully-connected layer is treated as a convolution with
 * R = C = K = 1 (Section 4.2.1), i.e. an FW matrix with I rows and O
 * columns.
 */

#ifndef FA3C_FA3C_LAYOUTS_HH
#define FA3C_FA3C_LAYOUTS_HH

#include <span>
#include <vector>

#include "fa3c/config.hh"
#include "nn/layers.hh"

namespace fa3c::core {

/** A dense row-major matrix of parameter words. */
class ParamMatrix
{
  public:
    ParamMatrix() = default;

    /** Allocate a zero-filled rows x cols matrix. */
    ParamMatrix(int rows, int cols);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    float &at(int r, int c);
    float at(int r, int c) const;

    std::span<const float> data() const { return data_; }
    std::span<float> data() { return data_; }

  private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<float> data_;
};

/**
 * Treat a fully-connected layer as the degenerate convolution the
 * paper describes (R = C = K = 1, every input feature its own
 * channel).
 */
nn::ConvSpec asConv(const nn::FcSpec &fc);

/**
 * Build the FW-layout matrix of a convolution layer.
 *
 * Row s = (i * K + kr) * K + kc holds, for every output channel o,
 * the weight w(in: i, out: o) at kernel position (kr, kc).
 *
 * @param w Weights in the reference [O][I][K][K] order.
 */
ParamMatrix buildFwLayout(const nn::ConvSpec &spec,
                          std::span<const float> w);

/**
 * Build the BW-layout matrix directly from the weights (the golden
 * model the TLU path is verified against).
 *
 * Row t = (o * K + kr) * K + kc holds, for every input channel i,
 * the weight w(in: i, out: o) at kernel position (kr, kc).
 */
ParamMatrix buildBwLayout(const nn::ConvSpec &spec,
                          std::span<const float> w);

/**
 * Scatter an FW-layout matrix back into reference [O][I][K][K] weight
 * order (used by the gradient path: the gradient buffer keeps the FW
 * layout, Section 4.4.4).
 */
void fwLayoutToWeights(const nn::ConvSpec &spec, const ParamMatrix &fw,
                       std::span<float> w);

/** Rows of the FW matrix padded to a whole number of patches. */
int paddedRows(const nn::ConvSpec &spec);

/** Cols of the FW matrix padded to a whole number of patches. */
int paddedCols(const nn::ConvSpec &spec);

/**
 * Pack the FW matrix into the DRAM image: 16x16-word patches stored
 * contiguously, patch-row-major (Figure 7c). Padding words are zero.
 */
std::vector<float> packPatches(const ParamMatrix &fw);

/**
 * Unpack a DRAM patch image straight into the FW layout (the load
 * path used by forward propagation — no transposition).
 *
 * @param rows Unpadded FW row count.
 * @param cols Unpadded FW column count.
 */
ParamMatrix unpackFw(std::span<const float> packed, int rows, int cols);

} // namespace fa3c::core

#endif // FA3C_FA3C_LAYOUTS_HH
