#include "fa3c/pe_array.hh"

#include <algorithm>
#include <vector>

#include "fa3c/buffers.hh"
#include "sim/logging.hh"
#include "sim/perf_counters.hh"

namespace fa3c::core {

namespace {

/** Count one functional stage execution in the global "pe_array"
 * bank: calls and multiply-accumulates, per stage kind. These run at
 * layer granularity, so the per-call bank lookup is cheap enough. */
void
countStage(const char *stage, const nn::ConvSpec &spec)
{
    const std::uint64_t macs =
        static_cast<std::uint64_t>(spec.outHeight()) *
        static_cast<std::uint64_t>(spec.outWidth()) *
        static_cast<std::uint64_t>(spec.outChannels) *
        static_cast<std::uint64_t>(spec.inChannels) *
        static_cast<std::uint64_t>(spec.kernel) *
        static_cast<std::uint64_t>(spec.kernel);
    sim::PerfBank &bank = sim::perf().bank("pe_array");
    bank.add(std::string(stage) + "_calls");
    bank.add(std::string(stage) + "_macs", macs);
}

} // namespace

PeArray::PeArray(int num_pes, const TimingParams &params)
    : numPes_(num_pes), params_(params)
{
    FA3C_ASSERT(num_pes > 0, "PeArray needs PEs");
}

StageModel
PeArray::convForward(const nn::ConvSpec &spec, const Tensor &in,
                     const ParamMatrix &fw, std::span<const float> bias,
                     Tensor &out) const
{
    const int kk = spec.kernel * spec.kernel;
    FA3C_ASSERT(fw.rows() == spec.inChannels * kk &&
                    fw.cols() == spec.outChannels,
                "convForward FW layout shape");
    FA3C_ASSERT(bias.size() == spec.biasCount(), "convForward bias");
    const int oh = spec.outHeight();
    const int ow = spec.outWidth();

    // Hardware order: each PE owns one output value; the parameter
    // sequence s = (i, kr, kc) streams past while the input value for
    // (s, r, c) is broadcast to the O PEs of that position.
    std::vector<float> accs(static_cast<std::size_t>(spec.outChannels));
    for (int r = 0; r < oh; ++r) {
        for (int c = 0; c < ow; ++c) {
            for (int o = 0; o < spec.outChannels; ++o)
                accs[static_cast<std::size_t>(o)] =
                    bias[static_cast<std::size_t>(o)];
            for (int i = 0; i < spec.inChannels; ++i) {
                for (int kr = 0; kr < spec.kernel; ++kr) {
                    const int y = r * spec.stride + kr;
                    for (int kc = 0; kc < spec.kernel; ++kc) {
                        const int s =
                            (i * spec.kernel + kr) * spec.kernel + kc;
                        const float v =
                            in.at(i, y, c * spec.stride + kc);
                        const float *w_row = fw.data().data() +
                            static_cast<std::size_t>(s) *
                                static_cast<std::size_t>(fw.cols());
                        for (int o = 0; o < spec.outChannels; ++o)
                            accs[static_cast<std::size_t>(o)] +=
                                v * w_row[o];
                    }
                }
            }
            for (int o = 0; o < spec.outChannels; ++o)
                out.at(o, r, c) = accs[static_cast<std::size_t>(o)];
        }
    }
    countStage("fw", spec);
    return stageModel(Stage::Fw, spec, numPes_, false, params_);
}

namespace {

/**
 * Shared backward dataflow: for every input element, accumulate the
 * products of overlapping output gradients and weights. @p weight_at
 * abstracts which layout delivers the weight word.
 */
template <typename WeightAt>
void
backwardSweep(const nn::ConvSpec &spec, const Tensor &g_out,
              WeightAt weight_at, Tensor &g_in)
{
    const int oh = spec.outHeight();
    const int ow = spec.outWidth();
    g_in.zero();
    for (int i = 0; i < spec.inChannels; ++i) {
        for (int y = 0; y < spec.inHeight; ++y) {
            for (int x = 0; x < spec.inWidth; ++x) {
                float acc = 0.0f;
                // Accumulation order: output channels outer, kernel
                // taps inner — the order the BW layout rows stream.
                for (int o = 0; o < spec.outChannels; ++o) {
                    for (int kr = 0; kr < spec.kernel; ++kr) {
                        const int ry = y - kr;
                        if (ry < 0 || ry % spec.stride != 0)
                            continue;
                        const int r = ry / spec.stride;
                        if (r >= oh)
                            continue;
                        for (int kc = 0; kc < spec.kernel; ++kc) {
                            const int cx = x - kc;
                            if (cx < 0 || cx % spec.stride != 0)
                                continue;
                            const int c = cx / spec.stride;
                            if (c >= ow)
                                continue;
                            acc += g_out.at(o, r, c) *
                                   weight_at(o, i, kr, kc);
                        }
                    }
                }
                g_in.at(i, y, x) = acc;
            }
        }
    }
}

} // namespace

StageModel
PeArray::convBackward(const nn::ConvSpec &spec, const Tensor &g_out,
                      const ParamMatrix &bw, Tensor &g_in) const
{
    const int kk = spec.kernel * spec.kernel;
    FA3C_ASSERT(bw.rows() == spec.outChannels * kk &&
                    bw.cols() == spec.inChannels,
                "convBackward BW layout shape");
    backwardSweep(
        spec, g_out,
        [&](int o, int i, int kr, int kc) {
            return bw.at((o * spec.kernel + kr) * spec.kernel + kc, i);
        },
        g_in);
    countStage("bw", spec);
    return stageModel(Stage::Bw, spec, numPes_, false, params_);
}

StageModel
PeArray::convBackwardFwLayout(const nn::ConvSpec &spec,
                              const Tensor &g_out, const ParamMatrix &fw,
                              Tensor &g_in) const
{
    const int kk = spec.kernel * spec.kernel;
    FA3C_ASSERT(fw.rows() == spec.inChannels * kk &&
                    fw.cols() == spec.outChannels,
                "convBackwardFwLayout FW layout shape");
    backwardSweep(
        spec, g_out,
        [&](int o, int i, int kr, int kc) {
            return fw.at((i * spec.kernel + kr) * spec.kernel + kc, o);
        },
        g_in);
    countStage("bw", spec);
    return stageModel(Stage::Bw, spec, numPes_, true, params_);
}

StageModel
PeArray::convGradient(const nn::ConvSpec &spec, const Tensor &in,
                      const Tensor &g_out, ParamMatrix &g_fw,
                      std::span<float> g_bias) const
{
    const int kk = spec.kernel * spec.kernel;
    FA3C_ASSERT(g_fw.rows() == spec.inChannels * kk &&
                    g_fw.cols() == spec.outChannels,
                "convGradient gradient-buffer shape");
    FA3C_ASSERT(g_bias.size() == spec.biasCount(), "convGradient bias");
    const int oh = spec.outHeight();
    const int ow = spec.outWidth();

    // The gradient buffer keeps the FW layout (Section 4.4.4): for
    // each sequence row s and output channel o, accumulate over the
    // output feature map (the accumulation frequency of GC).
    for (int i = 0; i < spec.inChannels; ++i) {
        for (int kr = 0; kr < spec.kernel; ++kr) {
            for (int kc = 0; kc < spec.kernel; ++kc) {
                const int s = (i * spec.kernel + kr) * spec.kernel + kc;
                for (int o = 0; o < spec.outChannels; ++o) {
                    float acc = 0.0f;
                    for (int r = 0; r < oh; ++r) {
                        const int y = r * spec.stride + kr;
                        for (int c = 0; c < ow; ++c)
                            acc += g_out.at(o, r, c) *
                                   in.at(i, y, c * spec.stride + kc);
                    }
                    g_fw.at(s, o) += acc;
                }
            }
        }
    }
    for (int o = 0; o < spec.outChannels; ++o) {
        float acc = 0.0f;
        for (int r = 0; r < oh; ++r)
            for (int c = 0; c < ow; ++c)
                acc += g_out.at(o, r, c);
        g_bias[static_cast<std::size_t>(o)] += acc;
    }
    countStage("gc", spec);
    return stageModel(Stage::Gc, spec, numPes_, false, params_);
}

void
convForwardStrict(const nn::ConvSpec &spec, const Tensor &in,
                  const ParamMatrix &fw, std::span<const float> bias,
                  Tensor &out)
{
    const int oh = spec.outHeight();
    const int ow = spec.outWidth();
    const int row_beats = (spec.inWidth + OnChipBuffer::rowWords() - 1) /
                          OnChipBuffer::rowWords();

    // Stage the input feature map in an on-chip buffer: each feature
    // row occupies row_beats 16-word buffer rows (Section 4.3).
    OnChipBuffer fmap(spec.inChannels * spec.inHeight * row_beats);
    {
        std::vector<float> beat(
            static_cast<std::size_t>(OnChipBuffer::rowWords()), 0.0f);
        int buf_row = 0;
        for (int i = 0; i < spec.inChannels; ++i) {
            for (int y = 0; y < spec.inHeight; ++y) {
                for (int b = 0; b < row_beats; ++b) {
                    for (int w = 0; w < OnChipBuffer::rowWords(); ++w) {
                        const int x = b * OnChipBuffer::rowWords() + w;
                        beat[static_cast<std::size_t>(w)] =
                            x < spec.inWidth ? in.at(i, y, x) : 0.0f;
                    }
                    fmap.loadBurst(buf_row++, beat);
                }
            }
        }
    }

    // Output staging buffer: one 16-word row group per output row per
    // channel; PEs write through a line buffer that the BCU scatters.
    const int out_beats = (ow + OnChipBuffer::rowWords() - 1) /
                          OnChipBuffer::rowWords();
    OnChipBuffer out_buf(spec.outChannels * oh * out_beats);

    LineBuffer input_line(row_beats * OnChipBuffer::rowWords());
    LineBuffer out_line(out_beats * OnChipBuffer::rowWords());
    std::vector<int> stitch_rows(static_cast<std::size_t>(row_beats));
    std::vector<int> scatter_rows(static_cast<std::size_t>(out_beats));
    std::vector<float> accs(static_cast<std::size_t>(ow));

    for (int o = 0; o < spec.outChannels; ++o) {
        for (int r = 0; r < oh; ++r) {
            for (int c = 0; c < ow; ++c)
                accs[static_cast<std::size_t>(c)] =
                    bias[static_cast<std::size_t>(o)];
            for (int i = 0; i < spec.inChannels; ++i) {
                for (int kr = 0; kr < spec.kernel; ++kr) {
                    // Stitching: compose the feature row from its
                    // 16-word buffer rows.
                    const int y = r * spec.stride + kr;
                    for (int b = 0; b < row_beats; ++b)
                        stitch_rows[static_cast<std::size_t>(b)] =
                            (i * spec.inHeight + y) * row_beats + b;
                    input_line.stitch(fmap, stitch_rows);
                    for (int kc = 0; kc < spec.kernel; ++kc) {
                        // Each PE reads its fixed port c*S; shifting
                        // advances the row under the ports each cycle.
                        const int s =
                            (i * spec.kernel + kr) * spec.kernel + kc;
                        const float w = fw.at(s, o);
                        for (int c = 0; c < ow; ++c)
                            accs[static_cast<std::size_t>(c)] +=
                                input_line.at(c * spec.stride) * w;
                        input_line.shiftLeft();
                    }
                }
            }
            // Scattering: PE outputs leave through a line buffer that
            // the BCU distributes over the on-chip buffer rows.
            for (int c = 0; c < ow; ++c)
                out_line.set(c, accs[static_cast<std::size_t>(c)]);
            for (int b = 0; b < out_beats; ++b)
                scatter_rows[static_cast<std::size_t>(b)] =
                    (o * oh + r) * out_beats + b;
            out_line.scatter(out_buf, scatter_rows);
        }
    }

    // Drain the staged output back into the tensor.
    for (int o = 0; o < spec.outChannels; ++o) {
        for (int r = 0; r < oh; ++r) {
            for (int c = 0; c < ow; ++c) {
                const int beat = c / OnChipBuffer::rowWords();
                const int w = c % OnChipBuffer::rowWords();
                out.at(o, r, c) = out_buf.row(
                    (o * oh + r) * out_beats +
                    beat)[static_cast<std::size_t>(w)];
            }
        }
    }
}

namespace {

/**
 * Stage a [C, H, W] tensor in an on-chip buffer with 16-word-aligned
 * rows; row (ch, y) occupies @p beats consecutive buffer rows.
 */
OnChipBuffer
stageFeatureMap(const Tensor &t, int channels, int height, int width,
                int beats)
{
    OnChipBuffer buf(channels * height * beats);
    std::vector<float> beat(
        static_cast<std::size_t>(OnChipBuffer::rowWords()), 0.0f);
    int buf_row = 0;
    for (int ch = 0; ch < channels; ++ch) {
        for (int y = 0; y < height; ++y) {
            for (int b = 0; b < beats; ++b) {
                for (int w = 0; w < OnChipBuffer::rowWords(); ++w) {
                    const int x = b * OnChipBuffer::rowWords() + w;
                    beat[static_cast<std::size_t>(w)] =
                        x < width ? t.at(ch, y, x) : 0.0f;
                }
                buf.loadBurst(buf_row++, beat);
            }
        }
    }
    return buf;
}

/** Stitch feature row (ch, y) of a staged map into @p line. */
void
stitchRow(const OnChipBuffer &buf, int ch, int y, int height,
          int beats, LineBuffer &line, std::vector<int> &rows)
{
    for (int b = 0; b < beats; ++b)
        rows[static_cast<std::size_t>(b)] =
            (ch * height + y) * beats + b;
    line.stitch(buf, rows);
}

} // namespace

void
convGradientStrict(const nn::ConvSpec &spec, const Tensor &in,
                   const Tensor &g_out, int n_pe, ParamMatrix &g_fw,
                   std::span<float> g_bias)
{
    const int oh = spec.outHeight();
    const int ow = spec.outWidth();
    const int kk = spec.kernel * spec.kernel;
    const int m_gc = std::max(
        1, std::min(n_pe / kk, spec.outChannels));
    const int in_beats = (spec.inWidth + OnChipBuffer::rowWords() - 1) /
                         OnChipBuffer::rowWords();
    const int out_beats = (ow + OnChipBuffer::rowWords() - 1) /
                          OnChipBuffer::rowWords();

    const OnChipBuffer in_buf = stageFeatureMap(
        in, spec.inChannels, spec.inHeight, spec.inWidth, in_beats);
    const OnChipBuffer gout_buf = stageFeatureMap(
        g_out, spec.outChannels, oh, ow, out_beats);

    // K line buffers for the input rows (Table 3, GC input 0) and
    // M_GC line buffers for the output gradients (GC input 1).
    std::vector<LineBuffer> in_lines(
        static_cast<std::size_t>(spec.kernel),
        LineBuffer(in_beats * OnChipBuffer::rowWords()));
    std::vector<LineBuffer> gout_lines(
        static_cast<std::size_t>(m_gc),
        LineBuffer(out_beats * OnChipBuffer::rowWords()));
    std::vector<int> in_rows(static_cast<std::size_t>(in_beats));
    std::vector<int> out_rows(static_cast<std::size_t>(out_beats));

    // K^2 x M_GC PE accumulators.
    std::vector<float> accs;
    for (int i = 0; i < spec.inChannels; ++i) {
        for (int o0 = 0; o0 < spec.outChannels; o0 += m_gc) {
            const int group = std::min(m_gc, spec.outChannels - o0);
            accs.assign(static_cast<std::size_t>(kk * group), 0.0f);
            for (int r = 0; r < oh; ++r) {
                for (int kr = 0; kr < spec.kernel; ++kr)
                    stitchRow(in_buf, i, r * spec.stride + kr,
                              spec.inHeight, in_beats,
                              in_lines[static_cast<std::size_t>(kr)],
                              in_rows);
                for (int oj = 0; oj < group; ++oj)
                    stitchRow(gout_buf, o0 + oj, r, oh, out_beats,
                              gout_lines[static_cast<std::size_t>(oj)],
                              out_rows);
                for (int c = 0; c < ow; ++c) {
                    // PE (kr, kc, oj) accumulates one filter tap.
                    for (int kr = 0; kr < spec.kernel; ++kr) {
                        const LineBuffer &row =
                            in_lines[static_cast<std::size_t>(kr)];
                        for (int kc = 0; kc < spec.kernel; ++kc) {
                            const float v =
                                row.at(c * spec.stride + kc);
                            for (int oj = 0; oj < group; ++oj) {
                                accs[static_cast<std::size_t>(
                                    (kr * spec.kernel + kc) * group +
                                    oj)] +=
                                    v *
                                    gout_lines[static_cast<std::size_t>(
                                                   oj)]
                                        .at(c);
                            }
                        }
                    }
                }
            }
            for (int kr = 0; kr < spec.kernel; ++kr)
                for (int kc = 0; kc < spec.kernel; ++kc)
                    for (int oj = 0; oj < group; ++oj)
                        g_fw.at((i * spec.kernel + kr) * spec.kernel +
                                    kc,
                                o0 + oj) +=
                            accs[static_cast<std::size_t>(
                                (kr * spec.kernel + kc) * group + oj)];
        }
    }
    for (int o = 0; o < spec.outChannels; ++o) {
        float acc = 0.0f;
        for (int r = 0; r < oh; ++r)
            for (int c = 0; c < ow; ++c)
                acc += g_out.at(o, r, c);
        g_bias[static_cast<std::size_t>(o)] += acc;
    }
}

void
convBackwardStrict(const nn::ConvSpec &spec, const Tensor &g_out,
                   const ParamMatrix &bw, Tensor &g_in)
{
    const int oh = spec.outHeight();
    const int ow = spec.outWidth();
    const int out_beats = (ow + OnChipBuffer::rowWords() - 1) /
                          OnChipBuffer::rowWords();
    const OnChipBuffer gout_buf = stageFeatureMap(
        g_out, spec.outChannels, oh, ow, out_beats);
    LineBuffer gout_line(out_beats * OnChipBuffer::rowWords());
    std::vector<int> out_rows(static_cast<std::size_t>(out_beats));

    g_in.zero();
    // One input row of gradients at a time; the BW-layout rows stream
    // in (o, kr, kc) order while the matching output-gradient row sits
    // in a line buffer. The PEs span (input channel x position).
    for (int y = 0; y < spec.inHeight; ++y) {
        for (int o = 0; o < spec.outChannels; ++o) {
            for (int kr = 0; kr < spec.kernel; ++kr) {
                const int ry = y - kr;
                if (ry < 0 || ry % spec.stride != 0)
                    continue;
                const int r = ry / spec.stride;
                if (r >= oh)
                    continue;
                stitchRow(gout_buf, o, r, oh, out_beats, gout_line,
                          out_rows);
                for (int kc = 0; kc < spec.kernel; ++kc) {
                    const int t =
                        (o * spec.kernel + kr) * spec.kernel + kc;
                    for (int c = 0; c < ow; ++c) {
                        const int x = c * spec.stride + kc;
                        if (x >= spec.inWidth)
                            continue;
                        const float g = gout_line.at(c);
                        for (int i = 0; i < spec.inChannels; ++i)
                            g_in.at(i, y, x) += g * bw.at(t, i);
                    }
                }
            }
        }
    }
}

} // namespace fa3c::core
