/**
 * @file
 * The PE array: N_PE identical processing elements, each a 32-bit
 * single-precision multiplier + accumulator pair (Section 4.2.1).
 *
 * The functional model executes every stage in the hardware's
 * dataflow order — parameters consumed row-by-row from the layout
 * matrices, one operand broadcast across the PEs per cycle — so its
 * results match the reference library up to floating-point
 * reassociation, and its cycle counts come from the Table 3 model.
 */

#ifndef FA3C_FA3C_PE_ARRAY_HH
#define FA3C_FA3C_PE_ARRAY_HH

#include <span>

#include "fa3c/layouts.hh"
#include "fa3c/timing.hh"
#include "tensor/tensor.hh"

namespace fa3c::core {

using tensor::Tensor;

/** Functional + cycle model of one CU's PE array. */
class PeArray
{
  public:
    /**
     * @param num_pes PEs in the array (64 per CU in the paper).
     * @param params  Calibration knobs of the cycle model.
     */
    explicit PeArray(int num_pes, const TimingParams &params = {});

    int numPes() const { return numPes_; }

    /**
     * Forward propagation with the FW parameter layout.
     *
     * @param fw   FW-layout matrix (I*K^2 rows, O cols).
     * @param bias Biases, length O.
     * @return The cycle/parallelism model of this execution.
     */
    StageModel convForward(const nn::ConvSpec &spec, const Tensor &in,
                           const ParamMatrix &fw,
                           std::span<const float> bias,
                           Tensor &out) const;

    /**
     * Backward propagation with the BW parameter layout (the TLU
     * path).
     *
     * @param bw BW-layout matrix (O*K^2 rows, I cols).
     */
    StageModel convBackward(const nn::ConvSpec &spec, const Tensor &g_out,
                            const ParamMatrix &bw, Tensor &g_in) const;

    /**
     * Backward propagation against the FW layout (the Alt1 variant,
     * Section 5.4). Produces the same values as convBackward but at
     * Alt1's degraded parallelism.
     */
    StageModel convBackwardFwLayout(const nn::ConvSpec &spec,
                                    const Tensor &g_out,
                                    const ParamMatrix &fw,
                                    Tensor &g_in) const;

    /**
     * Gradient computation: accumulate parameter gradients into an
     * FW-layout gradient matrix (the gradient buffer keeps the FW
     * layout so RMSProp needs no TLU, Section 4.4.4).
     *
     * @param g_fw   FW-layout gradient matrix, accumulated into.
     * @param g_bias Bias gradients, accumulated into.
     */
    StageModel convGradient(const nn::ConvSpec &spec, const Tensor &in,
                            const Tensor &g_out, ParamMatrix &g_fw,
                            std::span<float> g_bias) const;

  private:
    int numPes_;
    TimingParams params_;
};

/**
 * A strict line-buffer-driven forward propagation: drives the actual
 * LineBuffer shifting / stitching / scattering operations the BCU
 * performs, used to validate the buffer machinery against the fast
 * path (tests only — it is deliberately literal, not fast).
 */
void convForwardStrict(const nn::ConvSpec &spec, const Tensor &in,
                       const ParamMatrix &fw,
                       std::span<const float> bias, Tensor &out);

/**
 * Strict gradient computation: K stitched input line buffers plus
 * M_GC output-gradient line buffers feed K^2 x M_GC accumulating PEs,
 * exactly the Table 3 GC row. Accumulates into the FW-layout gradient
 * buffer like convGradient.
 *
 * @param n_pe Determines M_GC = floor(n_pe / K^2), capped at O.
 */
void convGradientStrict(const nn::ConvSpec &spec, const Tensor &in,
                        const Tensor &g_out, int n_pe,
                        ParamMatrix &g_fw, std::span<float> g_bias);

/**
 * Strict backward propagation: BW-layout parameter rows stream in
 * (o, kr, kc) order while output-gradient line buffers feed the
 * input-gradient PEs — the Table 3 BW row.
 */
void convBackwardStrict(const nn::ConvSpec &spec, const Tensor &g_out,
                        const ParamMatrix &bw, Tensor &g_in);

} // namespace fa3c::core

#endif // FA3C_FA3C_PE_ARRAY_HH
