#include "fa3c/resource_model.hh"

namespace fa3c::core {

ResourceUsage &
ResourceUsage::operator+=(const ResourceUsage &other)
{
    logicLuts += other.logicLuts;
    registers += other.registers;
    memoryBlocks += other.memoryBlocks;
    dspBlocks += other.dspBlocks;
    return *this;
}

DeviceCapacity
DeviceCapacity::vu9p()
{
    // 1,182K LUTs, 2,364K FFs, 2,160 BRAM36 + 960 URAM, 6,840 DSPs.
    return {"Xilinx UltraScale+ VU9P", 1182e3, 2364e3, 3120, 6840};
}

DeviceCapacity
DeviceCapacity::stratixV()
{
    // A Stratix V GX A7-class device (ALMs counted as LUT pairs).
    return {"Altera Stratix V", 470e3, 940e3, 2560, 512};
}

ResourceModel::ResourceModel(const Fa3cConfig &cfg) : cfg_(cfg) {}

namespace {

// Per-unit coefficients back-derived from Table 4 at the paper's
// VCU1525 configuration: 4 CUs (2 pairs), 64 PEs each, 2 training
// CUs with one RMSProp module (4 RUs) and two TLUs apiece, 4 DDR4
// channels, one PCI-E DMA.

// Per PE (Table 4 "PEs": 188.8K / 252.6K / 0 / 2048 over 256 PEs).
constexpr double peLuts = 188.8e3 / 256;
constexpr double peRegs = 252.6e3 / 256;
constexpr double peDsps = 2048.0 / 256;

// Per CU buffers (256 / 128 / 192 memory blocks over 4, 2, 4 CUs).
constexpr double paramBufLutsPerCu = 20.8e3 / 4;
constexpr double paramBufRegsPerCu = 1.7e3 / 4;
constexpr double paramBufMemPerCu = 256.0 / 4;
constexpr double gradBufLutsPerCu = 8.9e3 / 2;
constexpr double gradBufRegsPerCu = 0.6e3 / 2;
constexpr double gradBufMemPerCu = 128.0 / 2;
constexpr double fmapBufLutsPerCu = 9.2e3 / 4;
constexpr double fmapBufRegsPerCu = 1.2e3 / 4;
constexpr double fmapBufMemPerCu = 192.0 / 4;

// BCU line buffers scale with PEs (72.1K / 111.0K over 256 PEs).
constexpr double bcuLutsPerPe = 72.1e3 / 256;
constexpr double bcuRegsPerPe = 111.0e3 / 256;

// RMSProp module per training CU (53.4K / 64.8K / 216 / 288 over 2).
constexpr double rmsLutsPerModule = 53.4e3 / 2;
constexpr double rmsRegsPerModule = 64.8e3 / 2;
constexpr double rmsMemPerModule = 216.0 / 2;
constexpr double rmsDspsPerRu = 288.0 / (2 * 4);

// Pipelined MUX/DEMUX datapath scales with PEs.
constexpr double muxLutsPerPe = 50.1e3 / 256;
constexpr double muxRegsPerPe = 50.1e3 / 256;
constexpr double muxMemPerCu = 16.0 / 4;

// TLU per instance (17.0K / 35.1K / 16 over 4 TLUs).
constexpr double tluLutsEach = 17.0e3 / 4;
constexpr double tluRegsEach = 35.1e3 / 4;
constexpr double tluMemEach = 16.0 / 4;

// DDR-CU interconnect per CU (83.3K / 136.2K / 263 over 4 CUs).
constexpr double iconLutsPerCu = 83.3e3 / 4;
constexpr double iconRegsPerCu = 136.2e3 / 4;
constexpr double iconMemPerCu = 263.0 / 4;

// DDR4 controller per channel (86.3K / 98.0K / 102 / 12 over 4).
constexpr double ddrLutsPerCh = 86.3e3 / 4;
constexpr double ddrRegsPerCh = 98.0e3 / 4;
constexpr double ddrMemPerCh = 102.0 / 4;
constexpr double ddrDspsPerCh = 12.0 / 4;

// PCI-E DMA, fixed.
constexpr double pcieLuts = 87.4e3;
constexpr double pcieRegs = 124.4e3;
constexpr double pcieMem = 78.0;

} // namespace

std::vector<ResourceUsage>
ResourceModel::breakdown() const
{
    const int cus = cfg_.cuCount();
    const int total_pes = cfg_.totalPes();
    // Training-capable CUs carry the gradient buffer, the RMSProp
    // module, and the TLUs.
    const int training_cus =
        cfg_.variant == Variant::SingleCU ? cfg_.cuPairs : cfg_.cuPairs;
    const int tlus = training_cus * cfg_.tluCount;

    std::vector<ResourceUsage> rows;
    rows.push_back({"PEs", peLuts * total_pes, peRegs * total_pes, 0,
                    peDsps * total_pes});
    rows.push_back({"Parameter buffer", paramBufLutsPerCu * cus,
                    paramBufRegsPerCu * cus, paramBufMemPerCu * cus, 0});
    rows.push_back({"Gradient buffer", gradBufLutsPerCu * training_cus,
                    gradBufRegsPerCu * training_cus,
                    gradBufMemPerCu * training_cus, 0});
    rows.push_back({"Feature-map buffer", fmapBufLutsPerCu * cus,
                    fmapBufRegsPerCu * cus, fmapBufMemPerCu * cus, 0});
    rows.push_back({"BCU (line buffer)", bcuLutsPerPe * total_pes,
                    bcuRegsPerPe * total_pes, 0, 0});
    rows.push_back({"RMSProp", rmsLutsPerModule * training_cus,
                    rmsRegsPerModule * training_cus,
                    rmsMemPerModule * training_cus,
                    rmsDspsPerRu * cfg_.rmspropUnits * training_cus});
    rows.push_back({"Pipelined MUX", muxLutsPerPe * total_pes,
                    muxRegsPerPe * total_pes, muxMemPerCu * cus, 0});
    rows.push_back({"TLU", tluLutsEach * tlus, tluRegsEach * tlus,
                    tluMemEach * tlus, 0});
    rows.push_back({"DDR-CU interconnect", iconLutsPerCu * cus,
                    iconRegsPerCu * cus, iconMemPerCu * cus, 0});
    rows.push_back({"DDR4 controller",
                    ddrLutsPerCh * cfg_.dram.channels,
                    ddrRegsPerCh * cfg_.dram.channels,
                    ddrMemPerCh * cfg_.dram.channels,
                    ddrDspsPerCh * cfg_.dram.channels});
    rows.push_back({"PCI-E DMA", pcieLuts, pcieRegs, pcieMem, 0});
    return rows;
}

ResourceUsage
ResourceModel::total() const
{
    ResourceUsage sum{"Total", 0, 0, 0, 0};
    for (const auto &row : breakdown())
        sum += row;
    return sum;
}

bool
ResourceModel::fits(const DeviceCapacity &device) const
{
    const ResourceUsage t = total();
    return t.logicLuts <= device.logicLuts &&
           t.registers <= device.registers &&
           t.memoryBlocks <= device.memoryBlocks &&
           t.dspBlocks <= device.dspBlocks;
}

} // namespace fa3c::core
