/**
 * @file
 * FPGA resource model (Table 4): per-component LUT / register /
 * memory-block / DSP costs, with per-unit coefficients derived from
 * the paper's VCU1525 build (2 CU pairs x 64 PEs) so alternative
 * configurations can be explored.
 */

#ifndef FA3C_FA3C_RESOURCE_MODEL_HH
#define FA3C_FA3C_RESOURCE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fa3c/config.hh"

namespace fa3c::core {

/** Resource usage of one component (or total). */
struct ResourceUsage
{
    std::string component;
    double logicLuts = 0;
    double registers = 0;
    double memoryBlocks = 0;
    double dspBlocks = 0;

    ResourceUsage &operator+=(const ResourceUsage &other);
};

/** Device capacity, for utilization percentages. */
struct DeviceCapacity
{
    std::string name;
    double logicLuts;
    double registers;
    double memoryBlocks; ///< BRAM36 + URAM tiles
    double dspBlocks;

    /** The Xilinx UltraScale+ VU9P of the VCU1525 board. */
    static DeviceCapacity vu9p();

    /** An Altera Stratix V class device (Figure 10 platform). */
    static DeviceCapacity stratixV();
};

/** Estimates Table 4 for a platform configuration. */
class ResourceModel
{
  public:
    explicit ResourceModel(const Fa3cConfig &cfg);

    /** Per-component usage rows, in Table 4 order. */
    std::vector<ResourceUsage> breakdown() const;

    /** Sum of all components. */
    ResourceUsage total() const;

    /** True when the configuration fits the device. */
    bool fits(const DeviceCapacity &device) const;

  private:
    Fa3cConfig cfg_;
};

} // namespace fa3c::core

#endif // FA3C_FA3C_RESOURCE_MODEL_HH
