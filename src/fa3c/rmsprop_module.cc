#include "fa3c/rmsprop_module.hh"

#include <cmath>

#include "obs/metrics.hh"
#include "sim/logging.hh"
#include "sim/perf_counters.hh"

namespace fa3c::core {

RmspropModule::RmspropModule(int num_rus, const nn::RmspropConfig &cfg)
    : numRus_(num_rus), cfg_(cfg)
{
    FA3C_ASSERT(num_rus >= 1, "RmspropModule needs RUs");
}

void
RmspropModule::update(std::span<float> theta, std::span<float> g,
                      std::span<const float> grad, float eta) const
{
    FA3C_ASSERT(theta.size() == g.size() && theta.size() == grad.size(),
                "RmspropModule::update size mismatch");
    // Words are interleaved across RUs: RU u handles words u,
    // u + numRus, ... — the per-word pipeline of Figure 5.
    const float one_minus_rho = 1.0f - cfg_.decay;
    for (int u = 0; u < numRus_; ++u) {
        for (std::size_t i = static_cast<std::size_t>(u);
             i < theta.size(); i += static_cast<std::size_t>(numRus_)) {
            const float d = grad[i];
            const float g_new = cfg_.decay * g[i] + one_minus_rho * d * d;
            g[i] = g_new;
            theta[i] -= eta * d / std::sqrt(g_new + cfg_.epsilon);
        }
    }

    if (obs::MetricsRegistry &m = obs::metrics(); m.enabled()) {
        m.count("fa3c.rmsprop", "update_waves", 1);
        m.count("fa3c.rmsprop", "words", theta.size());
        m.count("fa3c.rmsprop", "dram_words",
                loadWords(theta.size()) + storeWords(theta.size()));
    }
    {
        sim::PerfBank &bank = sim::perf().bank("rmsprop");
        static auto &waves = bank.counter("update_waves");
        static auto &words = bank.counter("words");
        static auto &dramWords = bank.counter("dram_words");
        waves.fetch_add(1, std::memory_order_relaxed);
        words.fetch_add(theta.size(), std::memory_order_relaxed);
        dramWords.fetch_add(loadWords(theta.size()) +
                                storeWords(theta.size()),
                            std::memory_order_relaxed);
    }
}

std::uint64_t
RmspropModule::updateCycles(std::uint64_t param_words) const
{
    // One parameter per RU per cycle, plus a short pipeline fill.
    constexpr std::uint64_t pipeline_fill = 16;
    return (param_words + static_cast<std::uint64_t>(numRus_) - 1) /
               static_cast<std::uint64_t>(numRus_) +
           pipeline_fill;
}

} // namespace fa3c::core
