/**
 * @file
 * The RMSProp module (Section 4.2.3): a set of fully-pipelined RUs
 * that apply computed gradients to the global parameters. Each RU
 * consumes one (theta, g) word pair and produces one updated pair per
 * cycle (Figure 5); four RUs saturate a 16-word DRAM interface. The
 * module double-buffers so DRAM traffic of one block overlaps the
 * update of the previous one.
 */

#ifndef FA3C_FA3C_RMSPROP_MODULE_HH
#define FA3C_FA3C_RMSPROP_MODULE_HH

#include <cstdint>
#include <span>

#include "nn/rmsprop.hh"

namespace fa3c::core {

/** Functional + cycle model of the RMSProp module. */
class RmspropModule
{
  public:
    /**
     * @param num_rus RUs in the module (paper: 4).
     * @param cfg     Constant rho / epsilon of Figure 5.
     */
    RmspropModule(int num_rus, const nn::RmspropConfig &cfg);

    int numRus() const { return numRus_; }

    /**
     * Stream one update over the parameter block, word-interleaved
     * across the RUs exactly as the hardware does. Produces the same
     * values as nn::rmspropApply.
     *
     * @param eta Learning rate for this update.
     */
    void update(std::span<float> theta, std::span<float> g,
                std::span<const float> grad, float eta) const;

    /** Compute cycles to update @p param_words parameters. */
    std::uint64_t updateCycles(std::uint64_t param_words) const;

    /** DRAM words loaded per update (theta + g). */
    static std::uint64_t
    loadWords(std::uint64_t param_words)
    {
        return 2 * param_words;
    }

    /** DRAM words stored per update (theta + g). */
    static std::uint64_t
    storeWords(std::uint64_t param_words)
    {
        return 2 * param_words;
    }

  private:
    int numRus_;
    nn::RmspropConfig cfg_;
};

} // namespace fa3c::core

#endif // FA3C_FA3C_RMSPROP_MODULE_HH
