#include "fa3c/task_model.hh"

#include <numeric>

#include "fa3c/layouts.hh"
#include "fa3c/rmsprop_module.hh"
#include "fa3c/tlu.hh"
#include "sim/logging.hh"

namespace fa3c::core {

namespace {

/** Control/setup cycles charged once per phase. */
constexpr std::uint64_t phaseSetupCycles = 64;

} // namespace

std::uint64_t
TaskModel::totalComputeCycles() const
{
    std::uint64_t sum = 0;
    for (const auto &p : phases)
        sum += p.computeCycles;
    return sum;
}

std::uint64_t
TaskModel::totalLoadWords() const
{
    std::uint64_t sum = 0;
    for (const auto &p : phases)
        sum += p.dramLoadWords;
    return sum;
}

std::uint64_t
TaskModel::totalStoreWords() const
{
    std::uint64_t sum = 0;
    for (const auto &p : phases)
        sum += p.dramStoreWords;
    return sum;
}

HwNetwork
HwNetwork::fromConfig(const nn::NetConfig &cfg)
{
    const nn::A3cNetwork net(cfg);
    HwNetwork hw;
    hw.layers = {
        net.conv1(),
        net.conv2(),
        asConv(net.fc3()),
        // FC4 runs with the padded hardware lane count (Table 1).
        asConv(nn::FcSpec{net.fc4().inFeatures, cfg.fc4HardwareLanes}),
    };
    hw.names = {"conv1", "conv2", "fc3", "fc4"};
    return hw;
}

std::uint64_t
HwNetwork::paramWords() const
{
    std::uint64_t sum = 0;
    for (const auto &l : layers)
        sum += paddedParamWords(l) +
               static_cast<std::uint64_t>(l.outChannels); // biases
    return sum;
}

std::uint64_t
HwNetwork::inputWords() const
{
    const auto &first = layers.front();
    return alignedFeatureMapWords(first.inChannels, first.inHeight,
                                  first.inWidth);
}

std::uint64_t
HwNetwork::outputFeatureWords(std::size_t l) const
{
    FA3C_ASSERT(l < layers.size(), "layer index");
    const auto &spec = layers[l];
    return alignedFeatureMapWords(spec.outChannels, spec.outHeight(),
                                  spec.outWidth());
}

std::uint64_t
HwNetwork::inputFeatureWords(std::size_t l) const
{
    FA3C_ASSERT(l < layers.size(), "layer index");
    const auto &spec = layers[l];
    return alignedFeatureMapWords(spec.inChannels, spec.inHeight,
                                  spec.inWidth);
}

TaskModel
inferenceTask(const HwNetwork &net, const Fa3cConfig &cfg,
              const TimingParams &params)
{
    TaskModel task;
    task.name = "inference";
    for (std::size_t l = 0; l < net.layers.size(); ++l) {
        const auto &spec = net.layers[l];
        const StageModel fw =
            stageModel(Stage::Fw, spec, cfg.cuPes(), false, params);
        Phase phase;
        phase.label = "fw:" + net.names[l];
        phase.computeCycles = fw.cycles + phaseSetupCycles;
        phase.dramLoadWords =
            paddedParamWords(spec) +
            static_cast<std::uint64_t>(spec.outChannels) +
            (l == 0 ? net.inputWords() : 0);
        // Output feature maps are parked in DRAM for the training
        // task (Section 4.3).
        phase.dramStoreWords = net.outputFeatureWords(l);
        task.phases.push_back(std::move(phase));
    }
    return task;
}

TaskModel
trainingTask(const HwNetwork &net, const Fa3cConfig &cfg, int batch,
             const TimingParams &params)
{
    FA3C_ASSERT(batch >= 1, "trainingTask batch");
    const bool alt1 = cfg.variant == Variant::Alt1;
    const std::uint64_t b = static_cast<std::uint64_t>(batch);

    TaskModel task;
    task.name = "training";
    for (std::size_t l = net.layers.size(); l-- > 0;) {
        const auto &spec = net.layers[l];

        // GC first, then BW, per layer (Section 4.3). GC reloads the
        // input feature maps the inference tasks parked in DRAM.
        const StageModel gc =
            stageModel(Stage::Gc, spec, cfg.cuPes(), false, params);
        Phase gc_phase;
        gc_phase.label = "gc:" + net.names[l];
        gc_phase.computeCycles = gc.cycles * b + phaseSetupCycles;
        gc_phase.dramLoadWords = net.inputFeatureWords(l) * b;
        task.phases.push_back(std::move(gc_phase));

        if (l == 0)
            continue; // no BW into the game screen
        const StageModel bw =
            stageModel(Stage::Bw, spec, cfg.cuPes(), alt1, params);
        Phase bw_phase;
        bw_phase.label = "bw:" + net.names[l];
        bw_phase.computeCycles = bw.cycles * b + phaseSetupCycles;
        // Parameters stream through the TLU; its 16-cycles-per-patch
        // throughput matches the burst rate, so it hides behind the
        // DRAM load (Section 4.4.3).
        bw_phase.dramLoadWords =
            paddedParamWords(spec) +
            static_cast<std::uint64_t>(spec.outChannels);
        task.phases.push_back(std::move(bw_phase));
    }

    // The RMSProp update of the global parameters (Section 4.2.3).
    const RmspropModule rms(cfg.rmspropUnits, nn::RmspropConfig{});
    const std::uint64_t param_words = net.paramWords();
    Phase rms_phase;
    rms_phase.label = "rmsprop";
    rms_phase.computeCycles =
        rms.updateCycles(param_words) + phaseSetupCycles;
    rms_phase.dramLoadWords = RmspropModule::loadWords(param_words);
    rms_phase.dramStoreWords = RmspropModule::storeWords(param_words);
    if (cfg.variant == Variant::Alt2) {
        // Alt2 materializes the BW layout in DRAM as well: a second
        // full parameter image is written on every update.
        rms_phase.dramStoreWords += param_words;
        rms_phase.computeCycles += param_words / dramBurstWords;
    }
    task.phases.push_back(std::move(rms_phase));
    return task;
}

TaskModel
paramSyncTask(const HwNetwork &net, const Fa3cConfig &cfg)
{
    (void)cfg;
    const std::uint64_t words = net.paramWords();
    Phase phase;
    phase.label = "param-sync";
    // A streaming DRAM-to-DRAM copy through the chip.
    phase.computeCycles = words / dramBurstWords + phaseSetupCycles;
    phase.dramLoadWords = words;
    phase.dramStoreWords = words;
    return TaskModel{"param-sync", {phase}};
}

std::vector<TrafficRow>
routineTrafficTable(const HwNetwork &net, const Fa3cConfig &cfg,
                    int t_max)
{
    const std::uint64_t theta = net.paramWords() * sizeof(float);
    const std::uint64_t input = net.inputWords() * sizeof(float);
    std::uint64_t fmap_store = 0;
    for (std::size_t l = 0; l < net.layers.size(); ++l)
        fmap_store += net.outputFeatureWords(l) * sizeof(float);
    std::uint64_t fmap_load = 0;
    for (std::size_t l = 1; l < net.layers.size(); ++l)
        fmap_load += net.inputFeatureWords(l) * sizeof(float);

    const int inf = t_max + 1; // t_max steps + the bootstrap inference
    std::vector<TrafficRow> rows;
    rows.push_back({"Parameter sync", "Global theta", theta, 0, 1, true});
    rows.push_back({"Parameter sync", "Local theta", 0, theta, 1, true});
    rows.push_back({"Inference task (batch size: 1)", "Local theta",
                    theta, 0, inf, true});
    rows.push_back({"Inference task (batch size: 1)", "Input data",
                    input, 0, inf, true});
    rows.push_back({"Inference task (batch size: 1)",
                    "Feature maps (stored for training)", 0, fmap_store,
                    inf, false});
    rows.push_back({"Training task", "Global theta", theta, theta, 1,
                    true});
    rows.push_back({"Training task", "RMS g", theta, theta, 1, true});
    rows.push_back({"Training task", "Local theta", theta, 0, 1, true});
    rows.push_back({"Training task", "Input data", input, 0, t_max,
                    true});
    rows.push_back({"Training task", "Feature maps (reloaded)",
                    fmap_load, 0, t_max, false});
    if (cfg.variant == Variant::Alt2)
        rows.push_back({"Training task", "BW-layout theta copy", 0,
                        theta, 1, false});
    return rows;
}

} // namespace fa3c::core
