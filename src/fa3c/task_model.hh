/**
 * @file
 * Task-level models: an inference task (FW over all layers), a
 * training task (per-layer GC then BW over the batch, then the
 * RMSProp update), and the parameter-sync task, each expressed as a
 * sequence of phases whose compute is double-buffered against their
 * DRAM traffic. These drive both the event-driven platform simulator
 * and the Table 2 traffic accounting.
 */

#ifndef FA3C_FA3C_TASK_MODEL_HH
#define FA3C_FA3C_TASK_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fa3c/config.hh"
#include "fa3c/timing.hh"
#include "nn/a3c_network.hh"

namespace fa3c::core {

/**
 * One double-buffered step of a task: the CU advances when both the
 * compute and the DRAM traffic of the phase have finished.
 */
struct Phase
{
    std::string label;
    std::uint64_t computeCycles = 0;
    std::uint64_t dramLoadWords = 0;
    std::uint64_t dramStoreWords = 0;

    std::uint64_t
    dramWords() const
    {
        return dramLoadWords + dramStoreWords;
    }
};

/** A task as the CU executes it. */
struct TaskModel
{
    std::string name; ///< "inference", "training", "param-sync"
    std::vector<Phase> phases;

    std::uint64_t totalComputeCycles() const;
    std::uint64_t totalLoadWords() const;
    std::uint64_t totalStoreWords() const;
};

/**
 * The hardware view of the A3C network: the four parameterized layers
 * in degenerate-conv form, with FC4 padded to the hardware lane count
 * (Table 1).
 */
struct HwNetwork
{
    std::vector<nn::ConvSpec> layers; ///< conv1, conv2, fc3, fc4
    std::vector<std::string> names;

    /** Build from the software network configuration. */
    static HwNetwork fromConfig(const nn::NetConfig &cfg);

    /** DRAM words of one full parameter set (padded patch images). */
    std::uint64_t paramWords() const;

    /** Aligned words of the network input (one observation). */
    std::uint64_t inputWords() const;

    /** Aligned words of layer @p l's output feature map. */
    std::uint64_t outputFeatureWords(std::size_t l) const;

    /** Aligned words of layer @p l's input feature map. */
    std::uint64_t inputFeatureWords(std::size_t l) const;
};

/** The inference task: FW over every layer (Section 4.1). */
TaskModel inferenceTask(const HwNetwork &net, const Fa3cConfig &cfg,
                        const TimingParams &params = {});

/**
 * The training task for a batch of @p batch samples: for each layer
 * from the last to the first, GC then BW (BW skipped for the first
 * layer), then the RMSProp update of the global parameters.
 */
TaskModel trainingTask(const HwNetwork &net, const Fa3cConfig &cfg,
                       int batch, const TimingParams &params = {});

/** The parameter-sync task: global theta copied to the local theta. */
TaskModel paramSyncTask(const HwNetwork &net, const Fa3cConfig &cfg);

/** One row of the Table 2 style traffic accounting. */
struct TrafficRow
{
    std::string task;       ///< e.g. "Inference task (batch size: 1)"
    std::string data;       ///< e.g. "Local theta"
    std::uint64_t loadBytes = 0;
    std::uint64_t storeBytes = 0;
    int count = 1;          ///< occurrences per routine
    bool inPaperTable = true; ///< false for traffic Table 2 omits
};

/**
 * Off-chip traffic of one full agent routine (sync + t_max + 1
 * inferences + one training task), itemized like Table 2 plus the
 * feature-map rows the paper's table omits.
 */
std::vector<TrafficRow> routineTrafficTable(const HwNetwork &net,
                                            const Fa3cConfig &cfg,
                                            int t_max);

} // namespace fa3c::core

#endif // FA3C_FA3C_TASK_MODEL_HH
