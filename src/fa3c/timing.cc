#include "fa3c/timing.hh"

#include <algorithm>

#include "fa3c/layouts.hh"
#include "sim/logging.hh"

namespace fa3c::core {

namespace {

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::Fw: return "FW";
      case Stage::Bw: return "BW";
      case Stage::Gc: return "GC";
    }
    FA3C_PANIC("bad Stage ", static_cast<int>(s));
}

bool
isFullyConnected(const nn::ConvSpec &spec)
{
    return spec.kernel == 1 && spec.inHeight == 1 && spec.inWidth == 1;
}

std::uint64_t
alignedFeatureMapWords(int channels, int height, int width)
{
    const std::uint64_t row_words =
        ceilDiv(static_cast<std::uint64_t>(width), dramBurstWords) *
        dramBurstWords;
    return static_cast<std::uint64_t>(channels) *
           static_cast<std::uint64_t>(height) * row_words;
}

std::uint64_t
paddedParamWords(const nn::ConvSpec &spec)
{
    return static_cast<std::uint64_t>(paddedRows(spec)) *
           static_cast<std::uint64_t>(paddedCols(spec));
}

std::vector<LineBufferSpec>
lineBufferPlan(const nn::ConvSpec &spec, int n_pe)
{
    FA3C_ASSERT(n_pe > 0, "lineBufferPlan needs PEs");
    const int kk = spec.kernel * spec.kernel;
    const int c_in = spec.inWidth;
    const int c_out = spec.outWidth();
    const int param_width = std::min(n_pe, spec.outChannels);
    const int m_gc = std::max(1, std::min(n_pe / kk,
                                          spec.outChannels));
    const int m_w = std::max(
        1, std::min(param_width / kk, spec.inChannels));
    const int m_bw = std::max(1, n_pe / (m_w * c_in));

    return {
        // FW (Table 3, first block).
        {Stage::Fw, "Input 0", "Input feature map", c_in, 1},
        {Stage::Fw, "Input 1", "Parameter (FW parameter layout)",
         param_width, 0},
        {Stage::Fw, "Output", "Output feature map", n_pe, 1},
        // GC: K input lines, M_GC output-gradient lines.
        {Stage::Gc, "Input 0", "Input feature map", c_in,
         spec.kernel},
        {Stage::Gc, "Input 1", "Output feature map (gradient)", c_out,
         m_gc},
        {Stage::Gc, "Output", "Gradient", n_pe, 1},
        // BW: BW-layout parameters, M_BW output-gradient lines.
        {Stage::Bw, "Input 0", "Parameter (BW parameter layout)",
         param_width, 0},
        {Stage::Bw, "Input 1", "Output feature map (gradient)", c_out,
         m_bw},
        {Stage::Bw, "Output", "Input feature map (gradient)", n_pe,
         1},
    };
}

StageModel
stageModel(Stage stage, const nn::ConvSpec &spec, int n_pe,
           bool fw_layout_for_bw, const TimingParams &params)
{
    FA3C_ASSERT(n_pe > 0, "stageModel needs PEs");
    const std::uint64_t kk = static_cast<std::uint64_t>(spec.kernel) *
                             static_cast<std::uint64_t>(spec.kernel);
    const std::uint64_t i_ch = static_cast<std::uint64_t>(spec.inChannels);
    const std::uint64_t o_ch =
        static_cast<std::uint64_t>(spec.outChannels);
    const std::uint64_t oh = static_cast<std::uint64_t>(spec.outHeight());
    const std::uint64_t ow = static_cast<std::uint64_t>(spec.outWidth());
    const std::uint64_t npe = static_cast<std::uint64_t>(n_pe);

    StageModel m;
    switch (stage) {
      case Stage::Fw: {
        // One PE per output value; the parameter sequence of length
        // I*K^2 (+1 for the bias) streams past (Section 4.4.1).
        const std::uint64_t out_elems = o_ch * oh * ow;
        const std::uint64_t acc_freq = i_ch * kk + 1;
        const std::uint64_t m_fw =
            std::min(std::max<std::uint64_t>(1, npe / o_ch), oh * ow);
        m.activePes = std::min(npe, o_ch * m_fw);
        m.activePes = std::min(m.activePes, out_elems);
        m.cycles = ceilDiv(out_elems, m.activePes) * acc_freq;
        m.macs = out_elems * acc_freq;
        break;
      }
      case Stage::Gc: {
        // K^2 taps in parallel over M_GC output channels (Table 3);
        // accumulation runs over the output feature map. Arrays
        // smaller than K^2 need multiple passes over the taps.
        const std::uint64_t m_gc =
            std::min(std::max<std::uint64_t>(1, npe / kk), o_ch);
        const std::uint64_t tap_passes = ceilDiv(kk, std::min(npe, kk));
        m.activePes = std::min(npe, kk * m_gc);
        m.cycles =
            i_ch * ceilDiv(o_ch, m_gc) * oh * ow * tap_passes;
        m.macs = i_ch * o_ch * kk * oh * ow;
        break;
      }
      case Stage::Bw: {
        const std::uint64_t in_elems =
            i_ch * static_cast<std::uint64_t>(spec.inHeight) *
            static_cast<std::uint64_t>(spec.inWidth);
        // Each input gradient accumulates one product per output
        // channel and overlapping kernel tap.
        const std::uint64_t taps =
            ceilDiv(static_cast<std::uint64_t>(spec.kernel),
                    static_cast<std::uint64_t>(spec.stride));
        const std::uint64_t acc_freq = o_ch * taps * taps;
        if (fw_layout_for_bw && isFullyConnected(spec)) {
            // Alt1, FC: parameter rows arrive in FW order; only a few
            // concurrent row streams keep PEs fed (Section 5.4).
            m.activePes = std::min<std::uint64_t>(
                static_cast<std::uint64_t>(params.alt1FcBwStreams),
                in_elems);
            m.activePes = std::min(m.activePes, npe);
        } else {
            // BW parameter layout (Section 4.4.2 / Table 3).
            const std::uint64_t row_w = std::min(npe, o_ch);
            const std::uint64_t m_w =
                std::min(std::max<std::uint64_t>(1, row_w / kk), i_ch);
            const std::uint64_t c_in =
                static_cast<std::uint64_t>(spec.inWidth);
            const std::uint64_t m_bw =
                std::max<std::uint64_t>(1, npe / (m_w * c_in));
            m.activePes = std::min(npe, m_w * c_in * m_bw);
            m.activePes = std::min(m.activePes, in_elems);
        }
        m.cycles = ceilDiv(in_elems, m.activePes) * acc_freq;
        m.macs = in_elems * acc_freq;
        break;
      }
    }
    return m;
}

} // namespace fa3c::core
