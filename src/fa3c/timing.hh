/**
 * @file
 * The per-(layer, stage) cycle model of a compute unit, derived from
 * the line-buffer parallelism rules of Table 3:
 *
 *  - FW: one PE per output value; M_FW = floor(N_PE / O) positions in
 *    flight when PEs outnumber output channels; accumulation
 *    frequency I*K^2 + 1.
 *  - GC: K^2 filter taps in parallel across M_GC = floor(N_PE / K^2)
 *    output channels; accumulation over the output feature map (and
 *    the batch).
 *  - BW: a parameter-buffer row holds M_w = floor(min(N_PE, O) / K^2)
 *    filters of different input channels; M_BW groups of M_w * C_in
 *    input gradients in flight; accumulation over O * ceil(K/S)^2.
 *
 * The Alt1 variant (Figure 10) runs BW against the FW parameter
 * layout; its fully-connected backward collapses to a few concurrent
 * row streams (alt1FcBwStreams) because parameters are not delivered
 * at the rate the PEs need (Section 5.4).
 */

#ifndef FA3C_FA3C_TIMING_HH
#define FA3C_FA3C_TIMING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fa3c/config.hh"
#include "nn/layers.hh"

namespace fa3c::core {

/** The three DNN computation types (Section 2.3). */
enum class Stage
{
    Fw, ///< forward propagation (the inference task)
    Bw, ///< backward propagation (feature-map gradients)
    Gc, ///< gradient computation (parameter gradients)
};

/** Human-readable stage name. */
const char *stageName(Stage s);

/** Knobs of the cycle model that are calibration rather than
 * structure; see EXPERIMENTS.md for their derivation. */
struct TimingParams
{
    /** Concurrent double-buffered parameter-row streams Alt1 sustains
     * for fully-connected BW (calibrated to Figure 10's -33%). */
    int alt1FcBwStreams = 10;
};

/** Parallelism and latency of one stage execution on one sample. */
struct StageModel
{
    std::uint64_t activePes = 0; ///< PEs doing useful MACs per cycle
    std::uint64_t cycles = 0;    ///< compute cycles (one sample)
    std::uint64_t macs = 0;      ///< useful MACs (one sample)
};

/**
 * Cycle model for @p stage of a layer.
 *
 * Fully-connected layers are passed as their degenerate-conv form
 * (asConv()).
 *
 * @param n_pe             PEs in the executing CU.
 * @param fw_layout_for_bw True under the Alt1 variant.
 */
StageModel stageModel(Stage stage, const nn::ConvSpec &spec, int n_pe,
                      bool fw_layout_for_bw = false,
                      const TimingParams &params = {});

/** True when the spec is the degenerate-conv form of an FC layer. */
bool isFullyConnected(const nn::ConvSpec &spec);

/** One row of Table 3: a PE port's line-buffer configuration. */
struct LineBufferSpec
{
    Stage stage;
    std::string port;         ///< "Input 0", "Input 1", "Output"
    std::string onChipBuffer; ///< which on-chip buffer it fronts
    int width = 0;            ///< registers per line buffer
    int count = 0;            ///< line buffers on this port
};

/**
 * The Table 3 line-buffer plan of one layer on an N_PE-wide CU:
 * widths and counts for every PE port of every computation stage,
 * including the derived M_FW / M_GC / M_w / M_BW parallelism factors.
 */
std::vector<LineBufferSpec> lineBufferPlan(const nn::ConvSpec &spec,
                                           int n_pe);

/** Feature-map words for one sample with rows aligned to 16-word
 * bursts (Section 4.3). */
std::uint64_t alignedFeatureMapWords(int channels, int height,
                                     int width);

/** Parameter words of a layer as stored in DRAM (padded patch image,
 * Figure 7c). */
std::uint64_t paddedParamWords(const nn::ConvSpec &spec);

} // namespace fa3c::core

#endif // FA3C_FA3C_TIMING_HH
