#include "fa3c/tlu.hh"

#include "obs/metrics.hh"
#include "sim/logging.hh"
#include "sim/perf_counters.hh"

namespace fa3c::core {

void
TransposeBuffer::writeRow(std::span<const float> row)
{
    FA3C_ASSERT(row.size() == static_cast<std::size_t>(patchWords),
                "TransposeBuffer row width");
    FA3C_ASSERT(rowsWritten_ < patchWords,
                "TransposeBuffer overfilled (", rowsWritten_, " rows)");
    FA3C_ASSERT(colsRead_ == 0,
                "TransposeBuffer written while draining");
    // The hardware shifts the incoming row into a 16x16 register
    // plane; functionally the row lands at index rowsWritten_.
    for (int c = 0; c < patchWords; ++c)
        regs_[static_cast<std::size_t>(rowsWritten_ * patchWords + c)] =
            row[static_cast<std::size_t>(c)];
    ++rowsWritten_;
}

void
TransposeBuffer::readColumn(std::span<float> out)
{
    FA3C_ASSERT(out.size() == static_cast<std::size_t>(patchWords),
                "TransposeBuffer column width");
    FA3C_ASSERT(rowsWritten_ == patchWords,
                "TransposeBuffer drained before full");
    FA3C_ASSERT(colsRead_ < patchWords, "TransposeBuffer over-drained");
    // Draining shifts the plane sideways: column colsRead_ emerges.
    for (int r = 0; r < patchWords; ++r)
        out[static_cast<std::size_t>(r)] =
            regs_[static_cast<std::size_t>(r * patchWords + colsRead_)];
    ++colsRead_;
    if (colsRead_ == patchWords) {
        rowsWritten_ = 0;
        colsRead_ = 0;
    }
}

ParamMatrix
loadBwViaTlu(const nn::ConvSpec &spec, std::span<const float> packed)
{
    const int kk = spec.kernel * spec.kernel;
    const int fw_rows = spec.inChannels * kk;
    const int fw_cols = spec.outChannels;
    const int prow = paddedRows(spec) / patchWords;
    const int pcol = paddedCols(spec) / patchWords;
    FA3C_ASSERT(packed.size() == static_cast<std::size_t>(prow) *
                                     static_cast<std::size_t>(pcol) *
                                     patchWords * patchWords,
                "loadBwViaTlu packed size");

    // Transposed view of the whole FW matrix (cols x rows), assembled
    // patch by patch through the TLU register plane.
    ParamMatrix transposed(paddedCols(spec), paddedRows(spec));
    TransposeBuffer tlu;
    std::array<float, static_cast<std::size_t>(patchWords)> line{};
    for (int pr = 0; pr < prow; ++pr) {
        for (int pc = 0; pc < pcol; ++pc) {
            const std::size_t base =
                (static_cast<std::size_t>(pr) *
                     static_cast<std::size_t>(pcol) +
                 static_cast<std::size_t>(pc)) *
                patchWords * patchWords;
            for (int r = 0; r < patchWords; ++r)
                tlu.writeRow(packed.subspan(
                    base + static_cast<std::size_t>(r) * patchWords,
                    patchWords));
            for (int c = 0; c < patchWords; ++c) {
                tlu.readColumn(line);
                // Patch (pr, pc) of the FW matrix becomes patch
                // (pc, pr) of the transposed matrix.
                for (int r = 0; r < patchWords; ++r)
                    transposed.at(pc * patchWords + c,
                                  pr * patchWords + r) =
                        line[static_cast<std::size_t>(r)];
            }
        }
    }

    // Reindex the transposed matrix (o, i*K*K + k) into the BW layout
    // (o*K*K + k, i) — the in-buffer arrangement the line buffers and
    // BCU present to the PEs.
    ParamMatrix bw(spec.outChannels * kk, spec.inChannels);
    for (int o = 0; o < fw_cols; ++o)
        for (int i = 0; i < spec.inChannels; ++i)
            for (int k = 0; k < kk; ++k)
                bw.at(o * kk + k, i) = transposed.at(o, i * kk + k);
    (void)fw_rows;

    const auto patches = static_cast<std::uint64_t>(prow) *
                         static_cast<std::uint64_t>(pcol);
    const auto words = patches *
                       static_cast<std::uint64_t>(patchWords) *
                       static_cast<std::uint64_t>(patchWords);
    if (obs::MetricsRegistry &m = obs::metrics(); m.enabled()) {
        m.count("fa3c.tlu", "layer_loads", 1);
        m.count("fa3c.tlu", "patches", patches);
        m.count("fa3c.tlu", "words", words);
    }
    {
        sim::PerfBank &bank = sim::perf().bank("tlu");
        static auto &loads = bank.counter("layer_loads");
        static auto &patchC = bank.counter("patches");
        static auto &wordC = bank.counter("words");
        loads.fetch_add(1, std::memory_order_relaxed);
        patchC.fetch_add(patches, std::memory_order_relaxed);
        wordC.fetch_add(words, std::memory_order_relaxed);
    }
    return bw;
}

std::uint64_t
tluLoadCycles(const nn::ConvSpec &spec, int tlu_count)
{
    FA3C_ASSERT(tlu_count >= 1, "tluLoadCycles tlu_count");
    const std::uint64_t patches =
        static_cast<std::uint64_t>(paddedRows(spec) / patchWords) *
        static_cast<std::uint64_t>(paddedCols(spec) / patchWords);
    if (patches == 0)
        return 0;
    if (tlu_count >= 2) {
        // Fill/drain overlap across the two TLUs: 16 cycles per patch
        // in steady state, one exposed 16-cycle fill up front.
        return patches * patchWords + patchWords;
    }
    return patches * 2 * patchWords;
}

} // namespace fa3c::core
