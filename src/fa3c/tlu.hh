/**
 * @file
 * The Transpose Load Unit (Section 4.4.3).
 *
 * Parameters live in DRAM as 16x16-word patches of the FW-layout
 * matrix. For backward propagation the TLU transposes each patch
 * using registers and shift operations while it is being loaded, so
 * the on-chip parameter buffer receives the BW layout without a
 * second DRAM copy. A CU has two TLU instances: one fills the
 * parameter buffer while the other prepares the next patch.
 */

#ifndef FA3C_FA3C_TLU_HH
#define FA3C_FA3C_TLU_HH

#include <array>
#include <cstdint>
#include <span>

#include "fa3c/layouts.hh"

namespace fa3c::core {

/**
 * The register/shift transposer at the heart of a TLU.
 *
 * Protocol: 16 writeRow() calls (one DRAM burst beat each), then 16
 * readColumn() calls that drain the transposed patch. The functional
 * model enforces the protocol so tests catch misuse.
 */
class TransposeBuffer
{
  public:
    /** Feed one 16-word row of the incoming patch. */
    void writeRow(std::span<const float> row);

    /** Drain one 16-word column (a row of the transposed patch). */
    void readColumn(std::span<float> out);

    /** True when all 16 rows have been written and none drained. */
    bool full() const { return rowsWritten_ == patchWords && colsRead_ == 0; }

    /** True when the buffer holds no undrained patch. */
    bool
    empty() const
    {
        return rowsWritten_ == 0;
    }

  private:
    std::array<float, static_cast<std::size_t>(patchWords * patchWords)>
        regs_{};
    int rowsWritten_ = 0;
    int colsRead_ = 0;
};

/**
 * Load the BW-layout matrix of a layer from its packed DRAM image by
 * streaming every patch through a TransposeBuffer, exactly as the
 * hardware TLU does (the golden buildBwLayout() must match).
 */
ParamMatrix loadBwViaTlu(const nn::ConvSpec &spec,
                         std::span<const float> packed);

/**
 * Cycles for the TLU to stream a whole layer's parameters.
 *
 * Each patch needs 16 fill + 16 drain cycles; with two TLUs the fill
 * of one overlaps the drain of the other, so steady state costs 16
 * cycles per patch plus one exposed fill at the start.
 *
 * @param tlu_count TLUs per CU (the paper uses 2).
 */
std::uint64_t tluLoadCycles(const nn::ConvSpec &spec, int tlu_count);

} // namespace fa3c::core

#endif // FA3C_FA3C_TLU_HH
