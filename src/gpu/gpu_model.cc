#include "gpu/gpu_model.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fa3c::gpu {

DeviceSpec
DeviceSpec::teslaP100()
{
    // 9.5 TFLOPS fp32, 732 GB/s HBM2 at ~75% sustained; the
    // saturation knee reflects how many output items small A3C
    // kernels need before the 56 SMs are busy.
    return {"NVIDIA Tesla P100", 9.5e12, 550e9, 400e3};
}

DeviceSpec
DeviceSpec::xeonHost()
{
    // Effective per-worker throughput of TensorFlow CPU kernels on
    // the dual E5-2630 host; calibrated to open-source A3C-CPU
    // throughput (see EXPERIMENTS.md).
    return {"2x Xeon E5-2630 (TF CPU)", 5e9, 20e9, 1e3};
}

const char *
platformName(PlatformKind kind)
{
    switch (kind) {
      case PlatformKind::A3cCudnn: return "A3C-cuDNN";
      case PlatformKind::A3cTfGpu: return "A3C-TF-GPU";
      case PlatformKind::Ga3cTf: return "GA3C-TF";
      case PlatformKind::A3cTfCpu: return "A3C-TF-CPU";
    }
    FA3C_PANIC("bad PlatformKind ", static_cast<int>(kind));
}

PlatformSpec
PlatformSpec::a3cCudnn()
{
    PlatformSpec s;
    s.kind = PlatformKind::A3cCudnn;
    s.device = DeviceSpec::teslaP100();
    s.launchOverheadSec = 6e-6;
    s.driverOverheadSec = 185e-6; // stream syncs + memcpy staging
    return s;
}

PlatformSpec
PlatformSpec::a3cTfGpu()
{
    PlatformSpec s = a3cCudnn();
    s.kind = PlatformKind::A3cTfGpu;
    s.frameworkOverheadSec = 450e-6; // session.run per task
    return s;
}

PlatformSpec
PlatformSpec::ga3cTf()
{
    PlatformSpec s = a3cTfGpu();
    s.kind = PlatformKind::Ga3cTf;
    // GA3C batches requests across agents against one global model
    // and trains asynchronously (no local models, no sync). Its
    // per-batch cost is dominated by the Python predictor/trainer
    // queue machinery, not the kernels; calibrated to the GA3C
    // paper's reported throughput (see EXPERIMENTS.md).
    s.frameworkOverheadSec = 6e-3;
    s.maxInferenceBatch = 32;
    s.maxTrainingBatch = 8;
    s.agentWaitsForTraining = false;
    s.usesParamSync = false;
    return s;
}

PlatformSpec
PlatformSpec::a3cTfCpu()
{
    PlatformSpec s;
    s.kind = PlatformKind::A3cTfCpu;
    s.device = DeviceSpec::xeonHost();
    s.launchOverheadSec = 0;
    s.frameworkOverheadSec = 2.5e-3; // TF CPU session overhead
    s.parallelServers = 0;           // one worker per agent
    return s;
}

PlatformSpec
PlatformSpec::bySpec(PlatformKind kind)
{
    switch (kind) {
      case PlatformKind::A3cCudnn: return a3cCudnn();
      case PlatformKind::A3cTfGpu: return a3cTfGpu();
      case PlatformKind::Ga3cTf: return ga3cTf();
      case PlatformKind::A3cTfCpu: return a3cTfCpu();
    }
    FA3C_PANIC("bad PlatformKind");
}

double
stageComputeSec(const nn::ConvSpec &spec, core::Stage stage, int batch,
                const DeviceSpec &device)
{
    const core::StageModel m = core::stageModel(stage, spec, 1);
    const double flops =
        2.0 * static_cast<double>(m.macs) * static_cast<double>(batch);

    // Parallel items available to fill the device: the stage's output
    // elements, or for reduction-heavy stages the MACs spread over
    // warp-level reductions.
    double items = 0;
    switch (stage) {
      case core::Stage::Fw:
        items = static_cast<double>(spec.outChannels) *
                spec.outHeight() * spec.outWidth();
        break;
      case core::Stage::Bw:
        items = static_cast<double>(spec.inChannels) * spec.inHeight *
                spec.inWidth;
        break;
      case core::Stage::Gc:
        items = static_cast<double>(spec.weightCount());
        break;
    }
    items = std::max(items * batch,
                     static_cast<double>(m.macs) * batch / 256.0);
    const double eff = std::min(1.0, items / device.saturationItems);

    // Memory traffic: parameters once, feature maps per sample.
    const double fmap_bytes =
        4.0 *
        (static_cast<double>(spec.inChannels) * spec.inHeight *
             spec.inWidth +
         static_cast<double>(spec.outChannels) * spec.outHeight() *
             spec.outWidth()) *
        batch;
    const double bytes =
        4.0 * static_cast<double>(spec.weightCount()) + fmap_bytes;

    return std::max(flops / (device.peakFlops * eff),
                    bytes / device.memBandwidth);
}

namespace {

/** Kernels a cuDNN-style implementation launches per layer. */
constexpr int fwKernelsPerLayer = 2;  // conv/gemm + bias/ReLU
constexpr int bwKernelsPerLayer = 2;  // data grad + ReLU grad
constexpr int gcKernelsPerLayer = 2;  // filter grad + bias grad
constexpr int optimizerKernels = 2;   // RMSProp + grad staging

} // namespace

GpuTaskTime
inferenceTaskTime(const core::HwNetwork &net, const PlatformSpec &spec,
                  int batch)
{
    GpuTaskTime t;
    for (const auto &layer : net.layers) {
        t.computeSec +=
            stageComputeSec(layer, core::Stage::Fw, batch, spec.device);
        t.kernels += fwKernelsPerLayer;
    }
    t.launchSec = t.kernels * spec.launchOverheadSec;
    t.overheadSec = spec.driverOverheadSec + spec.frameworkOverheadSec;
    return t;
}

GpuTaskTime
trainingTaskTime(const core::HwNetwork &net, const PlatformSpec &spec,
                 int batch)
{
    GpuTaskTime t;
    for (std::size_t l = net.layers.size(); l-- > 0;) {
        const auto &layer = net.layers[l];
        t.computeSec +=
            stageComputeSec(layer, core::Stage::Gc, batch, spec.device);
        t.kernels += gcKernelsPerLayer;
        if (l == 0)
            continue;
        t.computeSec +=
            stageComputeSec(layer, core::Stage::Bw, batch, spec.device);
        t.kernels += bwKernelsPerLayer;
    }
    // Optimizer: stream theta + g once through memory.
    double param_bytes = 0;
    for (const auto &layer : net.layers)
        param_bytes += 4.0 * static_cast<double>(layer.weightCount());
    t.computeSec += 4.0 * param_bytes / spec.device.memBandwidth;
    t.kernels += optimizerKernels;
    t.launchSec = t.kernels * spec.launchOverheadSec;
    t.overheadSec = spec.driverOverheadSec + spec.frameworkOverheadSec;
    return t;
}

double
kernelLaunchShare(const core::HwNetwork &net, const PlatformSpec &spec,
                  int t_max)
{
    const GpuTaskTime inf = inferenceTaskTime(net, spec, 1);
    const GpuTaskTime train = trainingTaskTime(net, spec, t_max);
    const double launch = (t_max + 1) * inf.launchSec + train.launchSec;
    const double kernel_exec = (t_max + 1) *
                                   (inf.launchSec + inf.computeSec) +
                               train.launchSec + train.computeSec;
    return launch / kernel_exec;
}

GpuPlatform::GpuPlatform(sim::EventQueue &queue, const PlatformSpec &spec,
                         const nn::NetConfig &net_cfg, int t_max,
                         int num_agents)
    : queue_(queue), spec_(spec),
      hwNet_(core::HwNetwork::fromConfig(net_cfg)), tMax_(t_max)
{
    if (spec_.parallelServers == 0) {
        // CPU platform: one worker per agent, derated when the
        // TF intra-op threads oversubscribe the host cores.
        spec_.parallelServers = num_agents;
        cpuDerate_ = std::max(
            1.0, num_agents * spec_.cpuCoresPerWorker / spec_.hostCores);
    }
    freeServers_ = spec_.parallelServers;
    pcie_ = std::make_unique<core::DramChannel>(
        queue_, 12e9, 1.5e-6, stats_, "pcie");
}

void
GpuPlatform::submitInference(std::function<void()> done)
{
    inferenceQueue_.push_back(Queued{std::move(done)});
    stats_.counter("tasks.inference").inc();
    dispatch();
}

void
GpuPlatform::submitTraining(std::function<void()> done)
{
    trainingQueue_.push_back(Queued{std::move(done)});
    stats_.counter("tasks.training").inc();
    dispatch();
}

void
GpuPlatform::submitParamSync(std::function<void()> done)
{
    if (!spec_.usesParamSync) {
        queue_.scheduleIn(0, std::move(done));
        return;
    }
    // Device-side copy of the global parameters into the local set.
    double param_bytes = 0;
    for (const auto &layer : hwNet_.layers)
        param_bytes += 4.0 * static_cast<double>(layer.weightCount());
    const double seconds =
        (spec_.driverOverheadSec + spec_.frameworkOverheadSec / 2 +
         2.0 * param_bytes / spec_.device.memBandwidth) *
        cpuDerate_;
    queue_.scheduleIn(static_cast<sim::Tick>(
                          seconds *
                          static_cast<double>(sim::ticksPerSecond)),
                      std::move(done));
}

void
GpuPlatform::hostToDevice(double bytes, std::function<void()> done)
{
    if (spec_.kind == PlatformKind::A3cTfCpu) {
        queue_.scheduleIn(0, std::move(done));
        return;
    }
    pcie_->request(bytes, 0.0, std::move(done));
}

void
GpuPlatform::deviceToHost(double bytes, std::function<void()> done)
{
    if (spec_.kind == PlatformKind::A3cTfCpu) {
        queue_.scheduleIn(0, std::move(done));
        return;
    }
    pcie_->request(bytes, 0.0, std::move(done));
}

void
GpuPlatform::dispatch()
{
    while (freeServers_ > 0 &&
           (!inferenceQueue_.empty() || !trainingQueue_.empty())) {
        // Prefer the longer queue (GA3C's predictor/trainer threads
        // drain whichever backlog is larger).
        const bool take_inference =
            inferenceQueue_.size() >= trainingQueue_.size()
                ? !inferenceQueue_.empty()
                : false;

        std::vector<std::function<void()>> dones;
        double seconds = 0;
        if (take_inference) {
            const int batch = std::min<std::size_t>(
                static_cast<std::size_t>(spec_.maxInferenceBatch),
                inferenceQueue_.size());
            for (int i = 0; i < batch; ++i) {
                dones.push_back(std::move(inferenceQueue_.front().done));
                inferenceQueue_.pop_front();
            }
            seconds = inferenceTaskTime(hwNet_, spec_, batch).totalSec();
            stats_.counter("batches.inference").inc();
            stats_.counter("batched.inferences")
                .inc(static_cast<std::uint64_t>(batch));
        } else {
            const int batch = std::min<std::size_t>(
                static_cast<std::size_t>(spec_.maxTrainingBatch),
                trainingQueue_.size());
            // Each queued training is itself a t_max-sample batch;
            // GA3C fuses them into one larger device batch.
            for (int i = 0; i < batch; ++i) {
                dones.push_back(std::move(trainingQueue_.front().done));
                trainingQueue_.pop_front();
            }
            seconds =
                trainingTaskTime(hwNet_, spec_, batch * tMax_).totalSec();
            stats_.counter("batches.training").inc();
        }
        runBatch(std::move(dones), seconds * cpuDerate_);
    }
}

void
GpuPlatform::runBatch(std::vector<std::function<void()>> dones,
                      double seconds)
{
    --freeServers_;
    const sim::Tick duration = static_cast<sim::Tick>(
        seconds * static_cast<double>(sim::ticksPerSecond));
    busyTicks_ += duration;
    queue_.scheduleIn(duration, [this, dones = std::move(dones)]() {
        ++freeServers_;
        for (const auto &done : dones)
            if (done)
                done();
        dispatch();
    });
}

double
GpuPlatform::deviceUtilization() const
{
    const sim::Tick now = queue_.now();
    if (now == 0 || spec_.parallelServers == 0)
        return 0.0;
    return static_cast<double>(busyTicks_) /
           (static_cast<double>(now) * spec_.parallelServers);
}

} // namespace fa3c::gpu
