/**
 * @file
 * Timing models of the baseline Deep-RL platforms of Section 5:
 * A3C-cuDNN, A3C-TF-GPU, GA3C-TF (all on a Tesla P100), and
 * A3C-TF-CPU (on the dual-Xeon host).
 *
 * Kernel times follow a roofline with an explicit small-batch
 * efficiency term; every kernel pays the launch overhead the paper
 * measures (Section 3.4), and TensorFlow platforms pay a per-call
 * framework overhead. Absolute scales are calibrated to the paper's
 * measured ratios (A3C-cuDNN peak IPS, the >38% launch share) and are
 * documented in EXPERIMENTS.md.
 */

#ifndef FA3C_GPU_GPU_MODEL_HH
#define FA3C_GPU_GPU_MODEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fa3c/dram_model.hh"
#include "fa3c/task_model.hh"
#include "nn/a3c_network.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace fa3c::gpu {

/** Raw device capabilities. */
struct DeviceSpec
{
    std::string name;
    double peakFlops;        ///< fp32 FLOP/s
    double memBandwidth;     ///< bytes/s
    /** Output items at which kernels reach full efficiency; small
     * batches scale linearly below it (the A3C batch-size problem of
     * Section 3.2). */
    double saturationItems;

    /** NVIDIA Tesla P100 (Table 5). */
    static DeviceSpec teslaP100();

    /** The dual Xeon E5-2630 host, as a TensorFlow CPU device. */
    static DeviceSpec xeonHost();
};

/** The four baseline platforms of Figure 8. */
enum class PlatformKind
{
    A3cCudnn,
    A3cTfGpu,
    Ga3cTf,
    A3cTfCpu,
};

/** Human-readable platform name. */
const char *platformName(PlatformKind kind);

/** Full platform description (device + software stack overheads). */
struct PlatformSpec
{
    PlatformKind kind;
    DeviceSpec device;
    double launchOverheadSec = 10e-6;  ///< per kernel (Section 3.4)
    double driverOverheadSec = 0;      ///< per task: syncs, memcpy setup
    double frameworkOverheadSec = 0;   ///< per task: TF session overhead
    int maxInferenceBatch = 1;         ///< GA3C batches across agents
    int maxTrainingBatch = 1;
    bool agentWaitsForTraining = true; ///< GA3C trains asynchronously
    bool usesParamSync = true;         ///< GA3C has one global model
    /** Parallel device servers (1 for a GPU; the CPU platform runs
     * one worker per agent, derated by core oversubscription). */
    int parallelServers = 1;
    int hostCores = 20;                ///< 2x Xeon E5-2630
    double cpuCoresPerWorker = 2.5;    ///< TF intra-op threads

    static PlatformSpec a3cCudnn();
    static PlatformSpec a3cTfGpu();
    static PlatformSpec ga3cTf();
    static PlatformSpec a3cTfCpu();
    static PlatformSpec bySpec(PlatformKind kind);
};

/** Time and launch accounting of one device task. */
struct GpuTaskTime
{
    double computeSec = 0;
    double launchSec = 0;
    double overheadSec = 0; ///< driver + framework
    int kernels = 0;

    double
    totalSec() const
    {
        return computeSec + launchSec + overheadSec;
    }
};

/** Roofline time of one stage of one layer at batch @p batch. */
double stageComputeSec(const nn::ConvSpec &spec, core::Stage stage,
                       int batch, const DeviceSpec &device);

/** The inference task (FW over all layers) on this platform. */
GpuTaskTime inferenceTaskTime(const core::HwNetwork &net,
                              const PlatformSpec &spec, int batch);

/** The training task (BW + GC + optimizer) at batch @p batch. */
GpuTaskTime trainingTaskTime(const core::HwNetwork &net,
                             const PlatformSpec &spec, int batch);

/**
 * The kernel-launch-share measurement of Section 3.4: the fraction of
 * total kernel execution time spent in launch overhead over one
 * agent routine (t_max + 1 inferences + one training task).
 */
double kernelLaunchShare(const core::HwNetwork &net,
                         const PlatformSpec &spec, int t_max);

/**
 * Event-driven baseline platform: a device server (or per-agent CPU
 * workers) consuming inference / training tasks, with GA3C-style
 * cross-agent batching when the spec allows it.
 */
class GpuPlatform
{
  public:
    GpuPlatform(sim::EventQueue &queue, const PlatformSpec &spec,
                const nn::NetConfig &net_cfg, int t_max, int num_agents);

    void submitInference(std::function<void()> done);
    void submitTraining(std::function<void()> done);
    void submitParamSync(std::function<void()> done);
    void hostToDevice(double bytes, std::function<void()> done);
    void deviceToHost(double bytes, std::function<void()> done);

    const PlatformSpec &spec() const { return spec_; }
    sim::StatGroup &stats() { return stats_; }

    /** Device busy fraction so far. */
    double deviceUtilization() const;

  private:
    struct Queued
    {
        std::function<void()> done;
    };

    sim::EventQueue &queue_;
    PlatformSpec spec_;
    core::HwNetwork hwNet_;
    int tMax_;
    sim::StatGroup stats_;
    std::deque<Queued> inferenceQueue_;
    std::deque<Queued> trainingQueue_;
    int freeServers_;
    double cpuDerate_ = 1.0;
    sim::Tick busyTicks_ = 0;
    std::unique_ptr<core::DramChannel> pcie_;

    void dispatch();
    void runBatch(std::vector<std::function<void()>> dones,
                  double seconds);
};

} // namespace fa3c::gpu

#endif // FA3C_GPU_GPU_MODEL_HH
