#include "gpu/layout_experiment.hh"

#include "fa3c/layouts.hh"

namespace fa3c::gpu {

std::vector<LayoutExperimentRow>
layoutExperiment(const nn::NetConfig &net_cfg, int t_max,
                 const LayoutPenalties &penalties)
{
    const nn::A3cNetwork net(net_cfg);
    const PlatformSpec spec = PlatformSpec::a3cCudnn();
    const std::vector<nn::ConvSpec> fc_layers = {
        core::asConv(net.fc3()),
        core::asConv(nn::FcSpec{net.fc4().inFeatures,
                                net_cfg.fc4HardwareLanes}),
    };

    // Matched-layout FC task times (our tuned OpenCL kernels run
    // within 12% of cuDNN, Section 5.5).
    double inf_matched = 0;
    double train_matched = 0;
    double param_bytes = 0;
    for (const auto &layer : fc_layers) {
        inf_matched += penalties.openclVsCudnn *
                       (stageComputeSec(layer, core::Stage::Fw, 1,
                                        spec.device) +
                        spec.launchOverheadSec);
        train_matched +=
            penalties.openclVsCudnn *
            (stageComputeSec(layer, core::Stage::Bw, t_max,
                             spec.device) +
             stageComputeSec(layer, core::Stage::Gc, t_max,
                             spec.device) +
             2 * spec.launchOverheadSec);
        param_bytes += 4.0 * static_cast<double>(layer.weightCount());
    }

    // The transform kernel streams every parameter through memory
    // twice (read one layout, write the other).
    const double transform =
        2.0 * param_bytes / spec.device.memBandwidth +
        spec.launchOverheadSec;

    return {
        {"FW layout for both tasks", inf_matched,
         train_matched * penalties.trainingMismatch, 0.0},
        {"BW layout for both tasks",
         inf_matched * penalties.inferenceMismatch, train_matched, 0.0},
        {"Best layout per task + transform kernel", inf_matched,
         train_matched, transform},
    };
}

} // namespace fa3c::gpu
