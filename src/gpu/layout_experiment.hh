/**
 * @file
 * The GPU parameter-layout experiment of Figure 11 / Section 5.5: the
 * computation time of the fully-connected layers' inference and
 * training tasks under the FW layout, the BW layout, and the
 * best-matching layout per task plus an explicit transform kernel.
 *
 * On a GPU a mismatched layout turns coalesced parameter reads into
 * strided ones; the paper measures the inference task 41.7% slower
 * under the BW layout. The transform kernel streams the parameters
 * through memory twice, which offsets the matched-layout gain — the
 * effect the dedicated TLU hides on FA3C.
 */

#ifndef FA3C_GPU_LAYOUT_EXPERIMENT_HH
#define FA3C_GPU_LAYOUT_EXPERIMENT_HH

#include <string>
#include <vector>

#include "gpu/gpu_model.hh"

namespace fa3c::gpu {

/** One bar of Figure 11. */
struct LayoutExperimentRow
{
    std::string config;     ///< e.g. "FW layout for both tasks"
    double inferenceSec;    ///< FC-layer inference time
    double trainingSec;     ///< FC-layer training time
    double transformSec;    ///< extra layout-transform kernel time
    double
    totalSec() const
    {
        return inferenceSec + trainingSec + transformSec;
    }
};

/** Calibrated mismatch penalties (EXPERIMENTS.md). */
struct LayoutPenalties
{
    /** Inference under the BW layout (paper: 41.7% slower). */
    double inferenceMismatch = 1.417;
    /** Training under the FW layout (strided BW reads). */
    double trainingMismatch = 1.35;
    /** Our OpenCL kernels vs cuDNN (paper: within 12%). */
    double openclVsCudnn = 1.12;
};

/**
 * Compute the Figure 11 rows for the FC layers of the network.
 *
 * @param t_max Training batch size.
 */
std::vector<LayoutExperimentRow>
layoutExperiment(const nn::NetConfig &net_cfg, int t_max,
                 const LayoutPenalties &penalties = {});

} // namespace fa3c::gpu

#endif // FA3C_GPU_LAYOUT_EXPERIMENT_HH
