#include "harness/agent_driver.hh"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace fa3c::harness {

namespace {

sim::Tick
toTicks(double seconds)
{
    return static_cast<sim::Tick>(
        seconds * static_cast<double>(sim::ticksPerSecond));
}

/** Shared measurement state. */
struct Meter
{
    std::uint64_t inferences = 0;
    std::uint64_t routines = 0;
    std::vector<std::uint64_t> routinesPerAgent;
    std::vector<double> latencies; ///< per-routine, seconds
};

/** One simulated agent's routine state machine. */
class AgentSim : public std::enable_shared_from_this<AgentSim>
{
  public:
    AgentSim(sim::EventQueue &queue, const PlatformOps &ops,
             const HostModel &host, int t_max, Meter &meter, int id,
             std::uint64_t seed)
        : queue_(queue), ops_(ops), host_(host), tMax_(t_max),
          meter_(meter), id_(id), rng_(seed)
    {
    }

    void
    start()
    {
        startRoutine();
    }

  private:
    sim::EventQueue &queue_;
    const PlatformOps &ops_;
    const HostModel &host_;
    int tMax_;
    Meter &meter_;
    int id_;
    sim::Rng rng_;
    int step_ = 0;
    sim::Tick routineStart_ = 0;

    /** Env step time with the configured jitter. */
    double
    envStepSec()
    {
        const double j = host_.envStepJitter;
        return host_.envStepSec *
               (1.0 - j + 2.0 * j * rng_.uniform());
    }

    void
    startRoutine()
    {
        routineStart_ = queue_.now();
        auto self = shared_from_this();
        if (ops_.doParamSync) {
            ops_.submitParamSync([self]() { self->beginSteps(); });
        } else {
            beginSteps();
        }
    }

    void
    beginSteps()
    {
        step_ = 0;
        inferenceStep(false);
    }

    /** One inference round trip; @p bootstrap marks the extra value
     * inference that is not counted toward IPS. */
    void
    inferenceStep(bool bootstrap)
    {
        auto self = shared_from_this();
        ops_.hostToDevice(host_.inputBytes, [self, bootstrap]() {
            self->ops_.submitInference([self, bootstrap]() {
                self->ops_.deviceToHost(
                    self->host_.outputBytes, [self, bootstrap]() {
                        self->afterInference(bootstrap);
                    });
            });
        });
    }

    void
    afterInference(bool bootstrap)
    {
        auto self = shared_from_this();
        if (bootstrap) {
            // Host computes the delta-objective and ships it.
            queue_.scheduleIn(
                toTicks(host_.deltaObjectiveSec), [self]() {
                    self->ops_.hostToDevice(
                        self->host_.deltaBytes,
                        [self]() { self->submitTrain(); });
                });
            return;
        }
        ++meter_.inferences;
        ++step_;
        // Host selects the action and advances the environment.
        queue_.scheduleIn(
            toTicks(host_.actionSelectSec + envStepSec()),
            [self]() {
                if (self->step_ < self->tMax_)
                    self->inferenceStep(false);
                else
                    self->inferenceStep(true); // bootstrap inference
            });
    }

    void
    submitTrain()
    {
        auto self = shared_from_this();
        if (ops_.waitForTraining) {
            ops_.submitTraining([self]() { self->finishRoutine(); });
        } else {
            // GA3C: hand the batch to the trainer queue and move on.
            ops_.submitTraining({});
            finishRoutine();
        }
    }

    void
    finishRoutine()
    {
        ++meter_.routines;
        ++meter_.routinesPerAgent[static_cast<std::size_t>(id_)];
        const double latency_sec =
            static_cast<double>(queue_.now() - routineStart_) /
            static_cast<double>(sim::ticksPerSecond);
        meter_.latencies.push_back(latency_sec);
        if (obs::TraceWriter *tw = obs::trace())
            tw->completeEvent("RL worker " + std::to_string(id_),
                              "routine", routineStart_, queue_.now());
        if (obs::MetricsRegistry &m = obs::metrics(); m.enabled()) {
            m.count("harness.agents", "routines", 1);
            m.sample("harness.agents", "routine_sec", latency_sec);
        }
        startRoutine();
    }
};

} // namespace

IpsResult
measureIps(sim::EventQueue &queue, const PlatformOps &ops,
           const HostModel &host, int num_agents, int t_max,
           double sim_seconds, double warmup_fraction)
{
    FA3C_ASSERT(num_agents >= 1 && t_max >= 1, "measureIps arguments");
    FA3C_ASSERT(sim_seconds > 0 && warmup_fraction >= 0 &&
                    warmup_fraction < 1,
                "measureIps window");

    Meter meter;
    meter.routinesPerAgent.assign(
        static_cast<std::size_t>(num_agents), 0);
    std::vector<std::shared_ptr<AgentSim>> agents;
    for (int i = 0; i < num_agents; ++i) {
        agents.push_back(std::make_shared<AgentSim>(
            queue, ops, host, t_max, meter, i,
            0xFA3C0000ULL + static_cast<std::uint64_t>(i)));
    }
    for (auto &agent : agents)
        agent->start();

    const double warmup_seconds = sim_seconds * warmup_fraction;
    std::uint64_t warm_inferences = 0;
    std::uint64_t warm_routines = 0;
    queue.scheduleIn(toTicks(warmup_seconds), [&]() {
        warm_inferences = meter.inferences;
        warm_routines = meter.routines;
    });

    const sim::Tick limit = queue.now() + toTicks(sim_seconds);
    queue.run(limit);

    IpsResult result;
    result.measuredSeconds = sim_seconds - warmup_seconds;
    result.inferences = meter.inferences - warm_inferences;
    result.ips = static_cast<double>(result.inferences) /
                 result.measuredSeconds;
    result.routinesPerSec =
        static_cast<double>(meter.routines - warm_routines) /
        result.measuredSeconds;
    result.routinesPerAgent = meter.routinesPerAgent;
    if (!meter.latencies.empty()) {
        std::vector<double> sorted = meter.latencies;
        std::sort(sorted.begin(), sorted.end());
        double sum = 0;
        for (double v : sorted)
            sum += v;
        result.latencyMeanSec = sum / static_cast<double>(sorted.size());
        result.latencyP50Sec = sorted[sorted.size() / 2];
        result.latencyP95Sec =
            sorted[std::min(sorted.size() - 1,
                            sorted.size() * 95 / 100)];
    }
    return result;
}

} // namespace fa3c::harness
