/**
 * @file
 * The simulated A3C agent driver: replays the paper's Figure 2
 * routine (parameter sync, t_max inference steps, one bootstrap
 * inference, one training task) against any platform's submit API in
 * simulated time, and measures IPS the way the paper defines it —
 * regular inference steps per second across all agents, with the
 * bootstrap inferences and training tasks as additional load.
 */

#ifndef FA3C_HARNESS_AGENT_DRIVER_HH
#define FA3C_HARNESS_AGENT_DRIVER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hh"

namespace fa3c::harness {

/** Type-erased platform surface the driver talks to. */
struct PlatformOps
{
    std::function<void(std::function<void()>)> submitInference;
    std::function<void(std::function<void()>)> submitTraining;
    std::function<void(std::function<void()>)> submitParamSync;
    std::function<void(double, std::function<void()>)> hostToDevice;
    std::function<void(double, std::function<void()>)> deviceToHost;
    /** False for GA3C: agents do not block on the training task. */
    bool waitForTraining = true;
    /** False for GA3C: one global model, no sync task. */
    bool doParamSync = true;
};

/** Host-side (CPU) per-step costs around the offloaded tasks. */
struct HostModel
{
    /** ALE emulation of 4 frames + grayscale/resize preprocessing +
     * the agent thread's bookkeeping, per agent-visible step. */
    double envStepSec = 1e-3;
    /** Relative jitter on the env step (ALE frame cost varies with
     * game state); also breaks artificial agent lock-step. */
    double envStepJitter = 0.25;
    double actionSelectSec = 8e-6;    ///< softmax + sampling (host)
    double deltaObjectiveSec = 20e-6; ///< returns + loss gradients
    double inputBytes = 28224 * 4;    ///< one observation (Table 2)
    double outputBytes = 33 * 4;      ///< logits + value back
    double deltaBytes = 5 * 33 * 4;   ///< delta-objective batch
};

/** Result of one IPS measurement. */
struct IpsResult
{
    double ips = 0;            ///< regular inferences per second
    double routinesPerSec = 0; ///< completed routines per second
    std::uint64_t inferences = 0;
    double measuredSeconds = 0;
    /** Routines completed per agent over the whole run (fairness). */
    std::vector<std::uint64_t> routinesPerAgent;
    /** Routine latency statistics (seconds), whole run. */
    double latencyMeanSec = 0;
    double latencyP50Sec = 0;
    double latencyP95Sec = 0;
};

/**
 * Run @p num_agents simulated agents for @p sim_seconds and report
 * steady-state IPS (the first warmup fraction is discarded).
 */
IpsResult measureIps(sim::EventQueue &queue, const PlatformOps &ops,
                     const HostModel &host, int num_agents, int t_max,
                     double sim_seconds, double warmup_fraction = 0.25);

} // namespace fa3c::harness

#endif // FA3C_HARNESS_AGENT_DRIVER_HH
