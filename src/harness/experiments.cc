#include "harness/experiments.hh"

#include <atomic>
#include <fstream>
#include <memory>
#include <string>

#include "env/session.hh"
#include "fa3c/accelerator.hh"
#include "fa3c/datapath_backend.hh"
#include "obs/metrics.hh"
#include "obs/prometheus.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "rl/fast_cpu_backend.hh"
#include "sim/logging.hh"
#include "sim/perf_counters.hh"
#include "sim/stats.hh"

namespace fa3c::harness {

const char *
platformIdName(PlatformId id)
{
    switch (id) {
      case PlatformId::Fa3c: return "FA3C";
      case PlatformId::A3cCudnn: return "A3C-cuDNN";
      case PlatformId::A3cTfGpu: return "A3C-TF-GPU";
      case PlatformId::Ga3cTf: return "GA3C-TF";
      case PlatformId::A3cTfCpu: return "A3C-TF-CPU";
    }
    FA3C_PANIC("bad PlatformId ", static_cast<int>(id));
}

namespace {

gpu::PlatformKind
toGpuKind(PlatformId id)
{
    switch (id) {
      case PlatformId::A3cCudnn: return gpu::PlatformKind::A3cCudnn;
      case PlatformId::A3cTfGpu: return gpu::PlatformKind::A3cTfGpu;
      case PlatformId::Ga3cTf: return gpu::PlatformKind::Ga3cTf;
      case PlatformId::A3cTfCpu: return gpu::PlatformKind::A3cTfCpu;
      case PlatformId::Fa3c: break;
    }
    FA3C_PANIC("not a GPU platform");
}

HostModel
hostModelFor(const nn::NetConfig &net_cfg, int t_max)
{
    HostModel host;
    host.inputBytes = static_cast<double>(net_cfg.inChannels) *
                      net_cfg.inHeight * net_cfg.inWidth * 4.0;
    host.outputBytes = (net_cfg.numActions + 1) * 4.0;
    host.deltaBytes = host.outputBytes * t_max;
    return host;
}

// Last completed measurement's utilization figures, kept process-wide
// so the gauges survive the per-measurement scopes and a scrape
// between measurements still sees the most recent point.  Negative
// means "never measured"; those gauges are suppressed.
struct UtilizationGauges {
    std::atomic<double> cuInference{-1.0};
    std::atomic<double> cuTraining{-1.0};
    std::atomic<double> gpuDevice{-1.0};
};

UtilizationGauges &
utilGauges()
{
    static UtilizationGauges g;
    return g;
}

void
publishUtilization(obs::MetricsRegistry &m)
{
    // The telemetry registration is deliberately leaked: it must
    // outlive every measurement, and the server handles collectors
    // registered for the life of the process.
    static obs::TelemetryRegistration *reg =
        new obs::TelemetryRegistration(
        obs::telemetry(),
        [](obs::PromWriter &w) {
            auto &g = utilGauges();
            const double infer =
                g.cuInference.load(std::memory_order_relaxed);
            const double train =
                g.cuTraining.load(std::memory_order_relaxed);
            const double gpu =
                g.gpuDevice.load(std::memory_order_relaxed);
            if (infer >= 0.0)
                w.gauge("fa3c_cu_utilization",
                        {{"cu", "inference"}}, infer,
                        "busy fraction of the FA3C inference CUs "
                        "over the last measurement");
            if (train >= 0.0)
                w.gauge("fa3c_cu_utilization",
                        {{"cu", "training"}}, train,
                        "busy fraction of the FA3C training CUs "
                        "over the last measurement");
            if (gpu >= 0.0)
                w.gauge("gpu_device_utilization", gpu,
                        "busy fraction of the GPU device over the "
                        "last measurement");
        },
        "utilization");
    (void)reg;
    auto &g = utilGauges();
    if (m.enabled()) {
        const double infer =
            g.cuInference.load(std::memory_order_relaxed);
        const double train =
            g.cuTraining.load(std::memory_order_relaxed);
        const double gpu = g.gpuDevice.load(std::memory_order_relaxed);
        if (infer >= 0.0)
            m.sample("fa3c.cu", "utilization_inference", infer);
        if (train >= 0.0)
            m.sample("fa3c.cu", "utilization_training", train);
        if (gpu >= 0.0)
            m.sample("gpu.device", "utilization", gpu);
    }
}

} // namespace

PlatformPoint
measurePlatform(PlatformId platform, int agents,
                const nn::NetConfig &net_cfg, int t_max,
                double sim_seconds, const core::Fa3cConfig *fa3c_cfg)
{
    PlatformPoint point;
    point.platform = platform;
    point.agents = agents;

    // Each measurement starts its own event queue at tick 0, so each
    // one gets its own trace process and metrics-group prefix.
    const std::string run_name = std::string(platformIdName(platform)) +
                                 " x" + std::to_string(agents);
    obs::TraceProcessScope trace_scope(obs::trace(), run_name);

    // With FA3C_TELEMETRY_PORT set, the measurement is scrapable while
    // it runs: which platform point is executing and how big it is.
    obs::TelemetryRegistration telemetry_reg(
        obs::telemetry(),
        [platform, agents, sim_seconds](obs::PromWriter &w) {
            w.gauge("harness_platform_id",
                    static_cast<double>(static_cast<int>(platform)),
                    "PlatformId of the measurement in flight");
            w.gauge("harness_agents", static_cast<double>(agents),
                    "agent count of the measurement in flight");
            w.gauge("harness_sim_seconds", sim_seconds,
                    "simulated seconds per measurement");
        },
        "harness",
        [](std::string &detail) {
            detail = "measuring";
            return true;
        });

    sim::EventQueue queue;
    sim::StatGroup queue_stats;
    queue.attachStats(&queue_stats);
    obs::ScopedMetricsGroup queue_metrics(obs::metrics(),
                                          run_name + ".queue",
                                          &queue_stats);
    const HostModel host = hostModelFor(net_cfg, t_max);

    if (platform == PlatformId::Fa3c) {
        const core::Fa3cConfig cfg =
            fa3c_cfg ? *fa3c_cfg : core::Fa3cConfig::vcu1525();
        core::Fa3cPlatform board(queue, cfg, net_cfg, t_max);
        obs::ScopedMetricsGroup board_metrics(obs::metrics(),
                                              run_name + ".board",
                                              &board.stats());
        PlatformOps ops;
        ops.submitInference = [&board](std::function<void()> done) {
            board.submitInference(std::move(done));
        };
        ops.submitTraining = [&board](std::function<void()> done) {
            board.submitTraining(std::move(done));
        };
        ops.submitParamSync = [&board](std::function<void()> done) {
            board.submitParamSync(std::move(done));
        };
        ops.hostToDevice = [&board](double bytes,
                                    std::function<void()> done) {
            board.hostToDevice(bytes, std::move(done));
        };
        ops.deviceToHost = [&board](double bytes,
                                    std::function<void()> done) {
            board.deviceToHost(bytes, std::move(done));
        };
        const IpsResult r = measureIps(queue, ops, host, agents, t_max,
                                       sim_seconds);
        point.ips = r.ips;
        point.routinesPerSec = r.routinesPerSec;
        point.latencyMeanSec = r.latencyMeanSec;
        point.latencyP50Sec = r.latencyP50Sec;
        point.latencyP95Sec = r.latencyP95Sec;
        // The training CUs dominate FA3C's dynamic power.
        point.utilization = 0.5 * (board.trainingCuUtilization() +
                                   board.inferenceCuUtilization());
        utilGauges().cuInference.store(board.inferenceCuUtilization(),
                                       std::memory_order_relaxed);
        utilGauges().cuTraining.store(board.trainingCuUtilization(),
                                      std::memory_order_relaxed);
        publishUtilization(obs::metrics());
        // Roll the board's private counter file into the global one
        // so the metrics / Prometheus bridges export the simulated
        // CU stall attribution and DRAM traffic too.
        sim::perf().absorb(board.perfSnapshot());
        return point;
    }

    const gpu::PlatformSpec spec =
        gpu::PlatformSpec::bySpec(toGpuKind(platform));
    gpu::GpuPlatform device(queue, spec, net_cfg, t_max, agents);
    obs::ScopedMetricsGroup device_metrics(obs::metrics(),
                                           run_name + ".device",
                                           &device.stats());
    PlatformOps ops;
    ops.submitInference = [&device](std::function<void()> done) {
        device.submitInference(std::move(done));
    };
    ops.submitTraining = [&device](std::function<void()> done) {
        device.submitTraining(std::move(done));
    };
    ops.submitParamSync = [&device](std::function<void()> done) {
        device.submitParamSync(std::move(done));
    };
    ops.hostToDevice = [&device](double bytes,
                                 std::function<void()> done) {
        device.hostToDevice(bytes, std::move(done));
    };
    ops.deviceToHost = [&device](double bytes,
                                 std::function<void()> done) {
        device.deviceToHost(bytes, std::move(done));
    };
    ops.waitForTraining = spec.agentWaitsForTraining;
    ops.doParamSync = spec.usesParamSync;
    const IpsResult r =
        measureIps(queue, ops, host, agents, t_max, sim_seconds);
    point.ips = r.ips;
    point.routinesPerSec = r.routinesPerSec;
    point.latencyMeanSec = r.latencyMeanSec;
    point.latencyP50Sec = r.latencyP50Sec;
    point.latencyP95Sec = r.latencyP95Sec;
    point.utilization = device.deviceUtilization();
    utilGauges().gpuDevice.store(device.deviceUtilization(),
                                 std::memory_order_relaxed);
    publishUtilization(obs::metrics());
    return point;
}

TrainingRunResult
runTraining(const TrainingRunConfig &cfg)
{
    const nn::A3cNetwork net(cfg.net);

    auto backend_factory =
        [&](int agent_id) -> std::unique_ptr<rl::DnnBackend> {
        (void)agent_id;
        if (cfg.backend == TrainingBackend::Fa3c)
            return std::make_unique<core::DatapathBackend>(net);
        if (cfg.backend == TrainingBackend::FastCpu)
            return std::make_unique<rl::FastCpuBackend>(net);
        return std::make_unique<rl::ReferenceBackend>(net);
    };

    auto session_factory = [&](int agent_id) {
        env::SessionConfig session_cfg;
        session_cfg.frameStack = cfg.net.inChannels;
        session_cfg.obsHeight = cfg.net.inHeight;
        session_cfg.obsWidth = cfg.net.inWidth;
        return std::make_unique<env::AtariSession>(
            env::makeEnvironment(cfg.game,
                                 cfg.a3c.seed * 977 +
                                     static_cast<std::uint64_t>(
                                         agent_id)),
            session_cfg,
            cfg.a3c.seed * 31 + static_cast<std::uint64_t>(agent_id));
    };

    rl::A3cTrainer trainer(net, cfg.a3c, backend_factory,
                           session_factory);
    TrainingRunResult result;
    if (cfg.resume && !cfg.a3c.checkpointPath.empty() &&
        std::ifstream(cfg.a3c.checkpointPath).good()) {
        if (!trainer.resumeFromFile())
            FA3C_PANIC("cannot resume from corrupt or mismatched "
                       "checkpoint ",
                       cfg.a3c.checkpointPath);
        result.resumedFromStep = trainer.globalParams().globalSteps();
    }
    trainer.run();

    const auto series =
        trainer.scores().movingAverage(cfg.scoreWindow, 1);
    result.curve.reserve(series.size());
    for (const auto &[step, score] : series)
        result.curve.push_back(CurvePoint{step, score});
    result.episodes = trainer.scores().size();
    result.steps = trainer.globalParams().globalSteps();
    if (!result.curve.empty()) {
        // First score: mean over the first window of episodes (a
        // single early episode is too noisy to anchor a comparison).
        const auto records = trainer.scores().records();
        const std::size_t head =
            std::min(cfg.scoreWindow, records.size());
        double sum = 0;
        for (std::size_t i = 0; i < head; ++i)
            sum += records[i].score;
        result.firstScore = sum / static_cast<double>(head);
        result.finalScore = result.curve.back().score;
    }
    return result;
}

std::uint64_t
stepsToScore(const TrainingRunConfig &cfg, double target,
             std::uint64_t max_steps)
{
    const nn::A3cNetwork net(cfg.net);
    auto backend_factory =
        [&](int) -> std::unique_ptr<rl::DnnBackend> {
        return std::make_unique<rl::ReferenceBackend>(net);
    };
    auto session_factory = [&](int agent_id) {
        env::SessionConfig session_cfg;
        session_cfg.frameStack = cfg.net.inChannels;
        session_cfg.obsHeight = cfg.net.inHeight;
        session_cfg.obsWidth = cfg.net.inWidth;
        return std::make_unique<env::AtariSession>(
            env::makeEnvironment(cfg.game,
                                 cfg.a3c.seed * 977 +
                                     static_cast<std::uint64_t>(
                                         agent_id)),
            session_cfg,
            cfg.a3c.seed * 31 + static_cast<std::uint64_t>(agent_id));
    };

    rl::A3cConfig a3c = cfg.a3c;
    a3c.totalSteps = max_steps;
    rl::A3cTrainer trainer(net, a3c, backend_factory, session_factory);
    std::uint64_t reached_at = max_steps;
    trainer.run([&]() {
        if (trainer.scores().size() < cfg.scoreWindow)
            return false;
        if (trainer.scores().recentMean(cfg.scoreWindow) >= target) {
            reached_at = std::min(reached_at,
                                  trainer.globalParams().globalSteps());
            return true;
        }
        return false;
    });
    return reached_at;
}

} // namespace fa3c::harness
