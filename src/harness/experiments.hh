/**
 * @file
 * Experiment drivers shared by the benchmark binaries: construct a
 * platform (FA3C or a GPU/CPU baseline), drive it with simulated
 * agents, and report IPS and utilization; plus the end-to-end
 * training-curve runner for Figure 12.
 */

#ifndef FA3C_HARNESS_EXPERIMENTS_HH
#define FA3C_HARNESS_EXPERIMENTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "env/environment.hh"
#include "fa3c/config.hh"
#include "gpu/gpu_model.hh"
#include "harness/agent_driver.hh"
#include "nn/a3c_network.hh"
#include "rl/a3c.hh"

namespace fa3c::harness {

/** The five platforms of Figures 8 and 9. */
enum class PlatformId
{
    Fa3c,
    A3cCudnn,
    A3cTfGpu,
    Ga3cTf,
    A3cTfCpu,
};

/** All platforms, FA3C first. */
inline constexpr PlatformId allPlatforms[] = {
    PlatformId::Fa3c, PlatformId::A3cCudnn, PlatformId::A3cTfGpu,
    PlatformId::Ga3cTf, PlatformId::A3cTfCpu,
};

/** Display name matching the paper's legends. */
const char *platformIdName(PlatformId id);

/** One measured point of Figure 8 / 10. */
struct PlatformPoint
{
    PlatformId platform;
    int agents;
    double ips = 0;
    double routinesPerSec = 0;
    /** Device busy fraction (drives the power model). */
    double utilization = 0;
    /** Routine latency statistics (seconds). */
    double latencyMeanSec = 0;
    double latencyP50Sec = 0;
    double latencyP95Sec = 0;
};

/**
 * Measure the steady-state IPS of @p platform with @p agents agents.
 *
 * @param fa3c_cfg Overrides the FA3C configuration (Figure 10 uses
 *                 the Stratix V variants); ignored for baselines.
 */
PlatformPoint measurePlatform(PlatformId platform, int agents,
                              const nn::NetConfig &net_cfg, int t_max,
                              double sim_seconds = 4.0,
                              const core::Fa3cConfig *fa3c_cfg = nullptr);

/** One point of a Figure 12 training curve. */
struct CurvePoint
{
    std::uint64_t step;
    double score;
};

/** Which DNN backend the training runner uses. */
enum class TrainingBackend
{
    Reference, ///< golden CPU library
    Fa3c,      ///< the FA3C functional datapath model
    FastCpu,   ///< blocked im2col/GEMM kernel library
};

/** Configuration of one Figure 12 training run. */
struct TrainingRunConfig
{
    env::GameId game = env::GameId::Pong;
    rl::A3cConfig a3c;
    nn::NetConfig net = nn::NetConfig::atari(4);
    TrainingBackend backend = TrainingBackend::Reference;
    /** Moving-average window (the paper smooths over 1,000 episodes;
     * scaled-down runs use a smaller window). */
    std::size_t scoreWindow = 50;
    /** Observation downsampling: the session renders 84x84 frames and
     * pools them to the network input size. */

    /** Resume from a3c.checkpointPath before training when the file
     * exists; a missing file silently starts fresh, a corrupt or
     * mismatched one aborts the run. */
    bool resume = false;
};

/** Result of one training run. */
struct TrainingRunResult
{
    std::vector<CurvePoint> curve; ///< moving-average score vs step
    double finalScore = 0;         ///< last moving-average value
    double firstScore = 0;         ///< first moving-average value
    std::uint64_t episodes = 0;
    std::uint64_t steps = 0;
    /** Step the run resumed from (0 when started fresh). */
    std::uint64_t resumedFromStep = 0;
};

/** Run A3C end-to-end on a synthetic game and return the learning
 * curve. This actually trains the network. */
TrainingRunResult runTraining(const TrainingRunConfig &cfg);

/**
 * Run training until the moving-average score reaches @p target or
 * @p max_steps is hit; returns the steps consumed (the Section 3.2
 * batch-size experiment).
 */
std::uint64_t stepsToScore(const TrainingRunConfig &cfg, double target,
                           std::uint64_t max_steps);

} // namespace fa3c::harness

#endif // FA3C_HARNESS_EXPERIMENTS_HH
