/**
 * @file
 * The paper's reported numbers, used by the benchmark binaries to
 * print paper-vs-measured comparisons (EXPERIMENTS.md records the
 * outcome of each).
 */

#ifndef FA3C_HARNESS_PAPER_DATA_HH
#define FA3C_HARNESS_PAPER_DATA_HH

#include <cstdint>

namespace fa3c::harness::paper {

// Section 5.2 / Figure 8 (n = 16).
inline constexpr double fa3cPeakIps = 2550;       // "higher than 2,550"
inline constexpr double fa3cVsCudnnSpeedup = 1.279; // "27.9% better"

// Section 5.3 / Figure 9.
inline constexpr double fa3cWatts = 18.0;
inline constexpr double fa3cPowerReduction = 0.300; // vs A3C-cuDNN
inline constexpr double fa3cIpsPerWatt = 142.0;     // "more than 142"
inline constexpr double fa3cEfficiencyRatio = 1.62; // vs A3C-cuDNN

// Section 5.4 / Figure 10 (Stratix V, one CU pair, n = 16).
inline constexpr double alt1Slowdown = 0.33; // "33% lower when n=16"
inline constexpr int dualCuWinThreshold = 4; // dual CUs win for n >= 4

// Section 5.5 / Figure 11.
inline constexpr double bwLayoutInferencePenalty = 0.417; // "41.7%"
inline constexpr double openclVsCudnnGap = 0.12;          // "within 12%"

// Section 3.4.
inline constexpr double gpuKernelLaunchShare = 0.38;  // "more than 38%"
inline constexpr double fpgaKernelLaunchShare = 0.0002; // "< 0.02%"

// Section 3.2: Breakout steps to score 200 under t_max 5 vs 32.
inline constexpr double tmax32StepsRatio = 2.0; // "over 70M" vs "35M"

// Table 2 (KB per agent routine, t_max = 5).
inline constexpr double table2ParamSetKb = 2592.0;
inline constexpr double table2InputKb = 110.0;
inline constexpr double table2TotalLoadKb = 24538.0;
inline constexpr double table2TotalStoreKb = 7776.0;

// Table 4 totals on the VU9P.
inline constexpr double table4LogicTotal = 677.3e3;
inline constexpr double table4RegistersTotal = 875.7e3;
inline constexpr double table4MemBlocksTotal = 1267;
inline constexpr double table4DspTotal = 2348;

} // namespace fa3c::harness::paper

#endif // FA3C_HARNESS_PAPER_DATA_HH
