#include "net/frame.hh"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <cerrno>

namespace fa3c::net {

bool
readFull(int fd, void *buf, std::size_t len)
{
    auto *p = static_cast<std::uint8_t *>(buf);
    while (len > 0) {
        const ssize_t n = ::recv(fd, p, len, 0);
        if (n == 0)
            return false;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeFull(int fd, const void *buf, std::size_t len)
{
    auto *p = static_cast<const std::uint8_t *>(buf);
    while (len > 0) {
        const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

void
setNoDelay(int fd)
{
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof(one));
}

bool
sendFrame(int fd, std::uint32_t magic, std::uint32_t type,
          const void *payload, std::size_t payload_len)
{
    std::vector<std::uint8_t> frame;
    frame.reserve(kFrameHeaderBytes + payload_len);
    encodeFrameHeader(frame,
                      {magic, type,
                       static_cast<std::uint32_t>(payload_len)});
    if (payload_len > 0) {
        const auto *bytes =
            static_cast<const std::uint8_t *>(payload);
        frame.insert(frame.end(), bytes, bytes + payload_len);
    }
    return writeFull(fd, frame.data(), frame.size());
}

bool
recvFrame(int fd, std::uint32_t magic, std::uint32_t max_payload,
          std::uint32_t &type_out, std::string &payload_out)
{
    std::uint8_t header[kFrameHeaderBytes];
    if (!readFull(fd, header, sizeof(header)))
        return false;
    const FrameHeader h = decodeFrameHeader(header);
    if (h.magic != magic || h.payloadLen > max_payload)
        return false;
    payload_out.resize(h.payloadLen);
    if (h.payloadLen > 0 &&
        !readFull(fd, payload_out.data(), h.payloadLen))
        return false;
    type_out = h.type;
    return true;
}

} // namespace fa3c::net
