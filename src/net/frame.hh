/**
 * @file
 * Length-prefix framing and byte-codec helpers shared by every TCP
 * endpoint in the tree: the serving front-ends (serve/tcp.*,
 * serve/event_loop.*), the blocking serve client, and the distributed
 * training plane under src/dist. All integers little-endian, floats
 * IEEE-754 binary32; both ends are assumed little-endian hosts.
 *
 * Three layers live here:
 *
 *  - put/get: append/read trivially copyable values on byte buffers
 *    (the primitive every wire codec in the tree is built from);
 *  - readFull/writeFull/setNoDelay: blocking socket I/O that retries
 *    EINTR and never raises SIGPIPE;
 *  - Frame + RecvBuffer: a generic {magic, type, length}-headed
 *    message frame with blocking send/recv helpers, plus the
 *    reassembly buffer non-blocking loops use to parse frames that
 *    arrive split across reads.
 *
 * The serving wire format (serve/wire.hh) predates this file and
 * carries its own headers; it builds on the put/get layer only, so
 * its frames stay bit-identical to what v1/v2 clients expect.
 */

#ifndef FA3C_NET_FRAME_HH
#define FA3C_NET_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace fa3c::net {

/** Append a trivially copyable value to a byte buffer. */
template <typename T>
inline void
put(std::vector<std::uint8_t> &buf, T v)
{
    const auto *bytes = reinterpret_cast<const std::uint8_t *>(&v);
    buf.insert(buf.end(), bytes, bytes + sizeof(T));
}

/** Read a trivially copyable value from a byte cursor. */
template <typename T>
inline T
get(const std::uint8_t *&p)
{
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
}

/** recv() exactly @p len bytes; false on EOF or a hard error. */
bool readFull(int fd, void *buf, std::size_t len);

/** send() exactly @p len bytes (MSG_NOSIGNAL: no SIGPIPE). */
bool writeFull(int fd, const void *buf, std::size_t len);

/** Disable Nagle batching on @p fd (best effort). */
void setNoDelay(int fd);

/**
 * Generic message frame: a fixed header followed by an opaque
 * payload. The magic names the protocol (each subsystem picks its
 * own), the type the message within it.
 *
 *     u32 magic
 *     u32 type
 *     u32 payload_len
 *     u8  payload[payload_len]
 */
struct FrameHeader
{
    std::uint32_t magic = 0;
    std::uint32_t type = 0;
    std::uint32_t payloadLen = 0;
};

inline constexpr std::size_t kFrameHeaderBytes = 3 * sizeof(std::uint32_t);

/** Append @p h to @p buf in wire order. */
inline void
encodeFrameHeader(std::vector<std::uint8_t> &buf, const FrameHeader &h)
{
    put<std::uint32_t>(buf, h.magic);
    put<std::uint32_t>(buf, h.type);
    put<std::uint32_t>(buf, h.payloadLen);
}

/** Decode kFrameHeaderBytes at @p p. */
inline FrameHeader
decodeFrameHeader(const std::uint8_t *p)
{
    FrameHeader h;
    h.magic = get<std::uint32_t>(p);
    h.type = get<std::uint32_t>(p);
    h.payloadLen = get<std::uint32_t>(p);
    return h;
}

/** Write one frame to @p fd (blocking). @return false on transport
 * failure. */
bool sendFrame(int fd, std::uint32_t magic, std::uint32_t type,
               const void *payload, std::size_t payload_len);

/**
 * Read one frame from @p fd (blocking).
 *
 * @param magic        Expected protocol magic; a mismatch fails.
 * @param max_payload  Reject frames claiming more than this (a
 *                     corrupt length must not drive a huge alloc).
 * @param type_out     The frame's message type.
 * @param payload_out  The frame's payload bytes.
 * @return false on EOF, transport error, bad magic, or oversize.
 */
bool recvFrame(int fd, std::uint32_t magic, std::uint32_t max_payload,
               std::uint32_t &type_out, std::string &payload_out);

/**
 * Reassembly buffer for non-blocking read loops: bytes are appended
 * as they arrive, parsers consume from the front, and reclaim()
 * compacts once parsing can make no further progress. Consumed bytes
 * are skipped by cursor, so per-frame parsing never memmoves.
 */
class RecvBuffer
{
  public:
    void
    append(const std::uint8_t *p, std::size_t n)
    {
        buf_.insert(buf_.end(), p, p + n);
    }

    /** Unconsumed byte count. */
    std::size_t avail() const { return buf_.size() - off_; }

    /** Cursor to the first unconsumed byte. */
    const std::uint8_t *data() const { return buf_.data() + off_; }

    /** Advance the cursor past @p n parsed bytes. */
    void consume(std::size_t n) { off_ += n; }

    /** Drop consumed bytes; what remains is an incomplete frame. */
    void
    reclaim()
    {
        if (off_ == 0)
            return;
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(off_));
        off_ = 0;
    }

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t off_ = 0;
};

} // namespace fa3c::net

#endif // FA3C_NET_FRAME_HH
