#include "nn/a3c_network.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace fa3c::nn {

NetConfig
NetConfig::atari(int num_actions)
{
    NetConfig cfg;
    cfg.numActions = num_actions;
    return cfg;
}

NetConfig
NetConfig::tiny(int num_actions)
{
    NetConfig cfg;
    // 21 divides the 84x84 game frame evenly (4x average pooling).
    cfg.inChannels = 4;
    cfg.inHeight = 21;
    cfg.inWidth = 21;
    cfg.conv1Filters = 8;
    cfg.conv1Kernel = 4;
    cfg.conv1Stride = 2;
    cfg.conv2Filters = 16;
    cfg.conv2Kernel = 3;
    cfg.conv2Stride = 1;
    cfg.fcSize = 64;
    cfg.numActions = num_actions;
    cfg.fc4HardwareLanes = 16;
    return cfg;
}

A3cNetwork::A3cNetwork(const NetConfig &cfg)
    : cfg_(cfg),
      conv1_{cfg.inChannels, cfg.inHeight, cfg.inWidth, cfg.conv1Filters,
             cfg.conv1Kernel, cfg.conv1Stride},
      conv2_{cfg.conv1Filters, conv1_.outHeight(), conv1_.outWidth(),
             cfg.conv2Filters, cfg.conv2Kernel, cfg.conv2Stride},
      fc3_{cfg.conv2Filters * conv2_.outHeight() * conv2_.outWidth(),
           cfg.fcSize},
      fc4_{cfg.fcSize, cfg.numActions + 1}
{
    FA3C_ASSERT(conv1_.outHeight() > 0 && conv2_.outHeight() > 0,
                "network config produces empty feature maps");
}

std::size_t
A3cNetwork::paramCount() const
{
    return conv1_.weightCount() + conv1_.biasCount() +
           conv2_.weightCount() + conv2_.biasCount() + fc3_.weightCount() +
           fc3_.biasCount() + fc4_.weightCount() + fc4_.biasCount();
}

ParamSet
A3cNetwork::makeParams() const
{
    return ParamSet({
        {"conv1.w", conv1_.weightCount()},
        {"conv1.b", conv1_.biasCount()},
        {"conv2.w", conv2_.weightCount()},
        {"conv2.b", conv2_.biasCount()},
        {"fc3.w", fc3_.weightCount()},
        {"fc3.b", fc3_.biasCount()},
        {"fc4.w", fc4_.weightCount()},
        {"fc4.b", fc4_.biasCount()},
    });
}

void
A3cNetwork::initParams(ParamSet &params, sim::Rng &rng) const
{
    // Fan-in-scaled uniform initialization, the same scheme as the
    // open-source A3C implementation the paper benchmarks against.
    auto init = [&rng](std::span<float> w, int fan_in) {
        const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
        for (float &v : w)
            v = -bound + 2.0f * bound * rng.uniformF();
    };
    const int conv1_fan =
        conv1_.inChannels * conv1_.kernel * conv1_.kernel;
    const int conv2_fan =
        conv2_.inChannels * conv2_.kernel * conv2_.kernel;
    init(params.view("conv1.w"), conv1_fan);
    init(params.view("conv1.b"), conv1_fan);
    init(params.view("conv2.w"), conv2_fan);
    init(params.view("conv2.b"), conv2_fan);
    init(params.view("fc3.w"), fc3_.inFeatures);
    init(params.view("fc3.b"), fc3_.inFeatures);
    init(params.view("fc4.w"), fc4_.inFeatures);
    init(params.view("fc4.b"), fc4_.inFeatures);
}

A3cNetwork::Activations
A3cNetwork::makeActivations() const
{
    Activations act;
    act.input = Tensor(
        tensor::Shape({cfg_.inChannels, cfg_.inHeight, cfg_.inWidth}));
    act.conv1Pre = Tensor(tensor::Shape(
        {conv1_.outChannels, conv1_.outHeight(), conv1_.outWidth()}));
    act.conv1Act = Tensor(act.conv1Pre.shape());
    act.conv2Pre = Tensor(tensor::Shape(
        {conv2_.outChannels, conv2_.outHeight(), conv2_.outWidth()}));
    act.conv2Act = Tensor(act.conv2Pre.shape());
    act.conv2Flat = Tensor(tensor::Shape({fc3_.inFeatures}));
    act.fc3Pre = Tensor(tensor::Shape({fc3_.outFeatures}));
    act.fc3Act = Tensor(tensor::Shape({fc3_.outFeatures}));
    act.out = Tensor(tensor::Shape({fc4_.outFeatures}));
    return act;
}

void
A3cNetwork::forward(const ParamSet &params, const Tensor &obs,
                    Activations &act) const
{
    act.input = obs;
    convForward(conv1_, act.input, params.view("conv1.w"),
                params.view("conv1.b"), act.conv1Pre);
    reluForward(act.conv1Pre, act.conv1Act);
    convForward(conv2_, act.conv1Act, params.view("conv2.w"),
                params.view("conv2.b"), act.conv2Pre);
    reluForward(act.conv2Pre, act.conv2Act);
    std::copy(act.conv2Act.data().begin(), act.conv2Act.data().end(),
              act.conv2Flat.data().begin());
    fcForward(fc3_, act.conv2Flat, params.view("fc3.w"),
              params.view("fc3.b"), act.fc3Pre);
    reluForward(act.fc3Pre, act.fc3Act);
    fcForward(fc4_, act.fc3Act, params.view("fc4.w"),
              params.view("fc4.b"), act.out);
}

void
A3cNetwork::backward(const ParamSet &params, const Activations &act,
                     const Tensor &g_out, ParamSet &grads) const
{
    FA3C_ASSERT(g_out.numel() ==
                    static_cast<std::size_t>(fc4_.outFeatures),
                "backward g_out size");

    // FC4: GC then BW.
    Tensor g_fc3_act(tensor::Shape({fc3_.outFeatures}));
    fcGradient(fc4_, act.fc3Act, g_out, grads.view("fc4.w"),
               grads.view("fc4.b"));
    fcBackward(fc4_, g_out, params.view("fc4.w"), g_fc3_act);

    // ReLU before FC4.
    Tensor g_fc3_pre(tensor::Shape({fc3_.outFeatures}));
    reluBackward(act.fc3Pre, g_fc3_act, g_fc3_pre);

    // FC3.
    Tensor g_conv2_flat(tensor::Shape({fc3_.inFeatures}));
    fcGradient(fc3_, act.conv2Flat, g_fc3_pre, grads.view("fc3.w"),
               grads.view("fc3.b"));
    fcBackward(fc3_, g_fc3_pre, params.view("fc3.w"), g_conv2_flat);

    // ReLU before FC3 (applied on the conv2 feature map).
    Tensor g_conv2_act(act.conv2Pre.shape());
    std::copy(g_conv2_flat.data().begin(), g_conv2_flat.data().end(),
              g_conv2_act.data().begin());
    Tensor g_conv2_pre(act.conv2Pre.shape());
    reluBackward(act.conv2Pre, g_conv2_act, g_conv2_pre);

    // Conv2.
    Tensor g_conv1_act(act.conv1Pre.shape());
    convGradient(conv2_, act.conv1Act, g_conv2_pre, grads.view("conv2.w"),
                 grads.view("conv2.b"));
    convBackward(conv2_, g_conv2_pre, params.view("conv2.w"),
                 g_conv1_act);

    // ReLU before Conv2.
    Tensor g_conv1_pre(act.conv1Pre.shape());
    reluBackward(act.conv1Pre, g_conv1_act, g_conv1_pre);

    // Conv1: gradient only; BW into the game screen is not needed.
    convGradient(conv1_, act.input, g_conv1_pre, grads.view("conv1.w"),
                 grads.view("conv1.b"));
}

std::span<const float>
A3cNetwork::policyLogits(const Activations &act) const
{
    return act.out.data().subspan(
        0, static_cast<std::size_t>(cfg_.numActions));
}

float
A3cNetwork::value(const Activations &act) const
{
    return act.out.data()[static_cast<std::size_t>(cfg_.numActions)];
}

std::vector<A3cNetwork::LayerInfo>
A3cNetwork::layerTable() const
{
    const std::size_t input_features =
        static_cast<std::size_t>(cfg_.inChannels) *
        static_cast<std::size_t>(cfg_.inHeight) *
        static_cast<std::size_t>(cfg_.inWidth);
    const std::size_t conv1_out = static_cast<std::size_t>(
        conv1_.outChannels * conv1_.outHeight() * conv1_.outWidth());
    const std::size_t conv2_out = static_cast<std::size_t>(
        conv2_.outChannels * conv2_.outHeight() * conv2_.outWidth());
    return {
        {"Input", 0, input_features},
        {"Convolution (Conv1)", conv1_.weightCount() + conv1_.biasCount(),
         conv1_out},
        {"ReLU activation", 0, conv1_out},
        {"Convolution (Conv2)", conv2_.weightCount() + conv2_.biasCount(),
         conv2_out},
        {"ReLU activation", 0, conv2_out},
        {"Fully-connected (FC3)", fc3_.weightCount() + fc3_.biasCount(),
         static_cast<std::size_t>(fc3_.outFeatures)},
        {"ReLU activation", 0,
         static_cast<std::size_t>(fc3_.outFeatures)},
        // Table 1 reports the hardware-padded FC4 (32 output lanes).
        {"Fully-connected (FC4)",
         static_cast<std::size_t>(fc4_.inFeatures) *
                 static_cast<std::size_t>(cfg_.fc4HardwareLanes) +
             static_cast<std::size_t>(cfg_.fc4HardwareLanes),
         static_cast<std::size_t>(cfg_.fc4HardwareLanes)},
        {"Softmax (action) / Linear (value)", 0,
         static_cast<std::size_t>(outSize())},
    };
}

} // namespace fa3c::nn
