/**
 * @file
 * The A3C network from Table 1 of the paper:
 *
 *     input [4 x 84 x 84]
 *     Conv1 16 filters 8x8 stride 4  -> ReLU
 *     Conv2 32 filters 4x4 stride 2  -> ReLU
 *     FC3   2592 -> 256              -> ReLU
 *     FC4   256  -> (|A| + 1)
 *
 * The last layer carries the |A| action logits (softmax is computed on
 * the host, as in FA3C) and one linear value output. In hardware the
 * FC4 output is padded to 32 lanes, which is the figure Table 1
 * reports.
 */

#ifndef FA3C_NN_A3C_NETWORK_HH
#define FA3C_NN_A3C_NETWORK_HH

#include <span>
#include <string>
#include <vector>

#include "nn/layers.hh"
#include "nn/params.hh"
#include "sim/rng.hh"
#include "tensor/tensor.hh"

namespace fa3c::nn {

/** Structural configuration of the A3C network. */
struct NetConfig
{
    int inChannels = 4;   ///< stacked frames
    int inHeight = 84;
    int inWidth = 84;
    int conv1Filters = 16;
    int conv1Kernel = 8;
    int conv1Stride = 4;
    int conv2Filters = 32;
    int conv2Kernel = 4;
    int conv2Stride = 2;
    int fcSize = 256;
    int numActions = 4;
    /** FC4 output width in hardware (Table 1 pads to 32 lanes). */
    int fc4HardwareLanes = 32;

    /** The exact configuration of the paper (Table 1). */
    static NetConfig atari(int num_actions);

    /**
     * A scaled-down network for fast tests and examples:
     * 4x21x21 input (84/4 pooled), 8/16 filters, 64-wide FC.
     */
    static NetConfig tiny(int num_actions);
};

/**
 * The reference A3C network: owns the layer geometry, builds parameter
 * sets, and runs FW / BW / GC using the golden layer implementations.
 *
 * The network itself is stateless; parameters and activations are
 * passed explicitly so one network object can serve many agents.
 */
class A3cNetwork
{
  public:
    explicit A3cNetwork(const NetConfig &cfg);

    const NetConfig &config() const { return cfg_; }
    const ConvSpec &conv1() const { return conv1_; }
    const ConvSpec &conv2() const { return conv2_; }
    const FcSpec &fc3() const { return fc3_; }
    const FcSpec &fc4() const { return fc4_; }

    /** Total trainable parameters. */
    std::size_t paramCount() const;

    /** Output width of FC4: numActions + 1 (value head). */
    int outSize() const { return cfg_.numActions + 1; }

    /** A zeroed parameter set with this network's layout. */
    ParamSet makeParams() const;

    /** Initialize with fan-in-scaled uniform weights, zero biases. */
    void initParams(ParamSet &params, sim::Rng &rng) const;

    /**
     * All intermediate activations of one forward pass.
     *
     * FA3C stores these feature maps in off-chip DRAM between the
     * inference task and the following training task; the cache is the
     * software analogue.
     */
    struct Activations
    {
        Tensor input;     ///< [C, H, W]
        Tensor conv1Pre;  ///< pre-ReLU conv1 output
        Tensor conv1Act;  ///< post-ReLU
        Tensor conv2Pre;
        Tensor conv2Act;
        Tensor conv2Flat; ///< conv2Act flattened for FC3
        Tensor fc3Pre;
        Tensor fc3Act;
        Tensor out;       ///< [numActions + 1]
    };

    /** Allocate an activation cache with the right shapes. */
    Activations makeActivations() const;

    /**
     * Forward propagation (the inference task).
     *
     * @param params Parameters to use (an agent's local theta).
     * @param obs    Input observation [C, H, W].
     * @param act    Output activations (overwritten).
     */
    void forward(const ParamSet &params, const Tensor &obs,
                 Activations &act) const;

    /**
     * Backward propagation + gradient computation (the training task).
     *
     * @param params Parameters used by the FW pass.
     * @param act    Activations cached by forward().
     * @param g_out  Gradient of the objective w.r.t. the FC4 outputs
     *               (the "delta objective" the host sends to FA3C).
     * @param grads  Parameter gradients, accumulated (not zeroed).
     *
     * Note: backward propagation into the network input is skipped
     * (the input is the game screen; no earlier layer needs it).
     */
    void backward(const ParamSet &params, const Activations &act,
                  const Tensor &g_out, ParamSet &grads) const;

    /** The action-logit slice of the FC4 output. */
    std::span<const float> policyLogits(const Activations &act) const;

    /** The value-head output. */
    float value(const Activations &act) const;

    /** One row of Table 1. */
    struct LayerInfo
    {
        std::string name;
        std::size_t paramCount;   ///< weights + biases ("-" when 0)
        std::size_t outputCount;  ///< output feature count
    };

    /** The Table 1 rows for this configuration. */
    std::vector<LayerInfo> layerTable() const;

  private:
    NetConfig cfg_;
    ConvSpec conv1_;
    ConvSpec conv2_;
    FcSpec fc3_;
    FcSpec fc4_;
};

} // namespace fa3c::nn

#endif // FA3C_NN_A3C_NETWORK_HH
