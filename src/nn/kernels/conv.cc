#include "nn/kernels/conv.hh"

#include <algorithm>
#include <cstring>

#include "nn/kernels/gemm.hh"
#include "obs/profile.hh"
#include "sim/logging.hh"

namespace fa3c::nn::kernels {

void
convForwardFast(const ConvSpec &spec, const float *in,
                std::span<const float> w, std::span<const float> b,
                float *out, std::span<float> scratch)
{
    FA3C_PROF_SCOPE("kernels.conv_fw");
    FA3C_ASSERT(w.size() == spec.weightCount(), "convForwardFast w");
    FA3C_ASSERT(b.size() == spec.biasCount(), "convForwardFast b");
    FA3C_ASSERT(scratch.size() >= colSize(spec),
                "convForwardFast scratch");
    const int n = static_cast<int>(patchCount(spec));
    const int k = static_cast<int>(patchSize(spec));

    im2col(spec, in, scratch.data());
    // Bias broadcast, then out += W * col.
    for (int o = 0; o < spec.outChannels; ++o)
        std::fill_n(out + static_cast<std::size_t>(o) *
                              static_cast<std::size_t>(n),
                    static_cast<std::size_t>(n),
                    b[static_cast<std::size_t>(o)]);
    gemmAcc(spec.outChannels, n, k, w.data(), k, scratch.data(), n, out,
            n);
}

void
convBackwardFast(const ConvSpec &spec, const float *g_out,
                 std::span<const float> wT, float *in_grad,
                 std::span<float> scratch)
{
    FA3C_PROF_SCOPE("kernels.conv_bw");
    FA3C_ASSERT(wT.size() == spec.weightCount(), "convBackwardFast wT");
    FA3C_ASSERT(scratch.size() >= colSize(spec),
                "convBackwardFast scratch");
    const int n = static_cast<int>(patchCount(spec));
    const int k = static_cast<int>(patchSize(spec));

    // colGrad[I*K*K][OH*OW] = wT * g_out, then scatter-add.
    std::fill_n(scratch.data(), colSize(spec), 0.0f);
    gemmAcc(k, n, spec.outChannels, wT.data(), spec.outChannels,
            g_out, n, scratch.data(), n);
    std::memset(in_grad, 0,
                static_cast<std::size_t>(spec.inChannels) *
                    static_cast<std::size_t>(spec.inHeight) *
                    static_cast<std::size_t>(spec.inWidth) *
                    sizeof(float));
    col2imAcc(spec, scratch.data(), in_grad);
}

void
convGradientFast(const ConvSpec &spec, const float *in,
                 const float *g_out, std::span<float> g_w,
                 std::span<float> g_b, std::span<float> scratch)
{
    FA3C_PROF_SCOPE("kernels.conv_gc");
    FA3C_ASSERT(g_w.size() == spec.weightCount(), "convGradientFast g_w");
    FA3C_ASSERT(g_b.size() == spec.biasCount(), "convGradientFast g_b");
    FA3C_ASSERT(scratch.size() >= colSize(spec),
                "convGradientFast scratch");
    const int n = static_cast<int>(patchCount(spec));
    const int k = static_cast<int>(patchSize(spec));

    for (int o = 0; o < spec.outChannels; ++o) {
        const float *row = g_out + static_cast<std::size_t>(o) *
                                       static_cast<std::size_t>(n);
        float acc = 0.0f;
        for (int j = 0; j < n; ++j)
            acc += row[j];
        g_b[static_cast<std::size_t>(o)] += acc;
    }
    // g_w += g_out * im2row(in): A = g_out [O][OH*OW],
    // B = patches [OH*OW][I*K*K], C = g_w [O][I*K*K].
    im2row(spec, in, scratch.data());
    gemmAcc(spec.outChannels, k, n, g_out, n, scratch.data(), k,
            g_w.data(), k);
}

} // namespace fa3c::nn::kernels
