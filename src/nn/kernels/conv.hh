/**
 * @file
 * Fast convolution kernels: blocked im2col/GEMM formulations of the
 * three computation types (FW, BW, GC) the golden model in
 * nn/layers.cc implements with direct loops.
 *
 * Weight layouts:
 *  - forward and gradient use the canonical [O][I*K*K] layout (the
 *    ParamSet "convN.w" buffer, viewed as a GEMM A/C matrix);
 *  - backward needs the transpose [I*K*K][O]; callers stage it once
 *    per parameter sync with kernels::transpose (FastCpuBackend does
 *    this in onParamSync).
 *
 * All kernels take a caller-provided scratch buffer of colSize(spec)
 * floats so per-call allocation never lands on the hot path. Results
 * match the golden model up to floating-point reassociation (the
 * parity tests bound the ULP error).
 */

#ifndef FA3C_NN_KERNELS_CONV_HH
#define FA3C_NN_KERNELS_CONV_HH

#include <span>

#include "nn/kernels/im2col.hh"
#include "nn/layers.hh"

namespace fa3c::nn::kernels {

/**
 * Forward: out[O][OH*OW] = w[O][I*K*K] * im2col(in) + b.
 *
 * @param scratch At least colSize(spec) floats.
 */
void convForwardFast(const ConvSpec &spec, const float *in,
                     std::span<const float> w, std::span<const float> b,
                     float *out, std::span<float> scratch);

/**
 * Backward: in_grad = col2im(wT * g_out); in_grad is zeroed first.
 *
 * @param wT      Transposed weights [I*K*K][O] (staged by the caller).
 * @param scratch At least colSize(spec) floats.
 */
void convBackwardFast(const ConvSpec &spec, const float *g_out,
                      std::span<const float> wT, float *in_grad,
                      std::span<float> scratch);

/**
 * Gradient: g_w[O][I*K*K] += g_out[O][OH*OW] * im2row(in);
 * g_b[o] += sum of g_out row o. Accumulates (callers zero per batch).
 *
 * @param scratch At least colSize(spec) floats.
 */
void convGradientFast(const ConvSpec &spec, const float *in,
                      const float *g_out, std::span<float> g_w,
                      std::span<float> g_b, std::span<float> scratch);

} // namespace fa3c::nn::kernels

#endif // FA3C_NN_KERNELS_CONV_HH
