#include "nn/kernels/dispatch.hh"

#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"

namespace fa3c::nn::kernels {

namespace {

#if defined(__x86_64__) || defined(__i386__)
bool
cpuHasAvx2Set()
{
    // f16c covers the fp16 panel loads; every CPU with AVX2 in the
    // wild has it, but the table is only safe if both are present.
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("f16c");
}

bool
cpuHasAvx512Set()
{
    // The full feature set the AVX-512 TU is compiled for. VNNI is
    // part of it (the int8 GEMM emits vpdpbusd), so first-generation
    // AVX-512 parts without VNNI take the AVX2 table instead.
    return cpuHasAvx2Set() && __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512dq") &&
           __builtin_cpu_supports("avx512vl") &&
           __builtin_cpu_supports("avx512vnni");
}
#endif

#if defined(__x86_64__) || defined(__i386__)
constexpr bool kCpuidChecked = true;
#else
constexpr bool kCpuidChecked = false;
bool
cpuHasAvx2Set()
{
    return false;
}
bool
cpuHasAvx512Set()
{
    return false;
}
#endif

const KernelOps *
resolve()
{
    const KernelOps *generic = genericOps();
    const KernelOps *avx2 = avx2Ops();
    const KernelOps *avx512 = avx512Ops();
    if (const char *env = std::getenv("FA3C_KERNELS_ISA")) {
        // The override narrows CPUID selection (forcing a lower tier
        // for parity tests); it never widens it. Honoring a request
        // for a tier the CPU lacks would trade the "runtime dispatch
        // never faults" guarantee for a SIGILL at the first kernel
        // call, so unsupported requests degrade with a warning.
        if (std::strcmp(env, "generic") == 0)
            return generic;
        if (std::strcmp(env, "avx2") == 0) {
            if (avx2 == nullptr) {
                FA3C_WARN("FA3C_KERNELS_ISA=avx2 but this build has "
                          "no AVX2 kernel TU; using generic");
                return generic;
            }
            if (!cpuHasAvx2Set()) {
                FA3C_WARN("FA3C_KERNELS_ISA=avx2 but this CPU lacks "
                          "AVX2/F16C; using generic");
                return generic;
            }
            return avx2;
        }
        if (std::strcmp(env, "avx512") == 0) {
            if (avx512 == nullptr) {
                FA3C_WARN("FA3C_KERNELS_ISA=avx512 but this build "
                          "has no AVX-512 kernel TU; using CPUID "
                          "selection");
            } else if (!cpuHasAvx512Set()) {
                FA3C_WARN("FA3C_KERNELS_ISA=avx512 but this CPU "
                          "lacks the AVX-512F/BW/DQ/VL/VNNI set; "
                          "using CPUID selection");
            } else {
                return avx512;
            }
        } else {
            FA3C_WARN("unknown FA3C_KERNELS_ISA '", env,
                      "'; falling back to CPUID selection");
        }
    }
    if (kCpuidChecked) {
        if (avx512 != nullptr && cpuHasAvx512Set())
            return avx512;
        if (avx2 != nullptr && cpuHasAvx2Set())
            return avx2;
    }
    return generic;
}

} // namespace

const KernelOps &
ops()
{
    static const KernelOps *table = resolve();
    return *table;
}

const char *
isaName()
{
    return ops().name;
}

} // namespace fa3c::nn::kernels
