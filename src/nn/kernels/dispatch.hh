/**
 * @file
 * Runtime ISA dispatch for the fast CPU kernels.
 *
 * The kernel bodies in kernel_impl.inl are compiled three times:
 * with the portable baseline flags (kernels_generic.cc), with -mavx2
 * -mf16c (kernels_avx2.cc), and with the AVX-512 F/BW/DQ/VL/VNNI set
 * (kernels_avx512.cc). ops() picks the widest table the running CPU
 * supports, checked once via CPUID, so a single binary runs
 * everywhere — replacing the old -march=native build flag that could
 * SIGILL release binaries on older hosts.
 *
 * Determinism contract: for every table entry all implementations
 * produce bit-identical results. The fp32 kernels share one
 * accumulation order (increasing k per C element, mul+add kept
 * separate by -ffp-contract=off); tiles that widen with the ISA keep
 * one C element per lane for the whole k loop, and kernels whose
 * result depends on the lane count (the fcDotRows lane sum) keep a
 * fixed 8-lane structure on every tier. The int8 kernels are exact
 * integer arithmetic and the fp16 loads are exact IEEE half->float
 * conversions. Switching ISA — or overriding it with
 * FA3C_KERNELS_ISA=generic|avx2|avx512 — never changes results, only
 * speed.
 */

#ifndef FA3C_NN_KERNELS_DISPATCH_HH
#define FA3C_NN_KERNELS_DISPATCH_HH

#include <cstdint>

namespace fa3c::nn::kernels {

/**
 * Function-pointer table of the ISA-specialized kernel bodies. All
 * semantics (layouts, accumulation order) are documented on the
 * public wrappers in gemm.hh / fc.hh / quant.hh.
 */
struct KernelOps {
    const char *name; ///< "generic" / "avx2" / "avx512", for logs
                      ///< and tests.

    /** C[m x n] += A[m x k] * B[k x n], row-major (see gemm.hh). */
    void (*gemmAcc)(int m, int n, int k, const float *a, int lda,
                    const float *b, int ldb, float *c, int ldc);
    /** C += A * B with B packed by gemmPackPanels (see gemm.hh). */
    void (*gemmAccPanels)(int m, int n, int k, const float *a, int lda,
                          const float *panels, float *c, int ldc);
    /**
     * Small-N FC forward: y[s][o] = bias[o] + dot(x row s, w row o)
     * over the canonical w[O][I] rows — no transpose or panel staging,
     * which is what makes tiny output layers (fc4) profitable.
     */
    void (*fcDotRows)(int batch, int outF, int inF, const float *x,
                      int ldx, const float *w, int ldw,
                      const float *bias, float *y, int ldy);
    /**
     * Int8 GEMM: C[m x n] += A[m x k] * B, int32 accumulate, with B
     * packed by qgemmPackPanels (quad-interleaved 16-column strips,
     * see quant.hh). A rows are unsigned activation bytes in
     * [0, 127] (quantizeRowU), zero-padded to qrowStride(k).
     */
    void (*qgemmAccPanels)(int m, int n, int k, const std::int8_t *a,
                           int lda, const std::int8_t *panels,
                           std::int32_t *c, int ldc);
    /** Plain int8 dot product with int32 accumulate (small-N path). */
    std::int32_t (*qdot)(int k, const std::int8_t *a,
                         const std::int8_t *b);
    /**
     * Fp16-storage GEMM: C[m x n] += A[m x k] * half2float(B), with B
     * packed by halfPackPanels. Same fp32 accumulation order as
     * gemmAccPanels; the half->float conversion is exact.
     */
    void (*hgemmAccPanels)(int m, int n, int k, const float *a,
                           int lda, const std::uint16_t *panels,
                           float *c, int ldc);
    /**
     * q[i] = clamp(rne(x[i] * inv), -127, 127). Round-to-nearest-even
     * under the default FP environment on every implementation.
     */
    void (*quantizeRow)(int n, const float *x, float inv,
                        std::int8_t *q);
    /**
     * q[i] = clamp(rne(x[i] * inv), 0, 127): the activation
     * (unsigned) variant of quantizeRow, same rounding.
     */
    void (*quantizeRowU)(int n, const float *x, float inv,
                         std::int8_t *q);
};

/** The table for this process, resolved once on first use. */
const KernelOps &ops();

/** Name of the resolved table ("generic" / "avx2" / "avx512"). */
const char *isaName();

// Per-TU table accessors (dispatch.cc internals, exposed for tests).
const KernelOps *genericOps();
/** Null when the toolchain could not build the AVX2 TU. */
const KernelOps *avx2Ops();
/** Null when the toolchain could not build the AVX-512 TU. */
const KernelOps *avx512Ops();

} // namespace fa3c::nn::kernels

#endif // FA3C_NN_KERNELS_DISPATCH_HH
