#include "nn/kernels/fc.hh"

#include <algorithm>
#include <cstring>

#include "nn/kernels/dispatch.hh"
#include "nn/kernels/gemm.hh"
#include "nn/kernels/threadpool.hh"
#include "obs/profile.hh"
#include "sim/logging.hh"

namespace fa3c::nn::kernels {

namespace {

// Multiply-add count below which the fork-join split costs more than
// it saves; wide-net batched layers clear it, per-agent GEMVs do not.
constexpr long long kMtFlopThreshold = 1LL << 24;

} // namespace

void
fcForwardFast(const FcSpec &spec, const float *in,
              std::span<const float> wT, std::span<const float> b,
              float *out)
{
    fcForwardFastBatch(spec, 1, in, wT, b, out);
}

void
fcForwardFastBatch(const FcSpec &spec, int batch, const float *in,
                   std::span<const float> wT, std::span<const float> b,
                   float *out)
{
    FA3C_PROF_SCOPE("kernels.fc_fw");
    FA3C_ASSERT(wT.size() == spec.weightCount(), "fcForwardFast wT");
    FA3C_ASSERT(b.size() == spec.biasCount(), "fcForwardFast b");
    const std::size_t o = static_cast<std::size_t>(spec.outFeatures);
    for (int s = 0; s < batch; ++s)
        std::memcpy(out + static_cast<std::size_t>(s) * o, b.data(),
                    o * sizeof(float));
    gemmAcc(batch, spec.outFeatures, spec.inFeatures, in,
            spec.inFeatures, wT.data(), spec.outFeatures, out,
            spec.outFeatures);
}

void
fcForwardFastBatchPanels(const FcSpec &spec, int batch, const float *in,
                         std::span<const float> wPanels,
                         std::span<const float> b, float *out)
{
    FA3C_PROF_SCOPE("kernels.fc_fw_panels");
    FA3C_ASSERT(wPanels.size() ==
                    gemmPanelSize(spec.outFeatures, spec.inFeatures),
                "fcForwardFastBatchPanels wPanels");
    FA3C_ASSERT(b.size() == spec.biasCount(),
                "fcForwardFastBatchPanels b");
    const std::size_t o = static_cast<std::size_t>(spec.outFeatures);
    for (int s = 0; s < batch; ++s)
        std::memcpy(out + static_cast<std::size_t>(s) * o, b.data(),
                    o * sizeof(float));
    const long long work = static_cast<long long>(batch) *
                           spec.outFeatures * spec.inFeatures;
    const int strips =
        (spec.outFeatures + kGemmPanelWidth - 1) / kGemmPanelWidth;
    const int nt = kernelThreads();
    if (nt > 1 && batch >= 4 && strips >= 2 &&
        work >= kMtFlopThreshold) {
        // Split by column strips: each output element is still
        // computed by exactly one task in the same order, so the
        // result is bit-identical to the single-thread call.
        const int tasks = std::min(nt, strips);
        const std::size_t panelFloats =
            static_cast<std::size_t>(spec.inFeatures) * kGemmPanelWidth;
        parallelFor(tasks, [&](int t) {
            const int s0 = strips * t / tasks;
            const int s1 = strips * (t + 1) / tasks;
            const int j0 = s0 * kGemmPanelWidth;
            const int j1 =
                std::min(s1 * kGemmPanelWidth, spec.outFeatures);
            gemmAccPanels(batch, j1 - j0, spec.inFeatures, in,
                          spec.inFeatures,
                          wPanels.data() + static_cast<std::size_t>(s0) *
                                               panelFloats,
                          out + static_cast<std::size_t>(j0),
                          spec.outFeatures);
        });
        return;
    }
    gemmAccPanels(batch, spec.outFeatures, spec.inFeatures, in,
                  spec.inFeatures, wPanels.data(), out,
                  spec.outFeatures);
}

void
fcForwardSmallBatch(const FcSpec &spec, int batch, const float *in,
                    std::span<const float> w, std::span<const float> b,
                    float *out)
{
    FA3C_PROF_SCOPE("kernels.fc_fw_small");
    FA3C_ASSERT(w.size() == spec.weightCount(), "fcForwardSmallBatch w");
    FA3C_ASSERT(b.size() == spec.biasCount(), "fcForwardSmallBatch b");
    ops().fcDotRows(batch, spec.outFeatures, spec.inFeatures, in,
                    spec.inFeatures, w.data(), spec.inFeatures,
                    b.data(), out, spec.outFeatures);
}

void
fcBackwardFast(const FcSpec &spec, const float *g_out,
               std::span<const float> w, float *g_in)
{
    FA3C_PROF_SCOPE("kernels.fc_bw");
    FA3C_ASSERT(w.size() == spec.weightCount(), "fcBackwardFast w");
    // g_in[1][I] = g_out[1][O] * w[O][I]: the canonical layout is
    // already the right GEMM operand.
    std::fill_n(g_in, static_cast<std::size_t>(spec.inFeatures), 0.0f);
    gemmAcc(1, spec.inFeatures, spec.outFeatures, g_out,
            spec.outFeatures, w.data(), spec.inFeatures, g_in,
            spec.inFeatures);
}

void
fcGradientFast(const FcSpec &spec, const float *in, const float *g_out,
               std::span<float> g_w, std::span<float> g_b)
{
    FA3C_PROF_SCOPE("kernels.fc_gc");
    FA3C_ASSERT(g_w.size() == spec.weightCount(), "fcGradientFast g_w");
    FA3C_ASSERT(g_b.size() == spec.biasCount(), "fcGradientFast g_b");
    float *FA3C_RESTRICT gw = g_w.data();
    const float *FA3C_RESTRICT src = in;
    for (int o = 0; o < spec.outFeatures; ++o) {
        const float g = g_out[static_cast<std::size_t>(o)];
        g_b[static_cast<std::size_t>(o)] += g;
        float *FA3C_RESTRICT row =
            gw + static_cast<std::size_t>(o) *
                     static_cast<std::size_t>(spec.inFeatures);
        for (int i = 0; i < spec.inFeatures; ++i)
            row[i] += g * src[i];
    }
}

} // namespace fa3c::nn::kernels
