/**
 * @file
 * Fast fully-connected kernels.
 *
 * The golden fcForward in nn/layers.cc is a per-row dot product — a
 * reduction the autovectorizer cannot reassociate without
 * -ffast-math. These kernels use the transposed weight layout
 * wT[I][O] so the inner loop becomes an axpy over the output lane
 * (out[:] += in[i] * wT[i][:]), which vectorizes exactly like the
 * GEMM microkernel; in fact forward IS gemmAcc with M = 1, and the
 * batched variant the multi-agent path uses is the same call with
 * M = batch — so single and batched results are bit-identical.
 *
 * Backward and gradient already stream the canonical [O][I] rows
 * contiguously, so they need no staged layout.
 */

#ifndef FA3C_NN_KERNELS_FC_HH
#define FA3C_NN_KERNELS_FC_HH

#include <span>

#include "nn/layers.hh"

namespace fa3c::nn::kernels {

/**
 * Forward: out[O] = W * in + b using the staged transpose
 * wT[I][O].
 */
void fcForwardFast(const FcSpec &spec, const float *in,
                   std::span<const float> wT, std::span<const float> b,
                   float *out);

/**
 * Batched forward: out[batch][O] = in[batch][I] * wT + b per row —
 * one GEMM, so the staged weights are loaded once per k-step for the
 * whole batch instead of once per agent.
 */
void fcForwardFastBatch(const FcSpec &spec, int batch, const float *in,
                        std::span<const float> wT,
                        std::span<const float> b, float *out);

/**
 * Batched forward over weights pre-packed with gemmPackPanels
 * (@p wPanels = panels of wT[I][O], i.e. gemmPanelSize(O, I)
 * floats). The panel layout streams the weight matrix sequentially
 * inside the tiled GEMM, which matters on wide layers where the
 * row-major wT walk would take a TLB miss per k step; serving
 * backends stage the panels once per parameter publish. Bit-identical
 * to fcForwardFastBatch.
 */
void fcForwardFastBatchPanels(const FcSpec &spec, int batch,
                              const float *in,
                              std::span<const float> wPanels,
                              std::span<const float> b, float *out);

/**
 * Small-output forward over the canonical w[O][I] rows: per-row dot
 * products, no transpose or panel staging. Below kGemmPanelWidth
 * outputs the panel path pads every strip to 32 columns (6x wasted
 * weight bandwidth for the 5-wide fc4 head — the cause of its 0.5x
 * regression); the dot form reads exactly the live weights. Batched
 * and single-sample calls use the same per-element order, so they
 * stay bit-identical to each other (golden parity is ULP-bounded
 * like the other fast kernels).
 */
void fcForwardSmallBatch(const FcSpec &spec, int batch, const float *in,
                         std::span<const float> w,
                         std::span<const float> b, float *out);

/** Output width below which fcForwardSmallBatch wins over panels. */
constexpr int kSmallFcMaxOut = 32;

/** Backward: g_in[I] = W^T * g_out using the canonical w[O][I]. */
void fcBackwardFast(const FcSpec &spec, const float *g_out,
                    std::span<const float> w, float *g_in);

/** Gradient: g_w += g_out x in^T; g_b += g_out (accumulates). */
void fcGradientFast(const FcSpec &spec, const float *in,
                    const float *g_out, std::span<float> g_w,
                    std::span<float> g_b);

} // namespace fa3c::nn::kernels

#endif // FA3C_NN_KERNELS_FC_HH
