#include "nn/kernels/gemm.hh"

#include <algorithm>
#include <cstring>

namespace fa3c::nn::kernels {

namespace {

// Vector lane type for the tiled kernels. GCC/Clang lower the
// arithmetic to the widest ISA the TU is compiled for and legalize it
// on older targets, so the same source serves SSE2 through AVX-512.
// aligned(4) makes pointer loads of unaligned rows well-defined.
#if defined(__GNUC__) || defined(__clang__)
#define FA3C_GEMM_TILED 1
typedef float vf __attribute__((vector_size(32), aligned(4)));
constexpr int kVL = 8;                         ///< floats per vf
constexpr int kNV = kGemmPanelWidth / kVL;     ///< vf per column strip

inline vf
loadu(const float *p)
{
    vf v;
    __builtin_memcpy(&v, p, sizeof(v));
    return v;
}

inline void
storeu(float *p, vf v)
{
    __builtin_memcpy(p, &v, sizeof(v));
}

/**
 * MR x kGemmPanelWidth tile of C held in registers across the whole
 * k loop. @p ldpb is the distance between consecutive k rows of the B
 * strip (the matrix row stride, or kGemmPanelWidth for packed
 * panels). Each C element starts from its current value and adds
 * products in increasing k, exactly like the axpy form.
 */
template <int MR>
inline void
tileMxW(int k, const float *FA3C_RESTRICT a, int lda,
        const float *FA3C_RESTRICT b, std::size_t ldpb, float *c,
        int ldc)
{
    vf acc[MR][kNV];
    for (int r = 0; r < MR; ++r)
        for (int v = 0; v < kNV; ++v)
            acc[r][v] = loadu(c + static_cast<std::size_t>(r) *
                                      static_cast<std::size_t>(ldc) +
                              v * kVL);
    for (int p = 0; p < k; ++p) {
        const float *bp = b + static_cast<std::size_t>(p) * ldpb;
        vf bv[kNV];
        for (int v = 0; v < kNV; ++v)
            bv[v] = loadu(bp + v * kVL);
        for (int r = 0; r < MR; ++r) {
            const vf av =
                a[static_cast<std::size_t>(r) *
                      static_cast<std::size_t>(lda) +
                  static_cast<std::size_t>(p)] -
                (vf){}; // broadcast
            for (int v = 0; v < kNV; ++v)
                acc[r][v] += av * bv[v];
        }
    }
    for (int r = 0; r < MR; ++r)
        for (int v = 0; v < kNV; ++v)
            storeu(c + static_cast<std::size_t>(r) *
                           static_cast<std::size_t>(ldc) +
                       v * kVL,
                   acc[r][v]);
}
#endif // FA3C_GEMM_TILED

/** One C row: c[0..n) += sum_p a[p] * b[p][0..n). */
inline void
gemmRow(int n, int k, const float *FA3C_RESTRICT a, const float *b,
        int ldb, float *FA3C_RESTRICT c)
{
    for (int p = 0; p < k; ++p) {
        const float ap = a[p];
        const float *FA3C_RESTRICT bp = b + static_cast<std::size_t>(p) *
                                                static_cast<std::size_t>(ldb);
        for (int j = 0; j < n; ++j)
            c[j] += ap * bp[j];
    }
}

/** Axpy form: B rows streamed contiguously, four C rows per pass. */
void
gemmAxpy(int m, int n, int k, const float *a, int lda, const float *b,
         int ldb, float *c, int ldc)
{
    const std::size_t sa = static_cast<std::size_t>(lda);
    const std::size_t sc = static_cast<std::size_t>(ldc);
    int i = 0;
    // MR=4 register block: each B row loaded once, used by four C rows.
    for (; i + 4 <= m; i += 4) {
        const float *FA3C_RESTRICT a0 = a + static_cast<std::size_t>(i) * sa;
        const float *FA3C_RESTRICT a1 = a0 + sa;
        const float *FA3C_RESTRICT a2 = a1 + sa;
        const float *FA3C_RESTRICT a3 = a2 + sa;
        float *FA3C_RESTRICT c0 = c + static_cast<std::size_t>(i) * sc;
        float *FA3C_RESTRICT c1 = c0 + sc;
        float *FA3C_RESTRICT c2 = c1 + sc;
        float *FA3C_RESTRICT c3 = c2 + sc;
        for (int p = 0; p < k; ++p) {
            const float a0p = a0[p];
            const float a1p = a1[p];
            const float a2p = a2[p];
            const float a3p = a3[p];
            const float *FA3C_RESTRICT bp =
                b + static_cast<std::size_t>(p) *
                        static_cast<std::size_t>(ldb);
            for (int j = 0; j < n; ++j) {
                const float bj = bp[j];
                c0[j] += a0p * bj;
                c1[j] += a1p * bj;
                c2[j] += a2p * bj;
                c3[j] += a3p * bj;
            }
        }
    }
    for (; i < m; ++i)
        gemmRow(n, k, a + static_cast<std::size_t>(i) * sa, b, ldb,
                c + static_cast<std::size_t>(i) * sc);
}

#ifdef FA3C_GEMM_TILED
// Tallest register tile the target can hold without spilling: the
// MR=8 x 32-float tile needs 32 vector accumulators, which only
// AVX-512 targets have; 16-register targets stop at MR=4.
#ifdef __AVX512F__
constexpr int kMRMax = 8;
#else
constexpr int kMRMax = 4;
#endif

template <int MR>
inline void
rowBlock(int n, int k, const float *a, int lda, const float *b,
         int ldb, float *c, int ldc)
{
    int j = 0;
    for (; j + kGemmPanelWidth <= n; j += kGemmPanelWidth)
        tileMxW<MR>(k, a, lda, b + j, static_cast<std::size_t>(ldb),
                    c + j, ldc);
    // Tail columns go through the axpy form, whose contiguous inner
    // loop vectorizes even for a handful of columns; per C element it
    // runs the same increasing-k order as the tiles.
    if (j < n)
        gemmAxpy(MR, n - j, k, a, lda, b + j, ldb, c + j, ldc);
}

void
gemmTiled(int m, int n, int k, const float *a, int lda, const float *b,
          int ldb, float *c, int ldc)
{
    const std::size_t sa = static_cast<std::size_t>(lda);
    const std::size_t sc = static_cast<std::size_t>(ldc);
    int i = 0;
    if constexpr (kMRMax >= 8)
        for (; i + 8 <= m; i += 8)
            rowBlock<8>(n, k, a + static_cast<std::size_t>(i) * sa, lda,
                        b, ldb, c + static_cast<std::size_t>(i) * sc,
                        ldc);
    for (; i + 4 <= m; i += 4)
        rowBlock<4>(n, k, a + static_cast<std::size_t>(i) * sa, lda, b,
                    ldb, c + static_cast<std::size_t>(i) * sc, ldc);
    for (; i + 2 <= m; i += 2)
        rowBlock<2>(n, k, a + static_cast<std::size_t>(i) * sa, lda, b,
                    ldb, c + static_cast<std::size_t>(i) * sc, ldc);
    for (; i < m; ++i)
        rowBlock<1>(n, k, a + static_cast<std::size_t>(i) * sa, lda, b,
                    ldb, c + static_cast<std::size_t>(i) * sc, ldc);
}
#endif // FA3C_GEMM_TILED

} // namespace

void
gemmAcc(int m, int n, int k, const float *a, int lda, const float *b,
        int ldb, float *c, int ldc)
{
#ifdef FA3C_GEMM_TILED
    // Tiled form needs enough C rows to amortize its strided B walk;
    // below that (notably the M = 1 GEMV) the contiguous axpy stream
    // is faster and bandwidth-optimal.
    if (m >= 4 && n >= kGemmPanelWidth) {
        gemmTiled(m, n, k, a, lda, b, ldb, c, ldc);
        return;
    }
#endif
    gemmAxpy(m, n, k, a, lda, b, ldb, c, ldc);
}

std::size_t
gemmPanelSize(int n, int k)
{
    const std::size_t strips =
        (static_cast<std::size_t>(n) + kGemmPanelWidth - 1) /
        kGemmPanelWidth;
    return strips * static_cast<std::size_t>(k) * kGemmPanelWidth;
}

void
gemmPackPanels(int n, int k, const float *b, int ldb, float *panels)
{
    for (int j0 = 0; j0 < n; j0 += kGemmPanelWidth) {
        const int w = std::min(kGemmPanelWidth, n - j0);
        float *panel = panels + static_cast<std::size_t>(j0 /
                                                         kGemmPanelWidth) *
                                    static_cast<std::size_t>(k) *
                                    kGemmPanelWidth;
        for (int p = 0; p < k; ++p) {
            float *dst =
                panel + static_cast<std::size_t>(p) * kGemmPanelWidth;
            const float *src = b + static_cast<std::size_t>(p) *
                                       static_cast<std::size_t>(ldb) +
                               static_cast<std::size_t>(j0);
            std::memcpy(dst, src, static_cast<std::size_t>(w) *
                                      sizeof(float));
            for (int j = w; j < kGemmPanelWidth; ++j)
                dst[j] = 0.0f;
        }
    }
}

void
gemmAccPanels(int m, int n, int k, const float *a, int lda,
              const float *panels, float *c, int ldc)
{
    const std::size_t panelFloats =
        static_cast<std::size_t>(k) * kGemmPanelWidth;
    for (int j0 = 0; j0 < n; j0 += kGemmPanelWidth) {
        const int w = std::min(kGemmPanelWidth, n - j0);
        const float *panel =
            panels +
            static_cast<std::size_t>(j0 / kGemmPanelWidth) * panelFloats;
#ifdef FA3C_GEMM_TILED
        if (w == kGemmPanelWidth) {
            const std::size_t sa = static_cast<std::size_t>(lda);
            const std::size_t sc = static_cast<std::size_t>(ldc);
            float *cj = c + static_cast<std::size_t>(j0);
            int i = 0;
            if constexpr (kMRMax >= 8)
                for (; i + 8 <= m; i += 8)
                    tileMxW<8>(k, a + static_cast<std::size_t>(i) * sa,
                               lda, panel, kGemmPanelWidth,
                               cj + static_cast<std::size_t>(i) * sc,
                               ldc);
            for (; i + 4 <= m; i += 4)
                tileMxW<4>(k, a + static_cast<std::size_t>(i) * sa, lda,
                           panel, kGemmPanelWidth,
                           cj + static_cast<std::size_t>(i) * sc, ldc);
            for (; i + 2 <= m; i += 2)
                tileMxW<2>(k, a + static_cast<std::size_t>(i) * sa, lda,
                           panel, kGemmPanelWidth,
                           cj + static_cast<std::size_t>(i) * sc, ldc);
            for (; i < m; ++i)
                tileMxW<1>(k, a + static_cast<std::size_t>(i) * sa, lda,
                           panel, kGemmPanelWidth,
                           cj + static_cast<std::size_t>(i) * sc, ldc);
            continue;
        }
#endif
        // Tail strip (or no vector extensions): the panel is a dense
        // [k][kGemmPanelWidth] matrix whose first w columns are live.
        gemmAxpy(m, w, k, a, lda, panel, kGemmPanelWidth,
                 c + static_cast<std::size_t>(j0), ldc);
    }
}

void
transpose(const float *src, int rows, int cols, float *dst)
{
    // Block 16x16 so both the read and write streams stay in cache.
    constexpr int kBlock = 16;
    for (int i0 = 0; i0 < rows; i0 += kBlock) {
        const int i1 = i0 + kBlock < rows ? i0 + kBlock : rows;
        for (int j0 = 0; j0 < cols; j0 += kBlock) {
            const int j1 = j0 + kBlock < cols ? j0 + kBlock : cols;
            for (int i = i0; i < i1; ++i)
                for (int j = j0; j < j1; ++j)
                    dst[static_cast<std::size_t>(j) *
                            static_cast<std::size_t>(rows) +
                        static_cast<std::size_t>(i)] =
                        src[static_cast<std::size_t>(i) *
                                static_cast<std::size_t>(cols) +
                            static_cast<std::size_t>(j)];
        }
    }
}

} // namespace fa3c::nn::kernels
