#include "nn/kernels/gemm.hh"

namespace fa3c::nn::kernels {

namespace {

/** One C row: c[0..n) += sum_p a[p] * b[p][0..n). */
inline void
gemmRow(int n, int k, const float *FA3C_RESTRICT a, const float *b,
        int ldb, float *FA3C_RESTRICT c)
{
    for (int p = 0; p < k; ++p) {
        const float ap = a[p];
        const float *FA3C_RESTRICT bp = b + static_cast<std::size_t>(p) *
                                                static_cast<std::size_t>(ldb);
        for (int j = 0; j < n; ++j)
            c[j] += ap * bp[j];
    }
}

} // namespace

void
gemmAcc(int m, int n, int k, const float *a, int lda, const float *b,
        int ldb, float *c, int ldc)
{
    const std::size_t sa = static_cast<std::size_t>(lda);
    const std::size_t sc = static_cast<std::size_t>(ldc);
    int i = 0;
    // MR=4 register block: each B row loaded once, used by four C rows.
    for (; i + 4 <= m; i += 4) {
        const float *FA3C_RESTRICT a0 = a + static_cast<std::size_t>(i) * sa;
        const float *FA3C_RESTRICT a1 = a0 + sa;
        const float *FA3C_RESTRICT a2 = a1 + sa;
        const float *FA3C_RESTRICT a3 = a2 + sa;
        float *FA3C_RESTRICT c0 = c + static_cast<std::size_t>(i) * sc;
        float *FA3C_RESTRICT c1 = c0 + sc;
        float *FA3C_RESTRICT c2 = c1 + sc;
        float *FA3C_RESTRICT c3 = c2 + sc;
        for (int p = 0; p < k; ++p) {
            const float a0p = a0[p];
            const float a1p = a1[p];
            const float a2p = a2[p];
            const float a3p = a3[p];
            const float *FA3C_RESTRICT bp =
                b + static_cast<std::size_t>(p) *
                        static_cast<std::size_t>(ldb);
            for (int j = 0; j < n; ++j) {
                const float bj = bp[j];
                c0[j] += a0p * bj;
                c1[j] += a1p * bj;
                c2[j] += a2p * bj;
                c3[j] += a3p * bj;
            }
        }
    }
    for (; i < m; ++i)
        gemmRow(n, k, a + static_cast<std::size_t>(i) * sa, b, ldb,
                c + static_cast<std::size_t>(i) * sc);
}

void
transpose(const float *src, int rows, int cols, float *dst)
{
    // Block 16x16 so both the read and write streams stay in cache.
    constexpr int kBlock = 16;
    for (int i0 = 0; i0 < rows; i0 += kBlock) {
        const int i1 = i0 + kBlock < rows ? i0 + kBlock : rows;
        for (int j0 = 0; j0 < cols; j0 += kBlock) {
            const int j1 = j0 + kBlock < cols ? j0 + kBlock : cols;
            for (int i = i0; i < i1; ++i)
                for (int j = j0; j < j1; ++j)
                    dst[static_cast<std::size_t>(j) *
                            static_cast<std::size_t>(rows) +
                        static_cast<std::size_t>(i)] =
                        src[static_cast<std::size_t>(i) *
                                static_cast<std::size_t>(cols) +
                            static_cast<std::size_t>(j)];
        }
    }
}

} // namespace fa3c::nn::kernels
