#include "nn/kernels/gemm.hh"

#include <algorithm>
#include <cstring>

#include "nn/kernels/dispatch.hh"

namespace fa3c::nn::kernels {

// The ISA-specialized GEMM bodies (axpy and register-tile forms) live
// in kernel_impl.inl, compiled once per dispatch target; this TU only
// keeps the pure-data-movement helpers and the dispatching wrappers.

void
gemmAcc(int m, int n, int k, const float *a, int lda, const float *b,
        int ldb, float *c, int ldc)
{
    ops().gemmAcc(m, n, k, a, lda, b, ldb, c, ldc);
}

std::size_t
gemmPanelSize(int n, int k)
{
    const std::size_t strips =
        (static_cast<std::size_t>(n) + kGemmPanelWidth - 1) /
        kGemmPanelWidth;
    return strips * static_cast<std::size_t>(k) * kGemmPanelWidth;
}

void
gemmPackPanels(int n, int k, const float *b, int ldb, float *panels)
{
    for (int j0 = 0; j0 < n; j0 += kGemmPanelWidth) {
        const int w = std::min(kGemmPanelWidth, n - j0);
        float *panel = panels + static_cast<std::size_t>(j0 /
                                                         kGemmPanelWidth) *
                                    static_cast<std::size_t>(k) *
                                    kGemmPanelWidth;
        for (int p = 0; p < k; ++p) {
            float *dst =
                panel + static_cast<std::size_t>(p) * kGemmPanelWidth;
            const float *src = b + static_cast<std::size_t>(p) *
                                       static_cast<std::size_t>(ldb) +
                               static_cast<std::size_t>(j0);
            std::memcpy(dst, src, static_cast<std::size_t>(w) *
                                      sizeof(float));
            for (int j = w; j < kGemmPanelWidth; ++j)
                dst[j] = 0.0f;
        }
    }
}

void
gemmAccPanels(int m, int n, int k, const float *a, int lda,
              const float *panels, float *c, int ldc)
{
    ops().gemmAccPanels(m, n, k, a, lda, panels, c, ldc);
}

void
transpose(const float *src, int rows, int cols, float *dst)
{
    // Block 16x16 so both the read and write streams stay in cache.
    constexpr int kBlock = 16;
    for (int i0 = 0; i0 < rows; i0 += kBlock) {
        const int i1 = i0 + kBlock < rows ? i0 + kBlock : rows;
        for (int j0 = 0; j0 < cols; j0 += kBlock) {
            const int j1 = j0 + kBlock < cols ? j0 + kBlock : cols;
            for (int i = i0; i < i1; ++i)
                for (int j = j0; j < j1; ++j)
                    dst[static_cast<std::size_t>(j) *
                            static_cast<std::size_t>(rows) +
                        static_cast<std::size_t>(i)] =
                        src[static_cast<std::size_t>(i) *
                                static_cast<std::size_t>(cols) +
                            static_cast<std::size_t>(j)];
        }
    }
}

} // namespace fa3c::nn::kernels
