/**
 * @file
 * Register-blocked single-precision GEMM microkernels for the fast
 * CPU kernel library.
 *
 * Two inner-kernel forms are used, picked by shape:
 *
 *  - an "axpy" form whose inner loop walks one row of C and one row
 *    of B contiguously (no reduction across lanes), used for short M
 *    (including the M = 1 GEMV that single-request FC inference is):
 *    there the C rows fit in registers-worth of L1 and the kernel is
 *    bound by streaming B, which the contiguous walk does at full
 *    prefetch speed;
 *  - a tiled form that carries an MR x NR tile of C entirely in
 *    vector registers across the whole k loop, used when M >= 4: C is
 *    loaded and stored once instead of being re-streamed every k
 *    step, which is what makes batched inference GEMMs profitable.
 *
 * Accumulation into each C element always runs in increasing-k order
 * regardless of blocking, and products are kept as separate mul+add
 * (the kernel TUs are built with -ffp-contract=off), so results are
 * bit-identical across M and across both forms: single-sample and
 * batched calls see the same per-element FP order and rounding.
 *
 * gemmPackPanels/gemmAccPanels additionally support a pre-packed B
 * layout (column panels of NR contiguous floats per k step) so that a
 * B matrix that is reused across many calls — FC weights in a serving
 * hot loop — is staged once and then streamed sequentially instead of
 * being gathered with a large row stride (a 4 KiB-stride walk costs a
 * TLB miss per k step on wide layers).
 */

#ifndef FA3C_NN_KERNELS_GEMM_HH
#define FA3C_NN_KERNELS_GEMM_HH

#include <cstddef>

#if defined(__GNUC__) || defined(__clang__)
#define FA3C_RESTRICT __restrict__
#else
#define FA3C_RESTRICT
#endif

namespace fa3c::nn::kernels {

/** Column-panel width of the packed-B layout (floats). */
constexpr int kGemmPanelWidth = 32;

/**
 * C[m x n] += A[m x k] * B[k x n], all row-major.
 *
 * @param lda  Row stride of A (>= k).
 * @param ldb  Row stride of B (>= n).
 * @param ldc  Row stride of C (>= n).
 *
 * The caller pre-fills C (zero, or a broadcast bias) — the kernel
 * only ever accumulates.
 */
void gemmAcc(int m, int n, int k, const float *a, int lda,
             const float *b, int ldb, float *c, int ldc);

/** Floats needed by gemmPackPanels for a k x n B matrix. */
std::size_t gemmPanelSize(int n, int k);

/**
 * Pack row-major B[k x n] (row stride @p ldb) into column panels:
 * panel p holds columns [p*W, p*W + W) as [k][W] contiguous floats
 * with W = kGemmPanelWidth; the last panel is zero-padded. Packing is
 * pure data movement, so gemmAccPanels results are bit-identical to
 * gemmAcc on the unpacked B.
 */
void gemmPackPanels(int n, int k, const float *b, int ldb,
                    float *panels);

/**
 * C[m x n] += A[m x k] * B, with B pre-packed by gemmPackPanels.
 * Same accumulation order (increasing k per C element) as gemmAcc.
 */
void gemmAccPanels(int m, int n, int k, const float *a, int lda,
                   const float *panels, float *c, int ldc);

/** dst[cols x rows] = src[rows x cols]^T, both row-major dense. */
void transpose(const float *src, int rows, int cols, float *dst);

} // namespace fa3c::nn::kernels

#endif // FA3C_NN_KERNELS_GEMM_HH
