/**
 * @file
 * Register-blocked single-precision GEMM microkernel for the fast CPU
 * kernel library.
 *
 * The kernel is written in "axpy" form — the inner loop walks one row
 * of C and one row of B contiguously with no reduction across lanes —
 * so the autovectorizer turns it into packed FMA streams without
 * -ffast-math. Four rows of C are carried per pass (an MR=4 register
 * block), so every loaded B element is reused four times from
 * registers.
 *
 * Accumulation into each C element always runs in increasing-k order
 * regardless of blocking, so results are bit-identical across M
 * (single-sample vs batched calls see the same per-element FP order).
 */

#ifndef FA3C_NN_KERNELS_GEMM_HH
#define FA3C_NN_KERNELS_GEMM_HH

#include <cstddef>

#if defined(__GNUC__) || defined(__clang__)
#define FA3C_RESTRICT __restrict__
#else
#define FA3C_RESTRICT
#endif

namespace fa3c::nn::kernels {

/**
 * C[m x n] += A[m x k] * B[k x n], all row-major.
 *
 * @param lda  Row stride of A (>= k).
 * @param ldb  Row stride of B (>= n).
 * @param ldc  Row stride of C (>= n).
 *
 * The caller pre-fills C (zero, or a broadcast bias) — the kernel
 * only ever accumulates.
 */
void gemmAcc(int m, int n, int k, const float *a, int lda,
             const float *b, int ldb, float *c, int ldc);

/** dst[cols x rows] = src[rows x cols]^T, both row-major dense. */
void transpose(const float *src, int rows, int cols, float *dst);

} // namespace fa3c::nn::kernels

#endif // FA3C_NN_KERNELS_GEMM_HH
