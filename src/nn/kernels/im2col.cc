#include "nn/kernels/im2col.hh"

#include <cstring>

#include "nn/kernels/gemm.hh"

namespace fa3c::nn::kernels {

namespace {

inline std::size_t
inRowBase(const ConvSpec &s, int i, int y)
{
    return (static_cast<std::size_t>(i) *
                static_cast<std::size_t>(s.inHeight) +
            static_cast<std::size_t>(y)) *
           static_cast<std::size_t>(s.inWidth);
}

/**
 * dst[0..n) = src[0..n*stride) at the given stride. The strided
 * gather is the whole cost of im2col for stride > 1 convolutions (the
 * autovectorizer won't emit gathers for it), so the common strides of
 * the paper's conv layers get shuffle-vectorized paths: 8 outputs per
 * step from 2 (stride 2) or 4 (stride 4) contiguous vector loads.
 */
inline void
gatherRow(float *FA3C_RESTRICT dst, const float *FA3C_RESTRICT src,
          int n, int stride)
{
#if defined(__GNUC__) && !defined(__clang__) || defined(__clang__)
    typedef float v8 __attribute__((vector_size(32), aligned(4)));
    const auto load = [](const float *p) {
        v8 v;
        __builtin_memcpy(&v, p, sizeof(v));
        return v;
    };
    // Loop bounds use c + 8 < n (not <=) so every vector load stays
    // within the span of gathered elements: the last load of an
    // iteration reads a few floats past src[stride * (c + 7)], which
    // must not cross the end of the tensor on the final row.
    int c = 0;
    if (stride == 2) {
        for (; c + 8 < n; c += 8) {
            const v8 a = load(src + 2 * c);
            const v8 b = load(src + 2 * c + 8);
            const v8 r = __builtin_shufflevector(a, b, 0, 2, 4, 6, 8,
                                                 10, 12, 14);
            __builtin_memcpy(dst + c, &r, sizeof(r));
        }
    } else if (stride == 4) {
        for (; c + 8 < n; c += 8) {
            const v8 a = load(src + 4 * c);
            const v8 b = load(src + 4 * c + 8);
            const v8 d = load(src + 4 * c + 16);
            const v8 e = load(src + 4 * c + 24);
            const v8 lo =
                __builtin_shufflevector(a, b, 0, 4, 8, 12, 0, 0, 0, 0);
            const v8 hi =
                __builtin_shufflevector(d, e, 0, 4, 8, 12, 0, 0, 0, 0);
            const v8 r = __builtin_shufflevector(lo, hi, 0, 1, 2, 3, 8,
                                                 9, 10, 11);
            __builtin_memcpy(dst + c, &r, sizeof(r));
        }
    }
    for (; c < n; ++c)
        dst[c] = src[static_cast<std::size_t>(c) *
                     static_cast<std::size_t>(stride)];
#else
    for (int c = 0; c < n; ++c)
        dst[c] = src[static_cast<std::size_t>(c) *
                     static_cast<std::size_t>(stride)];
#endif
}

} // namespace

void
im2col(const ConvSpec &spec, const float *in, float *col)
{
    const std::size_t ld = patchCount(spec);
    const int oh = spec.outHeight();
    const int ow = spec.outWidth();
    const int stride = spec.stride;
    float *FA3C_RESTRICT out = col;
    for (int i = 0; i < spec.inChannels; ++i) {
        for (int kr = 0; kr < spec.kernel; ++kr) {
            for (int kc = 0; kc < spec.kernel; ++kc) {
                // One filter tap -> one col row of all OH*OW samples.
                for (int r = 0; r < oh; ++r) {
                    const float *FA3C_RESTRICT src =
                        in + inRowBase(spec, i, r * stride + kr) +
                        static_cast<std::size_t>(kc);
                    float *FA3C_RESTRICT dst =
                        out + static_cast<std::size_t>(r) *
                                  static_cast<std::size_t>(ow);
                    if (stride == 1)
                        std::memcpy(dst, src,
                                    static_cast<std::size_t>(ow) *
                                        sizeof(float));
                    else
                        gatherRow(dst, src, ow, stride);
                }
                out += ld;
            }
        }
    }
}

void
im2row(const ConvSpec &spec, const float *in, float *rows)
{
    const int oh = spec.outHeight();
    const int ow = spec.outWidth();
    const int stride = spec.stride;
    const int k = spec.kernel;
    const std::size_t psize = patchSize(spec);
    for (int r = 0; r < oh; ++r) {
        for (int c = 0; c < ow; ++c) {
            float *FA3C_RESTRICT dst =
                rows + (static_cast<std::size_t>(r) *
                            static_cast<std::size_t>(ow) +
                        static_cast<std::size_t>(c)) *
                           psize;
            for (int i = 0; i < spec.inChannels; ++i) {
                for (int kr = 0; kr < k; ++kr) {
                    // K contiguous input pixels per (i, kr).
                    const float *FA3C_RESTRICT src =
                        in + inRowBase(spec, i, r * stride + kr) +
                        static_cast<std::size_t>(c * stride);
                    std::memcpy(dst, src,
                                static_cast<std::size_t>(k) *
                                    sizeof(float));
                    dst += k;
                }
            }
        }
    }
}

void
col2imAcc(const ConvSpec &spec, const float *col, float *in_grad)
{
    const int oh = spec.outHeight();
    const int ow = spec.outWidth();
    const int stride = spec.stride;
    const std::size_t n = patchCount(spec);
    const float *FA3C_RESTRICT src_row = col;
    for (int i = 0; i < spec.inChannels; ++i) {
        for (int kr = 0; kr < spec.kernel; ++kr) {
            for (int kc = 0; kc < spec.kernel; ++kc) {
                for (int r = 0; r < oh; ++r) {
                    float *FA3C_RESTRICT dst =
                        in_grad + inRowBase(spec, i, r * stride + kr) +
                        static_cast<std::size_t>(kc);
                    const float *FA3C_RESTRICT src =
                        src_row + static_cast<std::size_t>(r) *
                                      static_cast<std::size_t>(ow);
                    for (int c = 0; c < ow; ++c)
                        dst[static_cast<std::size_t>(c * stride)] +=
                            src[c];
                }
                src_row += n;
            }
        }
    }
}

} // namespace fa3c::nn::kernels
