#include "nn/kernels/im2col.hh"

#include <cstring>

#include "nn/kernels/gemm.hh"

namespace fa3c::nn::kernels {

namespace {

inline std::size_t
inRowBase(const ConvSpec &s, int i, int y)
{
    return (static_cast<std::size_t>(i) *
                static_cast<std::size_t>(s.inHeight) +
            static_cast<std::size_t>(y)) *
           static_cast<std::size_t>(s.inWidth);
}

} // namespace

void
im2col(const ConvSpec &spec, const float *in, float *col)
{
    const int oh = spec.outHeight();
    const int ow = spec.outWidth();
    const int stride = spec.stride;
    const std::size_t n = patchCount(spec);
    float *FA3C_RESTRICT out = col;
    for (int i = 0; i < spec.inChannels; ++i) {
        for (int kr = 0; kr < spec.kernel; ++kr) {
            for (int kc = 0; kc < spec.kernel; ++kc) {
                // One filter tap -> one col row of all OH*OW samples.
                for (int r = 0; r < oh; ++r) {
                    const float *FA3C_RESTRICT src =
                        in + inRowBase(spec, i, r * stride + kr) +
                        static_cast<std::size_t>(kc);
                    float *FA3C_RESTRICT dst =
                        out + static_cast<std::size_t>(r) *
                                  static_cast<std::size_t>(ow);
                    if (stride == 1) {
                        std::memcpy(dst, src,
                                    static_cast<std::size_t>(ow) *
                                        sizeof(float));
                    } else {
                        for (int c = 0; c < ow; ++c)
                            dst[c] = src[static_cast<std::size_t>(
                                c * stride)];
                    }
                }
                out += n;
            }
        }
    }
}

void
im2row(const ConvSpec &spec, const float *in, float *rows)
{
    const int oh = spec.outHeight();
    const int ow = spec.outWidth();
    const int stride = spec.stride;
    const int k = spec.kernel;
    const std::size_t psize = patchSize(spec);
    for (int r = 0; r < oh; ++r) {
        for (int c = 0; c < ow; ++c) {
            float *FA3C_RESTRICT dst =
                rows + (static_cast<std::size_t>(r) *
                            static_cast<std::size_t>(ow) +
                        static_cast<std::size_t>(c)) *
                           psize;
            for (int i = 0; i < spec.inChannels; ++i) {
                for (int kr = 0; kr < k; ++kr) {
                    // K contiguous input pixels per (i, kr).
                    const float *FA3C_RESTRICT src =
                        in + inRowBase(spec, i, r * stride + kr) +
                        static_cast<std::size_t>(c * stride);
                    std::memcpy(dst, src,
                                static_cast<std::size_t>(k) *
                                    sizeof(float));
                    dst += k;
                }
            }
        }
    }
}

void
col2imAcc(const ConvSpec &spec, const float *col, float *in_grad)
{
    const int oh = spec.outHeight();
    const int ow = spec.outWidth();
    const int stride = spec.stride;
    const std::size_t n = patchCount(spec);
    const float *FA3C_RESTRICT src_row = col;
    for (int i = 0; i < spec.inChannels; ++i) {
        for (int kr = 0; kr < spec.kernel; ++kr) {
            for (int kc = 0; kc < spec.kernel; ++kc) {
                for (int r = 0; r < oh; ++r) {
                    float *FA3C_RESTRICT dst =
                        in_grad + inRowBase(spec, i, r * stride + kr) +
                        static_cast<std::size_t>(kc);
                    const float *FA3C_RESTRICT src =
                        src_row + static_cast<std::size_t>(r) *
                                      static_cast<std::size_t>(ow);
                    for (int c = 0; c < ow; ++c)
                        dst[static_cast<std::size_t>(c * stride)] +=
                            src[c];
                }
                src_row += n;
            }
        }
    }
}

} // namespace fa3c::nn::kernels
