/**
 * @file
 * Patch-matrix layout transforms for im2col/GEMM convolution.
 *
 * For a ConvSpec with I input channels, K x K filters and OH x OW
 * output positions, the two patch layouts are:
 *
 *   im2col: col[I*K*K][OH*OW]   one row per filter tap, one column
 *                               per output position (the GEMM B
 *                               operand of forward / backward);
 *   im2row: rows[OH*OW][I*K*K]  the transpose, built directly (the
 *                               GEMM B operand of the weight-gradient
 *                               computation).
 *
 * col2imAcc scatters a col-layout gradient back onto the input
 * feature maps (the adjoint of im2col).
 */

#ifndef FA3C_NN_KERNELS_IM2COL_HH
#define FA3C_NN_KERNELS_IM2COL_HH

#include <cstddef>

#include "nn/layers.hh"

namespace fa3c::nn::kernels {

/** Elements of one patch: I * K * K (the GEMM depth). */
inline std::size_t
patchSize(const ConvSpec &spec)
{
    return static_cast<std::size_t>(spec.inChannels) *
           static_cast<std::size_t>(spec.kernel) *
           static_cast<std::size_t>(spec.kernel);
}

/** Number of output positions: OH * OW (the GEMM width). */
inline std::size_t
patchCount(const ConvSpec &spec)
{
    return static_cast<std::size_t>(spec.outHeight()) *
           static_cast<std::size_t>(spec.outWidth());
}

/** Scratch floats one col / row patch matrix needs. */
inline std::size_t
colSize(const ConvSpec &spec)
{
    return patchSize(spec) * patchCount(spec);
}

/** col[patchSize][patchCount] = patches of in[I][H][W]. */
void im2col(const ConvSpec &spec, const float *in, float *col);

/** rows[patchCount][patchSize] = patches of in[I][H][W]. */
void im2row(const ConvSpec &spec, const float *in, float *rows);

/** in_grad[I][H][W] += scatter(col). Caller zeroes in_grad first. */
void col2imAcc(const ConvSpec &spec, const float *col, float *in_grad);

} // namespace fa3c::nn::kernels

#endif // FA3C_NN_KERNELS_IM2COL_HH
