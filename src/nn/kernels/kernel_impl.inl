/**
 * @file
 * ISA-specialized kernel bodies, compiled once per target:
 *
 *   kernels_generic.cc  portable baseline flags
 *   kernels_avx2.cc     -mavx2 -mf16c (defines FA3C_ISA_AVX2)
 *   kernels_avx512.cc   -mavx512{f,bw,dq,vl,vnni} on top of AVX2
 *                       (defines FA3C_ISA_AVX512 as well)
 *
 * The including TU defines FA3C_ISA_NS (the wrapping namespace),
 * FA3C_ISA_NAME (the table name string) and — when the intrinsic
 * paths should be compiled — FA3C_ISA_AVX2 / FA3C_ISA_AVX512.
 * Everything here must keep the determinism contract from
 * dispatch.hh: per-C-element fp32 accumulation order is increasing k
 * with mul and add kept separate (the TUs are built with
 * -ffp-contract=off), integer kernels are exact, so all tables agree
 * bit-for-bit. The AVX-512 tier only widens constructs where every C
 * element lives in a single fixed lane (the register tiles) or where
 * arithmetic is exact (the int8 VNNI macs); lane-summing kernels
 * (fcDotRows) keep the 8-lane structure on every tier.
 *
 * The fp32 GEMM forms (axpy and register tile) moved here from
 * gemm.cc, which now only keeps the ISA-independent packing helpers
 * and the dispatching wrappers.
 */

#if FA3C_ISA_AVX2
#include <immintrin.h>
#endif

namespace fa3c::nn::kernels {
namespace FA3C_ISA_NS {
namespace {

// ---------------------------------------------------------------
// fp32 GEMM (axpy + register-tile forms; see gemm.hh for the
// shape-based selection rationale).
// ---------------------------------------------------------------

// Vector lane types for the tiled kernels. GCC/Clang lower the
// arithmetic to the widest ISA the TU is compiled for and legalize it
// on older targets, so the same source serves SSE2 through AVX-512
// with identical per-lane results. Memory access goes exclusively
// through the memcpy-based load/store helpers below, so the types can
// keep their natural alignment — an under-aligned typedef would make
// GCC bounce every load through a split stack temporary.
//
// vf is always 8 lanes: it feeds kernels whose result depends on the
// lane count (the fcDotRows lane sum), which must not change across
// tiers. vfw is the tile width — 16 lanes on the AVX-512 tier, where
// each tile lane holds one whole C element for the entire k loop, so
// widening it can never change results.
#if defined(__GNUC__) || defined(__clang__)
#define FA3C_GEMM_TILED 1
typedef float vf __attribute__((vector_size(32)));
constexpr int kVL = 8; ///< floats per vf
#if FA3C_ISA_AVX512
typedef float vfw __attribute__((vector_size(64)));
constexpr int kVLW = 16; ///< floats per vfw
#else
typedef float vfw __attribute__((vector_size(32)));
constexpr int kVLW = 8; ///< floats per vfw
#endif
constexpr int kNV = kGemmPanelWidth / kVLW; ///< vfw per column strip

template <class V>
inline V
vecload(const float *p)
{
    V v;
    __builtin_memcpy(&v, p, sizeof(v));
    return v;
}

template <class V>
inline void
vecstore(float *p, V v)
{
    __builtin_memcpy(p, &v, sizeof(v));
}

inline vf
loadu(const float *p)
{
    return vecload<vf>(p);
}

/**
 * MR x kGemmPanelWidth tile of C held in registers across the whole
 * k loop. @p ldpb is the distance between consecutive k rows of the B
 * strip (the matrix row stride, or kGemmPanelWidth for packed
 * panels). Each C element starts from its current value and adds
 * products in increasing k, exactly like the axpy form.
 */
template <int MR>
inline void
tileMxW(int k, const float *FA3C_RESTRICT a, int lda,
        const float *FA3C_RESTRICT b, std::size_t ldpb, float *c,
        int ldc)
{
    vfw acc[MR][kNV];
    for (int r = 0; r < MR; ++r)
        for (int v = 0; v < kNV; ++v)
            acc[r][v] = vecload<vfw>(c + static_cast<std::size_t>(r) *
                                             static_cast<std::size_t>(ldc) +
                                     v * kVLW);
    for (int p = 0; p < k; ++p) {
        const float *bp = b + static_cast<std::size_t>(p) * ldpb;
        vfw bv[kNV];
        for (int v = 0; v < kNV; ++v)
            bv[v] = vecload<vfw>(bp + v * kVLW);
        for (int r = 0; r < MR; ++r) {
            const vfw av =
                a[static_cast<std::size_t>(r) *
                      static_cast<std::size_t>(lda) +
                  static_cast<std::size_t>(p)] -
                (vfw){}; // broadcast
            for (int v = 0; v < kNV; ++v)
                acc[r][v] += av * bv[v];
        }
    }
    for (int r = 0; r < MR; ++r)
        for (int v = 0; v < kNV; ++v)
            vecstore(c + static_cast<std::size_t>(r) *
                             static_cast<std::size_t>(ldc) +
                         v * kVLW,
                     acc[r][v]);
}
#endif // FA3C_GEMM_TILED

/** One C row: c[0..n) += sum_p a[p] * b[p][0..n). */
inline void
gemmRow(int n, int k, const float *FA3C_RESTRICT a, const float *b,
        int ldb, float *FA3C_RESTRICT c)
{
    for (int p = 0; p < k; ++p) {
        const float ap = a[p];
        const float *FA3C_RESTRICT bp = b + static_cast<std::size_t>(p) *
                                                static_cast<std::size_t>(ldb);
        for (int j = 0; j < n; ++j)
            c[j] += ap * bp[j];
    }
}

/** Axpy form: B rows streamed contiguously, four C rows per pass. */
void
gemmAxpy(int m, int n, int k, const float *a, int lda, const float *b,
         int ldb, float *c, int ldc)
{
    const std::size_t sa = static_cast<std::size_t>(lda);
    const std::size_t sc = static_cast<std::size_t>(ldc);
    int i = 0;
    // MR=4 register block: each B row loaded once, used by four C rows.
    for (; i + 4 <= m; i += 4) {
        const float *FA3C_RESTRICT a0 = a + static_cast<std::size_t>(i) * sa;
        const float *FA3C_RESTRICT a1 = a0 + sa;
        const float *FA3C_RESTRICT a2 = a1 + sa;
        const float *FA3C_RESTRICT a3 = a2 + sa;
        float *FA3C_RESTRICT c0 = c + static_cast<std::size_t>(i) * sc;
        float *FA3C_RESTRICT c1 = c0 + sc;
        float *FA3C_RESTRICT c2 = c1 + sc;
        float *FA3C_RESTRICT c3 = c2 + sc;
        for (int p = 0; p < k; ++p) {
            const float a0p = a0[p];
            const float a1p = a1[p];
            const float a2p = a2[p];
            const float a3p = a3[p];
            const float *FA3C_RESTRICT bp =
                b + static_cast<std::size_t>(p) *
                        static_cast<std::size_t>(ldb);
            for (int j = 0; j < n; ++j) {
                const float bj = bp[j];
                c0[j] += a0p * bj;
                c1[j] += a1p * bj;
                c2[j] += a2p * bj;
                c3[j] += a3p * bj;
            }
        }
    }
    for (; i < m; ++i)
        gemmRow(n, k, a + static_cast<std::size_t>(i) * sa, b, ldb,
                c + static_cast<std::size_t>(i) * sc);
}

#ifdef FA3C_GEMM_TILED
// Tallest register tile the target can hold without spilling: the
// 16-register targets (SSE2-legalized, AVX2) top out at the MR=4 x
// 32-float tile; the 32-register AVX-512 tier doubles the rows
// (MR=8 x 2 zmm accumulators + 2 panel vectors + the broadcast).
#if FA3C_ISA_AVX512
constexpr int kMRMax = 8;
#else
constexpr int kMRMax = 4;
#endif

template <int MR>
inline void
rowBlock(int n, int k, const float *a, int lda, const float *b,
         int ldb, float *c, int ldc)
{
    int j = 0;
    for (; j + kGemmPanelWidth <= n; j += kGemmPanelWidth)
        tileMxW<MR>(k, a, lda, b + j, static_cast<std::size_t>(ldb),
                    c + j, ldc);
    // Tail columns go through the axpy form, whose contiguous inner
    // loop vectorizes even for a handful of columns; per C element it
    // runs the same increasing-k order as the tiles.
    if (j < n)
        gemmAxpy(MR, n - j, k, a, lda, b + j, ldb, c + j, ldc);
}

void
gemmTiled(int m, int n, int k, const float *a, int lda, const float *b,
          int ldb, float *c, int ldc)
{
    const std::size_t sa = static_cast<std::size_t>(lda);
    const std::size_t sc = static_cast<std::size_t>(ldc);
    int i = 0;
    if constexpr (kMRMax >= 8)
        for (; i + 8 <= m; i += 8)
            rowBlock<8>(n, k, a + static_cast<std::size_t>(i) * sa, lda,
                        b, ldb, c + static_cast<std::size_t>(i) * sc,
                        ldc);
    for (; i + 4 <= m; i += 4)
        rowBlock<4>(n, k, a + static_cast<std::size_t>(i) * sa, lda, b,
                    ldb, c + static_cast<std::size_t>(i) * sc, ldc);
    for (; i + 2 <= m; i += 2)
        rowBlock<2>(n, k, a + static_cast<std::size_t>(i) * sa, lda, b,
                    ldb, c + static_cast<std::size_t>(i) * sc, ldc);
    for (; i < m; ++i)
        rowBlock<1>(n, k, a + static_cast<std::size_t>(i) * sa, lda, b,
                    ldb, c + static_cast<std::size_t>(i) * sc, ldc);
}
#endif // FA3C_GEMM_TILED

void
gemmAccImpl(int m, int n, int k, const float *a, int lda,
            const float *b, int ldb, float *c, int ldc)
{
#ifdef FA3C_GEMM_TILED
    // Tiled form needs enough C rows to amortize its strided B walk;
    // below that (notably the M = 1 GEMV) the contiguous axpy stream
    // is faster and bandwidth-optimal.
    if (m >= 4 && n >= kGemmPanelWidth) {
        gemmTiled(m, n, k, a, lda, b, ldb, c, ldc);
        return;
    }
#endif
    gemmAxpy(m, n, k, a, lda, b, ldb, c, ldc);
}

void
gemmAccPanelsImpl(int m, int n, int k, const float *a, int lda,
                  const float *panels, float *c, int ldc)
{
    const std::size_t panelFloats =
        static_cast<std::size_t>(k) * kGemmPanelWidth;
    for (int j0 = 0; j0 < n; j0 += kGemmPanelWidth) {
        const int w = std::min(kGemmPanelWidth, n - j0);
        const float *panel =
            panels +
            static_cast<std::size_t>(j0 / kGemmPanelWidth) * panelFloats;
#ifdef FA3C_GEMM_TILED
        if (w == kGemmPanelWidth) {
            const std::size_t sa = static_cast<std::size_t>(lda);
            const std::size_t sc = static_cast<std::size_t>(ldc);
            float *cj = c + static_cast<std::size_t>(j0);
            int i = 0;
            if constexpr (kMRMax >= 8)
                for (; i + 8 <= m; i += 8)
                    tileMxW<8>(k, a + static_cast<std::size_t>(i) * sa,
                               lda, panel, kGemmPanelWidth,
                               cj + static_cast<std::size_t>(i) * sc,
                               ldc);
            for (; i + 4 <= m; i += 4)
                tileMxW<4>(k, a + static_cast<std::size_t>(i) * sa, lda,
                           panel, kGemmPanelWidth,
                           cj + static_cast<std::size_t>(i) * sc, ldc);
            for (; i + 2 <= m; i += 2)
                tileMxW<2>(k, a + static_cast<std::size_t>(i) * sa, lda,
                           panel, kGemmPanelWidth,
                           cj + static_cast<std::size_t>(i) * sc, ldc);
            for (; i < m; ++i)
                tileMxW<1>(k, a + static_cast<std::size_t>(i) * sa, lda,
                           panel, kGemmPanelWidth,
                           cj + static_cast<std::size_t>(i) * sc, ldc);
            continue;
        }
#endif
        // Tail strip (or no vector extensions): the panel is a dense
        // [k][kGemmPanelWidth] matrix whose first w columns are live.
        gemmAxpy(m, w, k, a, lda, panel, kGemmPanelWidth,
                 c + static_cast<std::size_t>(j0), ldc);
    }
}

// ---------------------------------------------------------------
// Small-N FC forward: per-row dot products over canonical w[O][I].
// The lane structure (four vf accumulators, fixed combine order,
// then an ordered lane sum and the scalar tail) is identical in both
// TUs, so results are bit-identical across ISAs.
// ---------------------------------------------------------------

void
fcDotRowsImpl(int batch, int outF, int inF, const float *x, int ldx,
              const float *w, int ldw, const float *bias, float *y,
              int ldy)
{
    for (int s = 0; s < batch; ++s) {
        const float *FA3C_RESTRICT xr =
            x + static_cast<std::size_t>(s) * static_cast<std::size_t>(ldx);
        float *FA3C_RESTRICT yr =
            y + static_cast<std::size_t>(s) * static_cast<std::size_t>(ldy);
        for (int o = 0; o < outF; ++o) {
            const float *FA3C_RESTRICT wr =
                w + static_cast<std::size_t>(o) *
                        static_cast<std::size_t>(ldw);
            float total = bias[o];
            int i = 0;
#ifdef FA3C_GEMM_TILED
            vf a0{}, a1{}, a2{}, a3{};
            for (; i + 4 * kVL <= inF; i += 4 * kVL) {
                a0 += loadu(xr + i) * loadu(wr + i);
                a1 += loadu(xr + i + kVL) * loadu(wr + i + kVL);
                a2 += loadu(xr + i + 2 * kVL) * loadu(wr + i + 2 * kVL);
                a3 += loadu(xr + i + 3 * kVL) * loadu(wr + i + 3 * kVL);
            }
            for (; i + kVL <= inF; i += kVL)
                a0 += loadu(xr + i) * loadu(wr + i);
            const vf acc = (a0 + a1) + (a2 + a3);
            float lanes[kVL];
            __builtin_memcpy(lanes, &acc, sizeof(acc));
            for (int l = 0; l < kVL; ++l)
                total += lanes[l];
#endif
            for (; i < inF; ++i)
                total += xr[i] * wr[i];
            yr[o] = total;
        }
    }
}

// ---------------------------------------------------------------
// Int8 GEMM over quad-interleaved panels (layout: quant.hh). A bytes
// are unsigned activations in [0,127]; with |w| <= 127 the int16
// intermediates of vpmaddubsw never saturate, so all arithmetic is
// exact int32 and the scalar and SIMD forms agree bit-for-bit by
// construction.
// ---------------------------------------------------------------

#if FA3C_ISA_AVX2
/** The activation quad of row r at quad-step q, as a 32-bit scalar. */
inline std::int32_t
quadBitsAt(const std::int8_t *a, int lda, int r, int q)
{
    std::int32_t bits;
    __builtin_memcpy(&bits,
                     a + static_cast<std::size_t>(r) *
                             static_cast<std::size_t>(lda) +
                         static_cast<std::size_t>(kQuantPanelDepth) *
                             static_cast<std::size_t>(q),
                     4);
    return bits;
}
#endif

#if FA3C_ISA_AVX512
/**
 * MR rows x one 16-column strip. One 64-byte panel row is exactly
 * one zmm load holding the strip's 16 columns x 4 consecutive taps
 * interleaved [col][quad]; broadcasting a row's activation quad
 * (vpbroadcastd) and one vpdpbusd yield the 16 exact int32 4-tap
 * dot products of the strip per step.
 */
template <int MR>
inline void
qtileMxW(int k4, const std::int8_t *a, int lda,
         const std::int8_t *panel, std::int32_t *c, int ldc)
{
    __m512i acc[MR];
    for (int r = 0; r < MR; ++r)
        acc[r] = _mm512_setzero_si512();
    for (int q = 0; q < k4; ++q) {
        const __m512i w16 = _mm512_loadu_si512(
            panel + static_cast<std::size_t>(q) * kQuantPanelDepth *
                        kQuantPanelWidth);
        for (int r = 0; r < MR; ++r)
            acc[r] = _mm512_dpbusd_epi32(
                acc[r], _mm512_set1_epi32(quadBitsAt(a, lda, r, q)),
                w16);
    }
    for (int r = 0; r < MR; ++r) {
        std::int32_t *p = c + static_cast<std::size_t>(r) *
                                  static_cast<std::size_t>(ldc);
        _mm512_storeu_si512(
            p, _mm512_add_epi32(_mm512_loadu_si512(p), acc[r]));
    }
}
#elif FA3C_ISA_AVX2
/**
 * One u8 x s8 quad-mac: acc[j] += dot of an activation quad against
 * panel column j's quad — vpmaddubsw + vpmaddwd-against-ones. Exact
 * under the [0,127] x [-127,127] operand contract (int16
 * intermediates cap at 2 * 127^2 = 32258 < 32767, so the maddubs
 * saturation never fires).
 */
inline __m256i
qmac(__m256i acc, __m256i av, __m256i w8)
{
    return _mm256_add_epi32(
        acc, _mm256_madd_epi16(_mm256_maddubs_epi16(av, w8),
                               _mm256_set1_epi16(1)));
}

/**
 * MR rows x one 16-column strip, consumed as two 32-byte halves (8
 * columns each) of every 64-byte panel row. Broadcasting a row's
 * activation quad (vpbroadcastd) and qmac per half yield the strip's
 * 16 exact int32 4-tap dot products in four multiply instructions.
 */
template <int MR>
inline void
qtileMxW(int k4, const std::int8_t *a, int lda,
         const std::int8_t *panel, std::int32_t *c, int ldc)
{
    __m256i acc[MR][2];
    for (int r = 0; r < MR; ++r) {
        acc[r][0] = _mm256_setzero_si256();
        acc[r][1] = _mm256_setzero_si256();
    }
    for (int q = 0; q < k4; ++q) {
        const std::int8_t *row =
            panel + static_cast<std::size_t>(q) * kQuantPanelDepth *
                        kQuantPanelWidth;
        const __m256i wlo = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(row));
        const __m256i whi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(row + 32));
        for (int r = 0; r < MR; ++r) {
            const __m256i av =
                _mm256_set1_epi32(quadBitsAt(a, lda, r, q));
            acc[r][0] = qmac(acc[r][0], av, wlo);
            acc[r][1] = qmac(acc[r][1], av, whi);
        }
    }
    for (int r = 0; r < MR; ++r) {
        __m256i *p = reinterpret_cast<__m256i *>(
            c + static_cast<std::size_t>(r) *
                    static_cast<std::size_t>(ldc));
        _mm256_storeu_si256(
            p, _mm256_add_epi32(_mm256_loadu_si256(p), acc[r][0]));
        _mm256_storeu_si256(p + 1, _mm256_add_epi32(
                                       _mm256_loadu_si256(p + 1),
                                       acc[r][1]));
    }
}
#endif // FA3C_ISA_AVX512 / FA3C_ISA_AVX2

void
qgemmAccPanelsImpl(int m, int n, int k, const std::int8_t *a, int lda,
                   const std::int8_t *panels, std::int32_t *c, int ldc)
{
    const int k4 = (k + kQuantPanelDepth - 1) / kQuantPanelDepth;
    const std::size_t panelBytes = static_cast<std::size_t>(k4) *
                                   kQuantPanelDepth * kQuantPanelWidth;
    for (int j0 = 0; j0 < n; j0 += kQuantPanelWidth) {
        const int w = std::min(kQuantPanelWidth, n - j0);
        const std::int8_t *panel =
            panels +
            static_cast<std::size_t>(j0 / kQuantPanelWidth) * panelBytes;
#if FA3C_ISA_AVX2
        if (w == kQuantPanelWidth) {
            std::int32_t *cj = c + static_cast<std::size_t>(j0);
            const std::size_t sa = static_cast<std::size_t>(lda);
            const std::size_t sc = static_cast<std::size_t>(ldc);
            int i = 0;
            // Tile heights by register budget: the AVX-512 form
            // holds one zmm accumulator per row (MR=8 fits easily);
            // the AVX2 form needs two ymm per row, so it tops out at
            // MR=4 of the 16-register file.
#if FA3C_ISA_AVX512
            for (; i + 8 <= m; i += 8)
                qtileMxW<8>(k4, a + static_cast<std::size_t>(i) * sa,
                            lda, panel,
                            cj + static_cast<std::size_t>(i) * sc,
                            ldc);
#endif
            for (; i + 4 <= m; i += 4)
                qtileMxW<4>(k4, a + static_cast<std::size_t>(i) * sa,
                            lda, panel,
                            cj + static_cast<std::size_t>(i) * sc,
                            ldc);
            for (; i + 2 <= m; i += 2)
                qtileMxW<2>(k4, a + static_cast<std::size_t>(i) * sa,
                            lda, panel,
                            cj + static_cast<std::size_t>(i) * sc,
                            ldc);
            for (; i < m; ++i)
                qtileMxW<1>(k4, a + static_cast<std::size_t>(i) * sa,
                            lda, panel,
                            cj + static_cast<std::size_t>(i) * sc,
                            ldc);
            continue;
        }
#endif
        for (int i = 0; i < m; ++i) {
            const std::int8_t *FA3C_RESTRICT ar =
                a + static_cast<std::size_t>(i) *
                        static_cast<std::size_t>(lda);
            std::int32_t *FA3C_RESTRICT cr =
                c + static_cast<std::size_t>(i) *
                        static_cast<std::size_t>(ldc) +
                static_cast<std::size_t>(j0);
            for (int j = 0; j < w; ++j) {
                const std::int8_t *FA3C_RESTRICT p =
                    panel + kQuantPanelDepth * j;
                std::int32_t acc = 0;
                for (int q = 0; q < k4; ++q) {
                    const std::size_t base =
                        static_cast<std::size_t>(q) * kQuantPanelDepth;
                    for (int t = 0; t < kQuantPanelDepth; ++t)
                        acc += static_cast<std::int32_t>(
                                   static_cast<std::uint8_t>(
                                       ar[base +
                                          static_cast<std::size_t>(t)])) *
                               p[base * kQuantPanelWidth +
                                 static_cast<std::size_t>(t)];
                }
                cr[j] += acc;
            }
        }
    }
}

std::int32_t
qdotImpl(int k, const std::int8_t *a, const std::int8_t *b)
{
    std::int32_t total = 0;
    int i = 0;
#if FA3C_ISA_AVX2
    __m256i acc = _mm256_setzero_si256();
    for (; i + 32 <= k; i += 32) {
        const __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        acc = _mm256_add_epi32(
            acc,
            _mm256_madd_epi16(
                _mm256_cvtepi8_epi16(_mm256_castsi256_si128(av)),
                _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv))));
        acc = _mm256_add_epi32(
            acc,
            _mm256_madd_epi16(
                _mm256_cvtepi8_epi16(_mm256_extracti128_si256(av, 1)),
                _mm256_cvtepi8_epi16(_mm256_extracti128_si256(bv, 1))));
    }
    const __m128i lo = _mm256_castsi256_si128(acc);
    const __m128i hi = _mm256_extracti128_si256(acc, 1);
    __m128i s = _mm_add_epi32(lo, hi);
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4e));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xb1));
    total = _mm_cvtsi128_si32(s);
#endif
    for (; i < k; ++i)
        total += static_cast<std::int32_t>(a[i]) *
                 static_cast<std::int32_t>(b[i]);
    return total;
}

// ---------------------------------------------------------------
// Fp16-storage GEMM: the fp32 register tile with the panel rows
// up-converted on load. Both converters are exact (every binary16
// value is representable in binary32), so results match the generic
// table bit-for-bit.
// ---------------------------------------------------------------

#ifdef FA3C_GEMM_TILED
/** One tile-width vector of panel halfs, exactly up-converted. */
inline vfw
loadHalfW(const std::uint16_t *p)
{
#if FA3C_ISA_AVX512
    return static_cast<vfw>(_mm512_cvtph_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p))));
#elif FA3C_ISA_AVX2
    return static_cast<vfw>(_mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p))));
#else
    float tmp[kVLW];
    for (int l = 0; l < kVLW; ++l)
        tmp[l] = halfToFloat(p[l]);
    return vecload<vfw>(tmp);
#endif
}

template <int MR>
inline void
htileMxW(int k, const float *FA3C_RESTRICT a, int lda,
         const std::uint16_t *FA3C_RESTRICT b, float *c, int ldc)
{
    vfw acc[MR][kNV];
    for (int r = 0; r < MR; ++r)
        for (int v = 0; v < kNV; ++v)
            acc[r][v] = vecload<vfw>(c + static_cast<std::size_t>(r) *
                                             static_cast<std::size_t>(ldc) +
                                     v * kVLW);
    for (int p = 0; p < k; ++p) {
        const std::uint16_t *bp =
            b + static_cast<std::size_t>(p) * kGemmPanelWidth;
        vfw bv[kNV];
        for (int v = 0; v < kNV; ++v)
            bv[v] = loadHalfW(bp + v * kVLW);
        for (int r = 0; r < MR; ++r) {
            const vfw av =
                a[static_cast<std::size_t>(r) *
                      static_cast<std::size_t>(lda) +
                  static_cast<std::size_t>(p)] -
                (vfw){}; // broadcast
            for (int v = 0; v < kNV; ++v)
                acc[r][v] += av * bv[v];
        }
    }
    for (int r = 0; r < MR; ++r)
        for (int v = 0; v < kNV; ++v)
            vecstore(c + static_cast<std::size_t>(r) *
                             static_cast<std::size_t>(ldc) +
                         v * kVLW,
                     acc[r][v]);
}
#endif // FA3C_GEMM_TILED

void
hgemmAccPanelsImpl(int m, int n, int k, const float *a, int lda,
                   const std::uint16_t *panels, float *c, int ldc)
{
    const std::size_t panelHalfs =
        static_cast<std::size_t>(k) * kGemmPanelWidth;
    for (int j0 = 0; j0 < n; j0 += kGemmPanelWidth) {
        const int w = std::min(kGemmPanelWidth, n - j0);
        const std::uint16_t *panel =
            panels +
            static_cast<std::size_t>(j0 / kGemmPanelWidth) * panelHalfs;
#ifdef FA3C_GEMM_TILED
        if (w == kGemmPanelWidth) {
            float *cj = c + static_cast<std::size_t>(j0);
            const std::size_t sa = static_cast<std::size_t>(lda);
            const std::size_t sc = static_cast<std::size_t>(ldc);
            int i = 0;
            if constexpr (kMRMax >= 8)
                for (; i + 8 <= m; i += 8)
                    htileMxW<8>(k, a + static_cast<std::size_t>(i) * sa,
                                lda, panel,
                                cj + static_cast<std::size_t>(i) * sc,
                                ldc);
            for (; i + 4 <= m; i += 4)
                htileMxW<4>(k, a + static_cast<std::size_t>(i) * sa,
                            lda, panel,
                            cj + static_cast<std::size_t>(i) * sc, ldc);
            for (; i + 2 <= m; i += 2)
                htileMxW<2>(k, a + static_cast<std::size_t>(i) * sa,
                            lda, panel,
                            cj + static_cast<std::size_t>(i) * sc, ldc);
            for (; i < m; ++i)
                htileMxW<1>(k, a + static_cast<std::size_t>(i) * sa,
                            lda, panel,
                            cj + static_cast<std::size_t>(i) * sc, ldc);
            continue;
        }
#endif
        // Tail strip: scalar walk with the software converter — the
        // same code in both TUs, so ISA parity holds here too.
        for (int i = 0; i < m; ++i) {
            const float *FA3C_RESTRICT ar =
                a + static_cast<std::size_t>(i) *
                        static_cast<std::size_t>(lda);
            float *FA3C_RESTRICT cr =
                c + static_cast<std::size_t>(i) *
                        static_cast<std::size_t>(ldc) +
                static_cast<std::size_t>(j0);
            for (int p = 0; p < k; ++p) {
                const float ap = ar[p];
                const std::uint16_t *bp =
                    panel + static_cast<std::size_t>(p) * kGemmPanelWidth;
                for (int j = 0; j < w; ++j)
                    cr[j] += ap * halfToFloat(bp[j]);
            }
        }
    }
}

// ---------------------------------------------------------------
// Quantization: q[i] = clamp(rne(x[i] * inv), LO, 127) with LO =
// -127 for weights (quantizeRow) and 0 for activations
// (quantizeRowU, matching the unsigned A operand of the int8 GEMM).
// lrintf and vcvtps2dq both round to nearest-even under the default
// FP environment, so the tails and the vector body agree exactly —
// for FINITE inputs only. On NaN/Inf the two disagree (vcvtps2dq
// yields INT_MIN, clamped to LO; lrintf is unspecified), making the
// result position-dependent, so finite input is a documented
// precondition (quant.hh) rather than something clamped here in the
// hot loop.
// ---------------------------------------------------------------

template <int LO>
inline std::int8_t
quantizeOne(float x, float inv)
{
    long r = lrintf(x * inv);
    if (r > 127)
        r = 127;
    else if (r < LO)
        r = LO;
    return static_cast<std::int8_t>(r);
}

template <int LO>
inline void
quantizeRowBody(int n, const float *x, float inv, std::int8_t *q)
{
    int i = 0;
#if FA3C_ISA_AVX2
    const __m256 vinv = _mm256_set1_ps(inv);
    const __m256i vmax = _mm256_set1_epi32(127);
    const __m256i vmin = _mm256_set1_epi32(LO);
    // Lane order after the two saturating packs is dword-interleaved
    // across the 128-bit halves; this permute restores it.
    const __m256i order =
        _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    for (; i + 32 <= n; i += 32) {
        __m256i v[4];
        for (int g = 0; g < 4; ++g) {
            const __m256 xv = _mm256_loadu_ps(x + i + 8 * g);
            __m256i iv = _mm256_cvtps_epi32(_mm256_mul_ps(xv, vinv));
            iv = _mm256_min_epi32(iv, vmax);
            iv = _mm256_max_epi32(iv, vmin);
            v[g] = iv;
        }
        const __m256i s01 = _mm256_packs_epi32(v[0], v[1]);
        const __m256i s23 = _mm256_packs_epi32(v[2], v[3]);
        const __m256i b = _mm256_permutevar8x32_epi32(
            _mm256_packs_epi16(s01, s23), order);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(q + i), b);
    }
#endif
    for (; i < n; ++i)
        q[i] = quantizeOne<LO>(x[i], inv);
}

void
quantizeRowImpl(int n, const float *x, float inv, std::int8_t *q)
{
    quantizeRowBody<-127>(n, x, inv, q);
}

void
quantizeRowUImpl(int n, const float *x, float inv, std::int8_t *q)
{
    quantizeRowBody<0>(n, x, inv, q);
}

} // namespace

const KernelOps kOps = {
    FA3C_ISA_NAME,      gemmAccImpl,  gemmAccPanelsImpl,
    fcDotRowsImpl,      qgemmAccPanelsImpl,
    qdotImpl,           hgemmAccPanelsImpl,
    quantizeRowImpl,    quantizeRowUImpl,
};

} // namespace FA3C_ISA_NS
} // namespace fa3c::nn::kernels
