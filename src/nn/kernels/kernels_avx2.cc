// AVX2 instantiation of the ISA-specialized kernel bodies (see
// kernel_impl.inl). The build compiles this TU with -mavx2 -mf16c
// when the compiler supports them; dispatch.cc only selects the
// resulting table after checking CPUID, so the binary as a whole
// stays runnable on pre-AVX2 hosts. If the flags are unavailable the
// TU degrades to a portable duplicate and avx2Ops() reports null.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "nn/kernels/dispatch.hh"
#include "nn/kernels/gemm.hh"
#include "nn/kernels/quant.hh"

#if defined(__AVX2__) && defined(__F16C__)
#define FA3C_ISA_AVX2 1
#else
#define FA3C_ISA_AVX2 0
#endif
#define FA3C_ISA_AVX512 0

#define FA3C_ISA_NS isa_avx2
#define FA3C_ISA_NAME "avx2"
#include "nn/kernels/kernel_impl.inl"

namespace fa3c::nn::kernels {

const KernelOps *
avx2Ops()
{
#if FA3C_ISA_AVX2
    return &isa_avx2::kOps;
#else
    return nullptr;
#endif
}

} // namespace fa3c::nn::kernels
