// AVX-512 instantiation of the ISA-specialized kernel bodies (see
// kernel_impl.inl). The build compiles this TU with
// -mavx512{f,bw,dq,vl,vnni} on top of the AVX2 flags when the
// compiler supports them; dispatch.cc only selects the resulting
// table after CPUID confirms the same feature set (VNNI included, so
// e.g. Skylake-X falls back to the AVX2 table rather than faulting
// on vpdpbusd). If the flags are unavailable the TU degrades to a
// portable duplicate and avx512Ops() reports null.
//
// What the extra ISA buys over the AVX2 table: 16-lane (zmm)
// register tiles for the fp32/fp16 panel GEMMs with MR=8 rows out of
// the doubled register file, and single-instruction u8 x s8 quad
// macs (vpdpbusd) in the int8 GEMM. All of it is bit-identical to
// the other tables — the tiles keep one C element per lane and the
// integer path is exact.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "nn/kernels/dispatch.hh"
#include "nn/kernels/gemm.hh"
#include "nn/kernels/quant.hh"

#if defined(__AVX512F__) && defined(__AVX512BW__) &&                  \
    defined(__AVX512DQ__) && defined(__AVX512VL__) &&                 \
    defined(__AVX512VNNI__) && defined(__AVX2__) && defined(__F16C__)
#define FA3C_ISA_AVX2 1
#define FA3C_ISA_AVX512 1
#else
#define FA3C_ISA_AVX2 0
#define FA3C_ISA_AVX512 0
#endif

#define FA3C_ISA_NS isa_avx512
#define FA3C_ISA_NAME "avx512"
#include "nn/kernels/kernel_impl.inl"

namespace fa3c::nn::kernels {

const KernelOps *
avx512Ops()
{
#if FA3C_ISA_AVX512
    return &isa_avx512::kOps;
#else
    return nullptr;
#endif
}

} // namespace fa3c::nn::kernels
