// Portable-baseline instantiation of the ISA-specialized kernel
// bodies (see kernel_impl.inl). Built with the project's default
// flags plus -ffp-contract=off, so it runs on any host the binary
// targets.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "nn/kernels/dispatch.hh"
#include "nn/kernels/gemm.hh"
#include "nn/kernels/quant.hh"

#define FA3C_ISA_NS isa_generic
#define FA3C_ISA_NAME "generic"
#define FA3C_ISA_AVX2 0
#define FA3C_ISA_AVX512 0
#include "nn/kernels/kernel_impl.inl"

namespace fa3c::nn::kernels {

const KernelOps *
genericOps()
{
    return &isa_generic::kOps;
}

} // namespace fa3c::nn::kernels
