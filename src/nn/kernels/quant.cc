#include "nn/kernels/quant.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/kernels/dispatch.hh"
#include "nn/kernels/gemm.hh"
#include "nn/kernels/im2col.hh"

namespace fa3c::nn::kernels {

float
rowMaxAbs(const float *x, std::size_t n)
{
    float m = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        const float a = std::fabs(x[i]);
        if (a > m)
            m = a;
    }
    return m;
}

void
quantizeRow(int n, const float *x, float inv, std::int8_t *q)
{
    ops().quantizeRow(n, x, inv, q);
}

void
quantizeRowU(int n, const float *x, float inv, std::int8_t *q)
{
    ops().quantizeRowU(n, x, inv, q);
}

std::size_t
qgemmPanelBytes(int n, int k)
{
    const std::size_t strips =
        (static_cast<std::size_t>(n) + kQuantPanelWidth - 1) /
        kQuantPanelWidth;
    const std::size_t k4 =
        (static_cast<std::size_t>(k) + kQuantPanelDepth - 1) /
        kQuantPanelDepth;
    return strips * k4 * kQuantPanelDepth * kQuantPanelWidth;
}

void
qgemmPackPanels(int n, int k, const float *b, int ldb,
                const float *colInv, std::int8_t *panels)
{
    const int k4 = (k + kQuantPanelDepth - 1) / kQuantPanelDepth;
    const std::size_t panelBytes = static_cast<std::size_t>(k4) *
                                   kQuantPanelDepth * kQuantPanelWidth;
    // Packing is a cold path (once per parameter publish), so the
    // scalar rne+clamp here is fine; it matches quantizeRow exactly.
    const auto q8 = [](float v, float inv1) {
        long r = lrintf(v * inv1);
        if (r > 127)
            r = 127;
        else if (r < -127)
            r = -127;
        return static_cast<std::int8_t>(r);
    };
    for (int j0 = 0; j0 < n; j0 += kQuantPanelWidth) {
        const int w = std::min(kQuantPanelWidth, n - j0);
        std::int8_t *panel =
            panels +
            static_cast<std::size_t>(j0 / kQuantPanelWidth) * panelBytes;
        for (int q = 0; q < k4; ++q) {
            std::int8_t *dst = panel + static_cast<std::size_t>(q) *
                                           kQuantPanelDepth *
                                           kQuantPanelWidth;
            for (int j = 0; j < kQuantPanelWidth; ++j) {
                for (int t = 0; t < kQuantPanelDepth; ++t) {
                    const int p = kQuantPanelDepth * q + t;
                    dst[kQuantPanelDepth * j + t] =
                        (j < w && p < k)
                            ? q8(b[static_cast<std::size_t>(p) *
                                       static_cast<std::size_t>(ldb) +
                                   static_cast<std::size_t>(j0 + j)],
                                 colInv[j0 + j])
                            : std::int8_t{0};
                }
            }
        }
    }
}

void
qgemmAccPanels(int m, int n, int k, const std::int8_t *a, int lda,
               const std::int8_t *panels, std::int32_t *c, int ldc)
{
    ops().qgemmAccPanels(m, n, k, a, lda, panels, c, ldc);
}

std::int32_t
qdot(int k, const std::int8_t *a, const std::int8_t *b)
{
    return ops().qdot(k, a, b);
}

std::uint16_t
floatToHalf(float v)
{
    std::uint32_t bits;
    std::memcpy(&bits, &v, 4);
    const std::uint32_t sign = (bits >> 16) & 0x8000u;
    const std::uint32_t absBits = bits & 0x7fffffffu;
    if (absBits >= 0x7f800000u) {
        // Inf / NaN: keep a quiet-NaN payload bit so NaN stays NaN.
        const std::uint32_t mant = absBits > 0x7f800000u ? 0x200u : 0u;
        return static_cast<std::uint16_t>(sign | 0x7c00u | mant);
    }
    if (absBits >= 0x477ff000u) // rounds to >= 2^16: overflow -> inf
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    if (absBits < 0x38800000u) {
        // Subnormal half (or zero): shift the implicit bit into the
        // mantissa and round-to-nearest-even at the shifted position.
        if (absBits < 0x33000000u) // below half of the smallest ulp
            return static_cast<std::uint16_t>(sign);
        const int exp = static_cast<int>(absBits >> 23);
        const std::uint32_t mant = (absBits & 0x7fffffu) | 0x800000u;
        const int shift = 126 - exp; // 14..24
        const std::uint32_t rounded =
            (mant >> shift) +
            (((mant >> (shift - 1)) & 1u) &
             (((mant & ((1u << (shift - 1)) - 1u)) != 0u) |
              ((mant >> shift) & 1u)));
        return static_cast<std::uint16_t>(sign | rounded);
    }
    // Normal: re-bias the exponent and round the 13 dropped bits.
    std::uint32_t half =
        ((absBits >> 13) & 0x3ffu) | ((((absBits >> 23) - 112u) & 0x1fu)
                                      << 10);
    const std::uint32_t rem = absBits & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half & 1u)))
        ++half; // mantissa carry rolls into the exponent correctly
    return static_cast<std::uint16_t>(sign | half);
}

float
halfToFloat(std::uint16_t h)
{
    const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u)
                               << 16;
    const std::uint32_t exp = (h >> 10) & 0x1fu;
    const std::uint32_t mant = h & 0x3ffu;
    std::uint32_t bits;
    if (exp == 0) {
        if (mant == 0) {
            bits = sign;
        } else {
            // Subnormal: normalize into a binary32 exponent.
            int e = -1;
            std::uint32_t m = mant;
            do {
                ++e;
                m <<= 1;
            } while ((m & 0x400u) == 0);
            bits = sign | ((113u - static_cast<std::uint32_t>(e) - 1u)
                           << 23) |
                   ((m & 0x3ffu) << 13);
        }
    } else if (exp == 31) {
        bits = sign | 0x7f800000u | (mant << 13);
    } else {
        bits = sign | ((exp + 112u) << 23) | (mant << 13);
    }
    float f;
    std::memcpy(&f, &bits, 4);
    return f;
}

std::size_t
halfPanelSize(int n, int k)
{
    return gemmPanelSize(n, k);
}

void
halfPackPanels(int n, int k, const float *b, int ldb,
               std::uint16_t *panels)
{
    for (int j0 = 0; j0 < n; j0 += kGemmPanelWidth) {
        const int w = std::min(kGemmPanelWidth, n - j0);
        std::uint16_t *panel =
            panels + static_cast<std::size_t>(j0 / kGemmPanelWidth) *
                         static_cast<std::size_t>(k) * kGemmPanelWidth;
        for (int p = 0; p < k; ++p) {
            std::uint16_t *dst =
                panel + static_cast<std::size_t>(p) * kGemmPanelWidth;
            const float *src = b + static_cast<std::size_t>(p) *
                                       static_cast<std::size_t>(ldb) +
                               static_cast<std::size_t>(j0);
            for (int j = 0; j < w; ++j)
                dst[j] = floatToHalf(src[j]);
            for (int j = w; j < kGemmPanelWidth; ++j)
                dst[j] = 0;
        }
    }
}

void
hgemmAccPanels(int m, int n, int k, const float *a, int lda,
               const std::uint16_t *panels, float *c, int ldc)
{
    ops().hgemmAccPanels(m, n, k, a, lda, panels, c, ldc);
}

void
im2row8(const ConvSpec &spec, const std::int8_t *in, std::int8_t *rows)
{
    const int oh = spec.outHeight();
    const int ow = spec.outWidth();
    const int stride = spec.stride;
    const int kk = spec.kernel;
    const std::size_t psize = patchSize(spec);
    const std::size_t rstride =
        static_cast<std::size_t>(qrowStride(static_cast<int>(psize)));
    const auto rowBase = [&spec](int i, int y) {
        return (static_cast<std::size_t>(i) *
                    static_cast<std::size_t>(spec.inHeight) +
                static_cast<std::size_t>(y)) *
               static_cast<std::size_t>(spec.inWidth);
    };
    for (int r = 0; r < oh; ++r) {
        for (int c = 0; c < ow; ++c) {
            std::int8_t *FA3C_RESTRICT dst =
                rows + (static_cast<std::size_t>(r) *
                            static_cast<std::size_t>(ow) +
                        static_cast<std::size_t>(c)) *
                           rstride;
            for (int i = 0; i < spec.inChannels; ++i) {
                for (int kr = 0; kr < kk; ++kr) {
                    const std::int8_t *FA3C_RESTRICT src =
                        in + rowBase(i, r * stride + kr) +
                        static_cast<std::size_t>(c * stride);
                    std::memcpy(dst, src, static_cast<std::size_t>(kk));
                    dst += kk;
                }
            }
            // Zero the quad-padding bytes so qgemm's madd reads 0.
            for (std::size_t p = psize; p < rstride; ++p)
                rows[(static_cast<std::size_t>(r) *
                          static_cast<std::size_t>(ow) +
                      static_cast<std::size_t>(c)) *
                         rstride +
                     p] = 0;
        }
    }
}

} // namespace fa3c::nn::kernels
