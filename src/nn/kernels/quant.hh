/**
 * @file
 * Quantized-inference kernel utilities: int8 weight/activation
 * quantization, the pair-interleaved int8 panel layout consumed by
 * qgemmAccPanels, IEEE-half storage conversion for the fp16 panels,
 * and the int8 im2row transform for quantized convolution.
 *
 * Quantization scheme (per-output-channel weights, unsigned
 * activations):
 *
 *   weight scale  sw[o] = maxabs(w row o) / 127
 *   act scale     sx    = maxabs(x) / 127        (dynamic, per tensor)
 *   qw            = clamp(rne(w / sw), -127, 127)   (signed int8)
 *   qx            = clamp(rne(x / sx), 0, 127)      (unsigned 7-bit)
 *   acc[o]        = sum_i qx[i] * qw[o][i]       (exact int32)
 *   out[o]        = float(acc[o]) * (sw[o] * sx) + bias[o]
 *
 * Activations use an unsigned clamp because every activation tensor
 * in this network is non-negative (observations are [0, 1], hidden
 * layers are post-ReLU), so [0, 127] loses nothing over [-127, 127] —
 * and it is what lets the AVX2 kernel use vpmaddubsw (unsigned x
 * signed byte multiply-add), which doubles the per-instruction MAC
 * rate over a sign-extended pmaddwd scheme. With qx <= 127 and
 * |qw| <= 127 the vpmaddubsw intermediate (<= 2 * 127^2 = 32258)
 * never saturates int16, so the arithmetic stays exact.
 *
 * The integer accumulation is exact (|acc| <= k * 127^2 stays far
 * below 2^31 for every layer geometry here), and the dequantization
 * runs in one fixed order, so quantized results are bit-identical
 * across ISAs and across batch sizes. Differences vs fp32 come only
 * from the quantization itself and are bounded by the parity tests.
 *
 * Int8 panel layout (B operand of qgemmAccPanels): 16-column strips;
 * within a strip, taps are grouped in quads so one 64-byte row holds
 * 16 columns x 4 consecutive k steps, interleaved [col][quad] —
 * exactly the operand shape of one AVX-512 vpdpbusd against a
 * broadcast activation quad. The AVX2 kernel consumes the same row
 * as two 32-byte halves (8 columns each) via vpmaddubsw followed by
 * vpmaddwd against ones, and the scalar fallback walks the layout
 * with identical integer semantics.
 */

#ifndef FA3C_NN_KERNELS_QUANT_HH
#define FA3C_NN_KERNELS_QUANT_HH

#include <cstddef>
#include <cstdint>

#include "nn/layers.hh"

namespace fa3c::nn::kernels {

/** Column width of the int8 panel layout. */
constexpr int kQuantPanelWidth = 16;

/** Taps per panel row of the int8 panel layout. */
constexpr int kQuantPanelDepth = 4;

/** Row stride (bytes) of a zero-padded int8 A operand of depth k. */
inline int
qrowStride(int k)
{
    return kQuantPanelDepth *
           ((k + kQuantPanelDepth - 1) / kQuantPanelDepth);
}

/** maxabs over a float row (0 for an empty row). */
float rowMaxAbs(const float *x, std::size_t n);

/**
 * Weight quantization: q[i] = clamp(rne(x[i] * inv), -127, 127) —
 * ISA-dispatched. Round-to-nearest-even under the default FP
 * environment.
 *
 * @pre Every x[i] is finite. Non-finite inputs round differently in
 * the vector body (cvtps2dq yields INT_MIN, clamped low) and the
 * scalar tail (lrintf on NaN/out-of-range is unspecified), so the
 * quantized value would depend on the element's position within the
 * row and the cross-ISA bit-identity guarantee does not cover them.
 */
void quantizeRow(int n, const float *x, float inv, std::int8_t *q);

/**
 * Activation quantization: q[i] = clamp(rne(x[i] * inv), 0, 127) —
 * ISA-dispatched, same rounding as quantizeRow. The unsigned clamp
 * matches the non-negative activation domain (see file header); this
 * is the only valid producer of qgemmAccPanels / qdot A operands.
 *
 * @pre Every x[i] is finite (same contract as quantizeRow).
 */
void quantizeRowU(int n, const float *x, float inv, std::int8_t *q);

/** Bytes qgemmPackPanels needs for a k x n B matrix. */
std::size_t qgemmPanelBytes(int n, int k);

/**
 * Quantize-and-pack row-major B[k x n] (row stride @p ldb) into the
 * quad-interleaved int8 panel layout. @p colInv holds the per-column
 * inverse scales (127 / maxabs of column j); quantization uses the
 * same rne+clamp as quantizeRow. k is zero-padded to a multiple of
 * kQuantPanelDepth.
 */
void qgemmPackPanels(int n, int k, const float *b, int ldb,
                     const float *colInv, std::int8_t *panels);

/**
 * C[m x n] += A[m x k] * B (int32 accumulate), B packed by
 * qgemmPackPanels. A rows are unsigned activation bytes in [0, 127]
 * (produced by quantizeRowU), zero-padded to qrowStride(k)
 * (@p lda >= qrowStride(k)); bytes above 127 are outside the
 * contract (the AVX2 path saturates intermediates, the scalar path
 * does not). Exact integer arithmetic: results are identical across
 * ISAs. The caller pre-fills C (usually zero).
 */
void qgemmAccPanels(int m, int n, int k, const std::int8_t *a, int lda,
                    const std::int8_t *panels, std::int32_t *c,
                    int ldc);

/**
 * Exact int8 dot product with int32 accumulate (small-N path). Both
 * operands are read as signed; with A from quantizeRowU the result
 * matches the qgemmAccPanels interpretation exactly.
 */
std::int32_t qdot(int k, const std::int8_t *a, const std::int8_t *b);

/** Round-to-nearest-even float -> IEEE binary16 conversion. */
std::uint16_t floatToHalf(float v);

/** Exact IEEE binary16 -> float conversion. */
float halfToFloat(std::uint16_t h);

/** Halfs halfPackPanels needs for a k x n B matrix. */
std::size_t halfPanelSize(int n, int k);

/**
 * Pack row-major B[k x n] into kGemmPanelWidth-column half panels
 * (same geometry as gemmPackPanels, fp16 storage). Conversion is
 * floatToHalf (rne); the last panel is zero-padded.
 */
void halfPackPanels(int n, int k, const float *b, int ldb,
                    std::uint16_t *panels);

/**
 * C[m x n] += A[m x k] * half2float(B), B packed by halfPackPanels.
 * Same fp32 accumulation order as gemmAccPanels; bit-identical
 * across ISAs (the half->float loads are exact).
 */
void hgemmAccPanels(int m, int n, int k, const float *a, int lda,
                    const std::uint16_t *panels, float *c, int ldc);

/**
 * Int8 im2row: rows[patchCount][qrowStride(patchSize)] = patches of
 * in[I][H][W], rows zero-padded to the quad-aligned stride
 * qgemmAccPanels requires. The int8 twin of im2row (im2col.hh).
 */
void im2row8(const ConvSpec &spec, const std::int8_t *in,
             std::int8_t *rows);

} // namespace fa3c::nn::kernels

#endif // FA3C_NN_KERNELS_QUANT_HH
