#include "nn/kernels/threadpool.hh"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace fa3c::nn::kernels {

namespace {

int
resolveThreads()
{
    if (const char *env = std::getenv("FA3C_KERNEL_THREADS")) {
        const int v = std::atoi(env);
        if (v >= 1)
            return v;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned half = hw / 2;
    return static_cast<int>(half < 1 ? 1 : (half > 4 ? 4 : half));
}

/**
 * Fork-join pool: the submitting thread publishes a job under the
 * pool mutex, wakes the workers, claims tasks alongside them via an
 * atomic cursor, and waits for the completion count. Workers park on
 * the condition variable between jobs. The job function pointer is
 * only dereferenced after a task index is claimed, so a worker that
 * wakes up late (after the job completed and the pointer was
 * cleared) claims nothing and touches nothing.
 */
class Pool
{
  public:
    explicit Pool(int width)
    {
        for (int i = 0; i < width - 1; ++i)
            workers_.emplace_back([this] { workerMain(); });
    }

    ~Pool()
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto &t : workers_)
            t.join();
    }

    void
    run(int tasks, const std::function<void(int)> &fn)
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            fn_ = &fn;
            taskCount_ = tasks;
            next_.store(0, std::memory_order_relaxed);
            done_.store(0, std::memory_order_relaxed);
            ++gen_;
        }
        cv_.notify_all();
        drain(&fn, tasks);
        std::unique_lock<std::mutex> lk(m_);
        doneCv_.wait(lk, [&] {
            return done_.load(std::memory_order_acquire) == tasks;
        });
        fn_ = nullptr;
    }

  private:
    void
    drain(const std::function<void(int)> *fn, int tasks)
    {
        for (;;) {
            const int t = next_.fetch_add(1, std::memory_order_relaxed);
            if (t >= tasks)
                return;
            // Claiming t < tasks pins the job alive: run() cannot
            // return (and destroy fn) until this task's done_ lands.
            (*fn)(t);
            if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                tasks) {
                std::lock_guard<std::mutex> lk(m_);
                doneCv_.notify_one();
            }
        }
    }

    void
    workerMain()
    {
        std::uint64_t seen = 0;
        for (;;) {
            const std::function<void(int)> *fn;
            int tasks;
            {
                std::unique_lock<std::mutex> lk(m_);
                cv_.wait(lk, [&] { return stop_ || gen_ != seen; });
                if (stop_)
                    return;
                seen = gen_;
                fn = fn_;
                tasks = taskCount_;
            }
            if (fn != nullptr)
                drain(fn, tasks);
        }
    }

    std::mutex m_;
    std::condition_variable cv_;
    std::condition_variable doneCv_;
    std::vector<std::thread> workers_;
    const std::function<void(int)> *fn_ = nullptr;
    int taskCount_ = 0;
    std::uint64_t gen_ = 0;
    bool stop_ = false;
    std::atomic<int> next_{0};
    std::atomic<int> done_{0};
};

std::mutex &
poolGate()
{
    static std::mutex gate;
    return gate;
}

Pool &
pool()
{
    static Pool p(kernelThreads());
    return p;
}

} // namespace

int
kernelThreads()
{
    static const int n = resolveThreads();
    return n;
}

void
parallelFor(int tasks, const std::function<void(int)> &fn)
{
    if (tasks <= 1 || kernelThreads() <= 1) {
        for (int t = 0; t < tasks; ++t)
            fn(t);
        return;
    }
    std::unique_lock<std::mutex> lk(poolGate(), std::try_to_lock);
    if (!lk.owns_lock()) {
        // Another thread owns the pool; inline is both correct and
        // the better schedule (the callers are already parallel).
        for (int t = 0; t < tasks; ++t)
            fn(t);
        return;
    }
    pool().run(tasks, fn);
}

} // namespace fa3c::nn::kernels
