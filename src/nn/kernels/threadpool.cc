#include "nn/kernels/threadpool.hh"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace fa3c::nn::kernels {

namespace {

int
resolveThreads()
{
    if (const char *env = std::getenv("FA3C_KERNEL_THREADS")) {
        const int v = std::atoi(env);
        if (v >= 1)
            return v;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned half = hw / 2;
    return static_cast<int>(half < 1 ? 1 : (half > 4 ? 4 : half));
}

/**
 * Fork-join pool: the submitting thread publishes a job under the
 * pool mutex, wakes the workers, claims tasks alongside them via an
 * atomic cursor, and waits for the completion count. Workers park on
 * the condition variable between jobs.
 *
 * The cursor packs (generation, next task index) into one 64-bit
 * atomic, and a claim is a CAS that only succeeds while the cursor
 * still carries the claimer's generation. A worker that captured job
 * N but stalls until job N+1 is published therefore cannot claim one
 * of N+1's tasks through N's (now dangling) function pointer, nor
 * bump N+1's completion count for work it never did: its CAS sees a
 * different generation and the worker goes back to sleep. A
 * successful claim conversely pins the job alive — run() cannot
 * return (and let the caller destroy the std::function) until that
 * task's done_ increment lands.
 */
class Pool
{
  public:
    explicit Pool(int width)
    {
        for (int i = 0; i < width - 1; ++i)
            workers_.emplace_back([this] { workerMain(); });
    }

    ~Pool()
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto &t : workers_)
            t.join();
    }

    void
    run(int tasks, const std::function<void(int)> &fn)
    {
        std::uint64_t gen;
        {
            std::lock_guard<std::mutex> lk(m_);
            fn_ = &fn;
            taskCount_ = tasks;
            gen = ++gen_;
            done_.store(0, std::memory_order_relaxed);
            // Publishing the new generation in the cursor invalidates
            // every outstanding claim attempt from older jobs; done_
            // was safely reset above because the previous run() only
            // returned once all of its claims had drained.
            cursor_.store((gen & 0xffffffffu) << 32,
                          std::memory_order_release);
        }
        cv_.notify_all();
        drain(&fn, tasks, gen);
        std::unique_lock<std::mutex> lk(m_);
        doneCv_.wait(lk, [&] {
            return done_.load(std::memory_order_acquire) == tasks;
        });
        fn_ = nullptr;
    }

  private:
    void
    drain(const std::function<void(int)> *fn, int tasks,
          std::uint64_t gen)
    {
        gen &= 0xffffffffu; // cursor carries the low 32 bits only
        std::uint64_t cur = cursor_.load(std::memory_order_acquire);
        for (;;) {
            if ((cur >> 32) != gen)
                return; // a newer job owns the cursor; ours is done
            const int t = static_cast<int>(cur & 0xffffffffu);
            if (t >= tasks)
                return;
            if (!cursor_.compare_exchange_weak(
                    cur,
                    (gen << 32) | static_cast<std::uint32_t>(t + 1),
                    std::memory_order_acq_rel,
                    std::memory_order_acquire))
                continue;
            // A successful claim pins the job alive: run() cannot
            // return (and destroy fn) until this task's done_ lands.
            (*fn)(t);
            if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                tasks) {
                std::lock_guard<std::mutex> lk(m_);
                doneCv_.notify_one();
            }
            cur = cursor_.load(std::memory_order_acquire);
        }
    }

    void
    workerMain()
    {
        std::uint64_t seen = 0;
        for (;;) {
            const std::function<void(int)> *fn;
            int tasks;
            {
                std::unique_lock<std::mutex> lk(m_);
                cv_.wait(lk, [&] { return stop_ || gen_ != seen; });
                if (stop_)
                    return;
                seen = gen_;
                fn = fn_;
                tasks = taskCount_;
            }
            if (fn != nullptr)
                drain(fn, tasks, seen);
        }
    }

    std::mutex m_;
    std::condition_variable cv_;
    std::condition_variable doneCv_;
    std::vector<std::thread> workers_;
    const std::function<void(int)> *fn_ = nullptr;
    int taskCount_ = 0;
    std::uint64_t gen_ = 0;
    bool stop_ = false;
    /// (generation << 32) | next-task-index; claims CAS the low half
    /// and are rejected once the high half moves past their job. The
    /// 32-bit generation wraps after 2^32 jobs; a worker would have
    /// to sleep across that entire span for ABA, which the cv wakeup
    /// per job makes unreachable in practice.
    std::atomic<std::uint64_t> cursor_{0};
    std::atomic<int> done_{0};
};

std::mutex &
poolGate()
{
    static std::mutex gate;
    return gate;
}

Pool &
pool()
{
    static Pool p(kernelThreads());
    return p;
}

} // namespace

int
kernelThreads()
{
    static const int n = resolveThreads();
    return n;
}

void
parallelFor(int tasks, const std::function<void(int)> &fn)
{
    if (tasks <= 1 || kernelThreads() <= 1) {
        for (int t = 0; t < tasks; ++t)
            fn(t);
        return;
    }
    std::unique_lock<std::mutex> lk(poolGate(), std::try_to_lock);
    if (!lk.owns_lock()) {
        // Another thread owns the pool; inline is both correct and
        // the better schedule (the callers are already parallel).
        for (int t = 0; t < tasks; ++t)
            fn(t);
        return;
    }
    pool().run(tasks, fn);
}

} // namespace fa3c::nn::kernels
