/**
 * @file
 * Minimal fork-join worker pool for the batched-forward GEMMs.
 *
 * Work is split by the caller into deterministic index ranges (column
 * strips or row blocks), so every output element is computed by
 * exactly one task in exactly the same order regardless of the thread
 * count — parallelism never changes results, only wall clock.
 *
 * The pool is a lazily-created process singleton sized by
 * FA3C_KERNEL_THREADS (default: half the hardware threads, capped at
 * 4; 1 disables it). Only one parallelFor runs on the pool at a
 * time: concurrent callers (e.g. several serve workers) fail the
 * try_lock and simply run their loop inline, which is the right call
 * anyway — they are already each other's parallelism.
 */

#ifndef FA3C_NN_KERNELS_THREADPOOL_HH
#define FA3C_NN_KERNELS_THREADPOOL_HH

#include <functional>

namespace fa3c::nn::kernels {

/** Resolved pool width (>= 1), read once from FA3C_KERNEL_THREADS. */
int kernelThreads();

/**
 * Run fn(task) for every task in [0, tasks), distributed over the
 * pool; returns when all tasks finished. Tasks must be independent.
 * Runs inline when the pool is width 1, busy, or tasks <= 1.
 */
void parallelFor(int tasks, const std::function<void(int)> &fn);

} // namespace fa3c::nn::kernels

#endif // FA3C_NN_KERNELS_THREADPOOL_HH
