#include "nn/layers.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace fa3c::nn {

std::size_t
ConvSpec::weightCount() const
{
    return static_cast<std::size_t>(outChannels) *
           static_cast<std::size_t>(inChannels) *
           static_cast<std::size_t>(kernel) *
           static_cast<std::size_t>(kernel);
}

std::size_t
ConvSpec::fwMacs() const
{
    return static_cast<std::size_t>(outHeight()) *
           static_cast<std::size_t>(outWidth()) * weightCount();
}

namespace {

/** Flat index into a [O][I][K][K] weight block. */
inline std::size_t
wIdx(const ConvSpec &s, int o, int i, int kr, int kc)
{
    return ((static_cast<std::size_t>(o) *
                 static_cast<std::size_t>(s.inChannels) +
             static_cast<std::size_t>(i)) *
                static_cast<std::size_t>(s.kernel) +
            static_cast<std::size_t>(kr)) *
               static_cast<std::size_t>(s.kernel) +
           static_cast<std::size_t>(kc);
}

} // namespace

void
convForward(const ConvSpec &spec, const Tensor &in,
            std::span<const float> w, std::span<const float> b,
            Tensor &out)
{
    FA3C_ASSERT(in.shape() ==
                    tensor::Shape({spec.inChannels, spec.inHeight,
                                   spec.inWidth}),
                "convForward input shape ", in.shape().str());
    FA3C_ASSERT(w.size() == spec.weightCount(), "convForward weights");
    FA3C_ASSERT(b.size() == spec.biasCount(), "convForward biases");
    const int oh = spec.outHeight();
    const int ow = spec.outWidth();
    FA3C_ASSERT(out.shape() ==
                    tensor::Shape({spec.outChannels, oh, ow}),
                "convForward output shape ", out.shape().str());

    const float *in_data = in.data().data();
    for (int o = 0; o < spec.outChannels; ++o) {
        for (int r = 0; r < oh; ++r) {
            for (int c = 0; c < ow; ++c) {
                float acc = b[static_cast<std::size_t>(o)];
                for (int i = 0; i < spec.inChannels; ++i) {
                    for (int kr = 0; kr < spec.kernel; ++kr) {
                        const int y = r * spec.stride + kr;
                        // Weight/input row bases hoisted out of the
                        // kc loop (both rows are contiguous in kc).
                        const float *w_row =
                            w.data() + wIdx(spec, o, i, kr, 0);
                        const float *in_row =
                            in_data +
                            (static_cast<std::size_t>(i) *
                                 static_cast<std::size_t>(
                                     spec.inHeight) +
                             static_cast<std::size_t>(y)) *
                                static_cast<std::size_t>(spec.inWidth) +
                            static_cast<std::size_t>(c * spec.stride);
                        for (int kc = 0; kc < spec.kernel; ++kc)
                            acc += in_row[kc] * w_row[kc];
                    }
                }
                out.at(o, r, c) = acc;
            }
        }
    }
}

void
convBackward(const ConvSpec &spec, const Tensor &g_out,
             std::span<const float> w, Tensor &g_in)
{
    const int oh = spec.outHeight();
    const int ow = spec.outWidth();
    FA3C_ASSERT(g_out.shape() ==
                    tensor::Shape({spec.outChannels, oh, ow}),
                "convBackward g_out shape");
    FA3C_ASSERT(g_in.shape() ==
                    tensor::Shape({spec.inChannels, spec.inHeight,
                                   spec.inWidth}),
                "convBackward g_in shape");
    g_in.zero();

    for (int o = 0; o < spec.outChannels; ++o) {
        for (int r = 0; r < oh; ++r) {
            for (int c = 0; c < ow; ++c) {
                const float g = g_out.at(o, r, c);
                for (int i = 0; i < spec.inChannels; ++i) {
                    for (int kr = 0; kr < spec.kernel; ++kr) {
                        const float *w_row =
                            w.data() + wIdx(spec, o, i, kr, 0);
                        float *g_row =
                            &g_in.at(i, r * spec.stride + kr,
                                     c * spec.stride);
                        for (int kc = 0; kc < spec.kernel; ++kc)
                            g_row[kc] += g * w_row[kc];
                    }
                }
            }
        }
    }
}

void
convGradient(const ConvSpec &spec, const Tensor &in, const Tensor &g_out,
             std::span<float> g_w, std::span<float> g_b)
{
    const int oh = spec.outHeight();
    const int ow = spec.outWidth();
    FA3C_ASSERT(g_w.size() == spec.weightCount(), "convGradient g_w");
    FA3C_ASSERT(g_b.size() == spec.biasCount(), "convGradient g_b");

    const float *go_data = g_out.data().data();
    const float *in_data = in.data().data();
    for (int o = 0; o < spec.outChannels; ++o) {
        for (int r = 0; r < oh; ++r)
            for (int c = 0; c < ow; ++c)
                g_b[static_cast<std::size_t>(o)] += g_out.at(o, r, c);
        for (int i = 0; i < spec.inChannels; ++i) {
            for (int kr = 0; kr < spec.kernel; ++kr) {
                // One weight row per (o, i, kr): index the row base
                // once instead of re-running the wIdx multiply chain
                // in the kc loop.
                float *gw_row = g_w.data() + wIdx(spec, o, i, kr, 0);
                for (int kc = 0; kc < spec.kernel; ++kc) {
                    float acc = 0.0f;
                    for (int r = 0; r < oh; ++r) {
                        const int y = r * spec.stride + kr;
                        const float *go_row =
                            go_data + (static_cast<std::size_t>(o) *
                                           static_cast<std::size_t>(oh) +
                                       static_cast<std::size_t>(r)) *
                                          static_cast<std::size_t>(ow);
                        const float *in_row =
                            in_data +
                            (static_cast<std::size_t>(i) *
                                 static_cast<std::size_t>(
                                     spec.inHeight) +
                             static_cast<std::size_t>(y)) *
                                static_cast<std::size_t>(spec.inWidth) +
                            static_cast<std::size_t>(kc);
                        for (int c = 0; c < ow; ++c)
                            acc += go_row[c] *
                                   in_row[static_cast<std::size_t>(
                                       c * spec.stride)];
                    }
                    gw_row[kc] += acc;
                }
            }
        }
    }
}

void
fcForward(const FcSpec &spec, const Tensor &in, std::span<const float> w,
          std::span<const float> b, Tensor &out)
{
    FA3C_ASSERT(in.numel() ==
                    static_cast<std::size_t>(spec.inFeatures),
                "fcForward input size");
    FA3C_ASSERT(out.numel() ==
                    static_cast<std::size_t>(spec.outFeatures),
                "fcForward output size");
    FA3C_ASSERT(w.size() == spec.weightCount(), "fcForward weights");
    auto in_data = in.data();
    for (int o = 0; o < spec.outFeatures; ++o) {
        float acc = b[static_cast<std::size_t>(o)];
        const std::size_t row = static_cast<std::size_t>(o) *
                                static_cast<std::size_t>(spec.inFeatures);
        for (int i = 0; i < spec.inFeatures; ++i)
            acc += in_data[static_cast<std::size_t>(i)] *
                   w[row + static_cast<std::size_t>(i)];
        out[static_cast<std::size_t>(o)] = acc;
    }
}

void
fcBackward(const FcSpec &spec, const Tensor &g_out,
           std::span<const float> w, Tensor &g_in)
{
    FA3C_ASSERT(g_out.numel() ==
                    static_cast<std::size_t>(spec.outFeatures),
                "fcBackward g_out size");
    FA3C_ASSERT(g_in.numel() ==
                    static_cast<std::size_t>(spec.inFeatures),
                "fcBackward g_in size");
    auto g_out_data = g_out.data();
    for (int i = 0; i < spec.inFeatures; ++i) {
        float acc = 0.0f;
        for (int o = 0; o < spec.outFeatures; ++o)
            acc += g_out_data[static_cast<std::size_t>(o)] *
                   w[static_cast<std::size_t>(o) *
                         static_cast<std::size_t>(spec.inFeatures) +
                     static_cast<std::size_t>(i)];
        g_in[static_cast<std::size_t>(i)] = acc;
    }
}

void
fcGradient(const FcSpec &spec, const Tensor &in, const Tensor &g_out,
           std::span<float> g_w, std::span<float> g_b)
{
    auto in_data = in.data();
    auto g_out_data = g_out.data();
    for (int o = 0; o < spec.outFeatures; ++o) {
        const float g = g_out_data[static_cast<std::size_t>(o)];
        g_b[static_cast<std::size_t>(o)] += g;
        const std::size_t row = static_cast<std::size_t>(o) *
                                static_cast<std::size_t>(spec.inFeatures);
        for (int i = 0; i < spec.inFeatures; ++i)
            g_w[row + static_cast<std::size_t>(i)] +=
                g * in_data[static_cast<std::size_t>(i)];
    }
}

void
reluForward(const Tensor &in, Tensor &out)
{
    FA3C_ASSERT(in.shape() == out.shape(), "reluForward shape mismatch");
    auto src = in.data();
    auto dst = out.data();
    for (std::size_t i = 0; i < src.size(); ++i)
        dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
}

void
reluBackward(const Tensor &pre, const Tensor &g_out, Tensor &g_in)
{
    FA3C_ASSERT(pre.shape() == g_out.shape() &&
                    pre.shape() == g_in.shape(),
                "reluBackward shape mismatch");
    auto p = pre.data();
    auto go = g_out.data();
    auto gi = g_in.data();
    for (std::size_t i = 0; i < p.size(); ++i)
        gi[i] = p[i] > 0.0f ? go[i] : 0.0f;
}

void
softmax(std::span<const float> logits, std::span<float> probs)
{
    FA3C_ASSERT(logits.size() == probs.size() && !logits.empty(),
                "softmax size mismatch");
    const float max_logit = *std::max_element(logits.begin(), logits.end());
    float denom = 0.0f;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        probs[i] = std::exp(logits[i] - max_logit);
        denom += probs[i];
    }
    for (float &p : probs)
        p /= denom;
}

float
entropy(std::span<const float> probs)
{
    float h = 0.0f;
    for (float p : probs)
        if (p > 0.0f)
            h -= p * std::log(p);
    return h;
}

} // namespace fa3c::nn
