/**
 * @file
 * Reference implementations of the DNN layer computations used by A3C:
 * convolution and fully-connected layers with all three computation
 * types the paper distinguishes (forward propagation FW, backward
 * propagation BW, gradient computation GC), plus ReLU and softmax.
 *
 * These are the golden models: the FA3C functional datapath model in
 * src/fa3c is validated against them.
 */

#ifndef FA3C_NN_LAYERS_HH
#define FA3C_NN_LAYERS_HH

#include <span>

#include "tensor/tensor.hh"

namespace fa3c::nn {

using tensor::Tensor;

/** Geometry of a convolution layer (square filters, no padding). */
struct ConvSpec
{
    int inChannels;  ///< I
    int inHeight;    ///< input rows
    int inWidth;     ///< input cols
    int outChannels; ///< O
    int kernel;      ///< K (filters are K x K)
    int stride;      ///< S

    /** Output feature-map height: (inHeight - kernel) / stride + 1. */
    int outHeight() const { return (inHeight - kernel) / stride + 1; }
    /** Output feature-map width. */
    int outWidth() const { return (inWidth - kernel) / stride + 1; }
    /** Number of weights: O * I * K * K. */
    std::size_t weightCount() const;
    /** Number of biases: O. */
    std::size_t biasCount() const
    {
        return static_cast<std::size_t>(outChannels);
    }
    /** MACs for one FW pass. */
    std::size_t fwMacs() const;
};

/** Geometry of a fully-connected layer. */
struct FcSpec
{
    int inFeatures;  ///< I
    int outFeatures; ///< O

    /** Number of weights: O * I (row-major [O][I]). */
    std::size_t weightCount() const
    {
        return static_cast<std::size_t>(outFeatures) *
               static_cast<std::size_t>(inFeatures);
    }
    std::size_t biasCount() const
    {
        return static_cast<std::size_t>(outFeatures);
    }
    std::size_t fwMacs() const { return weightCount(); }
};

/**
 * Convolution forward propagation.
 *
 * @param spec   Layer geometry.
 * @param in     Input feature maps, shape [I, H, W].
 * @param w      Weights, layout [O][I][K][K].
 * @param b      Biases, length O.
 * @param out    Output feature maps, shape [O, OH, OW] (overwritten).
 */
void convForward(const ConvSpec &spec, const Tensor &in,
                 std::span<const float> w, std::span<const float> b,
                 Tensor &out);

/**
 * Convolution backward propagation: gradients of the input feature
 * maps from gradients of the output feature maps.
 *
 * @param g_out  Gradients w.r.t. outputs, shape [O, OH, OW].
 * @param g_in   Gradients w.r.t. inputs, shape [I, H, W] (overwritten).
 */
void convBackward(const ConvSpec &spec, const Tensor &g_out,
                  std::span<const float> w, Tensor &g_in);

/**
 * Convolution gradient computation: gradients of the parameters.
 *
 * Accumulates into @p g_w / @p g_b (callers zero them per batch).
 *
 * @param in     The FW input feature maps (reloaded from DRAM in FA3C).
 * @param g_out  Gradients w.r.t. outputs.
 * @param g_w    Weight gradients, layout [O][I][K][K], accumulated.
 * @param g_b    Bias gradients, length O, accumulated.
 */
void convGradient(const ConvSpec &spec, const Tensor &in,
                  const Tensor &g_out, std::span<float> g_w,
                  std::span<float> g_b);

/** Fully-connected forward: out = W * in + b. Shapes [I] -> [O]. */
void fcForward(const FcSpec &spec, const Tensor &in,
               std::span<const float> w, std::span<const float> b,
               Tensor &out);

/** Fully-connected backward: g_in = W^T * g_out. */
void fcBackward(const FcSpec &spec, const Tensor &g_out,
                std::span<const float> w, Tensor &g_in);

/** Fully-connected gradient: g_w += g_out * in^T; g_b += g_out. */
void fcGradient(const FcSpec &spec, const Tensor &in, const Tensor &g_out,
                std::span<float> g_w, std::span<float> g_b);

/** ReLU forward: out = max(0, in). Shapes must match. */
void reluForward(const Tensor &in, Tensor &out);

/**
 * ReLU backward: g_in = g_out where pre-activation was positive.
 *
 * @param pre    The pre-activation values from FW.
 */
void reluBackward(const Tensor &pre, const Tensor &g_out, Tensor &g_in);

/**
 * Numerically stable softmax over @p logits.
 *
 * @param logits Raw scores.
 * @param probs  Output probabilities (same length, overwritten).
 */
void softmax(std::span<const float> logits, std::span<float> probs);

/** Entropy of a probability vector: -sum p log p (natural log). */
float entropy(std::span<const float> probs);

} // namespace fa3c::nn

#endif // FA3C_NN_LAYERS_HH
