#include "nn/params.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace fa3c::nn {

ParamSet::ParamSet(
    const std::vector<std::pair<std::string, std::size_t>> &layout)
{
    std::size_t offset = 0;
    segments_.reserve(layout.size());
    for (const auto &[name, count] : layout) {
        FA3C_ASSERT(count > 0, "empty parameter segment ", name);
        segments_.push_back(Segment{name, offset, count});
        offset += count;
    }
    data_.assign(offset, 0.0f);
}

const ParamSet::Segment &
ParamSet::findSegment(const std::string &name) const
{
    for (const auto &seg : segments_)
        if (seg.name == name)
            return seg;
    FA3C_PANIC("unknown parameter segment '", name, "'");
}

std::span<float>
ParamSet::view(const std::string &name)
{
    const Segment &seg = findSegment(name);
    return std::span<float>(data_).subspan(seg.offset, seg.count);
}

std::span<const float>
ParamSet::view(const std::string &name) const
{
    const Segment &seg = findSegment(name);
    return std::span<const float>(data_).subspan(seg.offset, seg.count);
}

bool
ParamSet::sameLayout(const ParamSet &other) const
{
    if (segments_.size() != other.segments_.size())
        return false;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        if (segments_[i].name != other.segments_[i].name ||
            segments_[i].count != other.segments_[i].count)
            return false;
    }
    return true;
}

void
ParamSet::zero()
{
    std::fill(data_.begin(), data_.end(), 0.0f);
}

void
ParamSet::copyFrom(const ParamSet &other)
{
    FA3C_ASSERT(sameLayout(other), "copyFrom layout mismatch");
    data_ = other.data_;
}

void
ParamSet::axpy(float scale, const ParamSet &other)
{
    FA3C_ASSERT(sameLayout(other), "axpy layout mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += scale * other.data_[i];
}

float
ParamSet::maxAbsDiff(const ParamSet &a, const ParamSet &b)
{
    FA3C_ASSERT(a.sameLayout(b), "maxAbsDiff layout mismatch");
    float m = 0.0f;
    for (std::size_t i = 0; i < a.data_.size(); ++i)
        m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
    return m;
}

} // namespace fa3c::nn
