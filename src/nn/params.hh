/**
 * @file
 * Flat parameter storage with named segments.
 *
 * A3C keeps a global parameter set plus one local snapshot per agent;
 * the FA3C DRAM layout model and the RMSProp module both operate on
 * flat word arrays, so parameters live in one contiguous buffer with
 * named views per layer ("conv1.w", "fc3.b", ...).
 */

#ifndef FA3C_NN_PARAMS_HH
#define FA3C_NN_PARAMS_HH

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "sim/rng.hh"

namespace fa3c::nn {

/**
 * A contiguous float buffer partitioned into named segments.
 *
 * Identical layouts (same segment names/sizes in the same order) can
 * be copied and combined elementwise; this is what parameter sync and
 * gradient application do.
 */
class ParamSet
{
  public:
    /** One named slice of the flat buffer. */
    struct Segment
    {
        std::string name;
        std::size_t offset;
        std::size_t count;
    };

    ParamSet() = default;

    /**
     * Build from (name, element-count) pairs, zero-initialized.
     */
    explicit ParamSet(
        const std::vector<std::pair<std::string, std::size_t>> &layout);

    /** Total number of float elements. */
    std::size_t size() const { return data_.size(); }

    /** Total size in bytes (4 bytes per parameter). */
    std::size_t sizeBytes() const { return data_.size() * sizeof(float); }

    /** Mutable view of the named segment. Panics on unknown names. */
    std::span<float> view(const std::string &name);

    /** Const view of the named segment. */
    std::span<const float> view(const std::string &name) const;

    /** Mutable view of the whole buffer. */
    std::span<float> flat() { return data_; }

    /** Const view of the whole buffer. */
    std::span<const float> flat() const { return data_; }

    /** The segment table, in layout order. */
    const std::vector<Segment> &segments() const { return segments_; }

    /** True when @p other has the identical segment layout. */
    bool sameLayout(const ParamSet &other) const;

    /** Set every element to zero. */
    void zero();

    /** Copy all values from a layout-identical set (parameter sync). */
    void copyFrom(const ParamSet &other);

    /** this += scale * other (elementwise, layout-identical). */
    void axpy(float scale, const ParamSet &other);

    /** Max |a-b| across two layout-identical sets. */
    static float maxAbsDiff(const ParamSet &a, const ParamSet &b);

  private:
    std::vector<float> data_;
    std::vector<Segment> segments_;

    const Segment &findSegment(const std::string &name) const;
};

} // namespace fa3c::nn

#endif // FA3C_NN_PARAMS_HH
