#include "nn/quant_params.hh"

#include <cstring>

#include "nn/kernels/fc.hh"
#include "nn/kernels/gemm.hh"
#include "nn/kernels/im2col.hh"
#include "nn/kernels/quant.hh"

namespace fa3c::nn {

namespace {

/** Per-row maxabs -> (dequant scale sw, inverse 127/maxabs). */
void
rowScales(const float *w, int rows, int cols, std::vector<float> &sw,
          std::vector<float> &inv)
{
    sw.resize(static_cast<std::size_t>(rows));
    inv.resize(static_cast<std::size_t>(rows));
    for (int o = 0; o < rows; ++o) {
        const float m = kernels::rowMaxAbs(
            w + static_cast<std::size_t>(o) *
                    static_cast<std::size_t>(cols),
            static_cast<std::size_t>(cols));
        // A zero row quantizes to zeros with scale 0 (the inverse is
        // forced to 0 so no inf*0 NaN can reach the rounding).
        sw[static_cast<std::size_t>(o)] = m / 127.0f;
        inv[static_cast<std::size_t>(o)] = m > 0.0f ? 127.0f / m : 0.0f;
    }
}

/**
 * Pack canonical w[rows x cols] for use as the qgemm B operand
 * (wT[cols x rows] panels, one column per output row of w).
 */
QuantizedModel::Int8Panels
packInt8(const float *w, int rows, int cols)
{
    QuantizedModel::Int8Panels out;
    std::vector<float> inv;
    rowScales(w, rows, cols, out.scale, inv);
    std::vector<float> wT(static_cast<std::size_t>(rows) *
                          static_cast<std::size_t>(cols));
    kernels::transpose(w, rows, cols, wT.data());
    out.panels.resize(kernels::qgemmPanelBytes(rows, cols));
    kernels::qgemmPackPanels(rows, cols, wT.data(), rows, inv.data(),
                             out.panels.data());
    return out;
}

/** Quantize canonical w rows in place for the small dot path. */
QuantizedModel::Int8Rows
packInt8Rows(const float *w, int rows, int cols)
{
    QuantizedModel::Int8Rows out;
    std::vector<float> inv;
    rowScales(w, rows, cols, out.scale, inv);
    const std::size_t stride =
        static_cast<std::size_t>(kernels::qrowStride(cols));
    out.rows.assign(static_cast<std::size_t>(rows) * stride, 0);
    for (int o = 0; o < rows; ++o)
        kernels::quantizeRow(
            cols,
            w + static_cast<std::size_t>(o) *
                    static_cast<std::size_t>(cols),
            inv[static_cast<std::size_t>(o)],
            out.rows.data() + static_cast<std::size_t>(o) * stride);
    return out;
}

/** halfPackPanels of wT[cols x rows] (the fp32 panel geometry). */
std::vector<std::uint16_t>
packHalf(const float *w, int rows, int cols)
{
    std::vector<float> wT(static_cast<std::size_t>(rows) *
                          static_cast<std::size_t>(cols));
    kernels::transpose(w, rows, cols, wT.data());
    std::vector<std::uint16_t> panels(
        kernels::halfPanelSize(rows, cols));
    kernels::halfPackPanels(rows, cols, wT.data(), rows,
                            panels.data());
    return panels;
}

} // namespace

QuantizedModel
quantizeModel(const A3cNetwork &net, const ParamSet &params,
              QuantMode mode)
{
    QuantizedModel q;
    q.mode = mode;
    const auto conv1W = params.view("conv1.w");
    const auto conv2W = params.view("conv2.w");
    const auto fc3W = params.view("fc3.w");
    const auto fc4W = params.view("fc4.w");
    const int fc3In = net.fc3().inFeatures;
    const int fc3Out = net.fc3().outFeatures;
    const int fc4In = net.fc4().inFeatures;
    const int fc4Out = net.fc4().outFeatures;
    q.fc4Small = fc4Out < kernels::kSmallFcMaxOut;
    if (mode == QuantMode::Int8) {
        const int taps1 = static_cast<int>(kernels::patchSize(net.conv1()));
        const int taps2 = static_cast<int>(kernels::patchSize(net.conv2()));
        q.conv1 = packInt8(conv1W.data(), net.conv1().outChannels,
                           taps1);
        q.conv2 = packInt8(conv2W.data(), net.conv2().outChannels,
                           taps2);
        q.fc3 = packInt8(fc3W.data(), fc3Out, fc3In);
        if (q.fc4Small)
            q.fc4Rows = packInt8Rows(fc4W.data(), fc4Out, fc4In);
        else
            q.fc4 = packInt8(fc4W.data(), fc4Out, fc4In);
    } else {
        q.fc3Half = packHalf(fc3W.data(), fc3Out, fc3In);
        if (!q.fc4Small)
            q.fc4Half = packHalf(fc4W.data(), fc4Out, fc4In);
    }
    return q;
}

} // namespace fa3c::nn
