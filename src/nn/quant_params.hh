/**
 * @file
 * Quantized parameter images for the inference backends.
 *
 * quantizeModel() derives, from a fp32 ParamSet, the staged weight
 * images the quantized backends consume:
 *
 *  - Int8: per-output-channel symmetric int8 weights (scale
 *    maxabs/127) for both conv layers and both FC layers, packed
 *    into the quad-interleaved qgemm panel layout (kernels/quant.hh);
 *    a small-output FC head (fc4) instead keeps canonical int8 rows
 *    for the dot-product path.
 *  - Fp16: IEEE-half storage of the FC weight panels (the conv trunk
 *    stays fp32 — its weights are a rounding error of the model size,
 *    and the fp32 conv kernels already stream them well).
 *
 * Building an image costs one pass over the weights, so serving
 * stages it once per publish (serve::ModelRegistry quantizes on
 * publish and shares the image across all scheduler workers via
 * shared_ptr); trainer-side backends fall back to quantizing inside
 * onParamSync. Biases are not quantized — dequantization adds them
 * in fp32.
 */

#ifndef FA3C_NN_QUANT_PARAMS_HH
#define FA3C_NN_QUANT_PARAMS_HH

#include <cstdint>
#include <vector>

#include "nn/a3c_network.hh"
#include "nn/params.hh"

namespace fa3c::nn {

/** Which quantized image quantizeModel should build. */
enum class QuantMode
{
    Int8,
    Fp16,
};

/** Staged quantized weights for one network (see file comment). */
struct QuantizedModel
{
    /** Int8 GEMM operand: panels of wT plus per-output dequant. */
    struct Int8Panels
    {
        std::vector<std::int8_t> panels; ///< qgemmPackPanels layout
        std::vector<float> scale;        ///< sw[o] = maxabs(row o)/127
    };

    /** Small-output FC head: canonical int8 rows for the dot path. */
    struct Int8Rows
    {
        std::vector<std::int8_t> rows; ///< [O][qrowStride(I)], zero-pad
        std::vector<float> scale;      ///< sw[o]
    };

    QuantMode mode = QuantMode::Int8;

    // Int8 image.
    Int8Panels conv1;
    Int8Panels conv2;
    Int8Panels fc3;
    Int8Panels fc4;     ///< only when fc4 is panel-sized
    Int8Rows fc4Rows;   ///< only when fc4 is small (the usual case)
    bool fc4Small = false;

    // Fp16 image (FC layers; fc4 only when panel-sized — a small
    // fc4 head reads the fp32 params directly, its weights are tiny).
    std::vector<std::uint16_t> fc3Half;
    std::vector<std::uint16_t> fc4Half;
};

/** Build the quantized image of @p params for @p net. */
QuantizedModel quantizeModel(const A3cNetwork &net,
                             const ParamSet &params, QuantMode mode);

} // namespace fa3c::nn

#endif // FA3C_NN_QUANT_PARAMS_HH
