#include "nn/rmsprop.hh"

#include <cmath>

#include "sim/logging.hh"

namespace fa3c::nn {

void
rmspropApply(std::span<float> theta, std::span<float> g,
             std::span<const float> grad, float learning_rate,
             const RmspropConfig &cfg)
{
    FA3C_ASSERT(theta.size() == g.size() && theta.size() == grad.size(),
                "rmspropApply size mismatch");
    const float one_minus_decay = 1.0f - cfg.decay;
    for (std::size_t i = 0; i < theta.size(); ++i) {
        const float d = grad[i];
        g[i] = cfg.decay * g[i] + one_minus_decay * d * d;
        theta[i] -= learning_rate * d / std::sqrt(g[i] + cfg.epsilon);
    }
}

} // namespace fa3c::nn
