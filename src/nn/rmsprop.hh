/**
 * @file
 * Shared RMSProp, the optimizer A3C applies to the global parameters.
 *
 * The update implemented here is exactly the per-word pipeline of the
 * paper's RU (Figure 5): for each parameter with gradient d,
 *
 *     g'     = rho * g + (1 - rho) * d^2
 *     theta' = theta - eta * d / sqrt(g' + epsilon)
 *
 * The statistics g are *shared* across all agents (one g per global
 * parameter), matching the "shared RMSProp" variant the A3C paper and
 * FA3C use.
 */

#ifndef FA3C_NN_RMSPROP_HH
#define FA3C_NN_RMSPROP_HH

#include <span>

namespace fa3c::nn {

/** Constant RMSProp parameters (rho and epsilon in Figure 5). */
struct RmspropConfig
{
    float decay = 0.99f;   ///< rho
    float epsilon = 0.1f;  ///< added inside the sqrt
};

/**
 * Apply one RMSProp update in place.
 *
 * @param theta     Parameters to update.
 * @param g         Shared second-moment statistics (same length).
 * @param grad      Gradients (same length).
 * @param learning_rate  eta for this update.
 * @param cfg       Constant rho / epsilon.
 */
void rmspropApply(std::span<float> theta, std::span<float> g,
                  std::span<const float> grad, float learning_rate,
                  const RmspropConfig &cfg);

} // namespace fa3c::nn

#endif // FA3C_NN_RMSPROP_HH
