#include "nn/serialize.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "sim/serial.hh"

namespace fa3c::nn {

namespace {

constexpr std::uint32_t magicWord = 0xFA3C0001;

/** Header preceding the payload: magic, version, size, CRC32. */
struct ImageHeader
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint32_t payloadSize;
    std::uint32_t payloadCrc;
};

} // namespace

std::string
paramsToImage(const ParamSet &params)
{
    sim::ByteWriter payload;
    payload.write(
        static_cast<std::uint32_t>(params.segments().size()));
    for (const auto &seg : params.segments()) {
        payload.writeBlob(seg.name);
        payload.write(static_cast<std::uint32_t>(seg.count));
    }
    auto flat = params.flat();
    payload.writeRaw(flat.data(), flat.size() * sizeof(float));

    ImageHeader header{magicWord, kParamFormatVersion,
                       static_cast<std::uint32_t>(payload.size()),
                       sim::crc32(payload.bytes().data(),
                                  payload.size())};
    sim::ByteWriter image;
    image.write(header);
    image.writeRaw(payload.bytes().data(), payload.size());
    return image.bytes();
}

bool
paramsFromImage(ParamSet &params, std::string_view image)
{
    sim::ByteReader reader(image);
    ImageHeader header{};
    if (!reader.read(header) || header.magic != magicWord ||
        header.version != kParamFormatVersion ||
        header.payloadSize != reader.remaining())
        return false;
    if (sim::crc32(image.data() + sizeof(ImageHeader),
                   header.payloadSize) != header.payloadCrc)
        return false;

    // Validate the full segment table against the destination layout
    // and stage the words before touching params.
    std::uint32_t seg_count = 0;
    if (!reader.read(seg_count) ||
        seg_count != params.segments().size())
        return false;
    for (const auto &seg : params.segments()) {
        std::string name;
        std::uint32_t count = 0;
        if (!reader.readBlob(name) || name != seg.name ||
            !reader.read(count) || count != seg.count)
            return false;
    }
    std::vector<float> staged(params.size());
    if (!reader.readRaw(staged.data(), staged.size() * sizeof(float)) ||
        reader.remaining() != 0)
        return false;

    std::copy(staged.begin(), staged.end(), params.flat().begin());
    return true;
}

bool
saveParams(const ParamSet &params, std::ostream &os)
{
    const std::string image = paramsToImage(params);
    os.write(image.data(), static_cast<std::streamsize>(image.size()));
    return static_cast<bool>(os);
}

bool
loadParams(ParamSet &params, std::istream &is)
{
    ImageHeader header{};
    std::string image(sizeof(ImageHeader), '\0');
    is.read(image.data(), sizeof(ImageHeader));
    if (!is)
        return false;
    std::memcpy(&header, image.data(), sizeof(ImageHeader));
    // Bound the allocation by what a matching layout could need
    // before trusting the stored size.
    const std::size_t plausible =
        params.sizeBytes() + 64 +
        params.segments().size() * (2 * sizeof(std::uint32_t) + 256);
    if (header.magic != magicWord || header.payloadSize > plausible)
        return false;
    image.resize(sizeof(ImageHeader) + header.payloadSize);
    is.read(image.data() + sizeof(ImageHeader), header.payloadSize);
    if (!is)
        return false;
    return paramsFromImage(params, image);
}

bool
saveParamsToFile(const ParamSet &params, const std::string &path)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os || !saveParams(params, os))
            return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
loadParamsFromFile(ParamSet &params, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return is && loadParams(params, is);
}

} // namespace fa3c::nn
