#include "nn/serialize.hh"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

namespace fa3c::nn {

namespace {

constexpr std::uint32_t magicWord = 0xFA3C0001;

void
writeU32(std::ostream &os, std::uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

bool
readU32(std::istream &is, std::uint32_t &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return static_cast<bool>(is);
}

} // namespace

bool
saveParams(const ParamSet &params, std::ostream &os)
{
    writeU32(os, magicWord);
    writeU32(os, static_cast<std::uint32_t>(params.segments().size()));
    for (const auto &seg : params.segments()) {
        writeU32(os, static_cast<std::uint32_t>(seg.name.size()));
        os.write(seg.name.data(),
                 static_cast<std::streamsize>(seg.name.size()));
        writeU32(os, static_cast<std::uint32_t>(seg.count));
    }
    auto flat = params.flat();
    os.write(reinterpret_cast<const char *>(flat.data()),
             static_cast<std::streamsize>(flat.size() * sizeof(float)));
    return static_cast<bool>(os);
}

bool
loadParams(ParamSet &params, std::istream &is)
{
    std::uint32_t magic = 0;
    if (!readU32(is, magic) || magic != magicWord)
        return false;
    std::uint32_t seg_count = 0;
    if (!readU32(is, seg_count) ||
        seg_count != params.segments().size())
        return false;
    for (const auto &seg : params.segments()) {
        std::uint32_t name_len = 0;
        if (!readU32(is, name_len) || name_len != seg.name.size())
            return false;
        std::string name(name_len, '\0');
        is.read(name.data(), static_cast<std::streamsize>(name_len));
        if (!is || name != seg.name)
            return false;
        std::uint32_t count = 0;
        if (!readU32(is, count) || count != seg.count)
            return false;
    }
    auto flat = params.flat();
    is.read(reinterpret_cast<char *>(flat.data()),
            static_cast<std::streamsize>(flat.size() * sizeof(float)));
    return static_cast<bool>(is);
}

bool
saveParamsToFile(const ParamSet &params, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    return os && saveParams(params, os);
}

bool
loadParamsFromFile(ParamSet &params, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return is && loadParams(params, is);
}

} // namespace fa3c::nn
