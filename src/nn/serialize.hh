/**
 * @file
 * Binary checkpointing for parameter sets.
 *
 * The format is self-describing: a magic word, the segment table
 * (names and sizes), then the raw fp32 words. Loading into a set with
 * a different layout is rejected, so checkpoints cannot be silently
 * misinterpreted across network configurations.
 */

#ifndef FA3C_NN_SERIALIZE_HH
#define FA3C_NN_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "nn/params.hh"

namespace fa3c::nn {

/** Write @p params to @p os. @return false on stream failure. */
bool saveParams(const ParamSet &params, std::ostream &os);

/**
 * Read a checkpoint into @p params.
 *
 * @return false when the stream fails, the magic is wrong, or the
 *         stored layout does not match @p params.
 */
bool loadParams(ParamSet &params, std::istream &is);

/** Convenience wrapper writing to @p path. */
bool saveParamsToFile(const ParamSet &params, const std::string &path);

/** Convenience wrapper reading from @p path. */
bool loadParamsFromFile(ParamSet &params, const std::string &path);

} // namespace fa3c::nn

#endif // FA3C_NN_SERIALIZE_HH
