/**
 * @file
 * Binary checkpointing for parameter sets.
 *
 * The format is self-describing and tamper-evident: a magic word and
 * format version, the payload size, a CRC32 of the payload, then the
 * payload itself (the segment table — names and sizes — followed by
 * the raw fp32 words). Loading into a set with a different layout is
 * rejected, so checkpoints cannot be silently misinterpreted across
 * network configurations; a truncated or bit-flipped image fails the
 * CRC and is rejected *before* the destination set is touched, so a
 * failed load never leaves a half-written parameter set behind.
 */

#ifndef FA3C_NN_SERIALIZE_HH
#define FA3C_NN_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "nn/params.hh"

namespace fa3c::nn {

/** Current on-disk parameter image version (bumped from the original
 * unchecksummed v1 when the CRC was introduced). */
inline constexpr std::uint32_t kParamFormatVersion = 2;

/** Serialize @p params to an in-memory image (header + payload). */
std::string paramsToImage(const ParamSet &params);

/**
 * Validate @p image and, only if fully valid, copy it into @p params.
 *
 * @return false — with @p params untouched — when the image is
 *         truncated, fails the CRC, has the wrong magic/version, or
 *         stores a different segment layout.
 */
bool paramsFromImage(ParamSet &params, std::string_view image);

/** Write @p params to @p os. @return false on stream failure. */
bool saveParams(const ParamSet &params, std::ostream &os);

/**
 * Read a checkpoint into @p params.
 *
 * @return false when the stream fails, the image is corrupt, or the
 *         stored layout does not match @p params; @p params is only
 *         modified on success.
 */
bool loadParams(ParamSet &params, std::istream &is);

/**
 * Convenience wrapper writing to @p path atomically: the image lands
 * in a temporary file that is renamed over @p path only once fully
 * written, so a crash mid-write never leaves a torn checkpoint under
 * the final name.
 */
bool saveParamsToFile(const ParamSet &params, const std::string &path);

/** Convenience wrapper reading from @p path. */
bool loadParamsFromFile(ParamSet &params, const std::string &path);

} // namespace fa3c::nn

#endif // FA3C_NN_SERIALIZE_HH
