#include "obs/aggregator.hh"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <arpa/inet.h>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>

namespace fa3c::obs {

namespace {

/** Minimal blocking HTTP/1.0 GET against a loopback /metrics
 * endpoint; @return false on connect/timeout/non-200. */
bool
httpGet(const std::string &host, int port, const char *path,
        int timeout_ms, std::string &body)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;

    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return false;
    }

    std::string request = std::string("GET ") + path +
                          " HTTP/1.0\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n = ::send(fd, request.data() + sent,
                                 request.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            ::close(fd);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }

    std::string response;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0) {
            ::close(fd);
            return false; // timeout or error mid-read
        }
        if (n == 0)
            break;
        response.append(buf, static_cast<std::size_t>(n));
        if (response.size() > (64u << 20)) {
            ::close(fd);
            return false;
        }
    }
    ::close(fd);

    const auto header_end = response.find("\r\n\r\n");
    if (header_end == std::string::npos)
        return false;
    const auto status_end = response.find("\r\n");
    const std::string status = response.substr(0, status_end);
    if (status.find(" 200") == std::string::npos)
        return false;
    body = response.substr(header_end + 4);
    return true;
}

/** Parse the {k="v",...} label block starting at @p pos (on '{');
 * @return one past '}' or npos on malformed input. */
std::size_t
parseLabels(std::string_view line, std::size_t pos, PromSample &out)
{
    ++pos; // consume '{'
    while (pos < line.size() && line[pos] != '}') {
        const auto eq = line.find('=', pos);
        if (eq == std::string_view::npos || eq + 1 >= line.size() ||
            line[eq + 1] != '"')
            return std::string_view::npos;
        std::string key(line.substr(pos, eq - pos));
        std::string value;
        std::size_t i = eq + 2;
        for (; i < line.size() && line[i] != '"'; ++i) {
            char c = line[i];
            if (c == '\\' && i + 1 < line.size()) {
                ++i;
                c = line[i] == 'n' ? '\n' : line[i];
            }
            value.push_back(c);
        }
        if (i >= line.size())
            return std::string_view::npos;
        out.labels.emplace_back(std::move(key), std::move(value));
        pos = i + 1;
        if (pos < line.size() && line[pos] == ',')
            ++pos;
    }
    return pos < line.size() ? pos + 1 : std::string_view::npos;
}

double
parsePromNumber(std::string_view text)
{
    if (text == "+Inf")
        return std::numeric_limits<double>::infinity();
    if (text == "-Inf")
        return -std::numeric_limits<double>::infinity();
    if (text == "NaN")
        return std::numeric_limits<double>::quiet_NaN();
    try {
        return std::stod(std::string(text));
    } catch (...) {
        return std::numeric_limits<double>::quiet_NaN();
    }
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

/** Family a sample name belongs to, given the declared histogram
 * families: `x_bucket`/`x_sum`/`x_count` fold into histogram `x`. */
std::string
familyOfSample(const std::string &sample_name,
               const std::map<std::string, std::size_t> &index,
               const std::vector<PromFamily> &families)
{
    for (std::string_view suffix : {"_bucket", "_sum", "_count"}) {
        if (!endsWith(sample_name, suffix))
            continue;
        std::string base =
            sample_name.substr(0, sample_name.size() - suffix.size());
        const auto it = index.find(base);
        if (it != index.end() &&
            families[it->second].type == "histogram")
            return base;
    }
    return sample_name;
}

} // namespace

std::string_view
PromSample::label(std::string_view key) const
{
    for (const auto &[k, v] : labels)
        if (k == key)
            return v;
    return {};
}

std::vector<PromFamily>
parseExposition(std::string_view text)
{
    std::vector<PromFamily> families;
    std::map<std::string, std::size_t> index;

    const auto familyAt = [&](const std::string &name) -> PromFamily & {
        const auto it = index.find(name);
        if (it != index.end())
            return families[it->second];
        index.emplace(name, families.size());
        families.push_back(PromFamily{name, "untyped", "", {}});
        return families.back();
    };

    std::size_t pos = 0;
    while (pos < text.size()) {
        auto eol = text.find('\n', pos);
        if (eol == std::string_view::npos)
            eol = text.size();
        std::string_view line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (!line.empty() && line.back() == '\r')
            line.remove_suffix(1);
        if (line.empty())
            continue;

        if (line[0] == '#') {
            // "# TYPE name type" / "# HELP name help..."
            std::istringstream is{std::string(line)};
            std::string hash, keyword, name;
            is >> hash >> keyword >> name;
            if (name.empty())
                continue;
            if (keyword == "TYPE") {
                std::string type;
                is >> type;
                familyAt(name).type = type.empty() ? "untyped" : type;
            } else if (keyword == "HELP") {
                std::string help;
                std::getline(is, help);
                if (!help.empty() && help.front() == ' ')
                    help.erase(help.begin());
                familyAt(name).help = help;
            }
            continue;
        }

        PromSample sample;
        const auto name_end = line.find_first_of("{ ");
        if (name_end == std::string_view::npos)
            continue;
        sample.name = std::string(line.substr(0, name_end));
        std::size_t value_pos = name_end;
        if (line[name_end] == '{') {
            value_pos = parseLabels(line, name_end, sample);
            if (value_pos == std::string_view::npos)
                continue;
        }
        while (value_pos < line.size() && line[value_pos] == ' ')
            ++value_pos;
        if (value_pos >= line.size())
            continue;
        const auto value_end = line.find(' ', value_pos);
        sample.value = parsePromNumber(
            line.substr(value_pos, value_end == std::string_view::npos
                                       ? std::string_view::npos
                                       : value_end - value_pos));

        familyAt(familyOfSample(sample.name, index, families))
            .samples.push_back(std::move(sample));
    }
    return families;
}

CumulativeHistogram
histogramOf(const PromFamily &family)
{
    CumulativeHistogram h;
    for (const auto &sample : family.samples) {
        if (endsWith(sample.name, "_bucket")) {
            const auto le = sample.label("le");
            if (!le.empty())
                h.buckets.emplace_back(parsePromNumber(le),
                                       sample.value);
        } else if (endsWith(sample.name, "_sum")) {
            h.sum = sample.value;
        } else if (endsWith(sample.name, "_count")) {
            h.count = sample.value;
        }
    }
    std::sort(h.buckets.begin(), h.buckets.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    return h;
}

CumulativeHistogram
sumHistograms(const std::vector<CumulativeHistogram> &parts)
{
    CumulativeHistogram out;
    std::vector<double> bounds;
    for (const auto &part : parts) {
        out.sum += part.sum;
        out.count += part.count;
        for (const auto &[bound, count] : part.buckets)
            if (std::isfinite(bound))
                bounds.push_back(bound);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()),
                 bounds.end());

    for (double bound : bounds) {
        double cumulative = 0.0;
        for (const auto &part : parts) {
            // Evaluate this part's cumulative step function at
            // `bound`: the count at its largest finite bound <= it.
            double at = 0.0;
            for (const auto &[b, c] : part.buckets) {
                if (!std::isfinite(b) || b > bound)
                    break;
                at = c;
            }
            cumulative += at;
        }
        out.buckets.emplace_back(bound, cumulative);
    }
    // +Inf is the sum of total counts — once; adding it into the
    // finite buckets as well is the double-count bug.
    out.buckets.emplace_back(std::numeric_limits<double>::infinity(),
                             out.count);
    return out;
}

TelemetryAggregator::TelemetryAggregator(AggregatorConfig cfg)
    : cfg_(std::move(cfg))
{
    for (const auto &target : cfg_.targets)
        targets_.push_back(TargetState{target, false, {}, -1.0, {}, 0.0});
}

TelemetryAggregator::~TelemetryAggregator()
{
    registration_.reset();
    stop();
}

void
TelemetryAggregator::addTarget(ScrapeTarget target)
{
    std::lock_guard<std::mutex> lock(mutex_);
    targets_.push_back(
        TargetState{std::move(target), false, {}, -1.0, {}, 0.0});
}

bool
TelemetryAggregator::wantFamily(std::string_view name) const
{
    for (const auto &prefix : cfg_.familyPrefixes)
        if (name.substr(0, prefix.size()) == prefix)
            return true;
    return false;
}

void
TelemetryAggregator::ingestLocked(TargetState &state,
                                  std::string_view body)
{
    state.families = parseExposition(body);
    state.reachable = true;

    // Derive steps/s from the step-counter delta between scrapes.
    const auto now = std::chrono::steady_clock::now();
    for (const auto &family : state.families) {
        std::string renamed = family.name;
        if (renamed.rfind("fa3c_", 0) != 0)
            renamed = "fa3c_" + renamed;
        if (renamed != cfg_.stepsFamily)
            continue;
        double steps = 0.0;
        for (const auto &sample : family.samples)
            steps += sample.value;
        if (state.prevSteps >= 0.0 && steps >= state.prevSteps) {
            const double dt =
                std::chrono::duration<double>(now - state.prevAt)
                    .count();
            if (dt > 1e-6)
                state.stepsPerSec = (steps - state.prevSteps) / dt;
        }
        state.prevSteps = steps;
        state.prevAt = now;
    }
}

int
TelemetryAggregator::scrapeOnce()
{
    // Snapshot the target list, scrape without the lock (HTTP can
    // block up to the receive timeout), then fold results back in.
    std::vector<ScrapeTarget> targets;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        targets.reserve(targets_.size());
        for (const auto &state : targets_)
            targets.push_back(state.target);
    }

    int reached = 0;
    for (const auto &target : targets) {
        std::string body;
        const bool ok = httpGet(target.host, target.port, "/metrics",
                                cfg_.recvTimeoutMs, body);
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &state : targets_) {
            if (state.target.label != target.label)
                continue;
            if (ok) {
                ingestLocked(state, body);
                ++reached;
            } else {
                state.reachable = false;
            }
            break;
        }
        if (!ok)
            scrapeFailures_.fetch_add(1, std::memory_order_relaxed);
    }
    scrapes_.fetch_add(1, std::memory_order_relaxed);
    return reached;
}

void
TelemetryAggregator::start()
{
    if (thread_.joinable())
        return;
    stopping_.store(false, std::memory_order_release);
    thread_ = std::thread([this] { scrapeMain(); });
}

void
TelemetryAggregator::stop()
{
    stopping_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
}

void
TelemetryAggregator::scrapeMain()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        scrapeOnce();
        // Sleep in short slices so stop() stays responsive.
        int remaining = cfg_.scrapeIntervalMs;
        while (remaining > 0 &&
               !stopping_.load(std::memory_order_acquire)) {
            const int slice = std::min(remaining, 50);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(slice));
            remaining -= slice;
        }
    }
}

void
TelemetryAggregator::ingest(const std::string &label,
                            std::string_view exposition)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &state : targets_) {
        if (state.target.label != label)
            continue;
        ingestLocked(state, exposition);
        return;
    }
    targets_.push_back(
        TargetState{ScrapeTarget{label, "", 0}, false, {}, -1.0, {}, 0.0});
    ingestLocked(targets_.back(), exposition);
}

void
TelemetryAggregator::render(PromWriter &w) const
{
    std::lock_guard<std::mutex> lock(mutex_);

    int reachable = 0;
    for (const auto &state : targets_)
        reachable += state.reachable ? 1 : 0;
    w.gauge("fa3c_fleet_targets",
            static_cast<double>(targets_.size()),
            "Scrape targets configured on the fleet aggregator");
    w.gauge("fa3c_fleet_targets_reachable",
            static_cast<double>(reachable),
            "Targets whose last scrape succeeded");
    w.counter("fa3c_fleet_scrapes",
              scrapes_.load(std::memory_order_relaxed));
    w.counter("fa3c_fleet_scrape_failures",
              scrapeFailures_.load(std::memory_order_relaxed));

    // Group the selected families by their fleet (renamed) name so
    // the rollup pass sees every process's copy together.
    struct Group
    {
        std::string type;
        std::vector<std::pair<const TargetState *, const PromFamily *>>
            parts;
    };
    std::map<std::string, Group> groups;

    for (const auto &state : targets_) {
        for (const auto &family : state.families) {
            if (!wantFamily(family.name))
                continue;
            std::string renamed = family.name;
            if (renamed.rfind("fa3c_", 0) != 0)
                renamed = "fa3c_" + renamed;
            auto &group = groups[renamed];
            if (group.type.empty() || group.type == "untyped")
                group.type = family.type;
            group.parts.emplace_back(&state, &family);
        }
    }

    for (const auto &[renamed, group] : groups) {
        // Per-process re-export: every scraped sample line, renamed
        // and tagged with its process label.
        for (const auto &[state, family] : group.parts) {
            for (const auto &sample : family->samples) {
                std::string sample_name = renamed;
                if (sample.name.size() > family->name.size())
                    sample_name +=
                        sample.name.substr(family->name.size());
                std::vector<PromLabel> labels;
                for (const auto &[k, v] : sample.labels)
                    labels.push_back(PromLabel{k, v});
                labels.push_back(
                    PromLabel{"process", state->target.label});
                w.typedSample(renamed, group.type, sample_name,
                              labels, sample.value, family->help);
            }
        }

        // Fleet rollup under process="fleet".
        if (group.type == "histogram") {
            std::vector<CumulativeHistogram> parts;
            parts.reserve(group.parts.size());
            for (const auto &[state, family] : group.parts)
                parts.push_back(histogramOf(*family));
            const CumulativeHistogram fleet = sumHistograms(parts);
            for (const auto &[bound, count] : fleet.buckets) {
                const std::string le =
                    std::isinf(bound)
                        ? std::string("+Inf")
                        : [&] {
                              char buf[32];
                              std::snprintf(buf, sizeof(buf), "%.9g",
                                            bound);
                              return std::string(buf);
                          }();
                const PromLabel labels[] = {{"process", "fleet"},
                                            {"le", le}};
                w.typedSample(renamed, "histogram",
                              renamed + "_bucket", labels, count);
            }
            const PromLabel fleet_label[] = {{"process", "fleet"}};
            w.typedSample(renamed, "histogram", renamed + "_sum",
                          fleet_label, fleet.sum);
            w.typedSample(renamed, "histogram", renamed + "_count",
                          fleet_label, fleet.count);
            continue;
        }

        // Counters and gauges: sum the plain (unlabelled) series;
        // gauges additionally get a max, since "sum of queue depth"
        // and "worst queue depth" answer different questions.
        double sum = 0.0;
        double max = -std::numeric_limits<double>::infinity();
        bool any = false;
        for (const auto &[state, family] : group.parts) {
            for (const auto &sample : family->samples) {
                if (sample.name != family->name)
                    continue;
                sum += sample.value;
                max = std::max(max, sample.value);
                any = true;
            }
        }
        if (!any)
            continue;
        if (group.type == "gauge") {
            const PromLabel sum_labels[] = {{"process", "fleet"},
                                            {"agg", "sum"}};
            const PromLabel max_labels[] = {{"process", "fleet"},
                                            {"agg", "max"}};
            w.typedSample(renamed, "gauge", renamed, sum_labels, sum);
            w.typedSample(renamed, "gauge", renamed, max_labels, max);
        } else {
            const PromLabel labels[] = {{"process", "fleet"}};
            w.typedSample(renamed, group.type, renamed, labels, sum);
        }
    }

    // Derived training health: per-process worker steps/s.
    for (const auto &state : targets_) {
        if (state.prevSteps < 0.0)
            continue;
        w.gauge("fa3c_dist_worker_steps_per_sec",
                {{"process", state.target.label}}, state.stepsPerSec,
                "Worker step rate derived from scrape deltas");
    }
}

std::string
TelemetryAggregator::renderText() const
{
    std::ostringstream os;
    PromWriter w(os);
    render(w);
    return os.str();
}

void
TelemetryAggregator::attach(TelemetryServer *server)
{
    registration_ = TelemetryRegistration(
        server, [this](PromWriter &w) { render(w); });
}

int
TelemetryAggregator::reachableTargets() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    int reachable = 0;
    for (const auto &state : targets_)
        reachable += state.reachable ? 1 : 0;
    return reachable;
}

} // namespace fa3c::obs
