/**
 * @file
 * Fleet-wide telemetry aggregation.
 *
 * Every process in the fleet (serve replicas behind a router, the
 * dist PS, each forked training worker) already exposes a loopback
 * /metrics endpoint via obs::TelemetryServer. The TelemetryAggregator
 * closes the fleet-level gap: it scrapes each target's exposition,
 * parses it back into families, and re-exports
 *
 *  - every selected family per process, renamed under the `fa3c_`
 *    prefix with a `process="<label>"` label, and
 *  - fleet rollups under `process="fleet"`: counters and histogram
 *    families summed across processes, gauges both summed
 *    (`agg="sum"`) and maxed (`agg="max"`), and
 *  - derived training health: per-process steps/s computed from
 *    consecutive scrapes of the worker step counter.
 *
 * Histogram summation is done on the CUMULATIVE representation with
 * a union of bucket bounds; the `+Inf` bucket of each process equals
 * its total count and is summed exactly once (never folded into the
 * finite buckets again), so the fleet `_count` stays consistent —
 * the classic re-aggregation double-count bug the tests pin down.
 *
 * The exposition parser and histogram summation are exposed as plain
 * functions so tests (and tools) can use them without sockets.
 */

#ifndef FA3C_OBS_AGGREGATOR_HH
#define FA3C_OBS_AGGREGATOR_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/prometheus.hh"
#include "obs/telemetry.hh"

namespace fa3c::obs {

/** One exposition sample line: name{labels} value. */
struct PromSample
{
    std::string name; ///< full sample name (may carry _bucket/_sum/_count)
    std::vector<std::pair<std::string, std::string>> labels;
    double value = 0.0;

    /** The value of label @p key, or "" when absent. */
    std::string_view label(std::string_view key) const;
};

/** One exposition family: TYPE/HELP plus its sample lines. */
struct PromFamily
{
    std::string name;
    std::string type = "untyped"; ///< counter|gauge|histogram|untyped
    std::string help;
    std::vector<PromSample> samples;
};

/**
 * Parse a Prometheus 0.0.4 text exposition into families. Unknown
 * or malformed lines are skipped (a scrape should degrade, not
 * fail); samples with no TYPE line land in untyped families.
 * Histogram series (`x_bucket`, `x_sum`, `x_count`) are folded into
 * their declared family `x`.
 */
std::vector<PromFamily> parseExposition(std::string_view text);

/** A cumulative histogram as scraped: (le, cumulative count) pairs
 * sorted by bound with +Inf last, plus the _sum/_count series. */
struct CumulativeHistogram
{
    std::vector<std::pair<double, double>> buckets;
    double sum = 0.0;
    double count = 0.0;
};

/** Extract the cumulative histogram of @p family (type histogram). */
CumulativeHistogram histogramOf(const PromFamily &family);

/**
 * Sum per-process cumulative histograms into one fleet histogram
 * over the union of bucket bounds. Each part's cumulative step
 * function is evaluated at every union bound (its value at the
 * largest of its own bounds <= the union bound), the `+Inf` bucket
 * is the sum of the parts' total counts — counted once, never added
 * into the finite buckets as well.
 */
CumulativeHistogram
sumHistograms(const std::vector<CumulativeHistogram> &parts);

/** One /metrics endpoint to scrape. */
struct ScrapeTarget
{
    std::string label;                ///< process label, e.g. "w0", "ps"
    std::string host = "127.0.0.1";
    int port = 0;
};

struct AggregatorConfig
{
    std::vector<ScrapeTarget> targets;

    /** Families re-exported per process and rolled up fleet-wide;
     * a family qualifies when its name starts with any prefix. */
    std::vector<std::string> familyPrefixes = {"dist_", "fa3c_dist_"};

    /** Counter family whose scrape-to-scrape delta yields the
     * per-process steps/s gauge (after fa3c_ renaming). */
    std::string stepsFamily = "fa3c_dist_worker_steps";

    int scrapeIntervalMs = 1000;
    int recvTimeoutMs = 500;
};

/** Scrapes a fleet of /metrics endpoints and re-exports them. */
class TelemetryAggregator
{
  public:
    explicit TelemetryAggregator(AggregatorConfig cfg);
    ~TelemetryAggregator();

    TelemetryAggregator(const TelemetryAggregator &) = delete;
    TelemetryAggregator &operator=(const TelemetryAggregator &) = delete;

    /** Add a scrape target while running (elastic worker joins). */
    void addTarget(ScrapeTarget target);

    /** Scrape every target once. @return targets reached. */
    int scrapeOnce();

    /** Launch the periodic background scraper. */
    void start();

    /** Stop the background scraper (idempotent). */
    void stop();

    /** Inject a scrape body for @p label without HTTP (tests). */
    void ingest(const std::string &label, std::string_view exposition);

    /** Render per-process + fleet series into @p w. */
    void render(PromWriter &w) const;

    /** Standalone exposition text (CLI one-shot, CI curl parity). */
    std::string renderText() const;

    /**
     * Attach to @p server (usually obs::telemetry()) so the fleet
     * series ride on this process's own /metrics. No-op when null.
     */
    void attach(TelemetryServer *server);

    std::uint64_t scrapes() const
    {
        return scrapes_.load(std::memory_order_relaxed);
    }
    std::uint64_t scrapeFailures() const
    {
        return scrapeFailures_.load(std::memory_order_relaxed);
    }

    /** Targets whose last scrape succeeded. */
    int reachableTargets() const;

  private:
    struct TargetState
    {
        ScrapeTarget target;
        bool reachable = false;
        std::vector<PromFamily> families;
        // steps/s derivation across consecutive scrapes
        double prevSteps = -1.0;
        std::chrono::steady_clock::time_point prevAt{};
        double stepsPerSec = 0.0;
    };

    AggregatorConfig cfg_;
    mutable std::mutex mutex_;
    std::vector<TargetState> targets_;
    std::thread thread_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> scrapes_{0};
    std::atomic<std::uint64_t> scrapeFailures_{0};
    TelemetryRegistration registration_;

    bool wantFamily(std::string_view name) const;
    void ingestLocked(TargetState &state, std::string_view body);
    void scrapeMain();
};

} // namespace fa3c::obs

#endif // FA3C_OBS_AGGREGATOR_HH
