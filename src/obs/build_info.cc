#include "obs/build_info.hh"

#include <mutex>
#include <sstream>

#include "obs/json.hh"
#include "obs/version.hh"

namespace fa3c::obs {

namespace {

std::mutex backendMutex;

std::string &
backendKind()
{
    static std::string *kind = new std::string("unset");
    return *kind;
}

} // namespace

void
setActiveBackend(std::string_view kind)
{
    std::lock_guard<std::mutex> lock(backendMutex);
    backendKind().assign(kind);
}

std::string
activeBackend()
{
    std::lock_guard<std::mutex> lock(backendMutex);
    return backendKind();
}

std::string
buildInfoJson()
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.field("schema", "fa3c.build.v1");
    json.field("git_sha", FA3C_GIT_SHA);
    json.field("build_type", FA3C_BUILD_TYPE);
    json.field("compiler", FA3C_COMPILER);
    json.field("kernels_native", FA3C_KERNELS_NATIVE_STR);
    json.field("backend", activeBackend());
    json.endObject();
    os << '\n';
    return os.str();
}

} // namespace fa3c::obs
