/**
 * @file
 * Runtime build/deployment identity: the configure-time constants
 * from the generated version header (git sha, build type, compiler,
 * kernel ISA flags) plus the one piece only known at runtime — which
 * inference backend is actually serving. Rendered as the /buildz
 * telemetry payload so an operator can tell *what* is running from
 * the same port that tells them *how* it is running.
 */

#ifndef FA3C_OBS_BUILD_INFO_HH
#define FA3C_OBS_BUILD_INFO_HH

#include <string>
#include <string_view>

namespace fa3c::obs {

/** Record the backend kind serving requests ("fast_cpu", "golden",
 * ...). Thread-safe; the last writer wins. */
void setActiveBackend(std::string_view kind);

/** The last value passed to setActiveBackend(); "unset" initially. */
std::string activeBackend();

/** One JSON object: schema, git sha, build type, compiler,
 * kernels_native, active backend. */
std::string buildInfoJson();

} // namespace fa3c::obs

#endif // FA3C_OBS_BUILD_INFO_HH
