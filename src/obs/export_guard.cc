#include "obs/export_guard.hh"

#include <atomic>
#include <csignal>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace fa3c::obs {

namespace {

// Raw pointers published by the notify hooks. Both targets are
// function-local statics that live until process exit, so the handler
// can never observe a dangling pointer.
std::atomic<MetricsRegistry *> g_metrics{nullptr};
std::atomic<TraceWriter *> g_trace{nullptr};

using SignalHandler = void (*)(int);
SignalHandler g_prevInt = SIG_DFL;
SignalHandler g_prevTerm = SIG_DFL;
std::atomic<bool> g_installed{false};

/**
 * Flush the exports, then defer to whoever owned the signal before
 * us: a real previous handler (e.g. the checkpoint handler, which
 * just sets a flag and lets the run shut down gracefully) is called
 * and the process keeps running; otherwise the default disposition is
 * restored and the signal re-raised so the process still dies.
 *
 * The flush itself is not async-signal-safe (it allocates and does
 * stream I/O). That is a deliberate trade: without it the data is
 * lost with certainty, and the best-effort try_lock variants below
 * mean a signal landing mid-export skips the flush instead of
 * deadlocking.
 */
void
exportSignalHandler(int sig)
{
    if (MetricsRegistry *m = g_metrics.load(std::memory_order_acquire))
        m->flushBestEffort();
    if (TraceWriter *t = g_trace.load(std::memory_order_acquire))
        t->closeBestEffort();
    const SignalHandler prev =
        sig == SIGINT ? g_prevInt : g_prevTerm;
    if (prev == SIG_IGN)
        return;
    if (prev != SIG_DFL && prev != exportSignalHandler) {
        prev(sig);
        return;
    }
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

void
installOnce()
{
    bool expected = false;
    if (!g_installed.compare_exchange_strong(expected, true))
        return;
    g_prevInt = std::signal(SIGINT, exportSignalHandler);
    g_prevTerm = std::signal(SIGTERM, exportSignalHandler);
    if (g_prevInt == SIG_ERR)
        g_prevInt = SIG_DFL;
    if (g_prevTerm == SIG_ERR)
        g_prevTerm = SIG_DFL;
}

} // namespace

void
notifyMetricsExportEnabled(MetricsRegistry &registry)
{
    g_metrics.store(&registry, std::memory_order_release);
    installOnce();
}

void
notifyTraceStarted(TraceWriter &writer)
{
    g_trace.store(&writer, std::memory_order_release);
    installOnce();
}

} // namespace fa3c::obs
