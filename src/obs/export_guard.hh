/**
 * @file
 * Keeps observability exports alive through rough exits.
 *
 * Two failure modes used to lose data: FA3C_METRICS_JSON /
 * FA3C_TRACE pointing into a directory that does not exist yet (the
 * open failed and the run produced nothing), and SIGINT/SIGTERM
 * killing the process before the exit-time writers ran (an
 * interrupted serve process left no metrics and a truncated,
 * unparseable trace). ensureParentDir() fixes the former at every
 * open site; the notify*() hooks install a SIGINT/SIGTERM handler
 * that flushes both exports best-effort and then chains to whatever
 * handler was installed before (so rl::installCheckpointSignalHandler
 * keeps its graceful-shutdown semantics, and the default disposition
 * still terminates the process).
 */

#ifndef FA3C_OBS_EXPORT_GUARD_HH
#define FA3C_OBS_EXPORT_GUARD_HH

#include <filesystem>
#include <string>
#include <system_error>

#include <unistd.h>

namespace fa3c::obs {

class MetricsRegistry;
class TraceWriter;

/**
 * Expand export-path tokens: every `%p` becomes this process's OS
 * pid. Forked children that inherit FA3C_TRACE / FA3C_METRICS_JSON
 * then write pid-unique files instead of racing one atomic rename.
 */
inline std::string
expandPathTokens(std::string_view path)
{
    std::string out;
    out.reserve(path.size());
    const std::string pid = std::to_string(::getpid());
    for (std::size_t i = 0; i < path.size(); ++i) {
        if (path[i] == '%' && i + 1 < path.size() &&
            path[i + 1] == 'p') {
            out += pid;
            ++i;
        } else {
            out += path[i];
        }
    }
    return out;
}

/** Create @p path's parent directories if missing (best effort). */
inline void
ensureParentDir(const std::string &path)
{
    std::error_code ec;
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec);
}

/** Flush @p registry's export on SIGINT/SIGTERM from now on. */
void notifyMetricsExportEnabled(MetricsRegistry &registry);

/** Finalize @p writer's JSON on SIGINT/SIGTERM from now on. */
void notifyTraceStarted(TraceWriter &writer);

} // namespace fa3c::obs

#endif // FA3C_OBS_EXPORT_GUARD_HH
