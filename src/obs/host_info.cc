#include "obs/host_info.hh"

#include <cstdlib>
#include <fstream>
#include <thread>

namespace fa3c::obs {

namespace {

std::string
cpuModelString()
{
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("model name", 0) != 0)
            continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            break;
        std::size_t begin = colon + 1;
        while (begin < line.size() && line[begin] == ' ')
            ++begin;
        // Trim trailing whitespace/CR so the fingerprint is stable
        // across /proc formatting quirks.
        std::size_t end = line.size();
        while (end > begin &&
               (line[end - 1] == ' ' || line[end - 1] == '\r'))
            --end;
        if (end > begin)
            return line.substr(begin, end - begin);
        break;
    }
    return "unknown";
}

HostInfo
probe()
{
    HostInfo info;
    info.cpuModel = cpuModelString();
    info.logicalCores =
        static_cast<int>(std::thread::hardware_concurrency());
    if (const char *threads = std::getenv("FA3C_KERNEL_THREADS"))
        info.kernelThreads =
            static_cast<int>(std::strtol(threads, nullptr, 10));
    info.fingerprint = info.cpuModel + "/" +
                       std::to_string(info.logicalCores) + "c";
    if (info.kernelThreads > 0)
        info.fingerprint +=
            "/" + std::to_string(info.kernelThreads) + "t";
    return info;
}

} // namespace

const HostInfo &
hostInfo()
{
    static const HostInfo info = probe();
    return info;
}

} // namespace fa3c::obs
