/**
 * @file
 * Host identification for benchmark provenance. Every BENCH_*.json
 * and bench-history row carries this so bench_trend can refuse to
 * compare runs from unlike hosts: a 4-core CI runner and a 1-vCPU
 * dev box produce wildly different absolute numbers (and different
 * *relative* numbers once thread counts matter), and a rolling
 * baseline that mixes them gates on noise.
 */

#ifndef FA3C_OBS_HOST_INFO_HH
#define FA3C_OBS_HOST_INFO_HH

#include <string>

namespace fa3c::obs {

/** What makes two benchmark hosts comparable. */
struct HostInfo
{
    /** CPU model string from /proc/cpuinfo ("unknown" elsewhere). */
    std::string cpuModel;
    int logicalCores = 0;
    /** FA3C_KERNEL_THREADS at process start (0 = unset/default). */
    int kernelThreads = 0;
    /**
     * Stable one-line identity: "<cpu model>/<cores>c[/<threads>t]".
     * Two runs with equal fingerprints are baseline-comparable.
     */
    std::string fingerprint;
};

/** The current host, probed once per process. */
const HostInfo &hostInfo();

} // namespace fa3c::obs

#endif // FA3C_OBS_HOST_INFO_HH
