#include "obs/json.hh"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace fa3c::obs {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

void
JsonWriter::preValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (!needComma_.empty()) {
        if (needComma_.back())
            os_ << ',';
        needComma_.back() = true;
    }
}

void
JsonWriter::beginObject()
{
    preValue();
    os_ << '{';
    needComma_.push_back(false);
}

void
JsonWriter::endObject()
{
    needComma_.pop_back();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    preValue();
    os_ << '[';
    needComma_.push_back(false);
}

void
JsonWriter::endArray()
{
    needComma_.pop_back();
    os_ << ']';
}

void
JsonWriter::key(std::string_view k)
{
    if (!needComma_.empty()) {
        if (needComma_.back())
            os_ << ',';
        needComma_.back() = true;
    }
    os_ << '"' << jsonEscape(k) << "\":";
    pendingKey_ = true;
}

void
JsonWriter::value(std::string_view v)
{
    preValue();
    os_ << '"' << jsonEscape(v) << '"';
}

void
JsonWriter::value(double v)
{
    preValue();
    os_ << jsonNumber(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    preValue();
    os_ << (v ? "true" : "false");
}

namespace {

/** Recursive-descent parser over a string_view; strict by design. */
class Parser
{
  public:
    explicit Parser(std::string_view s) : s_(s) {}

    Json
    parse()
    {
        Json v = parseValue();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing characters");
        return v;
    }

  private:
    std::string_view s_;
    std::size_t pos_ = 0;

    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    Json
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't': return parseLiteral("true", Json::Kind::Bool, true);
          case 'f':
            return parseLiteral("false", Json::Kind::Bool, false);
          case 'n':
            return parseLiteral("null", Json::Kind::Null, false);
          default: return parseNumber();
        }
    }

    Json
    parseLiteral(std::string_view word, Json::Kind kind, bool value)
    {
        if (s_.compare(pos_, word.size(), word) != 0)
            fail("bad literal");
        pos_ += word.size();
        Json v;
        v.kind = kind;
        v.boolean = value;
        return v;
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        auto digits = [&]() {
            if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9')
                fail("expected digit");
            while (pos_ < s_.size() && s_[pos_] >= '0' &&
                   s_[pos_] <= '9')
                ++pos_;
        };
        digits();
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            digits();
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() &&
                (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            digits();
        }
        Json v;
        v.kind = Json::Kind::Number;
        v.number =
            std::stod(std::string(s_.substr(start, pos_ - start)));
        return v;
    }

    Json
    parseString()
    {
        expect('"');
        Json v;
        v.kind = Json::Kind::String;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"')
                break;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                v.str += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
              case '"': v.str += '"'; break;
              case '\\': v.str += '\\'; break;
              case '/': v.str += '/'; break;
              case 'b': v.str += '\b'; break;
              case 'f': v.str += '\f'; break;
              case 'n': v.str += '\n'; break;
              case 'r': v.str += '\r'; break;
              case 't': v.str += '\t'; break;
              case 'u': {
                  if (pos_ + 4 > s_.size())
                      fail("bad \\u escape");
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      const char h = s_[pos_++];
                      code <<= 4;
                      if (h >= '0' && h <= '9')
                          code |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          code |= static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          code |= static_cast<unsigned>(h - 'A' + 10);
                      else
                          fail("bad hex digit");
                  }
                  // ASCII round-trips; anything wider degrades to
                  // '?' — bench names and counter keys are ASCII.
                  v.str += code < 0x80 ? static_cast<char>(code) : '?';
                  break;
              }
              default: fail("bad escape");
            }
        }
        return v;
    }

    Json
    parseArray()
    {
        expect('[');
        Json v;
        v.kind = Json::Kind::Array;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json v;
        v.kind = Json::Kind::Object;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            const Json key = parseString();
            skipWs();
            expect(':');
            v.object[key.str] = parseValue();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }
};

} // namespace

bool
Json::has(const std::string &key) const
{
    return kind == Kind::Object && object.count(key) > 0;
}

const Json &
Json::at(const std::string &key) const
{
    if (kind != Kind::Object)
        throw std::runtime_error("not an object (looking up '" + key +
                                 "')");
    const auto it = object.find(key);
    if (it == object.end())
        throw std::runtime_error("missing key: " + key);
    return it->second;
}

double
Json::asNumber() const
{
    if (kind != Kind::Number)
        throw std::runtime_error("not a number");
    return number;
}

const std::string &
Json::asString() const
{
    if (kind != Kind::String)
        throw std::runtime_error("not a string");
    return str;
}

double
Json::numberOr(const std::string &key, double fallback) const
{
    return has(key) ? at(key).asNumber() : fallback;
}

std::string
Json::stringOr(const std::string &key,
               const std::string &fallback) const
{
    return has(key) ? at(key).asString() : fallback;
}

Json
parseJson(std::string_view text)
{
    return Parser(text).parse();
}

} // namespace fa3c::obs
