#include "obs/json.hh"

#include <cmath>
#include <cstdio>

namespace fa3c::obs {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

void
JsonWriter::preValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (!needComma_.empty()) {
        if (needComma_.back())
            os_ << ',';
        needComma_.back() = true;
    }
}

void
JsonWriter::beginObject()
{
    preValue();
    os_ << '{';
    needComma_.push_back(false);
}

void
JsonWriter::endObject()
{
    needComma_.pop_back();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    preValue();
    os_ << '[';
    needComma_.push_back(false);
}

void
JsonWriter::endArray()
{
    needComma_.pop_back();
    os_ << ']';
}

void
JsonWriter::key(std::string_view k)
{
    if (!needComma_.empty()) {
        if (needComma_.back())
            os_ << ',';
        needComma_.back() = true;
    }
    os_ << '"' << jsonEscape(k) << "\":";
    pendingKey_ = true;
}

void
JsonWriter::value(std::string_view v)
{
    preValue();
    os_ << '"' << jsonEscape(v) << '"';
}

void
JsonWriter::value(double v)
{
    preValue();
    os_ << jsonNumber(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    preValue();
    os_ << (v ? "true" : "false");
}

} // namespace fa3c::obs
