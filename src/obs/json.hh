/**
 * @file
 * Minimal streaming JSON writer shared by the trace and metrics
 * exporters, plus a small strict DOM parser for tools that read
 * those documents back (bench_trend history, perf snapshots). The
 * writer produces strictly valid JSON (proper escaping, no trailing
 * commas); the parser throws on any deviation from JSON so corrupt
 * history lines are rejected rather than misread.
 */

#ifndef FA3C_OBS_JSON_HH
#define FA3C_OBS_JSON_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fa3c::obs {

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscape(std::string_view s);

/** Render @p v as a JSON number (finite; non-finite becomes 0). */
std::string jsonNumber(double v);

/**
 * Structural JSON emitter over an ostream.
 *
 * Tracks nesting and comma placement so callers only describe the
 * document shape: beginObject/key/value/endObject and the array
 * equivalents.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key of the next object member. */
    void key(std::string_view k);

    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(bool v);

    /** key() + value() in one call. */
    template <typename T>
    void
    field(std::string_view k, T v)
    {
        key(k);
        value(v);
    }

  private:
    std::ostream &os_;
    std::vector<bool> needComma_;
    bool pendingKey_ = false;

    void preValue();
};

/**
 * Parsed JSON value (small DOM). Accessors throw std::runtime_error
 * on kind mismatch or missing keys, so reader code stays linear and
 * a malformed document surfaces as one catchable error.
 */
struct Json
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> array;
    std::map<std::string, Json> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    bool has(const std::string &key) const;

    /** Member @p key; throws when absent or not an object. */
    const Json &at(const std::string &key) const;

    /** Number value; throws on kind mismatch. */
    double asNumber() const;

    /** String value; throws on kind mismatch. */
    const std::string &asString() const;

    /** Number member @p key, or @p fallback when absent. */
    double numberOr(const std::string &key, double fallback) const;

    /** String member @p key, or @p fallback when absent. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;
};

/**
 * Parse @p text as one strict JSON document (no trailing content
 * beyond whitespace). Throws std::runtime_error with the byte offset
 * on any syntax error.
 */
Json parseJson(std::string_view text);

} // namespace fa3c::obs

#endif // FA3C_OBS_JSON_HH
