/**
 * @file
 * Minimal streaming JSON writer shared by the trace and metrics
 * exporters. Produces strictly valid JSON (proper escaping, no
 * trailing commas); the caller is responsible for balanced
 * begin/end calls.
 */

#ifndef FA3C_OBS_JSON_HH
#define FA3C_OBS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fa3c::obs {

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscape(std::string_view s);

/** Render @p v as a JSON number (finite; non-finite becomes 0). */
std::string jsonNumber(double v);

/**
 * Structural JSON emitter over an ostream.
 *
 * Tracks nesting and comma placement so callers only describe the
 * document shape: beginObject/key/value/endObject and the array
 * equivalents.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key of the next object member. */
    void key(std::string_view k);

    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(bool v);

    /** key() + value() in one call. */
    template <typename T>
    void
    field(std::string_view k, T v)
    {
        key(k);
        value(v);
    }

  private:
    std::ostream &os_;
    std::vector<bool> needComma_;
    bool pendingKey_ = false;

    void preValue();
};

} // namespace fa3c::obs

#endif // FA3C_OBS_JSON_HH
