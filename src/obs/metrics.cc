#include "obs/metrics.hh"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "obs/export_guard.hh"
#include "obs/json.hh"
#include "obs/perf_export.hh"
#include "obs/profile.hh"
#include "sim/logging.hh"

namespace fa3c::obs {

namespace {

void
writeDistribution(JsonWriter &json, const sim::Distribution &d)
{
    json.beginObject();
    json.field("count", d.count());
    json.field("sum", d.sum());
    json.field("mean", d.mean());
    json.field("min", d.min());
    json.field("max", d.max());
    json.field("stddev", d.stddev());
    json.field("p50", d.percentile(50.0));
    json.field("p95", d.percentile(95.0));
    json.field("p99", d.percentile(99.0));
    json.endObject();
}

void
writeGroup(JsonWriter &json, const sim::StatGroup &group)
{
    json.beginObject();
    json.key("counters");
    json.beginObject();
    for (const auto &[name, counter] : group.counters())
        json.field(name, counter.value());
    json.endObject();
    json.key("distributions");
    json.beginObject();
    for (const auto &[name, dist] : group.distributions()) {
        json.key(name);
        writeDistribution(json, dist);
    }
    json.endObject();
    json.endObject();
}

/**
 * Write @p doc to @p path via a same-directory temp file renamed into
 * place: a crash or signal mid-write leaves either the old document
 * or the new one, never a truncated hybrid.
 */
bool
writeAtomically(const std::string &path, const std::string &doc)
{
    ensureParentDir(path);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return false;
        out << doc << '\n';
        out.flush();
        if (!out)
            return false;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    return !ec;
}

} // namespace

MetricsRegistry::~MetricsRegistry()
{
    stopPeriodicFlush();
    std::string path;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        path = exportPath_;
    }
    if (enabled() && !path.empty())
        writeTo(path);
}

void
MetricsRegistry::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
MetricsRegistry::setExportPath(std::string path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    exportPath_ = std::move(path);
}

void
MetricsRegistry::setFlushInterval(double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    flushIntervalSec_ = seconds;
    lastFlush_ = std::chrono::steady_clock::now();
}

std::string
MetricsRegistry::registerGroup(const std::string &name,
                               const sim::StatGroup *group)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string actual = name;
    while (live_.count(actual) || owned_.count(actual))
        actual = name + "#" + std::to_string(++uniq_);
    live_.emplace(actual, group);
    return actual;
}

void
MetricsRegistry::unregisterGroup(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = live_.find(name);
    if (it == live_.end())
        return;
    retained_.emplace_back(name, *it->second);
    live_.erase(it);
}

void
MetricsRegistry::count(const std::string &group, const std::string &name,
                       std::uint64_t delta)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    owned_[group].counter(name).inc(delta);
}

void
MetricsRegistry::sample(const std::string &group,
                        const std::string &name, double v)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    owned_[group].distribution(name).sample(v);
}

void
MetricsRegistry::tick()
{
    if (!enabled())
        return;
    std::string path;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (flushIntervalSec_ <= 0.0 || exportPath_.empty())
            return;
        const auto now = std::chrono::steady_clock::now();
        const double elapsed =
            std::chrono::duration<double>(now - lastFlush_).count();
        if (elapsed < flushIntervalSec_)
            return;
        lastFlush_ = now;
        path = exportPath_;
    }
    writeTo(path);
}

std::string
MetricsRegistry::snapshotJsonLocked() const
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.field("schema", "fa3c.metrics.v1");
    json.key("groups");
    json.beginObject();
    for (const auto &[name, group] : live_) {
        json.key(name);
        writeGroup(json, *group);
    }
    for (const auto &[name, group] : owned_) {
        json.key(name);
        writeGroup(json, group);
    }
    int retained_idx = 0;
    for (const auto &[name, group] : retained_) {
        // Retained snapshots may collide with each other or with a
        // live name; suffix deterministically.
        json.key(name + "@" + std::to_string(retained_idx++));
        writeGroup(json, group);
    }
    json.endObject();
    json.endObject();
    return os.str();
}

void
MetricsRegistry::addSnapshotHook(std::function<void()> hook)
{
    std::lock_guard<std::mutex> lock(mutex_);
    snapshotHooks_.push_back(std::move(hook));
}

std::string
MetricsRegistry::snapshotJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &hook : snapshotHooks_)
        hook();
    return snapshotJsonLocked();
}

bool
MetricsRegistry::writeTo(const std::string &path) const
{
    if (!writeAtomically(path, snapshotJson())) {
        FA3C_WARN("metrics: cannot write '", path, "'");
        return false;
    }
    return true;
}

bool
MetricsRegistry::flushBestEffort() const
{
    std::string path;
    std::string doc;
    {
        std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
        if (!lock.owns_lock() || exportPath_.empty())
            return false;
        path = exportPath_;
        doc = snapshotJsonLocked();
    }
    return writeAtomically(path, doc);
}

std::size_t
MetricsRegistry::groupCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return live_.size() + owned_.size() + retained_.size();
}

void
MetricsRegistry::forEachGroup(
    const std::function<void(const std::string &,
                             const sim::StatGroup &)> &fn) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &hook : snapshotHooks_)
        hook();
    for (const auto &[name, group] : live_)
        fn(name, *group);
    for (const auto &[name, group] : owned_)
        fn(name, group);
    int retained_idx = 0;
    for (const auto &[name, group] : retained_)
        fn(name + "@" + std::to_string(retained_idx++), group);
}

void
MetricsRegistry::startPeriodicFlush(double seconds)
{
    stopPeriodicFlush();
    if (seconds <= 0.0)
        return;
    {
        std::lock_guard<std::mutex> lock(flusherMutex_);
        flusherSec_ = seconds;
        flusherStop_ = false;
    }
    flusher_ = std::thread([this] { flusherMain(); });
}

void
MetricsRegistry::stopPeriodicFlush()
{
    {
        std::lock_guard<std::mutex> lock(flusherMutex_);
        flusherStop_ = true;
    }
    flusherCv_.notify_all();
    if (flusher_.joinable())
        flusher_.join();
}

void
MetricsRegistry::flusherMain()
{
    std::unique_lock<std::mutex> lock(flusherMutex_);
    while (!flusherStop_) {
        const auto period = std::chrono::duration<double>(flusherSec_);
        flusherCv_.wait_for(lock, period,
                            [this] { return flusherStop_; });
        if (flusherStop_)
            break;
        std::string path;
        {
            std::lock_guard<std::mutex> reg(mutex_);
            path = exportPath_;
        }
        if (!path.empty()) {
            lock.unlock();
            writeTo(path);
            lock.lock();
        }
    }
}

ScopedMetricsGroup::ScopedMetricsGroup(MetricsRegistry &registry,
                                       const std::string &name,
                                       const sim::StatGroup *group)
{
    if (!registry.enabled())
        return;
    registry_ = &registry;
    name_ = registry.registerGroup(name, group);
}

ScopedMetricsGroup::~ScopedMetricsGroup()
{
    if (registry_)
        registry_->unregisterGroup(name_);
}

MetricsRegistry &
metrics()
{
    static MetricsRegistry registry;
    static bool configured = [] {
        installPerfExport(registry);
        installProfileExport(registry);
        if (const char *path = std::getenv("FA3C_METRICS_JSON");
            path && *path) {
            registry.setExportPath(expandPathTokens(path));
            registry.setEnabled(true);
            notifyMetricsExportEnabled(registry);
        }
        if (const char *interval =
                std::getenv("FA3C_METRICS_INTERVAL_SEC"))
            registry.setFlushInterval(std::strtod(interval, nullptr));
        if (const char *flush = std::getenv("FA3C_METRICS_FLUSH_SEC");
            flush && *flush)
            registry.startPeriodicFlush(std::strtod(flush, nullptr));
        return true;
    }();
    (void)configured;
    return registry;
}

} // namespace fa3c::obs
