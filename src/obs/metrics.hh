/**
 * @file
 * Metrics snapshot/export layer.
 *
 * A MetricsRegistry aggregates sim::StatGroups from all over the
 * stack — live groups owned by components (registered by pointer,
 * snapshotted when they unregister), plus registry-owned groups fed
 * through the thread-safe count()/sample() helpers — and serializes
 * everything to one JSON document: every counter, and every
 * distribution with count/mean/min/max/stddev and p50/p95/p99 from
 * the histogram.
 *
 * The global registry is enabled by FA3C_METRICS_JSON=<path>; the
 * file is written at process exit and, when
 * FA3C_METRICS_INTERVAL_SEC is set, re-written whenever tick() is
 * called at least that many wall-clock seconds after the last write.
 * All instrumentation helpers are cheap no-ops while disabled.
 */

#ifndef FA3C_OBS_METRICS_HH
#define FA3C_OBS_METRICS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hh"

namespace fa3c::obs {

/** Thread-safe registry of StatGroups with JSON export. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Fast check instrumentation sites use to skip all work. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void setEnabled(bool on);

    /** Where the JSON lands at exit / on periodic flush ("" = off). */
    void setExportPath(std::string path);

    /** Minimum seconds between periodic tick() flushes (0 = off). */
    void setFlushInterval(double seconds);

    /**
     * Register a live group owned by the caller. @p group must stay
     * valid until unregisterGroup() is called with the returned
     * (possibly uniquified) name.
     */
    std::string registerGroup(const std::string &name,
                              const sim::StatGroup *group);

    /** Drop a live group, retaining its final snapshot for export. */
    void unregisterGroup(const std::string &name);

    /** Bump a counter in a registry-owned group (no-op if disabled). */
    void count(const std::string &group, const std::string &name,
               std::uint64_t delta = 1);

    /** Sample a distribution in a registry-owned group (no-op if
     * disabled). */
    void sample(const std::string &group, const std::string &name,
                double v);

    /** Periodic-flush hook; cheap while disabled or within the
     * interval. */
    void tick();

    /** The full registry as a JSON document. */
    std::string snapshotJson() const;

    /** Serialize to @p path; returns false on I/O failure. */
    bool writeTo(const std::string &path) const;

    /**
     * Write the export file now if the lock is free (signal-handler
     * path: skips rather than deadlocks when a flush is in flight).
     */
    bool flushBestEffort() const;

    /** Groups currently visible (live + owned + retained). */
    std::size_t groupCount() const;

  private:
    mutable std::mutex mutex_;
    std::atomic<bool> enabled_{false};
    std::string exportPath_;
    double flushIntervalSec_ = 0.0;
    std::chrono::steady_clock::time_point lastFlush_{};
    std::map<std::string, const sim::StatGroup *> live_;
    std::map<std::string, sim::StatGroup> owned_;
    std::vector<std::pair<std::string, sim::StatGroup>> retained_;
    int uniq_ = 0;

    std::string snapshotJsonLocked() const;
};

/**
 * RAII registration of a component-owned StatGroup with the global
 * registry: registers on construction (when metrics are enabled),
 * unregisters — retaining a final snapshot — on destruction.
 */
class ScopedMetricsGroup
{
  public:
    ScopedMetricsGroup(MetricsRegistry &registry,
                       const std::string &name,
                       const sim::StatGroup *group);
    ~ScopedMetricsGroup();

    ScopedMetricsGroup(const ScopedMetricsGroup &) = delete;
    ScopedMetricsGroup &operator=(const ScopedMetricsGroup &) = delete;

  private:
    MetricsRegistry *registry_ = nullptr;
    std::string name_;
};

/**
 * The process-wide registry, configured on first use from
 * FA3C_METRICS_JSON / FA3C_METRICS_INTERVAL_SEC. Its destructor (at
 * process exit) writes the export file.
 */
MetricsRegistry &metrics();

} // namespace fa3c::obs

#endif // FA3C_OBS_METRICS_HH
