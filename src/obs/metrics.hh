/**
 * @file
 * Metrics snapshot/export layer.
 *
 * A MetricsRegistry aggregates sim::StatGroups from all over the
 * stack — live groups owned by components (registered by pointer,
 * snapshotted when they unregister), plus registry-owned groups fed
 * through the thread-safe count()/sample() helpers — and serializes
 * everything to one JSON document: every counter, and every
 * distribution with count/mean/min/max/stddev and p50/p95/p99 from
 * the histogram.
 *
 * The global registry is enabled by FA3C_METRICS_JSON=<path>; the
 * file is written at process exit and, when
 * FA3C_METRICS_INTERVAL_SEC is set, re-written whenever tick() is
 * called at least that many wall-clock seconds after the last write.
 * FA3C_METRICS_FLUSH_SEC flushes from a background thread instead, so
 * snapshots keep landing even when no instrumented code runs; every
 * flush is an atomic temp-file-plus-rename, never a truncated JSON.
 * All instrumentation helpers are cheap no-ops while disabled.
 */

#ifndef FA3C_OBS_METRICS_HH
#define FA3C_OBS_METRICS_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/stats.hh"

namespace fa3c::obs {

/** Thread-safe registry of StatGroups with JSON export. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Fast check instrumentation sites use to skip all work. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void setEnabled(bool on);

    /** Where the JSON lands at exit / on periodic flush ("" = off). */
    void setExportPath(std::string path);

    /** Minimum seconds between periodic tick() flushes (0 = off). */
    void setFlushInterval(double seconds);

    /**
     * Launch a background thread that snapshots the registry to the
     * export path every @p seconds, independent of tick() callers (a
     * long-lived serve process flushes even when no instrumentation
     * site runs). Idempotent; <= 0 stops the thread instead.
     */
    void startPeriodicFlush(double seconds);

    /** Join the periodic-flush thread (also run by the destructor). */
    void stopPeriodicFlush();

    /**
     * Register a live group owned by the caller. @p group must stay
     * valid until unregisterGroup() is called with the returned
     * (possibly uniquified) name.
     */
    std::string registerGroup(const std::string &name,
                              const sim::StatGroup *group);

    /** Drop a live group, retaining its final snapshot for export. */
    void unregisterGroup(const std::string &name);

    /** Bump a counter in a registry-owned group (no-op if disabled). */
    void count(const std::string &group, const std::string &name,
               std::uint64_t delta = 1);

    /** Sample a distribution in a registry-owned group (no-op if
     * disabled). */
    void sample(const std::string &group, const std::string &name,
                double v);

    /** Periodic-flush hook; cheap while disabled or within the
     * interval. */
    void tick();

    /**
     * Register @p hook to run at the start of every snapshot
     * (snapshotJson / forEachGroup / periodic flush) while the
     * registry lock is held. Bridges use this to sync externally
     * owned data — perf-counter files, the profiler — into live
     * StatGroups just before they are read, so exports always see
     * current values. Hooks MUST NOT call back into the registry
     * (the lock is held); they should only mutate StatGroups they
     * themselves registered. Hooks are skipped in flushBestEffort()
     * (the signal-handler path must stay minimal).
     */
    void addSnapshotHook(std::function<void()> hook);

    /** The full registry as a JSON document. */
    std::string snapshotJson() const;

    /**
     * Visit every group (live, registry-owned, and retained — the
     * latter with the same "@N" suffixing the JSON export uses) under
     * the registry lock. @p fn must not call back into the registry.
     */
    void forEachGroup(
        const std::function<void(const std::string &,
                                 const sim::StatGroup &)> &fn) const;

    /**
     * Serialize to @p path; returns false on I/O failure. The write
     * goes through a same-directory temp file renamed into place, so
     * a crash mid-write never leaves a truncated document behind.
     */
    bool writeTo(const std::string &path) const;

    /**
     * Write the export file now if the lock is free (signal-handler
     * path: skips rather than deadlocks when a flush is in flight).
     */
    bool flushBestEffort() const;

    /** Groups currently visible (live + owned + retained). */
    std::size_t groupCount() const;

  private:
    mutable std::mutex mutex_;
    std::atomic<bool> enabled_{false};
    std::string exportPath_;
    double flushIntervalSec_ = 0.0;
    std::chrono::steady_clock::time_point lastFlush_{};
    std::map<std::string, const sim::StatGroup *> live_;
    std::map<std::string, sim::StatGroup> owned_;
    std::vector<std::pair<std::string, sim::StatGroup>> retained_;
    std::vector<std::function<void()>> snapshotHooks_;
    int uniq_ = 0;

    // Periodic-flush thread state (flusherMutex_ only guards these;
    // it is never held together with mutex_).
    std::mutex flusherMutex_;
    std::condition_variable flusherCv_;
    std::thread flusher_;
    double flusherSec_ = 0.0;
    bool flusherStop_ = false;

    std::string snapshotJsonLocked() const;
    void flusherMain();
};

/**
 * RAII registration of a component-owned StatGroup with the global
 * registry: registers on construction (when metrics are enabled),
 * unregisters — retaining a final snapshot — on destruction.
 */
class ScopedMetricsGroup
{
  public:
    ScopedMetricsGroup(MetricsRegistry &registry,
                       const std::string &name,
                       const sim::StatGroup *group);
    ~ScopedMetricsGroup();

    ScopedMetricsGroup(const ScopedMetricsGroup &) = delete;
    ScopedMetricsGroup &operator=(const ScopedMetricsGroup &) = delete;

  private:
    MetricsRegistry *registry_ = nullptr;
    std::string name_;
};

/**
 * The process-wide registry, configured on first use from
 * FA3C_METRICS_JSON / FA3C_METRICS_INTERVAL_SEC. Its destructor (at
 * process exit) writes the export file.
 */
MetricsRegistry &metrics();

} // namespace fa3c::obs

#endif // FA3C_OBS_METRICS_HH
