#include "obs/perf_export.hh"

#include <mutex>
#include <set>

#include "obs/metrics.hh"
#include "sim/perf_counters.hh"
#include "sim/stats.hh"

namespace fa3c::obs {

namespace {

/**
 * The bridge's live StatGroup. Only ever mutated from the snapshot
 * hook, which the registry runs under its own lock — the same lock
 * that guards every reader of live groups.
 */
sim::StatGroup &
perfGroup()
{
    // Immortal for the same reason as sim::perf(): the registry's
    // exit-time export still reads this group through the hook.
    static sim::StatGroup *group = new sim::StatGroup();
    return *group;
}

void
syncPerfGroup()
{
    sim::StatGroup &group = perfGroup();
    sim::perf().forEachBank([&group](const sim::PerfBank &bank) {
        for (const auto &[name, value] : bank.snapshot()) {
            sim::Counter &c = group.counter(bank.name() + "." + name);
            c.reset();
            c.inc(value);
        }
    });
}

} // namespace

void
installPerfExport(MetricsRegistry &registry)
{
    static std::mutex installMutex;
    static std::set<const MetricsRegistry *> installed;
    {
        std::lock_guard<std::mutex> lock(installMutex);
        if (!installed.insert(&registry).second)
            return;
    }
    registry.registerGroup("fa3c.perf", &perfGroup());
    registry.addSnapshotHook(syncPerfGroup);
}

} // namespace fa3c::obs
