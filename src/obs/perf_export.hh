/**
 * @file
 * Bridge from the process-global perf-counter file (sim::perf())
 * into the metrics registry. Installs a snapshot hook that copies
 * every bank's counters into a live StatGroup named "fa3c.perf"
 * (counter keys "<bank>.<counter>") immediately before each
 * snapshot, so the JSON export and the Prometheus endpoint always
 * see current hardware-counter values without the hot increment
 * paths ever touching the registry lock.
 */

#ifndef FA3C_OBS_PERF_EXPORT_HH
#define FA3C_OBS_PERF_EXPORT_HH

namespace fa3c::obs {

class MetricsRegistry;

/**
 * Install the sim::perf() bridge on @p registry (idempotent per
 * registry; the global metrics() registry installs it automatically).
 */
void installPerfExport(MetricsRegistry &registry);

} // namespace fa3c::obs

#endif // FA3C_OBS_PERF_EXPORT_HH
