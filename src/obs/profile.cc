#include "obs/profile.hh"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>
#include <vector>

#include "obs/metrics.hh"
#include "sim/stats.hh"

namespace fa3c::obs {

namespace {

/** Per-site accumulator. Fields are relaxed atomics so the owning
 * thread writes without a lock and snapshot readers never tear. */
struct Accum
{
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> totalNs{0};
    std::atomic<std::uint64_t> maxNs{0};
    std::atomic<std::uint64_t> childNs{0};

    void
    reset()
    {
        count.store(0, std::memory_order_relaxed);
        totalNs.store(0, std::memory_order_relaxed);
        maxNs.store(0, std::memory_order_relaxed);
        childNs.store(0, std::memory_order_relaxed);
    }
};

struct ThreadState;

/** Global profiler state: the site table, the live-thread list, and
 * retired-thread totals. Immortal — thread_local destructors and the
 * metrics registry's exit-time export both touch it arbitrarily late. */
struct Global
{
    std::mutex mutex;
    std::vector<const char *> labels;     // index -> label
    std::vector<ThreadState *> threads;   // live threads
    std::array<Accum, kMaxProfSites> retired; // totals of exited threads
};

Global &
global()
{
    static Global *g = new Global();
    return *g;
}

std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> *flag = [] {
        auto *f = new std::atomic<bool>(false);
        if (const char *env = std::getenv("FA3C_PROF");
            env && *env && *env != '0')
            f->store(true, std::memory_order_relaxed);
        return f;
    }();
    return *flag;
}

/** One live scope on a thread's stack. */
struct Frame
{
    int site;
    std::uint64_t childNs;
};

struct ThreadState
{
    std::array<Accum, kMaxProfSites> accum;
    std::vector<Frame> stack;

    ThreadState()
    {
        stack.reserve(32);
        Global &g = global();
        std::lock_guard<std::mutex> lock(g.mutex);
        g.threads.push_back(this);
    }

    ~ThreadState()
    {
        Global &g = global();
        std::lock_guard<std::mutex> lock(g.mutex);
        for (int i = 0; i < kMaxProfSites; ++i) {
            const Accum &a = accum[i];
            Accum &r = g.retired[i];
            r.count.fetch_add(
                a.count.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
            r.totalNs.fetch_add(
                a.totalNs.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
            r.childNs.fetch_add(
                a.childNs.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
            const std::uint64_t m =
                a.maxNs.load(std::memory_order_relaxed);
            if (m > r.maxNs.load(std::memory_order_relaxed))
                r.maxNs.store(m, std::memory_order_relaxed);
        }
        g.threads.erase(
            std::find(g.threads.begin(), g.threads.end(), this));
    }
};

ThreadState &
threadState()
{
    thread_local ThreadState state;
    return state;
}

void
mergeInto(std::array<ProfSiteStats, kMaxProfSites> &out,
          const std::array<Accum, kMaxProfSites> &in)
{
    for (int i = 0; i < kMaxProfSites; ++i) {
        out[i].count += in[i].count.load(std::memory_order_relaxed);
        out[i].totalNs +=
            in[i].totalNs.load(std::memory_order_relaxed);
        out[i].childNs +=
            in[i].childNs.load(std::memory_order_relaxed);
        out[i].maxNs =
            std::max(out[i].maxNs,
                     in[i].maxNs.load(std::memory_order_relaxed));
    }
}

} // namespace

bool
profilingEnabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

void
setProfilingEnabled(bool on)
{
    enabledFlag().store(on, std::memory_order_relaxed);
}

ProfSite::ProfSite(const char *label) : label_(label), index_(-1)
{
    Global &g = global();
    std::lock_guard<std::mutex> lock(g.mutex);
    if (g.labels.size() < kMaxProfSites) {
        index_ = static_cast<int>(g.labels.size());
        g.labels.push_back(label);
    }
}

void
ProfScope::enter()
{
    ThreadState &ts = threadState();
    ts.stack.push_back(Frame{site_->index(), 0});
}

void
ProfScope::record()
{
    const auto end = std::chrono::steady_clock::now();
    const std::uint64_t elapsed = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                             start_)
            .count());
    ThreadState &ts = threadState();
    const int site = site_->index();

    // Scopes are strictly nested per thread, so our frame is the top
    // of the stack; it holds the time our direct children recorded.
    std::uint64_t childNs = 0;
    if (!ts.stack.empty() && ts.stack.back().site == site) {
        childNs = ts.stack.back().childNs;
        ts.stack.pop_back();
    }

    Accum &a = ts.accum[site];
    a.count.fetch_add(1, std::memory_order_relaxed);
    a.totalNs.fetch_add(elapsed, std::memory_order_relaxed);
    a.childNs.fetch_add(childNs, std::memory_order_relaxed);
    if (elapsed > a.maxNs.load(std::memory_order_relaxed))
        a.maxNs.store(elapsed, std::memory_order_relaxed);

    // Attribute our elapsed time to the enclosing scope, if any.
    if (!ts.stack.empty())
        ts.stack.back().childNs += elapsed;
}

std::map<std::string, ProfSiteStats>
profSnapshot()
{
    Global &g = global();
    std::array<ProfSiteStats, kMaxProfSites> merged{};
    std::vector<const char *> labels;
    {
        std::lock_guard<std::mutex> lock(g.mutex);
        labels = g.labels;
        mergeInto(merged, g.retired);
        for (const ThreadState *ts : g.threads)
            mergeInto(merged, ts->accum);
    }
    std::map<std::string, ProfSiteStats> out;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (merged[i].count)
            out.emplace(labels[i], merged[i]);
    }
    return out;
}

void
profReset()
{
    Global &g = global();
    std::lock_guard<std::mutex> lock(g.mutex);
    for (auto &a : g.retired)
        a.reset();
    for (ThreadState *ts : g.threads)
        for (auto &a : ts->accum)
            a.reset();
}

std::string
profReport()
{
    const auto snap = profSnapshot();
    // Sort by self time, heaviest first.
    std::vector<std::pair<std::string, ProfSiteStats>> rows(
        snap.begin(), snap.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second.selfNs() > b.second.selfNs();
              });
    std::ostringstream os;
    os << "# fa3c profiler ("
       << (profilingEnabled() ? "enabled" : "disabled") << ")\n";
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-32s %10s %12s %12s %12s %12s\n",
                  "site", "count", "total_ms", "self_ms", "avg_us",
                  "max_us");
    os << buf;
    for (const auto &[label, s] : rows) {
        std::snprintf(
            buf, sizeof(buf),
            "%-32s %10llu %12.3f %12.3f %12.3f %12.3f\n",
            label.c_str(),
            static_cast<unsigned long long>(s.count),
            static_cast<double>(s.totalNs) / 1e6,
            static_cast<double>(s.selfNs()) / 1e6,
            s.count ? static_cast<double>(s.totalNs) / 1e3 /
                          static_cast<double>(s.count)
                    : 0.0,
            static_cast<double>(s.maxNs) / 1e3);
        os << buf;
    }
    return os.str();
}

namespace {

sim::StatGroup &
profGroup()
{
    // Immortal: read by the metrics registry's exit-time export.
    static sim::StatGroup *group = new sim::StatGroup();
    return *group;
}

void
syncProfGroup()
{
    sim::StatGroup &group = profGroup();
    for (const auto &[label, s] : profSnapshot()) {
        auto set = [&group, &label](const char *stat,
                                    std::uint64_t v) {
            sim::Counter &c = group.counter(label + "." + stat);
            c.reset();
            c.inc(v);
        };
        set("count", s.count);
        set("total_ns", s.totalNs);
        set("self_ns", s.selfNs());
        set("max_ns", s.maxNs);
    }
}

} // namespace

void
installProfileExport(MetricsRegistry &registry)
{
    static std::mutex installMutex;
    static std::set<const MetricsRegistry *> installed;
    {
        std::lock_guard<std::mutex> lock(installMutex);
        if (!installed.insert(&registry).second)
            return;
    }
    registry.registerGroup("prof", &profGroup());
    registry.addSnapshotHook(syncProfGroup);
}

} // namespace fa3c::obs
