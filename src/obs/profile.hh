/**
 * @file
 * Host-side scoped profiler.
 *
 * FA3C_PROF_SCOPE("label") drops an RAII ProfScope into a function:
 * while profiling is enabled it records count / total / max wall time
 * per labelled site, aggregated thread-locally so hot paths (kernel
 * inner loops, serve workers) never contend on a shared lock. Each
 * scope also accounts its elapsed time to the enclosing scope's
 * child total, so reports can show self time (total minus children)
 * separately from inclusive time.
 *
 * When disabled (the default), a scope costs one relaxed atomic load
 * and a branch — cheap enough to compile into release builds
 * unconditionally. Enable with FA3C_PROF=1 in the environment or
 * setProfilingEnabled(true) at runtime.
 *
 * Sites are identified by function-local static ProfSite objects, so
 * label lookup happens once per site, not per invocation. The site
 * table is bounded (kMaxProfSites); sites past the bound are silently
 * dropped rather than slowing the hot path with a dynamic map.
 *
 * Aggregation: per-thread accumulator slabs are registered in a
 * global list; profSnapshot() merges live threads and retired-thread
 * totals. Accumulator fields are relaxed atomics, so readers never
 * block writers and a concurrent snapshot is only ever "slightly
 * stale", not corrupt.
 */

#ifndef FA3C_OBS_PROFILE_HH
#define FA3C_OBS_PROFILE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace fa3c::obs {

class MetricsRegistry;

/** Upper bound on distinct FA3C_PROF_SCOPE sites in one binary. */
constexpr int kMaxProfSites = 256;

/** Is scope recording currently on? (relaxed atomic read) */
bool profilingEnabled();

/** Turn scope recording on or off at runtime. */
void setProfilingEnabled(bool on);

/** One instrumentation site; create as a function-local static. */
class ProfSite
{
  public:
    explicit ProfSite(const char *label);

    ProfSite(const ProfSite &) = delete;
    ProfSite &operator=(const ProfSite &) = delete;

    const char *label() const { return label_; }

    /** Slot in the per-thread accumulator slab; -1 when the site
     * table was full and this site is not recorded. */
    int index() const { return index_; }

  private:
    const char *label_;
    int index_;
};

/** RAII timer for one dynamic entry into a site. */
class ProfScope
{
  public:
    explicit ProfScope(ProfSite &site)
    {
        if (!profilingEnabled() || site.index() < 0)
            return;
        site_ = &site;
        enter();
        // Stamp after enter() so the frame push is not timed.
        start_ = std::chrono::steady_clock::now();
    }

    ~ProfScope()
    {
        if (site_)
            record();
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    ProfSite *site_ = nullptr;
    std::chrono::steady_clock::time_point start_;

    void enter();
    void record();
};

/** Aggregated stats for one site across all threads. */
struct ProfSiteStats
{
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t maxNs = 0;
    std::uint64_t childNs = 0;

    std::uint64_t
    selfNs() const
    {
        return totalNs >= childNs ? totalNs - childNs : 0;
    }
};

/** Merge every thread's accumulators, keyed by site label. */
std::map<std::string, ProfSiteStats> profSnapshot();

/** Zero all accumulators (live threads and retired totals). */
void profReset();

/** Human-readable roll-up table (the /profilez payload). */
std::string profReport();

/**
 * Register the profiler bridge on @p registry (idempotent per
 * registry): a live StatGroup "prof" with per-site counters
 * <label>.count / .total_ns / .self_ns / .max_ns, synced by a
 * snapshot hook.
 */
void installProfileExport(MetricsRegistry &registry);

} // namespace fa3c::obs

// Token-pasting helpers so two scopes can share a line if needed.
#define FA3C_PROF_CONCAT2(a, b) a##b
#define FA3C_PROF_CONCAT(a, b) FA3C_PROF_CONCAT2(a, b)

/** Profile the rest of the enclosing scope under @p label. */
#define FA3C_PROF_SCOPE(label)                                        \
    static ::fa3c::obs::ProfSite FA3C_PROF_CONCAT(fa3cProfSite_,      \
                                                  __LINE__)(label);   \
    ::fa3c::obs::ProfScope FA3C_PROF_CONCAT(fa3cProfScope_, __LINE__)( \
        FA3C_PROF_CONCAT(fa3cProfSite_, __LINE__))

#endif // FA3C_OBS_PROFILE_HH
