#include "obs/prometheus.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/metrics.hh"

namespace fa3c::obs {

namespace {

/** Exposition-format number: finite shortest-round-trip decimal. */
std::string
promNumber(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

std::string
promSanitize(std::string_view name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

std::string
promEscapeLabelValue(std::string_view value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out.push_back(c);
        }
    }
    return out;
}

std::string
PromWriter::header(std::string_view name, const char *type,
                   std::string_view help)
{
    std::string family = promSanitize(name);
    if (seen_.insert(family).second) {
        if (!help.empty())
            os_ << "# HELP " << family << ' ' << help << '\n';
        os_ << "# TYPE " << family << ' ' << type << '\n';
    }
    return family;
}

void
PromWriter::gauge(std::string_view name, double value,
                  std::string_view help)
{
    os_ << header(name, "gauge", help) << ' ' << promNumber(value)
        << '\n';
}

void
PromWriter::counter(std::string_view name, std::uint64_t value,
                    std::string_view help)
{
    os_ << header(name, "counter", help) << ' ' << value << '\n';
}

void
PromWriter::labelSet(std::span<const PromLabel> labels)
{
    if (labels.empty())
        return;
    os_ << '{';
    bool first = true;
    for (const auto &label : labels) {
        if (!first)
            os_ << ',';
        first = false;
        os_ << promSanitize(label.key) << "=\""
            << promEscapeLabelValue(label.value) << '"';
    }
    os_ << '}';
}

void
PromWriter::gauge(std::string_view name,
                  std::span<const PromLabel> labels, double value,
                  std::string_view help)
{
    os_ << header(name, "gauge", help);
    labelSet(labels);
    os_ << ' ' << promNumber(value) << '\n';
}

void
PromWriter::counter(std::string_view name,
                    std::span<const PromLabel> labels,
                    std::uint64_t value, std::string_view help)
{
    os_ << header(name, "counter", help);
    labelSet(labels);
    os_ << ' ' << value << '\n';
}

void
PromWriter::histogram(std::string_view name, const sim::Distribution &d,
                      std::string_view help)
{
    const std::string family = header(name, "histogram", help);
    std::uint64_t cumulative = 0;
    for (const auto &bucket : d.nonEmptyBuckets()) {
        if (std::isinf(bucket.upperBound))
            break; // folded into the +Inf bucket below
        cumulative += bucket.count;
        os_ << family << "_bucket{le=\""
            << promNumber(bucket.upperBound) << "\"} " << cumulative
            << '\n';
    }
    os_ << family << "_bucket{le=\"+Inf\"} " << d.count() << '\n';
    os_ << family << "_sum " << promNumber(d.sum()) << '\n';
    os_ << family << "_count " << d.count() << '\n';
}

void
PromWriter::typedSample(std::string_view family, std::string_view type,
                        std::string_view sample_name,
                        std::span<const PromLabel> labels, double value,
                        std::string_view help)
{
    const std::string t(type);
    (void)header(family, t.c_str(), help);
    os_ << promSanitize(sample_name);
    labelSet(labels);
    os_ << ' ' << promNumber(value) << '\n';
}

void
writeRegistry(PromWriter &w, const MetricsRegistry &registry)
{
    registry.forEachGroup(
        [&w](const std::string &group, const sim::StatGroup &stats) {
            for (const auto &[name, counter] : stats.counters())
                w.counter(group + "_" + name, counter.value());
            for (const auto &[name, dist] : stats.distributions())
                w.histogram(group + "_" + name, dist);
        });
}

} // namespace fa3c::obs
