/**
 * @file
 * Prometheus text exposition (format 0.0.4) over the metrics layer.
 *
 * PromWriter renders gauges, counters, and histograms into the line
 * format a Prometheus scraper (or plain curl) consumes; histograms
 * come straight from sim::Distribution's log-spaced buckets, emitted
 * cumulatively at each occupied bound plus the mandatory "+Inf"
 * bucket, so `_bucket` counts are monotone and `_sum`/`_count` agree
 * with the distribution. writeRegistry() maps every MetricsRegistry
 * group onto exposition families ("serve" / "total_us" becomes
 * `serve_total_us`).
 */

#ifndef FA3C_OBS_PROMETHEUS_HH
#define FA3C_OBS_PROMETHEUS_HH

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <set>
#include <span>
#include <string>
#include <string_view>

#include "sim/stats.hh"

namespace fa3c::obs {

class MetricsRegistry;

/** Map @p name onto the Prometheus charset ([a-zA-Z0-9_:]). */
std::string promSanitize(std::string_view name);

/**
 * Escape @p value for use inside a label-value string: backslash,
 * double quote, and newline become \\, \", and \n per the exposition
 * format (other characters pass through verbatim).
 */
std::string promEscapeLabelValue(std::string_view value);

/** One key="value" label pair. The key must already be a valid label
 * name; the value is escaped at render time. */
struct PromLabel
{
    std::string_view key;
    std::string_view value;
};

/** Streaming exposition-format writer. */
class PromWriter
{
  public:
    explicit PromWriter(std::ostream &os) : os_(os) {}

    PromWriter(const PromWriter &) = delete;
    PromWriter &operator=(const PromWriter &) = delete;

    void gauge(std::string_view name, double value,
               std::string_view help = {});
    void counter(std::string_view name, std::uint64_t value,
                 std::string_view help = {});

    /** Labelled gauge sample: name{k="v",...} value. A family may mix
     * label sets across calls; HELP/TYPE are still emitted once. */
    void gauge(std::string_view name,
               std::span<const PromLabel> labels, double value,
               std::string_view help = {});
    void
    gauge(std::string_view name,
          std::initializer_list<PromLabel> labels, double value,
          std::string_view help = {})
    {
        gauge(name, std::span<const PromLabel>(labels), value, help);
    }

    /** Labelled counter sample. */
    void counter(std::string_view name,
                 std::span<const PromLabel> labels, std::uint64_t value,
                 std::string_view help = {});
    void
    counter(std::string_view name,
            std::initializer_list<PromLabel> labels,
            std::uint64_t value, std::string_view help = {})
    {
        counter(name, std::span<const PromLabel>(labels), value, help);
    }

    /** Emit @p d as a cumulative-bucket histogram family. */
    void histogram(std::string_view name, const sim::Distribution &d,
                   std::string_view help = {});

    /**
     * Raw typed sample: emit HELP/TYPE for @p family once (with the
     * caller-supplied @p type), then one `sample_name{labels} value`
     * line. @p sample_name may differ from @p family for histogram
     * series (`<family>_bucket` / `_sum` / `_count`). The fleet
     * aggregator uses this to re-emit scraped families verbatim
     * under additional labels.
     */
    void typedSample(std::string_view family, std::string_view type,
                     std::string_view sample_name,
                     std::span<const PromLabel> labels, double value,
                     std::string_view help = {});

  private:
    std::ostream &os_;
    std::set<std::string> seen_; ///< families already given TYPE lines

    /** Emit # HELP / # TYPE once per family; @return family name. */
    std::string header(std::string_view name, const char *type,
                       std::string_view help);

    /** Render {k="v",...}; empty label sets render nothing. */
    void labelSet(std::span<const PromLabel> labels);
};

/**
 * Render every group of @p registry: counters as counter families,
 * distributions as histogram families, named `<group>_<stat>`.
 */
void writeRegistry(PromWriter &w, const MetricsRegistry &registry);

} // namespace fa3c::obs

#endif // FA3C_OBS_PROMETHEUS_HH
