#include "obs/slo.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.hh"

namespace fa3c::obs {

SloMonitor::SloMonitor(Config cfg)
    : cfg_(std::move(cfg)),
      sliceDur_(std::max(cfg_.windowSec, 1e-3) /
                std::max(cfg_.slices, 1)),
      ring_(static_cast<std::size_t>(std::max(cfg_.slices, 1))),
      clock_([] { return std::chrono::steady_clock::now(); })
{
}

SloMonitor::Config
SloMonitor::configFromEnv(Config cfg)
{
    if (const char *w = std::getenv("FA3C_SLO_WINDOW_SEC"); w && *w)
        cfg.windowSec = std::max(std::strtod(w, nullptr), 1e-3);
    if (const char *b = std::getenv("FA3C_SLO_MISS_BUDGET"); b && *b)
        cfg.missBudget =
            std::clamp(std::strtod(b, nullptr), 1e-9, 1.0);
    return cfg;
}

void
SloMonitor::setClock(
    std::function<std::chrono::steady_clock::time_point()> clock)
{
    std::lock_guard<std::mutex> lock(mutex_);
    clock_ = std::move(clock);
}

void
SloMonitor::expireStaleLocked(
    std::chrono::steady_clock::time_point now) const
{
    const auto window = std::chrono::duration<double>(cfg_.windowSec);
    for (auto &slice : ring_) {
        if (slice.active && now - slice.start > window)
            slice = Slice{};
    }
}

SloMonitor::Slice &
SloMonitor::currentSliceLocked()
{
    const auto now = clock_();
    expireStaleLocked(now);
    Slice *slice = &ring_[current_];
    if (slice->active && now - slice->start >= sliceDur_) {
        current_ = (current_ + 1) % ring_.size();
        slice = &ring_[current_];
        *slice = Slice{};
    }
    if (!slice->active) {
        slice->active = true;
        slice->start = now;
    }
    return *slice;
}

void
SloMonitor::recordServed(double totalUs, bool deadlineMiss)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Slice &slice = currentSliceLocked();
    slice.latencyUs.sample(totalUs);
    ++slice.served;
    if (deadlineMiss)
        ++slice.missed;
}

void
SloMonitor::recordTimedOut()
{
    std::lock_guard<std::mutex> lock(mutex_);
    Slice &slice = currentSliceLocked();
    ++slice.timedOut;
    ++slice.missed;
}

void
SloMonitor::recordRejected()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++currentSliceLocked().rejected;
}

SloMonitor::Snapshot
SloMonitor::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    expireStaleLocked(clock_());
    Snapshot snap;
    sim::Distribution merged;
    for (const auto &slice : ring_) {
        if (!slice.active)
            continue;
        merged.merge(slice.latencyUs);
        snap.served += slice.served;
        snap.missed += slice.missed;
        snap.timedOut += slice.timedOut;
        snap.rejected += slice.rejected;
    }
    snap.p50Us = merged.percentile(50.0);
    snap.p95Us = merged.percentile(95.0);
    snap.p99Us = merged.percentile(99.0);
    const std::uint64_t attempts = snap.served + snap.timedOut;
    if (attempts > 0)
        snap.missRatio = static_cast<double>(snap.missed) /
                         static_cast<double>(attempts);
    snap.burn = snap.missRatio / std::max(cfg_.missBudget, 1e-9);
    if (snap.burn > 1.0) {
        if (!breached_) {
            breached_ = true;
            FA3C_WARN("slo[", cfg_.name, "]: budget breach, burn=",
                      snap.burn, " missRatio=", snap.missRatio,
                      " budget=", cfg_.missBudget, " window=",
                      cfg_.windowSec, "s p99=", snap.p99Us, "us");
        }
    } else {
        breached_ = false;
    }
    return snap;
}

} // namespace fa3c::obs
