/**
 * @file
 * Rolling-window SLO monitor for the serve pipeline.
 *
 * Lifetime histograms (MetricsRegistry) answer "how has this process
 * done since it started"; an SLO monitor answers "how is it doing
 * right now". SloMonitor keeps a ring of time slices, each holding a
 * latency Distribution plus served/missed/timed-out/rejected
 * counters; slices older than the window are recycled as time
 * advances, so every snapshot reflects only the last windowSec
 * seconds. From the merged window it derives p50/p95/p99 latency,
 * the deadline-miss ratio, and the SRE-style burn rate
 * (missRatio / missBudget — burn > 1 means the error budget is being
 * spent faster than allowed). A breach is logged once per crossing,
 * and the `slo_burn` gauge is exported on /metrics.
 *
 * The clock is injectable so tests can march time deterministically.
 */

#ifndef FA3C_OBS_SLO_HH
#define FA3C_OBS_SLO_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace fa3c::obs {

class SloMonitor
{
  public:
    struct Config
    {
        double windowSec = 60.0;  ///< FA3C_SLO_WINDOW_SEC
        double missBudget = 0.01; ///< FA3C_SLO_MISS_BUDGET
        int slices = 12;          ///< window granularity
        std::string name = "serve"; ///< used in breach log lines
    };

    /** Window state merged at snapshot time. */
    struct Snapshot
    {
        std::uint64_t served = 0;   ///< completed in the window
        std::uint64_t missed = 0;   ///< served late + timed out
        std::uint64_t timedOut = 0;
        std::uint64_t rejected = 0; ///< admission rejects (not misses)
        double p50Us = 0.0;
        double p95Us = 0.0;
        double p99Us = 0.0;
        double missRatio = 0.0; ///< missed / (served + timedOut)
        double burn = 0.0;      ///< missRatio / missBudget
    };

    SloMonitor() : SloMonitor(Config()) {}
    explicit SloMonitor(Config cfg);

    /** Config with windowSec/missBudget overridden from the env. */
    static Config configFromEnv(Config cfg);
    static Config configFromEnv() { return configFromEnv(Config()); }

    /** Inject a clock for deterministic tests (default: steady). */
    void setClock(
        std::function<std::chrono::steady_clock::time_point()> clock);

    /** A request completed with end-to-end latency @p totalUs. */
    void recordServed(double totalUs, bool deadlineMiss);

    /** A request expired in the queue before inference. */
    void recordTimedOut();

    /** A request was refused at admission. */
    void recordRejected();

    /** Merge the live window; logs on a fresh budget breach. */
    Snapshot snapshot() const;

    const Config &config() const { return cfg_; }

  private:
    struct Slice
    {
        std::chrono::steady_clock::time_point start{};
        bool active = false;
        sim::Distribution latencyUs;
        std::uint64_t served = 0;
        std::uint64_t missed = 0;
        std::uint64_t timedOut = 0;
        std::uint64_t rejected = 0;
    };

    Config cfg_;
    std::chrono::duration<double> sliceDur_;
    mutable std::mutex mutex_;
    mutable std::vector<Slice> ring_;
    mutable std::size_t current_ = 0;
    mutable bool breached_ = false;
    std::function<std::chrono::steady_clock::time_point()> clock_;

    Slice &currentSliceLocked();
    void expireStaleLocked(
        std::chrono::steady_clock::time_point now) const;
};

} // namespace fa3c::obs

#endif // FA3C_OBS_SLO_HH
