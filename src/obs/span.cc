#include "obs/span.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <random>
#include <thread>
#include <vector>

namespace fa3c::obs {

namespace {

std::atomic<double> g_sampleRate{[] {
    if (const char *rate = std::getenv("FA3C_TRACE_SAMPLE");
        rate && *rate)
        return std::clamp(std::strtod(rate, nullptr), 0.0, 1.0);
    return 1.0;
}()};

/** Per-thread splitmix64 for ids and sampling, no locks. */
std::uint64_t
nextRandom()
{
    thread_local std::uint64_t state = [] {
        std::random_device rd;
        return (static_cast<std::uint64_t>(rd()) << 32) ^ rd() ^
               std::hash<std::thread::id>{}(
                   std::this_thread::get_id());
    }();
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Nonzero id exactly representable as a double (< 2^48). */
std::uint64_t
nextId()
{
    for (;;) {
        const std::uint64_t id = nextRandom() & ((1ull << 48) - 1);
        if (id != 0)
            return id;
    }
}

} // namespace

double
spanSampleRate()
{
    return g_sampleRate.load(std::memory_order_relaxed);
}

void
setSpanSampleRate(double rate)
{
    g_sampleRate.store(std::clamp(rate, 0.0, 1.0),
                       std::memory_order_relaxed);
}

SpanContext
rootSpan()
{
    SpanContext ctx;
    ctx.trace = nextId();
    ctx.span = nextId();
    ctx.parent = 0;
    if (trace() != nullptr) {
        const double rate = spanSampleRate();
        ctx.sampled =
            rate >= 1.0 ||
            (rate > 0.0 &&
             static_cast<double>(nextRandom() >> 11) * 0x1.0p-53 <
                 rate);
    }
    return ctx;
}

SpanContext
childSpan(const SpanContext &parent)
{
    if (!parent.valid())
        return rootSpan();
    SpanContext ctx;
    ctx.trace = parent.trace;
    ctx.span = nextId();
    ctx.parent = parent.span;
    ctx.sampled = parent.sampled;
    return ctx;
}

SpanContext
remoteChildSpan(std::uint64_t trace_id, std::uint64_t parent_span_id,
                bool sampled)
{
    if (trace_id == 0)
        return rootSpan();
    SpanContext ctx;
    ctx.trace = trace_id;
    ctx.span = nextId();
    ctx.parent = parent_span_id;
    ctx.sampled = sampled;
    return ctx;
}

void
emitSpan(const SpanContext &ctx, const std::string &track,
         const std::string &name,
         std::chrono::steady_clock::time_point start,
         std::chrono::steady_clock::time_point end,
         std::span<const TraceArg> extra)
{
    if (!ctx.sampled)
        return;
    TraceWriter *tw = trace();
    if (!tw)
        return;
    std::vector<TraceArg> args;
    args.reserve(extra.size() + 3);
    args.emplace_back("trace_id", static_cast<double>(ctx.trace));
    args.emplace_back("span_id", static_cast<double>(ctx.span));
    args.emplace_back("parent_id", static_cast<double>(ctx.parent));
    args.insert(args.end(), extra.begin(), extra.end());
    tw->hostCompleteEvent(track, name, tw->hostUsAt(start),
                          tw->hostUsAt(end), args, "span");
}

} // namespace fa3c::obs
