/**
 * @file
 * Per-request span tracing over the Chrome-trace writer.
 *
 * A SpanContext is minted where a request enters the system (TCP
 * accept or PolicyServer::submit) and propagated by value through the
 * serve pipeline — queue, batch formation, inference, reply — with
 * each stage emitting a parent-linked complete event carrying
 * trace/span/parent ids in its args. Loading the trace into Perfetto
 * and filtering on `trace_id` reconstructs one request's journey
 * across threads; a batch's shared execution span links every member
 * request by id.
 *
 * Sampling is probabilistic and decided once per trace at the root
 * (FA3C_TRACE_SAMPLE, default 1.0): children inherit the decision so
 * a request is always traced end-to-end or not at all. Ids are
 * allocated even for unsampled roots so a downstream childSpan() can
 * tell "unsampled parent" (inherit the negative decision) from "no
 * parent" (make a fresh root decision). All emission is a no-op when
 * FA3C_TRACE is unset.
 */

#ifndef FA3C_OBS_SPAN_HH
#define FA3C_OBS_SPAN_HH

#include <chrono>
#include <cstdint>
#include <span>
#include <string>

#include "obs/trace.hh"

namespace fa3c::obs {

/**
 * Identity of one span in one trace. Plain value type — copy it
 * across queues and threads freely. Ids are kept under 2^48 so they
 * survive the double-typed trace args exactly.
 */
struct SpanContext
{
    std::uint64_t trace = 0;  ///< 0 = no context at all
    std::uint64_t span = 0;   ///< this span's id
    std::uint64_t parent = 0; ///< 0 = root span
    bool sampled = false;     ///< emit events for this trace?

    bool valid() const { return trace != 0; }
};

/** Trace-sampling probability in [0, 1] (FA3C_TRACE_SAMPLE). */
double spanSampleRate();

/** Override the sampling probability (clamped to [0, 1]). */
void setSpanSampleRate(double rate);

/**
 * Mint a root span: fresh trace id, fresh span id, no parent, and a
 * sampling decision (never sampled while tracing is off).
 */
SpanContext rootSpan();

/**
 * Mint a child of @p parent: same trace, fresh span id, inherited
 * sampling. An invalid parent degrades to rootSpan() so pipeline
 * stages need not care whether a caller supplied a context.
 */
SpanContext childSpan(const SpanContext &parent);

/**
 * Mint a child of a parent span that lives in ANOTHER process, from
 * the `{trace_id, parent_span_id, sampled}` triple carried on the
 * wire. A zero @p trace_id means the peer sent no context (old wire
 * version or tracing off there) and degrades to rootSpan(), so every
 * request still gets a local trace identity. The remote sampling
 * decision is inherited verbatim — a trace is sampled end-to-end
 * across the fleet or not at all.
 */
SpanContext remoteChildSpan(std::uint64_t trace_id,
                            std::uint64_t parent_span_id,
                            bool sampled);

/**
 * Emit the completed span @p ctx as a Chrome-trace event on @p track
 * (host clock, category "span") spanning [@p start, @p end], with
 * trace/span/parent ids plus @p extra in the args. No-op when the
 * context is unsampled or tracing is off.
 */
void emitSpan(const SpanContext &ctx, const std::string &track,
              const std::string &name,
              std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end,
              std::span<const TraceArg> extra = {});

} // namespace fa3c::obs

#endif // FA3C_OBS_SPAN_HH
