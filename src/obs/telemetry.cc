#include "obs/telemetry.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>

#include "obs/build_info.hh"
#include "obs/metrics.hh"
#include "obs/profile.hh"
#include "obs/prometheus.hh"
#include "sim/logging.hh"

namespace fa3c::obs {

namespace {

void
sendResponse(int fd, int status, const char *reason,
             const std::string &content_type, const std::string &body)
{
    std::ostringstream os;
    os << "HTTP/1.1 " << status << ' ' << reason << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
    const std::string msg = os.str();
    std::size_t sent = 0;
    while (sent < msg.size()) {
        const ssize_t n =
            ::send(fd, msg.data() + sent, msg.size() - sent,
                   MSG_NOSIGNAL);
        if (n <= 0)
            return;
        sent += static_cast<std::size_t>(n);
    }
}

} // namespace

TelemetryServer::TelemetryServer(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        FA3C_WARN("telemetry: socket() failed: ",
                  std::strerror(errno));
        return;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        FA3C_WARN("telemetry: cannot listen on port ", port, ": ",
                  std::strerror(errno));
        ::close(fd);
        return;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        port_ = ntohs(bound.sin_port);
    listenFd_ = fd;
    acceptor_ = std::thread([this] { acceptLoop(); });
}

TelemetryServer::~TelemetryServer()
{
    stopping_.store(true, std::memory_order_relaxed);
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptor_.joinable())
        acceptor_.join();
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

void
TelemetryServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load(std::memory_order_relaxed))
                break;
            if (errno == EINTR)
                continue;
            break;
        }
        timeval tv{};
        tv.tv_sec = 2;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        handleConnection(fd);
        ::close(fd);
    }
}

void
TelemetryServer::handleConnection(int fd)
{
    // Read until the end of the request headers; only the request
    // line matters, but draining the headers keeps clients happy.
    std::string req;
    char buf[2048];
    while (req.size() < 16 * 1024 &&
           req.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        req.append(buf, static_cast<std::size_t>(n));
    }
    std::istringstream line(req);
    std::string method, target;
    line >> method >> target;
    if (method != "GET") {
        sendResponse(fd, 405, "Method Not Allowed", "text/plain",
                     "only GET is supported\n");
        return;
    }
    if (const auto q = target.find('?'); q != std::string::npos)
        target.resize(q);
    if (target == "/metrics") {
        sendResponse(fd, 200, "OK",
                     "text/plain; version=0.0.4; charset=utf-8",
                     renderMetrics());
    } else if (target == "/healthz") {
        sendResponse(fd, 200, "OK", "text/plain", "ok\n");
    } else if (target == "/profilez") {
        sendResponse(fd, 200, "OK", "text/plain", profReport());
    } else if (target == "/buildz") {
        sendResponse(fd, 200, "OK", "application/json",
                     buildInfoJson());
    } else if (target == "/readyz") {
        std::string body;
        const bool ready = renderReady(body);
        if (ready)
            sendResponse(fd, 200, "OK", "text/plain", body);
        else
            sendResponse(fd, 503, "Service Unavailable", "text/plain",
                         body);
    } else {
        sendResponse(fd, 404, "Not Found", "text/plain",
                     "unknown path; try /metrics, /healthz, "
                     "/readyz, /profilez, /buildz\n");
    }
}

std::string
TelemetryServer::renderMetrics() const
{
    std::ostringstream os;
    PromWriter w(os);
    writeRegistry(w, metrics());
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[id, collector] : collectors_)
        collector(w);
    return os.str();
}

bool
TelemetryServer::renderReady(std::string &body) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (probes_.empty()) {
        body = "not ready: no components registered\n";
        return false;
    }
    bool ready = true;
    std::ostringstream os;
    for (const auto &[id, named] : probes_) {
        std::string detail;
        const bool up = named.second(detail);
        ready = ready && up;
        os << (up ? "ok  " : "FAIL") << ' ' << named.first;
        if (!detail.empty())
            os << ": " << detail;
        os << '\n';
    }
    body = os.str();
    return ready;
}

int
TelemetryServer::addCollector(Collector fn)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const int id = nextId_++;
    collectors_.emplace(id, std::move(fn));
    return id;
}

void
TelemetryServer::removeCollector(int id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    collectors_.erase(id);
}

int
TelemetryServer::addReadiness(std::string name, Probe fn)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const int id = nextId_++;
    probes_.emplace(id,
                    std::make_pair(std::move(name), std::move(fn)));
    return id;
}

void
TelemetryServer::removeReadiness(int id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    probes_.erase(id);
}

TelemetryRegistration::TelemetryRegistration(
    TelemetryServer *server, TelemetryServer::Collector collector,
    std::string readyName, TelemetryServer::Probe ready)
    : server_(server)
{
    if (!server_)
        return;
    if (collector)
        collectorId_ = server_->addCollector(std::move(collector));
    if (ready)
        probeId_ = server_->addReadiness(std::move(readyName),
                                         std::move(ready));
}

TelemetryRegistration::~TelemetryRegistration()
{
    reset();
}

TelemetryRegistration::TelemetryRegistration(
    TelemetryRegistration &&other) noexcept
    : server_(other.server_), collectorId_(other.collectorId_),
      probeId_(other.probeId_)
{
    other.server_ = nullptr;
    other.collectorId_ = -1;
    other.probeId_ = -1;
}

TelemetryRegistration &
TelemetryRegistration::operator=(TelemetryRegistration &&other) noexcept
{
    if (this != &other) {
        reset();
        server_ = other.server_;
        collectorId_ = other.collectorId_;
        probeId_ = other.probeId_;
        other.server_ = nullptr;
        other.collectorId_ = -1;
        other.probeId_ = -1;
    }
    return *this;
}

void
TelemetryRegistration::reset()
{
    if (!server_)
        return;
    if (collectorId_ >= 0)
        server_->removeCollector(collectorId_);
    if (probeId_ >= 0)
        server_->removeReadiness(probeId_);
    server_ = nullptr;
    collectorId_ = -1;
    probeId_ = -1;
}

TelemetryServer *
telemetry()
{
    static std::unique_ptr<TelemetryServer> global =
        []() -> std::unique_ptr<TelemetryServer> {
        const char *port = std::getenv("FA3C_TELEMETRY_PORT");
        if (!port || !*port)
            return nullptr;
        auto server = std::make_unique<TelemetryServer>(
            std::atoi(port));
        if (!server->ok())
            return nullptr;
        // A scrapable endpoint implies live metrics, even without a
        // JSON export path configured.
        metrics().setEnabled(true);
        FA3C_INFORM("telemetry: serving /metrics /healthz /readyz "
                    "/profilez /buildz on 127.0.0.1:",
                    server->port());
        return server;
    }();
    return global.get();
}

} // namespace fa3c::obs
