/**
 * @file
 * Embedded HTTP telemetry endpoint.
 *
 * A TelemetryServer listens on a loopback TCP port and serves three
 * paths to a scraper (Prometheus, curl, or the CI smoke job):
 *
 *  - /metrics : Prometheus text exposition of every MetricsRegistry
 *    group, plus whatever the registered collectors add (live gauges
 *    like queue depth, model version, and slo_burn);
 *  - /healthz : liveness — 200 as long as the process serves HTTP;
 *  - /readyz  : readiness — 200 only when at least one component has
 *    registered a readiness probe and all probes pass, 503 otherwise
 *    (each probe contributes a named detail line).
 *
 * Components attach via TelemetryRegistration, an RAII handle that
 * adds a collector and (optionally) a readiness probe on
 * construction and removes both on destruction — so a PolicyServer
 * or trainer going away cleanly drops out of /readyz.
 *
 * The global instance is created on first telemetry() call when
 * FA3C_TELEMETRY_PORT is set (0 picks an ephemeral port, printed at
 * startup); enabling it also enables the metrics registry so
 * instrumentation records without FA3C_METRICS_JSON.
 *
 * Connections are handled synchronously on the accept thread with a
 * receive timeout — scrapes are rare and tiny, and one thread keeps
 * the server trivially safe to tear down.
 */

#ifndef FA3C_OBS_TELEMETRY_HH
#define FA3C_OBS_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

namespace fa3c::obs {

class PromWriter;

class TelemetryServer
{
  public:
    /** Collector: append component gauges to a /metrics scrape. */
    using Collector = std::function<void(PromWriter &)>;

    /** Probe: return readiness, append a human detail line. */
    using Probe = std::function<bool(std::string &detail)>;

    /** Bind and start serving on @p port (0 = ephemeral). */
    explicit TelemetryServer(int port);
    ~TelemetryServer();

    TelemetryServer(const TelemetryServer &) = delete;
    TelemetryServer &operator=(const TelemetryServer &) = delete;

    /** False when the socket could not be bound. */
    bool ok() const { return listenFd_ >= 0; }

    /** The bound port (resolved even when constructed with 0). */
    int port() const { return port_; }

    int addCollector(Collector fn);
    void removeCollector(int id);

    int addReadiness(std::string name, Probe fn);
    void removeReadiness(int id);

    /** Render one /metrics body (also used directly by tests). */
    std::string renderMetrics() const;

    /** Render /readyz; @return true when ready (HTTP 200). */
    bool renderReady(std::string &body) const;

  private:
    int listenFd_ = -1;
    int port_ = 0;
    std::thread acceptor_;
    std::atomic<bool> stopping_{false};

    mutable std::mutex mutex_;
    std::map<int, Collector> collectors_;
    std::map<int, std::pair<std::string, Probe>> probes_;
    int nextId_ = 0;

    void acceptLoop();
    void handleConnection(int fd);
};

/**
 * RAII attachment of a component to a telemetry server: registers a
 * collector and an optional named readiness probe on construction,
 * removes both on destruction. Every operation is a no-op when
 * @p server is null, so components attach unconditionally with
 * `obs::telemetry()` as the server argument.
 */
class TelemetryRegistration
{
  public:
    TelemetryRegistration() = default;
    TelemetryRegistration(TelemetryServer *server,
                          TelemetryServer::Collector collector,
                          std::string readyName = {},
                          TelemetryServer::Probe ready = {});
    ~TelemetryRegistration();

    TelemetryRegistration(const TelemetryRegistration &) = delete;
    TelemetryRegistration &
    operator=(const TelemetryRegistration &) = delete;

    TelemetryRegistration(TelemetryRegistration &&other) noexcept;
    TelemetryRegistration &
    operator=(TelemetryRegistration &&other) noexcept;

    void reset();

  private:
    TelemetryServer *server_ = nullptr;
    int collectorId_ = -1;
    int probeId_ = -1;
};

/**
 * The process-wide telemetry server, created on first use from
 * FA3C_TELEMETRY_PORT. @return nullptr when telemetry is disabled.
 */
TelemetryServer *telemetry();

} // namespace fa3c::obs

#endif // FA3C_OBS_TELEMETRY_HH
