#include "obs/trace.hh"

#include <cstdlib>
#include <memory>
#include <sstream>

#include "obs/export_guard.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "sim/logging.hh"

namespace fa3c::obs {

TraceWriter::TraceWriter(const std::string &path,
                         std::uint64_t max_events,
                         std::uint64_t max_bytes)
    : epoch_(std::chrono::steady_clock::now()),
      startUnixUs_(static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count())),
      osPid_(static_cast<int>(::getpid())), maxEvents_(max_events),
      maxBytes_(max_bytes)
{
    ensureParentDir(path);
    out_.open(path, std::ios::trunc);
    if (!out_) {
        FA3C_WARN("FA3C_TRACE: cannot open '", path,
                  "' for writing; tracing disabled");
        return;
    }
    out_ << "{\"traceEvents\":[";
    std::lock_guard<std::mutex> lock(mutex_);
    hostPid_ = newProcessLocked("host (wall clock)");
    simPid_ = newProcessLocked("sim");
}

TraceWriter::~TraceWriter()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closeLocked();
}

void
TraceWriter::closeLocked()
{
    if (closed_ || !out_)
        return;
    closed_ = true;
    out_ << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
         << "\"droppedEvents\":" << dropped_
         << ",\"pid\":" << osPid_
         << ",\"traceStartUnixUs\":" << jsonNumber(startUnixUs_)
         << ",\"clockOffsetUs\":" << jsonNumber(clockOffsetUs_)
         << ",\"processLabel\":\"" << jsonEscape(processLabel_)
         << "\"}}\n";
    out_.flush();
}

void
TraceWriter::setClockOffsetUs(double offset_us)
{
    std::lock_guard<std::mutex> lock(mutex_);
    clockOffsetUs_ = offset_us;
}

void
TraceWriter::setProcessLabel(const std::string &label)
{
    std::lock_guard<std::mutex> lock(mutex_);
    processLabel_ = label;
}

int
TraceWriter::newProcess(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return newProcessLocked(name);
}

int
TraceWriter::newProcessLocked(const std::string &name)
{
    const int pid = nextPid_++;
    std::ostringstream os;
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"name\":\"process_name\",\"args\":{\"name\":\""
       << jsonEscape(name) << "\"}}";
    emitLocked(os.str());
    return pid;
}

void
TraceWriter::setSimProcess(int pid)
{
    std::lock_guard<std::mutex> lock(mutex_);
    simPid_ = pid;
}

int
TraceWriter::simProcess() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return simPid_;
}

int
TraceWriter::tidForLocked(int pid, const std::string &track)
{
    const auto key = std::make_pair(pid, track);
    auto it = tids_.find(key);
    if (it != tids_.end())
        return it->second;
    const int tid = nextTid_[pid]++;
    tids_.emplace(key, tid);
    std::ostringstream os;
    os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << jsonEscape(track) << "\"}}";
    emitLocked(os.str());
    return tid;
}

void
TraceWriter::emitLocked(const std::string &event_json)
{
    if (!out_ || closed_)
        return;
    if (written_ >= maxEvents_ ||
        (maxBytes_ != 0 &&
         bytesWritten_ + event_json.size() > maxBytes_)) {
        ++dropped_;
        metrics().count("trace", "dropped_events");
        return;
    }
    if (!firstEvent_)
        out_ << ",\n";
    firstEvent_ = false;
    out_ << event_json;
    bytesWritten_ += event_json.size() + 2;
    ++written_;
}

void
TraceWriter::completeEvent(const std::string &track,
                           const std::string &name, sim::Tick start,
                           sim::Tick end, std::span<const TraceArg> args)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const int pid = simPid_;
    const int tid = tidForLocked(pid, track);
    std::ostringstream os;
    os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"cat\":\"sim\",\"name\":\"" << jsonEscape(name)
       << "\",\"ts\":" << jsonNumber(toUs(start))
       << ",\"dur\":" << jsonNumber(toUs(end - start));
    if (!args.empty()) {
        os << ",\"args\":{";
        bool first = true;
        for (const auto &[k, v] : args) {
            if (!first)
                os << ',';
            first = false;
            os << '"' << jsonEscape(k) << "\":" << jsonNumber(v);
        }
        os << '}';
    }
    os << '}';
    emitLocked(os.str());
}

void
TraceWriter::counterEvent(const std::string &counter, sim::Tick ts,
                          double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "{\"ph\":\"C\",\"pid\":" << simPid_ << ",\"name\":\""
       << jsonEscape(counter) << "\",\"ts\":" << jsonNumber(toUs(ts))
       << ",\"args\":{\"value\":" << jsonNumber(value) << "}}";
    emitLocked(os.str());
}

double
TraceWriter::hostNowUs() const
{
    return hostUsAt(std::chrono::steady_clock::now());
}

double
TraceWriter::hostUsAt(std::chrono::steady_clock::time_point tp) const
{
    return std::chrono::duration<double, std::micro>(tp - epoch_)
        .count();
}

void
TraceWriter::hostCompleteEvent(const std::string &track,
                               const std::string &name, double start_us,
                               double end_us)
{
    hostCompleteEvent(track, name, start_us, end_us, {}, "host");
}

void
TraceWriter::hostCompleteEvent(const std::string &track,
                               const std::string &name, double start_us,
                               double end_us,
                               std::span<const TraceArg> args,
                               const char *cat)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const int tid = tidForLocked(hostPid_, track);
    std::ostringstream os;
    os << "{\"ph\":\"X\",\"pid\":" << hostPid_ << ",\"tid\":" << tid
       << ",\"cat\":\"" << jsonEscape(cat) << "\",\"name\":\""
       << jsonEscape(name) << "\",\"ts\":" << jsonNumber(start_us)
       << ",\"dur\":" << jsonNumber(end_us - start_us);
    if (!args.empty()) {
        os << ",\"args\":{";
        bool first = true;
        for (const auto &[k, v] : args) {
            if (!first)
                os << ',';
            first = false;
            os << '"' << jsonEscape(k) << "\":" << jsonNumber(v);
        }
        os << '}';
    }
    os << '}';
    emitLocked(os.str());
}

std::uint64_t
TraceWriter::eventsWritten() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return written_;
}

std::uint64_t
TraceWriter::eventsDropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

void
TraceWriter::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    out_.flush();
}

void
TraceWriter::closeBestEffort()
{
    std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
    if (!lock.owns_lock())
        return;
    closeLocked();
}

TraceSpan::TraceSpan(std::string track, std::string name)
    : TraceSpan(trace(), std::move(track), std::move(name))
{
}

TraceSpan::~TraceSpan()
{
    if (writer_)
        writer_->hostCompleteEvent(track_, name_, startUs_,
                                   writer_->hostNowUs());
}

TraceProcessScope::TraceProcessScope(TraceWriter *writer,
                                     const std::string &name)
    : writer_(writer)
{
    if (!writer_)
        return;
    savedPid_ = writer_->simProcess();
    writer_->setSimProcess(writer_->newProcess(name));
}

TraceProcessScope::~TraceProcessScope()
{
    if (writer_)
        writer_->setSimProcess(savedPid_);
}

TraceWriter *
trace()
{
    static std::unique_ptr<TraceWriter> global =
        []() -> std::unique_ptr<TraceWriter> {
        const char *raw = std::getenv("FA3C_TRACE");
        if (!raw || !*raw)
            return nullptr;
        const std::string path = expandPathTokens(raw);
        std::uint64_t max_events = 8'000'000;
        if (const char *cap = std::getenv("FA3C_TRACE_MAX_EVENTS"))
            max_events = std::strtoull(cap, nullptr, 10);
        std::uint64_t max_bytes = 0;
        if (const char *mb = std::getenv("FA3C_TRACE_MAX_MB"))
            max_bytes = std::strtoull(mb, nullptr, 10) * 1024 * 1024;
        auto writer =
            std::make_unique<TraceWriter>(path, max_events, max_bytes);
        if (!writer->ok())
            return nullptr;
        notifyTraceStarted(*writer);
        return writer;
    }();
    return global.get();
}

} // namespace fa3c::obs
