/**
 * @file
 * Chrome trace-event JSON writer (the format Perfetto and
 * chrome://tracing consume).
 *
 * Two clock domains coexist in one file:
 *  - simulated time: sim::Tick (picoseconds) converted to trace
 *    microseconds, emitted by the platform/DRAM/agent-driver models;
 *  - host wall-clock: microseconds since the writer was created,
 *    emitted by the RL training loops via the RAII TraceSpan.
 *
 * Every simulation run can claim its own trace process (pid) so
 * back-to-back measurements that each start at tick 0 do not overlap
 * in the viewer; host events live on a dedicated "host" process.
 *
 * Enable globally by setting FA3C_TRACE=<path>; all instrumentation
 * sites are no-ops when tracing is off (trace() returns nullptr).
 * FA3C_TRACE_MAX_EVENTS caps the event count and FA3C_TRACE_MAX_MB
 * the file size; past either cap events are dropped (and counted in
 * both the trace footer and the `trace.dropped_events` metric) rather
 * than growing the file without bound.
 */

#ifndef FA3C_OBS_TRACE_HH
#define FA3C_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <utility>

#include "sim/types.hh"

namespace fa3c::obs {

/** A named numeric argument attached to a trace event. */
using TraceArg = std::pair<const char *, double>;

/** Thread-safe trace-event JSON file writer. */
class TraceWriter
{
  public:
    /**
     * Opens @p path for writing; check ok() afterwards. @p max_bytes
     * caps the emitted body size (0 = unlimited).
     */
    explicit TraceWriter(const std::string &path,
                         std::uint64_t max_events = 8'000'000,
                         std::uint64_t max_bytes = 0);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** True when the output file opened successfully. */
    bool ok() const { return static_cast<bool>(out_); }

    /**
     * Register a new trace process and emit its process_name
     * metadata.
     *
     * @return The pid to use for subsequent events.
     */
    int newProcess(const std::string &name);

    /** Route subsequent sim-clock events to @p pid. */
    void setSimProcess(int pid);

    /** The pid sim-clock events currently target. */
    int simProcess() const;

    /**
     * Emit a complete ("X") event on @p track of the current sim
     * process. Tracks are materialized as named threads on first use.
     */
    void completeEvent(const std::string &track, const std::string &name,
                       sim::Tick start, sim::Tick end,
                       std::span<const TraceArg> args = {});

    /** Emit a counter ("C") event on the current sim process. */
    void counterEvent(const std::string &counter, sim::Tick ts,
                      double value);

    /** Microseconds of host wall-clock since this writer was made. */
    double hostNowUs() const;

    /**
     * CLOCK_REALTIME unix microseconds captured at construction,
     * alongside the steady-clock epoch that event timestamps are
     * relative to. tools/trace_merge uses it (corrected by the
     * handshake clock offset below) to place this file's events on a
     * shared fleet timeline.
     */
    double startUnixUs() const { return startUnixUs_; }

    /**
     * Record this host's estimated wall-clock offset versus the fleet
     * reference (positive = this clock runs ahead), typically
     * measured from a handshake timestamp exchange. Written into the
     * trace footer for tools/trace_merge.
     */
    void setClockOffsetUs(double offset_us);

    /** Human label for this process in merged traces (footer). */
    void setProcessLabel(const std::string &label);

    /** @p tp on this writer's host-microsecond timeline. */
    double hostUsAt(std::chrono::steady_clock::time_point tp) const;

    /** Emit a complete event on the host process (wall-clock µs). */
    void hostCompleteEvent(const std::string &track,
                           const std::string &name, double start_us,
                           double end_us);

    /** Host complete event with args and an explicit category. */
    void hostCompleteEvent(const std::string &track,
                           const std::string &name, double start_us,
                           double end_us,
                           std::span<const TraceArg> args,
                           const char *cat = "host");

    std::uint64_t eventsWritten() const;
    std::uint64_t eventsDropped() const;

    /** Flush buffered output to disk (the file stays open). */
    void flush();

    /**
     * Finalize the JSON now if the lock is free (signal-handler path:
     * skips rather than deadlocks when an emit is in flight). Later
     * events are dropped; the destructor close becomes a no-op.
     */
    void closeBestEffort();

  private:
    mutable std::mutex mutex_;
    std::ofstream out_;
    std::chrono::steady_clock::time_point epoch_;
    double startUnixUs_ = 0.0;
    double clockOffsetUs_ = 0.0;
    int osPid_ = 0;
    std::string processLabel_;
    std::uint64_t maxEvents_;
    std::uint64_t maxBytes_;
    std::uint64_t bytesWritten_ = 0;
    std::uint64_t written_ = 0;
    std::uint64_t dropped_ = 0;
    bool firstEvent_ = true;
    bool closed_ = false;
    int nextPid_ = 0;
    int hostPid_ = 0;
    int simPid_ = 0;
    std::map<int, int> nextTid_;
    std::map<std::pair<int, std::string>, int> tids_;

    int newProcessLocked(const std::string &name);
    int tidForLocked(int pid, const std::string &track);
    void emitLocked(const std::string &event_json);
    void closeLocked();

    static double toUs(sim::Tick t)
    {
        return static_cast<double>(t) / 1e6; // ps -> µs
    }
};

/**
 * RAII host wall-clock span: opens at construction, emits a complete
 * event on destruction. No-op when @p writer is null, so it can wrap
 * code paths unconditionally.
 */
class TraceSpan
{
  public:
    TraceSpan(TraceWriter *writer, std::string track, std::string name)
        : writer_(writer), track_(std::move(track)),
          name_(std::move(name)),
          startUs_(writer_ ? writer_->hostNowUs() : 0.0)
    {
    }

    /** Span against the global writer (FA3C_TRACE). */
    TraceSpan(std::string track, std::string name);

    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    TraceWriter *writer_;
    std::string track_;
    std::string name_;
    double startUs_;
};

/**
 * Scoped sim-process switch: events between construction and
 * destruction land on a fresh named trace process. No-op when
 * @p writer is null.
 */
class TraceProcessScope
{
  public:
    TraceProcessScope(TraceWriter *writer, const std::string &name);
    ~TraceProcessScope();

    TraceProcessScope(const TraceProcessScope &) = delete;
    TraceProcessScope &operator=(const TraceProcessScope &) = delete;

  private:
    TraceWriter *writer_;
    int savedPid_ = 0;
};

/**
 * The process-wide trace writer, created on first use from the
 * FA3C_TRACE environment variable.
 *
 * @return nullptr when tracing is disabled.
 */
TraceWriter *trace();

} // namespace fa3c::obs

#endif // FA3C_OBS_TRACE_HH
