#include "power/power_model.hh"

#include "sim/logging.hh"

namespace fa3c::power {

PlatformPower
PlatformPower::fa3c()
{
    // Anchored: 18 W average during training (Section 5.3) at the
    // platform's measured operating point (training CUs saturated,
    // inference CUs ~73% busy -> mean utilization ~0.87).
    return {"FA3C", 6.0, 13.9};
}

PlatformPower
PlatformPower::a3cCudnn()
{
    // Anchored: FA3C's 18 W is a 30.0% reduction from A3C-cuDNN,
    // i.e. ~25.7 W at its operating point.
    return {"A3C-cuDNN", 9.0, 17.5};
}

PlatformPower
PlatformPower::a3cTfGpu()
{
    // Same GPU, lower utilization but more host churn per task.
    return {"A3C-TF-GPU", 9.0, 19.0};
}

PlatformPower
PlatformPower::ga3cTf()
{
    // Batched kernels push the GPU harder per joule of static power.
    return {"GA3C-TF", 9.0, 20.5};
}

PlatformPower
PlatformPower::a3cTfCpu()
{
    // The DNN runs on the host sockets; incremental CPU package
    // power above the dummy baseline.
    return {"A3C-TF-CPU", 12.0, 40.0};
}

double
inferencesPerWatt(double ips, double watts)
{
    FA3C_ASSERT(watts > 0, "inferencesPerWatt needs positive power");
    return ips / watts;
}

} // namespace fa3c::power
