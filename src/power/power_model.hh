/**
 * @file
 * The energy-efficiency model of Section 5.3 / Figure 9.
 *
 * The paper measures *incremental* power: whole-system power during
 * A3C training minus a dummy platform that runs the agents with
 * random actions. We model that quantity as a static part (board
 * power above idle) plus a dynamic part scaled by the device's busy
 * fraction. The FA3C and A3C-cuDNN coefficients are anchored to the
 * paper's measurements (18 W for FA3C, a 30.0% reduction from
 * A3C-cuDNN); the others are documented estimates (EXPERIMENTS.md).
 */

#ifndef FA3C_POWER_POWER_MODEL_HH
#define FA3C_POWER_POWER_MODEL_HH

#include <string>

namespace fa3c::power {

/** Incremental-power coefficients of one platform. */
struct PlatformPower
{
    std::string name;
    double staticWatts;  ///< drawn whenever the accelerator is armed
    double dynamicWatts; ///< drawn at 100% device utilization

    /** Incremental Watts at the given device busy fraction. */
    double
    watts(double utilization) const
    {
        return staticWatts + dynamicWatts * utilization;
    }

    static PlatformPower fa3c();
    static PlatformPower a3cCudnn();
    static PlatformPower a3cTfGpu();
    static PlatformPower ga3cTf();
    static PlatformPower a3cTfCpu();
};

/** Figure 9b's metric: inferences processed per Watt. */
double inferencesPerWatt(double ips, double watts);

} // namespace fa3c::power

#endif // FA3C_POWER_POWER_MODEL_HH
