#include "rl/a3c.hh"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "nn/layers.hh"
#include "obs/metrics.hh"
#include "obs/prometheus.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"

namespace fa3c::rl {

void
deltaObjective(std::span<const float> probs, int action, float ret,
               float value, float entropy_beta, float value_grad_scale,
               std::span<float> g_out)
{
    const std::size_t num_actions = probs.size();
    FA3C_ASSERT(g_out.size() == num_actions + 1, "deltaObjective size");
    FA3C_ASSERT(action >= 0 &&
                    static_cast<std::size_t>(action) < num_actions,
                "deltaObjective action ", action);

    const float advantage = ret - value;
    const float h = nn::entropy(probs);
    for (std::size_t j = 0; j < num_actions; ++j) {
        // d(-log p_a)/dz_j = p_j - [j == a], scaled by the advantage.
        float g = (probs[j] -
                   (static_cast<std::size_t>(action) == j ? 1.0f : 0.0f)) *
                  advantage;
        // d(-beta H)/dz_j = beta * p_j * (log p_j + H).
        if (probs[j] > 0.0f)
            g += entropy_beta * probs[j] * (std::log(probs[j]) + h);
        g_out[j] = g;
    }
    // Value head: d[ (R - V)^2 ]/dV scaled by value_grad_scale.
    g_out[num_actions] = value_grad_scale * (value - ret);
}

float
clipGradNorm(nn::ParamSet &grads, float max_norm)
{
    double sq = 0.0;
    for (float g : grads.flat())
        sq += static_cast<double>(g) * static_cast<double>(g);
    const float norm = static_cast<float>(std::sqrt(sq));
    if (max_norm > 0.0f && norm > max_norm && norm > 0.0f) {
        const float scale = max_norm / norm;
        for (float &g : grads.flat())
            g *= scale;
    }
    return norm;
}

void
TrainingDiagnostics::record(double mean_entropy, double grad_norm)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entropy_.sample(mean_entropy);
    gradNorm_.sample(grad_norm);
}

sim::Distribution
TrainingDiagnostics::entropy() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entropy_;
}

sim::Distribution
TrainingDiagnostics::gradNorm() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return gradNorm_;
}

A3cAgent::A3cAgent(int id, const A3cConfig &cfg,
                   std::unique_ptr<DnnBackend> backend,
                   std::unique_ptr<env::AtariSession> session,
                   ParamService &global, ScoreLog &scores,
                   TrainingDiagnostics &diagnostics)
    : id_(id), cfg_(cfg), backend_(std::move(backend)),
      session_(std::move(session)), global_(global), scores_(scores),
      diagnostics_(diagnostics),
      rng_(cfg.seed * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(id) + 1),
      local_(backend_->network().makeParams()),
      grads_(backend_->network().makeParams()),
      bootstrap_(backend_->network().makeActivations())
{
    rollout_.reserve(static_cast<std::size_t>(cfg_.tMax));
    for (int t = 0; t < cfg_.tMax; ++t)
        rollout_.push_back(backend_->network().makeActivations());
    actions_.resize(static_cast<std::size_t>(cfg_.tMax));
    rewards_.resize(static_cast<std::size_t>(cfg_.tMax));
    values_.resize(static_cast<std::size_t>(cfg_.tMax));
    probs_.assign(static_cast<std::size_t>(cfg_.tMax),
                  std::vector<float>(static_cast<std::size_t>(
                      session_->numActions())));
}

int
A3cAgent::sampleAction(std::span<const float> probs)
{
    // Sample from the categorical distribution over pi.
    float u = rng_.uniformF();
    for (std::size_t a = 0; a < probs.size(); ++a) {
        u -= probs[a];
        if (u <= 0.0f)
            return static_cast<int>(a);
    }
    return static_cast<int>(probs.size()) - 1;
}

bool
A3cAgent::archiveState(sim::StateArchive &ar)
{
    return ar(rng_) && session_->archiveState(ar);
}

int
A3cAgent::runRoutine()
{
    // Simulated crash (fault injection): die at a routine boundary
    // the way a real worker host would — no unwinding, no flushes.
    if (fault::fire(fault::Point::KillAgent)) {
        FA3C_WARN("fault fired: killing agent ", id_, " mid-routine");
        std::_Exit(fault::kKillExitCode);
    }

    const nn::A3cNetwork &net = backend_->network();
    obs::TraceWriter *tw = obs::trace();
    std::string track;
    if (tw)
        track = "RL worker " + std::to_string(id_);
    const double routine_start = tw ? tw->hostNowUs() : 0.0;
    double phase_start = routine_start;

    // Parameter sync task.
    global_.snapshot(local_);
    backend_->onParamSync(local_);
    if (tw) {
        tw->hostCompleteEvent(track, "param-sync", phase_start,
                              tw->hostNowUs());
        phase_start = tw->hostNowUs();
    }

    // t_max inference tasks.
    int steps = 0;
    bool episode_ended = false;
    for (int t = 0; t < cfg_.tMax; ++t) {
        auto &act = rollout_[static_cast<std::size_t>(t)];
        backend_->forward(local_, session_->observation(), act);
        auto &p = probs_[static_cast<std::size_t>(t)];
        nn::softmax(net.policyLogits(act), p);
        const int action = sampleAction(p);
        values_[static_cast<std::size_t>(t)] = net.value(act);
        actions_[static_cast<std::size_t>(t)] = action;

        const auto step = session_->act(action);
        rewards_[static_cast<std::size_t>(t)] = step.clippedReward;
        ++steps;
        if (step.episodeEnd) {
            // Truncate the rollout at the episode boundary; the
            // return bootstraps from 0 instead of V(s_{t+k}).
            scores_.record(global_.globalSteps() +
                               static_cast<std::uint64_t>(steps),
                           session_->lastEpisodeScore(), id_);
            episode_ended = true;
            break;
        }
    }
    const int rollout_len = steps;

    // Bootstrap inference: R = V(s_{t+k}) unless the episode ended.
    float ret = 0.0f;
    if (!episode_ended) {
        backend_->forward(local_, session_->observation(), bootstrap_);
        ret = net.value(bootstrap_);
    }
    if (tw) {
        tw->hostCompleteEvent(track, "inference", phase_start,
                              tw->hostNowUs());
        phase_start = tw->hostNowUs();
    }

    // Training task: host computes the delta-objective per sample; the
    // backend runs BW + GC, accumulating parameter gradients.
    grads_.zero();
    tensor::Tensor g_out(tensor::Shape({net.outSize()}));
    for (int t = rollout_len - 1; t >= 0; --t) {
        ret = rewards_[static_cast<std::size_t>(t)] + cfg_.gamma * ret;
        deltaObjective(probs_[static_cast<std::size_t>(t)],
                       actions_[static_cast<std::size_t>(t)], ret,
                       values_[static_cast<std::size_t>(t)],
                       cfg_.entropyBeta, cfg_.valueGradScale,
                       g_out.data());
        backend_->backward(local_, rollout_[static_cast<std::size_t>(t)],
                           g_out, grads_);
    }

    const float pre_clip_norm =
        clipGradNorm(grads_, cfg_.gradNormClip);
    if (rollout_len > 0) {
        double entropy_sum = 0;
        for (int t = 0; t < rollout_len; ++t)
            entropy_sum +=
                nn::entropy(probs_[static_cast<std::size_t>(t)]);
        diagnostics_.record(entropy_sum / rollout_len, pre_clip_norm);
    }

    // Global update through the shared RMSProp.
    global_.applyGradients(grads_, static_cast<std::uint64_t>(rollout_len));

    if (tw) {
        tw->hostCompleteEvent(track, "train", phase_start,
                              tw->hostNowUs());
        tw->hostCompleteEvent(track, "routine", routine_start,
                              tw->hostNowUs());
    }
    if (obs::MetricsRegistry &m = obs::metrics(); m.enabled()) {
        m.count("rl.a3c", "routines", 1);
        m.count("rl.a3c", "env_steps",
                static_cast<std::uint64_t>(rollout_len));
        m.sample("rl.a3c", "rollout_len", rollout_len);
        m.tick();
    }
    return rollout_len;
}

A3cTrainer::A3cTrainer(const nn::A3cNetwork &net, const A3cConfig &cfg,
                       BackendFactory backend_factory,
                       SessionFactory session_factory)
    : net_(net), cfg_(cfg),
      global_(net, cfg.rmsprop, cfg.initialLr, cfg.lrAnnealSteps)
{
    if (!backend_factory)
        backend_factory = [this](int) {
            return makeDnnBackend(cfg_.backend, net_);
        };
    sim::Rng init_rng(cfg_.seed);
    global_.initialize(init_rng);
    for (int i = 0; i < cfg_.numAgents; ++i) {
        agents_.push_back(std::make_unique<A3cAgent>(
            i, cfg_, backend_factory(i), session_factory(i), global_,
            scores_, diagnostics_));
    }
}

TrainingCheckpoint
A3cTrainer::checkpoint(bool include_agent_state)
{
    TrainingCheckpoint ckpt;
    ckpt.algorithm = "a3c";
    ckpt.theta = net_.makeParams();
    ckpt.rmspropG = net_.makeParams();
    global_.checkpoint(ckpt.theta, ckpt.rmspropG, ckpt.globalSteps);
    ckpt.scoreTail = scores_.tail(kScoreTailMax);
    if (include_agent_state) {
        ckpt.hasAgentState = true;
        ckpt.agentStates.reserve(agents_.size());
        for (auto &agent : agents_) {
            sim::ByteWriter w;
            sim::StateArchive ar(w);
            agent->archiveState(ar);
            ckpt.agentStates.push_back(w.bytes());
        }
    }
    return ckpt;
}

bool
A3cTrainer::restore(const TrainingCheckpoint &ckpt)
{
    if (ckpt.algorithm != "a3c" ||
        !ckpt.theta.sameLayout(global_.theta()))
        return false;
    if (ckpt.hasAgentState &&
        ckpt.agentStates.size() != agents_.size())
        return false;
    if (ckpt.hasAgentState) {
        for (std::size_t i = 0; i < agents_.size(); ++i) {
            sim::ByteReader r(ckpt.agentStates[i]);
            sim::StateArchive ar(r);
            if (!agents_[i]->archiveState(ar) || r.remaining() != 0)
                return false;
        }
    }
    global_.restore(ckpt.theta, ckpt.rmspropG, ckpt.globalSteps);
    scores_.restore(ckpt.scoreTail);
    return true;
}

bool
A3cTrainer::resumeFromFile(const std::string &path)
{
    const std::string &file =
        path.empty() ? cfg_.checkpointPath : path;
    TrainingCheckpoint ckpt;
    ckpt.theta = net_.makeParams();
    ckpt.rmspropG = net_.makeParams();
    return loadCheckpointFromFile(ckpt, file) && restore(ckpt);
}

void
A3cTrainer::maybeCheckpoint(bool include_agent_state)
{
    if (cfg_.checkpointPath.empty())
        return;
    bool due = consumeCheckpointRequest();
    if (cfg_.checkpointEverySteps > 0 &&
        global_.globalSteps() >= nextCheckpointAt_)
        due = true;
    if (!due)
        return;
    saveCheckpointToFile(checkpoint(include_agent_state),
                         cfg_.checkpointPath);
    if (cfg_.checkpointEverySteps > 0) {
        while (nextCheckpointAt_ <= global_.globalSteps())
            nextCheckpointAt_ += cfg_.checkpointEverySteps;
    }
}

void
A3cTrainer::run(std::function<bool()> stop_early)
{
    // Attach to the telemetry plane for the duration of the run: a
    // progress gauge on /metrics and a readiness probe on /readyz.
    obs::TelemetryRegistration telemetry_reg(
        obs::telemetry(),
        [this](obs::PromWriter &w) {
            w.gauge("rl_a3c_global_steps",
                    static_cast<double>(global_.globalSteps()),
                    "environment steps consumed by the A3C trainer");
            w.gauge("rl_a3c_total_steps",
                    static_cast<double>(cfg_.totalSteps),
                    "configured A3C training budget");
        },
        "trainer.a3c",
        [this](std::string &detail) {
            detail = "steps=" +
                     std::to_string(global_.globalSteps()) + "/" +
                     std::to_string(cfg_.totalSteps);
            return true;
        });

    auto should_stop = [&]() {
        if (global_.globalSteps() >= cfg_.totalSteps)
            return true;
        return stop_early && stop_early();
    };

    if (cfg_.checkpointEverySteps > 0)
        nextCheckpointAt_ =
            global_.globalSteps() + cfg_.checkpointEverySteps;

    if (!cfg_.async) {
        // Deterministic round-robin: agents take turns, one routine
        // each. Useful for tests and for bit-exact replays.
        while (!should_stop()) {
            for (auto &agent : agents_) {
                agent->runRoutine();
                maybeCheckpoint(/*include_agent_state=*/true);
                if (should_stop())
                    break;
            }
        }
        return;
    }

    std::vector<std::thread> threads;
    threads.reserve(agents_.size());
    for (auto &agent : agents_) {
        threads.emplace_back([&agent, &should_stop]() {
            while (!should_stop())
                agent->runRoutine();
        });
    }
    // Checkpoint supervisor: while the agent threads run, the calling
    // thread writes periodic/on-signal checkpoints of the global
    // state. Agent rng/session state is deliberately excluded — it is
    // owned by running threads — so async checkpoints are
    // crash-consistent rather than bit-exact (see
    // TrainingCheckpoint::hasAgentState).
    if (!cfg_.checkpointPath.empty()) {
        while (!should_stop()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
            maybeCheckpoint(/*include_agent_state=*/false);
        }
    }
    for (auto &t : threads)
        t.join();
}

} // namespace fa3c::rl
