/**
 * @file
 * The Asynchronous Advantage Actor-Critic algorithm (Mnih et al.,
 * ICML 2016), structured exactly as the paper's Figure 2: each agent
 * loops over {parameter sync, t_max inference tasks, one bootstrap
 * inference, one training task, global update via shared RMSProp}.
 */

#ifndef FA3C_RL_A3C_HH
#define FA3C_RL_A3C_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "env/session.hh"
#include "nn/a3c_network.hh"
#include "nn/rmsprop.hh"
#include "rl/backend.hh"
#include "rl/checkpoint.hh"
#include "rl/global_params.hh"
#include "rl/score_log.hh"
#include "sim/serial.hh"
#include "sim/stats.hh"

namespace fa3c::rl {

/** Hyper-parameters; defaults follow the paper / original A3C. */
struct A3cConfig
{
    int numAgents = 16;
    int tMax = 5;                  ///< rollout length (paper: 5)
    float gamma = 0.99f;           ///< reward discount
    float entropyBeta = 0.01f;     ///< entropy regularization weight
    float valueGradScale = 0.5f;   ///< value-loss gradient coefficient
    float initialLr = 7e-4f;       ///< paper Section 5.6
    std::uint64_t lrAnnealSteps = 100'000'000; ///< linear decay horizon
    float gradNormClip = 40.0f;    ///< global grad-norm clip; <=0 off
    nn::RmspropConfig rmsprop;
    std::uint64_t totalSteps = 100'000; ///< run length (env steps)
    std::uint64_t seed = 1;
    bool async = true; ///< threads per agent; false = deterministic
                       ///< round-robin in the calling thread
    /** DNN backend built when the trainer is handed a null
     * BackendFactory (an explicit factory wins). */
    BackendKind backend = BackendKind::Reference;
    /** Checkpoint file ("" disables checkpointing entirely). */
    std::string checkpointPath;
    /** Env steps between periodic checkpoints (0 = only on signal). */
    std::uint64_t checkpointEverySteps = 0;
};

/**
 * Host-side delta-objective: the gradient of the A3C loss w.r.t. the
 * FC4 outputs (action logits + value), for one sample.
 *
 * Loss = -log pi(a) * (R - V)  [advantage treated as constant]
 *        - entropyBeta * H(pi)
 *        + valueGradScale * (R - V)^2 / 2 semantics on the value head.
 *
 * @param probs   Softmax action probabilities.
 * @param action  Action taken.
 * @param ret     Bootstrapped n-step return R.
 * @param value   V(s) from the forward pass.
 * @param entropy_beta     Entropy weight.
 * @param value_grad_scale Value-head gradient coefficient.
 * @param g_out   Output: gradient w.r.t. [logits..., value].
 */
void deltaObjective(std::span<const float> probs, int action, float ret,
                    float value, float entropy_beta,
                    float value_grad_scale, std::span<float> g_out);

/**
 * Scale @p grads in place so the global L2 norm is at most @p max_norm.
 *
 * @return The pre-clip norm.
 */
float clipGradNorm(nn::ParamSet &grads, float max_norm);

/**
 * Thread-safe training diagnostics shared by all agents: the mean
 * policy entropy (a collapsing policy is the classic A3C failure
 * mode) and the pre-clip gradient norms.
 */
class TrainingDiagnostics
{
  public:
    /** Record one routine's mean policy entropy and gradient norm. */
    void record(double mean_entropy, double grad_norm);

    /** Snapshot of the entropy distribution so far. */
    sim::Distribution entropy() const;

    /** Snapshot of the pre-clip gradient-norm distribution. */
    sim::Distribution gradNorm() const;

  private:
    mutable std::mutex mutex_;
    sim::Distribution entropy_;
    sim::Distribution gradNorm_;
};

/**
 * One A3C agent: an environment session, a local parameter snapshot,
 * and the rollout/update loop. The DNN math goes through a DnnBackend.
 */
class A3cAgent
{
  public:
    /**
     * @param id       Agent index (seeds and logs).
     * @param cfg      Shared hyper-parameters.
     * @param backend  DNN executor (owned).
     * @param session  Environment frontend (owned).
     * @param global   Parameter plane the agent syncs from and pushes
     *                 gradients to — in-process GlobalParams for the
     *                 classic trainers, a dist::RemoteParams proxy
     *                 when the agent runs inside a PS worker process.
     * @param scores   Shared episode log.
     */
    A3cAgent(int id, const A3cConfig &cfg,
             std::unique_ptr<DnnBackend> backend,
             std::unique_ptr<env::AtariSession> session,
             ParamService &global, ScoreLog &scores,
             TrainingDiagnostics &diagnostics);

    /**
     * Run one routine: parameter sync, up to t_max inference steps,
     * bootstrap inference, training task, global update.
     *
     * @return Environment steps consumed.
     */
    int runRoutine();

    int id() const { return id_; }
    const env::AtariSession &session() const { return *session_; }

    /** Visit the agent's recoverable state (action-sampling rng +
     * session + game) for checkpointing. */
    bool archiveState(sim::StateArchive &ar);

  private:
    int id_;
    const A3cConfig &cfg_;
    std::unique_ptr<DnnBackend> backend_;
    std::unique_ptr<env::AtariSession> session_;
    ParamService &global_;
    ScoreLog &scores_;
    TrainingDiagnostics &diagnostics_;
    sim::Rng rng_;

    nn::ParamSet local_;
    nn::ParamSet grads_;
    std::vector<nn::A3cNetwork::Activations> rollout_;
    nn::A3cNetwork::Activations bootstrap_;
    std::vector<int> actions_;
    std::vector<float> rewards_;
    std::vector<float> values_;
    std::vector<std::vector<float>> probs_;

    int sampleAction(std::span<const float> probs);
};

/**
 * Drives numAgents agents until totalSteps environment steps have been
 * consumed, either on one thread per agent (async, the real A3C
 * setting) or round-robin on the calling thread (deterministic).
 */
class A3cTrainer
{
  public:
    /** Creates the per-agent DNN executor. */
    using BackendFactory =
        std::function<std::unique_ptr<DnnBackend>(int agent_id)>;

    /** Creates the per-agent environment session. */
    using SessionFactory =
        std::function<std::unique_ptr<env::AtariSession>(int agent_id)>;

    /**
     * @param net     Network geometry (must outlive the trainer).
     * @param backend_factory Per-agent DNN executor; pass {} to build
     *                cfg.backend through makeDnnBackend.
     */
    A3cTrainer(const nn::A3cNetwork &net, const A3cConfig &cfg,
               BackendFactory backend_factory,
               SessionFactory session_factory);

    /**
     * Train until cfg.totalSteps (or stop_early returns true, checked
     * between routines). When cfg.checkpointPath is set, a checkpoint
     * is written every cfg.checkpointEverySteps env steps and whenever
     * a checkpoint signal is pending (installCheckpointSignalHandler).
     */
    void run(std::function<bool()> stop_early = {});

    /**
     * Capture the full training state. @p include_agent_state must be
     * false while agent threads are running (async checkpoints then
     * carry only the mutex-consistent global state and resume with
     * freshly seeded agents); with no threads running — before run()
     * or with async=false — pass true for a bit-exact image.
     */
    TrainingCheckpoint checkpoint(bool include_agent_state = true);

    /**
     * Restore state captured by checkpoint(). @return false — without
     * touching the global parameters — when the checkpoint came from
     * a different algorithm, network layout, or agent count.
     */
    bool restore(const TrainingCheckpoint &ckpt);

    /** Load cfg.checkpointPath (or @p path) and restore; false when
     * the file is absent, corrupt, or incompatible. */
    bool resumeFromFile(const std::string &path = "");

    GlobalParams &globalParams() { return global_; }
    const ScoreLog &scores() const { return scores_; }
    const TrainingDiagnostics &diagnostics() const
    {
        return diagnostics_;
    }

  private:
    const nn::A3cNetwork &net_;
    A3cConfig cfg_;
    GlobalParams global_;
    ScoreLog scores_;
    TrainingDiagnostics diagnostics_;
    std::vector<std::unique_ptr<A3cAgent>> agents_;
    std::uint64_t nextCheckpointAt_ = 0;

    /** Write a periodic/on-signal checkpoint when one is due. */
    void maybeCheckpoint(bool include_agent_state);
};

} // namespace fa3c::rl

#endif // FA3C_RL_A3C_HH
