/**
 * @file
 * The DNN compute backend an A3C agent talks to.
 *
 * In the paper an agent offloads its inference and training tasks to
 * the FA3C board (or to a GPU) while softmax and the objective-
 * function gradient stay on the host. The DnnBackend interface is the
 * software seam at exactly that boundary: agents hand observations /
 * delta-objectives across it, and implementations decide where the
 * layer math happens (reference CPU library, or the FA3C functional
 * datapath model).
 */

#ifndef FA3C_RL_BACKEND_HH
#define FA3C_RL_BACKEND_HH

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "nn/a3c_network.hh"
#include "nn/params.hh"
#include "tensor/tensor.hh"

namespace fa3c::nn {
struct QuantizedModel; // nn/quant_params.hh
}

namespace fa3c::rl {

/**
 * Executes the inference (FW) and training (BW + GC) tasks of one
 * agent. Implementations may keep per-agent scratch state but must
 * not share mutable state across agents.
 */
class DnnBackend
{
  public:
    virtual ~DnnBackend() = default;

    /** The network geometry this backend computes. */
    virtual const nn::A3cNetwork &network() const = 0;

    /**
     * Called once after every parameter-sync task, before the
     * routine's forward passes. Backends that stage parameters in
     * device-side layouts (the FA3C datapath keeps FW/BW layout
     * images) rebuild them here instead of on every task.
     */
    virtual void onParamSync(const nn::ParamSet &params) { (void)params; }

    /**
     * True when this backend can stage a pre-built quantized weight
     * image via onQuantSync instead of deriving one itself. The
     * serving scheduler uses this to hand every worker the image the
     * registry quantized once at publish time.
     */
    virtual bool wantsQuantized() const { return false; }

    /**
     * Parameter sync with a pre-quantized image of the same params
     * (built by nn::quantizeModel, shared across workers). The
     * default ignores the image and falls back to onParamSync, so
     * callers may use this entry point unconditionally.
     */
    virtual void
    onQuantSync(const nn::ParamSet &params,
                std::shared_ptr<const nn::QuantizedModel> quant)
    {
        (void)quant;
        onParamSync(params);
    }

    /**
     * Inference task: forward propagation.
     *
     * @param params Local parameter snapshot.
     * @param obs    Observation [C, H, W].
     * @param act    Activation cache (the feature maps FA3C parks in
     *               off-chip DRAM for the later training task).
     */
    virtual void forward(const nn::ParamSet &params,
                         const tensor::Tensor &obs,
                         nn::A3cNetwork::Activations &act) = 0;

    /**
     * Training task for one sample: backward propagation and gradient
     * computation, accumulating into @p grads.
     *
     * @param g_out Gradient of the objective w.r.t. the FC4 outputs
     *              (the host-computed delta-objective).
     */
    virtual void backward(const nn::ParamSet &params,
                          const nn::A3cNetwork::Activations &act,
                          const tensor::Tensor &g_out,
                          nn::ParamSet &grads) = 0;

    /**
     * Batched inference: forward-propagate several observations under
     * one parameter set (the lock-step PAAC rollout and the GA3C
     * predictor serve all their environments at once).
     *
     * The default runs the single-sample forward per observation, so
     * every backend supports the call; backends with batch-efficient
     * kernels (FastCpuBackend) override it to amortize layout
     * transforms and weight loads across the batch. Implementations
     * must produce exactly the same activations as per-sample
     * forward() calls.
     *
     * @param obs  Observations; obs.size() == acts.size().
     * @param acts Per-sample activation caches (overwritten).
     */
    virtual void
    forwardBatch(const nn::ParamSet &params,
                 std::span<const tensor::Tensor *const> obs,
                 std::span<nn::A3cNetwork::Activations *const> acts)
    {
        for (std::size_t i = 0; i < obs.size(); ++i)
            forward(params, *obs[i], *acts[i]);
    }
};

/** Backend running the golden reference layer implementations. */
class ReferenceBackend : public DnnBackend
{
  public:
    explicit ReferenceBackend(const nn::A3cNetwork &net) : net_(net) {}

    const nn::A3cNetwork &network() const override { return net_; }

    void
    forward(const nn::ParamSet &params, const tensor::Tensor &obs,
            nn::A3cNetwork::Activations &act) override
    {
        net_.forward(params, obs, act);
    }

    void
    backward(const nn::ParamSet &params,
             const nn::A3cNetwork::Activations &act,
             const tensor::Tensor &g_out, nn::ParamSet &grads) override
    {
        net_.backward(params, act, g_out, grads);
    }

  private:
    const nn::A3cNetwork &net_;
};

/**
 * The CPU backends a trainer config can name directly (the FA3C
 * datapath backend lives above this library and is injected through a
 * BackendFactory instead).
 */
enum class BackendKind
{
    Reference, ///< golden layer library (nn/layers.cc)
    FastCpu,   ///< blocked im2col/GEMM kernels (nn/kernels/)
    Int8,      ///< int8 weights/activations, per-channel scales
    Fp16,      ///< fp16-storage FC weights, fp32 arithmetic
};

/** Construct a backend of @p kind over @p net (which must outlive it). */
std::unique_ptr<DnnBackend> makeDnnBackend(BackendKind kind,
                                           const nn::A3cNetwork &net);

/**
 * Parse a CLI-style backend name: "reference", "fast", "int8" or
 * "fp16". Panics on anything else.
 */
BackendKind backendKindFromName(const std::string &name);

/** Parse a CLI-style backend name; std::nullopt on unknown names. */
std::optional<BackendKind>
tryBackendKindFromName(const std::string &name);

/** The CLI-style name of @p kind. */
const char *backendKindName(BackendKind kind);

} // namespace fa3c::rl

#endif // FA3C_RL_BACKEND_HH
