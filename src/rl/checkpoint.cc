#include "rl/checkpoint.hh"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "nn/serialize.hh"
#include "obs/metrics.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/serial.hh"

namespace fa3c::rl {

namespace {

constexpr std::uint32_t checkpointMagic = 0xFA3CC4B7;

/** Refuse to stage images larger than this (a corrupt size field must
 * not drive a multi-gigabyte allocation). */
constexpr std::uint32_t maxPayloadBytes = 1u << 30;

struct ImageHeader
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint32_t payloadSize;
    std::uint32_t payloadCrc;
};

std::string
checkpointToImage(const TrainingCheckpoint &ckpt)
{
    sim::ByteWriter payload;
    payload.writeBlob(ckpt.algorithm);
    payload.write(ckpt.globalSteps);
    payload.write(ckpt.updates);
    payload.write(ckpt.refreshes);
    payload.write(ckpt.updatesSinceRefresh);
    payload.write(ckpt.trainerRng);
    payload.write(
        static_cast<std::uint8_t>(ckpt.hasAgentState ? 1 : 0));
    payload.writeBlob(nn::paramsToImage(ckpt.theta));
    payload.writeBlob(nn::paramsToImage(ckpt.rmspropG));

    payload.write(
        static_cast<std::uint32_t>(ckpt.agentStates.size()));
    for (const std::string &blob : ckpt.agentStates)
        payload.writeBlob(blob);
    payload.write(static_cast<std::uint32_t>(ckpt.scoreTail.size()));
    for (const EpisodeRecord &rec : ckpt.scoreTail) {
        payload.write(rec.globalStep);
        payload.write(rec.score);
        payload.write(static_cast<std::int32_t>(rec.agentId));
    }

    ImageHeader header{checkpointMagic, kCheckpointVersion,
                       static_cast<std::uint32_t>(payload.size()),
                       sim::crc32(payload.bytes().data(),
                                  payload.size())};
    sim::ByteWriter image;
    image.write(header);
    image.writeRaw(payload.bytes().data(), payload.size());
    return image.bytes();
}

/**
 * Validate @p image and parse it into a staging checkpoint whose
 * parameter sets are shaped like @p ckpt's; commit into @p ckpt only
 * when every section parses.
 */
bool
checkpointFromImage(TrainingCheckpoint &ckpt, std::string_view image)
{
    sim::ByteReader reader(image);
    ImageHeader header{};
    if (!reader.read(header) || header.magic != checkpointMagic ||
        header.version != kCheckpointVersion ||
        header.payloadSize != reader.remaining())
        return false;
    if (sim::crc32(image.data() + sizeof(ImageHeader),
                   header.payloadSize) != header.payloadCrc)
        return false;

    TrainingCheckpoint staged;
    staged.theta = ckpt.theta;       // adopt the destination layouts
    staged.rmspropG = ckpt.rmspropG; // (values overwritten below)

    std::uint8_t has_agent_state = 0;
    std::string theta_image, g_image;
    if (!reader.readBlob(staged.algorithm) ||
        !reader.read(staged.globalSteps) ||
        !reader.read(staged.updates) ||
        !reader.read(staged.refreshes) ||
        !reader.read(staged.updatesSinceRefresh) ||
        !reader.read(staged.trainerRng) ||
        !reader.read(has_agent_state) ||
        !reader.readBlob(theta_image) || !reader.readBlob(g_image))
        return false;
    staged.hasAgentState = has_agent_state != 0;
    if (!nn::paramsFromImage(staged.theta, theta_image) ||
        !nn::paramsFromImage(staged.rmspropG, g_image))
        return false;

    std::uint32_t count = 0;
    if (!reader.read(count) || count > reader.remaining())
        return false;
    staged.agentStates.resize(count);
    for (std::string &blob : staged.agentStates)
        if (!reader.readBlob(blob))
            return false;

    constexpr std::size_t record_bytes =
        sizeof(std::uint64_t) + sizeof(double) + sizeof(std::int32_t);
    if (!reader.read(count) || count > reader.remaining() / record_bytes)
        return false;
    staged.scoreTail.resize(count);
    for (EpisodeRecord &rec : staged.scoreTail) {
        std::int32_t agent = 0;
        if (!reader.read(rec.globalStep) || !reader.read(rec.score) ||
            !reader.read(agent))
            return false;
        rec.agentId = agent;
    }
    if (reader.remaining() != 0)
        return false;

    ckpt = std::move(staged);
    return true;
}

void
countCheckpointMetric(const char *name)
{
    if (obs::MetricsRegistry &m = obs::metrics(); m.enabled())
        m.count("rl.checkpoint", name, 1);
}

volatile std::sig_atomic_t g_signalRequest = 0;

extern "C" void
checkpointSignalHandler(int)
{
    g_signalRequest = 1;
}

} // namespace

bool
saveCheckpoint(const TrainingCheckpoint &ckpt, std::ostream &os)
{
    const std::string image = checkpointToImage(ckpt);
    os.write(image.data(), static_cast<std::streamsize>(image.size()));
    return static_cast<bool>(os);
}

bool
loadCheckpoint(TrainingCheckpoint &ckpt, std::istream &is)
{
    ImageHeader header{};
    std::string image(sizeof(ImageHeader), '\0');
    is.read(image.data(), sizeof(ImageHeader));
    if (!is)
        return false;
    std::memcpy(&header, image.data(), sizeof(ImageHeader));
    if (header.magic != checkpointMagic ||
        header.payloadSize > maxPayloadBytes)
        return false;
    image.resize(sizeof(ImageHeader) + header.payloadSize);
    is.read(image.data() + sizeof(ImageHeader), header.payloadSize);
    if (!is)
        return false;
    return checkpointFromImage(ckpt, image);
}

bool
saveCheckpointToFile(const TrainingCheckpoint &ckpt,
                     const std::string &path)
{
    const auto start = std::chrono::steady_clock::now();
    const std::string image = checkpointToImage(ckpt);
    const std::string tmp = path + ".tmp";

    bool ok = false;
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (os) {
            os.write(image.data(),
                     static_cast<std::streamsize>(image.size()));
            os.flush();
            ok = static_cast<bool>(os);
        }
    }
    if (ok && fault::fire(fault::Point::CheckpointWrite)) {
        FA3C_WARN("fault fired: checkpoint write to ", path,
                  " failed before the rename");
        ok = false;
    }
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        countCheckpointMetric("save_failures");
        return false;
    }

    if (obs::MetricsRegistry &m = obs::metrics(); m.enabled()) {
        const double sec =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        m.count("rl.checkpoint", "saves", 1);
        m.sample("rl.checkpoint", "bytes",
                 static_cast<double>(image.size()));
        m.sample("rl.checkpoint", "save_sec", sec);
        m.tick();
    }
    FA3C_INFORM("checkpoint: wrote ", image.size(), " bytes to ", path,
                " at step ", ckpt.globalSteps);
    return true;
}

bool
loadCheckpointFromFile(TrainingCheckpoint &ckpt,
                       const std::string &path)
{
    std::string image;
    {
        std::ifstream is(path, std::ios::binary);
        if (!is) {
            countCheckpointMetric("load_failures");
            return false;
        }
        std::ostringstream buf;
        buf << is.rdbuf();
        image = std::move(buf).str();
    }
    fault::maybeCorrupt(image);
    if (!checkpointFromImage(ckpt, image)) {
        FA3C_WARN("checkpoint: rejected corrupt or mismatched image ",
                  path, " (", image.size(), " bytes)");
        countCheckpointMetric("load_failures");
        return false;
    }
    countCheckpointMetric("loads");
    FA3C_INFORM("checkpoint: restored ", path, " at step ",
                ckpt.globalSteps, " (", ckpt.algorithm, ")");
    return true;
}

void
installCheckpointSignalHandler()
{
    std::signal(SIGINT, checkpointSignalHandler);
    std::signal(SIGTERM, checkpointSignalHandler);
#ifdef SIGUSR1
    std::signal(SIGUSR1, checkpointSignalHandler);
#endif
}

bool
consumeCheckpointRequest()
{
    if (!g_signalRequest)
        return false;
    g_signalRequest = 0;
    return true;
}

void
requestCheckpoint()
{
    g_signalRequest = 1;
}

} // namespace fa3c::rl
