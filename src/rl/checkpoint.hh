/**
 * @file
 * Crash-safe training checkpoints.
 *
 * A training run's recoverable state is exactly what the paper's
 * RMSProp module keeps next to the global model in DRAM plus the
 * host-side loop state: {theta, the per-parameter g statistics, the
 * global step counter, the RNG streams, per-agent environment state,
 * and the score-log tail}. This module serializes that whole set as
 * one versioned, CRC32-checked image and writes it atomically (temp
 * file + rename), so a crash at any instant leaves either the old
 * checkpoint or the new one — never a torn file.
 *
 * Loading is staged: the image is read and validated in full (CRC,
 * version, section structure) before any destination object is
 * touched, so a truncated or bit-flipped checkpoint is rejected with
 * the caller's in-memory state intact.
 *
 * File writes and loads run through the fa3c::fault hooks
 * (checkpoint-write failure, bit-flip on load) and export
 * latency/size/failure metrics through the obs registry under
 * "rl.checkpoint".
 */

#ifndef FA3C_RL_CHECKPOINT_HH
#define FA3C_RL_CHECKPOINT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nn/params.hh"
#include "rl/score_log.hh"
#include "sim/rng.hh"

namespace fa3c::rl {

/** Current checkpoint image version. */
inline constexpr std::uint32_t kCheckpointVersion = 1;

/** Episodes retained in a checkpoint's score-log tail (the paper's
 * Figure 12 smooths over 1,000 episodes, so resume keeps the moving
 * average seamless across the restart). */
inline constexpr std::size_t kScoreTailMax = 1000;

/**
 * Everything needed to resume a training run.
 *
 * The two parameter sets must be shaped by the caller (via
 * A3cNetwork::makeParams()) before loading; their layout is validated
 * against the stored segment tables.
 */
struct TrainingCheckpoint
{
    /** Producing algorithm ("a3c", "paac", "ga3c"); restore rejects
     * a checkpoint from a different trainer type. */
    std::string algorithm;
    nn::ParamSet theta;
    nn::ParamSet rmspropG;
    std::uint64_t globalSteps = 0;
    /** Trainer-level update counters (PAAC/GA3C; 0 for A3C). */
    std::uint64_t updates = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t updatesSinceRefresh = 0;
    /** Trainer-level action-sampling stream (PAAC/GA3C). */
    sim::RngState trainerRng{};
    /**
     * Whether per-agent state (rngs + session blobs) was captured.
     * Checkpoints taken while asynchronous agent threads are running
     * carry only the consistent global state; resume then restarts
     * the agents from fresh seeds, which is crash-consistent but not
     * bit-exact. Synchronous (async=false) checkpoints always carry
     * agent state and resume bit-identically.
     */
    bool hasAgentState = false;
    /** One opaque state image per agent/environment slot (the agent's
     * action-sampling rng where it has one, plus the full session +
     * game state). */
    std::vector<std::string> agentStates;
    std::vector<EpisodeRecord> scoreTail;
};

/** Serialize @p ckpt to @p os. @return false on stream failure. */
bool saveCheckpoint(const TrainingCheckpoint &ckpt, std::ostream &os);

/**
 * Read a checkpoint into @p ckpt, whose theta/rmspropG must already
 * have the network's layout.
 *
 * @return false — with @p ckpt untouched — when the stream fails, the
 *         CRC does not match, or the stored parameter layout differs.
 */
bool loadCheckpoint(TrainingCheckpoint &ckpt, std::istream &is);

/**
 * Write @p ckpt to @p path atomically and export save metrics.
 * Honors the CheckpointWrite fault hook (the write then fails before
 * the rename and the previous checkpoint survives).
 */
bool saveCheckpointToFile(const TrainingCheckpoint &ckpt,
                          const std::string &path);

/** Read @p path (honoring the CheckpointBitflip fault hook) and
 * validate-then-commit into @p ckpt. */
bool loadCheckpointFromFile(TrainingCheckpoint &ckpt,
                            const std::string &path);

/**
 * Install SIGINT/SIGTERM/SIGUSR1 handlers that request a checkpoint.
 * The handler only sets a flag; the training loops poll it between
 * routines via consumeCheckpointRequest() and write the checkpoint
 * from normal context. Idempotent.
 */
void installCheckpointSignalHandler();

/** True once per signal received; clears the request flag. */
bool consumeCheckpointRequest();

/** Set the request flag directly (tests, embedding applications). */
void requestCheckpoint();

} // namespace fa3c::rl

#endif // FA3C_RL_CHECKPOINT_HH
