#include "rl/evaluate.hh"

#include <algorithm>
#include <vector>

#include "nn/layers.hh"
#include "sim/logging.hh"

namespace fa3c::rl {

EvalResult
evaluatePolicy(DnnBackend &backend, const nn::ParamSet &params,
               env::AtariSession &session, const EvalConfig &cfg)
{
    FA3C_ASSERT(cfg.episodes >= 1, "evaluatePolicy episodes");
    const nn::A3cNetwork &net = backend.network();
    backend.onParamSync(params);

    sim::Rng rng(cfg.seed);
    auto act = net.makeActivations();
    std::vector<float> probs(
        static_cast<std::size_t>(session.numActions()));

    EvalResult result;
    int episodes_done = 0;
    while (episodes_done < cfg.episodes &&
           result.steps < cfg.maxSteps) {
        backend.forward(params, session.observation(), act);
        nn::softmax(net.policyLogits(act), probs);
        int action = 0;
        if (cfg.greedy) {
            action = static_cast<int>(
                std::max_element(probs.begin(), probs.end()) -
                probs.begin());
        } else {
            float u = rng.uniformF();
            for (std::size_t a = 0; a < probs.size(); ++a) {
                u -= probs[a];
                if (u <= 0.0f) {
                    action = static_cast<int>(a);
                    break;
                }
                action = static_cast<int>(probs.size()) - 1;
            }
        }
        const auto step = session.act(action);
        ++result.steps;
        if (step.episodeEnd) {
            result.scores.sample(session.lastEpisodeScore());
            ++episodes_done;
        }
    }
    return result;
}

} // namespace fa3c::rl
