/**
 * @file
 * Policy evaluation: run a trained network against an environment
 * without learning, reporting episode scores. The paper's Section 5.6
 * evaluates with ALE's "human starts" metric, which needs crafted
 * initial conditions that are not public; we evaluate from the same
 * random no-op starts training uses and report the statistics.
 */

#ifndef FA3C_RL_EVALUATE_HH
#define FA3C_RL_EVALUATE_HH

#include <cstdint>
#include <memory>

#include "env/session.hh"
#include "nn/a3c_network.hh"
#include "rl/backend.hh"
#include "sim/stats.hh"

namespace fa3c::rl {

/** Evaluation configuration. */
struct EvalConfig
{
    int episodes = 10;        ///< episodes to play
    bool greedy = false;      ///< argmax policy instead of sampling
    std::uint64_t maxSteps = 200'000; ///< overall safety cap
    std::uint64_t seed = 99;  ///< action-sampling stream
};

/** Evaluation outcome. */
struct EvalResult
{
    sim::Distribution scores; ///< per-episode raw scores
    std::uint64_t steps = 0;  ///< env steps consumed
};

/**
 * Play @p cfg.episodes episodes with the policy in @p params.
 *
 * @param backend DNN executor (only forward() is used).
 * @param session Environment frontend; consumed episodes continue
 *                from its current state.
 */
EvalResult evaluatePolicy(DnnBackend &backend,
                          const nn::ParamSet &params,
                          env::AtariSession &session,
                          const EvalConfig &cfg = {});

} // namespace fa3c::rl

#endif // FA3C_RL_EVALUATE_HH
