#include "rl/fast_cpu_backend.hh"

#include "rl/quant_backend.hh"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "nn/kernels/conv.hh"
#include "nn/kernels/fc.hh"
#include "nn/kernels/gemm.hh"
#include "nn/kernels/im2col.hh"
#include "obs/metrics.hh"
#include "obs/profile.hh"
#include "sim/logging.hh"

namespace fa3c::rl {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * Latency sampler for the nn.kernel.* histograms: times the enclosed
 * region only while metrics are enabled, so the fast path pays one
 * relaxed atomic load when observability is off.
 */
class KernelTimer
{
  public:
    explicit KernelTimer(const char *name)
        : name_(name), enabled_(obs::metrics().enabled())
    {
        if (enabled_)
            start_ = Clock::now();
    }

    ~KernelTimer()
    {
        if (!enabled_)
            return;
        const double us =
            std::chrono::duration<double, std::micro>(Clock::now() -
                                                      start_)
                .count();
        obs::metrics().sample("nn.kernel", name_, us);
    }

    KernelTimer(const KernelTimer &) = delete;
    KernelTimer &operator=(const KernelTimer &) = delete;

  private:
    const char *name_;
    bool enabled_;
    Clock::time_point start_;
};

} // namespace

FastCpuBackend::FastCpuBackend(const nn::A3cNetwork &net)
    : net_(net),
      conv2WT_(net.conv2().weightCount()),
      fc3WT_(net.fc3().weightCount()),
      fc4WT_(net.fc4().weightCount()),
      colScratch_(std::max(nn::kernels::colSize(net.conv1()),
                           nn::kernels::colSize(net.conv2()))),
      gFc3Act_(tensor::Shape({net.fc3().outFeatures})),
      gFc3Pre_(tensor::Shape({net.fc3().outFeatures})),
      gConv2Flat_(tensor::Shape({net.fc3().inFeatures})),
      gConv2Act_(tensor::Shape({net.conv2().outChannels,
                                net.conv2().outHeight(),
                                net.conv2().outWidth()})),
      gConv2Pre_(gConv2Act_.shape()),
      gConv1Act_(tensor::Shape({net.conv1().outChannels,
                                net.conv1().outHeight(),
                                net.conv1().outWidth()})),
      gConv1Pre_(gConv1Act_.shape())
{
    fc4Small_ = net.fc4().outFeatures < nn::kernels::kSmallFcMaxOut;
}

void
FastCpuBackend::onParamSync(const nn::ParamSet &params)
{
    FA3C_PROF_SCOPE("backend.param_sync");
    const nn::ConvSpec &c2 = net_.conv2();
    const nn::FcSpec &f3 = net_.fc3();
    const nn::FcSpec &f4 = net_.fc4();
    nn::kernels::transpose(
        params.view("conv2.w").data(), c2.outChannels,
        static_cast<int>(nn::kernels::patchSize(c2)), conv2WT_.data());
    nn::kernels::transpose(params.view("fc3.w").data(), f3.outFeatures,
                           f3.inFeatures, fc3WT_.data());
    // Panel-packed wT for batched FC forward: built per sync/publish,
    // amortized over every batch served until the next one. A small
    // FC4 head needs neither image — its forward runs the
    // canonical-row dot kernel straight off the ParamSet.
    fc3Panels_.resize(
        nn::kernels::gemmPanelSize(f3.outFeatures, f3.inFeatures));
    nn::kernels::gemmPackPanels(f3.outFeatures, f3.inFeatures,
                                fc3WT_.data(), f3.outFeatures,
                                fc3Panels_.data());
    if (!fc4Small_) {
        nn::kernels::transpose(params.view("fc4.w").data(),
                               f4.outFeatures, f4.inFeatures,
                               fc4WT_.data());
        fc4Panels_.resize(
            nn::kernels::gemmPanelSize(f4.outFeatures, f4.inFeatures));
        nn::kernels::gemmPackPanels(f4.outFeatures, f4.inFeatures,
                                    fc4WT_.data(), f4.outFeatures,
                                    fc4Panels_.data());
    }
    staged_ = true;
}

void
FastCpuBackend::ensureStaged(const nn::ParamSet &params)
{
    // Trainers call onParamSync after every parameter sync; this
    // covers direct use (tests, benches) that skips the sync protocol.
    if (!staged_)
        onParamSync(params);
}

void
FastCpuBackend::forwardConvs(const nn::ParamSet &params,
                             const tensor::Tensor &obs,
                             nn::A3cNetwork::Activations &act)
{
    act.input = obs;
    {
        KernelTimer t("conv_fw");
        nn::kernels::convForwardFast(
            net_.conv1(), act.input.data().data(),
            params.view("conv1.w"), params.view("conv1.b"),
            act.conv1Pre.data().data(), colScratch_);
    }
    nn::reluForward(act.conv1Pre, act.conv1Act);
    {
        KernelTimer t("conv_fw");
        nn::kernels::convForwardFast(
            net_.conv2(), act.conv1Act.data().data(),
            params.view("conv2.w"), params.view("conv2.b"),
            act.conv2Pre.data().data(), colScratch_);
    }
    nn::reluForward(act.conv2Pre, act.conv2Act);
    std::copy(act.conv2Act.data().begin(), act.conv2Act.data().end(),
              act.conv2Flat.data().begin());
}

void
FastCpuBackend::forward(const nn::ParamSet &params,
                        const tensor::Tensor &obs,
                        nn::A3cNetwork::Activations &act)
{
    FA3C_PROF_SCOPE("backend.forward");
    ensureStaged(params);
    forwardConvs(params, obs, act);
    {
        KernelTimer t("fc_fw");
        nn::kernels::fcForwardFast(net_.fc3(),
                                   act.conv2Flat.data().data(), fc3WT_,
                                   params.view("fc3.b"),
                                   act.fc3Pre.data().data());
    }
    nn::reluForward(act.fc3Pre, act.fc3Act);
    {
        KernelTimer t("fc_fw");
        if (fc4Small_)
            nn::kernels::fcForwardSmallBatch(
                net_.fc4(), 1, act.fc3Act.data().data(),
                params.view("fc4.w"), params.view("fc4.b"),
                act.out.data().data());
        else
            nn::kernels::fcForwardFast(
                net_.fc4(), act.fc3Act.data().data(), fc4WT_,
                params.view("fc4.b"), act.out.data().data());
    }
}

void
FastCpuBackend::backward(const nn::ParamSet &params,
                         const nn::A3cNetwork::Activations &act,
                         const tensor::Tensor &g_out,
                         nn::ParamSet &grads)
{
    FA3C_PROF_SCOPE("backend.backward");
    ensureStaged(params);
    FA3C_ASSERT(g_out.numel() ==
                    static_cast<std::size_t>(net_.fc4().outFeatures),
                "FastCpuBackend backward g_out size");

    // FC4: GC then BW (the same task order as the golden network).
    {
        KernelTimer t("fc_gc");
        nn::kernels::fcGradientFast(
            net_.fc4(), act.fc3Act.data().data(), g_out.data().data(),
            grads.view("fc4.w"), grads.view("fc4.b"));
    }
    {
        KernelTimer t("fc_bw");
        nn::kernels::fcBackwardFast(net_.fc4(), g_out.data().data(),
                                    params.view("fc4.w"),
                                    gFc3Act_.data().data());
    }
    nn::reluBackward(act.fc3Pre, gFc3Act_, gFc3Pre_);

    // FC3.
    {
        KernelTimer t("fc_gc");
        nn::kernels::fcGradientFast(
            net_.fc3(), act.conv2Flat.data().data(),
            gFc3Pre_.data().data(), grads.view("fc3.w"),
            grads.view("fc3.b"));
    }
    {
        KernelTimer t("fc_bw");
        nn::kernels::fcBackwardFast(net_.fc3(), gFc3Pre_.data().data(),
                                    params.view("fc3.w"),
                                    gConv2Flat_.data().data());
    }

    // ReLU before FC3, applied on the conv2 feature map.
    std::copy(gConv2Flat_.data().begin(), gConv2Flat_.data().end(),
              gConv2Act_.data().begin());
    nn::reluBackward(act.conv2Pre, gConv2Act_, gConv2Pre_);

    // Conv2.
    {
        KernelTimer t("conv_gc");
        nn::kernels::convGradientFast(
            net_.conv2(), act.conv1Act.data().data(),
            gConv2Pre_.data().data(), grads.view("conv2.w"),
            grads.view("conv2.b"), colScratch_);
    }
    {
        KernelTimer t("conv_bw");
        nn::kernels::convBackwardFast(net_.conv2(),
                                      gConv2Pre_.data().data(), conv2WT_,
                                      gConv1Act_.data().data(),
                                      colScratch_);
    }
    nn::reluBackward(act.conv1Pre, gConv1Act_, gConv1Pre_);

    // Conv1: gradient only; BW into the game screen is not needed.
    {
        KernelTimer t("conv_gc");
        nn::kernels::convGradientFast(
            net_.conv1(), act.input.data().data(),
            gConv1Pre_.data().data(), grads.view("conv1.w"),
            grads.view("conv1.b"), colScratch_);
    }
}

void
FastCpuBackend::forwardBatch(
    const nn::ParamSet &params,
    std::span<const tensor::Tensor *const> obs,
    std::span<nn::A3cNetwork::Activations *const> acts)
{
    FA3C_PROF_SCOPE("backend.forward_batch");
    FA3C_ASSERT(obs.size() == acts.size(),
                "forwardBatch obs/acts size mismatch");
    if (obs.empty())
        return;
    if (obs.size() == 1) {
        // A lone request takes the lean single-sample route.
        forward(params, *obs[0], *acts[0]);
        return;
    }
    ensureStaged(params);

    const nn::FcSpec &f3 = net_.fc3();
    const nn::FcSpec &f4 = net_.fc4();
    const int bsz = static_cast<int>(obs.size());
    const std::size_t in3 = static_cast<std::size_t>(f3.inFeatures);
    const std::size_t out3 = static_cast<std::size_t>(f3.outFeatures);
    const std::size_t out4 = static_cast<std::size_t>(f4.outFeatures);
    batchIn_.resize(static_cast<std::size_t>(bsz) * in3);
    batchMid_.resize(static_cast<std::size_t>(bsz) * out3);
    batchAct_.resize(static_cast<std::size_t>(bsz) * out3);
    batchOut_.resize(static_cast<std::size_t>(bsz) * out4);

    // Conv trunk per sample: conv weights are small enough to live in
    // cache across the whole batch, so there is nothing for batching
    // to amortize there — the win is all in the FC layers below.
    for (int s = 0; s < bsz; ++s) {
        forwardConvs(params, *obs[s], *acts[s]);
        std::memcpy(batchIn_.data() + static_cast<std::size_t>(s) * in3,
                    acts[s]->conv2Flat.data().data(),
                    in3 * sizeof(float));
    }

    // FC3 as one M = batch GEMM over the panel-packed weights: the
    // weight matrix is streamed once for the whole batch instead of
    // once per request. The GEMM accumulates every output element in
    // the same order as the single-sample call, so results are
    // bit-identical to forward().
    {
        KernelTimer t("fc_fw");
        nn::kernels::fcForwardFastBatchPanels(
            f3, bsz, batchIn_.data(), fc3Panels_, params.view("fc3.b"),
            batchMid_.data());
    }
    for (int s = 0; s < bsz; ++s) {
        const float *pre =
            batchMid_.data() + static_cast<std::size_t>(s) * out3;
        float *post =
            batchAct_.data() + static_cast<std::size_t>(s) * out3;
        std::memcpy(acts[s]->fc3Pre.data().data(), pre,
                    out3 * sizeof(float));
        for (std::size_t i = 0; i < out3; ++i)
            post[i] = pre[i] > 0.0f ? pre[i] : 0.0f;
        std::memcpy(acts[s]->fc3Act.data().data(), post,
                    out3 * sizeof(float));
    }

    // FC4 batched the same way (or the small-head dot kernel, which
    // is the same per-element order as the single-sample call).
    {
        KernelTimer t("fc_fw");
        if (fc4Small_)
            nn::kernels::fcForwardSmallBatch(
                f4, bsz, batchAct_.data(), params.view("fc4.w"),
                params.view("fc4.b"), batchOut_.data());
        else
            nn::kernels::fcForwardFastBatchPanels(
                f4, bsz, batchAct_.data(), fc4Panels_,
                params.view("fc4.b"), batchOut_.data());
    }
    for (int s = 0; s < bsz; ++s)
        std::memcpy(acts[s]->out.data().data(),
                    batchOut_.data() + static_cast<std::size_t>(s) * out4,
                    out4 * sizeof(float));
}

std::unique_ptr<DnnBackend>
makeDnnBackend(BackendKind kind, const nn::A3cNetwork &net)
{
    switch (kind) {
    case BackendKind::Reference:
        return std::make_unique<ReferenceBackend>(net);
    case BackendKind::FastCpu:
        return std::make_unique<FastCpuBackend>(net);
    case BackendKind::Int8:
        return std::make_unique<QuantCpuBackend>(net,
                                                 nn::QuantMode::Int8);
    case BackendKind::Fp16:
        return std::make_unique<QuantCpuBackend>(net,
                                                 nn::QuantMode::Fp16);
    }
    FA3C_PANIC("unknown BackendKind ", static_cast<int>(kind));
}

BackendKind
backendKindFromName(const std::string &name)
{
    if (const auto kind = tryBackendKindFromName(name))
        return *kind;
    FA3C_PANIC("unknown backend name '", name,
               "' (want reference|fast|int8|fp16)");
}

std::optional<BackendKind>
tryBackendKindFromName(const std::string &name)
{
    if (name == "reference")
        return BackendKind::Reference;
    if (name == "fast")
        return BackendKind::FastCpu;
    if (name == "int8")
        return BackendKind::Int8;
    if (name == "fp16")
        return BackendKind::Fp16;
    return std::nullopt;
}

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
    case BackendKind::Reference:
        return "reference";
    case BackendKind::FastCpu:
        return "fast";
    case BackendKind::Int8:
        return "int8";
    case BackendKind::Fp16:
        return "fp16";
    }
    return "reference";
}

} // namespace fa3c::rl
