/**
 * @file
 * DnnBackend built on the blocked im2col/GEMM kernel library.
 *
 * Produces the same results as ReferenceBackend up to float
 * reassociation (the GEMM sums filter taps in the same (i, kr, kc)
 * order as the golden loops, but register blocking can change which
 * partial sums share a register) while running several times faster:
 *
 *  - convolutions go through an im2col patch matrix and a
 *    register-blocked axpy-form GEMM that autovectorizes without
 *    -ffast-math;
 *  - FC forward uses a transposed weight image wT[I][O] staged once
 *    per parameter sync in onParamSync() (the same stage-on-sync
 *    pattern the FA3C datapath backend uses for its FW/BW layouts);
 *  - forwardBatch() runs the two FC layers as one M = batch GEMM over
 *    weight panels packed at parameter-sync time, so the PAAC
 *    rollout, the GA3C predictor, and the serving scheduler read the
 *    FC weight matrices once per batch instead of once per request —
 *    the dominant cost of single-request inference on wide layers.
 *
 * Each instance owns its scratch buffers, so it is single-agent like
 * every other DnnBackend; trainers construct one per agent.
 */

#ifndef FA3C_RL_FAST_CPU_BACKEND_HH
#define FA3C_RL_FAST_CPU_BACKEND_HH

#include <vector>

#include "rl/backend.hh"

namespace fa3c::rl {

/** Backend running the fast kernel library (nn/kernels/). */
class FastCpuBackend : public DnnBackend
{
  public:
    explicit FastCpuBackend(const nn::A3cNetwork &net);

    const nn::A3cNetwork &network() const override { return net_; }

    /** Restages the transposed weight images from @p params. */
    void onParamSync(const nn::ParamSet &params) override;

    void forward(const nn::ParamSet &params, const tensor::Tensor &obs,
                 nn::A3cNetwork::Activations &act) override;

    void backward(const nn::ParamSet &params,
                  const nn::A3cNetwork::Activations &act,
                  const tensor::Tensor &g_out,
                  nn::ParamSet &grads) override;

    void
    forwardBatch(const nn::ParamSet &params,
                 std::span<const tensor::Tensor *const> obs,
                 std::span<nn::A3cNetwork::Activations *const> acts)
        override;

  protected:
    // Protected rather than private: QuantCpuBackend derives from
    // this class to inherit the fp32 training path (backward) and the
    // fp32 conv trunk its fp16 mode uses, and shares the batch
    // staging buffers.

    /** Stage lazily when forward/backward arrive before any sync. */
    void ensureStaged(const nn::ParamSet &params);

    /** Conv trunk of one forward pass (shared by both entry points). */
    void forwardConvs(const nn::ParamSet &params,
                      const tensor::Tensor &obs,
                      nn::A3cNetwork::Activations &act);

    const nn::A3cNetwork &net_;

    // Staged transposed weight images (rebuilt in onParamSync). Conv1
    // needs none: its forward uses the canonical [O][I*K*K] layout and
    // backward into the game screen is never computed.
    std::vector<float> conv2WT_; ///< [I*K*K][O] for conv2 BW
    std::vector<float> fc3WT_;   ///< [I][O] for fc3 FW
    std::vector<float> fc4WT_;   ///< [I][O] for fc4 FW
    std::vector<float> fc3Panels_; ///< packed wT panels for batched FW
    std::vector<float> fc4Panels_; ///< packed wT panels for batched FW
    bool staged_ = false;
    /**
     * FC4 heads narrower than kernels::kSmallFcMaxOut skip the
     * wT/panel staging entirely and run the canonical-row dot-product
     * kernel: the panel layout pads every strip to 32 columns, which
     * for the 5-wide head wastes 6x the weight bandwidth (the cause
     * of the old fc4 0.5x regression vs golden).
     */
    bool fc4Small_ = false;

    // Per-agent scratch: one im2col/im2row patch matrix (sized for the
    // larger conv) plus the backward-pass gradient tensors, allocated
    // once since the geometry is fixed.
    std::vector<float> colScratch_;
    tensor::Tensor gFc3Act_;
    tensor::Tensor gFc3Pre_;
    tensor::Tensor gConv2Flat_;
    tensor::Tensor gConv2Act_;
    tensor::Tensor gConv2Pre_;
    tensor::Tensor gConv1Act_;
    tensor::Tensor gConv1Pre_;

    // Batch staging buffers for forwardBatch (grown on demand).
    std::vector<float> batchIn_;  ///< [B][fc3.in]  flattened conv2 maps
    std::vector<float> batchMid_; ///< [B][fc3.out] fc3 pre-activations
    std::vector<float> batchAct_; ///< [B][fc3.out] post-ReLU
    std::vector<float> batchOut_; ///< [B][fc4.out]
};

} // namespace fa3c::rl

#endif // FA3C_RL_FAST_CPU_BACKEND_HH
