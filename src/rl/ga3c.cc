#include "rl/ga3c.hh"

#include <algorithm>

#include "nn/layers.hh"
#include "obs/prometheus.hh"
#include "obs/telemetry.hh"
#include "sim/logging.hh"
#include "sim/serial.hh"

namespace fa3c::rl {

Ga3cTrainer::Ga3cTrainer(const nn::A3cNetwork &net,
                         const Ga3cConfig &cfg,
                         BackendFactory backend_factory,
                         SessionFactory session_factory)
    : net_(net), cfg_(cfg),
      global_(net, cfg.rmsprop, cfg.initialLr, cfg.lrAnnealSteps),
      rng_(cfg.seed ^ 0x6A3C6A3C6A3C6A3CULL),
      thetaPredict_(net.makeParams()), thetaTrain_(net.makeParams()),
      grads_(net.makeParams()), scratch_(net.makeActivations())
{
    FA3C_ASSERT(cfg_.trainingBatch >= 1 &&
                    cfg_.predictorRefreshUpdates >= 1,
                "Ga3cConfig batching");
    if (!backend_factory)
        backend_factory = [this](int) {
            return makeDnnBackend(cfg_.backend, net_);
        };
    sim::Rng init_rng(cfg_.seed);
    global_.initialize(init_rng);
    global_.snapshot(thetaPredict_);
    for (int i = 0; i < cfg_.numEnvs; ++i) {
        EnvSlot slot;
        slot.backend = backend_factory(i);
        slot.session = session_factory(i);
        envs_.push_back(std::move(slot));
        predictActs_.push_back(net.makeActivations());
    }
    trainerBackend_ = backend_factory(cfg_.numEnvs);
}

int
Ga3cTrainer::sampleAction(std::span<const float> probs)
{
    float u = rng_.uniformF();
    for (std::size_t a = 0; a < probs.size(); ++a) {
        u -= probs[a];
        if (u <= 0.0f)
            return static_cast<int>(a);
    }
    return static_cast<int>(probs.size()) - 1;
}

void
Ga3cTrainer::refreshPredictor()
{
    global_.snapshot(thetaPredict_);
    for (auto &slot : envs_)
        slot.backend->onParamSync(thetaPredict_);
    ++refreshes_;
    updatesSinceRefresh_ = 0;
}

std::uint64_t
Ga3cTrainer::predictorStep()
{
    // Serve every environment's action request as one batched
    // inference under the stale predictor snapshot — this is exactly
    // GA3C's predictor thread, which exists to batch device work.
    // Environments act only after the batch returns, so the
    // action-sampling rng stream matches the per-env formulation.
    std::vector<const tensor::Tensor *> batch_obs;
    std::vector<nn::A3cNetwork::Activations *> batch_acts;
    batch_obs.reserve(envs_.size());
    batch_acts.reserve(envs_.size());
    for (std::size_t i = 0; i < envs_.size(); ++i) {
        auto &roll = envs_[i].inFlight;
        // Record the observation the action is taken from.
        roll.observations.push_back(envs_[i].session->observation());
        batch_obs.push_back(&roll.observations.back());
        batch_acts.push_back(&predictActs_[i]);
    }
    envs_[0].backend->forwardBatch(thetaPredict_, batch_obs,
                                   batch_acts);

    std::uint64_t steps = 0;
    std::vector<float> probs;
    for (std::size_t i = 0; i < envs_.size(); ++i) {
        auto &slot = envs_[i];
        auto &roll = slot.inFlight;
        const nn::A3cNetwork::Activations &act = predictActs_[i];
        probs.assign(static_cast<std::size_t>(
                         slot.session->numActions()),
                     0.0f);
        nn::softmax(net_.policyLogits(act), probs);
        const int action = sampleAction(probs);
        const auto step = slot.session->act(action);
        roll.actions.push_back(action);
        roll.rewards.push_back(step.clippedReward);
        ++steps;
        if (step.episodeEnd) {
            scores_.record(global_.globalSteps() + steps,
                           slot.session->lastEpisodeScore(),
                           static_cast<int>(&slot - envs_.data()));
            roll.episodeEnded = true;
        }
        if (roll.episodeEnded ||
            static_cast<int>(roll.actions.size()) >= cfg_.tMax) {
            if (!roll.episodeEnded) {
                // The trainer bootstraps from the post-rollout state.
                roll.observations.push_back(
                    slot.session->observation());
            }
            trainingQueue_.push_back(std::move(roll));
            roll = QueuedRollout{};
        }
    }
    return steps;
}

void
Ga3cTrainer::trainerStep()
{
    // GA3C's trainer uses the *current* global parameters, not the
    // (possibly stale) copy the predictor acted with.
    global_.snapshot(thetaTrain_);
    trainerBackend_->onParamSync(thetaTrain_);
    grads_.zero();
    tensor::Tensor g_out(tensor::Shape({net_.outSize()}));
    std::vector<float> probs;
    std::uint64_t samples = 0;

    const int batch = std::min<std::size_t>(
        static_cast<std::size_t>(cfg_.trainingBatch),
        trainingQueue_.size());
    for (int b = 0; b < batch; ++b) {
        QueuedRollout roll = std::move(trainingQueue_.front());
        trainingQueue_.pop_front();
        const std::size_t len = roll.actions.size();
        if (len == 0)
            continue;

        // Recompute the forward passes under theta_train; this is
        // where the policy lag enters (actions were chosen by
        // theta_predict).
        float ret = 0.0f;
        if (!roll.episodeEnded) {
            trainerBackend_->forward(thetaTrain_,
                                     roll.observations.back(),
                                     scratch_);
            ret = net_.value(scratch_);
        }
        for (std::size_t t = len; t-- > 0;) {
            trainerBackend_->forward(thetaTrain_,
                                     roll.observations[t], scratch_);
            probs.assign(
                static_cast<std::size_t>(net_.config().numActions),
                0.0f);
            nn::softmax(net_.policyLogits(scratch_), probs);
            ret = roll.rewards[t] + cfg_.gamma * ret;
            deltaObjective(probs, roll.actions[t], ret,
                           net_.value(scratch_), cfg_.entropyBeta,
                           cfg_.valueGradScale, g_out.data());
            trainerBackend_->backward(thetaTrain_, scratch_, g_out,
                                      grads_);
            ++samples;
        }
    }
    if (samples == 0)
        return;
    const float inv = 1.0f / static_cast<float>(batch);
    for (float &g : grads_.flat())
        g *= inv;
    if (cfg_.gradNormClip > 0.0f)
        clipGradNorm(grads_, cfg_.gradNormClip);
    // Steps were already counted by applyGradients' caller side; the
    // update itself consumes no new environment steps.
    global_.applyGradients(grads_, 0);
    ++updates_;
    ++updatesSinceRefresh_;
    if (updatesSinceRefresh_ >= cfg_.predictorRefreshUpdates)
        refreshPredictor();
}

float
Ga3cTrainer::currentPolicyLag() const
{
    return nn::ParamSet::maxAbsDiff(thetaPredict_, global_.theta());
}

TrainingCheckpoint
Ga3cTrainer::checkpoint()
{
    TrainingCheckpoint ckpt;
    ckpt.algorithm = "ga3c";
    ckpt.theta = net_.makeParams();
    ckpt.rmspropG = net_.makeParams();
    global_.checkpoint(ckpt.theta, ckpt.rmspropG, ckpt.globalSteps);
    ckpt.updates = updates_;
    ckpt.refreshes = refreshes_;
    ckpt.updatesSinceRefresh =
        static_cast<std::uint64_t>(updatesSinceRefresh_);
    ckpt.trainerRng = rng_.state();
    ckpt.scoreTail = scores_.tail(kScoreTailMax);
    ckpt.hasAgentState = true;
    ckpt.agentStates.reserve(envs_.size());
    for (auto &slot : envs_) {
        sim::ByteWriter w;
        sim::StateArchive ar(w);
        slot.session->archiveState(ar);
        ckpt.agentStates.push_back(w.bytes());
    }
    return ckpt;
}

bool
Ga3cTrainer::restore(const TrainingCheckpoint &ckpt)
{
    if (ckpt.algorithm != "ga3c" ||
        !ckpt.theta.sameLayout(thetaTrain_))
        return false;
    if (ckpt.hasAgentState && ckpt.agentStates.size() != envs_.size())
        return false;
    if (ckpt.hasAgentState) {
        for (std::size_t i = 0; i < envs_.size(); ++i) {
            sim::ByteReader r(ckpt.agentStates[i]);
            sim::StateArchive ar(r);
            if (!envs_[i].session->archiveState(ar) ||
                r.remaining() != 0)
                return false;
        }
        rng_.setState(ckpt.trainerRng);
    }
    global_.restore(ckpt.theta, ckpt.rmspropG, ckpt.globalSteps);
    scores_.restore(ckpt.scoreTail);
    updates_ = ckpt.updates;
    refreshes_ = ckpt.refreshes;
    updatesSinceRefresh_ =
        static_cast<int>(ckpt.updatesSinceRefresh);
    // Queued/in-flight rollouts were collected under the pre-crash
    // predictor snapshot; drop them and start the predictor from the
    // restored parameters (counters stay as restored above).
    trainingQueue_.clear();
    for (auto &slot : envs_)
        slot.inFlight = QueuedRollout{};
    global_.snapshot(thetaPredict_);
    for (auto &slot : envs_)
        slot.backend->onParamSync(thetaPredict_);
    return true;
}

bool
Ga3cTrainer::resumeFromFile(const std::string &path)
{
    const std::string &file =
        path.empty() ? cfg_.checkpointPath : path;
    TrainingCheckpoint ckpt;
    ckpt.theta = net_.makeParams();
    ckpt.rmspropG = net_.makeParams();
    return loadCheckpointFromFile(ckpt, file) && restore(ckpt);
}

void
Ga3cTrainer::maybeCheckpoint()
{
    if (cfg_.checkpointPath.empty())
        return;
    bool due = consumeCheckpointRequest();
    if (cfg_.checkpointEverySteps > 0 &&
        global_.globalSteps() >= nextCheckpointAt_)
        due = true;
    if (!due)
        return;
    saveCheckpointToFile(checkpoint(), cfg_.checkpointPath);
    while (cfg_.checkpointEverySteps > 0 &&
           nextCheckpointAt_ <= global_.globalSteps())
        nextCheckpointAt_ += cfg_.checkpointEverySteps;
}

void
Ga3cTrainer::run(std::function<bool()> stop_early)
{
    obs::TelemetryRegistration telemetry_reg(
        obs::telemetry(),
        [this](obs::PromWriter &w) {
            w.gauge("rl_ga3c_global_steps",
                    static_cast<double>(global_.globalSteps()),
                    "environment steps consumed by the GA3C trainer");
            w.gauge("rl_ga3c_total_steps",
                    static_cast<double>(cfg_.totalSteps),
                    "configured GA3C training budget");
        },
        "trainer.ga3c",
        [this](std::string &detail) {
            detail = "steps=" +
                     std::to_string(global_.globalSteps()) + "/" +
                     std::to_string(cfg_.totalSteps);
            return true;
        });

    if (cfg_.checkpointEverySteps > 0)
        nextCheckpointAt_ =
            global_.globalSteps() + cfg_.checkpointEverySteps;
    while (global_.globalSteps() < cfg_.totalSteps) {
        if (stop_early && stop_early())
            return;
        global_.addSteps(predictorStep());
        while (static_cast<int>(trainingQueue_.size()) >=
               cfg_.trainingBatch)
            trainerStep();
        maybeCheckpoint();
    }
}

} // namespace fa3c::rl
