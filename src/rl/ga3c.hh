/**
 * @file
 * GA3C (Babaeizadeh et al., ICLR 2017), the GPU-centric A3C variant
 * the paper benchmarks as GA3C-TF and critiques in Section 6: all
 * agents share one global parameter set (no local snapshots); a
 * predictor serves action requests in batches using a *stale* copy of
 * the parameters, while the trainer consumes queued rollouts and
 * updates the current parameters — so "the model used for inference
 * may be different from the model used for training", the policy-lag
 * effect that can make learning unstable or slow.
 *
 * This functional implementation reproduces exactly that semantics:
 * rollouts are collected under a predictor snapshot refreshed only
 * every predictorRefreshUpdates updates, queued, and trained on with
 * the *current* parameters (the trainer recomputes the forward pass,
 * as GA3C's trainer thread does).
 */

#ifndef FA3C_RL_GA3C_HH
#define FA3C_RL_GA3C_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "env/session.hh"
#include "nn/a3c_network.hh"
#include "rl/a3c.hh"
#include "rl/backend.hh"
#include "rl/global_params.hh"
#include "rl/score_log.hh"

namespace fa3c::rl {

/** GA3C hyper-parameters. */
struct Ga3cConfig
{
    int numEnvs = 16;
    int tMax = 5;
    /** Rollouts fused into one trainer update (GA3C's batching). */
    int trainingBatch = 4;
    /** Updates between predictor snapshot refreshes; 1 = refresh
     * after every update (minimal lag), larger = more policy lag. */
    int predictorRefreshUpdates = 1;
    float gamma = 0.99f;
    float entropyBeta = 0.01f;
    float valueGradScale = 0.5f;
    float initialLr = 7e-4f;
    std::uint64_t lrAnnealSteps = 100'000'000;
    float gradNormClip = 40.0f;
    nn::RmspropConfig rmsprop;
    std::uint64_t totalSteps = 100'000;
    std::uint64_t seed = 1;
    /** DNN backend built when the trainer is handed a null
     * BackendFactory (an explicit factory wins). */
    BackendKind backend = BackendKind::Reference;
    /** Checkpoint file ("" disables checkpointing entirely). */
    std::string checkpointPath;
    /** Env steps between periodic checkpoints (0 = only on signal). */
    std::uint64_t checkpointEverySteps = 0;
};

/** The GA3C trainer. */
class Ga3cTrainer
{
  public:
    using BackendFactory = A3cTrainer::BackendFactory;
    using SessionFactory = A3cTrainer::SessionFactory;

    Ga3cTrainer(const nn::A3cNetwork &net, const Ga3cConfig &cfg,
                BackendFactory backend_factory,
                SessionFactory session_factory);

    /** Train until totalSteps. */
    void run(std::function<bool()> stop_early = {});

    GlobalParams &globalParams() { return global_; }
    const ScoreLog &scores() const { return scores_; }
    std::uint64_t updatesApplied() const { return updates_; }
    std::uint64_t predictorRefreshes() const { return refreshes_; }

    /** Max |theta_predict - theta_train| right now (the policy lag
     * the paper's Section 6 warns about). */
    float currentPolicyLag() const;

    /**
     * Capture the recoverable training state. In-flight and queued
     * rollouts are *not* captured (they reference a stale predictor
     * snapshot); resume re-collects them, so at most
     * numEnvs * tMax environment steps of rollout work is repeated
     * and GA3C resume is crash-consistent rather than bit-exact.
     */
    TrainingCheckpoint checkpoint();

    /** Restore state captured by checkpoint(); false — without
     * touching any state — on an algorithm/layout/env-count
     * mismatch. Drops any queued rollouts and re-snapshots the
     * predictor from the restored parameters. */
    bool restore(const TrainingCheckpoint &ckpt);

    /** Load cfg.checkpointPath (or @p path) and restore; false when
     * the file is absent, corrupt, or incompatible. */
    bool resumeFromFile(const std::string &path = "");

  private:
    /** A finished rollout waiting in the training queue. */
    struct QueuedRollout
    {
        std::vector<tensor::Tensor> observations; ///< length <= tMax+1
        std::vector<int> actions;
        std::vector<float> rewards;
        bool episodeEnded = false;
    };

    struct EnvSlot
    {
        std::unique_ptr<DnnBackend> backend;
        std::unique_ptr<env::AtariSession> session;
        QueuedRollout inFlight;
    };

    const nn::A3cNetwork &net_;
    Ga3cConfig cfg_;
    GlobalParams global_;
    ScoreLog scores_;
    sim::Rng rng_;
    std::vector<EnvSlot> envs_;
    /**
     * The trainer's own DNN executor (built with agent id numEnvs).
     * GA3C's trainer and predictor are separate device streams; giving
     * the trainer its own backend also keeps staged parameter layouts
     * coherent — it always syncs thetaTrain_ while the env backends
     * always hold thetaPredict_.
     */
    std::unique_ptr<DnnBackend> trainerBackend_;
    nn::ParamSet thetaPredict_;
    nn::ParamSet thetaTrain_;
    nn::ParamSet grads_;
    nn::A3cNetwork::Activations scratch_;
    /** Per-env activation caches for the batched predictor forward. */
    std::vector<nn::A3cNetwork::Activations> predictActs_;
    std::deque<QueuedRollout> trainingQueue_;
    std::uint64_t updates_ = 0;
    std::uint64_t refreshes_ = 0;
    int updatesSinceRefresh_ = 0;
    std::uint64_t nextCheckpointAt_ = 0;

    void refreshPredictor();
    /** Write a periodic/on-signal checkpoint when one is due. */
    void maybeCheckpoint();
    /** Advance every environment one step with the stale predictor. */
    std::uint64_t predictorStep();
    /** Train on one batch of queued rollouts with the current
     * parameters. */
    void trainerStep();
    int sampleAction(std::span<const float> probs);
};

} // namespace fa3c::rl

#endif // FA3C_RL_GA3C_HH
