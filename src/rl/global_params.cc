#include "rl/global_params.hh"

#include <algorithm>

namespace fa3c::rl {

GlobalParams::GlobalParams(const nn::A3cNetwork &net,
                           const nn::RmspropConfig &rmsprop,
                           float initial_lr, std::uint64_t anneal_steps)
    : net_(net), rmsprop_(rmsprop), initialLr_(initial_lr),
      annealSteps_(anneal_steps), theta_(net.makeParams()),
      rmspropG_(net.makeParams())
{
}

void
GlobalParams::initialize(sim::Rng &rng)
{
    std::lock_guard<std::mutex> lock(mutex_);
    net_.initParams(theta_, rng);
    rmspropG_.zero();
}

void
GlobalParams::snapshot(nn::ParamSet &local)
{
    std::lock_guard<std::mutex> lock(mutex_);
    local.copyFrom(theta_);
}

nn::ParamSet
GlobalParams::theta() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return theta_;
}

void
GlobalParams::checkpoint(nn::ParamSet &theta_out, nn::ParamSet &g_out,
                         std::uint64_t &steps_out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    theta_out.copyFrom(theta_);
    g_out.copyFrom(rmspropG_);
    steps_out = globalSteps_.load(std::memory_order_relaxed);
}

void
GlobalParams::restore(const nn::ParamSet &theta, const nn::ParamSet &g,
                      std::uint64_t steps)
{
    std::lock_guard<std::mutex> lock(mutex_);
    theta_.copyFrom(theta);
    rmspropG_.copyFrom(g);
    globalSteps_.store(steps, std::memory_order_relaxed);
}

float
GlobalParams::currentLearningRate() const
{
    if (annealSteps_ == 0)
        return initialLr_;
    const std::uint64_t steps = globalSteps();
    if (steps >= annealSteps_)
        return 0.0f;
    const double frac = 1.0 - static_cast<double>(steps) /
                                  static_cast<double>(annealSteps_);
    return static_cast<float>(initialLr_ * frac);
}

void
GlobalParams::applyGradients(const nn::ParamSet &grads,
                             std::uint64_t steps_consumed)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const float lr = currentLearningRate();
    if (lr > 0.0f) {
        nn::rmspropApply(theta_.flat(), rmspropG_.flat(), grads.flat(),
                         lr, rmsprop_);
    }
    globalSteps_.fetch_add(steps_consumed, std::memory_order_relaxed);
}

} // namespace fa3c::rl
